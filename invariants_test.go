package sparker_test

// Cross-module invariant tests: properties that must hold across the
// whole pipeline regardless of configuration, checked on generated data
// with testing/quick-style seed variation.

import (
	"testing"

	"sparker"
	"sparker/internal/blocking"
	"sparker/internal/datagen"
	"sparker/internal/evaluation"
	"sparker/internal/looseschema"
	"sparker/internal/metablocking"
)

func seededDataset(t *testing.T, seed int64) (*sparker.Collection, *sparker.GroundTruth) {
	t.Helper()
	cfg := datagen.AbtBuy()
	cfg.CoreEntities = 80
	cfg.AOnly = 8
	cfg.BDup = 6
	cfg.Seed = seed
	ds := datagen.Generate(cfg)
	gt, err := evaluation.FromOriginalIDs(ds.Collection, ds.GroundTruth)
	if err != nil {
		t.Fatal(err)
	}
	return ds.Collection, gt
}

// TestInvariantEveryCandidateSharesAKey: every pair the blocker emits
// must actually share at least one blocking key — blocking never invents
// comparisons.
func TestInvariantEveryCandidateSharesAKey(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		c, _ := seededDataset(t, seed)
		opts := sparker.BlockingOptions{}
		blocks := sparker.TokenBlocking(c, opts)
		pairs := blocks.DistinctPairs()
		for i, p := range pairs {
			if i == 200 {
				break
			}
			if len(sparker.SharedBlockingKeys(c, opts, p.A, p.B)) == 0 {
				t.Fatalf("seed %d: pair %v shares no key", seed, p)
			}
		}
	}
}

// TestInvariantMetaBlockingIsSubset: meta-blocking only removes
// comparisons; its candidates are a subset of the block-implied pairs.
func TestInvariantMetaBlockingIsSubset(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		c, _ := seededDataset(t, seed)
		blocks := sparker.TokenBlocking(c, sparker.BlockingOptions{})
		filtered := sparker.FilterBlocks(sparker.PurgeBlocks(blocks, 0.5), 0.8)
		implied := map[blocking.Pair]bool{}
		for _, p := range filtered.DistinctPairs() {
			implied[p.Canonical()] = true
		}
		idx := sparker.BuildBlockIndex(filtered)
		for _, pruning := range []metablocking.Pruning{metablocking.WEP, metablocking.BlastPruning, metablocking.CNP} {
			edges := sparker.RunMetaBlocking(idx, sparker.MetaBlockingOptions{Scheme: sparker.CBS, Pruning: pruning})
			for _, e := range edges {
				if !implied[(blocking.Pair{A: e.A, B: e.B}).Canonical()] {
					t.Fatalf("seed %d %v: edge (%d,%d) not implied by any block", seed, pruning, e.A, e.B)
				}
			}
		}
	}
}

// TestInvariantCleanCleanNoSameSourcePairs: in clean-clean tasks no
// candidate pair may come from a single source.
func TestInvariantCleanCleanNoSameSourcePairs(t *testing.T) {
	c, _ := seededDataset(t, 5)
	res, err := sparker.Resolve(c, sparker.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.Blocker.Candidates {
		if c.SameSource(p.A, p.B) {
			t.Fatalf("same-source candidate %v", p)
		}
	}
	for _, m := range res.Matches {
		if c.SameSource(m.A, m.B) {
			t.Fatalf("same-source match %v", m)
		}
	}
}

// TestInvariantEntitiesPartitionMatchedProfiles: entities never overlap
// and cover exactly the matched profiles (for connected components).
func TestInvariantEntitiesPartitionMatchedProfiles(t *testing.T) {
	c, _ := seededDataset(t, 7)
	res, err := sparker.Resolve(c, sparker.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	matched := map[sparker.ProfileID]bool{}
	for _, m := range res.Matches {
		matched[m.A] = true
		matched[m.B] = true
	}
	seen := map[sparker.ProfileID]bool{}
	for _, e := range res.Entities {
		for _, id := range e.Profiles {
			if seen[id] {
				t.Fatalf("profile %d in two entities", id)
			}
			seen[id] = true
			if !matched[id] {
				t.Fatalf("profile %d clustered without a match", id)
			}
		}
	}
	if len(seen) != len(matched) {
		t.Fatalf("entities cover %d profiles, matches touch %d", len(seen), len(matched))
	}
}

// TestInvariantThresholdMonotone: raising the match threshold never adds
// matches.
func TestInvariantThresholdMonotone(t *testing.T) {
	c, _ := seededDataset(t, 9)
	blocker, err := sparker.NewPipeline(sparker.DefaultConfig(), nil).RunBlocker(c)
	if err != nil {
		t.Fatal(err)
	}
	measure := sparker.JaccardMeasure(sparker.TokenizerOptions{})
	prev := -1
	for _, th := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
		n := len(sparker.MatchPairs(c, blocker.Candidates, measure, th))
		if prev >= 0 && n > prev {
			t.Fatalf("threshold %.1f yields %d matches > %d at the lower threshold", th, n, prev)
		}
		prev = n
	}
}

// TestInvariantEntropyNeverNegative: cluster entropies are non-negative
// and the blob of an all-clustered collection stays empty.
func TestInvariantEntropyNeverNegative(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		c, _ := seededDataset(t, seed)
		for _, th := range []float64{0.15, 0.3, 0.6, 1.0} {
			part := looseschema.Partition(c, looseschema.Options{Threshold: th})
			for k := range part.Clusters {
				if part.EntropyOf(k) < 0 {
					t.Fatalf("seed %d th %.2f: negative entropy in cluster %d", seed, th, k)
				}
			}
		}
	}
}

// TestInvariantProgressivePrefixRecallDominates: for best-first
// scheduling, recall at a larger budget never drops (prefix property).
func TestInvariantProgressivePrefixRecallDominates(t *testing.T) {
	c, gt := seededDataset(t, 11)
	blocks := sparker.TokenBlocking(c, sparker.BlockingOptions{})
	filtered := sparker.FilterBlocks(sparker.PurgeBlocks(blocks, 0.5), 0.8)
	idx := sparker.BuildBlockIndex(filtered)
	full := sparker.ScheduleComparisons(idx, sparker.MetaBlockingOptions{Scheme: sparker.ARCS}, sparker.ScheduleProfiles, 0)
	prevFound := 0
	for _, frac := range []int{10, 25, 50, 100} {
		budget := len(full) * frac / 100
		found := 0
		for _, e := range full[:budget] {
			if gt.Contains(sparker.CandidatePair{A: e.A, B: e.B}) {
				found++
			}
		}
		if found < prevFound {
			t.Fatalf("recall dropped with a larger budget: %d < %d", found, prevFound)
		}
		prevFound = found
	}
}
