package sparker_test

// Executable documentation for the public API (godoc examples).

import (
	"fmt"

	"sparker"
)

func exampleCollection() *sparker.Collection {
	mk := func(id string, kvs ...[2]string) sparker.Profile {
		p := sparker.Profile{OriginalID: id}
		for _, kv := range kvs {
			p.Add(kv[0], kv[1])
		}
		return p
	}
	a := []sparker.Profile{
		mk("a1", [2]string{"name", "acme turbo widget"}, [2]string{"price", "9.99"}),
		mk("a2", [2]string{"name", "zenix gadget pro"}, [2]string{"price", "19.99"}),
	}
	b := []sparker.Profile{
		mk("b1", [2]string{"title", "acme turbo widget deluxe"}, [2]string{"cost", "9.99"}),
		mk("b2", [2]string{"title", "entirely different product"}, [2]string{"cost", "5.00"}),
	}
	return sparker.NewCleanClean(a, b)
}

// ExampleResolve runs the whole pipeline with one call.
func ExampleResolve() {
	collection := exampleCollection()
	cfg := sparker.DefaultConfig()
	cfg.LooseSchema = false // four profiles: schema-agnostic is plenty
	cfg.UseEntropy = false
	cfg.Pruning = sparker.WEP

	result, err := sparker.Resolve(collection, cfg)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	for _, e := range result.Entities {
		fmt.Print("entity:")
		for _, id := range e.Profiles {
			fmt.Printf(" %s", collection.Get(id).OriginalID)
		}
		fmt.Println()
	}
	// Output: entity: a1 b1
}

// ExampleTokenBlocking shows schema-agnostic block construction.
func ExampleTokenBlocking() {
	collection := exampleCollection()
	blocks := sparker.TokenBlocking(collection, sparker.BlockingOptions{})
	fmt.Println("blocks:", blocks.NumBlocks())
	fmt.Println("comparisons:", blocks.TotalComparisons())
	// Output:
	// blocks: 5
	// comparisons: 6
}

// ExampleRunMetaBlocking prunes the blocking graph.
func ExampleRunMetaBlocking() {
	collection := exampleCollection()
	blocks := sparker.TokenBlocking(collection, sparker.BlockingOptions{})
	idx := sparker.BuildBlockIndex(blocks)
	edges := sparker.RunMetaBlocking(idx, sparker.MetaBlockingOptions{
		Scheme:  sparker.CBS,
		Pruning: sparker.WEP,
	})
	for _, e := range edges {
		fmt.Printf("%s-%s weight %.0f\n",
			collection.Get(e.A).OriginalID, collection.Get(e.B).OriginalID, e.Weight)
	}
	// Output: a1-b1 weight 5
}

// ExampleTuneThreshold tunes the matcher on labelled pairs (supervised
// mode).
func ExampleTuneThreshold() {
	collection := exampleCollection()
	labeled := []sparker.LabeledPair{
		{Pair: sparker.CandidatePair{A: 0, B: 2}, IsMatch: true},
		{Pair: sparker.CandidatePair{A: 0, B: 3}, IsMatch: false},
		{Pair: sparker.CandidatePair{A: 1, B: 3}, IsMatch: false},
	}
	_, f1 := sparker.TuneThreshold(collection, labeled, sparker.JaccardMeasure(sparker.TokenizerOptions{}))
	fmt.Printf("sample F1 %.1f\n", f1)
	// Output: sample F1 1.0
}

// ExampleNewSession drives the interactive debugging loop.
func ExampleNewSession() {
	ds := sparker.GenerateBenchmark(sparker.AbtBuyConfig())
	gt, err := sparker.NewGroundTruthFromOriginalIDs(ds.Collection, ds.GroundTruth)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	session, err := sparker.NewSession(ds.Collection, sparker.DefaultConfig(), gt)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	before := session.Metrics()
	if err := session.SetSchemaThreshold(1.0); err != nil {
		fmt.Println("error:", err)
		return
	}
	after := session.Metrics()
	fmt.Println("loose schema reduces candidates:", before.Candidates < after.Candidates)
	// Output: loose schema reduces candidates: true
}
