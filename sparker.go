// Package sparker is a Go reproduction of SparkER (EDBT 2019), an entity
// resolution tool designed for distributed execution. It covers the full
// ER stack of the paper: schema-agnostic and loose-schema (Blast)
// meta-blocking, entity matching, and entity clustering, running either
// sequentially or on an embedded mini-Spark dataflow engine with a
// configurable number of simulated executors.
//
// Quick start:
//
//	a, _ := sparker.ReadProfilesCSVFile("abt.csv", "id")
//	b, _ := sparker.ReadProfilesCSVFile("buy.csv", "id")
//	collection := sparker.NewCleanClean(a, b)
//
//	result, err := sparker.Resolve(collection, sparker.DefaultConfig())
//	if err != nil { ... }
//	for _, entity := range result.Entities { ... }
//
// To run distributed, attach a cluster:
//
//	cluster := sparker.NewCluster(8)
//	defer cluster.Close()
//	pipeline := sparker.NewPipeline(cfg, cluster)
//	result, err := pipeline.Resolve(collection)
//
// The package re-exports the building blocks (blocker, matcher,
// clusterer, evaluation, sampling) so each stage can also be driven
// separately, which is what the process-debugging workflow of the paper
// does.
package sparker

import (
	"time"

	"sparker/internal/blocking"
	"sparker/internal/clustering"
	"sparker/internal/core"
	"sparker/internal/dataflow"
	"sparker/internal/datagen"
	"sparker/internal/evaluation"
	"sparker/internal/index"
	"sparker/internal/loader"
	"sparker/internal/looseschema"
	"sparker/internal/matching"
	"sparker/internal/metablocking"
	"sparker/internal/profile"
	"sparker/internal/sampling"
)

// Data model.
type (
	// Profile is one record to resolve.
	Profile = profile.Profile
	// KeyValue is one attribute of a profile.
	KeyValue = profile.KeyValue
	// Collection is the input of an ER task.
	Collection = profile.Collection
	// ProfileID is the dense internal profile identifier.
	ProfileID = profile.ID
)

// NewCleanClean merges two duplicate-free sources into a collection.
func NewCleanClean(a, b []Profile) *Collection { return profile.NewCleanClean(a, b) }

// NewDirty wraps a single dataset with internal duplicates.
func NewDirty(ps []Profile) *Collection { return profile.NewDirty(ps) }

// Pipeline configuration.
type (
	// Config holds every tunable of the pipeline.
	Config = core.Config
	// Pipeline executes the configured ER stack.
	Pipeline = core.Pipeline
	// Result is the full pipeline output.
	Result = core.Result
	// BlockerResult carries the blocker's intermediate artifacts.
	BlockerResult = core.BlockerResult
	// StepReport is a per-stage quality row.
	StepReport = core.StepReport
)

// Measure kinds.
const (
	MeasureJaccard     = core.MeasureJaccard
	MeasureDice        = core.MeasureDice
	MeasureCosineTFIDF = core.MeasureCosineTFIDF
)

// Clusterer kinds.
const (
	ClusterConnectedComponents = core.ClusterConnectedComponents
	ClusterCenter              = core.ClusterCenter
	ClusterMergeCenter         = core.ClusterMergeCenter
	ClusterUniqueMapping       = core.ClusterUniqueMapping
)

// DefaultConfig is the unsupervised mode: loose-schema meta-blocking with
// entropy, Jaccard matching, connected components.
func DefaultConfig() Config { return core.DefaultConfig() }

// SchemaAgnosticConfig is the schema-agnostic baseline of Figure 1.
func SchemaAgnosticConfig() Config { return core.SchemaAgnosticConfig() }

// NewPipeline builds a pipeline; pass a nil cluster for sequential
// execution.
func NewPipeline(cfg Config, cluster *Cluster) *Pipeline { return core.NewPipeline(cfg, cluster) }

// Resolve runs the whole stack sequentially with the given configuration.
func Resolve(c *Collection, cfg Config) (*Result, error) {
	return core.NewPipeline(cfg, nil).Resolve(c)
}

// Cluster is the embedded dataflow engine (the Spark stand-in).
type Cluster = dataflow.Context

// ClusterMetrics is a snapshot of engine counters (tasks, shuffles, ...).
type ClusterMetrics = dataflow.MetricsSnapshot

// NewCluster starts a simulated cluster with the given executor count.
func NewCluster(executors int) *Cluster {
	return dataflow.NewContext(dataflow.WithParallelism(executors))
}

// Blocking and meta-blocking building blocks.
type (
	// Block is one blocking-key bucket.
	Block = blocking.Block
	// BlockCollection is an ordered set of blocks.
	BlockCollection = blocking.Collection
	// CandidatePair is an unordered candidate comparison.
	CandidatePair = blocking.Pair
	// MetaBlockingEdge is a retained comparison with its weight.
	MetaBlockingEdge = metablocking.Edge
	// Partitioning is the loose-schema attribute clustering.
	Partitioning = looseschema.Partitioning
)

// Weight schemes.
const (
	CBS  = metablocking.CBS
	ECBS = metablocking.ECBS
	JS   = metablocking.JS
	EJS  = metablocking.EJS
	ARCS = metablocking.ARCS
)

// Pruning strategies.
const (
	WEP           = metablocking.WEP
	CEP           = metablocking.CEP
	WNP           = metablocking.WNP
	ReciprocalWNP = metablocking.ReciprocalWNP
	CNP           = metablocking.CNP
	ReciprocalCNP = metablocking.ReciprocalCNP
	BlastPruning  = metablocking.BlastPruning
)

// Matching and clustering.
type (
	// Match is a pair labelled as matching, with its score.
	Match = matching.Match
	// Entity is one resolved real-world entity.
	Entity = clustering.Entity
)

// Evaluation.
type (
	// GroundTruth is the set of true matching pairs.
	GroundTruth = evaluation.GroundTruth
	// Metrics are recall / precision / F1 / reduction-ratio numbers.
	Metrics = evaluation.Metrics
)

// NewGroundTruth builds a ground truth from canonical internal-ID pairs.
func NewGroundTruth(pairs []CandidatePair) *GroundTruth {
	return evaluation.NewGroundTruth(pairs)
}

// NewGroundTruthFromOriginalIDs resolves (originalID, originalID) pairs
// against the collection.
func NewGroundTruthFromOriginalIDs(c *Collection, pairs [][2]string) (*GroundTruth, error) {
	return evaluation.FromOriginalIDs(c, pairs)
}

// EvaluatePairs scores a candidate-pair set against a ground truth.
func EvaluatePairs(candidates []CandidatePair, gt *GroundTruth, maxComparisons int64) Metrics {
	return evaluation.EvaluatePairs(candidates, gt, maxComparisons)
}

// LostPairs lists ground-truth pairs missing from the candidate set.
func LostPairs(candidates []CandidatePair, gt *GroundTruth) []CandidatePair {
	return evaluation.LostPairs(candidates, gt)
}

// evaluationSharedKeys adapts evaluation.SharedKeys for the step API.
func evaluationSharedKeys(c *Collection, opts blocking.Options, a, b ProfileID) []string {
	return evaluation.SharedKeys(c, opts, a, b)
}

// Sampling (Section 3 debug workflow).
type (
	// DebugSample is a representative sub-collection for fast tuning.
	DebugSample = sampling.Sample
	// SampleOptions configures debug sampling.
	SampleOptions = sampling.Options
)

// BuildDebugSample draws the Magellan-style debug sample.
func BuildDebugSample(c *Collection, opts SampleOptions) *DebugSample {
	return sampling.Build(c, opts)
}

// IO.
var (
	// ReadProfilesCSVFile parses one source dataset from a CSV file.
	ReadProfilesCSVFile = loader.ReadProfilesCSVFile
	// ReadGroundTruthCSVFile parses a two-column ground-truth CSV file.
	ReadGroundTruthCSVFile = loader.ReadGroundTruthCSVFile
)

// Online serving (the incremental entity index).
type (
	// Index is the concurrent, sharded, incrementally maintainable entity
	// index behind sparker-serve.
	Index = index.Index
	// IndexConfig holds the index tunables.
	IndexConfig = index.Config
	// IndexCandidate is one ranked blocking candidate of a query.
	IndexCandidate = index.Candidate
	// IndexQueryResult carries ranked candidates plus probe accounting.
	IndexQueryResult = index.QueryResult
	// IndexResolution is the scored (matched) result of one point lookup.
	IndexResolution = index.Resolution
	// IndexSnapshot is a consistent point-in-time index summary.
	IndexSnapshot = index.Snapshot
	// IndexPersistState describes an index's durable-snapshot state.
	IndexPersistState = index.PersistState
	// IndexLSHConfig configures the MinHash/LSH probe subsystem: a
	// second candidate-generation path beside the token postings for
	// queries whose tokens are all too common (purged) or too rare.
	IndexLSHConfig = index.LSHConfig
	// IndexProbeOptions overrides the probe policy for one query
	// (Index.QueryWith / Index.ResolveWith).
	IndexProbeOptions = index.ProbeOptions
	// IndexLSHStats summarises the probe subsystem in IndexSnapshot.
	IndexLSHStats = index.LSHStats
	// IndexBudget bounds the work of one resolution (wall-clock
	// deadline and/or max scored comparisons); a tripped budget returns
	// the best-first prefix marked Truncated. The zero value is
	// unlimited and bitwise-identical to the unbudgeted path.
	IndexBudget = index.Budget
	// IndexResolveOptions carries the per-request probe overrides plus
	// the work budget (Index.ResolveWithOptions).
	IndexResolveOptions = index.ResolveOptions
)

// IndexDeadlineIn converts a wall-clock budget into the monotonic
// deadline IndexBudget.Deadline expects.
func IndexDeadlineIn(d time.Duration) int64 { return index.DeadlineIn(d) }

// LSH probe policies (IndexLSHConfig.Policy, IndexProbeOptions.Policy).
const (
	// ProbeOff disables the LSH probe: token postings only (default).
	ProbeOff = index.ProbeOff
	// ProbeFallback probes LSH only when token blocking produced fewer
	// than IndexLSHConfig.FallbackFloor candidates.
	ProbeFallback = index.ProbeFallback
	// ProbeUnion always probes LSH and unions both candidate sets.
	ProbeUnion = index.ProbeUnion
)

// LSH probe-only candidate weighting (IndexLSHConfig.Weight).
const (
	// LSHWeightJaccard weights probe-only candidates by the estimated
	// Jaccard similarity of the MinHash signatures (default).
	LSHWeightJaccard = index.LSHWeightJaccard
	// LSHWeightBuckets weights probe-only candidates by shared-bucket
	// count.
	LSHWeightBuckets = index.LSHWeightBuckets
)

// ParseProbePolicy parses "off", "fallback" or "union" — the flag/wire
// form of a probe policy.
func ParseProbePolicy(s string) (index.ProbePolicy, error) { return index.ParseProbePolicy(s) }

// Durable index snapshots.
var (
	// ErrIndexReadOnly is returned by Upsert on a read-only replica.
	ErrIndexReadOnly = index.ErrReadOnly
	// ErrIndexSnapshotVersion marks a snapshot file written by an
	// incompatible format version.
	ErrIndexSnapshotVersion = index.ErrSnapshotVersion
	// ErrIndexOpLogGap is returned by Index.OpsSince when the requested
	// position has been evicted from the op log's retention window: the
	// consumer must restart from a full snapshot.
	ErrIndexOpLogGap = index.ErrOpLogGap
	// ErrIndexOpLogDisabled is returned by the op-log surface when the
	// index was built without IndexOpLogConfig.Enabled.
	ErrIndexOpLogDisabled = index.ErrOpLogDisabled
)

type (
	// IndexOpLogConfig enables and bounds the in-memory op log
	// (IndexConfig.OpLog): the source of delta snapshots
	// (SaveIndexDelta) and of the replication feed (Index.OpsSince /
	// Index.ApplyOps).
	IndexOpLogConfig = index.OpLogConfig
	// IndexOpLogStats summarises the op log in IndexSnapshot.
	IndexOpLogStats = index.OpLogStats
	// IndexWALConfig configures the durable on-disk op log
	// (Index.OpenWAL): rotating CRC-framed segment files every op is
	// appended to before it mutates the index, replayed at boot for a
	// crash-safe restart.
	IndexWALConfig = index.WALConfig
	// IndexWALSyncPolicy picks when WAL appends reach stable storage.
	IndexWALSyncPolicy = index.WALSyncPolicy
	// IndexWALRecovery reports what Index.OpenWAL found on disk:
	// segments scanned, ops replayed or skipped, bytes truncated off a
	// torn tail, damaged segments dropped.
	IndexWALRecovery = index.WALRecovery
	// IndexWALStats summarises the attached WAL in IndexSnapshot.
	IndexWALStats = index.WALStats
)

// WAL fsync policies (IndexWALConfig.Sync).
const (
	// WALSyncInterval flushes appends from a background loop every
	// IndexWALConfig.SyncInterval (default): bounded data loss, near
	// in-memory append latency.
	WALSyncInterval = index.WALSyncInterval
	// WALSyncAlways fsyncs every append before it is applied: zero data
	// loss on power failure, one disk sync per write.
	WALSyncAlways = index.WALSyncAlways
	// WALSyncNever leaves flushing to the OS page cache (and to a clean
	// close): crash-safe against process death, not against power loss.
	WALSyncNever = index.WALSyncNever
)

// ParseWALSyncPolicy parses "always", "interval" (or "") and "never" —
// the flag/wire form of a WAL fsync policy.
func ParseWALSyncPolicy(s string) (IndexWALSyncPolicy, error) {
	return index.ParseWALSyncPolicy(s)
}

// SaveIndexDelta appends the ops applied since the last save to the
// snapshot at path — persistence cost proportional to the write rate,
// not the index size. It falls back to a full save whenever appending
// would be unsafe (no previous save at this path, a file that changed
// underneath, ops already evicted from the op log). A full SaveIndex
// compacts the file back to a pure snapshot.
func SaveIndexDelta(x *Index, path string) (IndexPersistState, error) { return x.SaveDelta(path) }

// SaveIndex writes a durable snapshot of the index to path, atomically
// (temp file + rename): a crash mid-save never corrupts a previous
// snapshot at the same path. Saving a read-only replica returns
// ErrIndexReadOnly — replicas consume snapshots, they never produce
// them.
func SaveIndex(x *Index, path string) (IndexPersistState, error) { return x.Save(path) }

// LoadIndex restores a fully queryable index from a snapshot file
// without re-tokenizing or re-indexing. The cfg must carry the same
// tokenizer/clustering/entropy/measure the snapshot was saved under
// (code is not serialized); the shard count comes from the file, and so
// do the MinHash parameters when cfg enables LSH and the file carries
// signatures (v2+ snapshots). A
// missing file surfaces as fs.ErrNotExist and an incompatible format as
// ErrIndexSnapshotVersion, both via errors.Is. Use Index.SetReadOnly to
// serve the restored index as a write-rejecting replica.
func LoadIndex(path string, cfg IndexConfig) (*Index, error) { return index.Load(path, cfg) }

// Index candidate-pruning rules.
const (
	// IndexPruneMean keeps candidates at or above the neighbourhood mean
	// weight (WNP-style).
	IndexPruneMean = index.PruneMean
	// IndexPruneTopK keeps the MaxCandidates heaviest candidates
	// (CNP-style).
	IndexPruneTopK = index.PruneTopK
	// IndexPruneNone disables candidate pruning.
	IndexPruneNone = index.PruneNone
)

// DefaultIndexConfig is the unsupervised serving configuration.
func DefaultIndexConfig() IndexConfig { return index.DefaultConfig() }

// NewIndex builds the online index from a batch collection, preserving
// internal profile IDs.
func NewIndex(c *Collection, cfg IndexConfig) (*Index, error) {
	return index.NewFromCollection(c, cfg)
}

// NewEmptyIndex starts an empty index to be filled through Upsert. To
// serve an index over HTTP, see the sparker/serve subpackage (kept out
// of this package so batch-only consumers do not link net/http).
func NewEmptyIndex(clean bool, cfg IndexConfig) *Index { return index.New(clean, cfg) }

// Synthetic benchmark.
type (
	// BenchmarkConfig sizes the generated SynthAbtBuy benchmark.
	BenchmarkConfig = datagen.Config
	// BenchmarkDataset is a generated collection plus its ground truth.
	BenchmarkDataset = datagen.Dataset
)

// AbtBuyConfig mirrors the Abt-Buy dataset sizes used in the demo.
func AbtBuyConfig() BenchmarkConfig { return datagen.AbtBuy() }

// GenerateBenchmark builds the synthetic clean-clean benchmark.
func GenerateBenchmark(cfg BenchmarkConfig) *BenchmarkDataset { return datagen.Generate(cfg) }
