// Scaling: the "Scaling Entity Resolution" part of the paper — run the
// distributed blocker and broadcast-join meta-blocker on simulated
// clusters of growing size and watch wall time, tasks, and shuffle volume.
// Also contrasts the broadcast-join plan with the naive plan that pushes
// every materialised comparison through the shuffle.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"
	"time"

	"sparker"
)

func main() {
	cfg := sparker.AbtBuyConfig().Scaled(2) // ~4.3k profiles
	ds := sparker.GenerateBenchmark(cfg)
	collection := ds.Collection
	fmt.Printf("dataset: %d profiles\n\n", collection.Size())

	part := sparker.PartitionAttributes(collection, sparker.LooseSchemaOptions{Threshold: 0.3})
	opts := sparker.BlockingOptions{Clustering: part}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "executors\tblocking\tmeta-blocking\ttotal\tspeedup\ttasks\tshuffle records")
	var base time.Duration
	for _, executors := range []int{1, 2, 4, 8} {
		cluster := sparker.NewCluster(executors)
		partitions := 2 * executors

		start := time.Now()
		blocks, err := sparker.DistributedTokenBlocking(cluster, collection, opts, partitions)
		if err != nil {
			log.Fatal(err)
		}
		blockingTime := time.Since(start)

		filtered := sparker.FilterBlocks(sparker.PurgeBlocks(blocks, 0.5), 0.8)
		idx := sparker.BuildBlockIndex(filtered)

		start = time.Now()
		edges, err := sparker.RunMetaBlockingDistributed(cluster, idx, sparker.MetaBlockingOptions{
			Scheme: sparker.CBS, Pruning: sparker.BlastPruning, Entropy: part,
		}, partitions)
		if err != nil {
			log.Fatal(err)
		}
		metaTime := time.Since(start)

		total := blockingTime + metaTime
		if base == 0 {
			base = total
		}
		m := cluster.Metrics()
		fmt.Fprintf(w, "%d\t%v\t%v\t%v\t%.2fx\t%d\t%d\n",
			executors, blockingTime.Round(time.Millisecond), metaTime.Round(time.Millisecond),
			total.Round(time.Millisecond), float64(base)/float64(total),
			m.TasksLaunched, m.ShuffleRecords)
		cluster.Close()
		_ = edges
	}
	w.Flush()

	fmt.Println("\nbroadcast-join vs naive edge materialisation (4 executors, WEP/CBS):")
	filtered := sparker.FilterBlocks(sparker.PurgeBlocks(sparker.TokenBlocking(collection, opts), 0.5), 0.8)
	idx := sparker.BuildBlockIndex(filtered)

	cluster := sparker.NewCluster(4)
	start := time.Now()
	bEdges, err := sparker.RunMetaBlockingDistributed(cluster, idx, sparker.MetaBlockingOptions{
		Scheme: sparker.CBS, Pruning: sparker.WEP,
	}, 8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  broadcast-join: %v, %d shuffle records, %d edges\n",
		time.Since(start).Round(time.Millisecond), cluster.Metrics().ShuffleRecords, len(bEdges))
	cluster.Close()
}
