// Serving: build the online entity index from a catalog, stand up the
// sparker-serve HTTP surface, and exercise query / upsert / stats end to
// end — the workflow of a production resolver answering point lookups
// instead of re-running the batch pipeline per request. The later
// sections are the operational walkthroughs: snapshot the index to
// disk, tear the process down, and warm-restart a new server from the
// file without re-indexing; then replicate a leader to a read-only
// follower over HTTP and kill the leader mid-stream; finally attach
// the durable write-ahead log, SIGKILL the leader mid-traffic, and
// restart it with its followers never re-bootstrapping; and last,
// front three shard processes with a scatter-gather coordinator,
// verify the merged ranking equals the single-node one, and kill a
// shard to watch answers degrade instead of fail.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync/atomic"
	"time"

	"sparker"
	"sparker/serve"
)

func main() {
	// 1. Build the index once from an existing clean-clean catalog.
	mk := func(id string, kvs ...[2]string) sparker.Profile {
		p := sparker.Profile{OriginalID: id}
		for _, kv := range kvs {
			p.Add(kv[0], kv[1])
		}
		return p
	}
	abt := []sparker.Profile{
		mk("a1", [2]string{"name", "Acme TurboBlend 5000 blender"},
			[2]string{"description", "powerful kitchen blender with turbo mode"}),
		mk("a2", [2]string{"name", "Zenix SoundWave speaker"},
			[2]string{"description", "portable bluetooth speaker, long battery"}),
		mk("a3", [2]string{"name", "Acme QuietCool fan"},
			[2]string{"description", "silent desk fan three speeds"}),
	}
	buy := []sparker.Profile{
		mk("b1", [2]string{"title", "TurboBlend 5000 by Acme (blender)"}),
		mk("b2", [2]string{"title", "Zenix SoundWave portable speaker"}),
		mk("b3", [2]string{"title", "Luxor desk lamp"}),
	}
	collection := sparker.NewCleanClean(abt, buy)

	idx, err := sparker.NewIndex(collection, sparker.DefaultIndexConfig())
	if err != nil {
		log.Fatal(err)
	}

	// 2. Library-level point lookup: sub-millisecond, no batch re-run.
	query := mk("probe", [2]string{"name", "Acme TurboBlend 5000"})
	res := idx.Resolve(&query)
	fmt.Printf("library query: %d candidate(s), %d comparison(s) against %d profiles\n",
		len(res.Query.Candidates), res.Comparisons, idx.Size())
	for _, m := range res.Matches {
		p, _ := idx.Get(m.B)
		fmt.Printf("  match %s (score %.2f)\n", p.OriginalID, m.Score)
	}

	// 3. The same index over HTTP — exactly what sparker-serve serves.
	srv := httptest.NewServer(serve.NewHandler(idx))
	defer srv.Close()

	post := func(path, body string) map[string]any {
		resp, err := http.Post(srv.URL+path, "application/json", bytes.NewBufferString(body))
		if err != nil {
			log.Fatal(err)
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			log.Fatalf("POST %s: %s", path, raw)
		}
		var out map[string]any
		if err := json.Unmarshal(raw, &out); err != nil {
			log.Fatal(err)
		}
		return out
	}

	// Bulk-load two new source-B products.
	bulk := post("/bulk?source=1",
		`{"id": "b4", "title": "Starlight projector lamp"}`+"\n"+
			`{"id": "b5", "title": "Acme TurboBlend 5000 refurbished blender"}`)
	fmt.Printf("bulk load: %v new profiles\n", bulk["upserted"])

	// Query: the refurbished blender now shows up as a second match.
	q := post("/query", `{"id": "probe", "name": "Acme TurboBlend 5000 blender"}`)
	fmt.Printf("http query: %d candidate(s), %v posting(s) scanned\n",
		len(q["candidates"].([]any)), q["postings_scanned"])
	for _, m := range q["matches"].([]any) {
		mm := m.(map[string]any)
		fmt.Printf("  match %v (score %.2f)\n", mm["original_id"], mm["score"])
	}

	// Upsert replaces in place: b4 becomes a blender too.
	up := post("/upsert?source=1", `{"id": "b4", "title": "Acme blender stand"}`)
	fmt.Printf("upsert b4: created=%v\n", up["created"])

	// Stats reflect everything that happened.
	resp, err := http.Get(srv.URL + "/stats")
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var snap sparker.IndexSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stats: %d profiles, %d blocks across %d shards, %d queries, %d upserts\n",
		snap.Profiles, snap.Blocks, snap.Shards, snap.Queries, snap.Upserts)

	// 4. Observability: the same traffic left per-stage latency
	// histograms behind. ?debug=1 returns one query's breakdown inline,
	// and /metrics serves the Prometheus text exposition a scraper would
	// collect — count how many sparker_* families this little session
	// already produced.
	dbg := post("/query?debug=1", `{"id": "probe", "name": "Acme TurboBlend 5000 blender"}`)
	if d, ok := dbg["debug"].(map[string]any); ok {
		stages := d["stages"].([]any)
		first := stages[0].(map[string]any)
		fmt.Printf("debug breakdown: %d stages, total %v ns (first: %v=%v ns)\n",
			len(stages), d["total_nanos"], first["stage"], first["nanos"])
	}
	mresp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		log.Fatal(err)
	}
	expo, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	families := map[string]bool{}
	for _, line := range bytes.Split(expo, []byte("\n")) {
		if f, ok := bytes.CutPrefix(line, []byte("# TYPE ")); ok {
			families[string(bytes.Fields(f)[0])] = true
		}
	}
	fmt.Printf("prometheus scrape: %d metric families exposed on /metrics\n", len(families))

	// 5. Kill and restart: snapshot the index, "crash" the process
	// (drop the server and the in-memory index), then warm-restart from
	// the file. This is what `sparker-serve -snapshot idx.snap` does at
	// boot and on SIGTERM — restores without re-tokenizing anything.
	//
	// Snapshot format note: since the LSH probe subsystem landed, Save
	// writes format version 2, which adds an LSH section (MinHash
	// parameters and per-profile signatures when the index has LSH
	// enabled). Version-1 files written before the bump still load —
	// and if the loading config enables LSH, signatures are recomputed
	// from the stored token bags at boot, exactly as a fresh build
	// would produce them.
	dir, err := os.MkdirTemp("", "sparker-serving")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	snapPath := filepath.Join(dir, "idx.snap")

	st, err := sparker.SaveIndex(idx, snapPath)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("saved snapshot: %d bytes at %s\n", st.Bytes, st.Path)
	srv.Close() // the "kill": the old process and its index are gone

	restored, err := sparker.LoadIndex(snapPath, sparker.DefaultIndexConfig())
	if err != nil {
		log.Fatal(err)
	}
	srv2 := httptest.NewServer(serve.NewHandlerOptions(restored, serve.Options{SnapshotPath: snapPath}))
	defer srv2.Close()

	// The restored index answers immediately — same profiles, same
	// counters, no rebuild. Compare the pre-kill query against it.
	q2 := func() map[string]any {
		resp, err := http.Post(srv2.URL+"/query", "application/json",
			bytes.NewBufferString(`{"id": "probe", "name": "Acme TurboBlend 5000 blender"}`))
		if err != nil {
			log.Fatal(err)
		}
		defer resp.Body.Close()
		var out map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			log.Fatal(err)
		}
		return out
	}()
	fmt.Printf("after restart: %d candidate(s), %d profiles served warm from disk\n",
		len(q2["candidates"].([]any)), restored.Size())

	rs := restored.Snapshot()
	fmt.Printf("restored stats: restored=%v, %d queries and %d upserts carried over\n",
		rs.Persist.Restored, rs.Queries, rs.Upserts)

	// A replica would instead load the same file read-only:
	replica, err := sparker.LoadIndex(snapPath, sparker.DefaultIndexConfig())
	if err != nil {
		log.Fatal(err)
	}
	replica.SetReadOnly(true)
	if _, _, err := replica.Upsert(sparker.Profile{OriginalID: "nope"}); err != nil {
		fmt.Printf("replica rejects writes: %v\n", err)
	}

	// 6. Overload behavior: budgets and load-shedding. A query can cap
	// its own work — ?max_comparisons=1 scores only the single
	// best-ranked candidate and marks the answer truncated. Larger
	// budgets only ever add matches (the candidates are ranked before
	// scoring), so a truncated answer is the best-first prefix of the
	// full one.
	capped := func() map[string]any {
		resp, err := http.Post(srv2.URL+"/query?max_comparisons=1", "application/json",
			bytes.NewBufferString(`{"id": "probe", "name": "Acme TurboBlend 5000 blender"}`))
		if err != nil {
			log.Fatal(err)
		}
		defer resp.Body.Close()
		var out map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			log.Fatal(err)
		}
		return out
	}()
	fmt.Printf("budgeted query: %v comparison(s), truncated=%v at stage %q\n",
		capped["comparisons"], capped["truncated"], capped["truncated_stage"])

	// With -max-inflight (Options.MaxInFlight), over-limit requests shed
	// with 429 + Retry-After instead of queueing. Simulate saturation
	// with a one-slot gate and a scorer that parks the first query via
	// the fault-injection hook (IndexConfig.ScoreHook).
	entered := make(chan struct{})
	release := make(chan struct{})
	blocked := false
	shedCfg := sparker.DefaultIndexConfig()
	shedCfg.ScoreHook = func() {
		if !blocked { // queries run one at a time behind the 1-slot gate
			blocked = true
			close(entered)
			<-release
		}
	}
	shedIdx, err := sparker.NewIndex(collection, shedCfg)
	if err != nil {
		log.Fatal(err)
	}
	srv3 := httptest.NewServer(serve.NewHandlerOptions(shedIdx, serve.Options{MaxInFlight: 1}))
	defer srv3.Close()

	slowDone := make(chan struct{})
	go func() {
		defer close(slowDone)
		resp, err := http.Post(srv3.URL+"/query", "application/json",
			bytes.NewBufferString(`{"id": "probe", "name": "Acme TurboBlend 5000 blender"}`))
		if err != nil {
			log.Fatal(err)
		}
		resp.Body.Close()
	}()
	<-entered // the slow query now holds the only admission slot

	resp2, err := http.Post(srv3.URL+"/query", "application/json",
		bytes.NewBufferString(`{"id": "probe", "name": "Zenix SoundWave speaker"}`))
	if err != nil {
		log.Fatal(err)
	}
	shedBody, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	fmt.Printf("saturated server shed with %d (Retry-After %s): %s",
		resp2.StatusCode, resp2.Header.Get("Retry-After"), shedBody)

	close(release) // the slow query finishes, the gate drains
	<-slowDone

	// 7. Replication: a leader streams its op log to a read replica over
	// HTTP. This is what `sparker-serve -follow <leader-url>` wires up —
	// the follower bootstraps from GET /snapshot, serves read-only, and
	// tails GET /deltas. Build a leader whose index keeps an op log
	// (sparker-serve always enables it; embedders opt in via
	// IndexOpLogConfig):
	leaderCfg := sparker.DefaultIndexConfig()
	leaderCfg.OpLog = sparker.IndexOpLogConfig{Enabled: true}
	leaderIdx, err := sparker.NewIndex(collection, leaderCfg)
	if err != nil {
		log.Fatal(err)
	}
	leaderH := serve.NewHandlerOptions(leaderIdx, serve.Options{})
	leader := httptest.NewServer(leaderH)

	follower := serve.NewFollower(leader.URL, leaderCfg, serve.FollowerOptions{
		PollWait: 100 * time.Millisecond,
		Interval: 10 * time.Millisecond,
	})
	followerIdx, err := follower.Bootstrap(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	followerH := serve.NewHandlerOptions(followerIdx, serve.Options{Follower: follower})
	followerSrv := httptest.NewServer(followerH)
	defer followerSrv.Close()
	runCtx, cancelRun := context.WithCancel(context.Background())
	defer cancelRun()
	go func() { _ = follower.Run(runCtx, followerH) }()
	fmt.Printf("follower bootstrapped: %d profiles at seq %d\n",
		followerIdx.Size(), followerIdx.Seq())

	// Write through the leader; the delta feed carries it to the
	// follower within a poll. Wait until the follower's applied sequence
	// number reaches the leader's (exactly what the CI smoke polls for).
	postTo := func(base, path, body string) {
		resp, err := http.Post(base+path, "application/json", bytes.NewBufferString(body))
		if err != nil {
			log.Fatal(err)
		}
		resp.Body.Close()
	}
	postTo(leader.URL, "/upsert?source=1", `{"id": "b6", "title": "Acme TurboBlend 6000 blender"}`)
	for followerH.Index().Seq() < leaderIdx.Seq() {
		time.Sleep(5 * time.Millisecond)
	}
	fmt.Printf("replicated: follower at seq %d, lag %.0fs\n",
		follower.Stats().AppliedSeq, follower.Stats().LagSeconds)

	// Both must answer byte-identically: the follower's index is the
	// same state at the same sequence number.
	ask := func(base string) []byte {
		resp, err := http.Post(base+"/query", "application/json",
			bytes.NewBufferString(`{"id": "probe", "name": "Acme TurboBlend 6000"}`))
		if err != nil {
			log.Fatal(err)
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body)
		return raw
	}
	leaderAnswer, followerAnswer := ask(leader.URL), ask(followerSrv.URL)
	fmt.Printf("leader and follower answers identical: %v\n",
		bytes.Equal(leaderAnswer, followerAnswer))

	// Kill the leader mid-stream. The follower keeps serving the state
	// at its last applied sequence number — same answers, still ready —
	// and resumes tailing when a leader comes back.
	leader.Close()
	afterKill := ask(followerSrv.URL)
	fmt.Printf("after leader death: follower still answers identically: %v (seq %d)\n",
		bytes.Equal(leaderAnswer, afterKill), followerH.Index().Seq())

	// 8. Durability: the leader above kept its op log only in memory, so
	// a real crash would evict the window and force every follower
	// through a full re-bootstrap. A leader started with `-oplog-dir`
	// also appends each op to an on-disk segment file *before* applying
	// it (the write-ahead log); this walkthrough is the SIGKILL version
	// of section 5 — kill -9, so nothing gets to say goodbye.
	walDir := filepath.Join(dir, "oplog")
	durIdx, err := sparker.NewIndex(collection, leaderCfg)
	if err != nil {
		log.Fatal(err)
	}
	// fsync-always: every append reaches stable storage before the op
	// is acknowledged, so even a power cut loses nothing.
	walCfg := sparker.IndexWALConfig{Dir: walDir, Sync: sparker.WALSyncAlways}
	if _, err := durIdx.OpenWAL(walCfg); err != nil {
		log.Fatal(err)
	}
	durSnap := filepath.Join(dir, "durable.snap")
	if _, err := sparker.SaveIndex(durIdx, durSnap); err != nil {
		log.Fatal(err)
	}

	// A stable URL across the "restart": the handler behind the listener
	// is swappable, standing in for a port that outlives the process.
	var front atomic.Pointer[serve.Handler]
	front.Store(serve.NewHandlerOptions(durIdx, serve.Options{}))
	frontSrv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		front.Load().ServeHTTP(w, r)
	}))
	defer frontSrv.Close()

	tail := serve.NewFollower(frontSrv.URL, leaderCfg, serve.FollowerOptions{
		PollWait: 100 * time.Millisecond,
		Interval: 10 * time.Millisecond,
	})
	tailIdx, err := tail.Bootstrap(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	tailH := serve.NewHandlerOptions(tailIdx, serve.Options{Follower: tail})
	tailCtx, cancelTail := context.WithCancel(context.Background())
	defer cancelTail()
	go func() { _ = tail.Run(tailCtx, tailH) }()

	// Mid-traffic writes land on disk and replicate...
	postTo(frontSrv.URL, "/upsert?source=1", `{"id": "b7", "title": "Acme QuietCool fan mk2"}`)
	postTo(frontSrv.URL, "/upsert?source=1", `{"id": "b8", "title": "Zenix SoundWave mini speaker"}`)
	for tailH.Index().Seq() < durIdx.Seq() {
		time.Sleep(5 * time.Millisecond)
	}
	deadSeq := durIdx.Seq()

	// ...then kill -9: abandon the index without CloseWAL. No final
	// flush, no final snapshot — only the segments already on disk.
	durIdx = nil

	// Restart: restore the snapshot, then replay the log tail past it.
	// Recovery also re-retains the replayed frames in the in-memory
	// window, so the follower's next /deltas poll is answered from
	// before the crash — no 410, no re-bootstrap.
	recovered, err := sparker.LoadIndex(durSnap, leaderCfg)
	if err != nil {
		log.Fatal(err)
	}
	rec, err := recovered.OpenWAL(walCfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after kill -9: replayed %d op(s) from the log, seq %d (pre-kill %d)\n",
		rec.Replayed, recovered.Seq(), deadSeq)
	front.Store(serve.NewHandlerOptions(recovered, serve.Options{}))

	// The follower keeps tailing across the restart as if nothing
	// happened: new writes flow, the resync counter stays at zero.
	postTo(frontSrv.URL, "/upsert?source=1", `{"id": "b9", "title": "Luxor floor lamp"}`)
	for tailH.Index().Seq() < recovered.Seq() {
		time.Sleep(5 * time.Millisecond)
	}
	fmt.Printf("follower caught up at seq %d with %d resync(s)\n",
		tail.Stats().AppliedSeq, tail.Stats().Resyncs)
	if err := recovered.CloseWAL(); err != nil {
		log.Fatal(err)
	}

	// 9. Cluster mode: a scatter-gather coordinator over shard
	// processes — what `sparker-serve -shards http://a,http://b` runs.
	// Writes hash-route to one shard by original profile ID; queries
	// fan out to every shard and the ranked partials merge
	// deterministically on global (original_id, source) identity.
	//
	// The equivalence config disables the knobs that depend on
	// shard-local collection statistics (top-k pruning, purge/filter
	// thresholds), so the sharded ranking is *exactly* the single-node
	// ranking. On the command line these are
	// `-prune none -filter-ratio 1 -max-block-fraction 1`.
	equivCfg := sparker.DefaultIndexConfig()
	equivCfg.Prune = sparker.IndexPruneNone
	equivCfg.FilterRatio = 1
	equivCfg.MaxBlockFraction = 1

	var shardURLs []string
	var shardSrvs []*httptest.Server
	for i := 0; i < 3; i++ {
		s := httptest.NewServer(serve.NewHandler(sparker.NewEmptyIndex(false, equivCfg)))
		defer s.Close()
		shardSrvs = append(shardSrvs, s)
		shardURLs = append(shardURLs, s.URL)
	}
	clu, err := serve.NewCluster(shardURLs, serve.ClusterOptions{})
	if err != nil {
		log.Fatal(err)
	}
	defer clu.Close()
	coord := httptest.NewServer(clu)
	defer coord.Close()

	// A single node holding the whole catalog, for comparison.
	single := httptest.NewServer(serve.NewHandler(sparker.NewEmptyIndex(false, equivCfg)))
	defer single.Close()

	catalog := []string{
		`{"id": "c1", "name": "acme turboblend 5000 blender"}`,
		`{"id": "c2", "name": "acme turboblend 6000 blender refurbished"}`,
		`{"id": "c3", "name": "zenix soundwave portable speaker"}`,
		`{"id": "c4", "name": "luxor desk lamp walnut"}`,
	}
	for _, row := range catalog {
		postTo(coord.URL, "/v1/upsert?source=1", row)
		postTo(single.URL, "/v1/upsert?source=1", row)
	}
	fmt.Printf("cluster: %d profiles hash-routed across %d shards (c1's home shard: %d)\n",
		len(catalog), len(shardURLs), serve.ShardFor("c1", len(shardURLs)))

	clusterQ := `{"id": "probe", "name": "acme turboblend 5000 blender"}`
	singleAnswer := askPath(single.URL, "/v1/query", clusterQ)
	merged := askPath(coord.URL, "/v1/query", clusterQ)
	var mergedResp, singleResp struct {
		Matches []struct {
			OriginalID string  `json:"original_id"`
			Score      float64 `json:"score"`
		} `json:"matches"`
		Cluster struct {
			Shards    int      `json:"shards"`
			Responded int      `json:"responded"`
			Degraded  bool     `json:"degraded"`
			Failed    []string `json:"failed"`
		} `json:"cluster"`
	}
	if err := json.Unmarshal(merged, &mergedResp); err != nil {
		log.Fatal(err)
	}
	if err := json.Unmarshal(singleAnswer, &singleResp); err != nil {
		log.Fatal(err)
	}
	sameRanking := len(mergedResp.Matches) == len(singleResp.Matches)
	for i := range mergedResp.Matches {
		if !sameRanking ||
			mergedResp.Matches[i].OriginalID != singleResp.Matches[i].OriginalID ||
			mergedResp.Matches[i].Score != singleResp.Matches[i].Score {
			sameRanking = false
			break
		}
	}
	fmt.Printf("scatter-gather: %d/%d shards responded, ranking identical to single node: %v\n",
		mergedResp.Cluster.Responded, mergedResp.Cluster.Shards, sameRanking)

	// Kill one shard: the coordinator answers 200 with the surviving
	// shards' merged results, marked degraded — never a 5xx. Only when
	// every shard is gone does a query fail.
	shardSrvs[0].Close()
	degraded := askPath(coord.URL, "/v1/query", clusterQ)
	if err := json.Unmarshal(degraded, &mergedResp); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after shard death: degraded=%v, %d/%d responded, %d failed shard(s)\n",
		mergedResp.Cluster.Degraded, mergedResp.Cluster.Responded,
		mergedResp.Cluster.Shards, len(mergedResp.Cluster.Failed))
}

// askPath POSTs body to base+path and returns the raw response.
func askPath(base, path, body string) []byte {
	resp, err := http.Post(base+path, "application/json", bytes.NewBufferString(body))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	return raw
}
