// Quickstart: resolve a small product catalog end to end with the
// unsupervised default configuration, entirely through the public API.
package main

import (
	"fmt"
	"log"

	"sparker"
)

func main() {
	// Build two tiny clean sources by hand. In a real application these
	// would come from sparker.ReadProfilesCSVFile.
	mk := func(id string, kvs ...[2]string) sparker.Profile {
		p := sparker.Profile{OriginalID: id}
		for _, kv := range kvs {
			p.Add(kv[0], kv[1])
		}
		return p
	}
	abt := []sparker.Profile{
		mk("a1", [2]string{"name", "Acme TurboBlend 5000 blender"},
			[2]string{"description", "powerful kitchen blender with turbo mode"},
			[2]string{"price", "89.99"}),
		mk("a2", [2]string{"name", "Zenix SoundWave speaker"},
			[2]string{"description", "portable bluetooth speaker, long battery"},
			[2]string{"price", "49.99"}),
		mk("a3", [2]string{"name", "Acme QuietCool fan"},
			[2]string{"description", "silent desk fan three speeds"},
			[2]string{"price", "29.99"}),
	}
	buy := []sparker.Profile{
		mk("b1", [2]string{"title", "TurboBlend 5000 by Acme (blender)"},
			[2]string{"list_price", "89.99"}),
		mk("b2", [2]string{"title", "Zenix SoundWave portable speaker"},
			[2]string{"list_price", "47.50"}),
		mk("b3", [2]string{"title", "Luxor desk lamp"},
			[2]string{"list_price", "19.99"}),
	}

	collection := sparker.NewCleanClean(abt, buy)

	cfg := sparker.DefaultConfig()
	cfg.LooseSchema = false // tiny data: schema-agnostic keys are enough
	cfg.UseEntropy = false
	cfg.Pruning = sparker.WEP

	result, err := sparker.Resolve(collection, cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("candidate pairs after blocking: %d\n", len(result.Blocker.Candidates))
	fmt.Printf("matching pairs: %d\n", len(result.Matches))
	for _, m := range result.Matches {
		fmt.Printf("  %s <-> %s (score %.2f)\n",
			collection.Get(m.A).OriginalID, collection.Get(m.B).OriginalID, m.Score)
	}
	fmt.Printf("entities:\n")
	for _, e := range result.Entities {
		fmt.Printf("  entity %d:", e.ID)
		for _, id := range e.Profiles {
			fmt.Printf(" %s", collection.Get(id).OriginalID)
		}
		fmt.Println()
	}
}
