// AbtBuy: the paper's demo scenario — full loose-schema meta-blocking
// pipeline on the SynthAbtBuy benchmark with per-step evaluation against
// the ground truth, exactly the numbers the demo GUI shows after each
// stage.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"sparker"
)

func main() {
	ds := sparker.GenerateBenchmark(sparker.AbtBuyConfig())
	collection := ds.Collection
	gt, err := sparker.NewGroundTruthFromOriginalIDs(collection, ds.GroundTruth)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("SynthAbtBuy: %d + %d profiles, %d true matches\n\n",
		collection.Separator, collection.Size()-int(collection.Separator), gt.Size())

	// Unsupervised default: loose-schema meta-blocking with entropy.
	result, err := sparker.Resolve(collection, sparker.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("attribute partitions found by LSH:")
	fmt.Print(result.Blocker.Partitioning)

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "\nstep\tcandidates\trecall\tprecision\tF1\treduction ratio")
	for _, r := range result.Evaluate(collection, gt) {
		fmt.Fprintf(w, "%s\t%d\t%.4f\t%.4f\t%.4f\t%.4f\n",
			r.Step, r.Metrics.Candidates, r.Metrics.Recall,
			r.Metrics.Precision, r.Metrics.F1, r.Metrics.ReductionRatio)
	}
	w.Flush()

	// Compare against the schema-agnostic baseline of Figure 1.
	baseline, err := sparker.Resolve(collection, sparker.SchemaAgnosticConfig())
	if err != nil {
		log.Fatal(err)
	}
	bm := sparker.EvaluatePairs(baseline.Blocker.Candidates, gt, collection.MaxComparisons())
	lm := sparker.EvaluatePairs(result.Blocker.Candidates, gt, collection.MaxComparisons())
	fmt.Printf("\nblocking comparison:\n")
	fmt.Printf("  schema-agnostic: %d candidates, recall %.4f\n", bm.Candidates, bm.Recall)
	fmt.Printf("  loose schema:    %d candidates, recall %.4f\n", lm.Candidates, lm.Recall)

	// Lost-pair inspection (Figure 6(d)): which true matches did blocking
	// lose, and which keys would have found them?
	lost := sparker.LostPairs(result.Blocker.Candidates, gt)
	fmt.Printf("\ntrue matches lost by the blocker: %d\n", len(lost))
	opts := result.Blocker.BlockingOptions(sparker.DefaultConfig())
	for i, p := range lost {
		if i == 3 {
			break
		}
		fmt.Printf("  %s <-> %s shared keys: %v\n",
			collection.Get(p.A).OriginalID, collection.Get(p.B).OriginalID,
			sparker.SharedBlockingKeys(collection, opts, p.A, p.B))
	}
}
