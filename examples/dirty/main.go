// Dirty: deduplicate a single dataset with internal duplicates (dirty
// ER). Unlike the clean-clean demo scenario, every pair of records is a
// potential match, there is one schema, and the clusterer regularly
// produces entities with three or more records.
package main

import (
	"fmt"
	"log"

	"sparker"
	"sparker/internal/datagen"
)

func main() {
	// A product feed where each product was ingested 1–3 times with
	// different renderings.
	ds := datagen.GenerateDirty(400, 11)
	collection := ds.Collection
	gt, err := sparker.NewGroundTruthFromOriginalIDs(collection, ds.GroundTruth)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dirty dataset: %d records, %d duplicate pairs\n\n", collection.Size(), gt.Size())

	// One schema: loose-schema partitioning has nothing to align, so run
	// schema-agnostic meta-blocking.
	cfg := sparker.DefaultConfig()
	cfg.LooseSchema = false
	cfg.UseEntropy = false
	cfg.Pruning = sparker.BlastPruning

	result, err := sparker.Resolve(collection, cfg)
	if err != nil {
		log.Fatal(err)
	}

	for _, r := range result.Evaluate(collection, gt) {
		fmt.Printf("%-10s candidates=%-7d recall=%.4f precision=%.4f F1=%.4f\n",
			r.Step, r.Metrics.Candidates, r.Metrics.Recall, r.Metrics.Precision, r.Metrics.F1)
	}

	// Show a few multi-record entities: dirty ER's distinguishing output.
	fmt.Println("\nentities with 3+ records:")
	shown := 0
	for _, e := range result.Entities {
		if len(e.Profiles) < 3 {
			continue
		}
		fmt.Printf("  entity %d:", e.ID)
		for _, id := range e.Profiles {
			fmt.Printf(" %s", collection.Get(id).OriginalID)
		}
		fmt.Println()
		if shown++; shown == 5 {
			break
		}
	}
}
