// Looseschema: reproduces the paper's running example step by step —
// Figure 1 (schema-agnostic token blocking and meta-blocking over four
// bibliographic profiles) and Figure 2 (loose-schema blocking with
// entropy), driving each blocker stage through the public API.
package main

import (
	"fmt"

	"sparker"
)

// figure2Schema is the loose schema of Figure 2(a): cluster 1 holds the
// title-like attributes (entropy 0.4), cluster 2 the author attributes
// (entropy 0.8).
type figure2Schema struct{}

func (figure2Schema) ClusterOf(_ int, attribute string) int {
	switch attribute {
	case "name", "title", "abstract":
		return 1
	case "authors", "author":
		return 2
	}
	return 0
}

func (figure2Schema) EntropyOf(cluster int) float64 {
	switch cluster {
	case 1:
		return 0.4
	case 2:
		return 0.8
	}
	return 0
}

func main() {
	mk := func(id string, kvs ...[2]string) sparker.Profile {
		p := sparker.Profile{OriginalID: id}
		for _, kv := range kvs {
			p.Add(kv[0], kv[1])
		}
		return p
	}
	// The four profiles of Figure 1(a).
	collection := sparker.NewDirty([]sparker.Profile{
		mk("p1", [2]string{"name", "Blast"}, [2]string{"authors", "G. Simonini"},
			[2]string{"abstract", "how to improve meta-blocking"}),
		mk("p2", [2]string{"name", "SparkER"}, [2]string{"authors", "L. Gagliardelli"},
			[2]string{"abstract", "Simonini et al proposed blocking"}),
		mk("p3", [2]string{"title", "Blast: loosely schema blocking"},
			[2]string{"author", "Giovanni Simonini"}, [2]string{"year", "2016"}),
		mk("p4", [2]string{"title", "SparkER: parallel Blast"},
			[2]string{"author", "Luca Gagliardelli"}, [2]string{"year", "2017"}),
	})
	name := func(id sparker.ProfileID) string { return collection.Get(id).OriginalID }

	fmt.Println("== Figure 1(b): schema-agnostic token blocking ==")
	blocks := sparker.TokenBlocking(collection, sparker.BlockingOptions{})
	for _, b := range blocks.Blocks {
		fmt.Printf("  %-14s", b.Key)
		for _, id := range b.A {
			fmt.Printf(" %s", name(id))
		}
		fmt.Println()
	}

	fmt.Println("\n== Figure 1(c): meta-blocking (CBS weights, average pruning) ==")
	idx := sparker.BuildBlockIndex(blocks)
	edges := sparker.RunMetaBlocking(idx, sparker.MetaBlockingOptions{
		Scheme: sparker.CBS, Pruning: sparker.WEP,
	})
	for _, e := range edges {
		fmt.Printf("  retained %s-%s (weight %.0f)\n", name(e.A), name(e.B), e.Weight)
	}

	fmt.Println("\n== Figure 2(b): loose-schema blocking (keys split by cluster) ==")
	looseOpts := sparker.BlockingOptions{Clustering: figure2Schema{}}
	looseBlocks := sparker.TokenBlocking(collection, looseOpts)
	for _, b := range looseBlocks.Blocks {
		fmt.Printf("  %-16s", b.Key)
		for _, id := range b.A {
			fmt.Printf(" %s", name(id))
		}
		fmt.Println()
	}
	fmt.Println("  (note: simonini split into simonini_1 and simonini_2;")
	fmt.Println("   the abstract-side occurrence appears only in p2, so it forms no block)")

	fmt.Println("\n== Figure 2(c): entropy-weighted meta-blocking ==")
	looseIdx := sparker.BuildBlockIndex(looseBlocks)
	looseEdges := sparker.RunMetaBlocking(looseIdx, sparker.MetaBlockingOptions{
		Scheme: sparker.CBS, Pruning: sparker.WEP, Entropy: figure2Schema{},
	})
	for _, e := range looseEdges {
		fmt.Printf("  retained %s-%s (weight %.1f)\n", name(e.A), name(e.B), e.Weight)
	}
	fmt.Println("  (the wrong matches p1-p2 and p2-p3 retained in Figure 1(c) are now removed:")
	fmt.Println("   only the two correct pairs survive)")
}
