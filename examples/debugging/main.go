// Debugging: the supervised workflow of the paper's Section 3 — draw a
// representative debug sample, iterate on the blocking configuration,
// inspect lost pairs, and tune the match threshold on labelled pairs, all
// on the sample; then apply the tuned configuration to the full dataset
// in batch mode.
package main

import (
	"fmt"
	"log"

	"sparker"
)

func main() {
	ds := sparker.GenerateBenchmark(sparker.AbtBuyConfig())
	collection := ds.Collection
	gt, err := sparker.NewGroundTruthFromOriginalIDs(collection, ds.GroundTruth)
	if err != nil {
		log.Fatal(err)
	}

	// Step 1: a debug sample — K seed profiles, with likely matches and
	// random profiles around each, so it contains both matches and
	// non-matches (Magellan-style).
	sample := sparker.BuildDebugSample(collection, sparker.SampleOptions{K: 30, PerSeed: 10, Seed: 7})
	fmt.Printf("debug sample: %d of %d profiles\n", sample.Collection.Size(), collection.Size())

	// The sample's ground truth, remapped into sample IDs.
	var samplePairs []sparker.CandidatePair
	for _, p := range gt.Pairs() {
		sa, okA := sample.SampleID[p.A]
		sb, okB := sample.SampleID[p.B]
		if okA && okB {
			samplePairs = append(samplePairs, sparker.CandidatePair{A: sa, B: sb})
		}
	}
	sampleGT := sparker.NewGroundTruth(samplePairs)
	fmt.Printf("true matches inside the sample: %d\n\n", sampleGT.Size())

	// Step 2: iterate on the blocker over the sample.
	cfg := sparker.DefaultConfig()
	pipeline := sparker.NewPipeline(cfg, nil)
	blocker, err := pipeline.RunBlocker(sample.Collection)
	if err != nil {
		log.Fatal(err)
	}
	m := sparker.EvaluatePairs(blocker.Candidates, sampleGT, sample.Collection.MaxComparisons())
	fmt.Printf("sample blocking: %d candidates, recall %.3f, precision %.3f\n",
		m.Candidates, m.Recall, m.Precision)

	// Step 3: inspect lost pairs with their shared keys (Figure 6(d)).
	lost := sparker.LostPairs(blocker.Candidates, sampleGT)
	fmt.Printf("lost pairs in the sample: %d\n", len(lost))
	opts := blocker.BlockingOptions(cfg)
	for i, p := range lost {
		if i == 3 {
			break
		}
		fmt.Printf("  %s <-> %s shared keys: %v\n",
			sample.Collection.Get(p.A).OriginalID, sample.Collection.Get(p.B).OriginalID,
			sparker.SharedBlockingKeys(sample.Collection, opts, p.A, p.B))
	}

	// Step 4: supervised threshold tuning on the sample's labelled pairs.
	var labeled []sparker.LabeledPair
	for _, p := range blocker.Candidates {
		labeled = append(labeled, sparker.LabeledPair{
			Pair:    p,
			IsMatch: sampleGT.Contains(p),
		})
	}
	measure := sparker.JaccardMeasure(sparker.TokenizerOptions{})
	tunedTh, sampleF1 := sparker.TuneThreshold(sample.Collection, labeled, measure)
	fmt.Printf("\ntuned match threshold on the sample: %.3f (sample F1 %.3f)\n", tunedTh, sampleF1)

	// Step 5: batch mode — apply the tuned configuration to the full data.
	cfg.MatchThreshold = tunedTh
	full, err := sparker.NewPipeline(cfg, nil).Resolve(collection)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nfull-dataset run with the tuned configuration:")
	for _, r := range full.Evaluate(collection, gt) {
		fmt.Printf("  %-10s recall %.4f precision %.4f F1 %.4f\n",
			r.Step, r.Metrics.Recall, r.Metrics.Precision, r.Metrics.F1)
	}

	def, err := sparker.Resolve(collection, sparker.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	// The threshold governs the matching step, so compare there: the
	// clustering step can still trade the gain away through transitive
	// chaining, which is itself a useful thing to see in the debugger.
	defF1 := def.Evaluate(collection, gt)[1].Metrics.F1
	tunedF1 := full.Evaluate(collection, gt)[1].Metrics.F1
	fmt.Printf("\nmatching F1: unsupervised default %.4f vs supervised tuned %.4f\n", defF1, tunedF1)
}
