package sparker

import (
	"sparker/internal/blocking"
	"sparker/internal/clustering"
	"sparker/internal/core"
	"sparker/internal/looseschema"
	"sparker/internal/matching"
	"sparker/internal/metablocking"
	"sparker/internal/tokenize"
)

// This file exposes the individual pipeline stages so that library users
// can drive the stack step by step — which is exactly what the paper's
// process-debugging workflow does: run one stage, inspect it, change a
// parameter, and rerun from there.

// TokenizerOptions configures tokenization for the step-level API.
type TokenizerOptions = tokenize.Options

// BlockingOptions configures token blocking.
type BlockingOptions = blocking.Options

// BlockIndex is the profile-to-blocks index meta-blocking consumes.
type BlockIndex = blocking.Index

// TokenBlocking builds blocks on the local machine with the parallel
// sharded build (schema-agnostic when opts.Clustering is nil,
// loose-schema otherwise). opts.Workers bounds the parallelism (default
// GOMAXPROCS); the output is identical for every worker count.
func TokenBlocking(c *Collection, opts BlockingOptions) *BlockCollection {
	return blocking.TokenBlocking(c, opts)
}

// DistributedTokenBlocking builds the same blocks on a cluster.
func DistributedTokenBlocking(cluster *Cluster, c *Collection, opts BlockingOptions, partitions int) (*BlockCollection, error) {
	return blocking.DistributedTokenBlocking(cluster, c, opts, partitions)
}

// PurgeBlocks drops blocks larger than maxFraction of the profile
// universe (the paper uses 0.5).
func PurgeBlocks(blocks *BlockCollection, maxFraction float64) *BlockCollection {
	return blocking.PurgeBySize(blocks, maxFraction)
}

// FilterBlocks removes each profile from its largest blocks, keeping the
// given ratio of its smallest ones (the paper uses 0.8).
func FilterBlocks(blocks *BlockCollection, ratio float64) *BlockCollection {
	return blocking.Filter(blocks, ratio)
}

// BuildBlockIndex prepares the meta-blocking input (a flat CSR over
// dense profile IDs, carved by a counting pass).
func BuildBlockIndex(blocks *BlockCollection) *BlockIndex {
	return blocking.BuildIndex(blocks)
}

// DistinctCandidatePairs enumerates the de-duplicated candidate pairs a
// block collection implies, in ascending (A, B) order — the candidate
// set the matcher scores when meta-blocking is disabled.
func DistinctCandidatePairs(blocks *BlockCollection) []CandidatePair {
	return blocks.DistinctPairs()
}

// BlockingKey is one blocking key of a profile with its attribute
// cluster (the unit of work shared by batch blocking and the online
// index).
type BlockingKey = blocking.KeyedToken

// ProfileBlockingKeys enumerates the distinct blocking keys one profile
// produces under the given options — the keys the online index probes
// for it.
func ProfileBlockingKeys(p *Profile, opts BlockingOptions) []BlockingKey {
	return opts.KeysOf(p)
}

// MetaBlockingOptions configures graph-based comparison pruning.
type MetaBlockingOptions = metablocking.Options

// RunMetaBlocking prunes the blocking graph sequentially.
func RunMetaBlocking(idx *BlockIndex, opts MetaBlockingOptions) []MetaBlockingEdge {
	return metablocking.Run(idx, opts)
}

// RunMetaBlockingDistributed prunes the blocking graph with the
// broadcast-join parallel algorithm.
func RunMetaBlockingDistributed(cluster *Cluster, idx *BlockIndex, opts MetaBlockingOptions, partitions int) ([]MetaBlockingEdge, error) {
	return metablocking.RunDistributed(cluster, idx, opts, partitions)
}

// Progressive comparison scheduling (reference [6] of the paper).
const (
	// ScheduleGlobalTop emits all comparisons in decreasing weight order.
	ScheduleGlobalTop = metablocking.GlobalTop
	// ScheduleProfiles is PPS: profile-major, best-first, in rounds.
	ScheduleProfiles = metablocking.ProfileScheduling
	// ScheduleRandom is the baseline ordering.
	ScheduleRandom = metablocking.RandomOrder
)

// ScheduleStrategy selects a progressive comparison scheduler.
type ScheduleStrategy = metablocking.ScheduleStrategy

// ScheduleComparisons orders the blocking graph's comparisons for
// budget-bound (progressive) resolution. A non-positive budget returns
// the full schedule.
func ScheduleComparisons(idx *BlockIndex, opts MetaBlockingOptions, strategy ScheduleStrategy, budget int) []MetaBlockingEdge {
	return metablocking.Schedule(idx, opts, strategy, budget)
}

// EdgesToPairs converts retained meta-blocking edges into candidate pairs
// for the matcher.
func EdgesToPairs(edges []MetaBlockingEdge) []CandidatePair {
	out := make([]CandidatePair, len(edges))
	for i, e := range edges {
		out[i] = CandidatePair{A: e.A, B: e.B}
	}
	return out
}

// LooseSchemaOptions configures attribute partitioning.
type LooseSchemaOptions = looseschema.Options

// AttributeProfile is the vocabulary of one source-qualified attribute.
type AttributeProfile = looseschema.AttributeProfile

// PartitionAttributes runs Blast's LSH attribute partitioning + entropy
// extraction.
func PartitionAttributes(c *Collection, opts LooseSchemaOptions) *Partitioning {
	return looseschema.Partition(c, opts)
}

// ExtractAttributeProfiles exposes the per-attribute vocabularies (used
// to recompute entropies after manual cluster edits).
func ExtractAttributeProfiles(c *Collection, tok TokenizerOptions) []*AttributeProfile {
	return looseschema.ExtractAttributeProfiles(c, tok)
}

// RecomputeEntropies refreshes cluster entropies after MoveAttribute
// edits.
func RecomputeEntropies(p *Partitioning, aps []*AttributeProfile) {
	looseschema.ComputeEntropies(p, aps)
}

// Measure scores the similarity of two profiles in [0, 1].
type Measure = matching.Measure

// LabeledPair is a supervised training example.
type LabeledPair = matching.LabeledPair

// JaccardMeasure compares whole-profile token bags with Jaccard.
func JaccardMeasure(tok TokenizerOptions) Measure { return matching.JaccardMeasure(tok) }

// MatchPairs scores candidates and keeps those at or above threshold.
func MatchPairs(c *Collection, pairs []CandidatePair, m Measure, threshold float64) []Match {
	return matching.MatchPairs(c, pairs, m, threshold)
}

// TuneThreshold finds the F1-maximising match threshold on labelled
// pairs (the supervised mode).
func TuneThreshold(c *Collection, labeled []LabeledPair, m Measure) (threshold, f1 float64) {
	return matching.TuneThreshold(c, labeled, m)
}

// ConnectedComponents clusters the similarity graph under transitivity.
func ConnectedComponents(matches []Match) []Entity {
	return clustering.ConnectedComponents(matches)
}

// UniqueMappingClustering greedily builds a one-to-one mapping between
// two duplicate-free sources.
func UniqueMappingClustering(matches []Match) []Entity {
	return clustering.UniqueMappingClustering(matches)
}

// SharedBlockingKeys explains why two profiles block together: the keys
// they share under the given options (the Figure 6(d) drill-down).
func SharedBlockingKeys(c *Collection, opts BlockingOptions, a, b ProfileID) []string {
	return evaluationSharedKeys(c, opts, a, b)
}

// Interactive debugging (the paper's Section 3 loop).
type (
	// Session caches the expensive invariants of a debugging loop so
	// threshold changes and manual cluster edits recompute only what
	// changed.
	Session = core.Session
	// LostPairReport is one row of the lost-pair drill-down.
	LostPairReport = core.LostPair
)

// NewSession starts a debugging session; gt may be nil.
func NewSession(c *Collection, cfg Config, gt *GroundTruth) (*Session, error) {
	return core.NewSession(c, cfg, gt)
}

// Configuration persistence (the paper's "store the configuration, apply
// in batch mode").
var (
	// SaveConfigFile writes a pipeline configuration as JSON.
	SaveConfigFile = core.SaveConfigFile
	// LoadConfigFile reads a stored pipeline configuration.
	LoadConfigFile = core.LoadConfigFile
)
