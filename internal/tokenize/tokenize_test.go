package tokenize

import (
	"reflect"
	"testing"
	"testing/quick"
	"unicode"
)

func TestNormalizeLowersAndStripsPunctuation(t *testing.T) {
	got := Normalize("Blast: loosely schema-blocking!")
	want := "blast  loosely schema blocking "
	if got != want {
		t.Fatalf("got %q want %q", got, want)
	}
}

func TestTokensDropStopWords(t *testing.T) {
	got := Tokens("how to improve the meta-blocking")
	want := []string{"how", "improve", "meta", "blocking"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
}

func TestTokensMinLength(t *testing.T) {
	o := Options{MinLength: 3}
	got := o.Tokens("go is a fun language")
	want := []string{"fun", "language"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
}

func TestTokensDropNumbers(t *testing.T) {
	o := Options{DropNumbers: true}
	got := o.Tokens("model 2016 qx500")
	want := []string{"model", "qx500"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
}

func TestTokensCustomStopWords(t *testing.T) {
	o := Options{StopWords: map[string]bool{"blast": true}}
	got := o.Tokens("the blast paper")
	want := []string{"the", "paper"} // default list disabled
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
}

func TestTokenSetDeduplicates(t *testing.T) {
	got := TokenSet("spark spark SPARK data")
	want := []string{"spark", "data"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
}

func TestUniqueTokensPreservesOrder(t *testing.T) {
	got := UniqueTokens([]string{"b", "a", "b", "c", "a"})
	want := []string{"b", "a", "c"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
}

func TestNGrams(t *testing.T) {
	got := NGrams("ab cd", 2)
	want := []string{"ab", "bc", "cd"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
	if NGrams("a", 2) != nil {
		t.Fatal("short string must yield nil")
	}
	if NGrams("abc", 0) != nil {
		t.Fatal("n<1 must yield nil")
	}
}

func TestUnicodeHandling(t *testing.T) {
	got := Tokens("Modèna Ünïversity")
	if len(got) != 2 {
		t.Fatalf("got %v", got)
	}
}

func TestQuickTokensAreNormalized(t *testing.T) {
	f := func(s string) bool {
		for _, tok := range Tokens(s) {
			if tok == "" {
				return false
			}
			for _, r := range tok {
				if !unicode.IsLetter(r) && !unicode.IsDigit(r) {
					return false
				}
				// Lower-cased output is a fixed point of ToLower. (Some
				// uppercase letters, e.g. mathematical alphanumerics, have
				// no lowercase mapping and pass through unchanged.)
				if unicode.ToLower(r) != r {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickTokenizeIdempotent(t *testing.T) {
	f := func(s string) bool {
		once := Tokens(s)
		var rejoined string
		for i, tok := range once {
			if i > 0 {
				rejoined += " "
			}
			rejoined += tok
		}
		twice := Tokens(rejoined)
		return reflect.DeepEqual(once, twice)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestAppendTokensMatchesTokens pins the scratch-based AppendTokens to
// Tokens: blocking keys flow through the former while similarity,
// loose-schema and evaluation still use the latter, so the two
// normalise/split/filter pipelines must never drift. Covers case-mapping
// edge cases (İ, ı, ß, final sigma), CJK, combining marks, numerics and
// stop words, under both default and strict options, plus a quick sweep
// over arbitrary strings.
func TestAppendTokensMatchesTokens(t *testing.T) {
	opts := []Options{
		{},
		{MinLength: 3, DropNumbers: true, StopWords: map[string]bool{"acme": true}},
	}
	fixed := []string{
		"", "   ", "Acme Blender-3000, the BEST!", "İstanbul ısıtma STRASSE ß",
		"ΣΊΣΥΦΟΣ τελος", "日本語 トークン", "á combining", "42 007 x9",
		"the of and", "tab\tand\nnewline", "emoji 🚀 split",
	}
	sc := &Scratch{}
	for _, o := range opts {
		for _, s := range fixed {
			want := o.Tokens(s)
			got := o.AppendTokens(nil, s, sc)
			if !reflect.DeepEqual(append([]string{}, want...), append([]string{}, got...)) {
				t.Fatalf("opts %+v input %q: AppendTokens %q != Tokens %q", o, s, got, want)
			}
		}
	}
	f := func(s string) bool {
		want := Default.Tokens(s)
		got := Default.AppendTokens(nil, s, sc)
		return reflect.DeepEqual(append([]string{}, want...), append([]string{}, got...))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
