// Package tokenize turns attribute values into the tokens used as
// schema-agnostic blocking keys and as the vocabulary for LSH attribute
// partitioning, entropy extraction, and similarity scoring.
package tokenize

import (
	"strings"
	"unicode"
	"unicode/utf8"
)

// Options configures tokenization.
type Options struct {
	// MinLength drops tokens shorter than this many runes (default 1).
	MinLength int
	// StopWords are dropped after normalisation. Nil uses DefaultStopWords;
	// use an empty map to disable stop-word removal.
	StopWords map[string]bool
	// KeepNumbers keeps purely numeric tokens (default true behaviour is
	// controlled by DropNumbers: zero value keeps them).
	DropNumbers bool
}

// DefaultStopWords is a small English stop-word list; blocking keys built
// from these would put half the collection in one block, which Block
// Purging would then discard anyway.
var DefaultStopWords = map[string]bool{
	"a": true, "an": true, "and": true, "are": true, "as": true, "at": true,
	"be": true, "by": true, "for": true, "from": true, "has": true, "in": true,
	"is": true, "it": true, "its": true, "of": true, "on": true, "or": true,
	"that": true, "the": true, "to": true, "was": true, "were": true,
	"will": true, "with": true,
}

// Default is the zero-configuration tokenizer used across the pipeline.
var Default = Options{MinLength: 1}

// Normalize lower-cases s and maps every non-alphanumeric rune to a space.
func Normalize(s string) string {
	var b strings.Builder
	b.Grow(len(s))
	for _, r := range s {
		switch {
		case unicode.IsLetter(r) || unicode.IsDigit(r):
			b.WriteRune(unicode.ToLower(r))
		default:
			b.WriteRune(' ')
		}
	}
	return b.String()
}

// Tokens splits s into normalised tokens according to the options.
func (o Options) Tokens(s string) []string {
	stop := o.StopWords
	if stop == nil {
		stop = DefaultStopWords
	}
	minLen := o.MinLength
	if minLen < 1 {
		minLen = 1
	}
	fields := strings.Fields(Normalize(s))
	out := make([]string, 0, len(fields))
	for _, f := range fields {
		if utf8.RuneCountInString(f) < minLen || stop[f] {
			continue
		}
		if o.DropNumbers && isNumeric(f) {
			continue
		}
		out = append(out, f)
	}
	return out
}

// Scratch is a reusable tokenizer workspace for AppendTokens: the
// normalisation buffer and the token intern table live across calls, so
// steady-state tokenization of a hot loop (the batch blocker's workers,
// the online index's queries) allocates only when a token is seen for
// the first time. A Scratch must not be shared between goroutines; pool
// one per worker.
type Scratch struct {
	buf    []byte
	intern map[string]string
}

// maxInterned bounds the intern table; past it the table is dropped and
// rebuilt, so a pathological unbounded vocabulary cannot pin memory.
const maxInterned = 1 << 16

func (sc *Scratch) internToken(b []byte) string {
	if tok, ok := sc.intern[string(b)]; ok { // zero-alloc lookup
		return tok
	}
	if sc.intern == nil || len(sc.intern) >= maxInterned {
		sc.intern = make(map[string]string, 256)
	}
	tok := string(b)
	sc.intern[tok] = tok
	return tok
}

// AppendTokens appends the normalised tokens of s to dst and returns the
// extended slice — the same tokens Tokens returns, derived through the
// scratch's reusable buffers instead of fresh normalise/split/output
// allocations per value. A nil scratch is allowed (one is created), but
// defeats the purpose.
func (o Options) AppendTokens(dst []string, s string, sc *Scratch) []string {
	if sc == nil {
		sc = &Scratch{}
	}
	stop := o.StopWords
	if stop == nil {
		stop = DefaultStopWords
	}
	minLen := o.MinLength
	if minLen < 1 {
		minLen = 1
	}
	buf := sc.buf[:0]
	for _, r := range s {
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			buf = utf8.AppendRune(buf, unicode.ToLower(r))
		} else {
			buf = append(buf, ' ')
		}
	}
	sc.buf = buf
	for i := 0; i < len(buf); {
		if buf[i] == ' ' {
			i++
			continue
		}
		j := i
		for j < len(buf) && buf[j] != ' ' {
			j++
		}
		f := buf[i:j]
		i = j
		if utf8.RuneCount(f) < minLen || stop[string(f)] {
			continue
		}
		if o.DropNumbers && isNumericBytes(f) {
			continue
		}
		dst = append(dst, sc.internToken(f))
	}
	return dst
}

func isNumericBytes(b []byte) bool {
	for i := 0; i < len(b); {
		r, size := utf8.DecodeRune(b[i:])
		if !unicode.IsDigit(r) {
			return false
		}
		i += size
	}
	return len(b) > 0
}

// Tokens tokenizes with the default options.
func Tokens(s string) []string { return Default.Tokens(s) }

// TokenSet returns the distinct tokens of s (default options), preserving
// first-seen order.
func TokenSet(s string) []string { return UniqueTokens(Tokens(s)) }

// UniqueTokens deduplicates a token slice, preserving first-seen order.
func UniqueTokens(tokens []string) []string {
	seen := make(map[string]bool, len(tokens))
	out := tokens[:0:0]
	for _, t := range tokens {
		if !seen[t] {
			seen[t] = true
			out = append(out, t)
		}
	}
	return out
}

func isNumeric(s string) bool {
	for _, r := range s {
		if !unicode.IsDigit(r) {
			return false
		}
	}
	return len(s) > 0
}

// NGrams returns the character n-grams of s after normalisation (spaces
// removed), used by similarity measures that are robust to token-order
// changes. Returns nil when the string is shorter than n runes.
func NGrams(s string, n int) []string {
	if n < 1 {
		return nil
	}
	compact := strings.ReplaceAll(Normalize(s), " ", "")
	runes := []rune(compact)
	if len(runes) < n {
		return nil
	}
	out := make([]string, 0, len(runes)-n+1)
	for i := 0; i+n <= len(runes); i++ {
		out = append(out, string(runes[i:i+n]))
	}
	return out
}
