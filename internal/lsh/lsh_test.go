package lsh

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestSignatureDeterministic(t *testing.T) {
	h := NewMinHasher(64, 7)
	a := h.Signature([]string{"x", "y", "z"})
	b := h.Signature([]string{"x", "y", "z"})
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same input, same hasher, different signatures")
	}
}

func TestSignatureOrderInvariant(t *testing.T) {
	h := NewMinHasher(64, 7)
	a := h.Signature([]string{"x", "y", "z"})
	b := h.Signature([]string{"z", "x", "y"})
	if !reflect.DeepEqual(a, b) {
		t.Fatal("MinHash must not depend on token order")
	}
}

func TestIdenticalSetsEstimateOne(t *testing.T) {
	h := NewMinHasher(128, 3)
	a := h.Signature([]string{"a", "b", "c"})
	b := h.Signature([]string{"a", "b", "c"})
	if got := EstimateJaccard(a, b); got != 1 {
		t.Fatalf("estimate=%f", got)
	}
}

func TestDisjointSetsEstimateNearZero(t *testing.T) {
	h := NewMinHasher(256, 3)
	var xs, ys []string
	for i := 0; i < 50; i++ {
		xs = append(xs, fmt.Sprintf("x%d", i))
		ys = append(ys, fmt.Sprintf("y%d", i))
	}
	got := EstimateJaccard(h.Signature(xs), h.Signature(ys))
	if got > 0.05 {
		t.Fatalf("estimate=%f for disjoint sets", got)
	}
}

// TestEstimateTracksExactJaccard is the statistical core property of
// MinHash: the estimate converges to the exact Jaccard similarity.
func TestEstimateTracksExactJaccard(t *testing.T) {
	h := NewMinHasher(512, 11)
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 10; trial++ {
		shared := 10 + rng.Intn(60)
		onlyA := rng.Intn(50)
		onlyB := rng.Intn(50)
		var a, b []string
		for i := 0; i < shared; i++ {
			tok := fmt.Sprintf("s%d-%d", trial, i)
			a = append(a, tok)
			b = append(b, tok)
		}
		for i := 0; i < onlyA; i++ {
			a = append(a, fmt.Sprintf("a%d-%d", trial, i))
		}
		for i := 0; i < onlyB; i++ {
			b = append(b, fmt.Sprintf("b%d-%d", trial, i))
		}
		exact := ExactJaccard(a, b)
		est := EstimateJaccard(h.Signature(a), h.Signature(b))
		if math.Abs(exact-est) > 0.12 {
			t.Fatalf("trial %d: exact=%.3f est=%.3f", trial, exact, est)
		}
	}
}

func TestExactJaccard(t *testing.T) {
	if got := ExactJaccard([]string{"a", "b"}, []string{"b", "c"}); math.Abs(got-1.0/3) > 1e-12 {
		t.Fatalf("got %f", got)
	}
	if got := ExactJaccard(nil, nil); got != 0 {
		t.Fatalf("empty sets: %f", got)
	}
	if got := ExactJaccard([]string{"a", "a", "b"}, []string{"a", "b", "b"}); got != 1 {
		t.Fatalf("duplicates must be ignored: %f", got)
	}
}

func TestBandingParams(t *testing.T) {
	bands, rows := BandingParams(128, 0.3)
	if bands*rows != 128 {
		t.Fatalf("bands*rows=%d", bands*rows)
	}
	// Low thresholds need many bands (few rows).
	if rows > 8 {
		t.Fatalf("rows=%d too selective for threshold 0.3", rows)
	}
	bandsHi, rowsHi := BandingParams(128, 0.95)
	if bandsHi*rowsHi != 128 {
		t.Fatalf("bands*rows=%d", bandsHi*rowsHi)
	}
	if rowsHi < rows {
		t.Fatal("higher threshold should not use fewer rows per band")
	}
}

func TestCandidatesFindSimilarPairs(t *testing.T) {
	h := NewMinHasher(128, 13)
	// Three items: 0 and 1 nearly identical, 2 unrelated.
	base := make([]string, 40)
	for i := range base {
		base[i] = fmt.Sprintf("tok%d", i)
	}
	almost := append(append([]string{}, base[:38]...), "extra1", "extra2")
	other := make([]string, 40)
	for i := range other {
		other[i] = fmt.Sprintf("zzz%d", i)
	}
	sigs := [][]uint64{h.Signature(base), h.Signature(almost), h.Signature(other)}
	bands, rows := BandingParams(128, 0.5)
	cands := Candidates(sigs, bands, rows)
	found := false
	for _, c := range cands {
		if c.I == 0 && c.J == 1 {
			found = true
		}
		if c.J == 2 || c.I == 2 {
			t.Fatalf("unrelated item joined a candidate pair: %v", c)
		}
	}
	if !found {
		t.Fatal("highly similar pair not found by banding")
	}
}

func TestCandidatesDeterministicOrder(t *testing.T) {
	h := NewMinHasher(64, 1)
	sigs := [][]uint64{
		h.Signature([]string{"a", "b"}),
		h.Signature([]string{"a", "b"}),
		h.Signature([]string{"a", "b", "c"}),
	}
	c1 := Candidates(sigs, 16, 4)
	c2 := Candidates(sigs, 16, 4)
	if !reflect.DeepEqual(c1, c2) {
		t.Fatal("candidate order not deterministic")
	}
	for _, c := range c1 {
		if c.I >= c.J {
			t.Fatalf("pair not canonical: %v", c)
		}
	}
}

func TestMulModMatchesBigIntSemantics(t *testing.T) {
	// Cross-check the Mersenne reduction against the naive computation on
	// values small enough for it.
	f := func(a, b uint32) bool {
		x, y := uint64(a), uint64(b)
		want := (x * y) % mersennePrime
		return mulmod(x, y) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestMulModLargeOperands(t *testing.T) {
	// Known identity: (p-1)*(p-1) mod p = 1 for prime p.
	const p = mersennePrime
	if got := mulmod(p-1, p-1); got != 1 {
		t.Fatalf("(p-1)^2 mod p = %d, want 1", got)
	}
	if got := mulmod(p, 5); got != 0 {
		t.Fatalf("p*5 mod p = %d, want 0", got)
	}
}

func TestEmptySignatureMatchesNothing(t *testing.T) {
	h := NewMinHasher(64, 9)
	empty := h.Signature(nil)
	full := h.Signature([]string{"a"})
	if got := EstimateJaccard(empty, full); got != 0 {
		t.Fatalf("estimate=%f", got)
	}
}
