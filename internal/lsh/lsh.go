// Package lsh implements MinHash signatures and banding locality-sensitive
// hashing over token sets. The loose-schema generator uses it to find
// pairs of attributes whose value vocabularies overlap, without comparing
// every attribute pair exactly.
package lsh

import (
	"math"
	"math/bits"
	"math/rand"
	"sort"
)

// MinHasher computes fixed-length MinHash signatures. A signature position
// i holds the minimum of h_i(token) over the token set, where h_i is a
// universal hash a_i*x + b_i over a Mersenne prime; the probability that
// two sets agree at a position equals their Jaccard similarity.
type MinHasher struct {
	a, b []uint64
}

const mersennePrime = (1 << 61) - 1

// NewMinHasher creates a hasher with the given signature length, seeded
// deterministically.
func NewMinHasher(signatureLen int, seed int64) *MinHasher {
	rng := rand.New(rand.NewSource(seed))
	h := &MinHasher{
		a: make([]uint64, signatureLen),
		b: make([]uint64, signatureLen),
	}
	for i := 0; i < signatureLen; i++ {
		h.a[i] = uint64(rng.Int63n(mersennePrime-1)) + 1 // a != 0
		h.b[i] = uint64(rng.Int63n(mersennePrime))
	}
	return h
}

// SignatureLen returns the length of signatures produced by the hasher.
func (h *MinHasher) SignatureLen() int { return len(h.a) }

// fnv64a hashes bytes-of-a-string with inline FNV-1a: identical values to
// hash/fnv's New64a, without materialising the hash.Hash64 interface that
// would heap-allocate once per token on the signature hot path.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// tokenHash maps a token into [0, mersennePrime).
func tokenHash(token string) uint64 {
	h := uint64(fnvOffset64)
	for i := 0; i < len(token); i++ {
		h ^= uint64(token[i])
		h *= fnvPrime64
	}
	return h % mersennePrime
}

// Signature computes the MinHash signature of a token set. Empty sets get
// an all-max signature that matches nothing.
func (h *MinHasher) Signature(tokens []string) []uint64 {
	return h.AppendSignature(nil, tokens)
}

// AppendSignature computes the MinHash signature of a token set into
// dst's backing array (grown as needed) and returns the first
// SignatureLen entries — the allocation-free form of Signature for hot
// paths that pool the destination. Duplicate tokens do not change the
// result: a minimum is idempotent under repetition.
func (h *MinHasher) AppendSignature(dst []uint64, tokens []string) []uint64 {
	n := len(h.a)
	if cap(dst) < n {
		dst = make([]uint64, n)
	}
	sig := dst[:n]
	for i := range sig {
		sig[i] = ^uint64(0)
	}
	for _, tok := range tokens {
		x := tokenHash(tok)
		for i := range sig {
			// (a*x + b) mod p with 128-bit-safe arithmetic: since a, x < 2^61
			// the product fits in uint128 only; use modular multiplication.
			v := mulmod(h.a[i], x) + h.b[i]
			if v >= mersennePrime {
				v -= mersennePrime
			}
			if v < sig[i] {
				sig[i] = v
			}
		}
	}
	return sig
}

// mulmod computes a*b mod 2^61-1 using a 128-bit product and the Mersenne
// identity 2^61 ≡ 1 (mod p), so 2^64 ≡ 8 (mod p).
func mulmod(a, b uint64) uint64 {
	const p = mersennePrime
	hi, lo := bits.Mul64(a, b)
	// a, b < 2^61 keeps hi < 2^58, so hi*8 cannot overflow.
	r := (lo & p) + (lo >> 61) + hi*8
	r = (r & p) + (r >> 61)
	if r >= p {
		r -= p
	}
	return r
}

// EstimateJaccard estimates the Jaccard similarity of the sets behind two
// signatures as the fraction of agreeing positions.
func EstimateJaccard(a, b []uint64) float64 {
	if len(a) != len(b) || len(a) == 0 {
		return 0
	}
	same := 0
	for i := range a {
		if a[i] == b[i] {
			same++
		}
	}
	return float64(same) / float64(len(a))
}

// ExactJaccard computes |A∩B| / |A∪B| over token slices (duplicates
// ignored), the quantity MinHash estimates.
func ExactJaccard(a, b []string) float64 {
	as := make(map[string]bool, len(a))
	for _, t := range a {
		as[t] = true
	}
	bs := make(map[string]bool, len(b))
	for _, t := range b {
		bs[t] = true
	}
	inter := 0
	for t := range as {
		if bs[t] {
			inter++
		}
	}
	union := len(as) + len(bs) - inter
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

// CandidatePair is an unordered pair of item ordinals produced by banding.
type CandidatePair struct{ I, J int }

// BandingParams chooses a banding layout for a target similarity
// threshold: more bands catch lower similarities. Given a signature length
// n and threshold t, it picks rows per band r minimising |t - (1/b)^(1/r)|.
func BandingParams(signatureLen int, threshold float64) (bands, rows int) {
	best := 1
	bestDiff := 2.0
	for r := 1; r <= signatureLen; r++ {
		if signatureLen%r != 0 {
			continue
		}
		b := signatureLen / r
		// Approximate S-curve inflection (1/b)^(1/r).
		est := math.Pow(1/float64(b), 1/float64(r))
		diff := math.Abs(est - threshold)
		if diff < bestDiff {
			bestDiff = diff
			best = r
		}
	}
	return signatureLen / best, best
}

// rowsHash is the FNV-1a hash of one band's rows (little-endian byte
// order per value), identical to hashing the same bytes through
// hash/fnv.New64a.
func rowsHash(sig []uint64, band, rows int) uint64 {
	h := uint64(fnvOffset64)
	for r := 0; r < rows; r++ {
		v := sig[band*rows+r]
		for k := 0; k < 8; k++ {
			h ^= uint64(byte(v >> (8 * k)))
			h *= fnvPrime64
		}
	}
	return h
}

// BandKey folds one band of a signature into a single 64-bit bucket key:
// the band index is hashed in ahead of the row values, so the same row
// pattern in different bands lands in different buckets. The online
// index's per-shard bucket postings are keyed by it.
func BandKey(sig []uint64, band, rows int) uint64 {
	h := uint64(fnvOffset64)
	for k := 0; k < 8; k++ {
		h ^= uint64(byte(uint64(band) >> (8 * k)))
		h *= fnvPrime64
	}
	for r := 0; r < rows; r++ {
		v := sig[band*rows+r]
		for k := 0; k < 8; k++ {
			h ^= uint64(byte(v >> (8 * k)))
			h *= fnvPrime64
		}
	}
	return h
}

// Candidates runs banding LSH over the signatures: items whose signature
// agrees on every row of at least one band become a candidate pair. Pairs
// are deduplicated and returned in deterministic order.
func Candidates(signatures [][]uint64, bands, rows int) []CandidatePair {
	if bands < 1 || rows < 1 {
		return nil
	}
	type bandKey struct {
		band int
		hash uint64
	}
	buckets := make(map[bandKey][]int)
	for item, sig := range signatures {
		for b := 0; b < bands && (b+1)*rows <= len(sig); b++ {
			key := bandKey{band: b, hash: rowsHash(sig, b, rows)}
			buckets[key] = append(buckets[key], item)
		}
	}
	seen := make(map[CandidatePair]bool)
	var out []CandidatePair
	for _, items := range buckets {
		for x := 0; x < len(items); x++ {
			for y := x + 1; y < len(items); y++ {
				p := CandidatePair{I: items[x], J: items[y]}
				if p.I > p.J {
					p.I, p.J = p.J, p.I
				}
				if !seen[p] {
					seen[p] = true
					out = append(out, p)
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].I != out[j].I {
			return out[i].I < out[j].I
		}
		return out[i].J < out[j].J
	})
	return out
}
