package lsh

import (
	"math"
	"strings"
	"testing"
)

// FuzzSignature drives the MinHash/banding primitives the online index's
// probe path is built on. The contract under fuzzing: signatures are
// deterministic, bounded by the Mersenne prime, identical between the
// allocating and append-style paths, insensitive to token duplication;
// Jaccard estimates stay in [0,1] and are symmetric; BandingParams always
// returns a layout that tiles the signature exactly; and band keys are a
// deterministic pure function of (signature, band, rows) that separates
// bands sharing identical row values.
func FuzzSignature(f *testing.F) {
	f.Add("alpha beta gamma", "alpha beta delta", uint8(16), int64(1), 0.5)
	f.Add("", "alpha", uint8(1), int64(42), 0.9)
	f.Add("x y z", "x y z", uint8(128), int64(-7), 0.1)
	f.Add("tok", "tok tok tok", uint8(64), int64(0), math.NaN())

	f.Fuzz(func(t *testing.T, sa, sb string, rawLen uint8, seed int64, threshold float64) {
		sigLen := int(rawLen)%128 + 1
		h := NewMinHasher(sigLen, seed)
		if h.SignatureLen() != sigLen {
			t.Fatalf("signature length %d, want %d", h.SignatureLen(), sigLen)
		}
		ta, tb := strings.Fields(sa), strings.Fields(sb)

		siga := h.Signature(ta)
		if got := h.Signature(ta); !equalSig(siga, got) {
			t.Fatalf("signature not deterministic")
		}
		scratch := make([]uint64, 0, sigLen)
		if got := h.AppendSignature(scratch, ta); !equalSig(siga, got) {
			t.Fatalf("AppendSignature diverges from Signature")
		}
		// Duplicating the token set cannot change a minimum.
		if got := h.Signature(append(append([]string(nil), ta...), ta...)); !equalSig(siga, got) {
			t.Fatalf("signature changed under token duplication")
		}
		for i, v := range siga {
			if len(ta) > 0 && v >= mersennePrime {
				t.Fatalf("position %d: value %d outside the hash range", i, v)
			}
			if len(ta) == 0 && v != ^uint64(0) {
				t.Fatalf("empty set signature position %d not all-max", i)
			}
		}

		sigb := h.Signature(tb)
		est := EstimateJaccard(siga, sigb)
		if est < 0 || est > 1 || math.IsNaN(est) {
			t.Fatalf("estimate %v outside [0,1]", est)
		}
		if back := EstimateJaccard(sigb, siga); back != est {
			t.Fatalf("estimate not symmetric: %v vs %v", est, back)
		}
		if len(ta) > 0 && equalStrings(ta, tb) && est != 1 {
			t.Fatalf("identical sets estimate %v, want 1", est)
		}

		bands, rows := BandingParams(sigLen, threshold)
		if bands < 1 || rows < 1 || bands*rows != sigLen {
			t.Fatalf("BandingParams(%d, %v) = (%d, %d): does not tile the signature",
				sigLen, threshold, bands, rows)
		}
		for b := 0; b < bands; b++ {
			k := BandKey(siga, b, rows)
			if again := BandKey(siga, b, rows); again != k {
				t.Fatalf("band %d: BandKey not deterministic (%x vs %x)", b, k, again)
			}
		}
		if len(ta) == 0 && bands >= 2 {
			// All-max signature: every band has identical row values, and
			// the band index baked into the key must still separate them.
			if BandKey(siga, 0, rows) == BandKey(siga, 1, rows) {
				t.Fatal("band keys collide across bands with identical rows")
			}
		}
	})
}

func equalSig(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
