// Package sampling implements the debug-sample selection of the paper's
// Section 3 (following Magellan [9]): iterating on parameters over the
// full dataset is too slow, so the tool works on a sample that still
// contains both matching and non-matching profiles. K seed profiles are
// drawn at random; for each seed, k/2 profiles that share many tokens with
// it (likely matches) and k/2 random profiles are added.
package sampling

import (
	"math/rand"
	"sort"

	"sparker/internal/profile"
	"sparker/internal/tokenize"
)

// Options configures the debug sample.
type Options struct {
	// K is the number of seed profiles (default 20).
	K int
	// PerSeed is the per-seed budget k: k/2 token-sharing profiles plus
	// k/2 random ones (default 10).
	PerSeed int
	// Seed drives the random choices.
	Seed int64
	// Tokenizer used for the token-overlap score.
	Tokenizer tokenize.Options
}

// Sample is a down-sized collection plus the mapping back to the original
// profile IDs.
type Sample struct {
	Collection *profile.Collection
	// OriginalID[i] is the ID in the source collection of the sample's
	// profile i.
	OriginalID []profile.ID
	// SampleID maps source-collection IDs to sample IDs.
	SampleID map[profile.ID]profile.ID
}

// Build draws the debug sample. For clean-clean collections seeds come
// from source A and likely matches are searched in source B (and vice
// versa would be symmetric), so that the sample contains cross-source
// match candidates; for dirty collections both come from the whole set.
func Build(c *profile.Collection, opts Options) *Sample {
	k := opts.K
	if k <= 0 {
		k = 20
	}
	perSeed := opts.PerSeed
	if perSeed <= 0 {
		perSeed = 10
	}
	rng := rand.New(rand.NewSource(opts.Seed))

	// Token inverted index over the opposite side (or everything for
	// dirty), to find profiles sharing many tokens with a seed.
	tokenIndex := map[string][]profile.ID{}
	for i := range c.Profiles {
		p := &c.Profiles[i]
		if c.IsClean() && p.SourceID == 0 {
			continue
		}
		seen := map[string]bool{}
		for _, kv := range p.Attributes {
			for _, t := range opts.Tokenizer.Tokens(kv.Value) {
				if !seen[t] {
					seen[t] = true
					tokenIndex[t] = append(tokenIndex[t], p.ID)
				}
			}
		}
	}

	seedPool := make([]profile.ID, 0, c.Size())
	otherPool := make([]profile.ID, 0, c.Size())
	for i := range c.Profiles {
		id := profile.ID(i)
		if c.IsClean() && c.Profiles[i].SourceID == 1 {
			otherPool = append(otherPool, id)
		} else {
			seedPool = append(seedPool, id)
			if !c.IsClean() {
				otherPool = append(otherPool, id)
			}
		}
	}
	if len(seedPool) == 0 || len(otherPool) == 0 {
		return emptySample(c)
	}
	if k > len(seedPool) {
		k = len(seedPool)
	}

	selected := map[profile.ID]bool{}
	var order []profile.ID
	add := func(id profile.ID) {
		if !selected[id] {
			selected[id] = true
			order = append(order, id)
		}
	}

	seeds := rng.Perm(len(seedPool))[:k]
	for _, si := range seeds {
		seed := seedPool[si]
		add(seed)
		// k/2 most token-sharing profiles from the opposite pool.
		overlap := map[profile.ID]int{}
		seen := map[string]bool{}
		sp := c.Get(seed)
		for _, kv := range sp.Attributes {
			for _, t := range opts.Tokenizer.Tokens(kv.Value) {
				if seen[t] {
					continue
				}
				seen[t] = true
				for _, other := range tokenIndex[t] {
					if other != seed {
						overlap[other]++
					}
				}
			}
		}
		type cand struct {
			id profile.ID
			n  int
		}
		cands := make([]cand, 0, len(overlap))
		for id, n := range overlap {
			cands = append(cands, cand{id: id, n: n})
		}
		sort.Slice(cands, func(i, j int) bool {
			if cands[i].n != cands[j].n {
				return cands[i].n > cands[j].n
			}
			return cands[i].id < cands[j].id
		})
		for i := 0; i < len(cands) && i < perSeed/2; i++ {
			add(cands[i].id)
		}
		// k/2 random profiles from the opposite pool.
		for i := 0; i < perSeed/2; i++ {
			add(otherPool[rng.Intn(len(otherPool))])
		}
	}

	return assemble(c, order)
}

func emptySample(c *profile.Collection) *Sample {
	sep := profile.DirtySeparator
	if c.IsClean() {
		sep = 0
	}
	return &Sample{
		Collection: &profile.Collection{Separator: sep},
		SampleID:   map[profile.ID]profile.ID{},
	}
}

// assemble renumbers the selected profiles into a dense sub-collection,
// preserving the clean-clean source split.
func assemble(c *profile.Collection, ids []profile.ID) *Sample {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	s := &Sample{SampleID: make(map[profile.ID]profile.ID, len(ids))}
	var a, b []profile.Profile
	for _, id := range ids {
		p := *c.Get(id)
		if c.IsClean() && p.SourceID == 1 {
			b = append(b, p)
		} else {
			a = append(a, p)
		}
	}
	if c.IsClean() {
		s.Collection = profile.NewCleanClean(a, b)
	} else {
		s.Collection = profile.NewDirty(a)
	}
	// NewCleanClean reorders (A first) and renumbers, so rebuild the
	// mapping through (source, original ID), which is stable.
	lookup := make(map[[2]string]profile.ID, c.Size())
	for i := range c.Profiles {
		p := &c.Profiles[i]
		lookup[[2]string{itoa(p.SourceID), p.OriginalID}] = p.ID
	}
	s.OriginalID = make([]profile.ID, len(s.Collection.Profiles))
	for i := range s.Collection.Profiles {
		sp := &s.Collection.Profiles[i]
		orig := lookup[[2]string{itoa(sp.SourceID), sp.OriginalID}]
		s.OriginalID[i] = orig
		s.SampleID[orig] = sp.ID
	}
	return s
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	return "1"
}
