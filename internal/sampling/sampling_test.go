package sampling

import (
	"reflect"
	"testing"

	"sparker/internal/blocking"
	"sparker/internal/datagen"
	"sparker/internal/evaluation"
	"sparker/internal/profile"
)

func abtBuySmall() *datagen.Dataset {
	cfg := datagen.AbtBuy()
	cfg.CoreEntities = 200
	cfg.AOnly = 20
	cfg.BDup = 10
	return datagen.Generate(cfg)
}

func TestBuildProducesValidSubCollection(t *testing.T) {
	ds := abtBuySmall()
	s := Build(ds.Collection, Options{K: 10, PerSeed: 6, Seed: 1})
	if err := s.Collection.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.Collection.Size() == 0 {
		t.Fatal("empty sample")
	}
	if s.Collection.Size() >= ds.Collection.Size() {
		t.Fatal("sample not smaller than source")
	}
	if !s.Collection.IsClean() {
		t.Fatal("clean-clean input must give a clean-clean sample")
	}
}

func TestMappingRoundTrips(t *testing.T) {
	ds := abtBuySmall()
	s := Build(ds.Collection, Options{K: 8, PerSeed: 6, Seed: 2})
	for i := range s.Collection.Profiles {
		sp := &s.Collection.Profiles[i]
		orig := s.OriginalID[i]
		op := ds.Collection.Get(orig)
		if op.OriginalID != sp.OriginalID || op.SourceID != sp.SourceID {
			t.Fatalf("sample %d maps to wrong original: %v vs %v", i, sp, op)
		}
		if s.SampleID[orig] != sp.ID {
			t.Fatalf("reverse mapping broken for %d", orig)
		}
	}
}

// TestSampleContainsMatches is the paper's requirement: a debug sample
// must contain matching pairs, not just random profiles, otherwise
// parameter tuning on it is meaningless.
func TestSampleContainsMatches(t *testing.T) {
	ds := abtBuySmall()
	gt, err := evaluation.FromOriginalIDs(ds.Collection, ds.GroundTruth)
	if err != nil {
		t.Fatal(err)
	}
	s := Build(ds.Collection, Options{K: 20, PerSeed: 10, Seed: 3})

	matches := 0
	for _, p := range gt.Pairs() {
		if _, okA := s.SampleID[p.A]; !okA {
			continue
		}
		if _, okB := s.SampleID[p.B]; !okB {
			continue
		}
		matches++
	}
	if matches < 5 {
		t.Fatalf("sample contains only %d matching pairs", matches)
	}
	// And non-matches: sample size implies far more pairs than matches.
	if int64(matches) >= s.Collection.MaxComparisons() {
		t.Fatal("sample has no non-matching pairs")
	}
}

func TestSampleDeterministic(t *testing.T) {
	ds := abtBuySmall()
	s1 := Build(ds.Collection, Options{K: 10, PerSeed: 6, Seed: 7})
	s2 := Build(ds.Collection, Options{K: 10, PerSeed: 6, Seed: 7})
	if !reflect.DeepEqual(s1.OriginalID, s2.OriginalID) {
		t.Fatal("same seed, different samples")
	}
}

func TestSampleSizeGrowsWithK(t *testing.T) {
	ds := abtBuySmall()
	small := Build(ds.Collection, Options{K: 5, PerSeed: 4, Seed: 4})
	large := Build(ds.Collection, Options{K: 30, PerSeed: 10, Seed: 4})
	if small.Collection.Size() >= large.Collection.Size() {
		t.Fatalf("K=5 gave %d profiles, K=30 gave %d",
			small.Collection.Size(), large.Collection.Size())
	}
}

func TestSampleDirtyCollection(t *testing.T) {
	ds := datagen.GenerateDirty(80, 5)
	s := Build(ds.Collection, Options{K: 10, PerSeed: 6, Seed: 5})
	if s.Collection.IsClean() {
		t.Fatal("dirty input must give a dirty sample")
	}
	if err := s.Collection.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.Collection.Size() == 0 {
		t.Fatal("empty dirty sample")
	}
}

func TestSampleGroundTruthUsable(t *testing.T) {
	// Evaluating blocking on the sample must work end to end: remap the
	// ground truth into sample IDs and measure recall.
	ds := abtBuySmall()
	gt, err := evaluation.FromOriginalIDs(ds.Collection, ds.GroundTruth)
	if err != nil {
		t.Fatal(err)
	}
	s := Build(ds.Collection, Options{K: 20, PerSeed: 10, Seed: 6})

	var samplePairs []blocking.Pair
	for _, p := range gt.Pairs() {
		sa, okA := s.SampleID[p.A]
		sb, okB := s.SampleID[p.B]
		if okA && okB {
			samplePairs = append(samplePairs, blocking.Pair{A: sa, B: sb})
		}
	}
	sampleGT := evaluation.NewGroundTruth(samplePairs)
	blocks := blocking.TokenBlocking(s.Collection, blocking.Options{})
	m := evaluation.EvaluatePairs(blocks.DistinctPairs(), sampleGT, s.Collection.MaxComparisons())
	if m.Recall < 0.9 {
		t.Fatalf("sample blocking recall %f; sample must preserve matches' tokens", m.Recall)
	}
}

func TestEmptyCollection(t *testing.T) {
	c := profile.NewCleanClean(nil, nil)
	s := Build(c, Options{K: 5, PerSeed: 4, Seed: 1})
	if s.Collection.Size() != 0 {
		t.Fatal("sample of empty collection must be empty")
	}
}
