// Package loader reads entity profiles and ground truths from CSV and
// JSON-lines files (the Entity Profiles Loading stage of Figure 3) and
// writes resolved entities back out.
package loader

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"

	"sparker/internal/blocking"
	"sparker/internal/clustering"
	"sparker/internal/matching"
	"sparker/internal/profile"
)

// ReadProfilesCSV parses one source dataset from CSV. The first row is the
// header; idColumn names the column holding the record identifier (pass ""
// to use row numbers). Every other column becomes an attribute; empty
// cells are skipped.
func ReadProfilesCSV(r io.Reader, idColumn string) ([]profile.Profile, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("loader: reading CSV header: %w", err)
	}
	idIdx := -1
	for i, h := range header {
		if idColumn != "" && strings.EqualFold(strings.TrimSpace(h), idColumn) {
			idIdx = i
		}
	}
	if idColumn != "" && idIdx < 0 {
		return nil, fmt.Errorf("loader: id column %q not found in header %v", idColumn, header)
	}
	var out []profile.Profile
	row := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("loader: reading CSV row %d: %w", row+2, err)
		}
		p := profile.Profile{}
		if idIdx >= 0 && idIdx < len(rec) {
			p.OriginalID = strings.TrimSpace(rec[idIdx])
		} else {
			p.OriginalID = fmt.Sprintf("row-%d", row)
		}
		for i, cell := range rec {
			if i == idIdx || i >= len(header) {
				continue
			}
			p.Add(strings.TrimSpace(header[i]), cell)
		}
		out = append(out, p)
		row++
	}
	return out, nil
}

// ReadProfilesCSVFile is ReadProfilesCSV over a file path.
func ReadProfilesCSVFile(path, idColumn string) ([]profile.Profile, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("loader: %w", err)
	}
	defer f.Close()
	return ReadProfilesCSV(f, idColumn)
}

// jsonProfile is the JSON-lines wire format: {"id": "...", "attr": "v"} or
// {"id": "...", "attr": ["v1", "v2"]}.
type jsonProfile map[string]any

// ReadProfilesJSONL parses one source dataset from JSON-lines. idField
// names the identifier key (default "id").
func ReadProfilesJSONL(r io.Reader, idField string) ([]profile.Profile, error) {
	if idField == "" {
		idField = "id"
	}
	dec := json.NewDecoder(r)
	var out []profile.Profile
	row := 0
	for dec.More() {
		var jp jsonProfile
		if err := dec.Decode(&jp); err != nil {
			return nil, fmt.Errorf("loader: JSONL record %d: %w", row+1, err)
		}
		p := profile.Profile{OriginalID: fmt.Sprintf("row-%d", row)}
		if v, ok := jp[idField]; ok {
			p.OriginalID = fmt.Sprintf("%v", v)
		}
		for k, v := range jp {
			if k == idField {
				continue
			}
			switch vv := v.(type) {
			case []any:
				for _, item := range vv {
					p.Add(k, fmt.Sprintf("%v", item))
				}
			default:
				p.Add(k, fmt.Sprintf("%v", vv))
			}
		}
		out = append(out, p)
		row++
	}
	return out, nil
}

// ReadGroundTruthCSV parses a two-column CSV of (idA, idB) true matches;
// a header row is skipped when its cells do not reappear as data.
func ReadGroundTruthCSV(r io.Reader) ([][2]string, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	var out [][2]string
	first := true
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("loader: reading ground truth: %w", err)
		}
		if len(rec) < 2 {
			continue
		}
		if first {
			first = false
			// Heuristic header detection: typical headers name the columns.
			lower := strings.ToLower(rec[0] + " " + rec[1])
			if strings.Contains(lower, "id") && !strings.ContainsAny(rec[0], "0123456789") {
				continue
			}
		}
		out = append(out, [2]string{strings.TrimSpace(rec[0]), strings.TrimSpace(rec[1])})
	}
	return out, nil
}

// ReadGroundTruthCSVFile is ReadGroundTruthCSV over a file path.
func ReadGroundTruthCSVFile(path string) ([][2]string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("loader: %w", err)
	}
	defer f.Close()
	return ReadGroundTruthCSV(f)
}

// WriteEntitiesCSV writes resolved entities as (entityID, source,
// originalID) rows.
func WriteEntitiesCSV(w io.Writer, c *profile.Collection, entities []clustering.Entity) error {
	cw := csv.NewWriter(w)
	defer cw.Flush()
	if err := cw.Write([]string{"entity", "source", "original_id"}); err != nil {
		return fmt.Errorf("loader: writing entities: %w", err)
	}
	for _, e := range entities {
		for _, id := range e.Profiles {
			p := c.Get(id)
			if err := cw.Write([]string{
				fmt.Sprintf("e%d", e.ID),
				fmt.Sprintf("%d", p.SourceID),
				p.OriginalID,
			}); err != nil {
				return fmt.Errorf("loader: writing entities: %w", err)
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCandidatePairsCSV exports the blocker's candidate pairs as
// (originalA, originalB) rows. The paper notes that "any existing tool
// can be used" for entity matching; this is the hand-off format for
// matching the candidates with an external matcher.
func WriteCandidatePairsCSV(w io.Writer, c *profile.Collection, pairs []blocking.Pair) error {
	cw := csv.NewWriter(w)
	defer cw.Flush()
	if err := cw.Write([]string{"id_a", "id_b"}); err != nil {
		return fmt.Errorf("loader: writing candidate pairs: %w", err)
	}
	for _, p := range pairs {
		if err := cw.Write([]string{c.Get(p.A).OriginalID, c.Get(p.B).OriginalID}); err != nil {
			return fmt.Errorf("loader: writing candidate pairs: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadMatchesCSV imports externally matched pairs with scores as
// (originalA, originalB, score) rows, resolving them against the
// collection. A header row is expected.
func ReadMatchesCSV(r io.Reader, c *profile.Collection) ([]matching.Match, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	lookup := map[string]profile.ID{}
	for i := range c.Profiles {
		p := &c.Profiles[i]
		lookup[fmt.Sprintf("%d|%s", p.SourceID, p.OriginalID)] = p.ID
	}
	resolve := func(id string) (profile.ID, bool) {
		if v, ok := lookup["0|"+id]; ok {
			return v, true
		}
		v, ok := lookup["1|"+id]
		return v, ok
	}
	if _, err := cr.Read(); err != nil { // header
		return nil, fmt.Errorf("loader: reading matches header: %w", err)
	}
	var out []matching.Match
	row := 1
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("loader: reading matches row %d: %w", row+1, err)
		}
		if len(rec) < 2 {
			continue
		}
		a, okA := resolve(strings.TrimSpace(rec[0]))
		b, okB := resolve(strings.TrimSpace(rec[1]))
		if !okA || !okB {
			return nil, fmt.Errorf("loader: matches row %d references unknown profile", row+1)
		}
		score := 1.0
		if len(rec) >= 3 {
			if _, err := fmt.Sscanf(strings.TrimSpace(rec[2]), "%g", &score); err != nil {
				return nil, fmt.Errorf("loader: matches row %d has bad score %q", row+1, rec[2])
			}
		}
		out = append(out, matching.Match{A: a, B: b, Score: score})
		row++
	}
	return out, nil
}

// WriteProfilesCSV writes profiles with the union of attribute names as
// columns (used to export generated datasets for external tools).
func WriteProfilesCSV(w io.Writer, profiles []profile.Profile) error {
	var cols []string
	seen := map[string]bool{}
	for i := range profiles {
		for _, kv := range profiles[i].Attributes {
			if !seen[kv.Key] {
				seen[kv.Key] = true
				cols = append(cols, kv.Key)
			}
		}
	}
	cw := csv.NewWriter(w)
	defer cw.Flush()
	if err := cw.Write(append([]string{"id"}, cols...)); err != nil {
		return fmt.Errorf("loader: writing profiles: %w", err)
	}
	for i := range profiles {
		p := &profiles[i]
		row := make([]string, 1+len(cols))
		row[0] = p.OriginalID
		for j, col := range cols {
			row[j+1] = p.Value(col)
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("loader: writing profiles: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}
