package loader

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"sparker/internal/blocking"
	"sparker/internal/clustering"
	"sparker/internal/profile"
)

func TestReadProfilesCSV(t *testing.T) {
	csv := "id,name,price\n1,acme widget,9.99\n2,zenix gadget,\n"
	ps, err := ReadProfilesCSV(strings.NewReader(csv), "id")
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 2 {
		t.Fatalf("profiles: %d", len(ps))
	}
	if ps[0].OriginalID != "1" || ps[0].Value("name") != "acme widget" || ps[0].Value("price") != "9.99" {
		t.Fatalf("first profile: %v", ps[0])
	}
	// Empty cell skipped.
	if ps[1].Value("price") != "" || len(ps[1].Attributes) != 1 {
		t.Fatalf("second profile: %v", ps[1])
	}
}

func TestReadProfilesCSVNoIDColumn(t *testing.T) {
	csv := "name\nwidget\ngadget\n"
	ps, err := ReadProfilesCSV(strings.NewReader(csv), "")
	if err != nil {
		t.Fatal(err)
	}
	if ps[0].OriginalID != "row-0" || ps[1].OriginalID != "row-1" {
		t.Fatalf("ids: %q %q", ps[0].OriginalID, ps[1].OriginalID)
	}
}

func TestReadProfilesCSVMissingIDColumnErrors(t *testing.T) {
	if _, err := ReadProfilesCSV(strings.NewReader("a,b\n1,2\n"), "id"); err == nil {
		t.Fatal("want error for missing id column")
	}
}

func TestReadProfilesCSVRaggedRows(t *testing.T) {
	csv := "id,name,extra\n1,widget\n"
	ps, err := ReadProfilesCSV(strings.NewReader(csv), "id")
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 1 || ps[0].Value("name") != "widget" {
		t.Fatalf("%v", ps)
	}
}

func TestReadProfilesJSONL(t *testing.T) {
	data := `{"id": "x1", "name": "widget", "tags": ["a", "b"]}
{"id": "x2", "name": "gadget"}`
	ps, err := ReadProfilesJSONL(strings.NewReader(data), "id")
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 2 || ps[0].OriginalID != "x1" {
		t.Fatalf("%v", ps)
	}
	// Array values become repeated attributes.
	count := 0
	for _, kv := range ps[0].Attributes {
		if kv.Key == "tags" {
			count++
		}
	}
	if count != 2 {
		t.Fatalf("tags attributes: %d", count)
	}
}

func TestReadProfilesJSONLBadInput(t *testing.T) {
	if _, err := ReadProfilesJSONL(strings.NewReader("{not json"), "id"); err == nil {
		t.Fatal("want error")
	}
}

func TestReadGroundTruthCSV(t *testing.T) {
	data := "idAbt,idBuy\na1,b1\na2,b2\n"
	gt, err := ReadGroundTruthCSV(strings.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	want := [][2]string{{"a1", "b1"}, {"a2", "b2"}}
	if !reflect.DeepEqual(gt, want) {
		t.Fatalf("gt=%v", gt)
	}
}

func TestReadGroundTruthCSVNoHeader(t *testing.T) {
	data := "1,17\n2,18\n"
	gt, err := ReadGroundTruthCSV(strings.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if len(gt) != 2 || gt[0] != [2]string{"1", "17"} {
		t.Fatalf("gt=%v", gt)
	}
}

func TestWriteEntitiesCSV(t *testing.T) {
	a := []profile.Profile{{OriginalID: "a1"}, {OriginalID: "a2"}}
	b := []profile.Profile{{OriginalID: "b1"}}
	c := profile.NewCleanClean(a, b)
	entities := []clustering.Entity{{ID: 0, Profiles: []profile.ID{0, 2}}}
	var buf bytes.Buffer
	if err := WriteEntitiesCSV(&buf, c, entities); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"entity,source,original_id", "e0,0,a1", "e0,1,b1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestCandidatePairsExport(t *testing.T) {
	a := []profile.Profile{{OriginalID: "a1"}, {OriginalID: "a2"}}
	b := []profile.Profile{{OriginalID: "b1"}}
	c := profile.NewCleanClean(a, b)
	var buf bytes.Buffer
	pairs := []blocking.Pair{{A: 0, B: 2}, {A: 1, B: 2}}
	if err := WriteCandidatePairsCSV(&buf, c, pairs); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"id_a,id_b", "a1,b1", "a2,b1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in %q", want, out)
		}
	}
}

func TestReadMatchesCSV(t *testing.T) {
	a := []profile.Profile{{OriginalID: "a1"}, {OriginalID: "a2"}}
	b := []profile.Profile{{OriginalID: "b1"}}
	c := profile.NewCleanClean(a, b)
	data := "id_a,id_b,score\na1,b1,0.87\na2,b1\n"
	matches, err := ReadMatchesCSV(strings.NewReader(data), c)
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 2 {
		t.Fatalf("matches: %v", matches)
	}
	if matches[0].A != 0 || matches[0].B != 2 || matches[0].Score != 0.87 {
		t.Fatalf("first match: %+v", matches[0])
	}
	if matches[1].Score != 1.0 {
		t.Fatalf("default score: %+v", matches[1])
	}
}

func TestReadMatchesCSVErrors(t *testing.T) {
	c := profile.NewCleanClean([]profile.Profile{{OriginalID: "a1"}}, []profile.Profile{{OriginalID: "b1"}})
	if _, err := ReadMatchesCSV(strings.NewReader("h1,h2\nunknown,b1\n"), c); err == nil {
		t.Fatal("want error for unknown profile")
	}
	if _, err := ReadMatchesCSV(strings.NewReader("h1,h2,s\na1,b1,notanumber\n"), c); err == nil {
		t.Fatal("want error for bad score")
	}
	if _, err := ReadMatchesCSV(strings.NewReader(""), c); err == nil {
		t.Fatal("want error for missing header")
	}
}

func TestMatchesRoundTripThroughExternalTool(t *testing.T) {
	// Export candidates, "match" them externally (echo with scores), and
	// import the result — the external-matcher hand-off of the paper.
	a := []profile.Profile{{OriginalID: "a1"}}
	b := []profile.Profile{{OriginalID: "b1"}}
	c := profile.NewCleanClean(a, b)
	var buf bytes.Buffer
	if err := WriteCandidatePairsCSV(&buf, c, []blocking.Pair{{A: 0, B: 1}}); err != nil {
		t.Fatal(err)
	}
	// Simulate the external matcher by appending a score column.
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	scored := lines[0] + ",score\n" + lines[1] + ",0.9\n"
	matches, err := ReadMatchesCSV(strings.NewReader(scored), c)
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 1 || matches[0].Score != 0.9 {
		t.Fatalf("round trip: %v", matches)
	}
}

func TestWriteProfilesCSVRoundTrip(t *testing.T) {
	var p1, p2 profile.Profile
	p1.OriginalID = "x"
	p1.Add("name", "widget")
	p1.Add("price", "9.99")
	p2.OriginalID = "y"
	p2.Add("name", "gadget")

	var buf bytes.Buffer
	if err := WriteProfilesCSV(&buf, []profile.Profile{p1, p2}); err != nil {
		t.Fatal(err)
	}
	back, err := ReadProfilesCSV(&buf, "id")
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 || back[0].Value("name") != "widget" || back[0].Value("price") != "9.99" {
		t.Fatalf("round trip: %v", back)
	}
	if back[1].Value("price") != "" {
		t.Fatalf("missing value resurfaced: %v", back[1])
	}
}
