package clustering

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"sparker/internal/dataflow"
	"sparker/internal/matching"
	"sparker/internal/profile"
)

func m(a, b profile.ID, score float64) matching.Match {
	return matching.Match{A: a, B: b, Score: score}
}

func TestUnionFindBasics(t *testing.T) {
	uf := NewUnionFind()
	uf.Union(1, 2)
	uf.Union(3, 4)
	if uf.Connected(1, 3) {
		t.Fatal("disjoint sets reported connected")
	}
	uf.Union(2, 3)
	if !uf.Connected(1, 4) {
		t.Fatal("transitive union failed")
	}
	if uf.Find(9) != 9 {
		t.Fatal("unseen element must be its own root")
	}
}

func TestConnectedComponentsTransitivity(t *testing.T) {
	// p1~p2, p2~p3 implies p1,p2,p3 in one entity (the paper's
	// transitivity assumption).
	entities := ConnectedComponents([]matching.Match{m(1, 2, 0.9), m(2, 3, 0.8), m(5, 6, 0.7)})
	if len(entities) != 2 {
		t.Fatalf("entities: %v", entities)
	}
	if !reflect.DeepEqual(entities[0].Profiles, []profile.ID{1, 2, 3}) {
		t.Fatalf("first entity: %v", entities[0].Profiles)
	}
	if !reflect.DeepEqual(entities[1].Profiles, []profile.ID{5, 6}) {
		t.Fatalf("second entity: %v", entities[1].Profiles)
	}
}

func TestConnectedComponentsEmpty(t *testing.T) {
	if got := ConnectedComponents(nil); len(got) != 0 {
		t.Fatalf("got %v", got)
	}
}

func TestEntityIDsSequential(t *testing.T) {
	entities := ConnectedComponents([]matching.Match{m(10, 11, 1), m(1, 2, 1), m(20, 21, 1)})
	for i, e := range entities {
		if e.ID != i {
			t.Fatalf("entity %d has ID %d", i, e.ID)
		}
	}
}

func randomMatches(seed int64, n int) []matching.Match {
	rng := rand.New(rand.NewSource(seed))
	var out []matching.Match
	for i := 0; i < n; i++ {
		a := profile.ID(rng.Intn(40))
		b := profile.ID(rng.Intn(40))
		if a == b {
			continue
		}
		out = append(out, m(a, b, rng.Float64()))
	}
	return out
}

func TestDistributedCCMatchesSequential(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ctx := dataflow.NewContext(dataflow.WithParallelism(workers))
		for seed := int64(0); seed < 5; seed++ {
			matches := randomMatches(seed, 60)
			seq := ConnectedComponents(matches)
			dist, err := DistributedConnectedComponents(ctx, matches, workers*2)
			if err != nil {
				t.Fatal(err)
			}
			if !sameClustering(seq, dist) {
				t.Fatalf("workers=%d seed=%d: clusterings differ\nseq  %v\ndist %v", workers, seed, seq, dist)
			}
		}
		ctx.Close()
	}
}

// sameClustering compares the partitions regardless of entity numbering.
func sameClustering(a, b []Entity) bool {
	key := func(es []Entity) map[profile.ID]profile.ID {
		rep := map[profile.ID]profile.ID{}
		for _, e := range es {
			minID := e.Profiles[0]
			for _, p := range e.Profiles {
				rep[p] = minID
			}
		}
		return rep
	}
	return reflect.DeepEqual(key(a), key(b))
}

func TestDistributedCCEmpty(t *testing.T) {
	ctx := dataflow.NewContext(dataflow.WithParallelism(2))
	defer ctx.Close()
	got, err := DistributedConnectedComponents(ctx, nil, 2)
	if err != nil || len(got) != 0 {
		t.Fatalf("got %v err %v", got, err)
	}
}

func TestQuickCCPartitionIsValid(t *testing.T) {
	f := func(seed int64) bool {
		matches := randomMatches(seed, 50)
		entities := ConnectedComponents(matches)
		// Every matched profile appears in exactly one entity.
		where := map[profile.ID]int{}
		for _, e := range entities {
			for _, p := range e.Profiles {
				if _, dup := where[p]; dup {
					return false
				}
				where[p] = e.ID
			}
		}
		// Every match's endpoints are co-clustered.
		for _, mm := range matches {
			if where[mm.A] != where[mm.B] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestCenterClusteringNoChaining(t *testing.T) {
	// Chain 1-2, 2-3, 3-4 with descending scores: CC gives one entity;
	// center clustering keeps 1's cluster from swallowing 4.
	matches := []matching.Match{m(1, 2, 0.9), m(2, 3, 0.8), m(3, 4, 0.7)}
	cc := ConnectedComponents(matches)
	if len(cc) != 1 {
		t.Fatalf("CC entities: %v", cc)
	}
	center := CenterClustering(matches)
	if len(center) < 2 {
		t.Fatalf("center clustering did not break the chain: %v", center)
	}
	// 1 is the first-seen center and captures 2.
	if !reflect.DeepEqual(center[0].Profiles, []profile.ID{1, 2}) {
		t.Fatalf("first cluster: %v", center[0].Profiles)
	}
}

func TestMergeCenterMergesViaSharedNonCenter(t *testing.T) {
	// Centers 1 and 4; profile 2 attaches to 1, then also matches center
	// 4: merge-center unifies the clusters, center clustering does not.
	matches := []matching.Match{
		m(1, 2, 0.9), // 1 center, 2 attached
		m(4, 5, 0.8), // 4 center, 5 attached
		m(4, 2, 0.7), // 2 (attached) matches center 4
	}
	plain := CenterClustering(matches)
	merged := MergeCenterClustering(matches)
	if len(plain) != 2 {
		t.Fatalf("center: %v", plain)
	}
	if len(merged) != 1 {
		t.Fatalf("merge-center should unify: %v", merged)
	}
}

func TestCenterDeterministicOnScoreTies(t *testing.T) {
	matches := []matching.Match{m(3, 4, 0.5), m(1, 2, 0.5)}
	c1 := CenterClustering(matches)
	c2 := CenterClustering([]matching.Match{m(1, 2, 0.5), m(3, 4, 0.5)})
	if !sameClustering(c1, c2) {
		t.Fatal("tie-breaking depends on input order")
	}
}

func TestCenterClusteringAllBranches(t *testing.T) {
	// Exercise every assignment branch: center-meets-unassigned in both
	// argument orders, and skipped matches between two settled profiles.
	matches := []matching.Match{
		m(1, 2, 0.9), // both unassigned: 1 center, 2 attached
		m(3, 1, 0.8), // B is a center, A unassigned: 3 attaches to 1
		m(4, 5, 0.7), // new cluster: 4 center, 5 attached
		m(4, 6, 0.6), // A is a center, B unassigned: 6 attaches to 4
		m(2, 5, 0.5), // both attached: skipped
		m(1, 4, 0.4), // both centers: skipped
	}
	entities := CenterClustering(matches)
	if len(entities) != 2 {
		t.Fatalf("entities: %v", entities)
	}
	if !reflect.DeepEqual(entities[0].Profiles, []profile.ID{1, 2, 3}) {
		t.Fatalf("first cluster: %v", entities[0].Profiles)
	}
	if !reflect.DeepEqual(entities[1].Profiles, []profile.ID{4, 5, 6}) {
		t.Fatalf("second cluster: %v", entities[1].Profiles)
	}
}

func TestMergeCenterAllBranches(t *testing.T) {
	matches := []matching.Match{
		m(1, 2, 0.9), // both unassigned: 1 center
		m(3, 1, 0.8), // B center, A unassigned: attach
		m(4, 5, 0.7), // second cluster
		m(1, 5, 0.6), // A center, B attached elsewhere: merge clusters
		m(6, 7, 0.5), // third cluster
		m(7, 6, 0.4), // both assigned, no center relation: skip
	}
	entities := MergeCenterClustering(matches)
	if len(entities) != 2 {
		t.Fatalf("entities: %v", entities)
	}
	total := 0
	for _, e := range entities {
		total += len(e.Profiles)
	}
	if total != 7 {
		t.Fatalf("profiles covered: %d", total)
	}
}

func TestMergeCenterReverseMerge(t *testing.T) {
	// The symmetric merge branch: B is the center, A is attached elsewhere.
	matches := []matching.Match{
		m(1, 2, 0.9), // 1 center, 2 attached
		m(4, 5, 0.8), // 4 center, 5 attached
		m(2, 4, 0.7), // A attached, B center: merge
	}
	entities := MergeCenterClustering(matches)
	if len(entities) != 1 {
		t.Fatalf("expected one merged entity: %v", entities)
	}
	if !reflect.DeepEqual(entities[0].Profiles, []profile.ID{1, 2, 4, 5}) {
		t.Fatalf("merged entity: %v", entities[0].Profiles)
	}
}

func TestUniqueMappingOneToOne(t *testing.T) {
	// Profile 2 matches both 10 and 11; only the stronger pairing
	// survives, and 11 can then pair with its runner-up 3.
	matches := []matching.Match{
		m(2, 10, 0.9),
		m(2, 11, 0.8),
		m(3, 11, 0.7),
	}
	entities := UniqueMappingClustering(matches)
	if len(entities) != 2 {
		t.Fatalf("entities: %v", entities)
	}
	if !reflect.DeepEqual(entities[0].Profiles, []profile.ID{2, 10}) {
		t.Fatalf("first entity: %v", entities[0].Profiles)
	}
	if !reflect.DeepEqual(entities[1].Profiles, []profile.ID{3, 11}) {
		t.Fatalf("second entity: %v", entities[1].Profiles)
	}
}

func TestUniqueMappingNoProfileTwice(t *testing.T) {
	matches := randomMatches(9, 80)
	entities := UniqueMappingClustering(matches)
	seen := map[profile.ID]bool{}
	for _, e := range entities {
		if len(e.Profiles) != 2 {
			t.Fatalf("unique mapping must yield pairs: %v", e.Profiles)
		}
		for _, p := range e.Profiles {
			if seen[p] {
				t.Fatalf("profile %d assigned twice", p)
			}
			seen[p] = true
		}
	}
}

func TestPairsOf(t *testing.T) {
	entities := []Entity{{ID: 0, Profiles: []profile.ID{1, 2, 3}}}
	pairs := PairsOf(entities)
	if len(pairs) != 3 {
		t.Fatalf("pairs: %v", pairs)
	}
}

func TestDistributedCCIterationsBounded(t *testing.T) {
	// A long path graph needs several label-propagation rounds; the jobs
	// counter shows iteration happened and terminated.
	var matches []matching.Match
	for i := 0; i < 20; i++ {
		matches = append(matches, m(profile.ID(i), profile.ID(i+1), 1))
	}
	ctx := dataflow.NewContext(dataflow.WithParallelism(2))
	defer ctx.Close()
	entities, err := DistributedConnectedComponents(ctx, matches, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(entities) != 1 || len(entities[0].Profiles) != 21 {
		t.Fatalf("path graph not unified: %v", entities)
	}
}
