// Package clustering implements SparkER's entity clusterer (Figure 5):
// the similarity graph produced by the matcher — profiles as nodes,
// matching pairs as edges — is partitioned into equivalence clusters so
// that every cluster holds all profiles of one real-world entity. The
// default algorithm is connected components under the transitivity
// assumption, the same algorithm the paper delegates to Spark GraphX; a
// distributed label-propagation variant runs on the dataflow engine.
// Center and merge-center clustering [8] are provided as the alternatives
// the entity-clustering literature evaluates.
package clustering

import (
	"fmt"
	"sort"

	"sparker/internal/dataflow"
	"sparker/internal/matching"
	"sparker/internal/profile"
)

// Entity is one resolved real-world entity: the set of profile IDs that
// refer to it.
type Entity struct {
	ID       int
	Profiles []profile.ID // sorted ascending
}

// UnionFind is a path-compressing disjoint-set forest over profile IDs.
type UnionFind struct {
	parent map[profile.ID]profile.ID
	rank   map[profile.ID]int
}

// NewUnionFind creates an empty forest.
func NewUnionFind() *UnionFind {
	return &UnionFind{parent: map[profile.ID]profile.ID{}, rank: map[profile.ID]int{}}
}

// Find returns the representative of x, adding x if unseen.
func (u *UnionFind) Find(x profile.ID) profile.ID {
	p, ok := u.parent[x]
	if !ok {
		u.parent[x] = x
		return x
	}
	if p == x {
		return x
	}
	root := u.Find(p)
	u.parent[x] = root
	return root
}

// Union merges the sets of a and b.
func (u *UnionFind) Union(a, b profile.ID) {
	ra, rb := u.Find(a), u.Find(b)
	if ra == rb {
		return
	}
	if u.rank[ra] < u.rank[rb] {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
	if u.rank[ra] == u.rank[rb] {
		u.rank[ra]++
	}
}

// Connected reports whether a and b are in the same set.
func (u *UnionFind) Connected(a, b profile.ID) bool { return u.Find(a) == u.Find(b) }

// entitiesFromAssignment turns a representative map into sorted entities.
func entitiesFromAssignment(rep map[profile.ID]profile.ID) []Entity {
	groups := map[profile.ID][]profile.ID{}
	for id, r := range rep {
		groups[r] = append(groups[r], id)
	}
	roots := make([]profile.ID, 0, len(groups))
	for r := range groups {
		roots = append(roots, r)
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i] < roots[j] })
	out := make([]Entity, 0, len(roots))
	for i, r := range roots {
		members := groups[r]
		sort.Slice(members, func(x, y int) bool { return members[x] < members[y] })
		out = append(out, Entity{ID: i, Profiles: members})
	}
	return out
}

// ConnectedComponents clusters the similarity graph sequentially with
// union-find. Only profiles that appear in at least one match become part
// of a (possibly singleton) entity; callers wanting singleton entities for
// unmatched profiles can append them afterwards.
func ConnectedComponents(matches []matching.Match) []Entity {
	uf := NewUnionFind()
	for _, m := range matches {
		uf.Union(m.A, m.B)
	}
	rep := map[profile.ID]profile.ID{}
	for id := range uf.parent {
		rep[id] = uf.Find(id)
	}
	return entitiesFromAssignment(rep)
}

// DistributedConnectedComponents computes the same clustering on the
// dataflow engine with iterative label propagation (the Pregel-style
// algorithm GraphX uses): every node starts labelled with its own ID and
// repeatedly adopts the minimum label in its neighbourhood until no label
// changes. Each iteration is one shuffle stage.
func DistributedConnectedComponents(ctx *dataflow.Context, matches []matching.Match, numPartitions int) ([]Entity, error) {
	if len(matches) == 0 {
		return nil, nil
	}
	if numPartitions < 1 {
		numPartitions = ctx.DefaultPartitions()
	}

	// Undirected edges, both directions, plus self-loops to keep labels.
	var edges []dataflow.KV[profile.ID, profile.ID]
	nodeSet := map[profile.ID]bool{}
	for _, m := range matches {
		edges = append(edges,
			dataflow.KV[profile.ID, profile.ID]{Key: m.A, Value: m.B},
			dataflow.KV[profile.ID, profile.ID]{Key: m.B, Value: m.A})
		nodeSet[m.A] = true
		nodeSet[m.B] = true
	}
	edgeRDD := dataflow.Parallelize(ctx, edges, numPartitions).Persist()

	labels := make(map[profile.ID]profile.ID, len(nodeSet))
	for id := range nodeSet {
		labels[id] = id
	}

	maxIters := len(nodeSet) + 1 // CC converges in <= diameter iterations
	for iter := 0; iter < maxIters; iter++ {
		blabels := dataflow.NewBroadcast(ctx, labels)
		// Each edge proposes the neighbour's label to its endpoint; nodes
		// adopt the minimum of their own and all proposed labels.
		proposals := dataflow.Map(edgeRDD, func(e dataflow.KV[profile.ID, profile.ID]) dataflow.KV[profile.ID, profile.ID] {
			return dataflow.KV[profile.ID, profile.ID]{Key: e.Key, Value: blabels.Value()[e.Value]}
		})
		minLabel := dataflow.ReduceByKey(proposals, func(a, b profile.ID) profile.ID {
			if a < b {
				return a
			}
			return b
		}, numPartitions)
		next, err := dataflow.CollectAsMap(minLabel)
		if err != nil {
			return nil, fmt.Errorf("clustering: distributed CC: %w", err)
		}
		changed := 0
		for id, proposed := range next {
			if proposed < labels[id] {
				labels[id] = proposed
				changed++
			}
		}
		if changed == 0 {
			break
		}
	}
	return entitiesFromAssignment(labels), nil
}

// CenterClustering processes matches in descending score order: the first
// time a profile is seen it becomes a cluster center; later profiles
// attach to the first center they match, and matches between two
// non-center or two center profiles are skipped [8]. It avoids the
// chaining effect of connected components.
func CenterClustering(matches []matching.Match) []Entity {
	sorted := append([]matching.Match(nil), matches...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Score != sorted[j].Score {
			return sorted[i].Score > sorted[j].Score
		}
		if sorted[i].A != sorted[j].A {
			return sorted[i].A < sorted[j].A
		}
		return sorted[i].B < sorted[j].B
	})

	const (
		unassigned = 0
		center     = 1
		attached   = 2
	)
	state := map[profile.ID]int{}
	centerOf := map[profile.ID]profile.ID{}
	for _, m := range sorted {
		sa, sb := state[m.A], state[m.B]
		switch {
		case sa == unassigned && sb == unassigned:
			state[m.A] = center
			centerOf[m.A] = m.A
			state[m.B] = attached
			centerOf[m.B] = m.A
		case sa == center && sb == unassigned:
			state[m.B] = attached
			centerOf[m.B] = m.A
		case sb == center && sa == unassigned:
			state[m.A] = attached
			centerOf[m.A] = m.B
		}
	}
	return entitiesFromAssignment(centerOf)
}

// MergeCenterClustering is center clustering that additionally merges two
// clusters when a profile matches the centers of both [8].
func MergeCenterClustering(matches []matching.Match) []Entity {
	sorted := append([]matching.Match(nil), matches...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Score != sorted[j].Score {
			return sorted[i].Score > sorted[j].Score
		}
		if sorted[i].A != sorted[j].A {
			return sorted[i].A < sorted[j].A
		}
		return sorted[i].B < sorted[j].B
	})

	isCenter := map[profile.ID]bool{}
	assigned := map[profile.ID]bool{}
	uf := NewUnionFind()
	for _, m := range sorted {
		switch {
		case !assigned[m.A] && !assigned[m.B]:
			isCenter[m.A] = true
			assigned[m.A] = true
			assigned[m.B] = true
			uf.Union(m.A, m.B)
		case isCenter[m.A] && !assigned[m.B]:
			assigned[m.B] = true
			uf.Union(m.A, m.B)
		case isCenter[m.B] && !assigned[m.A]:
			assigned[m.A] = true
			uf.Union(m.A, m.B)
		case isCenter[m.A] && assigned[m.B] && !isCenter[m.B]:
			// m.B already belongs somewhere and also matches center m.A:
			// merge the two clusters.
			uf.Union(m.A, m.B)
		case isCenter[m.B] && assigned[m.A] && !isCenter[m.A]:
			uf.Union(m.A, m.B)
		}
	}
	rep := map[profile.ID]profile.ID{}
	for id := range assigned {
		rep[id] = uf.Find(id)
	}
	return entitiesFromAssignment(rep)
}

// UniqueMappingClustering is the clean-clean specialist [8]: since each
// source is duplicate-free, every profile can co-refer with at most one
// profile of the other source. Matches are processed in descending score
// order and accepted greedily when both endpoints are still unassigned,
// yielding a partial one-to-one mapping.
func UniqueMappingClustering(matches []matching.Match) []Entity {
	sorted := append([]matching.Match(nil), matches...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Score != sorted[j].Score {
			return sorted[i].Score > sorted[j].Score
		}
		if sorted[i].A != sorted[j].A {
			return sorted[i].A < sorted[j].A
		}
		return sorted[i].B < sorted[j].B
	})
	assigned := map[profile.ID]bool{}
	rep := map[profile.ID]profile.ID{}
	for _, m := range sorted {
		if assigned[m.A] || assigned[m.B] {
			continue
		}
		assigned[m.A] = true
		assigned[m.B] = true
		minID := m.A
		if m.B < minID {
			minID = m.B
		}
		rep[m.A] = minID
		rep[m.B] = minID
	}
	return entitiesFromAssignment(rep)
}

// PairsOf enumerates the pairwise co-references implied by the entities,
// used to evaluate clustering quality against a ground truth.
func PairsOf(entities []Entity) []matching.Match {
	var out []matching.Match
	for _, e := range entities {
		for i := 0; i < len(e.Profiles); i++ {
			for j := i + 1; j < len(e.Profiles); j++ {
				out = append(out, matching.Match{A: e.Profiles[i], B: e.Profiles[j], Score: 1})
			}
		}
	}
	return out
}
