package datagen

// The demo mentions that "different datasets can be used during the
// demonstration". This file adds a second benchmark family: a
// bibliographic clean-clean task modelled on DBLP-vs-Scholar-style
// citation matching, with a very different shape from the product data —
// long author lists, venue names, years, heavy token overlap between
// titles of different papers — so the pipeline is exercised outside the
// product-catalog niche it was tuned on.

import (
	"fmt"
	"math/rand"
	"strings"

	"sparker/internal/profile"
)

// BibConfig sizes the bibliographic benchmark.
type BibConfig struct {
	// CorePapers are rendered in both sources (the true matches).
	CorePapers int
	// AOnly and BOnly are unmatched padding papers per source.
	AOnly, BOnly int
	// TypoRate is the per-token corruption probability in source B.
	TypoRate float64
	// Seed drives all randomness.
	Seed int64
}

// BibDefault mirrors a small DBLP-Scholar slice.
func BibDefault() BibConfig {
	return BibConfig{CorePapers: 800, AOnly: 120, BOnly: 150, TypoRate: 0.05, Seed: 77}
}

type paper struct {
	titleWords []string
	authors    []string
	venue      string
	year       int
}

// GenerateBibliographic builds the clean-clean bibliographic benchmark.
// Source A is structured (title/authors/venue/year); source B is
// Scholar-like: a single free-text "citation" attribute plus a year, so
// the attribute partitioning has to discover that B's citation text
// corresponds to all of A's text attributes at once.
func GenerateBibliographic(cfg BibConfig) *Dataset {
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Vocabularies.
	var topicWords []string
	seen := map[string]bool{}
	uniqueWord := func(syllables int) string {
		for {
			w := makeWord(rng, syllables)
			if !seen[w] {
				seen[w] = true
				return w
			}
		}
	}
	for i := 0; i < 220; i++ {
		topicWords = append(topicWords, uniqueWord(3))
	}
	var surnames []string
	for i := 0; i < 300; i++ {
		surnames = append(surnames, uniqueWord(3))
	}
	var venues []string
	for i := 0; i < 25; i++ {
		venues = append(venues, strings.ToUpper(uniqueWord(2)))
	}

	total := cfg.CorePapers + cfg.AOnly + cfg.BOnly
	papers := make([]paper, total)
	for i := range papers {
		p := paper{
			venue: venues[rng.Intn(len(venues))],
			year:  1995 + rng.Intn(25),
		}
		p.titleWords = sample(rng, topicWords, 4+rng.Intn(5))
		na := 1 + rng.Intn(4)
		p.authors = sample(rng, surnames, na)
		papers[i] = p
	}

	renderA := func(p *paper, id string) profile.Profile {
		out := profile.Profile{OriginalID: id}
		out.Add("title", strings.Join(p.titleWords, " "))
		out.Add("authors", strings.Join(p.authors, " , "))
		out.Add("venue", p.venue)
		out.Add("year", fmt.Sprintf("%d", p.year))
		return out
	}
	renderB := func(p *paper, id string) profile.Profile {
		out := profile.Profile{OriginalID: id}
		// Scholar-style citation line with token corruption and drops.
		var tokens []string
		push := func(w string) {
			if rng.Float64() < cfg.TypoRate {
				w = typo(rng, w)
			}
			tokens = append(tokens, w)
		}
		for _, a := range p.authors {
			if rng.Float64() < 0.85 {
				push(a)
			}
		}
		for _, w := range p.titleWords {
			if rng.Float64() < 0.9 {
				push(w)
			}
		}
		if rng.Float64() < 0.6 {
			push(strings.ToLower(p.venue))
		}
		out.Add("citation", strings.Join(tokens, " "))
		if rng.Float64() < 0.7 {
			out.Add("year", fmt.Sprintf("%d", p.year))
		}
		return out
	}

	var a, b []profile.Profile
	var gt [][2]string
	for i := 0; i < cfg.CorePapers+cfg.AOnly; i++ {
		a = append(a, renderA(&papers[i], fmt.Sprintf("dblp-%04d", i)))
	}
	for i := 0; i < cfg.CorePapers; i++ {
		b = append(b, renderB(&papers[i], fmt.Sprintf("schol-%04d", i)))
		gt = append(gt, [2]string{fmt.Sprintf("dblp-%04d", i), fmt.Sprintf("schol-%04d", i)})
	}
	for i := 0; i < cfg.BOnly; i++ {
		idx := cfg.CorePapers + cfg.AOnly + i
		b = append(b, renderB(&papers[idx], fmt.Sprintf("schol-%04d", idx)))
	}
	return &Dataset{Collection: profile.NewCleanClean(a, b), GroundTruth: gt}
}
