// Package datagen generates the synthetic product-matching benchmark
// ("SynthAbtBuy") that stands in for the Abt-Buy dataset of the paper's
// demo, which we cannot redistribute. The generator reproduces the
// statistical relationships the Figure 6 walkthrough depends on:
//
//   - two sources with differently named schemas (name/description/price
//     vs title/short_descr/list_price) whose text attributes share
//     vocabulary, so LSH partitioning at threshold 0.3 yields exactly two
//     clusters (text, price) while threshold 1.0 leaves everything in the
//     blob;
//   - a configurable fraction of "cross-only" matches discoverable only
//     through tokens shared between the *name* of one source and the
//     *description* of the other, so manually splitting names from
//     descriptions loses them (Figure 6(c,d));
//   - a small, skewed price vocabulary (low entropy) against a large,
//     flat text vocabulary (high entropy), so Blast's entropy weighting
//     demotes price-only co-occurrences and shrinks the candidate set
//     without hurting recall (Figure 6(e)).
//
// All output is deterministic in the seed.
package datagen

import (
	"fmt"
	"math/rand"
	"strings"

	"sparker/internal/profile"
)

// Config sizes and shapes the generated benchmark.
type Config struct {
	// CoreEntities are rendered once in each source (the true matches).
	CoreEntities int
	// AOnly and BOnly are unmatched padding profiles per source.
	AOnly, BOnly int
	// BDup entities get a second rendering in source B, producing
	// one-to-many matches like the original Abt-Buy ground truth.
	BDup int
	// CrossOnlyRate is the fraction of core entities whose B rendering
	// shares tokens with A only across name↔description (see package doc).
	CrossOnlyRate float64
	// TypoRate is the per-token probability of a character swap in B.
	TypoRate float64
	// DropRate is the per-token probability of omission in B titles.
	DropRate float64
	// Seed drives all randomness.
	Seed int64
}

// AbtBuy returns the default configuration, sized like the Abt-Buy
// benchmark used in the demo (≈1081 + 1092 profiles, ≈1100 true matches).
func AbtBuy() Config {
	return Config{
		CoreEntities:  1000,
		AOnly:         81,
		BOnly:         0,
		BDup:          92,
		CrossOnlyRate: 0.08,
		TypoRate:      0.06,
		DropRate:      0.12,
		Seed:          1234,
	}
}

// Scaled multiplies every size by f (for the scalability experiments).
func (c Config) Scaled(f int) Config {
	if f < 1 {
		f = 1
	}
	c.CoreEntities *= f
	c.AOnly *= f
	c.BOnly *= f
	c.BDup *= f
	return c
}

// vocabulary holds the deterministic word pools.
type vocabulary struct {
	brands     []string
	categories []category
	pool1      []string // description words shared by both sources
	pricePts   []string // common price points (low-entropy vocabulary)
	rarePts    []string // price points used only by unmatched A products
	specs      []string // numeric measurements shared with price tokens
}

type category struct {
	full    string
	abbrev  string
	related []string
}

// entity is one real-world product.
type entity struct {
	brand      string
	cat        category
	model      string
	price      string
	descWords  []string // from pool1
	otherWords []string // pool1 words disjoint from descWords (cross-only filler)
	crossOnly  bool
}

const (
	consonants = "bcdfgklmnprstvz"
	vowels     = "aeiou"
)

// makeWord builds a pronounceable pseudo-word of n syllables.
func makeWord(rng *rand.Rand, syllables int) string {
	var b strings.Builder
	for i := 0; i < syllables; i++ {
		b.WriteByte(consonants[rng.Intn(len(consonants))])
		b.WriteByte(vowels[rng.Intn(len(vowels))])
	}
	return b.String()
}

func makeVocabulary(rng *rand.Rand) *vocabulary {
	v := &vocabulary{}
	seen := map[string]bool{}
	uniqueWord := func(syllables int) string {
		for {
			w := makeWord(rng, syllables)
			if !seen[w] {
				seen[w] = true
				return w
			}
		}
	}
	for i := 0; i < 40; i++ {
		v.brands = append(v.brands, uniqueWord(3))
	}
	for i := 0; i < 24; i++ {
		c := category{full: uniqueWord(4), abbrev: uniqueWord(2)}
		for j := 0; j < 4; j++ {
			c.related = append(c.related, uniqueWord(3))
		}
		v.categories = append(v.categories, c)
	}
	for i := 0; i < 150; i++ {
		v.pool1 = append(v.pool1, uniqueWord(3))
	}
	// A small set of recurring price points: realistic retail pricing and,
	// crucially, a low-entropy token distribution.
	cents := []string{"99", "95", "50", "00"}
	for i := 0; i < 15; i++ {
		base := 9 + i*67
		for j, c := range cents {
			v.pricePts = append(v.pricePts, fmt.Sprintf("%d.%s", base+j*3, c))
		}
	}
	// Rare points keep the two price vocabularies from being identical, so
	// an LSH threshold of 1.0 cannot cluster them (Figure 6(a)).
	for i := 0; i < 10; i++ {
		v.rarePts = append(v.rarePts, fmt.Sprintf("%d.98", 13+i*71))
	}
	// Spec tokens are measurements quoted in product text ("50 inch",
	// "99 watt"). They collide with price tokens under schema-agnostic
	// blocking but split apart once loose-schema keys qualify them by
	// cluster — the "Simonini_1 vs Simonini_2" effect of Figure 2(b),
	// and the reason candidate pairs drop from Figure 6(a) to 6(b).
	for i := 0; i < 15; i++ {
		v.specs = append(v.specs, fmt.Sprintf("%d", 9+i*67))
	}
	v.specs = append(v.specs, cents...)
	return v
}

func makeModel(rng *rand.Rand, id int) string {
	letters := "qwxzkv"
	return fmt.Sprintf("%c%c%04d", letters[rng.Intn(len(letters))], letters[rng.Intn(len(letters))], id)
}

// typo swaps two adjacent characters.
func typo(rng *rand.Rand, w string) string {
	if len(w) < 3 {
		return w
	}
	i := rng.Intn(len(w) - 1)
	b := []byte(w)
	b[i], b[i+1] = b[i+1], b[i]
	return string(b)
}

func sample(rng *rand.Rand, pool []string, n int) []string {
	if n > len(pool) {
		n = len(pool)
	}
	idx := rng.Perm(len(pool))[:n]
	out := make([]string, n)
	for i, j := range idx {
		out[i] = pool[j]
	}
	return out
}

// Dataset is the generated benchmark.
type Dataset struct {
	Collection *profile.Collection
	// GroundTruth pairs reference original IDs: [A-original, B-original]
	// for clean-clean output, [orig, orig] within the source for dirty.
	GroundTruth [][2]string
}

// Generate builds the clean-clean benchmark.
func Generate(cfg Config) *Dataset {
	rng := rand.New(rand.NewSource(cfg.Seed))
	vocab := makeVocabulary(rng)

	entities := make([]*entity, cfg.CoreEntities+cfg.AOnly+cfg.BOnly)
	for i := range entities {
		e := &entity{
			brand: vocab.brands[rng.Intn(len(vocab.brands))],
			cat:   vocab.categories[rng.Intn(len(vocab.categories))],
			model: makeModel(rng, i),
			price: vocab.pricePts[rng.Intn(len(vocab.pricePts))],
		}
		perm := rng.Perm(len(vocab.pool1))
		nDesc := 8 + rng.Intn(8)
		for _, j := range perm[:nDesc] {
			e.descWords = append(e.descWords, vocab.pool1[j])
		}
		for _, j := range perm[nDesc:] {
			e.otherWords = append(e.otherWords, vocab.pool1[j])
		}
		if i < cfg.CoreEntities {
			e.crossOnly = rng.Float64() < cfg.CrossOnlyRate
		} else if i < cfg.CoreEntities+cfg.AOnly {
			// Unmatched A products use the rare price points so the two
			// sources' price vocabularies differ.
			e.price = vocab.rarePts[rng.Intn(len(vocab.rarePts))]
		}
		entities[i] = e
	}

	var a, b []profile.Profile
	var gt [][2]string

	renderAID := func(i int) string { return fmt.Sprintf("abt-%04d", i) }
	renderBID := func(i, copyN int) string {
		if copyN == 0 {
			return fmt.Sprintf("buy-%04d", i)
		}
		return fmt.Sprintf("buy-%04d-dup%d", i, copyN)
	}

	// Source A renderings: core entities + A-only padding.
	for i := 0; i < cfg.CoreEntities+cfg.AOnly; i++ {
		a = append(a, renderA(rng, vocab, entities[i], renderAID(i)))
	}
	// Source B renderings: core entities + B-only padding + duplicates.
	for i := 0; i < cfg.CoreEntities; i++ {
		b = append(b, renderB(rng, vocab, entities[i], renderBID(i, 0), cfg))
		gt = append(gt, [2]string{renderAID(i), renderBID(i, 0)})
	}
	for i := 0; i < cfg.BOnly; i++ {
		idx := cfg.CoreEntities + cfg.AOnly + i
		b = append(b, renderB(rng, vocab, entities[idx], renderBID(idx, 0), cfg))
	}
	for d := 0; d < cfg.BDup; d++ {
		i := rng.Intn(cfg.CoreEntities)
		// Duplicate renderings are never cross-only; they are easy matches.
		e := *entities[i]
		e.crossOnly = false
		b = append(b, renderB(rng, vocab, &e, renderBID(i, d+1), cfg))
		gt = append(gt, [2]string{renderAID(i), renderBID(i, d+1)})
	}

	return &Dataset{Collection: profile.NewCleanClean(a, b), GroundTruth: gt}
}

// renderA produces the verbose "Abt-style" rendering: full name with
// brand, category and model; long description; price usually present.
func renderA(rng *rand.Rand, vocab *vocabulary, e *entity, id string) profile.Profile {
	p := profile.Profile{OriginalID: id}
	rel := e.cat.related[rng.Intn(len(e.cat.related))]
	p.Add("name", strings.Join([]string{e.brand, e.cat.full, rel, e.model}, " "))

	descParts := []string{e.brand, e.cat.full}
	descParts = append(descParts, sample(rng, vocab.specs, 2)...)
	descParts = append(descParts, e.descWords...)
	if !e.crossOnly {
		descParts = append(descParts, e.model)
	}
	p.Add("description", strings.Join(descParts, " "))

	if !e.crossOnly { // cross-only pairs must not meet through prices
		p.Add("price", e.price)
	}
	return p
}

// renderB produces the terse "Buy-style" rendering with typos, drops and
// abbreviations. Cross-only entities share tokens with their A rendering
// only between B's short_descr (model) and A's name, and are severed when
// names and descriptions are partitioned apart.
func renderB(rng *rand.Rand, vocab *vocabulary, e *entity, id string, cfg Config) profile.Profile {
	p := profile.Profile{OriginalID: id}

	if e.crossOnly {
		// Title: abbreviated category + filler words disjoint from the A
		// rendering's tokens; no brand, no model, nothing from A's name.
		words := append([]string{e.cat.abbrev}, sample(rng, e.otherWords, 3+rng.Intn(2))...)
		p.Add("title", strings.Join(words, " "))
		// Short description: the model (the only link to A) + filler.
		sd := append([]string{e.model}, sample(rng, e.otherWords, 3+rng.Intn(4))...)
		p.Add("short_descr", strings.Join(sd, " "))
		// No price: a shared price point would re-link the pair.
		return p
	}

	var words []string
	push := func(w string) {
		if rng.Float64() < cfg.DropRate {
			return
		}
		if rng.Float64() < cfg.TypoRate {
			w = typo(rng, w)
		}
		words = append(words, w)
	}
	push(e.brand)
	push(e.model)
	cat := e.cat.full
	if rng.Float64() < 0.3 {
		cat = e.cat.abbrev
	}
	push(cat)
	push(e.cat.related[rng.Intn(len(e.cat.related))])
	// Buy-style titles carry descriptive phrases and measurements; the
	// shared phrases bridge B.title with A.description vocabulary during
	// attribute partitioning.
	for _, s := range sample(rng, vocab.specs, 2) {
		push(s)
	}
	for _, w := range sample(rng, e.descWords, 2+rng.Intn(3)) {
		push(w)
	}
	if len(words) == 0 {
		words = []string{e.model}
	}
	p.Add("title", strings.Join(words, " "))

	if rng.Float64() < 0.6 {
		sd := sample(rng, e.descWords, 3+rng.Intn(5))
		sd = append(sd, e.model)
		p.Add("short_descr", strings.Join(sd, " "))
	}

	price := e.price
	if rng.Float64() < 0.1 {
		price = vocab.pricePts[rng.Intn(len(vocab.pricePts))]
	}
	p.Add("list_price", price)
	return p
}

// GenerateDirty builds a single-source dataset with internal duplicates:
// every entity is rendered 1–3 times with Buy-style perturbations. Used by
// the dirty-ER tests and examples.
func GenerateDirty(numEntities int, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	vocab := makeVocabulary(rng)
	cfg := Config{TypoRate: 0.06, DropRate: 0.1}

	var ps []profile.Profile
	var gt [][2]string
	for i := 0; i < numEntities; i++ {
		e := &entity{
			brand: vocab.brands[rng.Intn(len(vocab.brands))],
			cat:   vocab.categories[rng.Intn(len(vocab.categories))],
			model: makeModel(rng, i),
			price: vocab.pricePts[rng.Intn(len(vocab.pricePts))],
		}
		e.descWords = sample(rng, vocab.pool1, 8+rng.Intn(8))
		copies := 1 + rng.Intn(3)
		var ids []string
		for c := 0; c < copies; c++ {
			id := fmt.Sprintf("rec-%04d-%d", i, c)
			ids = append(ids, id)
			if c == 0 {
				p := renderA(rng, vocab, e, id)
				ps = append(ps, p)
			} else {
				p := renderB(rng, vocab, e, id, cfg)
				ps = append(ps, p)
			}
		}
		for x := 0; x < len(ids); x++ {
			for y := x + 1; y < len(ids); y++ {
				gt = append(gt, [2]string{ids[x], ids[y]})
			}
		}
	}
	return &Dataset{Collection: profile.NewDirty(ps), GroundTruth: gt}
}
