package datagen

import (
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"testing"

	"sparker/internal/blocking"
	"sparker/internal/evaluation"
	"sparker/internal/looseschema"
	"sparker/internal/profile"
	"sparker/internal/tokenize"
)

func TestGenerateSizesMirrorAbtBuy(t *testing.T) {
	ds := Generate(AbtBuy())
	c := ds.Collection
	if c.Separator != 1081 {
		t.Fatalf("|A|=%d, want 1081", c.Separator)
	}
	if c.Size()-int(c.Separator) != 1092 {
		t.Fatalf("|B|=%d, want 1092", c.Size()-int(c.Separator))
	}
	if len(ds.GroundTruth) != 1092 {
		t.Fatalf("|GT|=%d, want 1092", len(ds.GroundTruth))
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	d1 := Generate(AbtBuy())
	d2 := Generate(AbtBuy())
	if !reflect.DeepEqual(d1.Collection.Profiles, d2.Collection.Profiles) {
		t.Fatal("same seed produced different collections")
	}
	if !reflect.DeepEqual(d1.GroundTruth, d2.GroundTruth) {
		t.Fatal("same seed produced different ground truths")
	}
	cfg := AbtBuy()
	cfg.Seed = 999
	d3 := Generate(cfg)
	if reflect.DeepEqual(d1.Collection.Profiles, d3.Collection.Profiles) {
		t.Fatal("different seeds produced identical collections")
	}
}

func TestGroundTruthResolvable(t *testing.T) {
	ds := Generate(AbtBuy())
	gt, err := evaluation.FromOriginalIDs(ds.Collection, ds.GroundTruth)
	if err != nil {
		t.Fatal(err)
	}
	if gt.Size() != len(ds.GroundTruth) {
		t.Fatalf("resolved %d of %d pairs", gt.Size(), len(ds.GroundTruth))
	}
}

func TestSchemasDifferAcrossSources(t *testing.T) {
	ds := Generate(AbtBuy())
	c := ds.Collection
	aAttrs := map[string]bool{}
	bAttrs := map[string]bool{}
	for i := range c.Profiles {
		p := &c.Profiles[i]
		for _, name := range p.AttributeNames() {
			if p.SourceID == 0 {
				aAttrs[name] = true
			} else {
				bAttrs[name] = true
			}
		}
	}
	for name := range aAttrs {
		if bAttrs[name] {
			t.Fatalf("attribute %q appears in both sources; schemas must differ", name)
		}
	}
}

// TestFigure6PartitioningShape locks in the demo walkthrough's partition
// behaviour: blob-only at threshold 1.0, text + price clusters at 0.3.
func TestFigure6PartitioningShape(t *testing.T) {
	ds := Generate(AbtBuy())
	c := ds.Collection

	blob := looseschema.Partition(c, looseschema.Options{Threshold: 1.0})
	for _, name := range c.AttributeNames() {
		if blob.ClusterOfName(name) != looseschema.BlobCluster {
			t.Fatalf("threshold 1.0: %s escaped the blob", name)
		}
	}

	p := looseschema.Partition(c, looseschema.Options{Threshold: 0.3})
	text := p.ClusterOf(0, "name")
	if text == looseschema.BlobCluster {
		t.Fatal("name not clustered at 0.3")
	}
	for _, attr := range [][2]any{{0, "description"}, {1, "title"}, {1, "short_descr"}} {
		if p.ClusterOf(attr[0].(int), attr[1].(string)) != text {
			t.Fatalf("%v not in the text cluster", attr)
		}
	}
	price := p.ClusterOf(0, "price")
	if price == looseschema.BlobCluster || price == text {
		t.Fatalf("price cluster=%d text=%d", price, text)
	}
	if p.ClusterOf(1, "list_price") != price {
		t.Fatal("list_price not with price")
	}
	if len(p.Clusters[looseschema.BlobCluster]) != 0 {
		t.Fatalf("blob not empty at 0.3: %v", p.Clusters[looseschema.BlobCluster])
	}
	// The entropy relationship driving Figure 6(e): text >> price.
	if p.EntropyOf(text) <= p.EntropyOf(price) {
		t.Fatalf("text entropy %.2f <= price entropy %.2f", p.EntropyOf(text), p.EntropyOf(price))
	}
}

// TestBlockingRecallPerfect checks schema-agnostic token blocking finds
// every true pair (before any pruning), i.e. every match shares a token.
func TestBlockingRecallPerfect(t *testing.T) {
	ds := Generate(AbtBuy())
	c := ds.Collection
	gt, err := evaluation.FromOriginalIDs(c, ds.GroundTruth)
	if err != nil {
		t.Fatal(err)
	}
	blocks := blocking.TokenBlocking(c, blocking.Options{})
	m := evaluation.EvaluatePairs(blocks.DistinctPairs(), gt, c.MaxComparisons())
	if m.Recall < 0.9999 {
		t.Fatalf("recall=%f; some matches share no token at all", m.Recall)
	}
}

// TestCrossOnlyPairsIsolated checks the E4 mechanism: a cross-only pair
// shares tokens only between A's name/description side and B's
// short_descr (the model number), so splitting names from descriptions
// severs it.
func TestCrossOnlyPairsIsolated(t *testing.T) {
	cfg := AbtBuy()
	cfg.CrossOnlyRate = 1.0 // every core entity cross-only
	cfg.CoreEntities = 30
	cfg.AOnly, cfg.BDup = 0, 0
	ds := Generate(cfg)
	c := ds.Collection

	for i := 0; i < 30; i++ {
		a := c.Get(profile.ID(i))
		b := c.Get(profile.ID(30 + i))
		nameTokens := map[string]bool{}
		for _, tok := range tokenize.Tokens(a.Value("name")) {
			nameTokens[tok] = true
		}
		for _, tok := range tokenize.Tokens(b.Value("title")) {
			if nameTokens[tok] {
				t.Fatalf("entity %d: cross-only title shares %q with A name", i, tok)
			}
		}
		descTokens := map[string]bool{}
		for _, tok := range tokenize.Tokens(a.Value("description")) {
			descTokens[tok] = true
		}
		for _, tok := range tokenize.Tokens(b.Value("short_descr")) {
			if descTokens[tok] {
				t.Fatalf("entity %d: cross-only short_descr shares %q with A description", i, tok)
			}
		}
		// The single designed link: the model in B's short_descr vs A name.
		model := strings.Fields(a.Value("name"))[3]
		if !strings.Contains(b.Value("short_descr"), model) {
			t.Fatalf("entity %d: model link missing", i)
		}
	}
}

func TestScaled(t *testing.T) {
	cfg := AbtBuy().Scaled(2)
	if cfg.CoreEntities != 2000 || cfg.AOnly != 162 {
		t.Fatalf("%+v", cfg)
	}
	if got := AbtBuy().Scaled(0); got.CoreEntities != 1000 {
		t.Fatalf("scale 0 must clamp to 1: %+v", got)
	}
}

func TestGenerateDirty(t *testing.T) {
	ds := GenerateDirty(50, 7)
	if ds.Collection.IsClean() {
		t.Fatal("dirty dataset reports clean")
	}
	if err := ds.Collection.Validate(); err != nil {
		t.Fatal(err)
	}
	gt, err := evaluation.FromOriginalIDs(ds.Collection, ds.GroundTruth)
	if err != nil {
		t.Fatal(err)
	}
	if gt.Size() == 0 {
		t.Fatal("no duplicates generated")
	}
	// Deterministic.
	ds2 := GenerateDirty(50, 7)
	if !reflect.DeepEqual(ds.Collection.Profiles, ds2.Collection.Profiles) {
		t.Fatal("dirty generation not deterministic")
	}
}

func TestTypoSwapsAdjacent(t *testing.T) {
	// typo must preserve length and the multiset of characters.
	rng := rand.New(rand.NewSource(123))
	for i := 0; i < 50; i++ {
		w := "abcdefgh"
		got := typo(rng, w)
		if len(got) != len(w) {
			t.Fatalf("typo changed length: %q", got)
		}
		bytes := []byte(got)
		sort.Slice(bytes, func(i, j int) bool { return bytes[i] < bytes[j] })
		if string(bytes) != w {
			t.Fatalf("typo changed characters: %q", got)
		}
	}
	if got := typo(rng, "ab"); got != "ab" {
		t.Fatalf("short word mutated: %q", got)
	}
}
