package datagen

import (
	"reflect"
	"testing"

	"sparker/internal/blocking"
	"sparker/internal/evaluation"
	"sparker/internal/looseschema"
)

func TestBibliographicSizes(t *testing.T) {
	cfg := BibDefault()
	ds := GenerateBibliographic(cfg)
	c := ds.Collection
	if int(c.Separator) != cfg.CorePapers+cfg.AOnly {
		t.Fatalf("|A|=%d", c.Separator)
	}
	if c.Size()-int(c.Separator) != cfg.CorePapers+cfg.BOnly {
		t.Fatalf("|B|=%d", c.Size()-int(c.Separator))
	}
	if len(ds.GroundTruth) != cfg.CorePapers {
		t.Fatalf("|GT|=%d", len(ds.GroundTruth))
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBibliographicDeterministic(t *testing.T) {
	a := GenerateBibliographic(BibDefault())
	b := GenerateBibliographic(BibDefault())
	if !reflect.DeepEqual(a.Collection.Profiles, b.Collection.Profiles) {
		t.Fatal("not deterministic")
	}
}

func TestBibliographicGroundTruthResolvable(t *testing.T) {
	ds := GenerateBibliographic(BibDefault())
	gt, err := evaluation.FromOriginalIDs(ds.Collection, ds.GroundTruth)
	if err != nil {
		t.Fatal(err)
	}
	if gt.Size() != len(ds.GroundTruth) {
		t.Fatalf("resolved %d of %d", gt.Size(), len(ds.GroundTruth))
	}
}

func TestBibliographicBlockingRecall(t *testing.T) {
	ds := GenerateBibliographic(BibDefault())
	gt, err := evaluation.FromOriginalIDs(ds.Collection, ds.GroundTruth)
	if err != nil {
		t.Fatal(err)
	}
	blocks := blocking.TokenBlocking(ds.Collection, blocking.Options{})
	m := evaluation.EvaluatePairs(blocks.DistinctPairs(), gt, ds.Collection.MaxComparisons())
	if m.Recall < 0.99 {
		t.Fatalf("recall %f: citations must share tokens with their papers", m.Recall)
	}
}

// TestBibliographicPartitioning checks the structurally interesting
// property of this family: B's single free-text citation attribute must
// cluster with A's text attributes (title/authors), not with the years.
func TestBibliographicPartitioning(t *testing.T) {
	ds := GenerateBibliographic(BibDefault())
	p := looseschema.Partition(ds.Collection, looseschema.Options{Threshold: 0.2})
	citation := p.ClusterOf(1, "citation")
	if citation == looseschema.BlobCluster {
		t.Fatalf("citation not clustered: %s", p)
	}
	sameAsTitle := p.ClusterOf(0, "title") == citation
	sameAsAuthors := p.ClusterOf(0, "authors") == citation
	if !sameAsTitle && !sameAsAuthors {
		t.Fatalf("citation clustered away from all A text attributes: %s", p)
	}
	if p.ClusterOf(0, "year") == citation {
		t.Fatalf("years merged into the citation cluster: %s", p)
	}
}
