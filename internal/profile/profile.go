// Package profile defines the entity-profile data model used across the
// whole SparkER stack: a profile is a bag of attribute/value pairs with an
// internal dense ID, and a collection groups the profiles of one ER task
// (either a single "dirty" dataset with internal duplicates or a
// "clean-clean" pair of duplicate-free sources).
package profile

import (
	"fmt"
	"sort"
	"strings"
)

// KeyValue is one attribute of a profile.
type KeyValue struct {
	Key   string
	Value string
}

// ID is the dense internal identifier of a profile. In clean-clean tasks
// profiles of the first source occupy [0, separator) and profiles of the
// second source occupy [separator, n), mirroring SparkER's ID layout.
type ID = int32

// Profile is one record to resolve.
type Profile struct {
	ID         ID
	OriginalID string     // identifier in the source dataset
	SourceID   int        // 0 for the first (or only) source, 1 for the second
	Attributes []KeyValue // possibly repeated keys, source order preserved
}

// Value returns the first value of the named attribute, or "".
func (p *Profile) Value(key string) string {
	for _, kv := range p.Attributes {
		if kv.Key == key {
			return kv.Value
		}
	}
	return ""
}

// Add appends an attribute, dropping empty values.
func (p *Profile) Add(key, value string) {
	value = strings.TrimSpace(value)
	if value == "" {
		return
	}
	p.Attributes = append(p.Attributes, KeyValue{Key: key, Value: value})
}

// AttributeNames returns the distinct attribute keys in first-seen order.
func (p *Profile) AttributeNames() []string {
	seen := make(map[string]bool, len(p.Attributes))
	var out []string
	for _, kv := range p.Attributes {
		if !seen[kv.Key] {
			seen[kv.Key] = true
			out = append(out, kv.Key)
		}
	}
	return out
}

// String renders the profile for debug output.
func (p *Profile) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "#%d(%s src%d){", p.ID, p.OriginalID, p.SourceID)
	for i, kv := range p.Attributes {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s=%q", kv.Key, kv.Value)
	}
	b.WriteString("}")
	return b.String()
}

// DirtySeparator marks a collection as a single dataset with internal
// duplicates (dirty ER).
const DirtySeparator ID = -1

// Collection is the input of one ER task.
type Collection struct {
	Profiles []Profile
	// Separator is the number of profiles belonging to the first source in
	// a clean-clean task, or DirtySeparator for dirty ER.
	Separator ID
}

// IsClean reports whether this is a clean-clean (two duplicate-free
// sources) task.
func (c *Collection) IsClean() bool { return c.Separator >= 0 }

// Size returns the number of profiles.
func (c *Collection) Size() int { return len(c.Profiles) }

// SourceOf returns the source index (0 or 1) of a profile ID.
func (c *Collection) SourceOf(id ID) int {
	if c.IsClean() && id >= c.Separator {
		return 1
	}
	return 0
}

// SameSource reports whether two profile IDs belong to the same source; in
// clean-clean ER such pairs are never candidate matches.
func (c *Collection) SameSource(a, b ID) bool {
	if !c.IsClean() {
		return false
	}
	return (a >= c.Separator) == (b >= c.Separator)
}

// Get returns the profile with the given internal ID.
func (c *Collection) Get(id ID) *Profile { return &c.Profiles[id] }

// MaxComparisons is the number of comparisons exhaustive ER would perform:
// |A|*|B| for clean-clean, n*(n-1)/2 for dirty.
func (c *Collection) MaxComparisons() int64 {
	n := int64(len(c.Profiles))
	if c.IsClean() {
		a := int64(c.Separator)
		return a * (n - a)
	}
	return n * (n - 1) / 2
}

// AttributeNames returns every distinct qualified attribute name in the
// collection, sorted. Names are qualified as "source:key" for clean-clean
// tasks so that same-named attributes of different sources stay distinct
// for loose-schema partitioning.
func (c *Collection) AttributeNames() []string {
	seen := map[string]bool{}
	for i := range c.Profiles {
		p := &c.Profiles[i]
		for _, kv := range p.Attributes {
			seen[QualifiedAttribute(p.SourceID, kv.Key)] = true
		}
	}
	out := make([]string, 0, len(seen))
	for name := range seen {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// QualifiedAttribute builds the source-qualified attribute name used by
// loose-schema processing.
func QualifiedAttribute(sourceID int, key string) string {
	return fmt.Sprintf("%d:%s", sourceID, key)
}

// NewCleanClean merges two duplicate-free sources into one collection,
// assigning dense IDs with source A first.
func NewCleanClean(a, b []Profile) *Collection {
	out := &Collection{
		Profiles:  make([]Profile, 0, len(a)+len(b)),
		Separator: ID(len(a)),
	}
	for i, p := range a {
		p.ID = ID(i)
		p.SourceID = 0
		out.Profiles = append(out.Profiles, p)
	}
	for i, p := range b {
		p.ID = ID(len(a) + i)
		p.SourceID = 1
		out.Profiles = append(out.Profiles, p)
	}
	return out
}

// NewDirty wraps a single dataset with internal duplicates.
func NewDirty(ps []Profile) *Collection {
	out := &Collection{Profiles: make([]Profile, 0, len(ps)), Separator: DirtySeparator}
	for i, p := range ps {
		p.ID = ID(i)
		p.SourceID = 0
		out.Profiles = append(out.Profiles, p)
	}
	return out
}

// Validate checks internal consistency (dense IDs, separator bounds).
func (c *Collection) Validate() error {
	if c.IsClean() && int(c.Separator) > len(c.Profiles) {
		return fmt.Errorf("profile: separator %d beyond collection size %d", c.Separator, len(c.Profiles))
	}
	for i := range c.Profiles {
		if c.Profiles[i].ID != ID(i) {
			return fmt.Errorf("profile: non-dense ID %d at index %d", c.Profiles[i].ID, i)
		}
		src := c.SourceOf(ID(i))
		if c.Profiles[i].SourceID != src {
			return fmt.Errorf("profile: profile %d has source %d, separator implies %d", i, c.Profiles[i].SourceID, src)
		}
	}
	return nil
}
