package profile

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestAddSkipsEmptyValues(t *testing.T) {
	var p Profile
	p.Add("a", "  ")
	p.Add("a", "")
	p.Add("a", " x ")
	if len(p.Attributes) != 1 || p.Attributes[0].Value != "x" {
		t.Fatalf("attributes: %v", p.Attributes)
	}
}

func TestValueReturnsFirst(t *testing.T) {
	var p Profile
	p.Add("k", "v1")
	p.Add("k", "v2")
	if got := p.Value("k"); got != "v1" {
		t.Fatalf("got %q", got)
	}
	if got := p.Value("missing"); got != "" {
		t.Fatalf("got %q", got)
	}
}

func TestAttributeNamesDistinctOrdered(t *testing.T) {
	var p Profile
	p.Add("b", "1")
	p.Add("a", "2")
	p.Add("b", "3")
	if got := p.AttributeNames(); !reflect.DeepEqual(got, []string{"b", "a"}) {
		t.Fatalf("got %v", got)
	}
}

func TestNewCleanCleanAssignsDenseIDs(t *testing.T) {
	a := []Profile{{OriginalID: "a1"}, {OriginalID: "a2"}}
	b := []Profile{{OriginalID: "b1"}}
	c := NewCleanClean(a, b)
	if c.Separator != 2 || !c.IsClean() {
		t.Fatalf("separator=%d clean=%v", c.Separator, c.IsClean())
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.SourceOf(0) != 0 || c.SourceOf(2) != 1 {
		t.Fatal("SourceOf wrong")
	}
	if c.SameSource(0, 1) != true || c.SameSource(0, 2) != false {
		t.Fatal("SameSource wrong")
	}
}

func TestNewDirty(t *testing.T) {
	c := NewDirty([]Profile{{OriginalID: "x"}, {OriginalID: "y"}})
	if c.IsClean() {
		t.Fatal("dirty collection reports clean")
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.SameSource(0, 1) {
		t.Fatal("dirty pairs are never same-source for ER purposes")
	}
}

func TestMaxComparisons(t *testing.T) {
	clean := NewCleanClean(make([]Profile, 3), make([]Profile, 4))
	if got := clean.MaxComparisons(); got != 12 {
		t.Fatalf("clean: %d", got)
	}
	dirty := NewDirty(make([]Profile, 5))
	if got := dirty.MaxComparisons(); got != 10 {
		t.Fatalf("dirty: %d", got)
	}
}

func TestAttributeNamesQualified(t *testing.T) {
	a := []Profile{{Attributes: []KeyValue{{Key: "name", Value: "x"}}}}
	b := []Profile{{Attributes: []KeyValue{{Key: "name", Value: "y"}, {Key: "price", Value: "1"}}}}
	c := NewCleanClean(a, b)
	got := c.AttributeNames()
	want := []string{"0:name", "1:name", "1:price"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
}

func TestValidateCatchesBadIDs(t *testing.T) {
	c := NewDirty([]Profile{{}, {}})
	c.Profiles[1].ID = 7
	if err := c.Validate(); err == nil {
		t.Fatal("want error for non-dense IDs")
	}
}

func TestStringIncludesAttributes(t *testing.T) {
	var p Profile
	p.OriginalID = "x9"
	p.Add("name", "widget")
	s := p.String()
	if !strings.Contains(s, "x9") || !strings.Contains(s, `name="widget"`) {
		t.Fatalf("String() = %q", s)
	}
}

func TestQuickCleanCleanSourcesConsistent(t *testing.T) {
	f := func(na, nb uint8) bool {
		a := make([]Profile, int(na)%50)
		b := make([]Profile, int(nb)%50)
		c := NewCleanClean(a, b)
		if c.Validate() != nil {
			return false
		}
		for i := range c.Profiles {
			if c.Profiles[i].SourceID != c.SourceOf(ID(i)) {
				return false
			}
		}
		return c.Size() == len(a)+len(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
