package looseschema

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"sparker/internal/dataflow"
	"sparker/internal/profile"
	"sparker/internal/tokenize"
)

func mkProfile(id string, kvs ...[2]string) profile.Profile {
	p := profile.Profile{OriginalID: id}
	for _, kv := range kvs {
		p.Add(kv[0], kv[1])
	}
	return p
}

// twoSchemaCollection has text attributes sharing most (not all) of their
// vocabulary across sources, and numeric attributes sharing a different,
// also partially overlapping vocabulary. No two attributes have identical
// vocabularies, so a threshold of exactly 1 clusters nothing.
func twoSchemaCollection() *profile.Collection {
	words := []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta", "theta", "iota"}
	var a, b []profile.Profile
	for i := 0; i < 12; i++ {
		w1, w2 := words[i%8], words[(i+1)%8]     // A text: words[0..7]
		w3, w4 := words[i%8+1], words[(i+2)%8+1] // B text: words[1..8]
		priceA := []string{"9.99", "19.99", "29.99", "39.99"}[i%4]
		priceB := []string{"9.99", "19.99", "29.99"}[i%3]
		a = append(a, mkProfile("a",
			[2]string{"name", w1 + " " + w2},
			[2]string{"cost", priceA}))
		b = append(b, mkProfile("b",
			[2]string{"title", w3 + " " + w4},
			[2]string{"amount", priceB}))
	}
	return profile.NewCleanClean(a, b)
}

func TestExtractAttributeProfiles(t *testing.T) {
	c := twoSchemaCollection()
	aps := ExtractAttributeProfiles(c, tokenize.Options{})
	names := make([]string, len(aps))
	for i, ap := range aps {
		names[i] = ap.Name
	}
	want := []string{"0:cost", "0:name", "1:amount", "1:title"}
	if !reflect.DeepEqual(names, want) {
		t.Fatalf("got %v want %v", names, want)
	}
	for _, ap := range aps {
		if ap.Total == 0 || len(ap.Tokens) == 0 {
			t.Fatalf("empty attribute profile %q", ap.Name)
		}
	}
}

func TestPartitionGroupsSimilarAttributes(t *testing.T) {
	c := twoSchemaCollection()
	p := Partition(c, Options{Threshold: 0.3})
	textCluster := p.ClusterOf(0, "name")
	if textCluster == BlobCluster {
		t.Fatal("name not clustered")
	}
	if p.ClusterOf(1, "title") != textCluster {
		t.Fatalf("title in cluster %d, name in %d", p.ClusterOf(1, "title"), textCluster)
	}
	numCluster := p.ClusterOf(0, "cost")
	if numCluster == BlobCluster || numCluster == textCluster {
		t.Fatalf("cost cluster %d (text=%d)", numCluster, textCluster)
	}
	if p.ClusterOf(1, "amount") != numCluster {
		t.Fatal("amount not with cost")
	}
}

func TestPartitionThresholdOneYieldsBlob(t *testing.T) {
	c := twoSchemaCollection()
	p := Partition(c, Options{Threshold: 1.0})
	for _, name := range []string{"name", "cost"} {
		if p.ClusterOf(0, name) != BlobCluster {
			t.Fatalf("%s escaped the blob at threshold 1", name)
		}
	}
	for _, name := range []string{"title", "amount"} {
		if p.ClusterOf(1, name) != BlobCluster {
			t.Fatalf("%s escaped the blob at threshold 1", name)
		}
	}
}

func TestPartitionDeterministic(t *testing.T) {
	c := twoSchemaCollection()
	p1 := Partition(c, Options{Threshold: 0.3})
	p2 := Partition(c, Options{Threshold: 0.3})
	if !reflect.DeepEqual(p1.Clusters, p2.Clusters) {
		t.Fatal("partitioning not deterministic")
	}
}

func TestEntropyOrdering(t *testing.T) {
	// Attribute with a flat token distribution has higher entropy than one
	// with a skewed distribution.
	flat := &AttributeProfile{Counts: map[string]int{"a": 1, "b": 1, "c": 1, "d": 1}, Total: 4}
	skew := &AttributeProfile{Counts: map[string]int{"a": 97, "b": 1, "c": 1, "d": 1}, Total: 100}
	if flat.Entropy() <= skew.Entropy() {
		t.Fatalf("flat=%.3f skew=%.3f", flat.Entropy(), skew.Entropy())
	}
	if math.Abs(flat.Entropy()-2.0) > 1e-9 {
		t.Fatalf("uniform over 4 tokens must have entropy 2, got %f", flat.Entropy())
	}
}

func TestEntropyEmpty(t *testing.T) {
	ap := &AttributeProfile{Counts: map[string]int{}}
	if ap.Entropy() != 0 {
		t.Fatal("empty profile entropy must be 0")
	}
}

func TestComputeEntropiesPerCluster(t *testing.T) {
	c := twoSchemaCollection()
	p := Partition(c, Options{Threshold: 0.3})
	text := p.ClusterOf(0, "name")
	num := p.ClusterOf(0, "cost")
	if p.EntropyOf(text) <= p.EntropyOf(num) {
		t.Fatalf("text entropy %.3f must exceed price entropy %.3f",
			p.EntropyOf(text), p.EntropyOf(num))
	}
}

func TestMoveAttribute(t *testing.T) {
	c := twoSchemaCollection()
	p := Partition(c, Options{Threshold: 0.3})
	from := p.ClusterOf(0, "name")
	to := p.NewCluster()
	if err := p.MoveAttribute("0:name", to); err != nil {
		t.Fatal(err)
	}
	if p.ClusterOf(0, "name") != to {
		t.Fatal("attribute not moved")
	}
	for _, a := range p.Clusters[from] {
		if a == "0:name" {
			t.Fatal("attribute still listed in old cluster")
		}
	}
	if err := p.MoveAttribute("0:bogus", to); err == nil {
		t.Fatal("want error for unknown attribute")
	}
	if err := p.MoveAttribute("0:name", -1); err == nil {
		t.Fatal("want error for negative cluster")
	}
}

func TestCloneIsIndependent(t *testing.T) {
	c := twoSchemaCollection()
	p := Partition(c, Options{Threshold: 0.3})
	clone := p.Clone()
	nc := clone.NewCluster()
	if err := clone.MoveAttribute("0:name", nc); err != nil {
		t.Fatal(err)
	}
	if p.ClusterOf(0, "name") == nc {
		t.Fatal("editing the clone mutated the original")
	}
}

func TestSetEntropyGrows(t *testing.T) {
	p := &Partitioning{Clusters: [][]string{nil}, Entropy: []float64{0}}
	p.SetEntropy(3, 1.5)
	if p.EntropyOf(3) != 1.5 || p.EntropyOf(99) != 0 || p.EntropyOf(-1) != 0 {
		t.Fatal("SetEntropy/EntropyOf bounds wrong")
	}
}

func TestClusterOfUnknownAttributeIsBlob(t *testing.T) {
	c := twoSchemaCollection()
	p := Partition(c, Options{Threshold: 0.3})
	if p.ClusterOf(0, "nonexistent") != BlobCluster {
		t.Fatal("unknown attribute must fall into the blob")
	}
}

func TestCrossSourceOnlyRestriction(t *testing.T) {
	// With CrossSourceOnly, two same-source attributes sharing all tokens
	// must not cluster together directly.
	a := []profile.Profile{
		mkProfile("a1", [2]string{"x", "tok1 tok2 tok3"}, [2]string{"y", "tok1 tok2 tok3"}),
	}
	b := []profile.Profile{
		mkProfile("b1", [2]string{"z", "other stuff here"}),
	}
	c := profile.NewCleanClean(a, b)
	p := PartitionAttributes(ExtractAttributeProfiles(c, tokenize.Options{}), true, Options{
		Threshold:       0.5,
		CrossSourceOnly: true,
	})
	if p.ClusterOf(0, "x") != BlobCluster || p.ClusterOf(0, "y") != BlobCluster {
		t.Fatalf("same-source attributes clustered despite CrossSourceOnly: %s", p)
	}
}

func TestDistributedExtractionMatchesSequential(t *testing.T) {
	c := twoSchemaCollection()
	seq := ExtractAttributeProfiles(c, tokenize.Options{})

	ctx := dataflow.NewContext(dataflow.WithParallelism(3))
	defer ctx.Close()
	dist, err := ExtractAttributeProfilesDistributed(ctx, c, tokenize.Options{}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(dist) != len(seq) {
		t.Fatalf("attribute count %d vs %d", len(dist), len(seq))
	}
	for i := range seq {
		if dist[i].Name != seq[i].Name || dist[i].Total != seq[i].Total {
			t.Fatalf("attribute %d: %s/%d vs %s/%d",
				i, dist[i].Name, dist[i].Total, seq[i].Name, seq[i].Total)
		}
		if !reflect.DeepEqual(dist[i].Counts, seq[i].Counts) {
			t.Fatalf("attribute %s: token counts differ", seq[i].Name)
		}
	}
	// The partitioning built on either extraction is identical (token
	// order does not matter to MinHash or entropy).
	p1 := PartitionAttributes(seq, true, Options{Threshold: 0.3})
	p2 := PartitionAttributes(dist, true, Options{Threshold: 0.3})
	if !reflect.DeepEqual(p1.Clusters, p2.Clusters) {
		t.Fatalf("partitionings differ:\n%s\nvs\n%s", p1, p2)
	}
}

func TestStringOutput(t *testing.T) {
	c := twoSchemaCollection()
	p := Partition(c, Options{Threshold: 0.3})
	s := p.String()
	if s == "" || !strings.Contains(s, "blob") {
		t.Fatalf("String() = %q", s)
	}
}
