// Package looseschema implements the Loose Schema Generator of SparkER's
// blocker (Figure 4), taken from Blast [13]: attributes are partitioned
// into clusters of similar attributes via LSH over their value
// vocabularies, and each cluster gets a Shannon entropy describing how
// informative a key collision inside it is. Blocking keys are then
// qualified by cluster ("simonini_1" vs "simonini_2" in Figure 2), and
// meta-blocking scales edge weights by cluster entropy.
package looseschema

import (
	"fmt"
	"math"
	"sort"

	"sparker/internal/lsh"
	"sparker/internal/profile"
	"sparker/internal/tokenize"
)

// BlobCluster is the cluster that gathers every attribute that was not
// clustered with anything; with Threshold = 1 all attributes land here and
// loose-schema blocking degenerates to schema-agnostic blocking, which is
// exactly what Figure 6(a) shows.
const BlobCluster = 0

// AttributeProfile is the value vocabulary of one source-qualified
// attribute.
type AttributeProfile struct {
	Name      string // profile.QualifiedAttribute(source, attribute)
	SourceID  int
	Attribute string
	Tokens    []string       // distinct tokens, first-seen order
	Counts    map[string]int // token -> occurrences across all values
	Total     int            // sum of Counts
}

// ExtractAttributeProfiles builds one AttributeProfile per qualified
// attribute of the collection.
func ExtractAttributeProfiles(c *profile.Collection, tok tokenize.Options) []*AttributeProfile {
	byName := map[string]*AttributeProfile{}
	var order []string
	for i := range c.Profiles {
		p := &c.Profiles[i]
		for _, kv := range p.Attributes {
			name := profile.QualifiedAttribute(p.SourceID, kv.Key)
			ap := byName[name]
			if ap == nil {
				ap = &AttributeProfile{
					Name:      name,
					SourceID:  p.SourceID,
					Attribute: kv.Key,
					Counts:    map[string]int{},
				}
				byName[name] = ap
				order = append(order, name)
			}
			for _, t := range tok.Tokens(kv.Value) {
				if ap.Counts[t] == 0 {
					ap.Tokens = append(ap.Tokens, t)
				}
				ap.Counts[t]++
				ap.Total++
			}
		}
	}
	sort.Strings(order)
	out := make([]*AttributeProfile, 0, len(order))
	for _, name := range order {
		out = append(out, byName[name])
	}
	return out
}

// Entropy returns the Shannon entropy (bits) of the attribute's token
// distribution.
func (ap *AttributeProfile) Entropy() float64 {
	return entropyOfCounts(ap.Counts, ap.Total)
}

func entropyOfCounts(counts map[string]int, total int) float64 {
	if total == 0 {
		return 0
	}
	// Group identical counts so the float accumulation order is fixed:
	// map iteration order varies between runs, and entropy values feed
	// meta-blocking thresholds where a last-ulp difference can flip a
	// borderline edge.
	freqOfCount := map[int]int{}
	for _, n := range counts {
		freqOfCount[n]++
	}
	distinct := make([]int, 0, len(freqOfCount))
	for n := range freqOfCount {
		distinct = append(distinct, n)
	}
	sort.Ints(distinct)
	h := 0.0
	ft := float64(total)
	for _, n := range distinct {
		p := float64(n) / ft
		h -= float64(freqOfCount[n]) * p * math.Log2(p)
	}
	return h
}

// Options configures attribute partitioning.
type Options struct {
	// Threshold is the minimum estimated Jaccard similarity for two
	// attributes to be cluster candidates; this is the knob the Figure 6
	// demo sweeps (1.0 → all blob; 0.3 → name/description vs price).
	Threshold float64
	// SignatureLen is the MinHash signature length (default 128).
	SignatureLen int
	// Seed makes LSH deterministic (default 42).
	Seed int64
	// Tokenizer used on attribute values.
	Tokenizer tokenize.Options
	// CrossSourceOnly restricts candidate pairs to attributes of different
	// sources, the Blast setting for clean-clean tasks. It is ignored for
	// dirty tasks (single source).
	CrossSourceOnly bool
	// UseEstimate scores LSH candidate pairs with the MinHash estimate
	// instead of the exact Jaccard of the vocabularies. The default
	// (exact) keeps the partitioning deterministic and makes Threshold = 1
	// behave as the paper describes: nothing clusters, everything falls
	// into the blob.
	UseEstimate bool
}

func (o *Options) withDefaults() Options {
	out := *o
	if out.SignatureLen <= 0 {
		out.SignatureLen = 128
	}
	if out.Seed == 0 {
		out.Seed = 42
	}
	if out.Threshold <= 0 {
		out.Threshold = 0.3
	}
	return out
}

// Partitioning assigns every qualified attribute to a cluster and carries
// per-cluster entropies. Cluster 0 is the blob.
type Partitioning struct {
	// Clusters[k] lists the qualified attribute names of cluster k.
	Clusters [][]string
	// Entropy[k] is the Shannon entropy of cluster k's token distribution.
	Entropy []float64
	byAttr  map[string]int
}

// ClusterOf implements blocking.AttributeClustering. Unknown attributes
// fall into the blob.
func (p *Partitioning) ClusterOf(sourceID int, attribute string) int {
	if k, ok := p.byAttr[profile.QualifiedAttribute(sourceID, attribute)]; ok {
		return k
	}
	return BlobCluster
}

// ClusterOfName returns the cluster of a qualified attribute name.
func (p *Partitioning) ClusterOfName(name string) int {
	if k, ok := p.byAttr[name]; ok {
		return k
	}
	return BlobCluster
}

// NumClusters returns the number of clusters including the blob.
func (p *Partitioning) NumClusters() int { return len(p.Clusters) }

// EntropyOf returns the entropy of a cluster, 0 for out-of-range IDs.
func (p *Partitioning) EntropyOf(cluster int) float64 {
	if cluster < 0 || cluster >= len(p.Entropy) {
		return 0
	}
	return p.Entropy[cluster]
}

// SetEntropy overrides a cluster entropy (used by tests reproducing the
// paper's toy figures, and by supervised sessions).
func (p *Partitioning) SetEntropy(cluster int, h float64) {
	for cluster >= len(p.Entropy) {
		p.Entropy = append(p.Entropy, 0)
	}
	p.Entropy[cluster] = h
}

// rebuildIndex refreshes the attribute→cluster map after edits.
func (p *Partitioning) rebuildIndex() {
	p.byAttr = map[string]int{}
	for k, attrs := range p.Clusters {
		for _, a := range attrs {
			p.byAttr[a] = k
		}
	}
}

// MoveAttribute reassigns a qualified attribute to another cluster,
// creating the cluster if needed. This is the "supervised mode" edit the
// Figure 6(c) walkthrough performs.
func (p *Partitioning) MoveAttribute(name string, toCluster int) error {
	from, ok := p.byAttr[name]
	if !ok {
		return fmt.Errorf("looseschema: unknown attribute %q", name)
	}
	if toCluster < 0 {
		return fmt.Errorf("looseschema: invalid cluster %d", toCluster)
	}
	for toCluster >= len(p.Clusters) {
		p.Clusters = append(p.Clusters, nil)
		p.Entropy = append(p.Entropy, 0)
	}
	// Remove from old cluster.
	old := p.Clusters[from]
	for i, a := range old {
		if a == name {
			p.Clusters[from] = append(old[:i:i], old[i+1:]...)
			break
		}
	}
	p.Clusters[toCluster] = append(p.Clusters[toCluster], name)
	p.byAttr[name] = toCluster
	return nil
}

// NewCluster adds an empty cluster and returns its ID.
func (p *Partitioning) NewCluster() int {
	p.Clusters = append(p.Clusters, nil)
	p.Entropy = append(p.Entropy, 0)
	return len(p.Clusters) - 1
}

// Clone deep-copies the partitioning so a debugging session can edit a
// candidate configuration without losing the automatic one.
func (p *Partitioning) Clone() *Partitioning {
	out := &Partitioning{
		Clusters: make([][]string, len(p.Clusters)),
		Entropy:  append([]float64(nil), p.Entropy...),
	}
	for i, attrs := range p.Clusters {
		out.Clusters[i] = append([]string(nil), attrs...)
	}
	out.rebuildIndex()
	return out
}

// String renders clusters for the debug CLI.
func (p *Partitioning) String() string {
	s := ""
	for k, attrs := range p.Clusters {
		label := fmt.Sprintf("C%d", k)
		if k == BlobCluster {
			label = "blob"
		}
		s += fmt.Sprintf("%s (H=%.3f): %v\n", label, p.EntropyOf(k), attrs)
	}
	return s
}

// Partition clusters the attributes of a collection:
//
//  1. LSH over attribute vocabularies proposes candidate attribute pairs.
//  2. Pairs below Threshold (estimated Jaccard) are discarded.
//  3. Each attribute keeps only its most similar partner.
//  4. Transitive closure merges the kept pairs into clusters.
//  5. Unclustered attributes fall into the blob (cluster 0).
//
// Entropies are computed for every cluster afterwards.
func Partition(c *profile.Collection, opts Options) *Partitioning {
	aps := ExtractAttributeProfiles(c, opts.Tokenizer)
	return PartitionAttributes(aps, c.IsClean(), opts)
}

// PartitionAttributes is Partition over pre-extracted attribute profiles.
func PartitionAttributes(aps []*AttributeProfile, cleanClean bool, opts Options) *Partitioning {
	o := opts.withDefaults()

	hasher := lsh.NewMinHasher(o.SignatureLen, o.Seed)
	sigs := make([][]uint64, len(aps))
	for i, ap := range aps {
		sigs[i] = hasher.Signature(ap.Tokens)
	}
	bands, rows := lsh.BandingParams(o.SignatureLen, o.Threshold)

	type scoredPair struct {
		i, j int
		sim  float64
	}
	var pairs []scoredPair
	for _, cand := range lsh.Candidates(sigs, bands, rows) {
		if o.CrossSourceOnly && cleanClean && aps[cand.I].SourceID == aps[cand.J].SourceID {
			continue
		}
		var sim float64
		if o.UseEstimate {
			sim = lsh.EstimateJaccard(sigs[cand.I], sigs[cand.J])
		} else {
			sim = lsh.ExactJaccard(aps[cand.I].Tokens, aps[cand.J].Tokens)
		}
		if sim >= o.Threshold {
			pairs = append(pairs, scoredPair{i: cand.I, j: cand.J, sim: sim})
		}
	}

	// Keep each attribute's most similar partner only.
	best := make([]int, len(aps))
	bestSim := make([]float64, len(aps))
	for i := range best {
		best[i] = -1
	}
	for _, sp := range pairs {
		if sp.sim > bestSim[sp.i] || (sp.sim == bestSim[sp.i] && (best[sp.i] == -1 || sp.j < best[sp.i])) {
			bestSim[sp.i], best[sp.i] = sp.sim, sp.j
		}
		if sp.sim > bestSim[sp.j] || (sp.sim == bestSim[sp.j] && (best[sp.j] == -1 || sp.i < best[sp.j])) {
			bestSim[sp.j], best[sp.j] = sp.sim, sp.i
		}
	}

	// Transitive closure over kept pairs (union-find).
	parent := make([]int, len(aps))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[rb] = ra
		}
	}
	clustered := make([]bool, len(aps))
	for i, j := range best {
		if j >= 0 {
			union(i, j)
			clustered[i] = true
			clustered[j] = true
		}
	}

	// Number clusters: blob first, then roots in ascending attribute order.
	p := &Partitioning{Clusters: [][]string{nil}, Entropy: []float64{0}}
	rootCluster := map[int]int{}
	for i, ap := range aps {
		if !clustered[i] {
			p.Clusters[BlobCluster] = append(p.Clusters[BlobCluster], ap.Name)
			continue
		}
		root := find(i)
		k, ok := rootCluster[root]
		if !ok {
			p.Clusters = append(p.Clusters, nil)
			p.Entropy = append(p.Entropy, 0)
			k = len(p.Clusters) - 1
			rootCluster[root] = k
		}
		p.Clusters[k] = append(p.Clusters[k], ap.Name)
	}
	p.rebuildIndex()
	ComputeEntropies(p, aps)
	return p
}

// ComputeEntropies fills the per-cluster Shannon entropies from the token
// distributions of the attributes in each cluster (the Entropy Extractor
// module of Figure 4). Call it again after manual cluster edits.
func ComputeEntropies(p *Partitioning, aps []*AttributeProfile) {
	byName := map[string]*AttributeProfile{}
	for _, ap := range aps {
		byName[ap.Name] = ap
	}
	for k, attrs := range p.Clusters {
		counts := map[string]int{}
		total := 0
		for _, name := range attrs {
			ap := byName[name]
			if ap == nil {
				continue
			}
			for t, n := range ap.Counts {
				counts[t] += n
				total += n
			}
		}
		p.SetEntropy(k, entropyOfCounts(counts, total))
	}
}
