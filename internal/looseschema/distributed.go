package looseschema

import (
	"fmt"
	"sort"

	"sparker/internal/dataflow"
	"sparker/internal/profile"
	"sparker/internal/tokenize"
)

// ExtractAttributeProfilesDistributed builds the per-attribute
// vocabularies on the dataflow engine: profiles are partitioned, each
// task emits (qualified attribute, token) pairs, and an aggregation
// shuffle assembles token counts per attribute — the way SparkER runs
// this stage on Spark. The output is identical to the sequential
// ExtractAttributeProfiles.
func ExtractAttributeProfilesDistributed(ctx *dataflow.Context, c *profile.Collection, tok tokenize.Options, numPartitions int) ([]*AttributeProfile, error) {
	profiles := dataflow.Parallelize(ctx, c.Profiles, numPartitions)

	type attrToken struct {
		Source int
		Attr   string
		Token  string
	}
	tokens := dataflow.FlatMap(profiles, func(p profile.Profile) []dataflow.KV[string, attrToken] {
		var out []dataflow.KV[string, attrToken]
		for _, kv := range p.Attributes {
			name := profile.QualifiedAttribute(p.SourceID, kv.Key)
			for _, t := range tok.Tokens(kv.Value) {
				out = append(out, dataflow.KV[string, attrToken]{
					Key:   name,
					Value: attrToken{Source: p.SourceID, Attr: kv.Key, Token: t},
				})
			}
		}
		return out
	})

	type vocab struct {
		Source int
		Attr   string
		Counts map[string]int
		Total  int
	}
	aggregated := dataflow.AggregateByKey(tokens,
		func() vocab { return vocab{Counts: map[string]int{}} },
		func(v vocab, at attrToken) vocab {
			v.Source = at.Source
			v.Attr = at.Attr
			v.Counts[at.Token]++
			v.Total++
			return v
		},
		func(a, b vocab) vocab {
			if a.Attr == "" {
				a.Source, a.Attr = b.Source, b.Attr
			}
			for t, n := range b.Counts {
				a.Counts[t] += n
			}
			a.Total += b.Total
			return a
		}, numPartitions)

	kvs, err := aggregated.Collect()
	if err != nil {
		return nil, fmt.Errorf("looseschema: distributed extraction: %w", err)
	}
	out := make([]*AttributeProfile, 0, len(kvs))
	for _, kv := range kvs {
		ap := &AttributeProfile{
			Name:      kv.Key,
			SourceID:  kv.Value.Source,
			Attribute: kv.Value.Attr,
			Counts:    kv.Value.Counts,
			Total:     kv.Value.Total,
		}
		ap.Tokens = make([]string, 0, len(ap.Counts))
		for t := range ap.Counts {
			ap.Tokens = append(ap.Tokens, t)
		}
		sort.Strings(ap.Tokens)
		out = append(out, ap)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}
