package core

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"sparker/internal/metablocking"
)

// The paper's debugging workflow ends with "the system allows ... to
// store the obtained configuration. Then, the optimized configuration can
// be applied to the whole data in a batch mode". This file provides that
// persistence: configurations round-trip through JSON with symbolic names
// for the enum-like knobs.

// configJSON is the serialised form of Config; enums become strings so
// stored configurations stay readable and stable across versions.
type configJSON struct {
	LooseSchema     bool    `json:"loose_schema"`
	SchemaThreshold float64 `json:"schema_threshold"`
	PurgeFactor     float64 `json:"purge_factor"`
	FilterRatio     float64 `json:"filter_ratio"`
	MetaBlocking    bool    `json:"meta_blocking"`
	Scheme          string  `json:"scheme"`
	Pruning         string  `json:"pruning"`
	UseEntropy      bool    `json:"use_entropy"`
	Measure         string  `json:"measure"`
	MatchThreshold  float64 `json:"match_threshold"`
	Clusterer       string  `json:"clusterer"`
	Partitions      int     `json:"partitions,omitempty"`
	Seed            int64   `json:"seed,omitempty"`
}

var schemeNames = map[metablocking.Scheme]string{
	metablocking.CBS:  "cbs",
	metablocking.ECBS: "ecbs",
	metablocking.JS:   "js",
	metablocking.EJS:  "ejs",
	metablocking.ARCS: "arcs",
}

var pruningNames = map[metablocking.Pruning]string{
	metablocking.WEP:           "wep",
	metablocking.CEP:           "cep",
	metablocking.WNP:           "wnp",
	metablocking.ReciprocalWNP: "rwnp",
	metablocking.CNP:           "cnp",
	metablocking.ReciprocalCNP: "rcnp",
	metablocking.BlastPruning:  "blast",
}

// ParseScheme resolves a symbolic weight-scheme name.
func ParseScheme(name string) (metablocking.Scheme, error) {
	for s, n := range schemeNames {
		if n == name {
			return s, nil
		}
	}
	return 0, fmt.Errorf("core: unknown scheme %q", name)
}

// ParsePruning resolves a symbolic pruning-rule name.
func ParsePruning(name string) (metablocking.Pruning, error) {
	for p, n := range pruningNames {
		if n == name {
			return p, nil
		}
	}
	return 0, fmt.Errorf("core: unknown pruning %q", name)
}

// SaveConfig writes the configuration as indented JSON.
func SaveConfig(w io.Writer, cfg Config) error {
	cj := configJSON{
		LooseSchema:     cfg.LooseSchema,
		SchemaThreshold: cfg.SchemaThreshold,
		PurgeFactor:     cfg.PurgeFactor,
		FilterRatio:     cfg.FilterRatio,
		MetaBlocking:    cfg.MetaBlocking,
		Scheme:          schemeNames[cfg.Scheme],
		Pruning:         pruningNames[cfg.Pruning],
		UseEntropy:      cfg.UseEntropy,
		Measure:         string(cfg.Measure),
		MatchThreshold:  cfg.MatchThreshold,
		Clusterer:       string(cfg.Clusterer),
		Partitions:      cfg.Partitions,
		Seed:            cfg.Seed,
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(cj); err != nil {
		return fmt.Errorf("core: saving config: %w", err)
	}
	return nil
}

// LoadConfig reads a configuration previously written by SaveConfig.
// Missing fields keep the zero value; symbolic names are validated.
func LoadConfig(r io.Reader) (Config, error) {
	var cj configJSON
	if err := json.NewDecoder(r).Decode(&cj); err != nil {
		return Config{}, fmt.Errorf("core: loading config: %w", err)
	}
	cfg := Config{
		LooseSchema:     cj.LooseSchema,
		SchemaThreshold: cj.SchemaThreshold,
		PurgeFactor:     cj.PurgeFactor,
		FilterRatio:     cj.FilterRatio,
		MetaBlocking:    cj.MetaBlocking,
		UseEntropy:      cj.UseEntropy,
		Measure:         MeasureKind(cj.Measure),
		MatchThreshold:  cj.MatchThreshold,
		Clusterer:       ClusterAlgorithm(cj.Clusterer),
		Partitions:      cj.Partitions,
		Seed:            cj.Seed,
	}
	var err error
	if cj.Scheme != "" {
		if cfg.Scheme, err = ParseScheme(cj.Scheme); err != nil {
			return Config{}, err
		}
	}
	if cj.Pruning != "" {
		if cfg.Pruning, err = ParsePruning(cj.Pruning); err != nil {
			return Config{}, err
		}
	}
	switch cfg.Measure {
	case "", MeasureJaccard, MeasureDice, MeasureCosineTFIDF:
	default:
		return Config{}, fmt.Errorf("core: unknown measure %q", cfg.Measure)
	}
	switch cfg.Clusterer {
	case "", ClusterConnectedComponents, ClusterCenter, ClusterMergeCenter, ClusterUniqueMapping:
	default:
		return Config{}, fmt.Errorf("core: unknown clusterer %q", cfg.Clusterer)
	}
	return cfg, nil
}

// SaveConfigFile writes the configuration to a file.
func SaveConfigFile(path string, cfg Config) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("core: %w", err)
	}
	defer f.Close()
	return SaveConfig(f, cfg)
}

// LoadConfigFile reads a configuration from a file.
func LoadConfigFile(path string) (Config, error) {
	f, err := os.Open(path)
	if err != nil {
		return Config{}, fmt.Errorf("core: %w", err)
	}
	defer f.Close()
	return LoadConfig(f)
}
