package core

import (
	"testing"

	"sparker/internal/looseschema"
	"sparker/internal/metablocking"
)

func newSession(t *testing.T) *Session {
	t.Helper()
	ds := smallDataset()
	gt := groundTruth(t, ds)
	cfg := DefaultConfig()
	cfg.MetaBlocking = false // start from plain blocking, like the demo
	s, err := NewSession(ds.Collection, cfg, gt)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSessionThresholdSweepMatchesFigure6(t *testing.T) {
	s := newSession(t)

	if err := s.SetSchemaThreshold(1.0); err != nil {
		t.Fatal(err)
	}
	blobOnly := s.Partitioning()
	for k, attrs := range blobOnly.Clusters {
		if k != looseschema.BlobCluster && len(attrs) > 0 {
			t.Fatalf("threshold 1.0 produced cluster %d: %v", k, attrs)
		}
	}
	atOne := s.Metrics()

	if err := s.SetSchemaThreshold(0.3); err != nil {
		t.Fatal(err)
	}
	atLow := s.Metrics()
	if atLow.Candidates >= atOne.Candidates {
		t.Fatalf("candidates did not drop: %d vs %d", atLow.Candidates, atOne.Candidates)
	}
	if atLow.Recall < atOne.Recall-1e-9 {
		t.Fatalf("recall dropped: %f vs %f", atLow.Recall, atOne.Recall)
	}
}

func TestSessionManualEditAndRollback(t *testing.T) {
	s := newSession(t)
	if err := s.SetSchemaThreshold(0.3); err != nil {
		t.Fatal(err)
	}
	lostBefore := len(s.LostPairs(0))

	err := s.EditPartitioning(func(p *looseschema.Partitioning) error {
		nc := p.NewCluster()
		if err := p.MoveAttribute("0:description", nc); err != nil {
			return err
		}
		return p.MoveAttribute("1:short_descr", nc)
	})
	if err != nil {
		t.Fatal(err)
	}
	lostAfter := s.LostPairs(0)
	if len(lostAfter) <= lostBefore {
		t.Fatalf("split must lose pairs: %d vs %d", len(lostAfter), lostBefore)
	}
	// Each lost pair carries its shared-key explanation relative to the
	// *current* (split) options: keys may be empty now, which is exactly
	// the point — the split severed them.
	for _, lp := range lostAfter[:3] {
		if lp.AOriginal == "" || lp.BOriginal == "" {
			t.Fatalf("missing original IDs: %+v", lp)
		}
	}

	// A failing edit must keep the previous state.
	before := s.Metrics()
	if err := s.EditPartitioning(func(p *looseschema.Partitioning) error {
		return p.MoveAttribute("0:nonexistent", 1)
	}); err == nil {
		t.Fatal("want error for bad edit")
	}
	if got := s.Metrics(); got != before {
		t.Fatal("failed edit changed session state")
	}
}

func TestSessionMetaBlockingToggle(t *testing.T) {
	s := newSession(t)
	plain := s.Metrics()
	if err := s.SetMetaBlocking(true, metablocking.CBS, metablocking.BlastPruning, true); err != nil {
		t.Fatal(err)
	}
	pruned := s.Metrics()
	if pruned.Candidates >= plain.Candidates {
		t.Fatalf("meta-blocking did not reduce candidates: %d vs %d",
			pruned.Candidates, plain.Candidates)
	}
	if s.Config().Pruning != metablocking.BlastPruning {
		t.Fatal("config not updated")
	}
}

func TestSessionRunEndToEnd(t *testing.T) {
	s := newSession(t)
	if err := s.SetMetaBlocking(true, metablocking.CBS, metablocking.BlastPruning, true); err != nil {
		t.Fatal(err)
	}
	s.SetMatchThreshold(0.3)
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) == 0 || len(res.Entities) == 0 {
		t.Fatal("empty pipeline result")
	}
}

func TestSessionSchemaAgnosticGuards(t *testing.T) {
	ds := smallDataset()
	cfg := SchemaAgnosticConfig()
	s, err := NewSession(ds.Collection, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SetSchemaThreshold(0.3); err == nil {
		t.Fatal("want error: threshold without loose schema")
	}
	if err := s.EditPartitioning(func(*looseschema.Partitioning) error { return nil }); err == nil {
		t.Fatal("want error: edit without partitioning")
	}
	// Without a ground truth, metrics degrade gracefully.
	m := s.Metrics()
	if m.Candidates == 0 || m.Recall != 0 {
		t.Fatalf("metrics without gt: %+v", m)
	}
	if s.LostPairs(5) != nil {
		t.Fatal("lost pairs without gt must be nil")
	}
}
