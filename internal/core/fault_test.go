package core

import (
	"reflect"
	"testing"

	"sparker/internal/dataflow"
)

// TestPipelineSurvivesInjectedFaults runs the whole distributed pipeline
// on a cluster whose fault injector kills task attempts, and checks that
// retried tasks reproduce exactly the results of a healthy cluster — the
// determinism-under-recomputation property Spark lineage provides.
func TestPipelineSurvivesInjectedFaults(t *testing.T) {
	ds := smallDataset()
	cfg := DefaultConfig()

	healthy := dataflow.NewContext(dataflow.WithParallelism(4))
	want, err := NewPipeline(cfg, healthy).Resolve(ds.Collection)
	healthy.Close()
	if err != nil {
		t.Fatal(err)
	}

	flaky := dataflow.NewContext(
		dataflow.WithParallelism(4),
		dataflow.WithMaxTaskAttempts(8),
		dataflow.WithFaultInjection(0.15, 42, 60),
	)
	defer flaky.Close()
	got, err := NewPipeline(cfg, flaky).Resolve(ds.Collection)
	if err != nil {
		t.Fatalf("pipeline failed despite retries: %v", err)
	}

	m := flaky.Metrics()
	if m.TasksFailed == 0 {
		t.Fatal("fault injector never fired; test is vacuous")
	}
	if m.TasksRetried == 0 {
		t.Fatal("no retries recorded")
	}

	if !reflect.DeepEqual(want.Blocker.Candidates, got.Blocker.Candidates) {
		t.Fatalf("candidates diverge under faults: %d vs %d",
			len(want.Blocker.Candidates), len(got.Blocker.Candidates))
	}
	if !reflect.DeepEqual(want.Matches, got.Matches) {
		t.Fatalf("matches diverge under faults: %d vs %d", len(want.Matches), len(got.Matches))
	}
	if !samePartition(want, got) {
		t.Fatal("entity partitions diverge under faults")
	}
}

// TestPipelineFailsCleanlyWhenFaultsExhaustRetries checks error
// propagation: with every attempt killed, the pipeline returns an error
// instead of partial results.
func TestPipelineFailsCleanlyWhenFaultsExhaustRetries(t *testing.T) {
	ds := smallDataset()
	cfg := DefaultConfig()
	doomed := dataflow.NewContext(
		dataflow.WithParallelism(2),
		dataflow.WithMaxTaskAttempts(2),
		dataflow.WithFaultInjection(1.0, 7, 0),
	)
	defer doomed.Close()
	if _, err := NewPipeline(cfg, doomed).Resolve(ds.Collection); err == nil {
		t.Fatal("want error when the cluster cannot complete any task")
	}
}
