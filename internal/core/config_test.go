package core

import (
	"bytes"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"sparker/internal/metablocking"
)

func TestConfigRoundTrip(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Scheme = metablocking.ARCS
	cfg.Pruning = metablocking.ReciprocalCNP
	cfg.Measure = MeasureCosineTFIDF
	cfg.Clusterer = ClusterMergeCenter
	cfg.MatchThreshold = 0.42
	cfg.Partitions = 16

	var buf bytes.Buffer
	if err := SaveConfig(&buf, cfg); err != nil {
		t.Fatal(err)
	}
	back, err := LoadConfig(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cfg, back) {
		t.Fatalf("round trip changed config:\nwant %+v\ngot  %+v", cfg, back)
	}
}

func TestConfigRoundTripAllSchemesAndPrunings(t *testing.T) {
	for _, s := range []metablocking.Scheme{metablocking.CBS, metablocking.ECBS, metablocking.JS, metablocking.EJS, metablocking.ARCS} {
		for _, p := range []metablocking.Pruning{metablocking.WEP, metablocking.CEP, metablocking.WNP,
			metablocking.ReciprocalWNP, metablocking.CNP, metablocking.ReciprocalCNP, metablocking.BlastPruning} {
			cfg := DefaultConfig()
			cfg.Scheme = s
			cfg.Pruning = p
			var buf bytes.Buffer
			if err := SaveConfig(&buf, cfg); err != nil {
				t.Fatal(err)
			}
			back, err := LoadConfig(&buf)
			if err != nil {
				t.Fatalf("%v/%v: %v", s, p, err)
			}
			if back.Scheme != s || back.Pruning != p {
				t.Fatalf("%v/%v came back as %v/%v", s, p, back.Scheme, back.Pruning)
			}
		}
	}
}

func TestConfigFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "config.json")
	cfg := DefaultConfig()
	cfg.MatchThreshold = 0.222
	if err := SaveConfigFile(path, cfg); err != nil {
		t.Fatal(err)
	}
	back, err := LoadConfigFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.MatchThreshold != 0.222 {
		t.Fatalf("threshold: %f", back.MatchThreshold)
	}
}

func TestLoadConfigRejectsBadNames(t *testing.T) {
	cases := []string{
		`{"scheme": "bogus"}`,
		`{"pruning": "bogus"}`,
		`{"measure": "bogus"}`,
		`{"clusterer": "bogus"}`,
		`{not json`,
	}
	for _, c := range cases {
		if _, err := LoadConfig(strings.NewReader(c)); err == nil {
			t.Fatalf("want error for %q", c)
		}
	}
}

func TestLoadConfigDefaultsEmptyEnums(t *testing.T) {
	cfg, err := LoadConfig(strings.NewReader(`{"match_threshold": 0.5}`))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Scheme != metablocking.CBS || cfg.Pruning != metablocking.WEP {
		t.Fatalf("defaults: %+v", cfg)
	}
	if cfg.MatchThreshold != 0.5 {
		t.Fatalf("threshold: %f", cfg.MatchThreshold)
	}
}

func TestParseHelpers(t *testing.T) {
	if s, err := ParseScheme("arcs"); err != nil || s != metablocking.ARCS {
		t.Fatalf("got %v %v", s, err)
	}
	if _, err := ParseScheme("x"); err == nil {
		t.Fatal("want error")
	}
	if p, err := ParsePruning("blast"); err != nil || p != metablocking.BlastPruning {
		t.Fatalf("got %v %v", p, err)
	}
	if _, err := ParsePruning("x"); err == nil {
		t.Fatal("want error")
	}
}

func TestSavedConfigIsHumanReadable(t *testing.T) {
	var buf bytes.Buffer
	if err := SaveConfig(&buf, DefaultConfig()); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	for _, want := range []string{`"scheme": "cbs"`, `"pruning": "blast"`, `"measure": "jaccard"`} {
		if !strings.Contains(s, want) {
			t.Fatalf("missing %q in:\n%s", want, s)
		}
	}
}
