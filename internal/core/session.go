package core

import (
	"fmt"

	"sparker/internal/blocking"
	"sparker/internal/evaluation"
	"sparker/internal/looseschema"
	"sparker/internal/metablocking"
	"sparker/internal/profile"
)

// Session drives the interactive debugging loop of the paper's Section 3:
// "the user try a configuration, if it is not satisfied changes it, and
// repeat the step again". It caches the expensive invariants (attribute
// vocabularies, the ground truth) so that changing the LSH threshold,
// editing a cluster by hand, or switching the pruning rule recomputes
// only the affected stages. Typically built over a debug sample rather
// than the full collection.
type Session struct {
	collection *profile.Collection
	gt         *evaluation.GroundTruth // may be nil
	cfg        Config

	// Cached across reconfigurations.
	attributeProfiles []*looseschema.AttributeProfile

	// Current state.
	partitioning *looseschema.Partitioning
	blocker      *BlockerResult
}

// NewSession prepares a debugging session; gt may be nil when no ground
// truth is available (the paper then shows pairs to the user instead).
// The initial blocker runs with the given configuration.
func NewSession(c *profile.Collection, cfg Config, gt *evaluation.GroundTruth) (*Session, error) {
	s := &Session{collection: c, gt: gt, cfg: cfg}
	if cfg.LooseSchema {
		s.attributeProfiles = looseschema.ExtractAttributeProfiles(c, cfg.Tokenizer)
		s.partitioning = looseschema.PartitionAttributes(s.attributeProfiles, c.IsClean(), looseschema.Options{
			Threshold: cfg.SchemaThreshold,
			Seed:      cfg.Seed,
			Tokenizer: cfg.Tokenizer,
		})
	}
	if err := s.rebuild(); err != nil {
		return nil, err
	}
	return s, nil
}

// rebuild reruns the blocker from the current partitioning and config.
func (s *Session) rebuild() error {
	res := &BlockerResult{
		Partitioning:      s.partitioning,
		AttributeProfiles: s.attributeProfiles,
	}
	pipeline := NewPipeline(s.cfg, nil)
	out, err := pipeline.RunBlockerWithPartitioning(s.collection, res)
	if err != nil {
		return err
	}
	s.blocker = out
	return nil
}

// Config returns the session's current configuration (save it with
// SaveConfig to apply in batch mode later).
func (s *Session) Config() Config { return s.cfg }

// Blocker exposes the current blocker artifacts.
func (s *Session) Blocker() *BlockerResult { return s.blocker }

// Partitioning exposes the current attribute clustering (nil when loose
// schema is off).
func (s *Session) Partitioning() *looseschema.Partitioning { return s.partitioning }

// SetSchemaThreshold re-partitions the attributes at a new LSH threshold
// (the Figure 6 slider) and reruns the blocker, reusing the cached
// attribute vocabularies.
func (s *Session) SetSchemaThreshold(threshold float64) error {
	if !s.cfg.LooseSchema {
		return fmt.Errorf("core: session runs schema-agnostic; enable LooseSchema first")
	}
	s.cfg.SchemaThreshold = threshold
	s.partitioning = looseschema.PartitionAttributes(s.attributeProfiles, s.collection.IsClean(), looseschema.Options{
		Threshold: threshold,
		Seed:      s.cfg.Seed,
		Tokenizer: s.cfg.Tokenizer,
	})
	return s.rebuild()
}

// EditPartitioning applies a manual cluster edit (the supervised move of
// Figure 6(c)): the callback mutates a clone, entropies are recomputed,
// and the blocker reruns. On error the previous state is kept.
func (s *Session) EditPartitioning(edit func(*looseschema.Partitioning) error) error {
	if s.partitioning == nil {
		return fmt.Errorf("core: no partitioning to edit (LooseSchema off)")
	}
	clone := s.partitioning.Clone()
	if err := edit(clone); err != nil {
		return err
	}
	looseschema.ComputeEntropies(clone, s.attributeProfiles)
	old := s.partitioning
	s.partitioning = clone
	if err := s.rebuild(); err != nil {
		s.partitioning = old
		return err
	}
	return nil
}

// SetMetaBlocking reconfigures the pruning stage and reruns the blocker
// (blocks are rebuilt too; they are cheap next to the neighbourhood
// materialisation).
func (s *Session) SetMetaBlocking(enabled bool, scheme metablocking.Scheme, pruning metablocking.Pruning, useEntropy bool) error {
	s.cfg.MetaBlocking = enabled
	s.cfg.Scheme = scheme
	s.cfg.Pruning = pruning
	s.cfg.UseEntropy = useEntropy
	return s.rebuild()
}

// SetMatchThreshold records a tuned matcher threshold in the session
// configuration (used by Run and by the saved config).
func (s *Session) SetMatchThreshold(th float64) { s.cfg.MatchThreshold = th }

// Metrics evaluates the current candidate set against the ground truth;
// it returns zero metrics when the session has none.
func (s *Session) Metrics() evaluation.Metrics {
	if s.gt == nil {
		return evaluation.Metrics{Candidates: len(s.blocker.Candidates)}
	}
	return evaluation.EvaluatePairs(s.blocker.Candidates, s.gt, s.collection.MaxComparisons())
}

// LostPair is one row of the Figure 6(d) drill-down.
type LostPair struct {
	A, B                 profile.ID
	AOriginal, BOriginal string
	// SharedKeys under the session's current blocking options; empty when
	// the profiles share no key at all.
	SharedKeys []string
}

// LostPairs lists up to limit ground-truth pairs missing from the current
// candidates, each explained with the keys the pair shares under the
// current key-generation options.
func (s *Session) LostPairs(limit int) []LostPair {
	if s.gt == nil {
		return nil
	}
	opts := s.blocker.BlockingOptions(s.cfg)
	var out []LostPair
	for _, p := range evaluation.LostPairs(s.blocker.Candidates, s.gt) {
		if limit > 0 && len(out) == limit {
			break
		}
		out = append(out, LostPair{
			A: p.A, B: p.B,
			AOriginal:  s.collection.Get(p.A).OriginalID,
			BOriginal:  s.collection.Get(p.B).OriginalID,
			SharedKeys: evaluation.SharedKeys(s.collection, opts, p.A, p.B),
		})
	}
	return out
}

// Candidates exposes the current candidate pairs.
func (s *Session) Candidates() []blocking.Pair { return s.blocker.Candidates }

// Run executes the full pipeline (matcher + clusterer included) with the
// session's current configuration.
func (s *Session) Run() (*Result, error) {
	pipeline := NewPipeline(s.cfg, nil)
	matches, err := pipeline.RunMatcher(s.collection, s.blocker.Candidates)
	if err != nil {
		return nil, err
	}
	entities, err := pipeline.RunClusterer(matches)
	if err != nil {
		return nil, err
	}
	return &Result{Blocker: s.blocker, Matches: matches, Entities: entities}, nil
}
