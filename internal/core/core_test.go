package core

import (
	"reflect"
	"testing"

	"sparker/internal/dataflow"
	"sparker/internal/datagen"
	"sparker/internal/evaluation"
	"sparker/internal/looseschema"
	"sparker/internal/metablocking"
	"sparker/internal/profile"
)

func smallDataset() *datagen.Dataset {
	cfg := datagen.AbtBuy()
	cfg.CoreEntities = 150
	cfg.AOnly = 12
	cfg.BDup = 14
	return datagen.Generate(cfg)
}

func groundTruth(t *testing.T, ds *datagen.Dataset) *evaluation.GroundTruth {
	t.Helper()
	gt, err := evaluation.FromOriginalIDs(ds.Collection, ds.GroundTruth)
	if err != nil {
		t.Fatal(err)
	}
	return gt
}

func TestDefaultPipelineEndToEnd(t *testing.T) {
	ds := smallDataset()
	gt := groundTruth(t, ds)
	p := NewPipeline(DefaultConfig(), nil)
	res, err := p.Resolve(ds.Collection)
	if err != nil {
		t.Fatal(err)
	}
	if res.Blocker == nil || len(res.Blocker.Candidates) == 0 {
		t.Fatal("no candidates")
	}
	if len(res.Matches) == 0 || len(res.Entities) == 0 {
		t.Fatal("no matches or entities")
	}
	reports := res.Evaluate(ds.Collection, gt)
	if len(reports) != 3 {
		t.Fatalf("reports: %v", reports)
	}
	blockRecall := reports[0].Metrics.Recall
	if blockRecall < 0.85 {
		t.Fatalf("blocking recall %f too low", blockRecall)
	}
	clusterF1 := reports[2].Metrics.F1
	if clusterF1 < 0.7 {
		t.Fatalf("final F1 %f too low", clusterF1)
	}
	// Meta-blocking must beat exhaustive comparison by a wide margin.
	if rr := reports[0].Metrics.ReductionRatio; rr < 0.9 {
		t.Fatalf("reduction ratio %f", rr)
	}
}

func TestSchemaAgnosticBaseline(t *testing.T) {
	ds := smallDataset()
	gt := groundTruth(t, ds)
	p := NewPipeline(SchemaAgnosticConfig(), nil)
	res, err := p.Resolve(ds.Collection)
	if err != nil {
		t.Fatal(err)
	}
	m := evaluation.EvaluatePairs(res.Blocker.Candidates, gt, ds.Collection.MaxComparisons())
	if m.Recall < 0.8 {
		t.Fatalf("schema-agnostic recall %f", m.Recall)
	}
	if res.Blocker.Partitioning != nil {
		t.Fatal("schema-agnostic config must not partition attributes")
	}
}

func TestDistributedMatchesSequential(t *testing.T) {
	ds := smallDataset()
	cfg := DefaultConfig()

	seqRes, err := NewPipeline(cfg, nil).Resolve(ds.Collection)
	if err != nil {
		t.Fatal(err)
	}

	ctx := dataflow.NewContext(dataflow.WithParallelism(4))
	defer ctx.Close()
	distRes, err := NewPipeline(cfg, ctx).Resolve(ds.Collection)
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(seqRes.Blocker.Candidates, distRes.Blocker.Candidates) {
		t.Fatalf("candidates differ: %d vs %d", len(seqRes.Blocker.Candidates), len(distRes.Blocker.Candidates))
	}
	if !reflect.DeepEqual(seqRes.Matches, distRes.Matches) {
		t.Fatalf("matches differ: %d vs %d", len(seqRes.Matches), len(distRes.Matches))
	}
	// Entity IDs may be numbered differently; compare as partitions.
	if !samePartition(seqRes, distRes) {
		t.Fatal("entity partitions differ")
	}
}

func samePartition(a, b *Result) bool {
	key := func(r *Result) map[profile.ID]profile.ID {
		rep := map[profile.ID]profile.ID{}
		for _, e := range r.Entities {
			minID := e.Profiles[0]
			for _, p := range e.Profiles {
				rep[p] = minID
			}
		}
		return rep
	}
	return reflect.DeepEqual(key(a), key(b))
}

func TestMetaBlockingDisabled(t *testing.T) {
	ds := smallDataset()
	cfg := DefaultConfig()
	cfg.MetaBlocking = false
	res, err := NewPipeline(cfg, nil).RunBlocker(ds.Collection)
	if err != nil {
		t.Fatal(err)
	}
	if res.Edges != nil {
		t.Fatal("edges produced with meta-blocking disabled")
	}
	if len(res.Candidates) == 0 {
		t.Fatal("no candidates")
	}

	cfgMB := DefaultConfig()
	resMB, err := NewPipeline(cfgMB, nil).RunBlocker(ds.Collection)
	if err != nil {
		t.Fatal(err)
	}
	if len(resMB.Candidates) >= len(res.Candidates) {
		t.Fatalf("meta-blocking did not reduce candidates: %d vs %d",
			len(resMB.Candidates), len(res.Candidates))
	}
}

func TestEntropyRequiresLooseSchema(t *testing.T) {
	ds := smallDataset()
	cfg := DefaultConfig()
	cfg.LooseSchema = false
	cfg.UseEntropy = true
	if _, err := NewPipeline(cfg, nil).RunBlocker(ds.Collection); err == nil {
		t.Fatal("want error: entropy without loose schema")
	}
}

func TestUnknownMeasureAndClusterer(t *testing.T) {
	ds := smallDataset()
	cfg := DefaultConfig()
	cfg.Measure = "bogus"
	if _, err := NewPipeline(cfg, nil).Resolve(ds.Collection); err == nil {
		t.Fatal("want measure error")
	}
	cfg = DefaultConfig()
	cfg.Clusterer = "bogus"
	if _, err := NewPipeline(cfg, nil).Resolve(ds.Collection); err == nil {
		t.Fatal("want clusterer error")
	}
}

func TestAllMeasuresRun(t *testing.T) {
	ds := smallDataset()
	for _, m := range []MeasureKind{MeasureJaccard, MeasureDice, MeasureCosineTFIDF} {
		cfg := DefaultConfig()
		cfg.Measure = m
		if _, err := NewPipeline(cfg, nil).Resolve(ds.Collection); err != nil {
			t.Fatalf("%s: %v", m, err)
		}
	}
}

func TestAllClusterersRun(t *testing.T) {
	ds := smallDataset()
	for _, cl := range []ClusterAlgorithm{ClusterConnectedComponents, ClusterCenter, ClusterMergeCenter, ClusterUniqueMapping} {
		cfg := DefaultConfig()
		cfg.Clusterer = cl
		res, err := NewPipeline(cfg, nil).Resolve(ds.Collection)
		if err != nil {
			t.Fatalf("%s: %v", cl, err)
		}
		if len(res.Entities) == 0 {
			t.Fatalf("%s: no entities", cl)
		}
	}
}

// TestManualPartitionEdit follows the Figure 6(c,d) supervised flow: the
// user splits names from descriptions, reruns the blocker, and loses
// pairs that the automatic partitioning kept.
func TestManualPartitionEdit(t *testing.T) {
	ds := smallDataset()
	gt := groundTruth(t, ds)
	cfg := DefaultConfig()
	cfg.MetaBlocking = false
	p := NewPipeline(cfg, nil)

	auto, err := p.RunBlocker(ds.Collection)
	if err != nil {
		t.Fatal(err)
	}
	lostAuto := evaluation.LostPairs(auto.Candidates, gt)

	edited := auto.Partitioning.Clone()
	nc := edited.NewCluster()
	if err := edited.MoveAttribute("0:description", nc); err != nil {
		t.Fatal(err)
	}
	if err := edited.MoveAttribute("1:short_descr", nc); err != nil {
		t.Fatal(err)
	}
	looseschema.ComputeEntropies(edited, auto.AttributeProfiles)

	manual := &BlockerResult{Partitioning: edited, AttributeProfiles: auto.AttributeProfiles}
	manual, err = p.RunBlockerWithPartitioning(ds.Collection, manual)
	if err != nil {
		t.Fatal(err)
	}
	lostManual := evaluation.LostPairs(manual.Candidates, gt)
	if len(lostManual) <= len(lostAuto) {
		t.Fatalf("manual split lost %d pairs, auto lost %d; expected the split to hurt",
			len(lostManual), len(lostAuto))
	}

	// The drill-down explanation: under the automatic partitioning the
	// lost pairs shared (only) name/description keys.
	opts := auto.BlockingOptions(cfg)
	for _, pair := range lostManual[:min(3, len(lostManual))] {
		keys := evaluation.SharedKeys(ds.Collection, opts, pair.A, pair.B)
		if len(keys) == 0 {
			t.Fatalf("lost pair %v shares no keys under the automatic partitioning", pair)
		}
	}
}

func TestEntropyShrinksCandidates(t *testing.T) {
	ds := smallDataset()
	gt := groundTruth(t, ds)

	run := func(useEntropy bool) ([]int, float64) {
		cfg := DefaultConfig()
		cfg.UseEntropy = useEntropy
		res, err := NewPipeline(cfg, nil).RunBlocker(ds.Collection)
		if err != nil {
			t.Fatal(err)
		}
		m := evaluation.EvaluatePairs(res.Candidates, gt, ds.Collection.MaxComparisons())
		return []int{len(res.Candidates)}, m.Recall
	}
	plain, recallPlain := run(false)
	entropy, recallEntropy := run(true)
	if entropy[0] > plain[0] {
		t.Fatalf("entropy increased candidates: %d vs %d", entropy[0], plain[0])
	}
	if recallEntropy < recallPlain-0.02 {
		t.Fatalf("entropy hurt recall: %f vs %f", recallEntropy, recallPlain)
	}
}

func TestBlockerStagesMonotone(t *testing.T) {
	ds := smallDataset()
	res, err := NewPipeline(DefaultConfig(), nil).RunBlocker(ds.Collection)
	if err != nil {
		t.Fatal(err)
	}
	if res.Purged.TotalComparisons() > res.Raw.TotalComparisons() {
		t.Fatal("purging increased comparisons")
	}
	if res.Filtered.TotalComparisons() > res.Purged.TotalComparisons() {
		t.Fatal("filtering increased comparisons")
	}
	if int64(len(res.Candidates)) > res.Filtered.TotalComparisons() {
		t.Fatal("meta-blocking produced more candidates than comparisons")
	}
}

func TestPruningVariants(t *testing.T) {
	ds := smallDataset()
	for _, pr := range []metablocking.Pruning{metablocking.WEP, metablocking.WNP, metablocking.CNP, metablocking.BlastPruning} {
		cfg := DefaultConfig()
		cfg.Pruning = pr
		res, err := NewPipeline(cfg, nil).RunBlocker(ds.Collection)
		if err != nil {
			t.Fatalf("%v: %v", pr, err)
		}
		if len(res.Candidates) == 0 {
			t.Fatalf("%v: no candidates", pr)
		}
	}
}

func TestDirtyERPipeline(t *testing.T) {
	ds := datagen.GenerateDirty(120, 3)
	gt := groundTruth(t, ds)
	cfg := DefaultConfig()
	// Dirty ER with a single schema: loose schema has nothing to split, so
	// run schema-agnostically.
	cfg.LooseSchema = false
	cfg.UseEntropy = false
	res, err := NewPipeline(cfg, nil).Resolve(ds.Collection)
	if err != nil {
		t.Fatal(err)
	}
	reports := res.Evaluate(ds.Collection, gt)
	if reports[0].Metrics.Recall < 0.7 {
		t.Fatalf("dirty blocking recall %f", reports[0].Metrics.Recall)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
