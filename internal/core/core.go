// Package core wires SparkER's three modules into the Figure 3 pipeline:
//
//	profiles → Blocker → candidate pairs → Entity Matcher → matching pairs
//	        → Entity Clusterer → entities
//
// The Blocker (Figure 4) chains token blocking, optional loose-schema key
// generation, block purging, block filtering and meta-blocking. Every step
// runs either sequentially or on the dataflow engine, selected by whether
// the pipeline holds a cluster context. All intermediate artifacts are
// kept in the step results so the process-debugging workflow (Section 3 of
// the paper) can inspect and re-run any stage with different parameters.
package core

import (
	"fmt"

	"sparker/internal/blocking"
	"sparker/internal/clustering"
	"sparker/internal/dataflow"
	"sparker/internal/evaluation"
	"sparker/internal/looseschema"
	"sparker/internal/matching"
	"sparker/internal/metablocking"
	"sparker/internal/profile"
	"sparker/internal/tokenize"
)

// MeasureKind selects the matcher's similarity measure.
type MeasureKind string

const (
	// MeasureJaccard compares whole-profile token bags with Jaccard.
	MeasureJaccard MeasureKind = "jaccard"
	// MeasureDice compares whole-profile token bags with Dice.
	MeasureDice MeasureKind = "dice"
	// MeasureCosineTFIDF compares TF-IDF vectors (the CSA stand-in).
	MeasureCosineTFIDF MeasureKind = "cosine-tfidf"
)

// ClusterAlgorithm selects the entity clusterer.
type ClusterAlgorithm string

const (
	// ClusterConnectedComponents is the paper's default (GraphX CC).
	ClusterConnectedComponents ClusterAlgorithm = "connected-components"
	// ClusterCenter uses center clustering [8].
	ClusterCenter ClusterAlgorithm = "center"
	// ClusterMergeCenter uses merge-center clustering [8].
	ClusterMergeCenter ClusterAlgorithm = "merge-center"
	// ClusterUniqueMapping greedily builds a one-to-one mapping, valid
	// for clean-clean tasks where each source is duplicate-free [8].
	ClusterUniqueMapping ClusterAlgorithm = "unique-mapping"
)

// Config holds every tunable of the pipeline; the zero value is invalid,
// start from DefaultConfig (the unsupervised mode) and override.
type Config struct {
	// LooseSchema enables Blast attribute partitioning + entropy.
	LooseSchema bool
	// SchemaThreshold is the LSH similarity threshold of the attribute
	// partitioner (the Figure 6 slider).
	SchemaThreshold float64
	// PurgeFactor is the max block size as a fraction of all profiles.
	PurgeFactor float64
	// FilterRatio keeps each profile in this fraction of its smallest
	// blocks.
	FilterRatio float64
	// MetaBlocking enables graph-based comparison pruning.
	MetaBlocking bool
	// Scheme is the edge-weighting scheme.
	Scheme metablocking.Scheme
	// Pruning is the edge-pruning rule.
	Pruning metablocking.Pruning
	// UseEntropy scales edge weights by attribute-cluster entropy
	// (requires LooseSchema).
	UseEntropy bool
	// Measure picks the matcher similarity.
	Measure MeasureKind
	// MatchThreshold labels a scored pair a match at or above it.
	MatchThreshold float64
	// Clusterer picks the entity-clustering algorithm.
	Clusterer ClusterAlgorithm
	// Tokenizer is shared by blocking, loose schema and matching.
	Tokenizer tokenize.Options
	// Partitions used by distributed stages (0 = context default).
	Partitions int
	// Seed drives LSH.
	Seed int64
}

// DefaultConfig is the unsupervised mode: loose-schema meta-blocking with
// Blast pruning and entropy, Jaccard matching, connected components.
func DefaultConfig() Config {
	return Config{
		LooseSchema:     true,
		SchemaThreshold: 0.3,
		PurgeFactor:     0.5,
		FilterRatio:     blocking.DefaultFilterRatio,
		MetaBlocking:    true,
		Scheme:          metablocking.CBS,
		Pruning:         metablocking.BlastPruning,
		UseEntropy:      true,
		Measure:         MeasureJaccard,
		// Whole-profile Jaccard between a verbose and a terse rendering of
		// the same entity rarely exceeds ~0.5 (the verbose side's extra
		// tokens inflate the union), so the unsupervised default is
		// deliberately permissive; the supervised tuner refines it.
		MatchThreshold: 0.3,
		Clusterer:      ClusterConnectedComponents,
		Seed:           42,
	}
}

// SchemaAgnosticConfig is the baseline configuration: plain token blocking
// with schema-agnostic meta-blocking (WEP over CBS), as in Figure 1.
func SchemaAgnosticConfig() Config {
	cfg := DefaultConfig()
	cfg.LooseSchema = false
	cfg.UseEntropy = false
	cfg.Pruning = metablocking.WEP
	return cfg
}

// Pipeline executes the configured ER stack. A nil cluster context runs
// everything sequentially; otherwise the distributed implementations run
// on the simulated cluster.
type Pipeline struct {
	Config Config
	ctx    *dataflow.Context
}

// NewPipeline builds a pipeline; ctx may be nil for sequential execution.
func NewPipeline(cfg Config, ctx *dataflow.Context) *Pipeline {
	return &Pipeline{Config: cfg, ctx: ctx}
}

// Distributed reports whether the pipeline runs on the dataflow engine.
func (p *Pipeline) Distributed() bool { return p.ctx != nil }

// BlockerResult carries every intermediate artifact of the blocker so the
// debugger can show per-stage counts (Figure 6's panels).
type BlockerResult struct {
	// Partitioning is the loose-schema output (nil when disabled).
	Partitioning *looseschema.Partitioning
	// AttributeProfiles back the partitioning (nil when disabled).
	AttributeProfiles []*looseschema.AttributeProfile
	// Raw, Purged, Filtered are the block collections after each stage.
	Raw, Purged, Filtered *blocking.Collection
	// Edges are the meta-blocking survivors (nil when disabled).
	Edges []metablocking.Edge
	// Candidates is the final candidate-pair set handed to the matcher.
	Candidates []blocking.Pair
}

// BlockingOptions exposes the exact key-generation options the blocker
// used, so lost-pair explanations tokenize identically.
func (r *BlockerResult) BlockingOptions(cfg Config) blocking.Options {
	return blocking.Options{Tokenizer: cfg.Tokenizer, Clustering: clusteringOrNil(r.Partitioning)}
}

func clusteringOrNil(p *looseschema.Partitioning) blocking.AttributeClustering {
	if p == nil {
		return nil
	}
	return p
}

// RunBlocker executes the blocker (Figure 4) on the collection.
func (p *Pipeline) RunBlocker(c *profile.Collection) (*BlockerResult, error) {
	cfg := p.Config
	res := &BlockerResult{}

	if cfg.LooseSchema {
		res.AttributeProfiles = looseschema.ExtractAttributeProfiles(c, cfg.Tokenizer)
		res.Partitioning = looseschema.PartitionAttributes(res.AttributeProfiles, c.IsClean(), looseschema.Options{
			Threshold: cfg.SchemaThreshold,
			Seed:      cfg.Seed,
			Tokenizer: cfg.Tokenizer,
		})
	}
	return p.RunBlockerWithPartitioning(c, res)
}

// RunBlockerWithPartitioning runs the blocker from an existing (possibly
// hand-edited) partitioning held in res — the supervised path where the
// user adjusted clusters in the debugger and wants everything downstream
// recomputed.
func (p *Pipeline) RunBlockerWithPartitioning(c *profile.Collection, res *BlockerResult) (*BlockerResult, error) {
	cfg := p.Config
	opts := blocking.Options{Tokenizer: cfg.Tokenizer, Clustering: clusteringOrNil(res.Partitioning)}

	var err error
	if p.Distributed() {
		res.Raw, err = blocking.DistributedTokenBlocking(p.ctx, c, opts, cfg.Partitions)
		if err != nil {
			return nil, err
		}
	} else {
		res.Raw = blocking.TokenBlocking(c, opts)
	}

	res.Purged = blocking.PurgeBySize(res.Raw, cfg.PurgeFactor)
	res.Filtered = blocking.Filter(res.Purged, cfg.FilterRatio)

	if !cfg.MetaBlocking {
		res.Candidates = res.Filtered.DistinctPairs()
		return res, nil
	}

	mbOpts := metablocking.Options{Scheme: cfg.Scheme, Pruning: cfg.Pruning}
	if cfg.UseEntropy {
		if res.Partitioning == nil {
			return nil, fmt.Errorf("core: UseEntropy requires LooseSchema")
		}
		mbOpts.Entropy = res.Partitioning
	}
	idx := blocking.BuildIndex(res.Filtered)
	if p.Distributed() {
		res.Edges, err = metablocking.RunDistributed(p.ctx, idx, mbOpts, cfg.Partitions)
		if err != nil {
			return nil, err
		}
	} else {
		res.Edges = metablocking.Run(idx, mbOpts)
	}
	res.Candidates = make([]blocking.Pair, len(res.Edges))
	for i, e := range res.Edges {
		res.Candidates[i] = blocking.Pair{A: e.A, B: e.B}
	}
	return res, nil
}

// Measure materialises the configured similarity measure; TF-IDF needs
// the collection for corpus statistics.
func (p *Pipeline) Measure(c *profile.Collection) (matching.Measure, error) {
	switch p.Config.Measure {
	case MeasureJaccard, "":
		return matching.JaccardMeasure(p.Config.Tokenizer), nil
	case MeasureDice:
		return matching.DiceMeasure(p.Config.Tokenizer), nil
	case MeasureCosineTFIDF:
		return matching.CosineMeasure(matching.NewTFIDF(c, p.Config.Tokenizer)), nil
	}
	return nil, fmt.Errorf("core: unknown measure %q", p.Config.Measure)
}

// RunMatcher scores the candidates and keeps pairs at or above the match
// threshold.
func (p *Pipeline) RunMatcher(c *profile.Collection, candidates []blocking.Pair) ([]matching.Match, error) {
	measure, err := p.Measure(c)
	if err != nil {
		return nil, err
	}
	if p.Distributed() {
		return matching.MatchPairsDistributed(p.ctx, c, candidates, measure, p.Config.MatchThreshold, p.Config.Partitions)
	}
	return matching.MatchPairs(c, candidates, measure, p.Config.MatchThreshold), nil
}

// RunClusterer groups the matching pairs into entities (Figure 5).
func (p *Pipeline) RunClusterer(matches []matching.Match) ([]clustering.Entity, error) {
	switch p.Config.Clusterer {
	case ClusterConnectedComponents, "":
		if p.Distributed() {
			return clustering.DistributedConnectedComponents(p.ctx, matches, p.Config.Partitions)
		}
		return clustering.ConnectedComponents(matches), nil
	case ClusterCenter:
		return clustering.CenterClustering(matches), nil
	case ClusterMergeCenter:
		return clustering.MergeCenterClustering(matches), nil
	case ClusterUniqueMapping:
		return clustering.UniqueMappingClustering(matches), nil
	}
	return nil, fmt.Errorf("core: unknown clusterer %q", p.Config.Clusterer)
}

// Result is the full pipeline output.
type Result struct {
	Blocker  *BlockerResult
	Matches  []matching.Match
	Entities []clustering.Entity
}

// Resolve runs the whole stack end to end.
func (p *Pipeline) Resolve(c *profile.Collection) (*Result, error) {
	blocker, err := p.RunBlocker(c)
	if err != nil {
		return nil, fmt.Errorf("core: blocker: %w", err)
	}
	matches, err := p.RunMatcher(c, blocker.Candidates)
	if err != nil {
		return nil, fmt.Errorf("core: matcher: %w", err)
	}
	entities, err := p.RunClusterer(matches)
	if err != nil {
		return nil, fmt.Errorf("core: clusterer: %w", err)
	}
	return &Result{Blocker: blocker, Matches: matches, Entities: entities}, nil
}

// StepReport is the per-stage quality table of the debug workflow.
type StepReport struct {
	Step    string
	Metrics evaluation.Metrics
}

// Evaluate scores every stage of a result against a ground truth:
// blocking candidates, matcher output, and the pairwise co-references of
// the final entities.
func (r *Result) Evaluate(c *profile.Collection, gt *evaluation.GroundTruth) []StepReport {
	maxCmp := c.MaxComparisons()
	var out []StepReport
	out = append(out, StepReport{
		Step:    "blocking",
		Metrics: evaluation.EvaluatePairs(r.Blocker.Candidates, gt, maxCmp),
	})
	out = append(out, StepReport{
		Step:    "matching",
		Metrics: evaluation.EvaluateMatches(r.Matches, gt, maxCmp),
	})
	out = append(out, StepReport{
		Step:    "clustering",
		Metrics: evaluation.EvaluateMatches(clustering.PairsOf(r.Entities), gt, maxCmp),
	})
	return out
}
