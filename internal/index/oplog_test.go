package index

// Op log and delta-snapshot coverage: stream replay equivalence (the
// replication contract), OpsSince/ApplyOps edge semantics, SaveDelta
// round trips and fallbacks, torn-tail crash recovery, and the
// concurrent upsert-during-delta-save battery run under -race in CI.

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"sparker/internal/profile"
)

// opLogConfig returns the default config with the op log enabled.
func opLogConfig() Config {
	cfg := DefaultConfig()
	cfg.OpLog.Enabled = true
	return cfg
}

// upsertAll feeds profiles through Upsert, failing the test on error.
func upsertAll(t testing.TB, x *Index, ps []profile.Profile) {
	t.Helper()
	for _, p := range ps {
		if _, _, err := x.Upsert(p); err != nil {
			t.Fatal(err)
		}
	}
}

// encodesEqual pins two indexes bitwise-identical at a fixed timestamp:
// the encode is deterministic, so equality here means every profile,
// posting list, counter and the sequence number agree exactly.
func encodesEqual(t *testing.T, what string, a, b *Index) {
	t.Helper()
	ea := encodeVersionToBytes(t, a, snapshotVersion)
	eb := encodeVersionToBytes(t, b, snapshotVersion)
	if !bytes.Equal(ea, eb) {
		t.Fatalf("%s: encodes differ (%d vs %d bytes)", what, len(ea), len(eb))
	}
}

// TestOpLogStreamReplay is the replication contract: a fresh follower
// replaying the leader's op stream (including replaces) converges to a
// bitwise-identical index, and keeps converging incrementally.
func TestOpLogStreamReplay(t *testing.T) {
	leader := New(true, opLogConfig())
	batch := synthQueryProfiles(30, 2, 3)
	upsertAll(t, leader, batch)
	// Replaces exercise remove-then-put replay and ID stability.
	upsertAll(t, leader, []profile.Profile{
		mkProfile("p3", "name", "replaced tok1 tok2"),
		mkProfile("p4", "name", "also replaced shared1"),
	})

	follower := New(true, opLogConfig())
	follower.SetReadOnly(true)

	frames, seq, err := leader.OpsSince(0, 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	if seq != leader.Seq() || seq != int64(len(batch))+2 {
		t.Fatalf("OpsSince seq = %d, want %d", seq, len(batch)+2)
	}
	applied, _, err := follower.ApplyOps(bytes.NewReader(frames))
	if err != nil {
		t.Fatal(err)
	}
	if int64(applied) != seq || follower.Seq() != seq {
		t.Fatalf("applied %d ops to seq %d, want %d", applied, follower.Seq(), seq)
	}
	encodesEqual(t, "full replay", leader, follower)

	// Incremental catch-up from a mid-stream position.
	upsertAll(t, leader, synthQueryProfiles(10, 2, 9)[5:])
	frames, seq, err = leader.OpsSince(follower.Seq(), 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := follower.ApplyOps(bytes.NewReader(frames)); err != nil {
		t.Fatal(err)
	}
	if follower.Seq() != seq {
		t.Fatalf("follower seq %d after catch-up, want %d", follower.Seq(), seq)
	}
	encodesEqual(t, "incremental replay", leader, follower)

	// The follower is still a real replica: reads work, writes don't.
	q := mkProfile("probe", "name", "tok1 tok2 shared1")
	if lr, fr := leader.Query(&q), follower.Query(&q); len(lr.Candidates) != len(fr.Candidates) {
		t.Fatalf("query answers diverge: %d vs %d candidates", len(lr.Candidates), len(fr.Candidates))
	}
	if _, _, err := follower.Upsert(mkProfile("nope", "name", "x")); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("read-only follower accepted an upsert: %v", err)
	}
}

// TestOpsSinceSemantics covers the caught-up, bounded, gapped and
// disabled answers of the delta source.
func TestOpsSinceSemantics(t *testing.T) {
	x := New(false, opLogConfig())
	upsertAll(t, x, synthQueryProfiles(8, 1, 5))

	if frames, seq, err := x.OpsSince(x.Seq(), 1<<20); err != nil || frames != nil || seq != x.Seq() {
		t.Fatalf("caught-up OpsSince = %d bytes, seq %d, err %v", len(frames), seq, err)
	}
	// A tiny byte budget still returns at least one frame, and chained
	// calls drain the backlog without gaps.
	var got int64
	for got < x.Seq() {
		frames, _, err := x.OpsSince(got, 1)
		if err != nil {
			t.Fatal(err)
		}
		n, _, err := countOpFrames(frames)
		if err != nil || n == 0 {
			t.Fatalf("bounded OpsSince returned %d frames: %v", n, err)
		}
		got += int64(n)
	}

	if _, _, err := x.OpsSince(x.Seq()+5, 1<<20); !errors.Is(err, ErrOpLogGap) {
		t.Fatalf("ahead-of-log OpsSince err = %v, want ErrOpLogGap", err)
	}

	// Evict the window: a follower at seq 0 must be told to resync.
	small := DefaultConfig()
	small.OpLog = OpLogConfig{Enabled: true, MaxOps: 4}
	y := New(false, small)
	upsertAll(t, y, synthQueryProfiles(12, 1, 5))
	if _, _, err := y.OpsSince(0, 1<<20); !errors.Is(err, ErrOpLogGap) {
		t.Fatalf("evicted-window OpsSince err = %v, want ErrOpLogGap", err)
	}
	if frames, _, err := y.OpsSince(y.Seq()-2, 1<<20); err != nil || len(frames) == 0 {
		t.Fatalf("in-window OpsSince = %d bytes, err %v", len(frames), err)
	}
	if st := y.Snapshot().OpLog; st == nil || st.Ops != 4 || st.FloorSeq != y.Seq()-3 {
		t.Fatalf("retention stats = %+v", st)
	}

	z := New(false, DefaultConfig())
	if _, _, err := z.OpsSince(0, 1<<20); !errors.Is(err, ErrOpLogDisabled) {
		t.Fatalf("disabled OpsSince err = %v, want ErrOpLogDisabled", err)
	}
	if z.OpLogEnabled() || z.OpNotify() != nil {
		t.Fatal("disabled op log reports enabled surfaces")
	}

	// The long-poll primitive: a channel fetched before an append is
	// closed by it.
	ch := x.OpNotify()
	select {
	case <-ch:
		t.Fatal("notify channel closed before any append")
	default:
	}
	upsertAll(t, x, []profile.Profile{mkProfile("wake", "name", "tok1")})
	select {
	case <-ch:
	default:
		t.Fatal("notify channel not closed by append")
	}
}

// countOpFrames walks concatenated frames, validating each.
func countOpFrames(frames []byte) (n int, lastSeq int64, err error) {
	br := bufio.NewReader(bytes.NewReader(frames))
	for {
		payload, err := readOpFrame(br)
		if err == io.EOF {
			return n, lastSeq, nil
		}
		if err != nil {
			return n, lastSeq, err
		}
		o, err := decodeOpPayload(payload, false)
		if err != nil {
			return n, lastSeq, err
		}
		n++
		lastSeq = o.seq
	}
}

// TestApplyOpsRejects covers the strict side of replay: corruption,
// sequence gaps and divergent replica state all stop the stream with an
// error and an exact applied count.
func TestApplyOpsRejects(t *testing.T) {
	leader := New(false, opLogConfig())
	upsertAll(t, leader, synthQueryProfiles(6, 1, 11))
	frames, _, err := leader.OpsSince(0, 1<<30)
	if err != nil {
		t.Fatal(err)
	}

	// Bit flip mid-stream: the CRC catches it; the valid prefix applies.
	flipped := append([]byte(nil), frames...)
	flipped[len(flipped)/2] ^= 0x20
	f := New(false, opLogConfig())
	applied, _, err := f.ApplyOps(bytes.NewReader(flipped))
	if err == nil {
		t.Fatal("corrupt op stream applied cleanly")
	}
	if int64(applied) != f.Seq() {
		t.Fatalf("applied count %d disagrees with seq %d", applied, f.Seq())
	}
	if f.Seq() >= leader.Seq() {
		t.Fatalf("corrupt stream fully applied (seq %d)", f.Seq())
	}

	// Sequence gap: a follower that missed ops must not silently skip.
	one, _, err := leader.OpsSince(leader.Seq()-1, 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	g := New(false, opLogConfig())
	if _, _, err := g.ApplyOps(bytes.NewReader(one)); err == nil {
		t.Fatal("out-of-sequence op applied cleanly")
	}

	// Divergence: a replica holding a conflicting identity→ID mapping
	// rejects the stream instead of corrupting posting lists.
	d := New(false, opLogConfig())
	upsertAll(t, d, []profile.Profile{mkProfile("divergent", "name", "tok1")})
	if _, _, err := d.ApplyOps(bytes.NewReader(frames)); err == nil {
		t.Fatal("divergent replica applied a conflicting stream")
	}
}

// TestSaveDeltaRoundTrip drives the delta lifecycle: full save, delta
// appends, restore, further deltas on the restored file, and compaction.
func TestSaveDeltaRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "idx.snap")
	cfg := opLogConfig()
	x := New(true, cfg)
	upsertAll(t, x, synthQueryProfiles(20, 2, 7))

	base, err := x.Save(path)
	if err != nil {
		t.Fatal(err)
	}
	if base.BaseSeq != 20 || base.Seq != 20 || base.DeltaOps != 0 {
		t.Fatalf("full-save state = %+v", base)
	}

	upsertAll(t, x, synthQueryProfiles(26, 2, 13)[20:])
	st, err := x.SaveDelta(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.BaseSeq != 20 || st.Seq != 26 || st.DeltaOps != 6 || st.DeltaBytes == 0 {
		t.Fatalf("delta-save state = %+v", st)
	}
	if st.Bytes != base.Bytes+st.DeltaBytes {
		t.Fatalf("bytes %d, want base %d + delta %d", st.Bytes, base.Bytes, st.DeltaBytes)
	}
	if fi, err := os.Stat(path); err != nil || fi.Size() != st.Bytes {
		t.Fatalf("file size %v, want %d (err %v)", fi, st.Bytes, err)
	}

	// A delta save with nothing new leaves the file and state alone.
	same, err := x.SaveDelta(path)
	if err != nil || same != st {
		t.Fatalf("idle delta save = %+v, err %v; want unchanged", same, err)
	}

	y, err := Load(path, cfg)
	if err != nil {
		t.Fatal(err)
	}
	encodesEqual(t, "base+delta restore", x, y)
	if yst, _ := y.PersistState(); yst.DeltaOps != 6 || yst.Seq != 26 || yst.BaseSeq != 20 {
		t.Fatalf("restored persist state = %+v", yst)
	}

	// The restored index can keep extending the same file: its op log
	// holds the replayed tail, and the size/seq bookkeeping lines up.
	upsertAll(t, y, []profile.Profile{mkProfile("extra", "name", "tok2 shared0")})
	yst, err := y.SaveDelta(path)
	if err != nil {
		t.Fatal(err)
	}
	if yst.Seq != 27 || yst.DeltaOps != 7 {
		t.Fatalf("restored-then-delta state = %+v", yst)
	}
	z, err := Load(path, cfg)
	if err != nil {
		t.Fatal(err)
	}
	encodesEqual(t, "restored chain", y, z)

	// Compaction: a full save folds the tail back into the image.
	upsertAll(t, y, []profile.Profile{mkProfile("extra2", "name", "tok3")})
	cst, err := y.Save(path)
	if err != nil {
		t.Fatal(err)
	}
	if cst.BaseSeq != 28 || cst.Seq != 28 || cst.DeltaOps != 0 || cst.DeltaBytes != 0 {
		t.Fatalf("compacted state = %+v", cst)
	}
	w, err := Load(path, cfg)
	if err != nil {
		t.Fatal(err)
	}
	encodesEqual(t, "compacted restore", y, w)
}

// TestSaveDeltaFallsBackToFull enumerates the conditions under which a
// delta append cannot be proven safe; each must produce a correct full
// save, never an error or a corrupt file.
func TestSaveDeltaFallsBackToFull(t *testing.T) {
	dir := t.TempDir()
	newLeader := func(cfg Config) *Index {
		x := New(true, cfg)
		upsertAll(t, x, synthQueryProfiles(10, 2, 7))
		return x
	}
	expectFull := func(name string, x *Index, path string) {
		t.Helper()
		st, err := x.SaveDelta(path)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if st.DeltaOps != 0 || st.BaseSeq != st.Seq || st.Seq != x.Seq() {
			t.Fatalf("%s: state %+v is not a full save", name, st)
		}
		y, err := Load(path, x.cfg)
		if err != nil {
			t.Fatalf("%s: reload: %v", name, err)
		}
		encodesEqual(t, name, x, y)
	}

	// Op log disabled: SaveDelta is Save.
	expectFull("oplog disabled", newLeader(DefaultConfig()), filepath.Join(dir, "plain.snap"))

	// Never saved: nothing to append to.
	expectFull("first save", newLeader(opLogConfig()), filepath.Join(dir, "first.snap"))

	// Saved to a different path: the recorded state describes another file.
	x := newLeader(opLogConfig())
	if _, err := x.Save(filepath.Join(dir, "a.snap")); err != nil {
		t.Fatal(err)
	}
	upsertAll(t, x, []profile.Profile{mkProfile("n1", "name", "tok1")})
	expectFull("path switch", x, filepath.Join(dir, "b.snap"))

	// File tampered with since the last save (size mismatch).
	p := filepath.Join(dir, "trunc.snap")
	y := newLeader(opLogConfig())
	if _, err := y.Save(p); err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(p, 10); err != nil {
		t.Fatal(err)
	}
	upsertAll(t, y, []profile.Profile{mkProfile("n2", "name", "tok1")})
	expectFull("size mismatch", y, p)

	// Retention gap: the ops since the last save were evicted.
	small := DefaultConfig()
	small.OpLog = OpLogConfig{Enabled: true, MaxOps: 3}
	z := New(true, small)
	upsertAll(t, z, synthQueryProfiles(6, 2, 7))
	gp := filepath.Join(dir, "gap.snap")
	if _, err := z.Save(gp); err != nil {
		t.Fatal(err)
	}
	upsertAll(t, z, synthQueryProfiles(12, 2, 19)[6:])
	expectFull("retention gap", z, gp)

	// Read-only replicas never save, delta or otherwise.
	z.SetReadOnly(true)
	if _, err := z.SaveDelta(gp); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("read-only SaveDelta err = %v, want ErrReadOnly", err)
	}
}

// TestDeltaTailRecovery is the crash-safety pin: a torn or bit-flipped
// delta tail loses only the frames at and past the damage — the base
// image and the valid prefix always restore.
func TestDeltaTailRecovery(t *testing.T) {
	path := filepath.Join(t.TempDir(), "idx.snap")
	cfg := opLogConfig()
	x := New(true, cfg)
	upsertAll(t, x, synthQueryProfiles(10, 2, 7))
	base, err := x.Save(path)
	if err != nil {
		t.Fatal(err)
	}
	upsertAll(t, x, synthQueryProfiles(16, 2, 23)[10:])
	st, err := x.SaveDelta(path)
	if err != nil {
		t.Fatal(err)
	}
	valid, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	restore := func(name string, b []byte) *Index {
		t.Helper()
		y, err := Decode(bytes.NewReader(b), cfg)
		if err != nil {
			t.Fatalf("%s: recovery failed outright: %v", name, err)
		}
		return y
	}

	// Crash mid-append: the file ends inside a frame.
	for _, cut := range []int64{1, 3, int64(st.DeltaBytes) / 2, int64(st.DeltaBytes) - 1} {
		y := restore("torn tail", valid[:base.Bytes+int64(st.DeltaBytes)-cut])
		if y.Seq() < base.Seq || y.Seq() >= st.Seq {
			t.Fatalf("cut %d: recovered seq %d outside [%d, %d)", cut, y.Seq(), base.Seq, st.Seq)
		}
	}

	// Bit flip inside the tail: the frame CRC stops replay there; every
	// op before the damage is recovered.
	flipped := append([]byte(nil), valid...)
	flipped[base.Bytes+st.DeltaBytes/2] ^= 0x04
	y := restore("bit-flipped tail", flipped)
	if y.Seq() < base.Seq || y.Seq() >= st.Seq {
		t.Fatalf("bit flip: recovered seq %d outside [%d, %d)", y.Seq(), base.Seq, st.Seq)
	}

	// The recovered prefix is exactly the leader's state at that seq:
	// cut precisely at the first frame boundary and compare against a
	// leader stopped at the same op.
	ref := New(true, cfg)
	upsertAll(t, ref, synthQueryProfiles(10, 2, 7))
	upsertAll(t, ref, synthQueryProfiles(16, 2, 23)[10:11])
	one, _, err := x.OpsSince(base.Seq, 1) // byte budget 1 → exactly one frame
	if err != nil {
		t.Fatal(err)
	}
	y = restore("exact prefix", valid[:base.Bytes+int64(len(one))])
	if y.Seq() != base.Seq+1 {
		t.Fatalf("exact prefix recovered seq %d, want %d", y.Seq(), base.Seq+1)
	}
	encodesEqual(t, "exact prefix", ref, y)
}

// TestConcurrentUpsertDuringSaveDelta is the -race battery: writers
// hammer the index while delta and full saves interleave on the same
// file, then the final file must restore bitwise-identical to the live
// index — the equivalence full-save+replay(deltas) == direct full save.
func TestConcurrentUpsertDuringSaveDelta(t *testing.T) {
	path := filepath.Join(t.TempDir(), "idx.snap")
	cfg := opLogConfig()
	x := New(true, cfg)
	upsertAll(t, x, synthQueryProfiles(40, 2, 7))
	if _, err := x.Save(path); err != nil {
		t.Fatal(err)
	}

	const writers, perWriter = 4, 30
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ps := synthQueryProfiles(perWriter, 2, uint64(100+w))
			for i, p := range ps {
				p.OriginalID = p.OriginalID + "w" + string(rune('a'+w))
				if _, _, err := x.Upsert(p); err != nil {
					t.Errorf("writer %d upsert %d: %v", w, i, err)
					return
				}
			}
		}(w)
	}
	saveDone := make(chan struct{})
	go func() {
		defer close(saveDone)
		for i := 0; i < 20; i++ {
			var err error
			if i%5 == 4 {
				_, err = x.Save(path) // periodic compaction in the mix
			} else {
				_, err = x.SaveDelta(path)
			}
			if err != nil {
				t.Errorf("save %d: %v", i, err)
				return
			}
		}
	}()
	wg.Wait()
	<-saveDone
	if t.Failed() {
		t.FailNow()
	}

	// Quiesced: one final delta covers everything, and the file restores
	// to the exact live state.
	st, err := x.SaveDelta(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Seq != x.Seq() {
		t.Fatalf("final delta seq %d, want %d", st.Seq, x.Seq())
	}
	y, err := Load(path, cfg)
	if err != nil {
		t.Fatal(err)
	}
	encodesEqual(t, "concurrent battery", x, y)

	// And the same state reached by pure full save agrees too.
	fullPath := filepath.Join(t.TempDir(), "full.snap")
	if _, err := x.Save(fullPath); err != nil {
		t.Fatal(err)
	}
	z, err := Load(fullPath, cfg)
	if err != nil {
		t.Fatal(err)
	}
	encodesEqual(t, "delta vs full", y, z)
}
