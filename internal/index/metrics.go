package index

import (
	"sparker/internal/obs"
)

// Stage identifies one timed stage of the online query path. The stages
// are contiguous: a query's StageNanos slots sum to its wall time, so
// the per-stage histograms decompose the query latency histogram
// exactly — the telemetry the paper's cost analysis (candidate
// generation vs pruning vs scoring) needs per request instead of per
// batch run.
type Stage int

const (
	// StageTokenize covers blocking-key derivation from the query profile.
	StageTokenize Stage = iota
	// StagePurgeFilter covers the posting size probe, online block
	// purging and block filtering (pass 1).
	StagePurgeFilter
	// StageCandidates covers the token posting scans accumulating
	// co-occurrence statistics (pass 2, candidate generation).
	StageCandidates
	// StageLSHProbe covers MinHash signature derivation and the bucket
	// walk (pass 3; only queries that actually probed observe into it).
	StageLSHProbe
	// StageWeigh covers scheme weighting and candidate ranking.
	StageWeigh
	// StagePrune covers the pruning rule.
	StagePrune
	// StageScore covers Resolve's similarity scoring of the surviving
	// candidates.
	StageScore

	// NumStages sizes per-stage arrays.
	NumStages = int(StageScore) + 1
)

// String names the stage for /stats rows, /metrics labels and ?debug=1.
func (s Stage) String() string {
	switch s {
	case StageTokenize:
		return "tokenize"
	case StagePurgeFilter:
		return "purge_filter"
	case StageCandidates:
		return "candidates"
	case StageLSHProbe:
		return "lsh_probe"
	case StageWeigh:
		return "weigh"
	case StagePrune:
		return "prune"
	case StageScore:
		return "score"
	}
	return "unknown"
}

// Metrics is the observability core of one index: per-stage latency
// histograms plus operation-level histograms and gauges, all atomic and
// allocation-free on the hot path (see internal/obs). Enabled by
// default; Config.DisableMetrics turns it off wholesale, which is what
// the instrumented-vs-bare benchmark pair measures the overhead with.
type Metrics struct {
	// Stages holds one latency histogram (nanoseconds) per query stage.
	// Every query observes into tokenize..prune; only probing queries
	// observe into lsh_probe, and only Resolve calls into score.
	Stages [NumStages]obs.Histogram
	// Query is the whole candidate-generation latency (sum of the
	// tokenize..prune stages); Resolve adds scoring on top.
	Query   obs.Histogram
	Resolve obs.Histogram
	// Upsert is the write-path latency (key/signature derivation plus
	// posting updates), successful upserts only.
	Upsert obs.Histogram
	// Save and Load time durable-snapshot encodes and restores;
	// SaveDelta times op-frame appends (persist.go), the O(ops) save
	// path — the gap between Save and SaveDelta is what delta snapshots
	// buy.
	Save      obs.Histogram
	SaveDelta obs.Histogram
	Load      obs.Histogram
	// WALAppend times one durable-log append (frame write plus, under
	// WALSyncAlways, its fsync) — the write-path latency the fsync
	// policy choice trades against durability (wal.go).
	WALAppend obs.Histogram
	// Comparisons counts candidates actually scored per Resolve — the
	// per-query matcher work the comparison-budget work needs to see.
	Comparisons obs.Histogram
	// Candidates counts ranked candidates returned per query (after
	// pruning).
	Candidates obs.Histogram
	// SnapshotBytes is the encoded size of the last successful Save.
	SnapshotBytes obs.Gauge
}

// Metrics returns the index's metrics core, or nil when
// Config.DisableMetrics turned instrumentation off.
func (x *Index) Metrics() *Metrics { return x.metrics }

// TimingStats is one row of Snapshot.Timings: a latency histogram
// summarised for the JSON /stats surface. Quantiles are log2-bucket
// upper bounds — at most 2x above the true value.
type TimingStats struct {
	Stage   string  `json:"stage"`
	Count   uint64  `json:"count"`
	TotalMs float64 `json:"total_ms"`
	P50Ms   float64 `json:"p50_ms"`
	P99Ms   float64 `json:"p99_ms"`
}

// timingRows summarises every histogram for Snapshot: the seven query
// stages first, then the operation-level totals. The row set is fixed
// so the JSON shape is stable from the first scrape.
func (m *Metrics) timingRows() []TimingStats {
	rows := make([]TimingStats, 0, NumStages+7)
	for s := Stage(0); int(s) < NumStages; s++ {
		rows = append(rows, timingRow(s.String(), &m.Stages[s]))
	}
	rows = append(rows,
		timingRow("query_total", &m.Query),
		timingRow("resolve_total", &m.Resolve),
		timingRow("upsert", &m.Upsert),
		timingRow("snapshot_save", &m.Save),
		timingRow("snapshot_save_delta", &m.SaveDelta),
		timingRow("snapshot_load", &m.Load),
		timingRow("wal_append", &m.WALAppend),
	)
	return rows
}

func timingRow(name string, h *obs.Histogram) TimingStats {
	s := h.Snapshot()
	return TimingStats{
		Stage:   name,
		Count:   s.Count,
		TotalMs: float64(s.Sum) / 1e6,
		P50Ms:   s.Quantile(0.5) / 1e6,
		P99Ms:   s.Quantile(0.99) / 1e6,
	}
}
