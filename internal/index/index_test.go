package index

import (
	"fmt"
	"strings"
	"testing"

	"sparker/internal/blocking"
	"sparker/internal/datagen"
	"sparker/internal/evaluation"
	"sparker/internal/metablocking"
	"sparker/internal/profile"
)

// mkProfile builds a test profile from key/value pairs.
func mkProfile(id string, kvs ...string) profile.Profile {
	p := profile.Profile{OriginalID: id}
	for i := 0; i+1 < len(kvs); i += 2 {
		p.Add(kvs[i], kvs[i+1])
	}
	return p
}

// testCollection is a tiny clean-clean catalog with one obvious match per
// source-A profile.
func testCollection() *profile.Collection {
	a := []profile.Profile{
		mkProfile("a1", "name", "acme turboblend blender", "price", "89.99"),
		mkProfile("a2", "name", "zenix soundwave speaker", "price", "49.99"),
		mkProfile("a3", "name", "quietcool desk fan", "price", "29.99"),
	}
	b := []profile.Profile{
		mkProfile("b1", "title", "turboblend blender by acme"),
		mkProfile("b2", "title", "zenix soundwave portable speaker"),
		mkProfile("b3", "title", "luxor desk lamp"),
	}
	return profile.NewCleanClean(a, b)
}

func TestQueryFindsDuplicate(t *testing.T) {
	c := testCollection()
	x, err := NewFromCollection(c, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	q := c.Get(0) // a1: acme turboblend blender
	res := x.Query(q)
	if len(res.Candidates) == 0 {
		t.Fatal("no candidates")
	}
	if res.Candidates[0].ID != 3 { // b1
		t.Fatalf("top candidate = %d, want 3 (b1)", res.Candidates[0].ID)
	}
	if res.PostingsScanned >= c.Size()*res.Keys {
		t.Fatalf("postings scanned %d not bounded by candidate blocks", res.PostingsScanned)
	}
	// Clean-clean: candidates must come from the opposite source only.
	for _, cand := range res.Candidates {
		if cand.ID < 3 {
			t.Fatalf("candidate %d from the query's own source", cand.ID)
		}
	}
}

func TestQueryMatchesBatchBlocking(t *testing.T) {
	// With purging, filtering and pruning disabled, the index's candidate
	// set for a profile must equal the batch token-blocking candidate set.
	c := testCollection()
	cfg := DefaultConfig()
	cfg.MaxBlockFraction = 1
	cfg.FilterRatio = 1
	cfg.Prune = PruneNone
	x, err := NewFromCollection(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	batch := blocking.TokenBlocking(c, blocking.Options{}).DistinctPairs()
	for id := profile.ID(0); int(id) < c.Size(); id++ {
		want := map[profile.ID]bool{}
		for _, pr := range batch {
			if pr.A == id {
				want[pr.B] = true
			}
			if pr.B == id {
				want[pr.A] = true
			}
		}
		got := map[profile.ID]bool{}
		for _, cand := range x.Query(c.Get(id)).Candidates {
			got[cand.ID] = true
		}
		if len(got) != len(want) {
			t.Fatalf("profile %d: got %v candidates, batch blocking has %v", id, got, want)
		}
		for w := range want {
			if !got[w] {
				t.Fatalf("profile %d: candidate %d missing from index query", id, w)
			}
		}
	}
}

func TestUpsertInsertAndReplace(t *testing.T) {
	x := New(true, DefaultConfig())
	id1, created, err := x.Upsert(mkProfile("a1", "name", "acme blender"))
	if err != nil || !created {
		t.Fatalf("insert: id=%d created=%v err=%v", id1, created, err)
	}
	p2 := mkProfile("b1", "title", "acme blender deluxe")
	p2.SourceID = 1
	id2, created, err := x.Upsert(p2)
	if err != nil || !created {
		t.Fatalf("insert b: %v", err)
	}
	q := mkProfile("probe", "name", "acme blender")
	res := x.Query(&q)
	if len(res.Candidates) != 1 || res.Candidates[0].ID != id2 {
		t.Fatalf("candidates = %+v, want just %d", res.Candidates, id2)
	}

	// Replace b1 so it no longer shares tokens with the probe.
	p2r := mkProfile("b1", "title", "luxor lamp")
	p2r.SourceID = 1
	id2r, created, err := x.Upsert(p2r)
	if err != nil || created || id2r != id2 {
		t.Fatalf("replace: id=%d created=%v err=%v", id2r, created, err)
	}
	if res := x.Query(&q); len(res.Candidates) != 0 {
		t.Fatalf("stale candidates after replace: %+v", res.Candidates)
	}
	// The new tokens are queryable.
	q2 := mkProfile("probe2", "name", "luxor lamp")
	if res := x.Query(&q2); len(res.Candidates) != 1 || res.Candidates[0].ID != id2 {
		t.Fatalf("replacement not indexed: %+v", res.Candidates)
	}
	if x.Size() != 2 {
		t.Fatalf("size = %d, want 2", x.Size())
	}
}

func TestUpsertRejectsBadSource(t *testing.T) {
	x := New(true, DefaultConfig())
	p := mkProfile("z", "name", "thing")
	p.SourceID = 2
	if _, _, err := x.Upsert(p); err == nil {
		t.Fatal("expected error for SourceID 2 on clean-clean index")
	}
}

func TestDirtyQueryExcludesSelf(t *testing.T) {
	ps := []profile.Profile{
		mkProfile("d1", "name", "acme blender"),
		mkProfile("d2", "name", "acme blender deluxe"),
		mkProfile("d3", "name", "zenix speaker"),
	}
	c := profile.NewDirty(ps)
	x, err := NewFromCollection(c, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	res := x.Query(c.Get(0))
	for _, cand := range res.Candidates {
		if cand.ID == 0 {
			t.Fatal("query returned the profile itself")
		}
	}
	if len(res.Candidates) != 1 || res.Candidates[0].ID != 1 {
		t.Fatalf("candidates = %+v, want just d2", res.Candidates)
	}

	// A query profile carrying a stray SourceID must be normalized the
	// way Upsert normalizes, or self-exclusion breaks.
	stray := *c.Get(0)
	stray.SourceID = 1
	for _, cand := range x.Query(&stray).Candidates {
		if cand.ID == 0 {
			t.Fatal("stray SourceID broke self-exclusion")
		}
	}
}

func TestOversizedPostingsPurged(t *testing.T) {
	// "widget" appears in every profile: with the default 0.5 fraction its
	// posting must be skipped, like batch block purging would.
	var ps []profile.Profile
	for i := 0; i < 10; i++ {
		ps = append(ps, mkProfile(
			strings.Repeat("x", i+1), // distinct IDs
			"name", "widget item"+strings.Repeat("z", i)))
	}
	c := profile.NewDirty(ps)
	x, err := NewFromCollection(c, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	q := mkProfile("probe", "name", "widget")
	res := x.Query(&q)
	if res.BlocksPurged != 1 {
		t.Fatalf("blocks purged = %d, want 1", res.BlocksPurged)
	}
	if len(res.Candidates) != 0 {
		t.Fatalf("stop-token query returned %d candidates", len(res.Candidates))
	}
}

func TestFilterSkipsLeastDistinctivePostings(t *testing.T) {
	// The query hits four singleton postings and one posting shared by
	// every profile; FilterRatio 0.8 must drop the big one, so the noise
	// profiles never become candidates.
	cfg := DefaultConfig()
	cfg.MaxBlockFraction = 1 // isolate filtering from purging
	cfg.Prune = PruneNone
	x := New(false, cfg)
	if _, _, err := x.Upsert(mkProfile("target", "name", "alpha beta gamma delta common")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 9; i++ {
		if _, _, err := x.Upsert(mkProfile(fmt.Sprintf("noise%d", i), "name", fmt.Sprintf("common pad%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	q := mkProfile("probe", "name", "alpha beta gamma delta common")
	res := x.Query(&q)
	if res.BlocksFiltered != 1 {
		t.Fatalf("blocks filtered = %d, want 1", res.BlocksFiltered)
	}
	if len(res.Candidates) != 1 || res.Candidates[0].SharedKeys != 4 {
		t.Fatalf("candidates = %+v, want just the target via 4 keys", res.Candidates)
	}
}

func TestPruneTopK(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Prune = PruneTopK
	cfg.MaxCandidates = 2
	cfg.MaxBlockFraction = 1 // keep the shared "alpha" posting probeable
	x := New(false, cfg)
	for _, name := range []string{"alpha beta", "alpha beta gamma", "alpha", "alpha beta gamma delta"} {
		if _, _, err := x.Upsert(mkProfile(name, "name", name)); err != nil {
			t.Fatal(err)
		}
	}
	q := mkProfile("probe", "name", "alpha beta gamma delta epsilon")
	res := x.Query(&q)
	if len(res.Candidates) != 2 {
		t.Fatalf("top-k kept %d, want 2", len(res.Candidates))
	}
	if res.Candidates[0].Weight < res.Candidates[1].Weight {
		t.Fatal("candidates not ranked by weight")
	}
	if res.Pruned != 2 {
		t.Fatalf("pruned = %d, want 2", res.Pruned)
	}
}

func TestPruneMean(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Prune = PruneMean
	cfg.MaxBlockFraction = 1
	x := New(false, cfg)
	for _, name := range []string{"alpha beta gamma delta", "alpha", "beta"} {
		if _, _, err := x.Upsert(mkProfile(name, "name", name)); err != nil {
			t.Fatal(err)
		}
	}
	// Weights: first profile shares 4 keys, the others 1 each; the mean
	// (2) keeps only the heavy neighbour, like WNP would.
	q := mkProfile("probe", "name", "alpha beta gamma delta")
	res := x.Query(&q)
	if len(res.Candidates) != 1 || res.Candidates[0].SharedKeys != 4 {
		t.Fatalf("mean pruning kept %+v", res.Candidates)
	}
	if res.Pruned != 2 {
		t.Fatalf("pruned = %d, want 2", res.Pruned)
	}
}

func TestWeightSchemes(t *testing.T) {
	for _, scheme := range []metablocking.Scheme{
		metablocking.CBS, metablocking.ECBS, metablocking.JS, metablocking.ARCS,
	} {
		cfg := DefaultConfig()
		cfg.Scheme = scheme
		cfg.Prune = PruneNone
		c := testCollection()
		x, err := NewFromCollection(c, cfg)
		if err != nil {
			t.Fatal(err)
		}
		res := x.Query(c.Get(1)) // a2: zenix soundwave speaker
		if len(res.Candidates) == 0 {
			t.Fatalf("%v: no candidates", scheme)
		}
		if res.Candidates[0].ID != 4 { // b2
			t.Fatalf("%v: top candidate = %d, want 4", scheme, res.Candidates[0].ID)
		}
		if res.Candidates[0].Weight <= 0 {
			t.Fatalf("%v: non-positive weight", scheme)
		}
	}
}

func TestECBSWeightsSurviveNovelTokens(t *testing.T) {
	// The query carries many tokens with no posting; only the live ones
	// may count as its block set, otherwise LogRatio(numBlocks, keys)
	// clamps to zero and every ECBS weight collapses.
	cfg := DefaultConfig()
	cfg.Scheme = metablocking.ECBS
	cfg.Prune = PruneNone
	x := New(false, cfg)
	for _, name := range []string{"alpha beta", "alpha", "gamma delta"} {
		if _, _, err := x.Upsert(mkProfile(name, "name", name)); err != nil {
			t.Fatal(err)
		}
	}
	q := mkProfile("probe", "name",
		"alpha beta nova1 nova2 nova3 nova4 nova5 nova6 nova7 nova8")
	res := x.Query(&q)
	if len(res.Candidates) != 2 {
		t.Fatalf("candidates = %+v, want 2", res.Candidates)
	}
	for _, c := range res.Candidates {
		if c.Weight <= 0 {
			t.Fatalf("ECBS weight collapsed to %v for candidate %d", c.Weight, c.ID)
		}
	}
}

func TestResolveAndReport(t *testing.T) {
	c := testCollection()
	x, err := NewFromCollection(c, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	q := c.Get(0)
	r := x.Resolve(q)
	if len(r.Matches) == 0 {
		t.Fatal("no matches")
	}
	if r.Matches[0].B != 3 {
		t.Fatalf("top match = %d, want 3 (b1)", r.Matches[0].B)
	}
	if r.Comparisons != len(r.Query.Candidates) {
		t.Fatalf("comparisons = %d, candidates = %d", r.Comparisons, len(r.Query.Candidates))
	}
	gt := evaluation.NewGroundTruth([]blocking.Pair{{A: 0, B: 3}})
	reports := r.Report(q.ID, gt, c.MaxComparisons())
	if len(reports) != 2 {
		t.Fatalf("reports = %d, want 2", len(reports))
	}
	if reports[1].Step != "index-matching" || reports[1].Metrics.Recall != 1 {
		t.Fatalf("matching report = %+v", reports[1])
	}
}

func TestQueryComparisonsBounded(t *testing.T) {
	// On a realistic synthetic collection, per-query matcher work must
	// stay bounded by the candidate blocks — far below the collection
	// size the batch pipeline would rescan.
	c := datagen.Generate(datagen.AbtBuy()).Collection
	x, err := NewFromCollection(c, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var comparisons, found int
	for i := 0; i < 100; i++ {
		r := x.Resolve(c.Get(profile.ID(i)))
		comparisons += r.Comparisons
		if len(r.Matches) > 0 {
			found++
		}
	}
	avg := float64(comparisons) / 100
	if avg > float64(c.Size())/10 {
		t.Fatalf("avg comparisons/query = %.1f, not orders below %d profiles", avg, c.Size())
	}
	if found < 50 {
		t.Fatalf("only %d/100 queries produced a match", found)
	}
}

func TestSnapshot(t *testing.T) {
	c := testCollection()
	x, err := NewFromCollection(c, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	x.Query(c.Get(0))
	if _, _, err := x.Upsert(mkProfile("a9", "name", "brand new gadget")); err != nil {
		t.Fatal(err)
	}
	s := x.Snapshot()
	if s.Profiles != 7 {
		t.Fatalf("profiles = %d, want 7", s.Profiles)
	}
	if s.Blocks == 0 || s.Assignments == 0 || s.MaxBlockSize == 0 {
		t.Fatalf("empty block stats: %+v", s)
	}
	if s.Queries != 1 || s.Upserts != 1 {
		t.Fatalf("counters = %d/%d, want 1/1", s.Queries, s.Upserts)
	}
	if s.Shards != 16 {
		t.Fatalf("shards = %d, want 16", s.Shards)
	}
}

func TestMetaAndGet(t *testing.T) {
	c := testCollection()
	x, err := NewFromCollection(c, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	orig, src, ok := x.Meta(3)
	if !ok || orig != "b1" || src != 1 {
		t.Fatalf("Meta(3) = %q/%d/%v", orig, src, ok)
	}
	if _, _, ok := x.Meta(99); ok {
		t.Fatal("Meta(99) should miss")
	}
	// Get's copy must be isolated from the stored profile.
	p, ok := x.Get(0)
	if !ok {
		t.Fatal("Get(0) missed")
	}
	p.Attributes[0].Value = "mutated"
	if got, _ := x.Get(0); got.Attributes[0].Value == "mutated" {
		t.Fatal("Get returned a view into the stored profile")
	}
}
