package index

// Snapshot is a consistent point-in-time summary of the index, the
// online analogue of blocking.Stats plus serving counters.
type Snapshot struct {
	// Shards is the configured shard count.
	Shards int `json:"shards"`
	// Profiles is the number of indexed profiles.
	Profiles int `json:"profiles"`
	// Blocks is the number of live postings (distinct blocking keys).
	Blocks int `json:"blocks"`
	// Assignments is the total number of profile→posting placements.
	Assignments int64 `json:"assignments"`
	// MaxBlockSize is the largest posting.
	MaxBlockSize int `json:"max_block_size"`
	// AvgBlockSize is Assignments/Blocks.
	AvgBlockSize float64 `json:"avg_block_size"`
	// Queries and Upserts count operations served since construction
	// (profiles indexed at construction do not count as upserts; /bulk
	// loads do). Both survive a snapshot save/load cycle.
	Queries int64 `json:"queries"`
	Upserts int64 `json:"upserts"`
	// ReadOnly reports replica mode: the index rejects Upserts.
	ReadOnly bool `json:"read_only"`
	// Seq is the sequence number of the last applied write — the
	// replication clock followers track (oplog.go).
	Seq int64 `json:"seq"`
	// OpLog summarises the retained op window, or nil when the op log
	// is disabled.
	OpLog *OpLogStats `json:"oplog,omitempty"`
	// WAL summarises the durable op log, or nil when none is attached
	// (wal.go).
	WAL *WALStats `json:"wal,omitempty"`
	// Persist describes the durable-snapshot state (last save / restore
	// source), or nil when the index has never been saved or restored.
	Persist *PersistState `json:"persist,omitempty"`
	// LSH describes the probe subsystem (bucket count, probe counters),
	// or nil when LSH is disabled.
	LSH *LSHStats `json:"lsh,omitempty"`
	// Timings summarises the per-stage and per-operation latency
	// histograms (metrics.go): one row per query stage, then the
	// operation totals. Nil when Config.DisableMetrics turned
	// instrumentation off. The full histograms are exposed in Prometheus
	// form by the serving layer's /metrics endpoint; these rows are the
	// JSON digest of the same data.
	Timings []TimingStats `json:"timings,omitempty"`
}

// Snapshot summarises the index. It takes the writer lock, so the totals
// are consistent with each other (no upsert is half-applied in them).
func (x *Index) Snapshot() Snapshot {
	x.writeMu.Lock()
	defer x.writeMu.Unlock()

	s := Snapshot{
		Shards:   len(x.shards),
		Profiles: int(x.numProfiles.Load()),
		Queries:  x.queries.Load(),
		Upserts:  x.upserts.Load(),
		ReadOnly: x.readOnly.Load(),
		Seq:      x.seq.Load(),
	}
	if st, ok := x.PersistState(); ok {
		s.Persist = &st
	}
	if x.oplog != nil {
		st := x.oplog.stats()
		s.OpLog = &st
	}
	if x.wal != nil {
		st := x.wal.stats()
		s.WAL = &st
	}
	if x.lshOn() {
		s.LSH = &LSHStats{
			Policy:              x.cfg.LSH.Policy.String(),
			SignatureLen:        x.cfg.LSH.SignatureLen,
			Bands:               x.lsh.bands,
			Rows:                x.lsh.rows,
			Buckets:             int(x.numBuckets.Load()),
			Probes:              x.lshProbes.Load(),
			ProbeOnlyCandidates: x.lshOnly.Load(),
		}
		if s.Queries > 0 {
			s.LSH.FallbackRate = float64(s.LSH.Probes) / float64(s.Queries)
		}
	}
	if x.metrics != nil {
		s.Timings = x.metrics.timingRows()
	}
	for _, sh := range x.shards {
		sh.mu.RLock()
		s.Blocks += len(sh.postings)
		for _, pl := range sh.postings {
			n := pl.size()
			s.Assignments += int64(n)
			if n > s.MaxBlockSize {
				s.MaxBlockSize = n
			}
		}
		sh.mu.RUnlock()
	}
	if s.Blocks > 0 {
		s.AvgBlockSize = float64(s.Assignments) / float64(s.Blocks)
	}
	return s
}
