package index

import (
	"fmt"
	"math"
	"sort"
	"testing"

	"sparker/internal/matching"
	"sparker/internal/metablocking"
	"sparker/internal/profile"
)

// This file retains the pre-flat-kernel map-based candidate accumulator
// as a reference and proves the query hot path's dense scratch is an
// exact drop-in: candidate sets, order, and weights must be
// bitwise-identical for every scheme × prune rule × task type, with and
// without entropy weighting.

// refCandidates replicates Query on the historical map accumulator path.
func refCandidates(x *Index, p *profile.Profile) []Candidate {
	if !x.clean && p.SourceID != 0 {
		q := *p
		q.SourceID = 0
		p = &q
	}
	keys := x.opts.KeysOf(p)

	selfID := profile.ID(-1)
	if id, ok := x.lookupOrig(origKey(p)); ok {
		selfID = id
	}
	maxSize := int(x.cfg.MaxBlockFraction * float64(x.numProfiles.Load()))
	if maxSize < 2 {
		maxSize = 2
	}

	type probe struct {
		key  string
		sh   *shard
		size int
	}
	probes := make([]probe, 0, len(keys))
	for _, kt := range keys {
		s := x.shardFor(kt.Key)
		s.mu.RLock()
		pl := s.postings[kt.Key]
		sz := 0
		if pl != nil {
			sz = pl.size()
		}
		s.mu.RUnlock()
		if pl == nil || sz > maxSize {
			continue
		}
		probes = append(probes, probe{key: kt.Key, sh: s, size: sz})
	}
	liveKeys := len(probes)
	if x.cfg.FilterRatio < 1 && len(probes) > 0 {
		sort.SliceStable(probes, func(i, j int) bool {
			if probes[i].size != probes[j].size {
				return probes[i].size < probes[j].size
			}
			return probes[i].key < probes[j].key
		})
		keep := int(math.Ceil(x.cfg.FilterRatio * float64(len(probes))))
		if keep < 1 {
			keep = 1
		}
		probes = probes[:keep]
	}

	acc := make(map[profile.ID]candAcc)
	useEntropy := x.cfg.Entropy != nil
	for _, pr := range probes {
		s := pr.sh
		s.mu.RLock()
		pl := s.postings[pr.key]
		if pl == nil {
			s.mu.RUnlock()
			continue
		}
		entropy := 1.0
		if useEntropy {
			entropy = x.cfg.Entropy.EntropyOf(pl.cluster)
		}
		card := pl.comparisons(x.clean)
		visit := func(ids []profile.ID) {
			for _, id := range ids {
				if id == selfID {
					continue
				}
				a := acc[id]
				a.cbs++
				a.arcs += 1 / card
				a.entropySum += entropy
				a.entArcs += entropy / card
				acc[id] = a
			}
		}
		if x.clean {
			if p.SourceID == 1 {
				visit(pl.a)
			} else {
				visit(pl.b)
			}
		} else {
			visit(pl.a)
		}
		s.mu.RUnlock()
	}

	numBlocks := float64(x.numBlocks.Load())
	needsCandKeys := false
	switch x.cfg.Scheme {
	case metablocking.ECBS, metablocking.JS, metablocking.EJS:
		needsCandKeys = true
	}
	out := make([]Candidate, 0, len(acc))
	for id, a := range acc {
		a := a
		candKeys := 0
		if needsCandKeys {
			if sp := x.byID[id]; sp != nil {
				candKeys = len(sp.keys)
			}
		}
		out = append(out, Candidate{ID: id, Weight: x.weight(&a, liveKeys, candKeys, numBlocks), SharedKeys: a.cbs})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Weight != out[j].Weight {
			return out[i].Weight > out[j].Weight
		}
		return out[i].ID < out[j].ID
	})
	res := &QueryResult{Candidates: out}
	x.prune(res)
	return res.Candidates
}

// lenClustering assigns attribute clusters by name length, giving the
// entropy path varied cluster IDs without a full loose-schema run.
type lenClustering struct{}

func (lenClustering) ClusterOf(_ int, attribute string) int { return len(attribute) % 3 }

type rampEntropy struct{}

func (rampEntropy) EntropyOf(cluster int) float64 { return 0.25 + 0.4*float64(cluster+2) }

// synthQueryProfiles builds overlapping-token profiles across sources.
func synthQueryProfiles(n, sources int, seed uint64) []profile.Profile {
	next := seed*2654435761 + 1
	rnd := func(mod int) int {
		next = next*6364136223846793005 + 1442695040888963407
		return int((next >> 33) % uint64(mod))
	}
	out := make([]profile.Profile, 0, n)
	for i := 0; i < n; i++ {
		p := profile.Profile{OriginalID: fmt.Sprintf("p%d", i), SourceID: i % sources}
		name := fmt.Sprintf("tok%d tok%d shared%d", rnd(12), rnd(12), rnd(4))
		p.Add("name", name)
		p.Add("desc", fmt.Sprintf("word%d common", rnd(8)))
		out = append(out, p)
	}
	return out
}

func TestQueryMatchesMapReference(t *testing.T) {
	for _, clean := range []bool{false, true} {
		sources := 1
		if clean {
			sources = 2
		}
		for _, useEntropy := range []bool{false, true} {
			for _, scheme := range []metablocking.Scheme{metablocking.CBS, metablocking.ECBS, metablocking.JS, metablocking.ARCS} {
				for _, rule := range []PruneRule{PruneTopK, PruneMean, PruneNone} {
					cfg := DefaultConfig()
					cfg.Scheme = scheme
					cfg.Prune = rule
					if useEntropy {
						cfg.Clustering = lenClustering{}
						cfg.Entropy = rampEntropy{}
					}
					x := New(clean, cfg)
					for _, p := range synthQueryProfiles(60, sources, 5) {
						if _, _, err := x.Upsert(p); err != nil {
							t.Fatal(err)
						}
					}
					label := fmt.Sprintf("clean=%v entropy=%v %v/%v", clean, useEntropy, scheme, rule)
					for _, p := range synthQueryProfiles(60, sources, 5) {
						p := p
						want := refCandidates(x, &p)
						got := x.Query(&p).Candidates
						if len(want) != len(got) {
							t.Fatalf("%s query %s: %d candidates, reference %d", label, p.OriginalID, len(got), len(want))
						}
						for i := range want {
							if want[i].ID != got[i].ID || want[i].SharedKeys != got[i].SharedKeys ||
								math.Float64bits(want[i].Weight) != math.Float64bits(got[i].Weight) {
								t.Fatalf("%s query %s candidate %d: %+v vs reference %+v",
									label, p.OriginalID, i, got[i], want[i])
							}
						}
					}
				}
			}
		}
	}
}

// TestResolveFastPathMatchesJaccardMeasure proves the cached-bag scorer
// is bitwise-identical to the generic matching.JaccardMeasure path.
func TestResolveFastPathMatchesJaccardMeasure(t *testing.T) {
	fastCfg := DefaultConfig() // Measure nil: fast path
	slowCfg := DefaultConfig()
	slowCfg.Measure = matching.JaccardMeasure(slowCfg.Tokenizer)
	slowCfg.MatchThreshold = -1 // keep every scored candidate
	fastCfg.MatchThreshold = -1
	fast := New(false, fastCfg)
	slow := New(false, slowCfg)
	for _, p := range synthQueryProfiles(80, 1, 13) {
		if _, _, err := fast.Upsert(p); err != nil {
			t.Fatal(err)
		}
		if _, _, err := slow.Upsert(p); err != nil {
			t.Fatal(err)
		}
	}
	for _, p := range synthQueryProfiles(80, 1, 13) {
		p := p
		fr := fast.Resolve(&p)
		sr := slow.Resolve(&p)
		if fr.Comparisons != sr.Comparisons || len(fr.Matches) != len(sr.Matches) {
			t.Fatalf("query %s: fast %d matches/%d comparisons, slow %d/%d",
				p.OriginalID, len(fr.Matches), fr.Comparisons, len(sr.Matches), sr.Comparisons)
		}
		for i := range fr.Matches {
			if fr.Matches[i].B != sr.Matches[i].B ||
				math.Float64bits(fr.Matches[i].Score) != math.Float64bits(sr.Matches[i].Score) {
				t.Fatalf("query %s match %d: fast %+v vs slow %+v",
					p.OriginalID, i, fr.Matches[i], sr.Matches[i])
			}
		}
	}
}

// TestQueryScratchGrowsWithUpserts interleaves queries with upserts that
// extend the ID space, exercising the scratch ensure/grow path.
func TestQueryScratchGrowsWithUpserts(t *testing.T) {
	x := New(false, DefaultConfig())
	batch := synthQueryProfiles(120, 1, 9)
	for i, p := range batch {
		if _, _, err := x.Upsert(p); err != nil {
			t.Fatal(err)
		}
		q := batch[i/2]
		want := refCandidates(x, &q)
		got := x.Query(&q).Candidates
		if len(want) != len(got) {
			t.Fatalf("after %d upserts: %d candidates, reference %d", i+1, len(got), len(want))
		}
		for j := range want {
			if want[j].ID != got[j].ID || math.Float64bits(want[j].Weight) != math.Float64bits(got[j].Weight) {
				t.Fatalf("after %d upserts candidate %d: %+v vs %+v", i+1, j, got[j], want[j])
			}
		}
	}
}
