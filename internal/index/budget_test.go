package index

import (
	"fmt"
	"math"
	"testing"
	"time"

	"sparker/internal/metablocking"
)

// The budget battery: an unlimited budget must be bitwise-identical to
// the pre-budget path (the same discipline as the PR 2/4 equivalence
// pins), comparison-capped resolutions must be monotone (a larger
// budget returns a superset of pairs on a fixed index) and best-first
// (what survives is the top of the ranking), and deadlines must
// truncate with the tripping stage reported.

// budgetTestIndex builds a dirty index with enough co-occurrence to
// produce multi-candidate neighbourhoods; PruneNone + threshold -1
// keeps every ranked candidate flowing into scoring.
func budgetTestIndex(t testing.TB, cfg Config) *Index {
	t.Helper()
	x := New(false, cfg)
	for _, p := range synthQueryProfiles(80, 1, 21) {
		if _, _, err := x.Upsert(p); err != nil {
			t.Fatal(err)
		}
	}
	return x
}

func TestResolveUnlimitedBudgetEquivalence(t *testing.T) {
	for _, scheme := range []metablocking.Scheme{metablocking.CBS, metablocking.ECBS, metablocking.JS, metablocking.ARCS} {
		cfg := DefaultConfig()
		cfg.Scheme = scheme
		cfg.Prune = PruneNone
		cfg.MatchThreshold = -1
		x := budgetTestIndex(t, cfg)
		for _, p := range synthQueryProfiles(80, 1, 21) {
			p := p
			want := x.ResolveWith(&p, ProbeOptions{})
			got := x.ResolveWithOptions(&p, ResolveOptions{})
			if got.Query.Truncated || got.Query.TruncatedStage != "" {
				t.Fatalf("%v query %s: unlimited budget marked truncated (%q)",
					scheme, p.OriginalID, got.Query.TruncatedStage)
			}
			if got.Comparisons != want.Comparisons || len(got.Matches) != len(want.Matches) ||
				len(got.Query.Candidates) != len(want.Query.Candidates) {
				t.Fatalf("%v query %s: unlimited budget diverged: %d/%d matches, %d/%d comparisons",
					scheme, p.OriginalID, len(got.Matches), len(want.Matches), got.Comparisons, want.Comparisons)
			}
			for i := range want.Matches {
				if got.Matches[i].B != want.Matches[i].B ||
					math.Float64bits(got.Matches[i].Score) != math.Float64bits(want.Matches[i].Score) {
					t.Fatalf("%v query %s match %d: %+v vs %+v",
						scheme, p.OriginalID, i, got.Matches[i], want.Matches[i])
				}
			}
			for i := range want.Query.Candidates {
				if want.Query.Candidates[i] != got.Query.Candidates[i] {
					t.Fatalf("%v query %s candidate %d: %+v vs %+v",
						scheme, p.OriginalID, i, got.Query.Candidates[i], want.Query.Candidates[i])
				}
			}
		}
	}
}

func TestBudgetMaxComparisonsMonotonic(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Prune = PruneNone
	cfg.MatchThreshold = -1
	x := budgetTestIndex(t, cfg)
	for _, p := range synthQueryProfiles(20, 1, 21) {
		p := p
		full := x.ResolveWithOptions(&p, ResolveOptions{})
		prev := map[string]bool{}
		for b := 1; b <= len(full.Query.Candidates)+1; b++ {
			r := x.ResolveWithOptions(&p, ResolveOptions{Budget: Budget{MaxComparisons: b}})
			if r.Comparisons > b {
				t.Fatalf("query %s budget %d: %d comparisons spent", p.OriginalID, b, r.Comparisons)
			}
			wantTrunc := b < len(full.Query.Candidates)
			if r.Query.Truncated != wantTrunc {
				t.Fatalf("query %s budget %d: truncated=%v, want %v (candidates=%d)",
					p.OriginalID, b, r.Query.Truncated, wantTrunc, len(full.Query.Candidates))
			}
			if wantTrunc && r.Query.TruncatedStage != "score" {
				t.Fatalf("query %s budget %d: truncated stage %q, want score", p.OriginalID, b, r.Query.TruncatedStage)
			}
			// Monotonicity: every pair matched under budget b-1 must
			// still be matched under budget b, and the full run must
			// contain them all.
			cur := map[string]bool{}
			for _, m := range r.Matches {
				cur[fmt.Sprint(m.B)] = true
			}
			for pair := range prev {
				if !cur[pair] {
					t.Fatalf("query %s: match %s under budget %d lost at budget %d", p.OriginalID, pair, b-1, b)
				}
			}
			prev = cur
			// Best-first: the scored prefix is exactly the top-b ranked
			// candidates, so every match must sit in that prefix.
			top := map[string]bool{}
			for i, c := range full.Query.Candidates {
				if i >= b {
					break
				}
				top[fmt.Sprint(c.ID)] = true
			}
			for _, m := range r.Matches {
				if !top[fmt.Sprint(m.B)] {
					t.Fatalf("query %s budget %d: match %d outside the top-%d ranked candidates", p.OriginalID, b, m.B, b)
				}
			}
		}
		// A budget at or above the candidate count is the full answer.
		r := x.ResolveWithOptions(&p, ResolveOptions{Budget: Budget{MaxComparisons: len(full.Query.Candidates)}})
		if r.Query.Truncated || len(r.Matches) != len(full.Matches) || r.Comparisons != full.Comparisons {
			t.Fatalf("query %s: exact-size budget diverged: truncated=%v, %d/%d matches",
				p.OriginalID, r.Query.Truncated, len(r.Matches), len(full.Matches))
		}
	}
}

func TestBudgetDeadlineTruncatesScoring(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Prune = PruneNone
	cfg.MatchThreshold = -1
	// Fault injection: every comparison costs ~1ms, so a ~3ms deadline
	// trips after a handful of the candidates.
	cfg.ScoreHook = func() { time.Sleep(time.Millisecond) }
	x := budgetTestIndex(t, cfg)

	var q *Resolution
	for _, p := range synthQueryProfiles(20, 1, 21) {
		p := p
		full := x.ResolveWith(&p, ProbeOptions{})
		if full.Comparisons < 8 {
			continue
		}
		q = x.ResolveWithOptions(&p, ResolveOptions{Budget: Budget{Deadline: DeadlineIn(3 * time.Millisecond)}})
		if !q.Query.Truncated {
			t.Fatalf("query %s: deadline did not truncate (%d comparisons)", p.OriginalID, q.Comparisons)
		}
		if q.Query.TruncatedStage != "score" {
			t.Fatalf("query %s: truncated stage %q, want score", p.OriginalID, q.Query.TruncatedStage)
		}
		if q.Comparisons >= full.Comparisons {
			t.Fatalf("query %s: deadline spent all %d comparisons", p.OriginalID, q.Comparisons)
		}
		return
	}
	t.Fatal("no query produced enough candidates to exercise the deadline")
}

func TestBudgetExpiredDeadlineTruncatesCandidates(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Prune = PruneNone
	x := budgetTestIndex(t, cfg)
	for _, p := range synthQueryProfiles(5, 1, 21) {
		p := p
		r := x.ResolveWithOptions(&p, ResolveOptions{Budget: Budget{Deadline: DeadlineIn(-time.Second)}})
		if !r.Query.Truncated {
			t.Fatalf("query %s: pre-expired deadline not marked truncated", p.OriginalID)
		}
		if r.Query.TruncatedStage != "candidates" {
			t.Fatalf("query %s: truncated stage %q, want candidates", p.OriginalID, r.Query.TruncatedStage)
		}
		if len(r.Query.Candidates) != 0 || r.Comparisons != 0 {
			t.Fatalf("query %s: pre-expired deadline still did work: %d candidates, %d comparisons",
				p.OriginalID, len(r.Query.Candidates), r.Comparisons)
		}
	}
}

// TestBudgetDeadlineSkipsLSHProbe pins the probe gate: an expired
// deadline on an LSH-enabled index must not start the bucket walk.
func TestBudgetDeadlineSkipsLSHProbe(t *testing.T) {
	cfg := DefaultConfig()
	cfg.LSH.Policy = ProbeUnion
	x := budgetTestIndex(t, cfg)
	p := synthQueryProfiles(1, 1, 21)[0]
	r := x.ResolveWithOptions(&p, ResolveOptions{
		Probe:  ProbeOptions{Policy: ProbeUnion},
		Budget: Budget{Deadline: DeadlineIn(-time.Second)},
	})
	if r.Query.LSHProbed || r.Query.BucketsProbed != 0 {
		t.Fatalf("expired deadline still probed LSH: probed=%v buckets=%d", r.Query.LSHProbed, r.Query.BucketsProbed)
	}
	if !r.Query.Truncated {
		t.Fatal("expired deadline not marked truncated")
	}
}
