package index

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io/fs"
	"math"
	"os"
	"path/filepath"
	"testing"

	"sparker/internal/profile"
)

// saveLoad round-trips the index through a temp snapshot file.
func saveLoad(t *testing.T, x *Index, cfg Config) *Index {
	t.Helper()
	path := filepath.Join(t.TempDir(), "index.snap")
	if _, err := x.Save(path); err != nil {
		t.Fatal(err)
	}
	y, err := Load(path, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return y
}

func TestSaveLoadRoundTrip(t *testing.T) {
	c := testCollection()
	cfg := DefaultConfig()
	x, err := NewFromCollection(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	y := saveLoad(t, x, cfg)

	if y.Size() != x.Size() || y.Clean() != x.Clean() {
		t.Fatalf("loaded size=%d clean=%v, want %d/%v", y.Size(), y.Clean(), x.Size(), x.Clean())
	}
	sx, sy := x.Snapshot(), y.Snapshot()
	if sx.Blocks != sy.Blocks || sx.Assignments != sy.Assignments ||
		sx.MaxBlockSize != sy.MaxBlockSize || sx.Shards != sy.Shards {
		t.Fatalf("block stats diverged: live %+v, loaded %+v", sx, sy)
	}
	if sy.ReadOnly {
		t.Fatal("loaded index unexpectedly read-only")
	}
	if sy.Persist == nil || !sy.Persist.Restored || sy.Persist.Bytes == 0 || sy.Persist.Path == "" {
		t.Fatalf("loaded persist state = %+v", sy.Persist)
	}
	// Every profile is restored with identity and attributes intact.
	for id := profile.ID(0); int(id) < c.Size(); id++ {
		px, _ := x.Get(id)
		py, ok := y.Get(id)
		if !ok {
			t.Fatalf("profile %d missing after load", id)
		}
		if px.OriginalID != py.OriginalID || px.SourceID != py.SourceID ||
			len(px.Attributes) != len(py.Attributes) {
			t.Fatalf("profile %d diverged: %+v vs %+v", id, px, py)
		}
		for i := range px.Attributes {
			if px.Attributes[i] != py.Attributes[i] {
				t.Fatalf("profile %d attribute %d diverged", id, i)
			}
		}
	}
}

func TestEmptyIndexRoundTrips(t *testing.T) {
	cfg := DefaultConfig()
	x := New(true, cfg)
	y := saveLoad(t, x, cfg)
	if y.Size() != 0 || !y.Clean() {
		t.Fatalf("empty round-trip: size=%d clean=%v", y.Size(), y.Clean())
	}
	// The restored empty index accepts writes and serves them.
	p := mkProfile("a1", "name", "acme blender")
	if _, _, err := y.Upsert(p); err != nil {
		t.Fatal(err)
	}
	b := mkProfile("b1", "title", "acme blender deluxe")
	b.SourceID = 1
	if _, _, err := y.Upsert(b); err != nil {
		t.Fatal(err)
	}
	q := mkProfile("probe", "name", "acme blender")
	if res := y.Query(&q); len(res.Candidates) != 1 {
		t.Fatalf("candidates after post-load upserts = %+v", res.Candidates)
	}
}

// TestSnapshotCountersSurviveSaveLoad pins the latent-bug regression: the
// Queries/Upserts counters are serving state, and dropping them across a
// restart would silently zero the ops metrics replicas report.
func TestSnapshotCountersSurviveSaveLoad(t *testing.T) {
	cfg := DefaultConfig()
	x := New(false, cfg)
	for i, p := range synthQueryProfiles(20, 1, 3) {
		if _, _, err := x.Upsert(p); err != nil {
			t.Fatal(err)
		}
		if i%2 == 0 {
			x.Query(&p)
		}
	}
	sx := x.Snapshot()
	if sx.Queries != 10 || sx.Upserts != 20 {
		t.Fatalf("live counters = %d/%d, want 10/20", sx.Queries, sx.Upserts)
	}
	y := saveLoad(t, x, cfg)
	sy := y.Snapshot()
	if sy.Queries != sx.Queries || sy.Upserts != sx.Upserts {
		t.Fatalf("counters after load = %d/%d, want %d/%d",
			sy.Queries, sy.Upserts, sx.Queries, sx.Upserts)
	}
	// Counters keep advancing from the restored values.
	p := mkProfile("fresh", "name", "tok1 tok2")
	y.Query(&p)
	if _, _, err := y.Upsert(p); err != nil {
		t.Fatal(err)
	}
	sy = y.Snapshot()
	if sy.Queries != sx.Queries+1 || sy.Upserts != sx.Upserts+1 {
		t.Fatalf("counters after restored ops = %d/%d", sy.Queries, sy.Upserts)
	}
}

// TestRemovalsSurviveSaveLoad pins the other latent-bug regression: a
// replace tombstones the old postings via removeID, and a snapshot must
// capture the posting lists after removal — resurrecting pre-replace
// tokens would return candidates for values that no longer exist.
func TestRemovalsSurviveSaveLoad(t *testing.T) {
	cfg := DefaultConfig()
	x := New(false, cfg)
	if _, _, err := x.Upsert(mkProfile("p1", "name", "oldtoken unique")); err != nil {
		t.Fatal(err)
	}
	if _, _, err := x.Upsert(mkProfile("p2", "name", "bystander item")); err != nil {
		t.Fatal(err)
	}
	// Replace p1: "oldtoken" postings must be tombstoned.
	if _, created, err := x.Upsert(mkProfile("p1", "name", "newtoken unique")); err != nil || created {
		t.Fatalf("replace: created=%v err=%v", created, err)
	}
	y := saveLoad(t, x, cfg)

	old := mkProfile("probe", "name", "oldtoken")
	if res := y.Query(&old); len(res.Candidates) != 0 {
		t.Fatalf("tombstoned token resurrected after load: %+v", res.Candidates)
	}
	fresh := mkProfile("probe", "name", "newtoken")
	res := y.Query(&fresh)
	if len(res.Candidates) != 1 || res.Candidates[0].ID != 0 {
		t.Fatalf("replacement lost after load: %+v", res.Candidates)
	}
	// A further replace on the loaded index unindexes via the restored
	// keys — the stored key list must match the restored postings.
	if _, _, err := y.Upsert(mkProfile("p1", "name", "thirdtoken unique")); err != nil {
		t.Fatal(err)
	}
	if res := y.Query(&fresh); len(res.Candidates) != 0 {
		t.Fatalf("stale postings after post-load replace: %+v", res.Candidates)
	}
}

// TestNextIDSurvivesSaveLoad: forgetting the ID allocator would hand a
// post-restart insert an ID that collides with a live profile.
func TestNextIDSurvivesSaveLoad(t *testing.T) {
	cfg := DefaultConfig()
	x := New(false, cfg)
	for _, p := range synthQueryProfiles(7, 1, 1) {
		if _, _, err := x.Upsert(p); err != nil {
			t.Fatal(err)
		}
	}
	y := saveLoad(t, x, cfg)
	id, created, err := y.Upsert(mkProfile("fresh", "name", "brand new"))
	if err != nil || !created {
		t.Fatalf("post-load insert: %v", err)
	}
	if id != 7 {
		t.Fatalf("post-load insert got ID %d, want 7", id)
	}
}

func TestReadOnlyReplicaRejectsWrites(t *testing.T) {
	cfg := DefaultConfig()
	x := New(false, cfg)
	for _, p := range synthQueryProfiles(10, 1, 2) {
		if _, _, err := x.Upsert(p); err != nil {
			t.Fatal(err)
		}
	}
	y := saveLoad(t, x, cfg)
	y.SetReadOnly(true)
	if !y.ReadOnly() || !y.Snapshot().ReadOnly {
		t.Fatal("read-only mode not reported")
	}
	if _, _, err := y.Upsert(mkProfile("z", "name", "thing")); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("read-only upsert error = %v, want ErrReadOnly", err)
	}
	// A replica never produces snapshots either — a stale replica saving
	// to the shared path would clobber the primary's newer file.
	if _, err := y.Save(filepath.Join(t.TempDir(), "replica.snap")); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("read-only save error = %v, want ErrReadOnly", err)
	}
	// Queries still serve.
	p := synthQueryProfiles(10, 1, 2)[0]
	if res := y.Query(&p); res.Keys == 0 {
		t.Fatal("read-only query produced no keys")
	}
	y.SetReadOnly(false)
	if _, _, err := y.Upsert(mkProfile("z", "name", "thing")); err != nil {
		t.Fatalf("write after clearing read-only: %v", err)
	}
}

// TestSaveLoadSaveByteStable: encoding is canonical (profiles by ID,
// postings by key), so re-saving a loaded index reproduces the original
// bytes except for the save timestamp and the CRC that covers it.
func TestSaveLoadSaveByteStable(t *testing.T) {
	cfg := DefaultConfig()
	x := New(true, cfg)
	for _, p := range synthQueryProfiles(40, 2, 11) {
		if _, _, err := x.Upsert(p); err != nil {
			t.Fatal(err)
		}
	}
	dir := t.TempDir()
	p1 := filepath.Join(dir, "gen1.snap")
	p2 := filepath.Join(dir, "gen2.snap")
	if _, err := x.Save(p1); err != nil {
		t.Fatal(err)
	}
	y, err := Load(p1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := y.Save(p2); err != nil {
		t.Fatal(err)
	}
	b1, err := os.ReadFile(p1)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := os.ReadFile(p2)
	if err != nil {
		t.Fatal(err)
	}
	// The save timestamp (and therefore the CRC) differ; compare the
	// sections after it. The header prefix up to the timestamp is
	// magic(8) + version(1) + clean(1) + shards varint; timestamps are
	// varints of equal width in practice, so align from the tail.
	if len(b1) != len(b2) {
		t.Fatalf("generations differ in size: %d vs %d", len(b1), len(b2))
	}
	// Compare everything after the timestamp varint: find the common
	// prefix length of the two headers, then require the remainder up to
	// the 4-byte CRC trailer to be identical except the timestamp span.
	diff := 0
	for i := 0; i < len(b1)-4; i++ {
		if b1[i] != b2[i] {
			diff++
		}
	}
	// UnixNano timestamps ~2026 encode as 10-byte varints; only those
	// bytes may differ before the trailer.
	if diff > 10 {
		t.Fatalf("%d non-timestamp bytes differ between generations", diff)
	}
}

func TestLoadMissingFileIsNotExist(t *testing.T) {
	_, err := Load(filepath.Join(t.TempDir(), "absent.snap"), DefaultConfig())
	if !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("error = %v, want fs.ErrNotExist", err)
	}
}

// TestPartialWriteNeverLoaded simulates a crash mid-save: the temp file
// exists (even with valid-looking bytes) but the rename never happened.
// Load must not read it, and a later Save must supersede it.
func TestPartialWriteNeverLoaded(t *testing.T) {
	cfg := DefaultConfig()
	x := New(false, cfg)
	if _, _, err := x.Upsert(mkProfile("p1", "name", "alpha beta")); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "index.snap")

	// A fully valid encoding left at the temp path must still be invisible.
	var buf bytes.Buffer
	if _, err := x.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path+".tmp", buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path, cfg); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("partial write was loaded: err = %v", err)
	}

	// A truncated temp file must not break the next save either.
	if err := os.WriteFile(path+".tmp", buf.Bytes()[:buf.Len()/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := x.Save(path); err != nil {
		t.Fatal(err)
	}
	y, err := Load(path, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if y.Size() != 1 {
		t.Fatalf("recovered size = %d, want 1", y.Size())
	}
}

// encodeToBytes is the in-memory snapshot of a small index, shared by
// the corruption tests and the fuzz seeds.
func encodeToBytes(t testing.TB, x *Index) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := x.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func smallTestIndex(t testing.TB, clean bool) *Index {
	t.Helper()
	sources := 1
	if clean {
		sources = 2
	}
	x := New(clean, DefaultConfig())
	for _, p := range synthQueryProfiles(12, sources, 7) {
		if _, _, err := x.Upsert(p); err != nil {
			t.Fatal(err)
		}
	}
	return x
}

func TestDecodeRejectsCorruptInput(t *testing.T) {
	cfg := DefaultConfig()
	valid := encodeToBytes(t, smallTestIndex(t, true))
	if _, err := Decode(bytes.NewReader(valid), cfg); err != nil {
		t.Fatalf("valid snapshot rejected: %v", err)
	}

	mutate := func(name string, f func([]byte) []byte) {
		in := f(append([]byte(nil), valid...))
		if _, err := Decode(bytes.NewReader(in), cfg); err == nil {
			t.Fatalf("%s: corrupt snapshot accepted", name)
		}
	}
	mutate("bad magic", func(b []byte) []byte { b[0] ^= 0xff; return b })
	mutate("version bump", func(b []byte) []byte { b[len(snapshotMagic)] = 99; return b })
	mutate("truncated header", func(b []byte) []byte { return b[:10] })
	mutate("truncated body", func(b []byte) []byte { return b[:len(b)/2] })
	mutate("truncated trailer", func(b []byte) []byte { return b[:len(b)-2] })
	mutate("flipped payload bit", func(b []byte) []byte { b[len(b)/2] ^= 0x10; return b })
	mutate("flipped crc bit", func(b []byte) []byte { b[len(b)-1] ^= 0x01; return b })
	mutate("empty input", func(b []byte) []byte { return nil })

	// Bytes after the checksum: a v3 file may legitimately carry a delta
	// tail of op frames there, so garbage is treated as a torn tail and
	// dropped — the decode succeeds with zero ops applied. The pre-delta
	// formats stay strict: nothing may follow their checksum.
	garbage := append(append([]byte(nil), valid...), 0xaa)
	y, err := Decode(bytes.NewReader(garbage), cfg)
	if err != nil {
		t.Fatalf("v3 trailing garbage: torn delta tail not dropped: %v", err)
	}
	if st, _ := y.PersistState(); st.DeltaOps != 0 {
		t.Fatalf("v3 trailing garbage: %d ops applied from garbage tail", st.DeltaOps)
	}
	v2 := encodeVersionToBytes(t, smallTestIndex(t, true), snapshotVersionV2)
	if _, err := Decode(bytes.NewReader(v2), cfg); err != nil {
		t.Fatalf("valid v2 snapshot rejected: %v", err)
	}
	if _, err := Decode(bytes.NewReader(append(v2, 0xaa)), cfg); err == nil {
		t.Fatal("v2 trailing garbage: corrupt snapshot accepted")
	}

	// Version bump specifically surfaces as ErrSnapshotVersion so boot
	// code can fall back to a fresh build.
	bumped := append([]byte(nil), valid...)
	bumped[len(snapshotMagic)] = snapshotVersion + 1
	if _, err := Decode(bytes.NewReader(bumped), cfg); !errors.Is(err, ErrSnapshotVersion) {
		t.Fatalf("version bump error = %v, want ErrSnapshotVersion", err)
	}
}

// TestDecodeRejectsLyingCounts hand-corrupts structural counts (which a
// CRC recompute would otherwise launder) by re-encoding with a tampered
// writer; here we just check the bound guards directly.
func TestDecodeBoundsGuards(t *testing.T) {
	if capped(10) != 10 || capped(1<<40) != 4096 {
		t.Fatalf("capped misbehaves: %d %d", capped(10), capped(1<<40))
	}
	if math.MaxInt32 < maxSnapshotString {
		t.Fatal("string bound exceeds int32 range")
	}
}

// TestDecodeRejectsInflatedIDBound: a tiny snapshot with a valid CRC but
// a huge nextID must not load — the dense query scratch is sized to the
// ID bound, so accepting it would let a ~50-byte file OOM the first
// Query. The crafted file is empty (0 profiles) with nextID=MaxInt32.
func TestDecodeRejectsInflatedIDBound(t *testing.T) {
	var body bytes.Buffer
	cw := &crcWriter{w: &body}
	cw.bytes([]byte(snapshotMagic))
	cw.uvarint(snapshotVersion)
	cw.byte(0)                // dirty
	cw.uvarint(1)             // shards
	cw.varint(0)              // savedAt
	cw.uvarint(math.MaxInt32) // nextID: lying ID bound
	cw.uvarint(0)             // queries
	cw.uvarint(0)             // upserts
	cw.uvarint(0)             // numProfiles
	cw.uvarint(0)             // numBlocks
	cw.uvarint(0)             // shard 0: no postings
	var trailer [4]byte
	binary.LittleEndian.PutUint32(trailer[:], cw.sum)
	cw.bytes(trailer[:])
	if cw.err != nil {
		t.Fatal(cw.err)
	}
	if _, err := Decode(bytes.NewReader(body.Bytes()), DefaultConfig()); err == nil {
		t.Fatal("snapshot with inflated ID bound accepted")
	}
}
