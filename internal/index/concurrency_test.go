package index

import (
	"fmt"
	"sync"
	"testing"

	"sparker/internal/profile"
)

// TestConcurrentQueryUpsert hammers the index with concurrent readers and
// writers; run with -race (CI does) to validate the locking model.
func TestConcurrentQueryUpsert(t *testing.T) {
	for _, shards := range []int{1, 4, 16} {
		t.Run(fmt.Sprintf("shards-%d", shards), func(t *testing.T) {
			cfg := DefaultConfig()
			cfg.Shards = shards
			x := New(true, cfg)

			// Seed both sources so queries have something to hit.
			for i := 0; i < 50; i++ {
				a := mkProfile(fmt.Sprintf("a%d", i), "name", fmt.Sprintf("item model%d shared%d", i, i%7))
				b := mkProfile(fmt.Sprintf("b%d", i), "title", fmt.Sprintf("item model%d shared%d", i, i%7))
				b.SourceID = 1
				if _, _, err := x.Upsert(a); err != nil {
					t.Fatal(err)
				}
				if _, _, err := x.Upsert(b); err != nil {
					t.Fatal(err)
				}
			}

			const writers, readers, ops = 4, 8, 200
			var wg sync.WaitGroup
			errs := make(chan error, writers)
			for w := 0; w < writers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < ops; i++ {
						// Mix fresh inserts with replacements of seeded rows.
						var p profile.Profile
						if i%3 == 0 {
							p = mkProfile(fmt.Sprintf("a%d", i%50), "name",
								fmt.Sprintf("updated model%d worker%d", i, w))
						} else {
							p = mkProfile(fmt.Sprintf("w%d-%d", w, i), "name",
								fmt.Sprintf("fresh model%d shared%d", i, i%7))
						}
						if _, _, err := x.Upsert(p); err != nil {
							errs <- err
							return
						}
					}
				}(w)
			}
			for r := 0; r < readers; r++ {
				wg.Add(1)
				go func(r int) {
					defer wg.Done()
					for i := 0; i < ops; i++ {
						q := mkProfile("probe", "name", fmt.Sprintf("item model%d shared%d", i%50, i%7))
						switch i % 3 {
						case 0:
							x.Query(&q)
						case 1:
							x.Resolve(&q)
						default:
							x.Snapshot()
						}
					}
				}(r)
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Fatal(err)
			}

			// The index must still be internally consistent: every stored
			// profile reachable through its own keys.
			s := x.Snapshot()
			if s.Profiles != x.Size() {
				t.Fatalf("snapshot profiles %d != size %d", s.Profiles, x.Size())
			}
			for id := profile.ID(0); int(id) < 20; id++ {
				p, ok := x.Get(id)
				if !ok {
					continue
				}
				res := x.Query(&p)
				if res.Keys == 0 {
					t.Fatalf("profile %d produced no keys", id)
				}
			}
		})
	}
}
