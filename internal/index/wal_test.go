package index

// Durable op-log (WAL) coverage: recovery equivalence with and without a
// snapshot (the crash-safe restart contract), torn and bit-flipped tail
// truncation, mid-log damage dropping later segments, rotation and
// retention pruning, fsync policies, OpsSince across a restart (the
// no-follower-resync pin), and a crash-image battery that recovers the
// log at arbitrary byte boundaries.

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"sparker/internal/profile"
)

// walConfig returns a WAL config for tests: no fsync (tmpfs-speed) and a
// rotation threshold small enough that batteries exercise rotation.
func walConfig(dir string) WALConfig {
	return WALConfig{Dir: dir, Sync: WALSyncNever}
}

// walIndex builds an op-log index with an attached WAL and n synthetic
// profiles written through Upsert.
func walIndex(t *testing.T, dir string, n int) *Index {
	t.Helper()
	x := New(true, opLogConfig())
	if _, err := x.OpenWAL(walConfig(dir)); err != nil {
		t.Fatal(err)
	}
	upsertAll(t, x, synthQueryProfiles(n, 2, 7))
	return x
}

// countCleanFrames is countOpFrames for clean-clean task frames (the
// shared helper decodes with dirty semantics and rejects source 1).
func countCleanFrames(frames []byte) (n int, lastSeq int64, err error) {
	br := bufio.NewReader(bytes.NewReader(frames))
	for {
		payload, err := readOpFrame(br)
		if err == io.EOF {
			return n, lastSeq, nil
		}
		if err != nil {
			return n, lastSeq, err
		}
		o, err := decodeOpPayload(payload, true)
		if err != nil {
			return n, lastSeq, err
		}
		n++
		lastSeq = o.seq
	}
}

// segmentPaths lists the on-disk segments, ascending.
func segmentPaths(t *testing.T, dir string) []string {
	t.Helper()
	segs, err := listWALSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	paths := make([]string, len(segs))
	for i, s := range segs {
		paths[i] = s.path
	}
	return paths
}

func TestWALOpenRequirements(t *testing.T) {
	if _, err := New(true, DefaultConfig()).OpenWAL(walConfig(t.TempDir())); !errors.Is(err, ErrOpLogDisabled) {
		t.Fatalf("OpenWAL without op log: err = %v, want ErrOpLogDisabled", err)
	}
	if _, err := New(true, opLogConfig()).OpenWAL(WALConfig{}); err == nil {
		t.Fatal("OpenWAL with empty Dir succeeded")
	}
	x := New(true, opLogConfig())
	dir := t.TempDir()
	if _, err := x.OpenWAL(walConfig(dir)); err != nil {
		t.Fatal(err)
	}
	if _, err := x.OpenWAL(walConfig(dir)); err == nil {
		t.Fatal("second OpenWAL succeeded")
	}
	if !x.WALEnabled() {
		t.Fatal("WALEnabled = false after open")
	}
	if err := x.CloseWAL(); err != nil {
		t.Fatal(err)
	}
	if x.WALEnabled() {
		t.Fatal("WALEnabled = true after close")
	}
	// Closing twice is a no-op, and the index keeps accepting writes
	// (in-memory only) after the log detaches.
	if err := x.CloseWAL(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := x.Upsert(mkProfile("after-close", "name", "alpha beta")); err != nil {
		t.Fatal(err)
	}
}

// TestWALRecoverFresh is the no-snapshot restart: a fresh index replays
// the whole log and converges bitwise-identical to the writer.
func TestWALRecoverFresh(t *testing.T) {
	dir := t.TempDir()
	leader := walIndex(t, dir, 25)
	// Replaces exercise remove-then-put through the WAL too.
	upsertAll(t, leader, []profile.Profile{
		mkProfile("p3", "name", "replaced tok1 tok2"),
		mkProfile("p4", "name", "also replaced shared1"),
	})
	if err := leader.CloseWAL(); err != nil {
		t.Fatal(err)
	}

	restarted := New(true, opLogConfig())
	rec, err := restarted.OpenWAL(walConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	if rec.Replayed != leader.Seq() || rec.SkippedOps != 0 || rec.TruncatedBytes != 0 {
		t.Fatalf("recovery = %+v, want %d replayed and nothing skipped or truncated", rec, leader.Seq())
	}
	encodesEqual(t, "fresh recovery", leader, restarted)

	// The restarted index keeps writing into the same log.
	upsertAll(t, restarted, []profile.Profile{mkProfile("new", "name", "post restart tok")})
	if err := restarted.CloseWAL(); err != nil {
		t.Fatal(err)
	}
	again := New(true, opLogConfig())
	if _, err := again.OpenWAL(walConfig(dir)); err != nil {
		t.Fatal(err)
	}
	encodesEqual(t, "second recovery", restarted, again)
}

// TestWALRecoverWithSnapshot is the acceptance pin: a leader restarted
// from snapshot + WAL tail is bitwise-identical to one that never died,
// answers queries identically, and serves OpsSince across the restart so
// a follower needs no resync.
func TestWALRecoverWithSnapshot(t *testing.T) {
	dir := t.TempDir()
	snap := filepath.Join(t.TempDir(), "index.snap")
	leader := walIndex(t, dir, 20)
	if _, err := leader.Save(snap); err != nil {
		t.Fatal(err)
	}
	tail := synthQueryProfiles(30, 2, 11)[20:] // 10 more ops past the snapshot
	upsertAll(t, leader, tail)
	if err := leader.CloseWAL(); err != nil {
		t.Fatal(err)
	}

	restarted, err := Load(snap, opLogConfig())
	if err != nil {
		t.Fatal(err)
	}
	if restarted.Seq() != 20 {
		t.Fatalf("snapshot seq = %d, want 20", restarted.Seq())
	}
	rec, err := restarted.OpenWAL(walConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	if rec.Replayed != 10 {
		t.Fatalf("recovery replayed %d ops, want 10 (recovery = %+v)", rec.Replayed, rec)
	}
	encodesEqual(t, "snapshot+WAL recovery", leader, restarted)

	// Queries answer identically to the leader that never died.
	q := mkProfile("probe", "name", "tok3 tok7 shared1")
	a := leader.Query(&q).Candidates
	b := restarted.Query(&q).Candidates
	if len(a) != len(b) {
		t.Fatalf("query lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("query candidate %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}

	// The replay repopulated the in-memory window: a follower that was
	// at seq 15 when the leader died streams the rest with no gap.
	frames, seq, err := restarted.OpsSince(15, 1<<30)
	if err != nil {
		t.Fatalf("OpsSince across restart: %v", err)
	}
	n, last, err := countCleanFrames(frames)
	if err != nil || n != 15 || last != seq || seq != 30 {
		t.Fatalf("OpsSince(15) = %d frames to %d (seq %d, err %v), want 15 to 30", n, last, seq, err)
	}
}

// mutateTail reopens the last segment and applies f to its bytes.
func mutateTail(t *testing.T, dir string, f func([]byte) []byte) {
	t.Helper()
	paths := segmentPaths(t, dir)
	if len(paths) == 0 {
		t.Fatal("no segments")
	}
	last := paths[len(paths)-1]
	b, err := os.ReadFile(last)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(last, f(b), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestWALTornTailTruncates(t *testing.T) {
	dir := t.TempDir()
	leader := walIndex(t, dir, 12)
	if err := leader.CloseWAL(); err != nil {
		t.Fatal(err)
	}
	// Tear mid-frame: drop 3 bytes, leaving the final frame short.
	mutateTail(t, dir, func(b []byte) []byte { return b[:len(b)-3] })

	restarted := New(true, opLogConfig())
	rec, err := restarted.OpenWAL(walConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	if rec.TruncatedBytes == 0 {
		t.Fatalf("recovery = %+v, want a truncated tail", rec)
	}
	if got := restarted.Seq(); got != 11 {
		t.Fatalf("recovered seq = %d, want 11 (last good frame)", got)
	}
	// The truncated file is clean again: appends continue and a second
	// recovery sees no damage.
	upsertAll(t, restarted, []profile.Profile{mkProfile("heal", "name", "healed tok")})
	if err := restarted.CloseWAL(); err != nil {
		t.Fatal(err)
	}
	again := New(true, opLogConfig())
	rec2, err := again.OpenWAL(walConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	if rec2.TruncatedBytes != 0 {
		t.Fatalf("second recovery = %+v, want no truncation", rec2)
	}
	encodesEqual(t, "healed log", restarted, again)
}

func TestWALBitFlippedTailTruncates(t *testing.T) {
	dir := t.TempDir()
	leader := walIndex(t, dir, 12)
	if err := leader.CloseWAL(); err != nil {
		t.Fatal(err)
	}
	mutateTail(t, dir, func(b []byte) []byte {
		b[len(b)-5] ^= 0x20 // inside the final frame's payload or CRC
		return b
	})
	restarted := New(true, opLogConfig())
	rec, err := restarted.OpenWAL(walConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	if rec.TruncatedBytes == 0 {
		t.Fatalf("recovery = %+v, want the flipped frame truncated", rec)
	}
	if got := restarted.Seq(); got != 11 {
		t.Fatalf("recovered seq = %d, want 11", got)
	}
}

// TestWALMidLogDamageDropsLaterSegments pins the multi-segment damage
// contract: recovery stops at the last good frame before the corruption
// and removes the segments after it (their frames can no longer apply in
// sequence), reporting both.
func TestWALMidLogDamageDropsLaterSegments(t *testing.T) {
	dir := t.TempDir()
	x := New(true, opLogConfig())
	cfg := walConfig(dir)
	cfg.SegmentBytes = 256 // force several segments
	if _, err := x.OpenWAL(cfg); err != nil {
		t.Fatal(err)
	}
	upsertAll(t, x, synthQueryProfiles(40, 2, 13))
	if err := x.CloseWAL(); err != nil {
		t.Fatal(err)
	}
	paths := segmentPaths(t, dir)
	if len(paths) < 3 {
		t.Fatalf("got %d segments, want >= 3 (rotation did not kick in)", len(paths))
	}
	// Flip a byte in the middle of the first segment.
	b, err := os.ReadFile(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/2] ^= 0x01
	if err := os.WriteFile(paths[0], b, 0o644); err != nil {
		t.Fatal(err)
	}

	restarted := New(true, opLogConfig())
	rec, err := restarted.OpenWAL(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rec.TruncatedBytes == 0 || rec.DroppedSegments != len(paths)-1 {
		t.Fatalf("recovery = %+v, want truncation and %d dropped segments", rec, len(paths)-1)
	}
	if restarted.Seq() == 0 || restarted.Seq() >= x.Seq() {
		t.Fatalf("recovered seq = %d, want a proper prefix of %d", restarted.Seq(), x.Seq())
	}
	if got := segmentPaths(t, dir); len(got) != 1 {
		t.Fatalf("%d segments remain, want 1", len(got))
	}
}

// TestWALRotationAndPrune drives rotation with a small threshold, then
// verifies a full save prunes everything the snapshot covers and that
// snapshot + surviving segments still recover the full state.
func TestWALRotationAndPrune(t *testing.T) {
	dir := t.TempDir()
	snap := filepath.Join(t.TempDir(), "index.snap")
	x := New(true, opLogConfig())
	cfg := walConfig(dir)
	cfg.SegmentBytes = 256
	if _, err := x.OpenWAL(cfg); err != nil {
		t.Fatal(err)
	}
	upsertAll(t, x, synthQueryProfiles(40, 2, 17))
	st := x.Snapshot()
	if st.WAL == nil {
		t.Fatal("Snapshot.WAL is nil with a WAL attached")
	}
	if st.WAL.Segments < 3 || st.WAL.Rotations < 2 {
		t.Fatalf("WAL stats = %+v, want >= 3 segments from rotation", st.WAL)
	}
	if _, err := x.Save(snap); err != nil {
		t.Fatal(err)
	}
	after := x.Snapshot().WAL
	if after.PrunedSegments == 0 || after.Segments != 1 {
		t.Fatalf("after full save WAL stats = %+v, want all sealed segments pruned", after)
	}

	// More writes, then a delta save: retention keeps honoring the seq
	// the snapshot file covers.
	upsertAll(t, x, synthQueryProfiles(60, 2, 17)[40:])
	if _, err := x.SaveDelta(snap); err != nil {
		t.Fatal(err)
	}
	if err := x.CloseWAL(); err != nil {
		t.Fatal(err)
	}

	restarted, err := Load(snap, opLogConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := restarted.OpenWAL(cfg); err != nil {
		t.Fatal(err)
	}
	encodesEqual(t, "post-prune recovery", x, restarted)
}

// TestWALSeqGapIsHardError: a pruned-too-far log (first segment deleted
// by hand) cannot silently recover — the missing ops are gone.
func TestWALSeqGapIsHardError(t *testing.T) {
	dir := t.TempDir()
	x := New(true, opLogConfig())
	cfg := walConfig(dir)
	cfg.SegmentBytes = 256
	if _, err := x.OpenWAL(cfg); err != nil {
		t.Fatal(err)
	}
	upsertAll(t, x, synthQueryProfiles(40, 2, 19))
	if err := x.CloseWAL(); err != nil {
		t.Fatal(err)
	}
	paths := segmentPaths(t, dir)
	if len(paths) < 2 {
		t.Fatalf("got %d segments, want >= 2", len(paths))
	}
	if err := os.Remove(paths[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := New(true, opLogConfig()).OpenWAL(cfg); err == nil || !strings.Contains(err.Error(), "jumps to seq") {
		t.Fatalf("recovery across a deleted segment: err = %v, want a sequence-gap error", err)
	}
}

func TestWALSyncPolicyParse(t *testing.T) {
	for in, want := range map[string]WALSyncPolicy{
		"always": WALSyncAlways, "Interval": WALSyncInterval,
		"never": WALSyncNever, "": WALSyncInterval,
	} {
		got, err := ParseWALSyncPolicy(in)
		if err != nil || got != want {
			t.Fatalf("ParseWALSyncPolicy(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseWALSyncPolicy("sometimes"); err == nil {
		t.Fatal("ParseWALSyncPolicy accepted garbage")
	}
	for p, name := range map[WALSyncPolicy]string{
		WALSyncAlways: "always", WALSyncInterval: "interval", WALSyncNever: "never",
	} {
		if p.String() != name {
			t.Fatalf("%d.String() = %q, want %q", p, p.String(), name)
		}
	}
}

// TestWALSyncPolicies exercises appends and recovery under each policy;
// the interval policy must be seen actually syncing in the background.
func TestWALSyncPolicies(t *testing.T) {
	for _, policy := range []WALSyncPolicy{WALSyncAlways, WALSyncInterval, WALSyncNever} {
		t.Run(policy.String(), func(t *testing.T) {
			dir := t.TempDir()
			x := New(true, opLogConfig())
			cfg := WALConfig{Dir: dir, Sync: policy, SyncInterval: time.Millisecond}
			if _, err := x.OpenWAL(cfg); err != nil {
				t.Fatal(err)
			}
			upsertAll(t, x, synthQueryProfiles(10, 2, 23))
			if policy == WALSyncAlways {
				if s := x.Snapshot().WAL; s.Syncs < 10 {
					t.Fatalf("always policy synced %d times for 10 appends", s.Syncs)
				}
			}
			if policy == WALSyncInterval {
				deadline := time.Now().Add(5 * time.Second)
				for x.Snapshot().WAL.Syncs == 0 {
					if time.Now().After(deadline) {
						t.Fatal("interval flusher never synced")
					}
					time.Sleep(time.Millisecond)
				}
			}
			if err := x.CloseWAL(); err != nil {
				t.Fatal(err)
			}
			restarted := New(true, opLogConfig())
			if _, err := restarted.OpenWAL(cfg); err != nil {
				t.Fatal(err)
			}
			encodesEqual(t, policy.String()+" recovery", x, restarted)
		})
	}
}

// copyDir snapshots a WAL directory into a fresh one — a crash image:
// what the filesystem would hold if the process died at this instant.
func copyDir(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		b, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

// TestWALCrashImageBattery is the fault-injection battery: take the
// final log, cut the tail segment at every byte boundary in its last two
// frames (and a spread of earlier offsets), and require each image to
// recover without error to some sequence S whose state is bitwise
// exactly the first S ops — never a torn half-op, never a panic.
func TestWALCrashImageBattery(t *testing.T) {
	dir := t.TempDir()
	leader := walIndex(t, dir, 15)
	if err := leader.CloseWAL(); err != nil {
		t.Fatal(err)
	}
	frames, _, err := leader.OpsSince(0, 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	// reference(S) = a fresh index with the first S ops applied.
	reference := func(s int64) *Index {
		ref := New(true, opLogConfig())
		n, last, err := countCleanFrames(frames)
		if err != nil || int64(n) < s || last < s {
			t.Fatalf("reference frames: n=%d last=%d err=%v", n, last, err)
		}
		off := 0
		for applied := int64(0); applied < s; applied++ {
			plen := int(uint32(frames[off]) | uint32(frames[off+1])<<8 | uint32(frames[off+2])<<16 | uint32(frames[off+3])<<24)
			off += opFrameOverhead + plen
		}
		if _, _, err := ref.ApplyOps(bytes.NewReader(frames[:off])); err != nil {
			t.Fatal(err)
		}
		return ref
	}

	paths := segmentPaths(t, dir)
	last := paths[len(paths)-1]
	full, err := os.ReadFile(last)
	if err != nil {
		t.Fatal(err)
	}
	// Every boundary in the final ~200 bytes plus a coarse sweep before.
	var cuts []int
	for c := 0; c < len(full); c += 97 {
		cuts = append(cuts, c)
	}
	start := len(full) - 200
	if start < 0 {
		start = 0
	}
	for c := start; c <= len(full); c++ {
		cuts = append(cuts, c)
	}
	for _, cut := range cuts {
		img := copyDir(t, dir)
		if err := os.WriteFile(filepath.Join(img, filepath.Base(last)), full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		recovered := New(true, opLogConfig())
		rec, err := recovered.OpenWAL(walConfig(img))
		if err != nil {
			t.Fatalf("cut %d: recovery error: %v", cut, err)
		}
		if err := recovered.CloseWAL(); err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		s := recovered.Seq()
		if s > leader.Seq() {
			t.Fatalf("cut %d: recovered seq %d beyond writer's %d", cut, s, leader.Seq())
		}
		encodesEqual(t, "crash image", reference(s), recovered)
		_ = rec
	}
}
