package index

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"sparker/internal/lsh"
	"sparker/internal/metablocking"
	"sparker/internal/profile"
)

// lshTestConfig returns a config with the probe subsystem enabled.
func lshTestConfig(policy ProbePolicy) Config {
	cfg := DefaultConfig()
	cfg.LSH = LSHConfig{Policy: policy}
	return cfg
}

// TestProbeOffBitwiseIdentical pins the acceptance criterion: with the
// probe off — whether LSH is disabled outright or enabled but overridden
// per query — results are bitwise-identical to the pre-LSH query path
// (refCandidates, the retained pre-flat-kernel reference).
func TestProbeOffBitwiseIdentical(t *testing.T) {
	for _, clean := range []bool{false, true} {
		sources := 1
		if clean {
			sources = 2
		}
		for _, scheme := range []metablocking.Scheme{metablocking.CBS, metablocking.ECBS, metablocking.JS, metablocking.ARCS} {
			plain := New(clean, func() Config { c := DefaultConfig(); c.Scheme = scheme; return c }())
			withLSH := New(clean, func() Config { c := lshTestConfig(ProbeUnion); c.Scheme = scheme; return c }())
			for _, p := range synthQueryProfiles(80, sources, 11) {
				if _, _, err := plain.Upsert(p); err != nil {
					t.Fatal(err)
				}
				if _, _, err := withLSH.Upsert(p); err != nil {
					t.Fatal(err)
				}
			}
			for _, p := range synthQueryProfiles(80, sources, 11) {
				p := p
				ref := refCandidates(plain, &p)
				got := withLSH.QueryWith(&p, ProbeOptions{Policy: ProbeOff}).Candidates
				plainGot := plain.Query(&p).Candidates
				if len(ref) != len(got) || len(ref) != len(plainGot) {
					t.Fatalf("clean=%v %v query %s: %d candidates with probe=off, %d plain, reference %d",
						clean, scheme, p.OriginalID, len(got), len(plainGot), len(ref))
				}
				for i := range ref {
					if ref[i].ID != got[i].ID || ref[i].SharedKeys != got[i].SharedKeys ||
						math.Float64bits(ref[i].Weight) != math.Float64bits(got[i].Weight) {
						t.Fatalf("clean=%v %v query %s candidate %d: probe=off %+v vs reference %+v",
							clean, scheme, p.OriginalID, i, got[i], ref[i])
					}
					if got[i].SharedBuckets != 0 {
						t.Fatalf("probe=off candidate %d reports %d shared buckets", i, got[i].SharedBuckets)
					}
				}
			}
		}
	}
}

// commonTokenProfiles builds a collection in token blocking's blind spot:
// filler profiles draw half their tokens from a tiny common vocabulary
// (so every common token's posting holds far more than MaxBlockFraction
// of the index), and a target/probe twin pair shares only those common
// tokens. The token path purges every posting the probe hits and returns
// nothing; the LSH probe still sees the high overall overlap.
func commonTokenProfiles(fillers int) ([]profile.Profile, profile.Profile, profile.Profile) {
	common := []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta", "theta"}
	next := uint64(97)
	rnd := func(mod int) int {
		next = next*6364136223846793005 + 1442695040888963407
		return int((next >> 33) % uint64(mod))
	}
	var ps []profile.Profile
	for i := 0; i < fillers; i++ {
		p := profile.Profile{OriginalID: fmt.Sprintf("f%d", i)}
		toks := make([]string, 0, 5)
		start := rnd(len(common))
		for j := 0; j < 4; j++ { // half the common vocabulary each
			toks = append(toks, common[(start+j*2)%len(common)])
		}
		toks = append(toks, fmt.Sprintf("unique%d", i))
		p.Add("name", strings.Join(toks, " "))
		ps = append(ps, p)
	}
	target := profile.Profile{OriginalID: "target"}
	target.Add("name", strings.Join(common[:6], " ")+" targetonly")
	probe := profile.Profile{OriginalID: "probe"}
	probe.Add("name", strings.Join(common[:6], " "))
	return ps, target, probe
}

// TestFallbackRecoversPurgedTokenMatches is the recall acceptance test in
// miniature: a query sharing only purged-common tokens with its match
// gets zero candidates from token blocking and recovers the match under
// ProbeFallback.
func TestFallbackRecoversPurgedTokenMatches(t *testing.T) {
	fillers, target, probe := commonTokenProfiles(120)
	cfg := lshTestConfig(ProbeFallback)
	cfg.MaxBlockFraction = 0.2
	x := New(false, cfg)
	for _, p := range append(fillers, target) {
		if _, _, err := x.Upsert(p); err != nil {
			t.Fatal(err)
		}
	}
	targetID, ok := x.lookupOrig("0|target")
	if !ok {
		t.Fatal("target not indexed")
	}

	off := x.QueryWith(&probe, ProbeOptions{Policy: ProbeOff})
	if len(off.Candidates) != 0 {
		t.Fatalf("token-only query found %d candidates; the scenario should purge every posting (purged %d)",
			len(off.Candidates), off.BlocksPurged)
	}
	if off.BlocksPurged == 0 {
		t.Fatalf("scenario broken: no postings were purged")
	}

	fb := x.QueryWith(&probe, ProbeOptions{Policy: ProbeFallback})
	if !fb.LSHProbed {
		t.Fatalf("fallback below the floor did not probe")
	}
	found := false
	for _, c := range fb.Candidates {
		if c.ID == targetID {
			found = true
			if c.SharedKeys != 0 {
				t.Fatalf("target candidate claims %d shared keys; every posting was purged", c.SharedKeys)
			}
			if c.SharedBuckets == 0 {
				t.Fatalf("target candidate reports no shared buckets")
			}
			if c.Weight <= 0 || c.Weight > 1 {
				t.Fatalf("estimated-Jaccard weight %v outside (0, 1]", c.Weight)
			}
		}
	}
	if !found {
		t.Fatalf("fallback probe did not recover the target; got %d candidates (%d probe-only)",
			len(fb.Candidates), fb.LSHCandidates)
	}
	if fb.LSHCandidates < len(fb.Candidates) {
		t.Fatalf("%d probe-only candidates but %d survived pruning", fb.LSHCandidates, len(fb.Candidates))
	}
	for _, c := range fb.Candidates {
		if c.SharedKeys != 0 {
			t.Fatalf("candidate %d shares %d keys; every posting was purged", c.ID, c.SharedKeys)
		}
	}

	// The same recovery must survive Resolve: the cached-bag Jaccard
	// scorer sees real token overlap even though blocking did not.
	r := x.ResolveWith(&probe, ProbeOptions{Policy: ProbeFallback})
	matched := false
	for _, m := range r.Matches {
		if m.B == targetID {
			matched = true
		}
	}
	if !matched {
		t.Fatalf("Resolve under fallback did not match the target (matches %v)", r.Matches)
	}

	// Fallback with a satisfied floor must not probe: queries token
	// blocking serves pay nothing. The served query shares two rare
	// (unpurged) tokens with indexed fillers.
	served := profile.Profile{OriginalID: "served-probe"}
	served.Add("name", "unique3 unique5")
	sv := x.QueryWith(&served, ProbeOptions{Policy: ProbeFallback})
	if len(sv.Candidates) == 0 {
		t.Fatal("served query found no token candidates; scenario broken")
	}
	if sv.LSHProbed {
		t.Fatalf("fallback probed although token blocking found %d candidates", len(sv.Candidates))
	}
}

// TestUnionPreservesTokenWeights pins union semantics: token candidates
// keep their scheme weights bitwise (shared buckets never leak into a
// co-occurrence weight); the union only adds probe-only candidates.
func TestUnionPreservesTokenWeights(t *testing.T) {
	cfg := lshTestConfig(ProbeUnion)
	x := New(false, cfg)
	for _, p := range synthQueryProfiles(60, 1, 31) {
		if _, _, err := x.Upsert(p); err != nil {
			t.Fatal(err)
		}
	}
	for _, p := range synthQueryProfiles(60, 1, 31) {
		p := p
		off := x.QueryWith(&p, ProbeOptions{Policy: ProbeOff})
		union := x.QueryWith(&p, ProbeOptions{Policy: ProbeUnion})
		offW := make(map[profile.ID]uint64, len(off.Candidates))
		for _, c := range off.Candidates {
			offW[c.ID] = math.Float64bits(c.Weight)
		}
		seen := 0
		for _, c := range union.Candidates {
			if c.SharedKeys == 0 {
				continue // probe-only addition
			}
			w, ok := offW[c.ID]
			if !ok {
				// Pruning is rank-sensitive: a token candidate can be
				// pushed out by heavier probe-only candidates under
				// top-k. Compare only the overlap.
				continue
			}
			seen++
			if w != math.Float64bits(c.Weight) {
				t.Fatalf("query %s candidate %d: union weight %v, off weight %v",
					p.OriginalID, c.ID, c.Weight, math.Float64frombits(w))
			}
		}
		if len(off.Candidates) > 0 && seen == 0 {
			t.Fatalf("query %s: no token candidates survived the union", p.OriginalID)
		}
	}
}

// TestLSHWeightBuckets exercises the shared-bucket weighting mode.
func TestLSHWeightBuckets(t *testing.T) {
	fillers, target, probe := commonTokenProfiles(120)
	cfg := lshTestConfig(ProbeFallback)
	cfg.MaxBlockFraction = 0.2
	cfg.LSH.Weight = LSHWeightBuckets
	x := New(false, cfg)
	for _, p := range append(fillers, target) {
		if _, _, err := x.Upsert(p); err != nil {
			t.Fatal(err)
		}
	}
	fb := x.Query(&probe)
	if len(fb.Candidates) == 0 {
		t.Fatal("no candidates under bucket weighting")
	}
	for _, c := range fb.Candidates {
		if c.Weight != float64(c.SharedBuckets) {
			t.Fatalf("candidate %d: weight %v != shared buckets %d", c.ID, c.Weight, c.SharedBuckets)
		}
	}
}

// lshInvariants cross-checks buckets against stored profiles: every
// bucket entry references a live profile whose derived band key matches,
// every signed profile appears in each of its band buckets exactly once,
// and the bucket counter equals the live bucket count.
func lshInvariants(t *testing.T, x *Index) {
	t.Helper()
	live := 0
	for si, sh := range x.shards {
		for key, pl := range sh.buckets {
			live++
			if pl.size() == 0 {
				t.Fatalf("shard %d bucket %x: empty posting left behind", si, key)
			}
			for _, id := range append(append([]profile.ID(nil), pl.a...), pl.b...) {
				sp := x.byID[id]
				if sp == nil {
					t.Fatalf("shard %d bucket %x: dangling profile %d", si, key, id)
				}
				found := false
				for b := 0; b < x.lsh.bands; b++ {
					if lsh.BandKey(sp.sig, b, x.lsh.rows) == key {
						found = true
					}
				}
				if !found {
					t.Fatalf("shard %d bucket %x: profile %d's signature does not map to it", si, key, id)
				}
			}
		}
	}
	if got := int(x.numBuckets.Load()); got != live {
		t.Fatalf("bucket counter %d, live buckets %d", got, live)
	}
	for id, sp := range x.byID {
		if sp.sig == nil {
			continue
		}
		for b := 0; b < x.lsh.bands; b++ {
			key := lsh.BandKey(sp.sig, b, x.lsh.rows)
			pl := x.bucketShard(key).buckets[key]
			if pl == nil {
				t.Fatalf("profile %d band %d: bucket %x missing", id, b, key)
			}
			n := 0
			for _, got := range pl.a {
				if got == id {
					n++
				}
			}
			for _, got := range pl.b {
				if got == id {
					n++
				}
			}
			if n != 1 {
				t.Fatalf("profile %d band %d: %d entries in bucket %x, want 1", id, b, n, key)
			}
		}
	}
}

// TestLSHMaintenanceUnderChurn replaces profiles in place and verifies
// the buckets keep the token postings' add/remove discipline: no
// dangling IDs, no duplicate entries, no empty bucket husks.
func TestLSHMaintenanceUnderChurn(t *testing.T) {
	for _, clean := range []bool{false, true} {
		sources := 1
		if clean {
			sources = 2
		}
		x := New(clean, lshTestConfig(ProbeUnion))
		batch := synthQueryProfiles(50, sources, 41)
		for _, p := range batch {
			if _, _, err := x.Upsert(p); err != nil {
				t.Fatal(err)
			}
		}
		lshInvariants(t, x)
		// Replace every profile with fresh text (new signature, new
		// buckets), twice, interleaved with an empty-bag replacement that
		// must drop the profile out of the buckets entirely.
		for round := 0; round < 2; round++ {
			for i, p := range batch {
				q := profile.Profile{OriginalID: p.OriginalID, SourceID: p.SourceID}
				if i%7 == round { // empty token bag: no signature
					q.Add("name", "...")
				} else {
					q.Add("name", fmt.Sprintf("regen%d round%d shared%d", i, round, i%5))
				}
				if _, created, err := x.Upsert(q); err != nil {
					t.Fatal(err)
				} else if created {
					t.Fatalf("replacement of %s created a new profile", p.OriginalID)
				}
			}
			lshInvariants(t, x)
		}
	}
}

// TestLSHDisabledIndexDegradesPolicies pins QueryWith on a plain index:
// every policy behaves as off and nothing probes.
func TestLSHDisabledIndexDegradesPolicies(t *testing.T) {
	x := New(false, DefaultConfig())
	for _, p := range synthQueryProfiles(20, 1, 3) {
		if _, _, err := x.Upsert(p); err != nil {
			t.Fatal(err)
		}
	}
	if x.LSHEnabled() {
		t.Fatal("default config enabled LSH")
	}
	q := synthQueryProfiles(20, 1, 3)[4]
	for _, pol := range []ProbePolicy{ProbeOff, ProbeFallback, ProbeUnion} {
		r := x.QueryWith(&q, ProbeOptions{Policy: pol})
		if r.LSHProbed || r.BucketsProbed != 0 || r.LSHCandidates != 0 {
			t.Fatalf("policy %v probed on an LSH-disabled index: %+v", pol, r)
		}
	}
	if s := x.Snapshot(); s.LSH != nil {
		t.Fatalf("snapshot reports LSH stats on a disabled index: %+v", s.LSH)
	}
}

// TestProbePolicyParse round-trips the flag forms.
func TestProbePolicyParse(t *testing.T) {
	for _, pol := range []ProbePolicy{ProbeOff, ProbeFallback, ProbeUnion} {
		got, err := ParseProbePolicy(pol.String())
		if err != nil || got != pol {
			t.Fatalf("round-trip %v: got %v, err %v", pol, got, err)
		}
	}
	if _, err := ParseProbePolicy("sometimes"); err == nil {
		t.Fatal("bad policy accepted")
	}
}

// TestLSHStatsCounters checks the probe counters surfaced in Snapshot.
func TestLSHStatsCounters(t *testing.T) {
	fillers, target, probe := commonTokenProfiles(80)
	cfg := lshTestConfig(ProbeFallback)
	cfg.MaxBlockFraction = 0.2
	x := New(false, cfg)
	for _, p := range append(fillers, target) {
		if _, _, err := x.Upsert(p); err != nil {
			t.Fatal(err)
		}
	}
	x.Query(&probe)
	x.Query(&probe)
	s := x.Snapshot()
	if s.LSH == nil {
		t.Fatal("no LSH stats on an enabled index")
	}
	if s.LSH.Probes != 2 {
		t.Fatalf("probe counter %d, want 2", s.LSH.Probes)
	}
	if s.LSH.ProbeOnlyCandidates == 0 {
		t.Fatal("probe-only candidate counter did not move")
	}
	if s.LSH.Buckets == 0 || s.LSH.Buckets != int(x.numBuckets.Load()) {
		t.Fatalf("bucket stat %d, counter %d", s.LSH.Buckets, x.numBuckets.Load())
	}
	if s.LSH.Bands*s.LSH.Rows != s.LSH.SignatureLen {
		t.Fatalf("banding %d×%d does not tile signature length %d", s.LSH.Bands, s.LSH.Rows, s.LSH.SignatureLen)
	}
}
