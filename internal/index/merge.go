package index

// Merge helpers for the scatter-gather serving tier: a coordinator
// fans one query out to shard processes, each of which answers with a
// ranked partial result (possibly a budget-truncated best-first
// prefix), and the partials merge here into one answer that looks like
// a single index produced it.
//
// Shard-local dense profile IDs are meaningless across processes —
// every shard numbers its own profiles from zero — so partial results
// carry each candidate's global identity (original ID + source)
// instead. The JSON tags mirror the serving wire format exactly: a
// coordinator decodes a shard's /v1/query response straight into
// Partial and re-encodes the merged Partial without translation.

import (
	"cmp"
	"slices"
)

// PartialCandidate is one ranked blocking candidate of a shard's
// partial answer, identified globally by (OriginalID, Source).
type PartialCandidate struct {
	OriginalID    string  `json:"original_id"`
	Source        int     `json:"source"`
	Weight        float64 `json:"weight"`
	SharedKeys    int     `json:"shared_keys"`
	SharedBuckets int     `json:"shared_buckets,omitempty"`
}

// PartialMatch is one scored match of a shard's partial answer.
type PartialMatch struct {
	OriginalID string  `json:"original_id"`
	Source     int     `json:"source"`
	Score      float64 `json:"score"`
}

// Partial is one shard's ranked partial answer to a query — the wire
// shape of a /v1/query response with shard-local IDs dropped. A
// truncated Partial is the best-first prefix its shard's budget
// allowed; merging truncated prefixes yields a truncated prefix.
type Partial struct {
	Candidates []PartialCandidate `json:"candidates"`
	Matches    []PartialMatch     `json:"matches"`

	Keys            int `json:"keys"`
	BlocksProbed    int `json:"blocks_probed"`
	BlocksPurged    int `json:"blocks_purged"`
	BlocksFiltered  int `json:"blocks_filtered"`
	PostingsScanned int `json:"postings_scanned"`
	Pruned          int `json:"pruned"`
	Comparisons     int `json:"comparisons"`

	LSHProbed     bool `json:"lsh_probed,omitempty"`
	BucketsProbed int  `json:"buckets_probed,omitempty"`
	BucketsPurged int  `json:"buckets_purged,omitempty"`
	LSHCandidates int  `json:"lsh_candidates,omitempty"`

	Truncated      bool   `json:"truncated,omitempty"`
	TruncatedStage string `json:"truncated_stage,omitempty"`
}

// stageRank maps a stage name from the wire back onto its pipeline
// position, so the merged TruncatedStage is the earliest stage any
// shard tripped in — deterministic regardless of shard arrival order.
// Unknown names rank last: a merged answer never invents a stage.
func stageRank(name string) int {
	for s := 0; s < NumStages; s++ {
		if Stage(s).String() == name {
			return s
		}
	}
	return NumStages
}

// MergePartials merges ranked shard answers into one, deterministically:
//
//   - Candidates re-rank by weight descending, ties broken by
//     (OriginalID, Source) ascending — the cross-process analogue of
//     the single-index tie-break on dense profile ID.
//   - Matches re-rank by score descending with the same tie-break.
//   - The work counters (postings scanned, comparisons, purge/filter
//     accounting) sum; Keys takes the maximum, since every shard
//     tokenizes the same query profile and a lagging value only means
//     that shard answered before warming its tokenizer cache.
//   - Truncated/LSHProbed flags OR-merge; TruncatedStage is the
//     earliest tripped stage across shards.
//
// Shards own disjoint profile populations (the coordinator routes
// upserts by hash of the original ID), so no deduplication is
// performed: a candidate appearing in two partials is a routing bug,
// not a merge concern. nil entries (failed shards) are skipped — the
// merged answer is the surviving shards' union, which is exactly what
// a degraded scatter-gather serves.
func MergePartials(parts []*Partial) *Partial {
	m := &Partial{}
	truncRank := NumStages + 1
	for _, p := range parts {
		if p == nil {
			continue
		}
		m.Candidates = append(m.Candidates, p.Candidates...)
		m.Matches = append(m.Matches, p.Matches...)
		if p.Keys > m.Keys {
			m.Keys = p.Keys
		}
		m.BlocksProbed += p.BlocksProbed
		m.BlocksPurged += p.BlocksPurged
		m.BlocksFiltered += p.BlocksFiltered
		m.PostingsScanned += p.PostingsScanned
		m.Pruned += p.Pruned
		m.Comparisons += p.Comparisons
		m.LSHProbed = m.LSHProbed || p.LSHProbed
		m.BucketsProbed += p.BucketsProbed
		m.BucketsPurged += p.BucketsPurged
		m.LSHCandidates += p.LSHCandidates
		if p.Truncated {
			m.Truncated = true
			if r := stageRank(p.TruncatedStage); r < truncRank {
				truncRank = r
				m.TruncatedStage = p.TruncatedStage
			}
		}
	}
	slices.SortFunc(m.Candidates, func(a, b PartialCandidate) int {
		if a.Weight != b.Weight {
			return cmp.Compare(b.Weight, a.Weight)
		}
		if a.OriginalID != b.OriginalID {
			return cmp.Compare(a.OriginalID, b.OriginalID)
		}
		return cmp.Compare(a.Source, b.Source)
	})
	slices.SortFunc(m.Matches, func(a, b PartialMatch) int {
		if a.Score != b.Score {
			return cmp.Compare(b.Score, a.Score)
		}
		if a.OriginalID != b.OriginalID {
			return cmp.Compare(a.OriginalID, b.OriginalID)
		}
		return cmp.Compare(a.Source, b.Source)
	})
	return m
}
