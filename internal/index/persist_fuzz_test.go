package index

import (
	"bytes"
	"testing"
)

// FuzzLoadIndex feeds arbitrary bytes to the snapshot decoder. The
// contract under fuzzing: any input either decodes into an internally
// consistent, queryable index or returns an error — never a panic, and
// never an allocation proportional to a lying length header rather than
// to the input actually supplied. Seeds cover valid snapshots of both
// task types (with and without entropy keys) plus the mutation classes
// the decoder must reject: truncation, bit flips, and version bumps.
func FuzzLoadIndex(f *testing.F) {
	dirty := encodeToBytes(f, smallTestIndex(f, false))
	clean := encodeToBytes(f, smallTestIndex(f, true))

	entCfg := DefaultConfig()
	entCfg.Clustering = lenClustering{}
	entCfg.Entropy = rampEntropy{}
	ent := New(false, entCfg)
	for _, p := range synthQueryProfiles(8, 1, 23) {
		if _, _, err := ent.Upsert(p); err != nil {
			f.Fatal(err)
		}
	}
	entropy := encodeToBytes(f, ent)

	empty := encodeToBytes(f, New(true, DefaultConfig()))

	for _, seed := range [][]byte{dirty, clean, entropy, empty} {
		f.Add(seed)
		f.Add(seed[:len(seed)/2])                      // truncated
		f.Add(seed[:len(seed)-3])                      // lost trailer
		f.Add(append([]byte{}, seed[len(seed)/3:]...)) // lost header

		flipped := append([]byte(nil), seed...)
		flipped[len(flipped)/2] ^= 0x20 // payload bit flip
		f.Add(flipped)

		bumped := append([]byte(nil), seed...)
		bumped[len(snapshotMagic)] = snapshotVersion + 1 // future version
		f.Add(bumped)
	}
	f.Add([]byte(snapshotMagic))
	f.Add([]byte{})

	cfg := DefaultConfig()
	f.Fuzz(func(t *testing.T, data []byte) {
		x, err := Decode(bytes.NewReader(data), cfg)
		if err != nil {
			return
		}
		// Decoded successfully: the index must hold together under use.
		s := x.Snapshot()
		if s.Profiles != x.Size() {
			t.Fatalf("snapshot profiles %d != size %d", s.Profiles, x.Size())
		}
		q := mkProfile("probe", "name", "alpha shared0 tok1")
		x.Query(&q)
		x.Resolve(&q)
		if _, _, err := x.Upsert(mkProfile("fresh", "name", "post fuzz upsert")); err != nil {
			t.Fatalf("upsert on decoded index: %v", err)
		}
	})
}
