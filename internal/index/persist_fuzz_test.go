package index

import (
	"bytes"
	"testing"
)

// FuzzLoadIndex feeds arbitrary bytes to the snapshot decoder. The
// contract under fuzzing: any input either decodes into an internally
// consistent, queryable index or returns an error — never a panic, and
// never an allocation proportional to a lying length header rather than
// to the input actually supplied. Seeds cover valid snapshots of both
// task types (with and without entropy keys), LSH-enabled snapshots,
// genuine version-1/-2 files and a v3 file carrying a delta tail of op
// frames, plus the mutation classes the decoder must reject (or, in the
// tail, drop): truncation, bit flips, and version bumps. Every input is
// decoded under a plain config and an LSH-enabled one: the v2 LSH
// section must hold up whether its signatures are kept or discarded.
func FuzzLoadIndex(f *testing.F) {
	dirty := encodeToBytes(f, smallTestIndex(f, false))
	clean := encodeToBytes(f, smallTestIndex(f, true))

	entCfg := DefaultConfig()
	entCfg.Clustering = lenClustering{}
	entCfg.Entropy = rampEntropy{}
	ent := New(false, entCfg)
	for _, p := range synthQueryProfiles(8, 1, 23) {
		if _, _, err := ent.Upsert(p); err != nil {
			f.Fatal(err)
		}
	}
	entropy := encodeToBytes(f, ent)

	empty := encodeToBytes(f, New(true, DefaultConfig()))

	// LSH seeds stay deliberately tiny (few profiles, short signatures):
	// mutation throughput degrades with corpus entry size, and a 16-wide
	// signature walks the same decode paths as a 128-wide one.
	smallLSH := func(clean bool) *Index {
		sources := 1
		if clean {
			sources = 2
		}
		cfg := DefaultConfig()
		cfg.LSH = LSHConfig{Policy: ProbeFallback, SignatureLen: 16}
		x := New(clean, cfg)
		for _, p := range synthQueryProfiles(8, sources, 19) {
			if _, _, err := x.Upsert(p); err != nil {
				f.Fatal(err)
			}
		}
		return x
	}
	withLSH := encodeToBytes(f, smallLSH(false))
	cleanLSH := encodeToBytes(f, smallLSH(true))
	v1 := encodeVersionToBytes(f, smallTestIndex(f, false), snapshotVersionV1)
	v2 := encodeVersionToBytes(f, smallTestIndex(f, true), snapshotVersionV2)

	// Delta seed: a base image with op frames appended (what SaveDelta
	// writes), so mutations land in the lenient tail-replay path too —
	// the decoder must drop a damaged tail, never panic or mis-apply.
	deltaIdx := New(true, opLogConfig())
	for _, p := range synthQueryProfiles(8, 2, 29) {
		if _, _, err := deltaIdx.Upsert(p); err != nil {
			f.Fatal(err)
		}
	}
	deltaBase := encodeToBytes(f, deltaIdx)
	for _, p := range synthQueryProfiles(12, 2, 31)[8:] {
		if _, _, err := deltaIdx.Upsert(p); err != nil {
			f.Fatal(err)
		}
	}
	tail, _, err := deltaIdx.OpsSince(8, 1<<20)
	if err != nil {
		f.Fatal(err)
	}
	delta := append(append([]byte(nil), deltaBase...), tail...)

	for _, seed := range [][]byte{dirty, clean, entropy, empty, withLSH, cleanLSH, v1, v2, delta} {
		f.Add(seed)
		f.Add(seed[:len(seed)/2])                      // truncated
		f.Add(seed[:len(seed)-3])                      // lost trailer
		f.Add(append([]byte{}, seed[len(seed)/3:]...)) // lost header

		flipped := append([]byte(nil), seed...)
		flipped[len(flipped)/2] ^= 0x20 // payload bit flip
		f.Add(flipped)

		bumped := append([]byte(nil), seed...)
		bumped[len(snapshotMagic)] = snapshotVersion + 1 // future version
		f.Add(bumped)
	}
	f.Add([]byte(snapshotMagic))
	f.Add([]byte{})

	cfg := DefaultConfig()
	lshCfg := lshTestConfig(ProbeFallback)
	f.Fuzz(func(t *testing.T, data []byte) {
		for _, c := range []Config{cfg, lshCfg} {
			x, err := Decode(bytes.NewReader(data), c)
			if err != nil {
				continue
			}
			// Decoded successfully: the index must hold together under use.
			s := x.Snapshot()
			if s.Profiles != x.Size() {
				t.Fatalf("snapshot profiles %d != size %d", s.Profiles, x.Size())
			}
			q := mkProfile("probe", "name", "alpha shared0 tok1")
			x.Query(&q)
			x.Resolve(&q)
			if x.LSHEnabled() {
				x.QueryWith(&q, ProbeOptions{Policy: ProbeUnion})
			}
			if _, _, err := x.Upsert(mkProfile("fresh", "name", "post fuzz upsert")); err != nil {
				t.Fatalf("upsert on decoded index: %v", err)
			}
		}
	})
}
