package index

// The LSH probe subsystem: a second candidate-generation modality beside
// the token postings. Token blocking finds candidates only through shared
// blocking keys, so a query whose tokens are all purged as too common (or
// filtered as too undistinctive) silently returns nothing even when a
// near-duplicate is indexed. MinHash/LSH covers exactly that regime: each
// profile gets a fixed-length MinHash signature over its whole-profile
// token bag at index/upsert time, the signature is banded into per-shard
// bucket postings that live beside the token postings (same shard locks,
// same add/remove discipline, same purge bound at query time), and a
// probe walks the query's buckets to surface candidates whose overall
// token overlap is high even when no individual token survives blocking.
//
// Probe-only candidates share no blocking key, so the co-occurrence
// weight schemes (CBS/ECBS/JS/ARCS) would score them zero; they are
// weighted by the estimated Jaccard of the two signatures instead (or by
// shared-bucket count, per LSHConfig.Weight).

import (
	"fmt"
	"sync"

	"sparker/internal/lsh"
	"sparker/internal/matching"
	"sparker/internal/profile"
	"sparker/internal/tokenize"
)

// ProbePolicy selects when a query runs the LSH probe beside the token
// postings.
type ProbePolicy int

const (
	// ProbeOff disables the probe: queries use token postings only, and
	// results are identical to an index without LSH. The default.
	ProbeOff ProbePolicy = iota
	// ProbeFallback probes LSH only when the token postings produced
	// fewer than LSHConfig.FallbackFloor candidates — the recall safety
	// net for queries whose tokens are all purged or filtered, at zero
	// extra cost for queries token blocking already serves.
	ProbeFallback
	// ProbeUnion always probes LSH and unions its candidates with the
	// token candidates — maximum recall, paying the probe on every query.
	ProbeUnion
)

// String names the policy for flags, stats and reports.
func (p ProbePolicy) String() string {
	switch p {
	case ProbeOff:
		return "off"
	case ProbeFallback:
		return "fallback"
	case ProbeUnion:
		return "union"
	}
	return "unknown"
}

// ParseProbePolicy parses the String form.
func ParseProbePolicy(s string) (ProbePolicy, error) {
	switch s {
	case "off":
		return ProbeOff, nil
	case "fallback":
		return ProbeFallback, nil
	case "union":
		return ProbeUnion, nil
	}
	return ProbeOff, fmt.Errorf("index: unknown probe policy %q (want off, fallback or union)", s)
}

// LSHWeight selects how probe-only candidates (no shared blocking key,
// hence zero under every co-occurrence scheme) are weighted.
type LSHWeight int

const (
	// LSHWeightJaccard weights a probe-only candidate by the estimated
	// Jaccard similarity of its stored MinHash signature and the query's
	// signature — directly comparable across candidates and a consistent
	// [0,1] ranking in fallback mode. The default.
	LSHWeightJaccard LSHWeight = iota
	// LSHWeightBuckets weights by the number of shared LSH buckets.
	LSHWeightBuckets
)

// String names the weighting for flags and reports.
func (w LSHWeight) String() string {
	if w == LSHWeightBuckets {
		return "buckets"
	}
	return "est-jaccard"
}

// LSHConfig configures the LSH probe subsystem. The zero value (Policy
// ProbeOff) disables it entirely: no signatures are computed, no buckets
// are maintained, and queries behave exactly as without it. Any other
// Policy enables maintenance at construction time; per-query overrides
// via ProbeOptions can then select any policy, including off.
type LSHConfig struct {
	// Policy is the default probe policy of Query/Resolve (default off).
	Policy ProbePolicy
	// SignatureLen is the MinHash signature length (default 128). Longer
	// signatures estimate Jaccard more tightly but cost proportionally
	// more per upsert and per probe.
	SignatureLen int
	// Threshold is the target Jaccard similarity of the banding layout
	// (default 0.5): bands and rows are chosen so pairs at least this
	// similar are likely to share a bucket. Lower thresholds catch less
	// similar pairs at the price of larger, noisier buckets.
	Threshold float64
	// Seed seeds the MinHash permutations deterministically (default 1).
	// Signatures from different seeds are incomparable; a snapshot
	// records its seed and restores it.
	Seed int64
	// FallbackFloor is the ProbeFallback trigger: probe LSH when the
	// token postings produced fewer than this many candidates (default 1,
	// i.e. only when token blocking found nothing).
	FallbackFloor int
	// Weight selects probe-only candidate weighting (default
	// LSHWeightJaccard).
	Weight LSHWeight
}

// withDefaults resolves zero fields to their documented defaults. A zero
// Policy keeps the whole subsystem disabled.
func (c LSHConfig) withDefaults() LSHConfig {
	if c.Policy == ProbeOff {
		return c
	}
	if c.SignatureLen <= 0 {
		c.SignatureLen = 128
	}
	// Mirror the snapshot decoder's bound so a successful Save is always
	// loadable.
	if c.SignatureLen > maxSnapshotSigLen {
		c.SignatureLen = maxSnapshotSigLen
	}
	if c.Threshold <= 0 || c.Threshold > 1 {
		c.Threshold = 0.5
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.FallbackFloor < 1 {
		c.FallbackFloor = 1
	}
	return c
}

// ProbeOptions overrides the probe behaviour of one query; the zero
// value means "the index's configured defaults".
type ProbeOptions struct {
	// Policy overrides LSHConfig.Policy for this query. On an index that
	// maintains no signatures (LSH disabled at construction), every
	// policy behaves as ProbeOff.
	Policy ProbePolicy
	// Floor overrides LSHConfig.FallbackFloor (0 keeps the default).
	Floor int
}

// lshState is the probe subsystem's per-index state, nil when disabled.
type lshState struct {
	hasher *lsh.MinHasher
	bands  int
	rows   int
	pool   sync.Pool // *lshScratch
}

// newLSHState builds the subsystem from a resolved LSHConfig, or returns
// nil when the policy is off.
func newLSHState(cfg LSHConfig) *lshState {
	if cfg.Policy == ProbeOff {
		return nil
	}
	st := &lshState{hasher: lsh.NewMinHasher(cfg.SignatureLen, cfg.Seed)}
	st.bands, st.rows = lsh.BandingParams(cfg.SignatureLen, cfg.Threshold)
	return st
}

// lshOn reports whether the index maintains signatures and buckets.
func (x *Index) lshOn() bool { return x.lsh != nil }

// LSHEnabled reports whether the index maintains LSH signatures — the
// precondition for any non-off probe policy, per query or configured.
func (x *Index) LSHEnabled() bool { return x.lshOn() }

// ProbePolicy returns the configured default probe policy, the one
// Query and Resolve apply when no per-query override is given.
func (x *Index) ProbePolicy() ProbePolicy { return x.cfg.LSH.Policy }

// lshScratch is the pooled per-probe workspace: the query's token bag
// and its signature, reused across probes so the query hot path stays
// allocation-free at steady state. Band keys need no buffer — they are
// derived one at a time inside the probe loop.
type lshScratch struct {
	bag []string
	sig []uint64
	tok tokenize.Scratch
}

func (st *lshState) getScratch() *lshScratch {
	s, _ := st.pool.Get().(*lshScratch)
	if s == nil {
		s = &lshScratch{}
	}
	return s
}

func (st *lshState) putScratch(s *lshScratch) {
	s.bag = s.bag[:0]
	s.sig = s.sig[:0]
	st.pool.Put(s)
}

// signatureOf computes the retained MinHash signature of a stored
// profile from its token bag, or nil for an empty bag (an all-max
// signature would collide with every other empty profile in every
// bucket). The cached distinct bag is reused when present; duplicates
// would not change a MinHash anyway.
func (x *Index) signatureOf(sp *storedProfile) []uint64 {
	bag := sp.bag
	if bag == nil {
		bag = matching.ProfileBag(&sp.p, x.cfg.Tokenizer)
	}
	if len(bag) == 0 {
		return nil
	}
	return x.lsh.hasher.Signature(bag)
}

// addLSHLocked installs a signed profile's band buckets on their shards.
// Caller holds writeMu; the per-shard locks serialize against readers.
func (x *Index) addLSHLocked(sp *storedProfile) {
	if sp.sig == nil {
		return
	}
	for b := 0; b < x.lsh.bands; b++ {
		key := lsh.BandKey(sp.sig, b, x.lsh.rows)
		s := x.bucketShard(key)
		s.mu.Lock()
		pl := s.buckets[key]
		if pl == nil {
			pl = &posting{cluster: -1}
			s.buckets[key] = pl
			x.numBuckets.Add(1)
		}
		if x.clean && sp.p.SourceID == 1 {
			pl.b = append(pl.b, sp.p.ID)
		} else {
			pl.a = append(pl.a, sp.p.ID)
		}
		s.mu.Unlock()
	}
}

// removeLSHLocked is addLSHLocked's inverse, with the same
// empty-posting tombstone discipline as the token postings: a bucket
// emptied by removals is deleted outright, never left as a husk.
func (x *Index) removeLSHLocked(sp *storedProfile) {
	if sp.sig == nil {
		return
	}
	id := sp.p.ID
	for b := 0; b < x.lsh.bands; b++ {
		key := lsh.BandKey(sp.sig, b, x.lsh.rows)
		s := x.bucketShard(key)
		s.mu.Lock()
		if pl := s.buckets[key]; pl != nil {
			if x.clean && sp.p.SourceID == 1 {
				pl.b = removeID(pl.b, id)
			} else {
				pl.a = removeID(pl.a, id)
			}
			if pl.size() == 0 {
				delete(s.buckets, key)
				x.numBuckets.Add(-1)
			}
		}
		s.mu.Unlock()
	}
}

// bucketShard places a band key on its shard.
func (x *Index) bucketShard(key uint64) *shard {
	return x.shards[int(key%uint64(len(x.shards)))]
}

// querySignature derives the query profile's token bag and MinHash
// signature into the pooled scratch, returning nil for an empty bag.
func (x *Index) querySignature(ls *lshScratch, p *profile.Profile) []uint64 {
	bag := ls.bag[:0]
	for _, kv := range p.Attributes {
		bag = x.cfg.Tokenizer.AppendTokens(bag, kv.Value, &ls.tok)
	}
	ls.bag = bag
	if len(bag) == 0 {
		return nil
	}
	ls.sig = x.lsh.hasher.AppendSignature(ls.sig, bag)
	return ls.sig
}

// LSHStats summarises the probe subsystem for Snapshot and /stats.
type LSHStats struct {
	// Policy is the configured default probe policy.
	Policy string `json:"policy"`
	// SignatureLen, Bands and Rows describe the MinHash/banding layout.
	SignatureLen int `json:"signature_len"`
	Bands        int `json:"bands"`
	Rows         int `json:"rows"`
	// Buckets is the number of live bucket postings across shards.
	Buckets int `json:"buckets"`
	// Probes counts queries that ran an LSH probe (under fallback, only
	// queries that actually fell through the floor).
	Probes int64 `json:"probes"`
	// ProbeOnlyCandidates counts candidates surfaced by the probe alone,
	// i.e. sharing no blocking key with their query.
	ProbeOnlyCandidates int64 `json:"probe_only_candidates"`
	// FallbackRate is the fraction of all queries that triggered a
	// probe: near zero under ProbeFallback when token blocking serves
	// almost everything (the healthy state), 1.0 under ProbeUnion. A
	// climbing rate under fallback means queries increasingly miss the
	// token postings — the drift signal /metrics exports.
	FallbackRate float64 `json:"fallback_rate"`
}
