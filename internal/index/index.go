// Package index provides an online, incrementally maintainable entity
// index: the serving-side counterpart of the batch blocker. It is built
// once from a profile collection with the same tokenize/blocking key
// machinery the pipeline uses, sharded by token hash into independent
// inverted token→posting indexes, and then answers point lookups without
// re-running the batch pipeline:
//
//	Query(p)   — rank the candidate matches of one profile by probing only
//	             the postings its blocking keys hit, weighting candidates
//	             with the meta-blocking schemes (CBS/ECBS/JS/ARCS) and
//	             pruning them WNP-style (local mean) or CNP-style (top-k).
//	Upsert(p)  — insert or replace one profile, touching only the postings
//	             of its blocking keys.
//	Resolve(p) — Query plus similarity scoring with a matching.Measure,
//	             the online analogue of the batch matcher stage.
//
// Concurrency model: queries take only per-shard read locks and scale
// across cores; writes (Upsert, bulk loading) are serialized by a single
// writer lock and take per-shard write locks one shard at a time, so a
// query never blocks for longer than one posting update. Snapshot locks
// out writers and reports consistent totals.
package index

import (
	"fmt"
	"sync"
	"sync/atomic"

	"sparker/internal/blocking"
	"sparker/internal/matching"
	"sparker/internal/metablocking"
	"sparker/internal/obs"
	"sparker/internal/profile"
	"sparker/internal/tokenize"
)

// PruneRule selects how a query's ranked candidates are pruned, mirroring
// the node-centric meta-blocking rules.
type PruneRule int

const (
	// PruneTopK keeps the MaxCandidates heaviest candidates (CNP-style),
	// bounding per-query matcher work to a constant. The default.
	PruneTopK PruneRule = iota
	// PruneMean keeps candidates at or above the mean weight of the
	// query's neighbourhood (WNP-style).
	PruneMean
	// PruneNone returns every co-occurring candidate.
	PruneNone
)

// String names the rule for reports.
func (r PruneRule) String() string {
	switch r {
	case PruneMean:
		return "mean"
	case PruneTopK:
		return "top-k"
	case PruneNone:
		return "none"
	}
	return "unknown"
}

// Config holds the tunables of an entity index. The zero value is usable;
// DefaultConfig documents the defaults it resolves to.
type Config struct {
	// Shards is the number of independent token shards (default 16).
	Shards int
	// Tokenizer derives blocking keys and matcher token bags.
	Tokenizer tokenize.Options
	// Clustering enables loose-schema keys, exactly as in batch blocking.
	Clustering blocking.AttributeClustering
	// Entropy enables Blast-style entropy re-weighting of shared keys.
	Entropy metablocking.EntropyProvider
	// Scheme weights candidates (CBS, ECBS, JS, ARCS; EJS needs global
	// graph degrees and falls back to JS online).
	Scheme metablocking.Scheme
	// MaxBlockFraction is the online analogue of block purging: postings
	// holding more than this fraction of the indexed profiles are skipped
	// at query time (default 0.5; set to 1 to disable).
	MaxBlockFraction float64
	// FilterRatio is the online analogue of block filtering: of the
	// postings a query hits, only the smallest ceil(ratio·n) are scanned,
	// dropping the least distinctive (largest) ones (default 0.8, the
	// pipeline default; set to 1 to disable).
	FilterRatio float64
	// Prune selects the candidate pruning rule (default PruneTopK).
	Prune PruneRule
	// MaxCandidates is the k of PruneTopK (default 10).
	MaxCandidates int
	// Measure scores Resolve candidates (default whole-profile Jaccard
	// with Tokenizer). Leave nil for the default: Resolve then scores
	// candidates from token bags cached at upsert time instead of
	// re-tokenizing both profiles per comparison (bitwise-identical
	// scores, far fewer allocations per query).
	Measure matching.Measure
	// MatchThreshold labels a Resolve candidate a match at or above it.
	// Zero resolves to 0.3 (the unsupervised pipeline default); use a
	// negative value to keep every scored candidate.
	MatchThreshold float64
	// LSH configures the MinHash/LSH probe subsystem, the second
	// candidate-generation modality beside the token postings (see
	// lsh.go). The zero value disables it.
	LSH LSHConfig
	// OpLog enables the bounded in-memory op log (oplog.go): every
	// upsert is framed and retained, enabling delta saves (SaveDelta)
	// and HTTP replication to followers (OpsSince/ApplyOps). The zero
	// value disables it and upserts cost nothing extra.
	OpLog OpLogConfig
	// DisableMetrics turns off the per-stage timing and histogram
	// recording of the query/upsert hot paths (metrics.go): Metrics()
	// returns nil, Snapshot carries no timings, and the ?debug=1 stage
	// breakdown reads zeros. Servers leave it off; the bare benchmark
	// variant uses it to price the instrumentation.
	DisableMetrics bool
	// ScoreHook, when non-nil, runs once per candidate comparison in
	// Resolve before the similarity measure — the fault-injection
	// surface: overload tests install a sleeping or blocking hook to
	// simulate slow scoring and drive the serving tier's admission gate
	// and degradation ladder. Nil (the default) costs one predictable
	// branch per comparison and changes nothing.
	ScoreHook func()

	// defaultJaccard records that Measure was nil and withDefaults
	// installed the whole-profile Jaccard, enabling the cached-bag scorer.
	defaultJaccard bool
}

// DefaultConfig is the unsupervised serving configuration: schema-agnostic
// keys, CBS weights, CNP-style top-10 pruning (bounding per-query matcher
// work to a constant), Jaccard matching.
func DefaultConfig() Config {
	return Config{
		Shards:           16,
		Scheme:           metablocking.CBS,
		MaxBlockFraction: 0.5,
		FilterRatio:      blocking.DefaultFilterRatio,
		Prune:            PruneTopK,
		MaxCandidates:    10,
		MatchThreshold:   0.3,
	}
}

// withDefaults resolves zero fields to their documented defaults.
func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = 16
	}
	if c.MaxBlockFraction <= 0 {
		c.MaxBlockFraction = 0.5
	}
	if c.FilterRatio <= 0 {
		c.FilterRatio = blocking.DefaultFilterRatio
	}
	if c.MaxCandidates <= 0 {
		c.MaxCandidates = 10
	}
	if c.MatchThreshold == 0 {
		c.MatchThreshold = 0.3 // negative = keep every scored candidate
	}
	if c.Measure == nil {
		c.Measure = matching.JaccardMeasure(c.Tokenizer)
		c.defaultJaccard = true
	}
	c.LSH = c.LSH.withDefaults()
	c.OpLog = c.OpLog.withDefaults()
	return c
}

// posting is the online form of a block: the profiles one blocking key
// currently hits, split by source for clean-clean tasks.
type posting struct {
	cluster int
	a, b    []profile.ID
}

// size returns the number of profiles in the posting.
func (pl *posting) size() int { return len(pl.a) + len(pl.b) }

// comparisons returns the comparison cardinality of the posting, the
// quantity ARCS weights by.
func (pl *posting) comparisons(clean bool) float64 {
	var c float64
	if clean {
		c = float64(len(pl.a)) * float64(len(pl.b))
	} else {
		n := float64(len(pl.a))
		c = n * (n - 1) / 2
	}
	if c < 1 {
		c = 1
	}
	return c
}

// shard is one independently locked slice of the token space. When LSH
// is enabled it also carries that key range's bucket postings: both maps
// live under the one mutex, so the probe subsystem inherits the token
// postings' locking discipline wholesale.
type shard struct {
	mu       sync.RWMutex
	postings map[string]*posting
	// buckets maps LSH band keys to bucket postings (nil when disabled).
	buckets map[uint64]*posting
}

// storedProfile is an immutable snapshot of one indexed profile; Upsert
// replaces the whole struct, so readers holding a pointer stay safe.
type storedProfile struct {
	p    profile.Profile
	keys []blocking.KeyedToken
	// bag is the distinct whole-profile token set, cached for the default
	// Jaccard scorer (nil when a custom Measure is configured).
	bag []string
	// sig is the MinHash signature of the token bag (nil when LSH is
	// disabled or the bag is empty). Band keys are a pure function of it,
	// so removal re-derives them instead of storing them.
	sig []uint64
}

// Index is a concurrent, sharded, incrementally maintainable entity index.
type Index struct {
	cfg   Config
	opts  blocking.Options
	clean bool

	shards []*shard

	// writeMu serializes all structural writes (Upsert, bulk load); reads
	// never take it.
	writeMu sync.Mutex
	mu      sync.RWMutex // guards the profile maps below
	byID    map[profile.ID]*storedProfile
	byOrig  map[string]profile.ID
	nextID  profile.ID

	numProfiles atomic.Int64
	numBlocks   atomic.Int64
	queries     atomic.Int64
	upserts     atomic.Int64

	// seq numbers applied writes 1, 2, 3, … — the replication clock: a
	// v3 snapshot records it, op frames carry it, and followers track
	// it. Advanced under writeMu; read lock-free (Seq, OpsSince).
	seq atomic.Int64
	// oplog retains recent op frames for delta saves and follower
	// streaming (nil unless Config.OpLog.Enabled).
	oplog *opLog
	// wal is the durable half of the op log (wal.go): frames are
	// appended to disk segments before the in-memory structures are
	// touched. Nil until OpenWAL attaches it; guarded by writeMu.
	wal *wal

	// lsh is the probe subsystem (nil when disabled); numBuckets counts
	// live bucket postings (kept apart from numBlocks, which the ECBS
	// weight consumes and must stay token-only), lshProbes the queries
	// that ran a probe, and lshOnly the candidates only the probe found.
	lsh        *lshState
	numBuckets atomic.Int64
	lshProbes  atomic.Int64
	lshOnly    atomic.Int64

	// idBound is one past the largest internal ID ever assigned; the
	// query path sizes its flat candidate scratch to it.
	idBound     atomic.Int64
	scratchPool sync.Pool

	// metrics is the per-stage/operation histogram core (nil when
	// cfg.DisableMetrics): hot paths record into it with atomic adds
	// only, never allocating or locking.
	metrics *Metrics

	// readOnly marks a replica: Upsert returns ErrReadOnly (persist.go).
	readOnly atomic.Bool
	// restored marks an index built by Load/Decode rather than from a
	// collection; persist carries the durable-snapshot metadata.
	restored  bool
	persistMu sync.Mutex
	persist   PersistState
	// saveMu serializes Save end to end (open, encode, fsync, rename):
	// concurrent saves to one path would share the fixed temp file, and
	// writeMu alone does not cover the file I/O around the encode.
	saveMu sync.Mutex
}

// New creates an empty index; clean selects clean-clean semantics (two
// duplicate-free sources, queries from one source only match the other).
func New(clean bool, cfg Config) *Index {
	cfg = cfg.withDefaults()
	x := &Index{
		cfg:    cfg,
		opts:   blocking.Options{Tokenizer: cfg.Tokenizer, Clustering: cfg.Clustering},
		clean:  clean,
		shards: make([]*shard, cfg.Shards),
		byID:   make(map[profile.ID]*storedProfile),
		byOrig: make(map[string]profile.ID),
	}
	if !cfg.DisableMetrics {
		x.metrics = &Metrics{}
	}
	if cfg.OpLog.Enabled {
		x.oplog = newOpLog(cfg.OpLog)
	}
	x.lsh = newLSHState(cfg.LSH)
	for i := range x.shards {
		x.shards[i] = &shard{postings: make(map[string]*posting)}
		if x.lsh != nil {
			x.shards[i].buckets = make(map[uint64]*posting)
		}
	}
	return x
}

// NewFromCollection builds the index from a batch collection, preserving
// its internal profile IDs so that evaluation against an existing ground
// truth keeps working.
func NewFromCollection(c *profile.Collection, cfg Config) (*Index, error) {
	if err := c.Validate(); err != nil {
		return nil, fmt.Errorf("index: %w", err)
	}
	x := New(c.IsClean(), cfg)
	x.writeMu.Lock()
	defer x.writeMu.Unlock()
	for i := range c.Profiles {
		p := c.Profiles[i]
		if _, ok := x.byOrig[origKey(&p)]; ok {
			return nil, fmt.Errorf("index: duplicate profile %d:%s", p.SourceID, p.OriginalID)
		}
		x.putLocked(p)
		if p.ID >= x.nextID {
			x.nextID = p.ID + 1
		}
	}
	return x, nil
}

// Clean reports whether the index uses clean-clean semantics.
func (x *Index) Clean() bool { return x.clean }

// Size returns the number of indexed profiles.
func (x *Index) Size() int { return int(x.numProfiles.Load()) }

// origKey is the replacement identity of a profile: source + original ID.
func origKey(p *profile.Profile) string {
	return fmt.Sprintf("%d|%s", p.SourceID, p.OriginalID)
}

// shardFor hashes a blocking key onto its shard with inline FNV-1a —
// hash.Hash32 would heap-allocate on every key of the query/upsert hot
// paths.
func (x *Index) shardFor(key string) *shard {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return x.shards[int(h%uint32(len(x.shards)))]
}

// Upsert inserts the profile, or replaces the previous profile with the
// same (source, original ID), updating only the postings of the removed
// and added blocking keys. It returns the internal ID and whether the
// profile was newly created.
func (x *Index) Upsert(p profile.Profile) (profile.ID, bool, error) {
	if x.readOnly.Load() {
		return 0, false, ErrReadOnly
	}
	m := x.metrics
	var start int64
	if m != nil {
		start = obs.Now()
	}
	if x.clean && p.SourceID != 0 && p.SourceID != 1 {
		return 0, false, fmt.Errorf("index: clean-clean upsert needs SourceID 0 or 1, got %d", p.SourceID)
	}
	if !x.clean {
		p.SourceID = 0
	}
	x.writeMu.Lock()
	defer x.writeMu.Unlock()

	created := true
	oldID, replacing := x.lookupOrig(origKey(&p))
	if replacing {
		created = false
		p.ID = oldID
	} else {
		p.ID = x.nextID
	}
	// Frame the op before mutating anything: a profile the op/snapshot
	// bounds reject fails the upsert cleanly instead of entering an
	// index it could never leave through a save or a replica.
	var rec opRec
	if x.oplog != nil {
		var err error
		if rec, err = x.nextOpFrame(&p); err != nil {
			return 0, false, err
		}
	}
	// Write-ahead: the frame reaches the durable log before any
	// in-memory structure changes, so an append failure aborts the
	// upsert with the index untouched and a crash after this point
	// still replays the op at the next boot.
	if x.wal != nil {
		if err := x.wal.append(rec.seq, rec.frame); err != nil {
			return 0, false, err
		}
	}
	if replacing {
		x.removeLocked(oldID)
	} else {
		x.nextID++
	}
	x.putLocked(p)
	x.upserts.Add(1)
	x.seq.Add(1)
	if x.oplog != nil {
		x.oplog.append(rec)
	}
	if m != nil {
		m.Upsert.Observe(obs.Now() - start)
	}
	return p.ID, created, nil
}

// Get returns a copy of the indexed profile with the given internal ID.
// The attribute slice is copied too, so callers may mutate the result
// without racing against concurrent readers of the stored profile.
func (x *Index) Get(id profile.ID) (profile.Profile, bool) {
	x.mu.RLock()
	sp, ok := x.byID[id]
	x.mu.RUnlock()
	if !ok {
		return profile.Profile{}, false
	}
	p := sp.p
	p.Attributes = append([]profile.KeyValue(nil), sp.p.Attributes...)
	return p, true
}

// Meta returns a profile's identity fields without copying its
// attributes — what response builders need per candidate, cheaper than
// Get's defensive attribute copy.
func (x *Index) Meta(id profile.ID) (originalID string, sourceID int, ok bool) {
	x.mu.RLock()
	sp, found := x.byID[id]
	x.mu.RUnlock()
	if !found {
		return "", 0, false
	}
	return sp.p.OriginalID, sp.p.SourceID, true
}

// lookupOrig resolves a (source, original ID) identity under the read lock.
func (x *Index) lookupOrig(key string) (profile.ID, bool) {
	x.mu.RLock()
	id, ok := x.byOrig[key]
	x.mu.RUnlock()
	return id, ok
}

// putLocked indexes one profile. Caller holds writeMu; p.ID is final.
func (x *Index) putLocked(p profile.Profile) {
	if b := int64(p.ID) + 1; b > x.idBound.Load() {
		x.idBound.Store(b)
	}
	sp := &storedProfile{p: p, keys: x.opts.KeysOf(&p)}
	if x.cfg.defaultJaccard {
		sp.bag = distinctBag(&p, x.cfg)
	}
	if x.lshOn() {
		sp.sig = x.signatureOf(sp)
		x.addLSHLocked(sp)
	}
	for _, kt := range sp.keys {
		s := x.shardFor(kt.Key)
		s.mu.Lock()
		pl := s.postings[kt.Key]
		if pl == nil {
			pl = &posting{cluster: kt.Cluster}
			s.postings[kt.Key] = pl
			x.numBlocks.Add(1)
		}
		if x.clean && p.SourceID == 1 {
			pl.b = append(pl.b, p.ID)
		} else {
			pl.a = append(pl.a, p.ID)
		}
		s.mu.Unlock()
	}
	x.mu.Lock()
	x.byID[p.ID] = sp
	x.byOrig[origKey(&p)] = p.ID
	x.mu.Unlock()
	x.numProfiles.Add(1)
}

// removeLocked unindexes one profile. Caller holds writeMu.
func (x *Index) removeLocked(id profile.ID) {
	x.mu.Lock()
	sp, ok := x.byID[id]
	if ok {
		delete(x.byID, id)
		delete(x.byOrig, origKey(&sp.p))
	}
	x.mu.Unlock()
	if !ok {
		return
	}
	for _, kt := range sp.keys {
		s := x.shardFor(kt.Key)
		s.mu.Lock()
		if pl := s.postings[kt.Key]; pl != nil {
			if x.clean && sp.p.SourceID == 1 {
				pl.b = removeID(pl.b, id)
			} else {
				pl.a = removeID(pl.a, id)
			}
			if pl.size() == 0 {
				delete(s.postings, kt.Key)
				x.numBlocks.Add(-1)
			}
		}
		s.mu.Unlock()
	}
	if x.lshOn() {
		x.removeLSHLocked(sp)
	}
	x.numProfiles.Add(-1)
}

// distinctBag returns the profile's distinct whole-profile tokens, the
// cached operand of the default Jaccard scorer.
func distinctBag(p *profile.Profile, cfg Config) []string {
	bag := matching.ProfileBag(p, cfg.Tokenizer)
	seen := make(map[string]struct{}, len(bag))
	out := bag[:0]
	for _, t := range bag {
		if _, dup := seen[t]; !dup {
			seen[t] = struct{}{}
			out = append(out, t)
		}
	}
	return out
}

// removeID deletes one ID from a posting list, preserving order.
func removeID(ids []profile.ID, id profile.ID) []profile.ID {
	for i, x := range ids {
		if x == id {
			return append(ids[:i], ids[i+1:]...)
		}
	}
	return ids
}
