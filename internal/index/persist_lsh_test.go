package index

import (
	"bytes"
	"math"
	"testing"
	"time"
)

// encodeVersionToBytes encodes the index at an explicit format version.
func encodeVersionToBytes(t testing.TB, x *Index, version uint64) []byte {
	t.Helper()
	var buf bytes.Buffer
	x.writeMu.Lock()
	_, err := x.encodeVersionLocked(&buf, time.Unix(0, 42), version)
	x.writeMu.Unlock()
	if err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// lshSnapshotIndex builds an LSH-enabled index with churn (replacements
// and an empty-bag profile) so the snapshot exercises every sig shape.
func lshSnapshotIndex(t testing.TB, clean bool) *Index {
	t.Helper()
	sources := 1
	if clean {
		sources = 2
	}
	x := New(clean, lshTestConfig(ProbeFallback))
	batch := synthQueryProfiles(40, sources, 17)
	for _, p := range batch {
		if _, _, err := x.Upsert(p); err != nil {
			t.Fatal(err)
		}
	}
	// Replace one profile with an empty token bag: stored without a
	// signature, so the optional-signature path is in the file.
	empty := batch[3]
	empty.Attributes = empty.Attributes[:0]
	empty.Add("name", "..?!")
	if _, _, err := x.Upsert(empty); err != nil {
		t.Fatal(err)
	}
	return x
}

// TestSnapshotRoundTripLSH pins that a save/load cycle of an LSH-enabled
// index preserves query results bitwise under every probe policy, and
// that re-encoding the restored index reproduces the original bytes
// (apart from the timestamp, which the explicit-version encoder pins).
func TestSnapshotRoundTripLSH(t *testing.T) {
	for _, clean := range []bool{false, true} {
		sources := 1
		if clean {
			sources = 2
		}
		x := lshSnapshotIndex(t, clean)
		// Exercise the probe counters so they round-trip as non-zero.
		probes := synthQueryProfiles(40, sources, 17)
		x.Query(&probes[0])

		data := encodeVersionToBytes(t, x, snapshotVersion)
		y, err := Decode(bytes.NewReader(data), lshTestConfig(ProbeFallback))
		if err != nil {
			t.Fatalf("clean=%v: decode: %v", clean, err)
		}
		if !y.LSHEnabled() {
			t.Fatal("restored index lost LSH")
		}
		lshInvariants(t, y)

		for _, p := range probes {
			p := p
			for _, pol := range []ProbePolicy{ProbeOff, ProbeFallback, ProbeUnion} {
				want := x.QueryWith(&p, ProbeOptions{Policy: pol})
				got := y.QueryWith(&p, ProbeOptions{Policy: pol})
				if len(want.Candidates) != len(got.Candidates) {
					t.Fatalf("clean=%v %v query %s: %d candidates, original %d",
						clean, pol, p.OriginalID, len(got.Candidates), len(want.Candidates))
				}
				for i := range want.Candidates {
					w, g := want.Candidates[i], got.Candidates[i]
					if w.ID != g.ID || w.SharedKeys != g.SharedKeys || w.SharedBuckets != g.SharedBuckets ||
						math.Float64bits(w.Weight) != math.Float64bits(g.Weight) {
						t.Fatalf("clean=%v %v query %s candidate %d: %+v vs original %+v",
							clean, pol, p.OriginalID, i, g, w)
					}
				}
			}
		}

		redata := encodeVersionToBytes(t, y, snapshotVersion)
		// The probe counters moved while comparing queries above; rebuild
		// the expectation from a second decode instead of a byte compare
		// of live indexes.
		z, err := Decode(bytes.NewReader(redata), lshTestConfig(ProbeFallback))
		if err != nil {
			t.Fatalf("re-decode: %v", err)
		}
		if z.Size() != x.Size() || int(z.numBuckets.Load()) != int(x.numBuckets.Load()) {
			t.Fatalf("second generation drifted: %d/%d profiles, %d/%d buckets",
				z.Size(), x.Size(), z.numBuckets.Load(), x.numBuckets.Load())
		}
	}
}

// TestSnapshotBytesDeterministicLSH pins byte-level determinism of the
// v2 encoding: decode then re-encode with a pinned timestamp reproduces
// the input exactly.
func TestSnapshotBytesDeterministicLSH(t *testing.T) {
	x := lshSnapshotIndex(t, false)
	data := encodeVersionToBytes(t, x, snapshotVersion)
	y, err := Decode(bytes.NewReader(data), lshTestConfig(ProbeFallback))
	if err != nil {
		t.Fatal(err)
	}
	redata := encodeVersionToBytes(t, y, snapshotVersion)
	if !bytes.Equal(data, redata) {
		t.Fatalf("decode/re-encode changed the bytes: %d vs %d", len(data), len(redata))
	}
}

// TestLoadV1Snapshot is the backward-compatibility acceptance test: a
// genuine version-1 byte stream (no LSH section) still loads — both
// under a plain config and under an LSH-enabled one, where signatures
// and buckets are recomputed from the token bags exactly as a fresh
// build would produce them.
func TestLoadV1Snapshot(t *testing.T) {
	for _, clean := range []bool{false, true} {
		src := smallTestIndex(t, clean)
		v1 := encodeVersionToBytes(t, src, snapshotVersionV1)

		plain, err := Decode(bytes.NewReader(v1), DefaultConfig())
		if err != nil {
			t.Fatalf("clean=%v: v1 snapshot rejected under plain config: %v", clean, err)
		}
		if plain.Size() != src.Size() || plain.LSHEnabled() {
			t.Fatalf("clean=%v: plain v1 restore: size %d/%d, lsh %v",
				clean, plain.Size(), src.Size(), plain.LSHEnabled())
		}

		lshIdx, err := Decode(bytes.NewReader(v1), lshTestConfig(ProbeFallback))
		if err != nil {
			t.Fatalf("clean=%v: v1 snapshot rejected under LSH config: %v", clean, err)
		}
		if !lshIdx.LSHEnabled() {
			t.Fatal("LSH config did not enable the subsystem on a v1 restore")
		}
		lshInvariants(t, lshIdx)

		// The recomputed state must equal a fresh LSH build of the same
		// profiles: identical signatures, identical probe results.
		sources := 1
		if clean {
			sources = 2
		}
		fresh := New(clean, lshTestConfig(ProbeFallback))
		for _, p := range synthQueryProfiles(12, sources, 7) {
			if _, _, err := fresh.Upsert(p); err != nil {
				t.Fatal(err)
			}
		}
		for _, p := range synthQueryProfiles(12, sources, 7) {
			p := p
			want := fresh.QueryWith(&p, ProbeOptions{Policy: ProbeUnion})
			got := lshIdx.QueryWith(&p, ProbeOptions{Policy: ProbeUnion})
			if len(want.Candidates) != len(got.Candidates) {
				t.Fatalf("clean=%v query %s: %d candidates, fresh build %d",
					clean, p.OriginalID, len(got.Candidates), len(want.Candidates))
			}
			for i := range want.Candidates {
				w, g := want.Candidates[i], got.Candidates[i]
				if w.ID != g.ID || w.SharedBuckets != g.SharedBuckets ||
					math.Float64bits(w.Weight) != math.Float64bits(g.Weight) {
					t.Fatalf("clean=%v query %s candidate %d: %+v vs fresh %+v",
						clean, p.OriginalID, i, g, w)
				}
			}
		}
	}
}

// TestLoadLSHSnapshotWithLSHOff pins the downgrade path: a v2 file with
// signatures loads under a plain config, drops the signatures, serves
// queries identically to a never-LSH index, and re-saves as hasLSH=0.
func TestLoadLSHSnapshotWithLSHOff(t *testing.T) {
	x := lshSnapshotIndex(t, false)
	data := encodeVersionToBytes(t, x, snapshotVersion)
	y, err := Decode(bytes.NewReader(data), DefaultConfig())
	if err != nil {
		t.Fatalf("LSH snapshot rejected under plain config: %v", err)
	}
	if y.LSHEnabled() {
		t.Fatal("plain config restored with LSH on")
	}
	for _, sp := range y.byID {
		if sp.sig != nil {
			t.Fatalf("profile %d kept a signature under a plain config", sp.p.ID)
		}
	}
	for _, p := range synthQueryProfiles(40, 1, 17) {
		p := p
		want := refCandidates(y, &p)
		got := y.Query(&p).Candidates
		if len(want) != len(got) {
			t.Fatalf("query %s: %d candidates, reference %d", p.OriginalID, len(got), len(want))
		}
		for i := range want {
			if want[i].ID != got[i].ID || math.Float64bits(want[i].Weight) != math.Float64bits(got[i].Weight) {
				t.Fatalf("query %s candidate %d: %+v vs %+v", p.OriginalID, i, got[i], want[i])
			}
		}
	}
	// Re-save drops the section cleanly and the result loads everywhere.
	again := encodeVersionToBytes(t, y, snapshotVersion)
	if _, err := Decode(bytes.NewReader(again), lshTestConfig(ProbeUnion)); err != nil {
		t.Fatalf("re-saved plain snapshot rejected under LSH config: %v", err)
	}
}

// TestDecodeRejectsCraftedLSHSections walks targeted corruptions of the
// LSH section: every one must produce an error, never a panic.
func TestDecodeRejectsCraftedLSHSections(t *testing.T) {
	x := lshSnapshotIndex(t, false)
	valid := encodeVersionToBytes(t, x, snapshotVersion)
	if _, err := Decode(bytes.NewReader(valid), lshTestConfig(ProbeFallback)); err != nil {
		t.Fatalf("valid LSH snapshot rejected: %v", err)
	}

	// The LSH presence byte sits right after the ten header varints.
	// Locate it by decoding the prefix the same way the decoder does.
	offset := len(snapshotMagic)
	br := bytes.NewReader(valid[offset:])
	for i := 0; i < 10; i++ { // version + 9 header fields (seq since v3)
		for {
			b, err := br.ReadByte()
			if err != nil {
				t.Fatal(err)
			}
			offset++
			if b < 0x80 {
				break
			}
		}
	}
	if valid[offset] != 1 {
		t.Fatalf("expected LSH presence byte at offset %d, found %#x", offset, valid[offset])
	}

	mutate := func(name string, f func(b []byte) []byte) {
		b := f(append([]byte(nil), valid...))
		if _, err := Decode(bytes.NewReader(b), lshTestConfig(ProbeFallback)); err == nil {
			t.Errorf("%s: crafted snapshot accepted", name)
		}
	}
	mutate("presence byte 2", func(b []byte) []byte { b[offset] = 2; return b })
	mutate("zero signature length", func(b []byte) []byte { b[offset+1] = 0; return b })
	mutate("truncated inside LSH header", func(b []byte) []byte { return b[:offset+2] })
	mutate("signature bytes flipped", func(b []byte) []byte {
		// Flipping a bit mid-file corrupts either a signature value or a
		// string, and in every case the CRC no longer matches.
		b[len(b)/2] ^= 0x40
		return b
	})
	mutate("presence byte cleared", func(b []byte) []byte {
		// hasLSH=0 shrinks the expected layout: the following LSH header
		// bytes are then parsed as profile records, which cannot satisfy
		// both the record validation and the trailing CRC.
		b[offset] = 0
		return b
	})
}
