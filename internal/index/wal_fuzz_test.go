package index

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzWALRecovery feeds arbitrary bytes to the WAL segment scanner as a
// crash-damaged log. The contract: recovery never panics — it either
// replays a valid prefix (truncating the garbage tail in place, so a
// second recovery of the same directory converges to the same state) or
// returns an error (sequence gap, frames contradicting the index).
// Seeds cover a genuine segment, truncated and bit-flipped tails (the
// two crash artifacts), a segment starting past seq 1 (gap), and noise.
func FuzzWALRecovery(f *testing.F) {
	src := New(true, opLogConfig())
	for _, p := range synthQueryProfiles(10, 2, 37) {
		if _, _, err := src.Upsert(p); err != nil {
			f.Fatal(err)
		}
	}
	valid, _, err := src.OpsSince(0, 1<<20)
	if err != nil {
		f.Fatal(err)
	}
	gapped, _, err := src.OpsSince(4, 1<<20) // starts at seq 5: a gap for a fresh index
	if err != nil {
		f.Fatal(err)
	}

	f.Add(append([]byte(nil), valid...))
	f.Add(append([]byte(nil), valid[:len(valid)/2]...)) // mid-frame truncation
	f.Add(append([]byte(nil), valid[:len(valid)-3]...)) // lost CRC tail
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/2] ^= 0x20
	f.Add(flipped)
	f.Add(append([]byte(nil), gapped...))
	f.Add([]byte("not a segment at all"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "00000001.seg"), data, 0o644); err != nil {
			t.Fatal(err)
		}
		x := New(true, opLogConfig())
		if _, err := x.OpenWAL(walConfig(dir)); err != nil {
			return // rejected cleanly (gap, contradiction) — fine
		}
		// Recovered: the index must hold together under use, and the
		// truncated-in-place log must recover a second time to the same
		// sequence (the last good frame is stable).
		s := x.Snapshot()
		if s.Profiles != x.Size() {
			t.Fatalf("snapshot profiles %d != size %d", s.Profiles, x.Size())
		}
		q := mkProfile("probe", "name", "alpha shared0 tok1")
		x.Query(&q)
		if _, _, err := x.Upsert(mkProfile("fresh", "name", "post fuzz upsert")); err != nil {
			t.Fatalf("upsert on recovered index: %v", err)
		}
		seq := x.Seq()
		if err := x.CloseWAL(); err != nil {
			t.Fatal(err)
		}
		y := New(true, opLogConfig())
		if _, err := y.OpenWAL(walConfig(dir)); err != nil {
			t.Fatalf("second recovery: %v", err)
		}
		if y.Seq() != seq {
			t.Fatalf("second recovery seq %d != first %d", y.Seq(), seq)
		}
	})
}
