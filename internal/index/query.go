package index

import (
	"cmp"
	"math"
	"slices"
	"sort"
	"sync"

	"sparker/internal/blocking"
	"sparker/internal/core"
	"sparker/internal/evaluation"
	"sparker/internal/kernel"
	"sparker/internal/matching"
	"sparker/internal/metablocking"
	"sparker/internal/profile"
)

// Candidate is one ranked match candidate of a query.
type Candidate struct {
	ID profile.ID
	// Weight is the meta-blocking scheme weight of the candidate.
	Weight float64
	// SharedKeys is the number of blocking keys shared with the query.
	SharedKeys int
}

// QueryResult carries the ranked candidates plus the probe accounting
// that shows how much work the index avoided versus a full scan.
type QueryResult struct {
	// Candidates are ranked by weight descending (ties by ID).
	Candidates []Candidate
	// Keys is the number of blocking keys the query profile produced.
	Keys int
	// BlocksProbed counts postings found for those keys.
	BlocksProbed int
	// BlocksPurged counts postings skipped as oversized (the online
	// analogue of block purging).
	BlocksPurged int
	// BlocksFiltered counts postings skipped as the least distinctive of
	// the query's blocks (the online analogue of block filtering).
	BlocksFiltered int
	// PostingsScanned counts profile entries read across probed postings —
	// the true per-query work bound, orders of magnitude below the
	// collection size for selective queries.
	PostingsScanned int
	// Pruned counts candidates dropped by the pruning rule.
	Pruned int

	// selfID is the query profile's internal ID when it is itself
	// indexed, or -1; Resolve reuses it to label matches.
	selfID profile.ID
}

// candAcc accumulates the per-candidate co-occurrence statistics the
// weight schemes need, mirroring metablocking's edge accumulator.
type candAcc struct {
	cbs        int
	arcs       float64
	entropySum float64
	entArcs    float64
}

// keyBufPool recycles the per-query blocking-key buffers of Query.
var keyBufPool = sync.Pool{New: func() any { return new([]blocking.KeyedToken) }}

// queryScratch is the flat-array candidate kernel of the query hot path:
// the shared dense, epoch-stamped scratch primitive the meta-blocker
// uses, instantiated with the candidate accumulator and indexed by the
// index's dense internal profile IDs. Scratches are pooled on the Index
// (sync.Pool is per-P sharded, so concurrent queries never contend),
// replacing the historical map[profile.ID]candAcc that re-allocated and
// re-hashed per query. Kernel growth (Slot's Ensure path) also covers
// concurrent upserts appending fresh profiles to a posting between the
// size probe and the scan.
type queryScratch = kernel.Scratch[candAcc]

// getScratch leases a query scratch sized for the current ID space.
func (x *Index) getScratch() *queryScratch {
	s, _ := x.scratchPool.Get().(*queryScratch)
	if s == nil {
		s = &queryScratch{}
	}
	s.Ensure(int(x.idBound.Load()))
	s.Begin()
	return s
}

func (x *Index) putScratch(s *queryScratch) { x.scratchPool.Put(s) }

// Query ranks the candidate matches of p by probing only the postings its
// blocking keys hit. p does not need to be indexed; when it is (same
// source and original ID), it is excluded from its own candidates.
func (x *Index) Query(p *profile.Profile) *QueryResult {
	x.queries.Add(1)
	// Dirty indexes store everything under source 0 (Upsert normalizes);
	// queries must match, or self-exclusion and loose-schema keys break.
	if !x.clean && p.SourceID != 0 {
		q := *p
		q.SourceID = 0
		p = &q
	}
	// Keys live only through the size probe below, so they are derived
	// into a pooled buffer — the stored-profile path in Upsert keeps the
	// allocating KeysOf, since it retains the slice.
	kb := keyBufPool.Get().(*[]blocking.KeyedToken)
	keys := x.opts.AppendKeysOf((*kb)[:0], p)
	defer func() {
		*kb = keys[:0]
		keyBufPool.Put(kb)
	}()
	res := &QueryResult{Keys: len(keys)}

	selfID := profile.ID(-1)
	if id, ok := x.lookupOrig(origKey(p)); ok {
		selfID = id
	}

	maxSize := int(x.cfg.MaxBlockFraction * float64(x.numProfiles.Load()))
	if maxSize < 2 {
		maxSize = 2
	}

	// Pass 1 — size probe: find the query's live postings and drop
	// oversized ones (block purging, applied per query).
	type probe struct {
		key  string
		sh   *shard
		size int
	}
	probes := make([]probe, 0, len(keys))
	for _, kt := range keys {
		s := x.shardFor(kt.Key)
		s.mu.RLock()
		pl := s.postings[kt.Key]
		sz := 0
		if pl != nil {
			sz = pl.size()
		}
		s.mu.RUnlock()
		if pl == nil {
			continue
		}
		if sz > maxSize {
			res.BlocksPurged++
			continue
		}
		probes = append(probes, probe{key: kt.Key, sh: s, size: sz})
	}
	// The query's block count for the ratio schemes (|B_p| in the batch
	// blocker) counts only live, unpurged postings — raw token counts
	// would inflate JS unions and can clamp ECBS to zero on small
	// indexes.
	liveKeys := len(probes)

	// Block filtering, applied per query: scan only the smallest (most
	// distinctive) FilterRatio fraction of the hit postings.
	if x.cfg.FilterRatio < 1 && len(probes) > 0 {
		sort.SliceStable(probes, func(i, j int) bool {
			if probes[i].size != probes[j].size {
				return probes[i].size < probes[j].size
			}
			return probes[i].key < probes[j].key
		})
		keep := int(math.Ceil(x.cfg.FilterRatio * float64(len(probes))))
		if keep < 1 {
			keep = 1
		}
		res.BlocksFiltered = len(probes) - keep
		probes = probes[:keep]
	}

	// Pass 2 — scan the surviving postings, accumulating co-occurrence
	// statistics per candidate in the pooled flat scratch: queries are the
	// hot path, and the dense kernel does no per-candidate hashing or
	// allocation at all.
	sc := x.getScratch()
	defer x.putScratch(sc)
	useEntropy := x.cfg.Entropy != nil
	for _, pr := range probes {
		s := pr.sh
		s.mu.RLock()
		pl := s.postings[pr.key]
		if pl == nil { // deleted between passes by a concurrent upsert
			s.mu.RUnlock()
			continue
		}
		res.BlocksProbed++
		entropy := 1.0
		if useEntropy {
			entropy = x.cfg.Entropy.EntropyOf(pl.cluster)
		}
		card := pl.comparisons(x.clean)
		visit := func(ids []profile.ID) {
			res.PostingsScanned += len(ids)
			for _, id := range ids {
				if id == selfID {
					continue
				}
				a := sc.Slot(id)
				a.cbs++
				a.arcs += 1 / card
				a.entropySum += entropy
				a.entArcs += entropy / card
			}
		}
		if x.clean {
			// Clean-clean: candidates live in the opposite source only.
			if p.SourceID == 1 {
				visit(pl.a)
			} else {
				visit(pl.b)
			}
		} else {
			visit(pl.a)
		}
		s.mu.RUnlock()
	}

	res.selfID = selfID
	res.Candidates = x.weigh(liveKeys, sc)
	res.Pruned = x.prune(res)
	return res
}

// weigh converts the accumulated co-occurrence statistics into ranked
// weighted candidates using the configured meta-blocking scheme.
func (x *Index) weigh(queryKeys int, sc *queryScratch) []Candidate {
	if len(sc.Touched()) == 0 {
		return nil
	}
	numBlocks := float64(x.numBlocks.Load())
	// Only the ratio schemes need each candidate's block count; CBS and
	// ARCS skip the per-candidate profile lookups entirely.
	needsCandKeys := false
	switch x.cfg.Scheme {
	case metablocking.ECBS, metablocking.JS, metablocking.EJS:
		needsCandKeys = true
	}
	out := make([]Candidate, 0, len(sc.Touched()))
	x.mu.RLock()
	for _, id := range sc.Touched() {
		a := sc.At(id)
		candKeys := 0
		if needsCandKeys {
			if sp := x.byID[id]; sp != nil {
				candKeys = len(sp.keys)
			}
		}
		out = append(out, Candidate{
			ID:         id,
			Weight:     x.weight(a, queryKeys, candKeys, numBlocks),
			SharedKeys: a.cbs,
		})
	}
	x.mu.RUnlock()
	slices.SortFunc(out, func(a, b Candidate) int {
		if a.Weight != b.Weight {
			return cmp.Compare(b.Weight, a.Weight)
		}
		return cmp.Compare(a.ID, b.ID)
	})
	return out
}

// weight mirrors metablocking's edge weighting for one query/candidate
// pair. EJS needs the full graph's node degrees, which an online index
// does not maintain, so it degrades to JS.
func (x *Index) weight(a *candAcc, queryKeys, candKeys int, numBlocks float64) float64 {
	cbs := float64(a.cbs)
	if cbs == 0 {
		return 0
	}
	useEntropy := x.cfg.Entropy != nil
	meanEntropy := a.entropySum / cbs
	switch x.cfg.Scheme {
	case metablocking.ECBS:
		w := cbs * metablocking.LogRatio(numBlocks, float64(queryKeys)) * metablocking.LogRatio(numBlocks, float64(candKeys))
		if useEntropy {
			w *= meanEntropy
		}
		return w
	case metablocking.JS, metablocking.EJS:
		union := float64(queryKeys) + float64(candKeys) - cbs
		if union <= 0 {
			return 0
		}
		w := cbs / union
		if useEntropy {
			w *= meanEntropy
		}
		return w
	case metablocking.ARCS:
		if useEntropy {
			return a.entArcs
		}
		return a.arcs
	default: // CBS
		if useEntropy {
			return a.entropySum
		}
		return cbs
	}
}

// prune applies the configured rule to the ranked candidates in place and
// returns how many were dropped.
func (x *Index) prune(res *QueryResult) int {
	before := len(res.Candidates)
	switch x.cfg.Prune {
	case PruneTopK:
		if before > x.cfg.MaxCandidates {
			res.Candidates = res.Candidates[:x.cfg.MaxCandidates]
		}
	case PruneMean:
		var sum float64
		for _, c := range res.Candidates {
			sum += c.Weight
		}
		mean := sum / float64(before)
		keep := res.Candidates[:0]
		for _, c := range res.Candidates {
			if c.Weight >= mean {
				keep = append(keep, c)
			}
		}
		res.Candidates = keep
	}
	return before - len(res.Candidates)
}

// Resolution is the online analogue of one pipeline run for a single
// query profile: the ranked blocking candidates plus the scored matches.
type Resolution struct {
	// Query is the candidate-generation result.
	Query *QueryResult
	// Matches are the candidates scoring at or above the match threshold,
	// sorted by score descending. B is the candidate's internal ID; A is
	// the query profile's internal ID when the query is itself indexed,
	// and -1 otherwise (an ad-hoc probe has no internal identity).
	Matches []matching.Match
	// Comparisons is the number of candidate profiles actually scored —
	// the per-query matcher work.
	Comparisons int
}

// Resolve runs Query and then scores every surviving candidate with the
// configured similarity measure, keeping matches at or above the match
// threshold — blocking, meta-blocking pruning and matching collapsed into
// one sub-millisecond point lookup.
func (x *Index) Resolve(p *profile.Profile) *Resolution {
	qr := x.Query(p)
	r := &Resolution{Query: qr}
	queryID := qr.selfID

	// Collect candidate profile snapshots under the read lock, score after
	// releasing it: upserts replace stored profiles instead of mutating
	// them, so the pointers stay valid.
	type scored struct {
		id profile.ID
		sp *storedProfile
	}
	cands := make([]scored, 0, len(qr.Candidates))
	x.mu.RLock()
	for _, c := range qr.Candidates {
		if sp := x.byID[c.ID]; sp != nil {
			cands = append(cands, scored{id: c.ID, sp: sp})
		}
	}
	x.mu.RUnlock()

	if x.cfg.defaultJaccard {
		// Default-Jaccard fast path: candidates carry their distinct token
		// bag from upsert time, so the query is tokenized once and each
		// comparison is a set intersection — bitwise-identical scores to
		// matching.JaccardMeasure with none of its per-pair tokenization.
		qbag := matching.ProfileBag(p, x.cfg.Tokenizer)
		qset := make(map[string]struct{}, len(qbag))
		for _, t := range qbag {
			qset[t] = struct{}{}
		}
		for _, c := range cands {
			r.Comparisons++
			score := jaccardBagSet(qset, c.sp.bag)
			if score >= x.cfg.MatchThreshold {
				r.Matches = append(r.Matches, matching.Match{A: queryID, B: c.id, Score: score})
			}
		}
	} else {
		for _, c := range cands {
			r.Comparisons++
			score := x.cfg.Measure(p, &c.sp.p)
			if score >= x.cfg.MatchThreshold {
				r.Matches = append(r.Matches, matching.Match{A: queryID, B: c.id, Score: score})
			}
		}
	}
	sort.Slice(r.Matches, func(i, j int) bool {
		if r.Matches[i].Score != r.Matches[j].Score {
			return r.Matches[i].Score > r.Matches[j].Score
		}
		return r.Matches[i].B < r.Matches[j].B
	})
	return r
}

// jaccardBagSet computes |A∩B|/|A∪B| of a query token set against a
// candidate's cached distinct bag, matching matching.JaccardTokens bit
// for bit (same cardinalities, same division).
func jaccardBagSet(qset map[string]struct{}, bag []string) float64 {
	inter := 0
	for _, t := range bag {
		if _, ok := qset[t]; ok {
			inter++
		}
	}
	union := len(qset) + len(bag) - inter
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

// Report evaluates the resolution against a ground truth, producing the
// same per-stage quality rows as the batch pipeline's StepReport table.
// The query profile must carry the internal ID the ground truth uses.
func (r *Resolution) Report(queryID profile.ID, gt *evaluation.GroundTruth, maxComparisons int64) []core.StepReport {
	pairs := make([]blocking.Pair, 0, len(r.Query.Candidates))
	for _, c := range r.Query.Candidates {
		pairs = append(pairs, blocking.Pair{A: queryID, B: c.ID}.Canonical())
	}
	matches := make([]matching.Match, len(r.Matches))
	copy(matches, r.Matches)
	for i := range matches {
		p := blocking.Pair{A: queryID, B: matches[i].B}.Canonical()
		matches[i].A, matches[i].B = p.A, p.B
	}
	return []core.StepReport{
		{Step: "index-query", Metrics: evaluation.EvaluatePairs(pairs, gt, maxComparisons)},
		{Step: "index-matching", Metrics: evaluation.EvaluateMatches(matches, gt, maxComparisons)},
	}
}
