package index

import (
	"cmp"
	"math"
	"slices"
	"sort"
	"sync"

	"sparker/internal/blocking"
	"sparker/internal/core"
	"sparker/internal/evaluation"
	"sparker/internal/kernel"
	"sparker/internal/lsh"
	"sparker/internal/matching"
	"sparker/internal/metablocking"
	"sparker/internal/obs"
	"sparker/internal/profile"
)

// Candidate is one ranked match candidate of a query.
type Candidate struct {
	ID profile.ID
	// Weight is the meta-blocking scheme weight of the candidate. A
	// probe-only candidate (SharedKeys zero, surfaced by the LSH probe)
	// is instead weighted by estimated Jaccard or shared-bucket count,
	// per LSHConfig.Weight.
	Weight float64
	// SharedKeys is the number of blocking keys shared with the query.
	SharedKeys int
	// SharedBuckets is the number of LSH buckets shared with the query
	// (zero unless a probe ran).
	SharedBuckets int
}

// QueryResult carries the ranked candidates plus the probe accounting
// that shows how much work the index avoided versus a full scan.
type QueryResult struct {
	// Candidates are ranked by weight descending (ties by ID).
	Candidates []Candidate
	// Keys is the number of blocking keys the query profile produced.
	Keys int
	// BlocksProbed counts postings found for those keys.
	BlocksProbed int
	// BlocksPurged counts postings skipped as oversized (the online
	// analogue of block purging).
	BlocksPurged int
	// BlocksFiltered counts postings skipped as the least distinctive of
	// the query's blocks (the online analogue of block filtering).
	BlocksFiltered int
	// PostingsScanned counts profile entries read across probed postings
	// (token postings and, when a probe ran, LSH buckets) — the true
	// per-query work bound, orders of magnitude below the collection
	// size for selective queries.
	PostingsScanned int
	// Pruned counts candidates dropped by the pruning rule.
	Pruned int

	// StageNanos is the per-stage wall-time breakdown of this query
	// (indexed by Stage; StageScore is filled by Resolve). The slots are
	// contiguous — they sum to the query's total latency — and feed both
	// the index-level stage histograms and the serving layer's ?debug=1
	// response and slow-query log. All zeros when Config.DisableMetrics
	// turned instrumentation off.
	StageNanos [NumStages]int64

	// LSHProbed reports whether the LSH probe ran for this query (under
	// ProbeFallback, only when token candidates fell below the floor).
	LSHProbed bool
	// BucketsProbed counts LSH bucket postings scanned by the probe;
	// BucketsPurged counts buckets skipped as oversized (the same purge
	// bound the token postings use).
	BucketsProbed int
	BucketsPurged int
	// LSHCandidates counts candidates surfaced only by the probe — they
	// share no blocking key with the query and token blocking alone
	// would have missed them. Counted before pruning, so it can exceed
	// len(Candidates).
	LSHCandidates int

	// Truncated reports that the per-request budget
	// (ResolveOptions.Budget) tripped before the resolution completed:
	// the result is the best-first prefix the budget allowed, not the
	// full answer. Always false under an unlimited budget.
	Truncated bool
	// TruncatedStage names the stage that was running when the budget
	// first tripped ("candidates", "weigh", "score", ...); empty when
	// not truncated.
	TruncatedStage string

	// selfID is the query profile's internal ID when it is itself
	// indexed, or -1; Resolve reuses it to label matches.
	selfID profile.ID
}

// candAcc accumulates the per-candidate co-occurrence statistics the
// weight schemes need, mirroring metablocking's edge accumulator.
// buckets counts shared LSH buckets; a candidate with cbs zero and
// buckets non-zero was found by the probe alone.
type candAcc struct {
	cbs        int
	arcs       float64
	entropySum float64
	entArcs    float64
	buckets    int
}

// keyBufPool recycles the per-query blocking-key buffers of Query.
var keyBufPool = sync.Pool{New: func() any { return new([]blocking.KeyedToken) }}

// queryScratch is the flat-array candidate kernel of the query hot path:
// the shared dense, epoch-stamped scratch primitive the meta-blocker
// uses, instantiated with the candidate accumulator and indexed by the
// index's dense internal profile IDs. Scratches are pooled on the Index
// (sync.Pool is per-P sharded, so concurrent queries never contend),
// replacing the historical map[profile.ID]candAcc that re-allocated and
// re-hashed per query. Kernel growth (Slot's Ensure path) also covers
// concurrent upserts appending fresh profiles to a posting between the
// size probe and the scan.
type queryScratch = kernel.Scratch[candAcc]

// getScratch leases a query scratch sized for the current ID space.
func (x *Index) getScratch() *queryScratch {
	s, _ := x.scratchPool.Get().(*queryScratch)
	if s == nil {
		s = &queryScratch{}
	}
	s.Ensure(int(x.idBound.Load()))
	s.Begin()
	return s
}

func (x *Index) putScratch(s *queryScratch) { x.scratchPool.Put(s) }

// Query ranks the candidate matches of p by probing only the postings its
// blocking keys hit (plus, per the configured LSH policy, the LSH buckets
// its signature hits). p does not need to be indexed; when it is (same
// source and original ID), it is excluded from its own candidates.
func (x *Index) Query(p *profile.Profile) *QueryResult {
	return x.QueryWith(p, ProbeOptions{Policy: x.cfg.LSH.Policy})
}

// QueryWith is Query with per-query probe overrides: serving layers use
// it to let one request opt into (or out of) the LSH probe without
// rebuilding the index. On an index without LSH every policy degrades to
// ProbeOff.
func (x *Index) QueryWith(p *profile.Profile, opts ProbeOptions) *QueryResult {
	return x.queryBudget(p, opts, Budget{})
}

// queryBudget is the budget-aware query core behind QueryWith and
// ResolveWithOptions. A zero budget takes exactly the historical path:
// every deadline check hides behind a non-zero-field test, so unlimited
// queries stay bitwise-identical and allocation-identical.
func (x *Index) queryBudget(p *profile.Profile, opts ProbeOptions, budget Budget) *QueryResult {
	x.queries.Add(1)
	// The stage clock slices the query into contiguous per-stage
	// durations: a stack value ticking into the result's fixed array,
	// so instrumentation adds monotonic reads and atomic adds but no
	// allocations to the hot path.
	m := x.metrics
	res := &QueryResult{}
	var clk obs.StageClock
	if m != nil {
		clk.Start()
	}
	// Dirty indexes store everything under source 0 (Upsert normalizes);
	// queries must match, or self-exclusion and loose-schema keys break.
	if !x.clean && p.SourceID != 0 {
		q := *p
		q.SourceID = 0
		p = &q
	}
	// Keys live only through the size probe below, so they are derived
	// into a pooled buffer — the stored-profile path in Upsert keeps the
	// allocating KeysOf, since it retains the slice.
	kb := keyBufPool.Get().(*[]blocking.KeyedToken)
	keys := x.opts.AppendKeysOf((*kb)[:0], p)
	defer func() {
		*kb = keys[:0]
		keyBufPool.Put(kb)
	}()
	res.Keys = len(keys)
	clk.Tick(res.StageNanos[:], int(StageTokenize))

	selfID := profile.ID(-1)
	if id, ok := x.lookupOrig(origKey(p)); ok {
		selfID = id
	}

	maxSize := int(x.cfg.MaxBlockFraction * float64(x.numProfiles.Load()))
	if maxSize < 2 {
		maxSize = 2
	}

	// Pass 1 — size probe: find the query's live postings and drop
	// oversized ones (block purging, applied per query).
	type probe struct {
		key  string
		sh   *shard
		size int
	}
	probes := make([]probe, 0, len(keys))
	for _, kt := range keys {
		s := x.shardFor(kt.Key)
		s.mu.RLock()
		pl := s.postings[kt.Key]
		sz := 0
		if pl != nil {
			sz = pl.size()
		}
		s.mu.RUnlock()
		if pl == nil {
			continue
		}
		if sz > maxSize {
			res.BlocksPurged++
			continue
		}
		probes = append(probes, probe{key: kt.Key, sh: s, size: sz})
	}
	// The query's block count for the ratio schemes (|B_p| in the batch
	// blocker) counts only live, unpurged postings — raw token counts
	// would inflate JS unions and can clamp ECBS to zero on small
	// indexes.
	liveKeys := len(probes)

	// Block filtering, applied per query: scan only the smallest (most
	// distinctive) FilterRatio fraction of the hit postings.
	if x.cfg.FilterRatio < 1 && len(probes) > 0 {
		sort.SliceStable(probes, func(i, j int) bool {
			if probes[i].size != probes[j].size {
				return probes[i].size < probes[j].size
			}
			return probes[i].key < probes[j].key
		})
		keep := int(math.Ceil(x.cfg.FilterRatio * float64(len(probes))))
		if keep < 1 {
			keep = 1
		}
		res.BlocksFiltered = len(probes) - keep
		probes = probes[:keep]
	}
	clk.Tick(res.StageNanos[:], int(StagePurgeFilter))

	// Pass 2 — scan the surviving postings, accumulating co-occurrence
	// statistics per candidate in the pooled flat scratch: queries are the
	// hot path, and the dense kernel does no per-candidate hashing or
	// allocation at all.
	sc := x.getScratch()
	defer x.putScratch(sc)
	useEntropy := x.cfg.Entropy != nil
	for _, pr := range probes {
		// Deadline boundary: one clock read per posting, only when a
		// deadline is set. Candidates accumulated so far still rank and
		// score below — a truncated answer, not an empty one.
		if budget.expired() {
			res.truncate(StageCandidates)
			break
		}
		s := pr.sh
		s.mu.RLock()
		pl := s.postings[pr.key]
		if pl == nil { // deleted between passes by a concurrent upsert
			s.mu.RUnlock()
			continue
		}
		res.BlocksProbed++
		entropy := 1.0
		if useEntropy {
			entropy = x.cfg.Entropy.EntropyOf(pl.cluster)
		}
		card := pl.comparisons(x.clean)
		visit := func(ids []profile.ID) {
			res.PostingsScanned += len(ids)
			for _, id := range ids {
				if id == selfID {
					continue
				}
				a := sc.Slot(id)
				a.cbs++
				a.arcs += 1 / card
				a.entropySum += entropy
				a.entArcs += entropy / card
			}
		}
		if x.clean {
			// Clean-clean: candidates live in the opposite source only.
			if p.SourceID == 1 {
				visit(pl.a)
			} else {
				visit(pl.b)
			}
		} else {
			visit(pl.a)
		}
		s.mu.RUnlock()
	}
	clk.Tick(res.StageNanos[:], int(StageCandidates))

	// Pass 3 — the LSH probe, when the policy asks for it: walk the
	// bucket postings the query's signature hits, marking co-occurrence
	// in the same pooled scratch. Shared-bucket counts never alter a
	// token candidate's scheme weight; they only surface candidates the
	// token postings missed (weighted in weigh below).
	var qsig []uint64
	if x.lshOn() && opts.Policy != ProbeOff {
		floor := opts.Floor
		if floor <= 0 {
			floor = x.cfg.LSH.FallbackFloor
		}
		if budget.expired() {
			// An expired deadline skips the probe outright (a bucket walk
			// can't be stopped best-first; not starting it is the bound).
			res.truncate(StageLSHProbe)
		} else if opts.Policy == ProbeUnion || len(sc.Touched()) < floor {
			ls := x.lsh.getScratch()
			qsig = x.querySignature(ls, p)
			if qsig != nil {
				res.LSHProbed = true
				x.lshProbes.Add(1)
				x.probeLSH(p, qsig, selfID, maxSize, sc, res)
			}
			defer x.lsh.putScratch(ls)
		}
		clk.Tick(res.StageNanos[:], int(StageLSHProbe))
	}

	res.selfID = selfID
	x.weigh(res, liveKeys, sc, qsig, budget)
	clk.Tick(res.StageNanos[:], int(StageWeigh))
	res.Pruned = x.prune(res)
	clk.Tick(res.StageNanos[:], int(StagePrune))
	if m != nil {
		var total int64
		for s := StageTokenize; s <= StagePrune; s++ {
			// The probe stage stays clean: only queries that actually
			// probed observe into its histogram.
			if s == StageLSHProbe && !res.LSHProbed {
				continue
			}
			m.Stages[s].Observe(res.StageNanos[s])
			total += res.StageNanos[s]
		}
		m.Query.Observe(total)
		m.Candidates.Observe(int64(len(res.Candidates)))
	}
	return res
}

// probeLSH scans the bucket postings of the query signature's band keys,
// accumulating shared-bucket counts per candidate.
func (x *Index) probeLSH(p *profile.Profile, qsig []uint64, selfID profile.ID, maxSize int, sc *queryScratch, res *QueryResult) {
	for b := 0; b < x.lsh.bands; b++ {
		key := lsh.BandKey(qsig, b, x.lsh.rows)
		s := x.bucketShard(key)
		s.mu.RLock()
		pl := s.buckets[key]
		if pl == nil {
			s.mu.RUnlock()
			continue
		}
		// The same per-query purge bound as the token postings: a bucket
		// holding most of the collection (banding noise at low
		// thresholds) is skipped, not scanned.
		if pl.size() > maxSize {
			res.BucketsPurged++
			s.mu.RUnlock()
			continue
		}
		res.BucketsProbed++
		visit := func(ids []profile.ID) {
			res.PostingsScanned += len(ids)
			for _, id := range ids {
				if id == selfID {
					continue
				}
				sc.Slot(id).buckets++
			}
		}
		if x.clean {
			if p.SourceID == 1 {
				visit(pl.a)
			} else {
				visit(pl.b)
			}
		} else {
			visit(pl.a)
		}
		s.mu.RUnlock()
	}
}

// weigh converts the accumulated co-occurrence statistics into ranked
// weighted candidates using the configured meta-blocking scheme, filling
// res.Candidates and res.LSHCandidates. Probe-only candidates (no shared
// blocking key — every co-occurrence scheme scores them zero) are
// weighted by estimated Jaccard against qsig, or by shared-bucket count,
// per LSHConfig.Weight.
func (x *Index) weigh(res *QueryResult, queryKeys int, sc *queryScratch, qsig []uint64, budget Budget) {
	if len(sc.Touched()) == 0 {
		return
	}
	numBlocks := float64(x.numBlocks.Load())
	// Only the ratio schemes need each candidate's block count; CBS and
	// ARCS skip the per-candidate profile lookups entirely.
	needsCandKeys := false
	switch x.cfg.Scheme {
	case metablocking.ECBS, metablocking.JS, metablocking.EJS:
		needsCandKeys = true
	}
	out := make([]Candidate, 0, len(sc.Touched()))
	x.mu.RLock()
	for i, id := range sc.Touched() {
		// Deadline boundary, every weighCheckInterval candidates: the
		// candidates weighed so far still rank best-first below.
		if budget.Deadline != 0 && i%weighCheckInterval == 0 && budget.expired() {
			res.truncate(StageWeigh)
			break
		}
		a := sc.At(id)
		if a.cbs == 0 {
			// Probe-only candidate: reachable only when an LSH probe ran.
			w := float64(a.buckets)
			if x.cfg.LSH.Weight == LSHWeightJaccard {
				w = 0
				if sp := x.byID[id]; sp != nil {
					w = lsh.EstimateJaccard(qsig, sp.sig)
				}
			}
			out = append(out, Candidate{ID: id, Weight: w, SharedBuckets: a.buckets})
			res.LSHCandidates++
			continue
		}
		candKeys := 0
		if needsCandKeys {
			if sp := x.byID[id]; sp != nil {
				candKeys = len(sp.keys)
			}
		}
		out = append(out, Candidate{
			ID:            id,
			Weight:        x.weight(a, queryKeys, candKeys, numBlocks),
			SharedKeys:    a.cbs,
			SharedBuckets: a.buckets,
		})
	}
	x.mu.RUnlock()
	if res.LSHCandidates > 0 {
		x.lshOnly.Add(int64(res.LSHCandidates))
	}
	slices.SortFunc(out, func(a, b Candidate) int {
		if a.Weight != b.Weight {
			return cmp.Compare(b.Weight, a.Weight)
		}
		return cmp.Compare(a.ID, b.ID)
	})
	res.Candidates = out
}

// weight mirrors metablocking's edge weighting for one query/candidate
// pair. EJS needs the full graph's node degrees, which an online index
// does not maintain, so it degrades to JS.
func (x *Index) weight(a *candAcc, queryKeys, candKeys int, numBlocks float64) float64 {
	cbs := float64(a.cbs)
	if cbs == 0 {
		return 0
	}
	useEntropy := x.cfg.Entropy != nil
	meanEntropy := a.entropySum / cbs
	switch x.cfg.Scheme {
	case metablocking.ECBS:
		w := cbs * metablocking.LogRatio(numBlocks, float64(queryKeys)) * metablocking.LogRatio(numBlocks, float64(candKeys))
		if useEntropy {
			w *= meanEntropy
		}
		return w
	case metablocking.JS, metablocking.EJS:
		union := float64(queryKeys) + float64(candKeys) - cbs
		if union <= 0 {
			return 0
		}
		w := cbs / union
		if useEntropy {
			w *= meanEntropy
		}
		return w
	case metablocking.ARCS:
		if useEntropy {
			return a.entArcs
		}
		return a.arcs
	default: // CBS
		if useEntropy {
			return a.entropySum
		}
		return cbs
	}
}

// prune applies the configured rule to the ranked candidates in place and
// returns how many were dropped.
func (x *Index) prune(res *QueryResult) int {
	before := len(res.Candidates)
	switch x.cfg.Prune {
	case PruneTopK:
		if before > x.cfg.MaxCandidates {
			res.Candidates = res.Candidates[:x.cfg.MaxCandidates]
		}
	case PruneMean:
		var sum float64
		for _, c := range res.Candidates {
			sum += c.Weight
		}
		mean := sum / float64(before)
		keep := res.Candidates[:0]
		for _, c := range res.Candidates {
			if c.Weight >= mean {
				keep = append(keep, c)
			}
		}
		res.Candidates = keep
	}
	return before - len(res.Candidates)
}

// Resolution is the online analogue of one pipeline run for a single
// query profile: the ranked blocking candidates plus the scored matches.
type Resolution struct {
	// Query is the candidate-generation result.
	Query *QueryResult
	// Matches are the candidates scoring at or above the match threshold,
	// sorted by score descending. B is the candidate's internal ID; A is
	// the query profile's internal ID when the query is itself indexed,
	// and -1 otherwise (an ad-hoc probe has no internal identity).
	Matches []matching.Match
	// Comparisons is the number of candidate profiles actually scored —
	// the per-query matcher work.
	Comparisons int
}

// Resolve runs Query and then scores every surviving candidate with the
// configured similarity measure, keeping matches at or above the match
// threshold — blocking, meta-blocking pruning and matching collapsed into
// one sub-millisecond point lookup.
func (x *Index) Resolve(p *profile.Profile) *Resolution {
	return x.ResolveWith(p, ProbeOptions{Policy: x.cfg.LSH.Policy})
}

// ResolveWith is Resolve with per-query probe overrides (see QueryWith).
func (x *Index) ResolveWith(p *profile.Profile, opts ProbeOptions) *Resolution {
	return x.ResolveWithOptions(p, ResolveOptions{Probe: opts})
}

// ResolveWithOptions is Resolve with per-query probe overrides and a
// work budget: a deadline stops the pipeline at the next stage or
// comparison boundary, and MaxComparisons caps scoring to the
// highest-ranked candidates. Either trip marks Query.Truncated with the
// stage that was running — the result is the best-first prefix of the
// unlimited answer. A zero budget is the exact unlimited behaviour.
func (x *Index) ResolveWithOptions(p *profile.Profile, opts ResolveOptions) *Resolution {
	qr := x.queryBudget(p, opts.Probe, opts.Budget)
	r := &Resolution{Query: qr}
	queryID := qr.selfID
	m := x.metrics
	var clk obs.StageClock
	if m != nil {
		clk.Start()
	}

	// Collect candidate profile snapshots under the read lock, score after
	// releasing it: upserts replace stored profiles instead of mutating
	// them, so the pointers stay valid.
	type scored struct {
		id profile.ID
		sp *storedProfile
	}
	cands := make([]scored, 0, len(qr.Candidates))
	x.mu.RLock()
	for _, c := range qr.Candidates {
		if sp := x.byID[c.ID]; sp != nil {
			cands = append(cands, scored{id: c.ID, sp: sp})
		}
	}
	x.mu.RUnlock()

	// The comparison cap truncates up-front: candidates arrive in rank
	// order, so the cap keeps the best-weighted prefix. The deadline is
	// checked per comparison (a clock read per scored candidate, only
	// when a deadline is set — scoring dominates it by orders of
	// magnitude).
	budget := opts.Budget
	if max := budget.MaxComparisons; max > 0 && max < len(cands) {
		cands = cands[:max]
		qr.truncate(StageScore)
	}
	hook := x.cfg.ScoreHook

	if x.cfg.defaultJaccard {
		// Default-Jaccard fast path: candidates carry their distinct token
		// bag from upsert time, so the query is tokenized once and each
		// comparison is a set intersection — bitwise-identical scores to
		// matching.JaccardMeasure with none of its per-pair tokenization.
		qbag := matching.ProfileBag(p, x.cfg.Tokenizer)
		qset := make(map[string]struct{}, len(qbag))
		for _, t := range qbag {
			qset[t] = struct{}{}
		}
		for _, c := range cands {
			if budget.expired() {
				qr.truncate(StageScore)
				break
			}
			if hook != nil {
				hook()
			}
			r.Comparisons++
			score := jaccardBagSet(qset, c.sp.bag)
			if score >= x.cfg.MatchThreshold {
				r.Matches = append(r.Matches, matching.Match{A: queryID, B: c.id, Score: score})
			}
		}
	} else {
		for _, c := range cands {
			if budget.expired() {
				qr.truncate(StageScore)
				break
			}
			if hook != nil {
				hook()
			}
			r.Comparisons++
			score := x.cfg.Measure(p, &c.sp.p)
			if score >= x.cfg.MatchThreshold {
				r.Matches = append(r.Matches, matching.Match{A: queryID, B: c.id, Score: score})
			}
		}
	}
	sort.Slice(r.Matches, func(i, j int) bool {
		if r.Matches[i].Score != r.Matches[j].Score {
			return r.Matches[i].Score > r.Matches[j].Score
		}
		return r.Matches[i].B < r.Matches[j].B
	})
	clk.Tick(qr.StageNanos[:], int(StageScore))
	if m != nil {
		m.Stages[StageScore].Observe(qr.StageNanos[StageScore])
		m.Comparisons.Observe(int64(r.Comparisons))
		var total int64
		for _, n := range qr.StageNanos {
			total += n
		}
		m.Resolve.Observe(total)
	}
	return r
}

// jaccardBagSet computes |A∩B|/|A∪B| of a query token set against a
// candidate's cached distinct bag, matching matching.JaccardTokens bit
// for bit (same cardinalities, same division).
func jaccardBagSet(qset map[string]struct{}, bag []string) float64 {
	inter := 0
	for _, t := range bag {
		if _, ok := qset[t]; ok {
			inter++
		}
	}
	union := len(qset) + len(bag) - inter
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

// Report evaluates the resolution against a ground truth, producing the
// same per-stage quality rows as the batch pipeline's StepReport table.
// The query profile must carry the internal ID the ground truth uses.
func (r *Resolution) Report(queryID profile.ID, gt *evaluation.GroundTruth, maxComparisons int64) []core.StepReport {
	pairs := make([]blocking.Pair, 0, len(r.Query.Candidates))
	for _, c := range r.Query.Candidates {
		pairs = append(pairs, blocking.Pair{A: queryID, B: c.ID}.Canonical())
	}
	matches := make([]matching.Match, len(r.Matches))
	copy(matches, r.Matches)
	for i := range matches {
		p := blocking.Pair{A: queryID, B: matches[i].B}.Canonical()
		matches[i].A, matches[i].B = p.A, p.B
	}
	return []core.StepReport{
		{Step: "index-query", Metrics: evaluation.EvaluatePairs(pairs, gt, maxComparisons)},
		{Step: "index-matching", Metrics: evaluation.EvaluateMatches(matches, gt, maxComparisons)},
	}
}
