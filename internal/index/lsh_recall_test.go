package index

import (
	"strings"
	"sync"
	"testing"

	"sparker/internal/datagen"
	"sparker/internal/profile"
	"sparker/internal/tokenize"
)

var (
	recallOnce sync.Once
	recallCol  *profile.Collection
)

// recallCollection memoises the ~10k-profile datagen collection the
// serving benchmarks use.
func recallCollection(t testing.TB) *profile.Collection {
	t.Helper()
	recallOnce.Do(func() {
		cfg := datagen.AbtBuy()
		cfg.CoreEntities = 4500
		cfg.AOnly = 400
		cfg.BDup = 400
		recallCol = datagen.Generate(cfg).Collection
	})
	return recallCol
}

// TestFallbackRecallOnDatagen runs the rare-token recall scenario on the
// 10k datagen collection instead of a synthetic toy: queries built from
// only the too-common tokens of an indexed profile (every one of their
// postings is over the purge bound) are invisible to token blocking, and
// the ProbeFallback policy must recover at least one such match class.
// The test is fully deterministic: fixed generator seed, fixed MinHash
// seed, fixed thresholds.
func TestFallbackRecallOnDatagen(t *testing.T) {
	if testing.Short() {
		t.Skip("10k collection build")
	}
	c := recallCollection(t)

	cfg := DefaultConfig()
	cfg.LSH = LSHConfig{Policy: ProbeFallback, Threshold: 0.4}
	cfg.MaxBlockFraction = 0.02 // purge postings above ~2% of the collection
	x, err := NewFromCollection(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	maxSize := int(cfg.MaxBlockFraction * float64(c.Size()))

	// Document frequency of every distinct token, to find each profile's
	// "too common" subset without peeking at index internals.
	df := make(map[string]int)
	for i := range c.Profiles {
		seen := make(map[string]bool)
		for _, kv := range c.Profiles[i].Attributes {
			for _, tok := range cfg.Tokenizer.Tokens(kv.Value) {
				if !seen[tok] {
					seen[tok] = true
					df[tok]++
				}
			}
		}
	}

	recovered, blind := 0, 0
	for i := range c.Profiles {
		p := &c.Profiles[i]
		var common, all []string
		seen := make(map[string]bool)
		for _, kv := range p.Attributes {
			for _, tok := range cfg.Tokenizer.Tokens(kv.Value) {
				if seen[tok] {
					continue
				}
				seen[tok] = true
				all = append(all, tok)
				if df[tok] > maxSize {
					common = append(common, tok)
				}
			}
		}
		// A usable blind-spot query: several tokens, all too common, and
		// still covering most of the profile's bag so the overall Jaccard
		// stays above the banding threshold.
		if len(common) < 4 || len(common)*10 < len(all)*7 {
			continue
		}
		// Clean-clean semantics: candidates come from the opposite
		// source, so the probe poses as the other side's record.
		q := profile.Profile{OriginalID: "recall-probe", SourceID: 1 - p.SourceID}
		q.Add("blob", strings.Join(common, " "))

		off := x.QueryWith(&q, ProbeOptions{Policy: ProbeOff})
		if len(off.Candidates) != 0 {
			continue // a posting survived purging after all
		}
		blind++
		fb := x.QueryWith(&q, ProbeOptions{Policy: ProbeFallback})
		for _, cand := range fb.Candidates {
			if cand.ID == p.ID {
				recovered++
				break
			}
		}
		if blind >= 50 {
			break // enough classes sampled
		}
	}
	if blind == 0 {
		t.Fatal("no token-blind query class found in the 10k collection; scenario needs retuning")
	}
	if recovered == 0 {
		t.Fatalf("fallback recovered none of %d token-blind query classes", blind)
	}
	t.Logf("fallback recovered %d of %d token-blind query classes", recovered, blind)
}

// TestFallbackRecallTokenizerConsistency guards the DF computation above
// against tokenizer drift: Tokens and the index's key derivation must
// agree on the default config.
func TestFallbackRecallTokenizerConsistency(t *testing.T) {
	p := profile.Profile{OriginalID: "x"}
	p.Add("name", "Acme TurboBlend 5000, with the turbo mode!")
	cfg := DefaultConfig()
	toks := cfg.Tokenizer.Tokens("Acme TurboBlend 5000, with the turbo mode!")
	if len(toks) == 0 {
		t.Fatal("tokenizer returned nothing")
	}
	var viaScratch []string
	var sc tokenize.Scratch
	viaScratch = cfg.Tokenizer.AppendTokens(viaScratch, "Acme TurboBlend 5000, with the turbo mode!", &sc)
	if len(viaScratch) != len(toks) {
		t.Fatalf("AppendTokens %v != Tokens %v", viaScratch, toks)
	}
	for i := range toks {
		if toks[i] != viaScratch[i] {
			t.Fatalf("token %d: %q vs %q", i, viaScratch[i], toks[i])
		}
	}
}
