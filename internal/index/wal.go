package index

// The durable op log (WAL): the same CRC-framed op records the in-memory
// window retains (oplog.go) appended to rotating on-disk segment files
// *before* the in-memory index is mutated, so an acknowledged write
// survives a crash. Layout:
//
//	<dir>/00000001.seg    frames for seq 1..n
//	<dir>/000000NN.seg    frames for seq NN.. (named by first seq held)
//
// Segment files are append-only; a new segment starts when the active one
// passes WALConfig.SegmentBytes. Durability is a policy choice: fsync on
// every append (WALSyncAlways), on a background interval (WALSyncInterval,
// the default — bounded loss of the last interval's ops on power cut), or
// never (the OS decides; a process kill still loses nothing because the
// kernel holds the written pages).
//
// Recovery (Index.OpenWAL) runs after the snapshot restore: segments
// fully covered by the snapshot's sequence are skipped, the remainder is
// replayed through the same strict apply path replication uses
// (applyOpLocked), and the replayed frames repopulate the in-memory op
// window — so OpsSince keeps serving followers across a restart instead
// of forcing a 410 re-bootstrap. A torn or bit-flipped tail truncates at
// the last good frame (the crash contract of an append-only file);
// segments after the damage cannot be replayed (the sequence would gap)
// and are dropped, with both reported in WALRecovery.
//
// Retention: prune(seq) — called after every successful full or delta
// save — deletes sealed segments whose every frame is at or below the
// seq the snapshot now covers, so snapshot + remaining WAL always
// reconstructs the full state. The active segment is never pruned.

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"sparker/internal/obs"
)

// WALSyncPolicy selects when segment appends are fsynced.
type WALSyncPolicy int

const (
	// WALSyncInterval fsyncs dirty segments on a background timer
	// (WALConfig.SyncInterval). The default: group-commit durability —
	// a power cut loses at most the last interval's ops, a plain process
	// kill loses nothing.
	WALSyncInterval WALSyncPolicy = iota
	// WALSyncAlways fsyncs after every append: no acknowledged write is
	// ever lost, at the cost of one fsync per upsert.
	WALSyncAlways
	// WALSyncNever leaves flushing to the OS page cache entirely.
	WALSyncNever
)

// String names the policy for flags, stats and logs.
func (p WALSyncPolicy) String() string {
	switch p {
	case WALSyncAlways:
		return "always"
	case WALSyncInterval:
		return "interval"
	case WALSyncNever:
		return "never"
	}
	return "unknown"
}

// ParseWALSyncPolicy parses the flag spelling of a sync policy.
func ParseWALSyncPolicy(s string) (WALSyncPolicy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "always":
		return WALSyncAlways, nil
	case "interval", "":
		return WALSyncInterval, nil
	case "never":
		return WALSyncNever, nil
	}
	return 0, fmt.Errorf("index: unknown WAL sync policy %q (want always, interval or never)", s)
}

// WALConfig configures the durable op log opened by Index.OpenWAL.
type WALConfig struct {
	// Dir is the segment directory (created if absent). Required.
	Dir string
	// Sync selects the fsync policy (default WALSyncInterval).
	Sync WALSyncPolicy
	// SyncInterval is the background fsync period of WALSyncInterval
	// (default 100ms).
	SyncInterval time.Duration
	// SegmentBytes rotates the active segment once it passes this size
	// (default 16 MiB).
	SegmentBytes int64
}

// withDefaults resolves zero fields to their documented defaults.
func (c WALConfig) withDefaults() WALConfig {
	if c.SyncInterval <= 0 {
		c.SyncInterval = 100 * time.Millisecond
	}
	if c.SegmentBytes <= 0 {
		c.SegmentBytes = 16 << 20
	}
	return c
}

// WALRecovery reports what Index.OpenWAL found and replayed.
type WALRecovery struct {
	// Segments is the number of segment files found on disk.
	Segments int `json:"segments"`
	// SkippedSegments were fully covered by the snapshot and not read.
	SkippedSegments int `json:"skipped_segments"`
	// Replayed counts frames applied to the index.
	Replayed int64 `json:"replayed"`
	// SkippedOps counts frames read but already covered by the snapshot.
	SkippedOps int64 `json:"skipped_ops"`
	// TruncatedBytes counts bytes cut from a torn or corrupt tail.
	TruncatedBytes int64 `json:"truncated_bytes"`
	// DroppedSegments counts segments removed because they followed the
	// damage (their frames could no longer be applied in sequence).
	DroppedSegments int `json:"dropped_segments"`
}

// WALStats summarises the durable op log for Snapshot.
type WALStats struct {
	// Dir is the segment directory; Policy the fsync policy in force.
	Dir    string `json:"dir"`
	Policy string `json:"policy"`
	// Segments and Bytes describe the on-disk footprint (active included).
	Segments int   `json:"segments"`
	Bytes    int64 `json:"bytes"`
	// FirstSeq is the oldest sequence retained on disk; LastSeq the
	// newest (0 when the log is empty).
	FirstSeq int64 `json:"first_seq"`
	LastSeq  int64 `json:"last_seq"`
	// Appended, Syncs and Rotations count operations since open.
	Appended  int64 `json:"appended"`
	Syncs     int64 `json:"syncs"`
	Rotations int64 `json:"rotations"`
	// PrunedSegments counts sealed segments deleted by retention.
	PrunedSegments int64 `json:"pruned_segments"`
	// SegmentBytes is the configured rotation threshold.
	SegmentBytes int64 `json:"segment_bytes"`
}

// walSegment is one sealed (no longer written) segment file.
type walSegment struct {
	firstSeq int64
	path     string
	size     int64
}

// wal is the durable op log attached to an index. Appends arrive under
// the index writer lock; mu additionally covers the background flusher,
// retention pruning, and stats reads (leaf lock: nothing is acquired
// under it).
type wal struct {
	dir     string
	cfg     WALConfig
	metrics *Metrics

	mu     sync.Mutex
	sealed []walSegment // ascending by firstSeq
	f      *os.File     // active segment (nil until the first append)
	path   string
	first  int64 // first seq held (or named) by the active segment
	size   int64
	last   int64 // newest seq on disk (0 when empty)
	dirty  bool  // bytes written since the last fsync
	closed bool

	appended  int64
	syncs     int64
	rotations int64
	pruned    int64

	stop chan struct{}
	done chan struct{}
}

// walSegmentPath names a segment by the first sequence number it holds.
// Parsing is numeric, so the zero padding is cosmetic (stable listings).
func walSegmentPath(dir string, firstSeq int64) string {
	return filepath.Join(dir, fmt.Sprintf("%08d.seg", firstSeq))
}

// listWALSegments scans dir for segment files, ascending by first seq.
// Non-segment files are ignored; a .seg file whose name does not parse is
// an error (it is unrecoverable state, not clutter).
func listWALSegments(dir string) ([]walSegment, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segs []walSegment
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".seg") {
			continue
		}
		seq, err := strconv.ParseInt(strings.TrimSuffix(name, ".seg"), 10, 64)
		if err != nil || seq <= 0 {
			return nil, fmt.Errorf("index: wal: segment name %q does not parse as a sequence number", name)
		}
		info, err := e.Info()
		if err != nil {
			return nil, fmt.Errorf("index: wal: stat %s: %w", name, err)
		}
		segs = append(segs, walSegment{firstSeq: seq, path: filepath.Join(dir, name), size: info.Size()})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].firstSeq < segs[j].firstSeq })
	return segs, nil
}

// append durably records one framed op. Called under the index writer
// lock before the in-memory structures are touched: an error here aborts
// the upsert with the index unchanged (the write-ahead property).
func (w *wal) append(seq int64, frame []byte) error {
	var start int64
	if w.metrics != nil {
		start = obs.Now()
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return errors.New("index: wal closed")
	}
	// Rotate once the active segment passes the threshold — or when a
	// recovered-but-empty segment's name would not match the first frame
	// written into it (possible only after operator surgery; a fresh,
	// correctly named segment keeps the name ⇒ first-seq invariant).
	if w.f != nil && (w.size >= w.cfg.SegmentBytes || (w.size == 0 && w.first != seq)) {
		if err := w.sealActiveLocked(); err != nil {
			return err
		}
	}
	if w.f == nil {
		path := walSegmentPath(w.dir, seq)
		f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("index: wal: %w", err)
		}
		w.f, w.path, w.first, w.size = f, path, seq, 0
		// Make the new directory entry durable so a crash cannot forget
		// a segment whose frames it remembers. Best effort, as for
		// snapshot renames.
		if dir, err := os.Open(w.dir); err == nil {
			_ = dir.Sync()
			dir.Close()
		}
	}
	n, err := w.f.Write(frame)
	w.size += int64(n)
	if err != nil {
		// A short write leaves a torn tail; recovery truncates it, and
		// the failed op was never applied, so the file stays consistent
		// with the index.
		w.dirty = true
		return fmt.Errorf("index: wal append: %w", err)
	}
	w.dirty = true
	w.last = seq
	w.appended++
	if w.cfg.Sync == WALSyncAlways {
		if err := w.f.Sync(); err != nil {
			return fmt.Errorf("index: wal sync: %w", err)
		}
		w.syncs++
		w.dirty = false
	}
	if w.metrics != nil {
		w.metrics.WALAppend.Observe(obs.Now() - start)
	}
	return nil
}

// sealActiveLocked syncs, closes and shelves the active segment. Caller
// holds mu.
func (w *wal) sealActiveLocked() error {
	if w.f == nil {
		return nil
	}
	if w.cfg.Sync != WALSyncNever {
		if err := w.f.Sync(); err != nil {
			w.f.Close()
			return fmt.Errorf("index: wal seal: %w", err)
		}
		w.syncs++
		w.dirty = false
	}
	if err := w.f.Close(); err != nil {
		return fmt.Errorf("index: wal seal: %w", err)
	}
	w.sealed = append(w.sealed, walSegment{firstSeq: w.first, path: w.path, size: w.size})
	w.f, w.path, w.first, w.size = nil, "", 0, 0
	w.rotations++
	return nil
}

// prune deletes sealed segments every frame of which is covered by a
// snapshot at keepSeq: a segment is removable when the next segment
// starts at or below keepSeq+1 (its own frames are all older). The
// active segment is never deleted. Deletion failures are left for the
// next prune — retention is an optimisation, not a correctness hook.
func (w *wal) prune(keepSeq int64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	for len(w.sealed) > 0 {
		var nextFirst int64
		if len(w.sealed) > 1 {
			nextFirst = w.sealed[1].firstSeq
		} else if w.f != nil {
			nextFirst = w.first
		} else {
			return
		}
		if nextFirst > keepSeq+1 {
			return
		}
		if err := os.Remove(w.sealed[0].path); err != nil && !os.IsNotExist(err) {
			return
		}
		w.sealed = w.sealed[1:]
		w.pruned++
	}
}

// flushLoop is the WALSyncInterval background fsync.
func (w *wal) flushLoop() {
	defer close(w.done)
	t := time.NewTicker(w.cfg.SyncInterval)
	defer t.Stop()
	for {
		select {
		case <-w.stop:
			return
		case <-t.C:
			w.mu.Lock()
			if !w.closed && w.dirty && w.f != nil {
				if err := w.f.Sync(); err == nil {
					w.syncs++
					w.dirty = false
				}
			}
			w.mu.Unlock()
		}
	}
}

// close stops the flusher and syncs + closes the active segment: a clean
// shutdown is durable under every policy.
func (w *wal) close() error {
	if w.stop != nil {
		close(w.stop)
		<-w.done
		w.stop = nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	w.closed = true
	if w.f == nil {
		return nil
	}
	err := w.f.Sync()
	if err == nil {
		w.syncs++
		w.dirty = false
	}
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	w.f = nil
	if err != nil {
		return fmt.Errorf("index: wal close: %w", err)
	}
	return nil
}

// stats snapshots the WAL for Snapshot.
func (w *wal) stats() WALStats {
	w.mu.Lock()
	defer w.mu.Unlock()
	s := WALStats{
		Dir:            w.dir,
		Policy:         w.cfg.Sync.String(),
		LastSeq:        w.last,
		Appended:       w.appended,
		Syncs:          w.syncs,
		Rotations:      w.rotations,
		PrunedSegments: w.pruned,
		SegmentBytes:   w.cfg.SegmentBytes,
	}
	for _, seg := range w.sealed {
		s.Segments++
		s.Bytes += seg.size
	}
	if w.f != nil {
		s.Segments++
		s.Bytes += w.size
	}
	if len(w.sealed) > 0 {
		s.FirstSeq = w.sealed[0].firstSeq
	} else if w.f != nil && w.size > 0 {
		s.FirstSeq = w.first
	}
	return s
}

// OpenWAL attaches a durable op log to the index, first recovering
// whatever the directory already holds: segments fully covered by the
// index's current sequence (the restored snapshot) are skipped, the rest
// is replayed through the same strict apply path replication uses, and a
// torn or corrupt tail is truncated at the last good frame (segments
// past the damage are dropped — their frames could no longer apply in
// sequence). Replayed frames repopulate the in-memory op window, so
// OpsSince serves followers across the restart.
//
// Call it once, after any snapshot restore and before serving writes; it
// requires the op log (Config.OpLog.Enabled). A sequence gap between the
// snapshot and the oldest retained frame — or a frame that contradicts
// the restored state — is a hard error: the pairing of snapshot and WAL
// is wrong and replaying further would corrupt the index. Close the log
// with CloseWAL on shutdown.
func (x *Index) OpenWAL(cfg WALConfig) (WALRecovery, error) {
	var rec WALRecovery
	if x.oplog == nil {
		return rec, fmt.Errorf("index: open wal: %w", ErrOpLogDisabled)
	}
	if cfg.Dir == "" {
		return rec, errors.New("index: open wal: Dir is required")
	}
	cfg = cfg.withDefaults()
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return rec, fmt.Errorf("index: open wal: %w", err)
	}
	segs, err := listWALSegments(cfg.Dir)
	if err != nil {
		return rec, fmt.Errorf("index: open wal: %w", err)
	}

	x.writeMu.Lock()
	defer x.writeMu.Unlock()
	if x.wal != nil {
		return rec, errors.New("index: wal already open")
	}
	rec.Segments = len(segs)

	// Replay. x.wal stays nil until the scan finishes so applyOpLocked
	// does not write the frames straight back into the log.
	live := segs[:0]
	damaged := false
	for i, seg := range segs {
		if damaged {
			// Frames after a truncated tail cannot apply (the sequence
			// would gap); remove them so the on-disk log stays replayable.
			os.Remove(seg.path)
			rec.DroppedSegments++
			continue
		}
		if i+1 < len(segs) && segs[i+1].firstSeq <= x.seq.Load()+1 {
			// Every frame here is older than the next segment's first,
			// hence already in the snapshot. Keep the file: prune owns
			// deletion, recovery only reads.
			rec.SkippedSegments++
			live = append(live, seg)
			continue
		}
		goodEnd, err := x.replayWALSegment(seg, &rec)
		if err != nil {
			return rec, err
		}
		if goodEnd < seg.size {
			if err := os.Truncate(seg.path, goodEnd); err != nil {
				return rec, fmt.Errorf("index: open wal: truncate %s: %w", seg.path, err)
			}
			rec.TruncatedBytes += seg.size - goodEnd
			seg.size = goodEnd
			damaged = true
		}
		live = append(live, seg)
	}

	w := &wal{dir: cfg.Dir, cfg: cfg, metrics: x.metrics}
	if n := len(live); n > 0 {
		// The last surviving segment stays active: restarts continue it
		// instead of littering the directory with one segment per boot.
		last := live[n-1]
		f, err := os.OpenFile(last.path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return rec, fmt.Errorf("index: open wal: %w", err)
		}
		w.sealed = append(w.sealed, live[:n-1]...)
		w.f, w.path, w.first, w.size = f, last.path, last.firstSeq, last.size
		w.last = x.seq.Load()
	}
	if cfg.Sync == WALSyncInterval {
		w.stop = make(chan struct{})
		w.done = make(chan struct{})
		go w.flushLoop()
	}
	x.wal = w
	return rec, nil
}

// replayWALSegment applies one segment's frames past the index's current
// sequence and returns the offset of the last cleanly framed byte. A
// framing/CRC/decode failure ends the scan there (the caller truncates);
// a sequence gap or a frame the restored state contradicts is a hard
// error. Caller holds writeMu.
func (x *Index) replayWALSegment(seg walSegment, rec *WALRecovery) (goodEnd int64, err error) {
	f, err := os.Open(seg.path)
	if err != nil {
		return 0, fmt.Errorf("index: open wal: %w", err)
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<16)
	for {
		payload, err := readOpFrame(br)
		if err == io.EOF {
			return goodEnd, nil
		}
		if err != nil {
			return goodEnd, nil // torn tail: caller truncates here
		}
		o, err := decodeOpPayload(payload, x.clean)
		if err != nil {
			return goodEnd, nil // CRC-valid garbage: same contract
		}
		cur := x.seq.Load()
		switch {
		case o.seq <= cur:
			rec.SkippedOps++
			// Already in the restored state, but not necessarily in the
			// in-memory window: re-retain contiguous frames so OpsSince
			// can serve followers that were behind the snapshot when the
			// leader died (the no-resync half of the restart contract).
			if last, ok := x.oplog.newestSeq(); !ok || o.seq == last+1 {
				x.oplog.append(opRec{seq: o.seq, tstamp: o.tstamp, frame: frameOf(payload)})
			}
		case o.seq == cur+1:
			if err := x.applyOpLocked(o, payload); err != nil {
				return goodEnd, fmt.Errorf("index: open wal: %s seq %d: %w", filepath.Base(seg.path), o.seq, err)
			}
			rec.Replayed++
		default:
			return goodEnd, fmt.Errorf("index: open wal: %s jumps to seq %d with index at %d (missing segments? wrong snapshot?)",
				filepath.Base(seg.path), o.seq, cur)
		}
		goodEnd += int64(opFrameOverhead + len(payload))
	}
}

// CloseWAL syncs and closes the durable op log (no-op when none is
// open). The index remains usable; subsequent writes are in-memory only.
func (x *Index) CloseWAL() error {
	x.writeMu.Lock()
	w := x.wal
	x.wal = nil
	x.writeMu.Unlock()
	if w == nil {
		return nil
	}
	return w.close()
}

// WALEnabled reports whether a durable op log is attached.
func (x *Index) WALEnabled() bool {
	x.writeMu.Lock()
	defer x.writeMu.Unlock()
	return x.wal != nil
}
