package index

import (
	"path/filepath"
	"testing"

	"sparker/internal/profile"
)

func metricsTestIndex(t *testing.T, cfg Config) *Index {
	t.Helper()
	mk := func(src int, id, text string) profile.Profile {
		p := profile.Profile{OriginalID: id, SourceID: src}
		p.Add("name", text)
		return p
	}
	x := New(true, cfg)
	for _, p := range []profile.Profile{
		mk(0, "a1", "acme turbo blender kitchen"),
		mk(0, "a2", "zenix portable speaker"),
		mk(1, "b1", "acme turbo blender refurbished"),
		mk(1, "b2", "zenix speaker portable bluetooth"),
	} {
		if _, _, err := x.Upsert(p); err != nil {
			t.Fatal(err)
		}
	}
	return x
}

// TestMetricsRecording drives one resolve through an instrumented index
// and checks every stage histogram, the operation histograms and the
// query's own StageNanos breakdown line up.
func TestMetricsRecording(t *testing.T) {
	x := metricsTestIndex(t, DefaultConfig())
	m := x.Metrics()
	if m == nil {
		t.Fatal("metrics disabled by default")
	}
	if got := m.Upsert.Snapshot().Count; got != 4 {
		t.Fatalf("upsert observations = %d, want 4", got)
	}

	q := profile.Profile{OriginalID: "probe"}
	q.Add("name", "acme turbo blender")
	r := x.Resolve(&q)

	for s := StageTokenize; s <= StageScore; s++ {
		want := uint64(1)
		if s == StageLSHProbe { // no LSH on this index: stage never observed
			want = 0
		}
		if got := m.Stages[s].Snapshot().Count; got != want {
			t.Errorf("stage %s observations = %d, want %d", s, got, want)
		}
	}
	if got := m.Query.Snapshot().Count; got != 1 {
		t.Errorf("query observations = %d, want 1", got)
	}
	if got := m.Resolve.Snapshot().Count; got != 1 {
		t.Errorf("resolve observations = %d, want 1", got)
	}
	cs := m.Comparisons.Snapshot()
	if cs.Count != 1 || cs.Sum != int64(r.Comparisons) {
		t.Errorf("comparisons histogram count=%d sum=%d, want 1/%d", cs.Count, cs.Sum, r.Comparisons)
	}
	if got := m.Candidates.Snapshot().Sum; got != int64(len(r.Query.Candidates)) {
		t.Errorf("candidates histogram sum = %d, want %d", got, len(r.Query.Candidates))
	}

	// The per-query breakdown is contiguous: stage nanos sum to the
	// resolve total the histogram recorded.
	var total int64
	for _, n := range r.Query.StageNanos {
		total += n
	}
	if total <= 0 {
		t.Errorf("stage nanos sum = %d, want positive", total)
	}
	if got := m.Resolve.Snapshot().Sum; got != total {
		t.Errorf("resolve histogram sum = %d, stage nanos sum = %d", got, total)
	}
}

// TestMetricsDisabled pins the opt-out: no metrics object, no timings
// in the snapshot, zeroed per-query breakdown — and queries still work.
func TestMetricsDisabled(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DisableMetrics = true
	x := metricsTestIndex(t, cfg)
	if x.Metrics() != nil {
		t.Fatal("metrics present despite DisableMetrics")
	}
	q := profile.Profile{OriginalID: "probe"}
	q.Add("name", "acme turbo blender")
	r := x.Resolve(&q)
	if len(r.Query.Candidates) == 0 {
		t.Fatal("bare index returned no candidates")
	}
	for s, n := range r.Query.StageNanos {
		if n != 0 {
			t.Errorf("stage %s nanos = %d on a bare index, want 0", Stage(s), n)
		}
	}
	if x.Snapshot().Timings != nil {
		t.Error("snapshot carries timings on a bare index")
	}
}

// TestSnapshotTimings checks the /stats digest: a fixed row set with
// the stage rows first and consistent count/total/quantile fields.
func TestSnapshotTimings(t *testing.T) {
	x := metricsTestIndex(t, DefaultConfig())
	q := profile.Profile{OriginalID: "probe"}
	q.Add("name", "acme turbo blender")
	x.Resolve(&q)

	rows := x.Snapshot().Timings
	if len(rows) != NumStages+7 {
		t.Fatalf("timing rows = %d, want %d", len(rows), NumStages+7)
	}
	byName := map[string]TimingStats{}
	for _, r := range rows {
		byName[r.Stage] = r
	}
	for i := 0; i < NumStages; i++ {
		if rows[i].Stage != Stage(i).String() {
			t.Errorf("row %d = %q, want %q", i, rows[i].Stage, Stage(i))
		}
	}
	qt := byName["query_total"]
	if qt.Count != 1 || qt.TotalMs < 0 || qt.P99Ms < qt.P50Ms {
		t.Errorf("query_total row inconsistent: %+v", qt)
	}
	if byName["upsert"].Count != 4 {
		t.Errorf("upsert row count = %d, want 4", byName["upsert"].Count)
	}
}

// TestMetricsSaveLoad checks the snapshot persistence histograms and
// the fallback-rate stat on an LSH index.
func TestMetricsSaveLoad(t *testing.T) {
	x := metricsTestIndex(t, DefaultConfig())
	path := filepath.Join(t.TempDir(), "m.snap")
	st, err := x.Save(path)
	if err != nil {
		t.Fatal(err)
	}
	m := x.Metrics()
	if got := m.Save.Snapshot().Count; got != 1 {
		t.Errorf("save observations = %d, want 1", got)
	}
	if got := m.SnapshotBytes.Load(); got != st.Bytes {
		t.Errorf("snapshot bytes gauge = %d, want %d", got, st.Bytes)
	}
	y, err := Load(path, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	ym := y.Metrics()
	if got := ym.Load.Snapshot().Count; got != 1 {
		t.Errorf("load observations = %d, want 1", got)
	}
	if got := ym.SnapshotBytes.Load(); got != st.Bytes {
		t.Errorf("restored snapshot bytes gauge = %d, want %d", got, st.Bytes)
	}
}

// TestLSHFallbackRate drives a union-policy index (every query probes)
// and checks the rate surfaces in Snapshot.
func TestLSHFallbackRate(t *testing.T) {
	cfg := DefaultConfig()
	cfg.LSH.Policy = ProbeUnion
	x := metricsTestIndex(t, cfg)
	q := profile.Profile{OriginalID: "probe"}
	q.Add("name", "acme turbo blender")
	x.Query(&q)
	x.Query(&q)
	s := x.Snapshot()
	if s.LSH == nil {
		t.Fatal("no LSH stats")
	}
	if s.LSH.FallbackRate != 1 {
		t.Errorf("fallback rate = %v under union, want 1", s.LSH.FallbackRate)
	}
	if got := x.Metrics().Stages[StageLSHProbe].Snapshot().Count; got != 2 {
		t.Errorf("lsh_probe stage observations = %d, want 2", got)
	}
}
