package index

import (
	"reflect"
	"testing"
)

func TestMergePartialsDeterministic(t *testing.T) {
	a := &Partial{
		Candidates: []PartialCandidate{
			{OriginalID: "a1", Source: 0, Weight: 3},
			{OriginalID: "a2", Source: 0, Weight: 1},
		},
		Matches:         []PartialMatch{{OriginalID: "a1", Source: 0, Score: 0.9}},
		Keys:            4,
		PostingsScanned: 7,
		Comparisons:     2,
	}
	b := &Partial{
		Candidates: []PartialCandidate{
			{OriginalID: "b1", Source: 1, Weight: 2},
		},
		Matches:         []PartialMatch{{OriginalID: "b1", Source: 1, Score: 0.5}},
		Keys:            3,
		PostingsScanned: 5,
		Comparisons:     1,
	}

	ab := MergePartials([]*Partial{a, b})
	ba := MergePartials([]*Partial{b, a})
	if !reflect.DeepEqual(ab, ba) {
		t.Fatalf("merge depends on shard order:\nab=%+v\nba=%+v", ab, ba)
	}

	wantCands := []PartialCandidate{
		{OriginalID: "a1", Source: 0, Weight: 3},
		{OriginalID: "b1", Source: 1, Weight: 2},
		{OriginalID: "a2", Source: 0, Weight: 1},
	}
	if !reflect.DeepEqual(ab.Candidates, wantCands) {
		t.Errorf("candidates = %+v, want %+v", ab.Candidates, wantCands)
	}
	wantMatches := []PartialMatch{
		{OriginalID: "a1", Source: 0, Score: 0.9},
		{OriginalID: "b1", Source: 1, Score: 0.5},
	}
	if !reflect.DeepEqual(ab.Matches, wantMatches) {
		t.Errorf("matches = %+v, want %+v", ab.Matches, wantMatches)
	}
	if ab.Keys != 4 {
		t.Errorf("Keys = %d, want max 4", ab.Keys)
	}
	if ab.PostingsScanned != 12 || ab.Comparisons != 3 {
		t.Errorf("counters = scanned %d / comparisons %d, want 12 / 3", ab.PostingsScanned, ab.Comparisons)
	}
}

func TestMergePartialsTieBreak(t *testing.T) {
	a := &Partial{
		Candidates: []PartialCandidate{{OriginalID: "z", Source: 0, Weight: 2}},
		Matches:    []PartialMatch{{OriginalID: "z", Source: 0, Score: 0.7}},
	}
	b := &Partial{
		Candidates: []PartialCandidate{
			{OriginalID: "m", Source: 1, Weight: 2},
			{OriginalID: "m", Source: 0, Weight: 2},
		},
		Matches: []PartialMatch{{OriginalID: "m", Source: 0, Score: 0.7}},
	}
	m := MergePartials([]*Partial{a, b})
	wantCands := []PartialCandidate{
		{OriginalID: "m", Source: 0, Weight: 2},
		{OriginalID: "m", Source: 1, Weight: 2},
		{OriginalID: "z", Source: 0, Weight: 2},
	}
	if !reflect.DeepEqual(m.Candidates, wantCands) {
		t.Errorf("tied candidates = %+v, want (OriginalID, Source) ascending %+v", m.Candidates, wantCands)
	}
	wantMatches := []PartialMatch{
		{OriginalID: "m", Source: 0, Score: 0.7},
		{OriginalID: "z", Source: 0, Score: 0.7},
	}
	if !reflect.DeepEqual(m.Matches, wantMatches) {
		t.Errorf("tied matches = %+v, want %+v", m.Matches, wantMatches)
	}
}

func TestMergePartialsTruncationAndFlags(t *testing.T) {
	clean := &Partial{}
	scoreTrunc := &Partial{Truncated: true, TruncatedStage: StageScore.String(), LSHProbed: true}
	candTrunc := &Partial{Truncated: true, TruncatedStage: StageCandidates.String()}

	m := MergePartials([]*Partial{clean, scoreTrunc, candTrunc})
	if !m.Truncated {
		t.Fatal("Truncated did not OR-merge")
	}
	// StageCandidates runs before StageScore in the pipeline: the merged
	// answer reports the earliest stage any shard tripped in.
	if m.TruncatedStage != StageCandidates.String() {
		t.Errorf("TruncatedStage = %q, want earliest %q", m.TruncatedStage, StageCandidates.String())
	}
	if !m.LSHProbed {
		t.Error("LSHProbed did not OR-merge")
	}

	if got := MergePartials([]*Partial{clean, clean}); got.Truncated || got.TruncatedStage != "" {
		t.Errorf("clean merge reports truncation: %+v", got)
	}
}

func TestMergePartialsSkipsNilShards(t *testing.T) {
	a := &Partial{
		Candidates: []PartialCandidate{{OriginalID: "a1", Weight: 1}},
		Matches:    []PartialMatch{{OriginalID: "a1", Score: 0.4}},
	}
	m := MergePartials([]*Partial{nil, a, nil})
	if len(m.Candidates) != 1 || len(m.Matches) != 1 {
		t.Fatalf("nil shards not skipped: %+v", m)
	}
}

func TestStageRankUnknownLast(t *testing.T) {
	if stageRank("no-such-stage") != NumStages {
		t.Errorf("unknown stage rank = %d, want %d", stageRank("no-such-stage"), NumStages)
	}
	for s := 0; s < NumStages; s++ {
		if stageRank(Stage(s).String()) != s {
			t.Errorf("stageRank(%q) = %d, want %d", Stage(s).String(), stageRank(Stage(s).String()), s)
		}
	}
}
