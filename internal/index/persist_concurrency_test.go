package index

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"sparker/internal/profile"
)

// TestSaveRacesConcurrentOps saves snapshots while writers upsert and
// readers query (run under -race in CI): every file written mid-churn
// must load back into an internally consistent index. Save holds the
// writer lock, so each snapshot is a clean cut between upserts — the
// loader's cross-reference validation (every posting entry resolves to a
// stored profile on the right source side) would fail on a torn one.
func TestSaveRacesConcurrentOps(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Shards = 4
	x := New(true, cfg)
	for i := 0; i < 40; i++ {
		a := mkProfile(fmt.Sprintf("a%d", i), "name", fmt.Sprintf("item model%d shared%d", i, i%7))
		b := mkProfile(fmt.Sprintf("b%d", i), "title", fmt.Sprintf("item model%d shared%d", i, i%7))
		b.SourceID = 1
		if _, _, err := x.Upsert(a); err != nil {
			t.Fatal(err)
		}
		if _, _, err := x.Upsert(b); err != nil {
			t.Fatal(err)
		}
	}

	dir := t.TempDir()
	const writers, readers, savers, ops, saves = 3, 4, 2, 150, 8
	var wg sync.WaitGroup
	errs := make(chan error, writers+savers)

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < ops; i++ {
				var p profile.Profile
				if i%3 == 0 {
					p = mkProfile(fmt.Sprintf("a%d", i%40), "name",
						fmt.Sprintf("updated model%d worker%d", i, w))
				} else {
					p = mkProfile(fmt.Sprintf("w%d-%d", w, i), "name",
						fmt.Sprintf("fresh model%d shared%d", i, i%7))
				}
				if _, _, err := x.Upsert(p); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < ops; i++ {
				q := mkProfile("probe", "name", fmt.Sprintf("item model%d shared%d", i%40, i%7))
				if i%2 == 0 {
					x.Query(&q)
				} else {
					x.Resolve(&q)
				}
			}
		}(r)
	}
	paths := make([][]string, savers)
	for s := 0; s < savers; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < saves; i++ {
				path := filepath.Join(dir, fmt.Sprintf("race-%d-%d.snap", s, i))
				if _, err := x.Save(path); err != nil {
					errs <- err
					return
				}
				paths[s] = append(paths[s], path)
			}
		}(s)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	for _, saved := range paths {
		for _, path := range saved {
			y, err := Load(path, cfg)
			if err != nil {
				t.Fatalf("load %s: %v", path, err)
			}
			assertInternallyConsistent(t, y)
		}
	}
}

// assertInternallyConsistent cross-checks a loaded index: counters match
// reality and every stored profile is reachable through its own keys.
func assertInternallyConsistent(t *testing.T, y *Index) {
	t.Helper()
	s := y.Snapshot()
	if s.Profiles != y.Size() {
		t.Fatalf("snapshot profiles %d != size %d", s.Profiles, y.Size())
	}
	checked := 0
	for id := profile.ID(0); checked < 25 && int(id) < int(y.idBound.Load()); id++ {
		p, ok := y.Get(id)
		if !ok {
			continue
		}
		checked++
		res := y.Query(&p)
		if res.Keys == 0 {
			t.Fatalf("profile %d produced no keys after load", id)
		}
	}
	if checked == 0 {
		t.Fatal("no profiles to check")
	}
}

// TestSaveReplacesStaleTemp: a Save that finds a stale temp file from a
// crashed predecessor overwrites it and still lands atomically.
func TestSaveReplacesStaleTemp(t *testing.T) {
	cfg := DefaultConfig()
	x := New(false, cfg)
	if _, _, err := x.Upsert(mkProfile("p1", "name", "alpha beta gamma")); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "index.snap")
	if err := os.WriteFile(path+".tmp", []byte("stale partial write"), 0o644); err != nil {
		t.Fatal(err)
	}
	st, err := x.Save(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatalf("temp file survived a successful save: %v", err)
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() != st.Bytes {
		t.Fatalf("file size %d != reported bytes %d", fi.Size(), st.Bytes)
	}
	y, err := Load(path, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if y.Size() != 1 {
		t.Fatalf("loaded size = %d", y.Size())
	}
}

// TestSaveRacesSamePath aims many concurrent saves (and upserts) at ONE
// path — the deployed shape, where sparker-serve's interval timer, HTTP
// endpoint and shutdown hook all write the same file through the shared
// fixed temp name. Save serializes its file I/O per index, so the final
// file must always load cleanly.
func TestSaveRacesSamePath(t *testing.T) {
	cfg := DefaultConfig()
	x := New(false, cfg)
	for _, p := range synthQueryProfiles(60, 1, 31) {
		if _, _, err := x.Upsert(p); err != nil {
			t.Fatal(err)
		}
	}
	path := filepath.Join(t.TempDir(), "shared.snap")
	var wg sync.WaitGroup
	errs := make(chan error, 5)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				if _, err := x.Save(path); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			if _, _, err := x.Upsert(mkProfile(fmt.Sprintf("churn%d", i), "name",
				fmt.Sprintf("model%d shared%d", i, i%5))); err != nil {
				errs <- err
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	y, err := Load(path, cfg)
	if err != nil {
		t.Fatalf("file left by racing same-path saves does not load: %v", err)
	}
	assertInternallyConsistent(t, y)
}

// TestConcurrentSaveAndSnapshot: Save and Snapshot both take the writer
// lock; interleaving them with queries must not deadlock or tear.
func TestConcurrentSaveAndSnapshot(t *testing.T) {
	cfg := DefaultConfig()
	x := New(false, cfg)
	for _, p := range synthQueryProfiles(30, 1, 29) {
		if _, _, err := x.Upsert(p); err != nil {
			t.Fatal(err)
		}
	}
	dir := t.TempDir()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				switch g % 2 {
				case 0:
					if _, err := x.Save(filepath.Join(dir, fmt.Sprintf("s%d-%d.snap", g, i))); err != nil {
						t.Error(err)
						return
					}
				default:
					x.Snapshot()
				}
			}
		}(g)
	}
	wg.Wait()
}
