package index

// The op log: every applied write is assigned a monotonically increasing
// sequence number and, when the log is enabled, encoded as one
// length-prefixed, CRC-framed record. The same frame bytes serve three
// consumers:
//
//   - SaveDelta appends the frames since the last save to the snapshot
//     file, so persistence cost is O(ops since last save) instead of
//     O(index size) (persist.go);
//   - GET /deltas streams them to network followers, which replay them
//     with ApplyOps — the replication transport of the serving tier;
//   - Decode replays frames it finds after a v3 snapshot's CRC trailer
//     at restore time, dropping a torn or bit-flipped tail instead of
//     failing the whole restore.
//
// Frame wire/file format (identical everywhere):
//
//	uint32 LE payload length | payload | uint32 LE CRC-32 (IEEE) of payload
//
// Payload:
//
//	uvarint sequence number
//	varint  leader wall-clock timestamp (unix nanos; replication lag only,
//	        never index state)
//	byte    op type (1 = upsert; others reserved)
//	uvarint assigned internal profile ID
//	byte    source ID
//	string  original ID          (uvarint length + bytes)
//	uvarint attribute count, then per attribute: string key, string value
//
// Blocking keys, token bags and MinHash signatures are pure functions of
// (profile, config) and are re-derived on apply, so frames stay small and
// a replayed index is structurally identical to the directly written one.
//
// Replay is deterministic: the frame carries the ID the leader assigned,
// and apply verifies the replica would assign the same one (same base
// state + same op order ⇒ same lookup results), so divergence surfaces
// as an error instead of silently drifting posting lists.
//
// The in-memory log retains a bounded window (OpLogConfig.MaxOps /
// MaxBytes). A follower that falls behind the window gets ErrOpLogGap
// and must bootstrap a fresh snapshot; a delta save that would need
// evicted ops falls back to a full (compacting) save.

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"sync"
	"time"

	"sparker/internal/profile"
)

const (
	// opUpsert inserts or replaces one profile; the only op type the
	// write path emits today (a replace subsumes its internal delete).
	// The type byte exists so future ops extend the format instead of
	// breaking it: unknown types fail apply.
	opUpsert byte = 1

	// maxOpPayload bounds one frame's payload, mirroring the snapshot
	// string bound: a frame that encodes must decode.
	maxOpPayload = 1 << 30

	// opFrameOverhead is the fixed per-frame framing cost (length + CRC).
	opFrameOverhead = 8
)

var (
	// ErrOpLogDisabled is returned by op-log surfaces on an index built
	// without Config.OpLog.Enabled.
	ErrOpLogDisabled = errors.New("index: op log disabled (enable Config.OpLog)")
	// ErrOpLogGap marks a request for ops older than the retained window
	// (or ahead of the log entirely): the caller must resynchronise from
	// a full snapshot instead of streaming deltas.
	ErrOpLogGap = errors.New("index: requested ops fall outside the retained op-log window")
)

// OpLogConfig enables and bounds the in-memory op log. The zero value
// disables it: upserts then cost nothing extra, and SaveDelta degrades
// to a full save.
type OpLogConfig struct {
	// Enabled turns the op log on.
	Enabled bool
	// MaxOps bounds retained ops (default 65536). Older ops are evicted;
	// consumers behind the window resynchronise from a full snapshot.
	MaxOps int
	// MaxBytes bounds retained frame bytes (default 64 MiB).
	MaxBytes int64
}

// withDefaults resolves zero bounds to their documented defaults.
func (c OpLogConfig) withDefaults() OpLogConfig {
	if !c.Enabled {
		return OpLogConfig{}
	}
	if c.MaxOps <= 0 {
		c.MaxOps = 1 << 16
	}
	if c.MaxBytes <= 0 {
		c.MaxBytes = 64 << 20
	}
	return c
}

// OpLogStats summarises the op log for Snapshot.
type OpLogStats struct {
	// Ops and Bytes describe the currently retained window.
	Ops   int   `json:"ops"`
	Bytes int64 `json:"bytes"`
	// FloorSeq is the oldest retained sequence number (0 when empty).
	FloorSeq int64 `json:"floor_seq"`
	// Appended counts ops ever appended to the log.
	Appended int64 `json:"appended"`
	// MaxOps and MaxBytes are the configured retention bounds.
	MaxOps   int   `json:"max_ops"`
	MaxBytes int64 `json:"max_bytes"`
}

// opRec is one retained op: its sequence number, the leader timestamp,
// and the complete frame bytes as written to disk and the wire.
type opRec struct {
	seq    int64
	tstamp int64
	frame  []byte
}

// opLog is the bounded in-memory op window plus its change broadcast.
type opLog struct {
	cfg OpLogConfig

	mu       sync.RWMutex
	recs     []opRec
	bytes    int64
	appended int64
	// notify is closed (and replaced) on every append: long-poll waiters
	// grab the current channel, re-check the log, then block on it.
	notify chan struct{}
}

func newOpLog(cfg OpLogConfig) *opLog {
	return &opLog{cfg: cfg, notify: make(chan struct{})}
}

// append retains one op and wakes long-poll waiters. Records must arrive
// in sequence order (the caller holds the index writer lock).
func (l *opLog) append(rec opRec) {
	l.mu.Lock()
	l.recs = append(l.recs, rec)
	l.bytes += int64(len(rec.frame))
	l.appended++
	// Evict from the front past the retention bounds; the newest op is
	// always retained even when it alone exceeds MaxBytes.
	drop := 0
	for len(l.recs)-drop > 1 &&
		(len(l.recs)-drop > l.cfg.MaxOps || l.bytes > l.cfg.MaxBytes) {
		l.bytes -= int64(len(l.recs[drop].frame))
		drop++
	}
	if drop > 0 {
		l.recs = append(l.recs[:0], l.recs[drop:]...)
	}
	close(l.notify)
	l.notify = make(chan struct{})
	l.mu.Unlock()
}

// stats snapshots the retention window.
func (l *opLog) stats() OpLogStats {
	l.mu.RLock()
	defer l.mu.RUnlock()
	s := OpLogStats{
		Ops:      len(l.recs),
		Bytes:    l.bytes,
		Appended: l.appended,
		MaxOps:   l.cfg.MaxOps,
		MaxBytes: l.cfg.MaxBytes,
	}
	if len(l.recs) > 0 {
		s.FloorSeq = l.recs[0].seq
	}
	return s
}

// framesAfter copies the concatenated frames of ops with sequence in
// (since, …], bounded by maxBytes (at least one frame is returned when
// any is pending). gap reports that ops after since existed but were
// evicted — or that since runs ahead of the log — so the caller must
// resynchronise. last is the sequence of the final returned frame.
func (l *opLog) framesAfter(since int64, maxBytes int) (frames []byte, last int64, gap bool) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	if len(l.recs) == 0 {
		// Nothing retained: with appended ops evicted, anything before
		// the current head is unservable. The caller distinguishes
		// "caught up" (since == current seq) before calling.
		return nil, since, false
	}
	floor, head := l.recs[0].seq, l.recs[len(l.recs)-1].seq
	if since >= head {
		if since > head {
			return nil, since, true // ahead of the log: stale leader state
		}
		return nil, since, false
	}
	if since+1 < floor {
		return nil, since, true // behind the retained window
	}
	total := 0
	last = since
	for _, rec := range l.recs[since+1-floor:] {
		if total > 0 && total+len(rec.frame) > maxBytes {
			break
		}
		frames = append(frames, rec.frame...)
		total += len(rec.frame)
		last = rec.seq
	}
	return frames, last, false
}

// OpLogEnabled reports whether the index maintains an op log (and can
// therefore serve deltas and take delta saves).
func (x *Index) OpLogEnabled() bool { return x.oplog != nil }

// Seq returns the sequence number of the last applied write. It is 0 on
// a fresh index and restored from v3 snapshots, so a restarted leader
// keeps handing out sequence numbers its followers can track.
func (x *Index) Seq() int64 { return x.seq.Load() }

// OpNotify returns a channel closed at the next op append — the
// long-poll primitive: fetch the channel, re-check OpsSince, then block
// on the channel. Nil when the op log is disabled.
func (x *Index) OpNotify() <-chan struct{} {
	if x.oplog == nil {
		return nil
	}
	x.oplog.mu.RLock()
	ch := x.oplog.notify
	x.oplog.mu.RUnlock()
	return ch
}

// OpsSince copies the encoded frames of the ops applied after sequence
// number since, bounded by maxBytes per call (at least one frame when
// any is pending; callers stream the rest with follow-up calls). seq is
// the index's current sequence. ErrOpLogGap means the requested ops are
// no longer retained (or since is ahead of this index): the caller must
// resynchronise from a full snapshot.
func (x *Index) OpsSince(since int64, maxBytes int) (frames []byte, seq int64, err error) {
	if x.oplog == nil {
		return nil, 0, ErrOpLogDisabled
	}
	if maxBytes <= 0 {
		maxBytes = 1 << 20
	}
	cur := x.seq.Load()
	if since == cur {
		return nil, cur, nil
	}
	if since > cur {
		return nil, cur, fmt.Errorf("%w: since %d ahead of seq %d", ErrOpLogGap, since, cur)
	}
	frames, _, gap := x.oplog.framesAfter(since, maxBytes)
	if gap || frames == nil {
		// Either explicitly behind the window, or the pending ops were
		// all evicted (framesAfter saw an empty/advanced log).
		return nil, cur, fmt.Errorf("%w: since %d, seq %d", ErrOpLogGap, since, cur)
	}
	return frames, cur, nil
}

// frameOf rebuilds the complete on-disk/wire frame of one validated
// payload (length prefix, payload, CRC).
func frameOf(payload []byte) []byte {
	frame := make([]byte, 0, opFrameOverhead+len(payload))
	frame = binary.LittleEndian.AppendUint32(frame, uint32(len(payload)))
	frame = append(frame, payload...)
	return binary.LittleEndian.AppendUint32(frame, crc32.ChecksumIEEE(payload))
}

// newestSeq returns the newest retained sequence (ok=false when empty).
func (l *opLog) newestSeq() (int64, bool) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	if len(l.recs) == 0 {
		return 0, false
	}
	return l.recs[len(l.recs)-1].seq, true
}

// appendOpString appends a uvarint length-prefixed string.
func appendOpString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// checkOpBounds mirrors the snapshot encode bounds for one profile so an
// op that is accepted always frames, persists and decodes. Checked
// before the write mutates anything.
func checkOpBounds(p *profile.Profile) error {
	if len(p.Attributes) > maxSnapshotItems {
		return fmt.Errorf("index: profile %s exceeds op attribute limit", p.OriginalID)
	}
	if len(p.OriginalID) > maxSnapshotString {
		return fmt.Errorf("index: profile original ID exceeds op string limit")
	}
	for _, kv := range p.Attributes {
		if len(kv.Key) > maxSnapshotString || len(kv.Value) > maxSnapshotString {
			return fmt.Errorf("index: profile %s exceeds op string limit", p.OriginalID)
		}
	}
	return nil
}

// encodeOpFrame encodes one complete upsert frame (length prefix,
// payload, CRC) for the given already-normalized, ID-assigned profile.
func encodeOpFrame(seq, tstamp int64, p *profile.Profile) []byte {
	payload := make([]byte, 0, 64+16*len(p.Attributes))
	payload = binary.AppendUvarint(payload, uint64(seq))
	payload = binary.AppendVarint(payload, tstamp)
	payload = append(payload, opUpsert)
	payload = binary.AppendUvarint(payload, uint64(p.ID))
	payload = append(payload, byte(p.SourceID))
	payload = appendOpString(payload, p.OriginalID)
	payload = binary.AppendUvarint(payload, uint64(len(p.Attributes)))
	for _, kv := range p.Attributes {
		payload = appendOpString(payload, kv.Key)
		payload = appendOpString(payload, kv.Value)
	}
	frame := make([]byte, 0, opFrameOverhead+len(payload))
	frame = binary.LittleEndian.AppendUint32(frame, uint32(len(payload)))
	frame = append(frame, payload...)
	return binary.LittleEndian.AppendUint32(frame, crc32.ChecksumIEEE(payload))
}

// readOpFrame reads one frame from r and returns its validated payload.
// A clean end of input returns io.EOF; a torn or corrupt frame (short
// length, short payload, CRC mismatch, absurd length) returns a non-EOF
// error — recovery paths drop the tail there, network paths surface it.
func readOpFrame(r *bufio.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("op frame length: %w", err)
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n == 0 || n > maxOpPayload {
		return nil, fmt.Errorf("op frame payload of %d bytes out of range", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("op frame payload: %w", err)
	}
	var crc [4]byte
	if _, err := io.ReadFull(r, crc[:]); err != nil {
		return nil, fmt.Errorf("op frame checksum: %w", err)
	}
	if got, want := binary.LittleEndian.Uint32(crc[:]), crc32.ChecksumIEEE(payload); got != want {
		return nil, fmt.Errorf("op frame checksum mismatch: frame %08x, computed %08x", got, want)
	}
	return payload, nil
}

// op is one decoded op-log record.
type op struct {
	seq    int64
	tstamp int64
	typ    byte
	p      profile.Profile
}

// opCursor walks an op payload with sticky errors.
type opCursor struct {
	b   []byte
	err error
}

func (c *opCursor) uvarint() uint64 {
	if c.err != nil {
		return 0
	}
	v, n := binary.Uvarint(c.b)
	if n <= 0 {
		c.err = errors.New("bad uvarint")
		return 0
	}
	c.b = c.b[n:]
	return v
}

func (c *opCursor) varint() int64 {
	if c.err != nil {
		return 0
	}
	v, n := binary.Varint(c.b)
	if n <= 0 {
		c.err = errors.New("bad varint")
		return 0
	}
	c.b = c.b[n:]
	return v
}

func (c *opCursor) byte() byte {
	if c.err != nil {
		return 0
	}
	if len(c.b) == 0 {
		c.err = io.ErrUnexpectedEOF
		return 0
	}
	b := c.b[0]
	c.b = c.b[1:]
	return b
}

func (c *opCursor) string() string {
	n := c.uvarint()
	if c.err == nil && n > maxSnapshotString {
		c.err = fmt.Errorf("string of %d bytes exceeds limit", n)
	}
	if c.err != nil {
		return ""
	}
	if uint64(len(c.b)) < n {
		c.err = io.ErrUnexpectedEOF
		return ""
	}
	s := string(c.b[:n])
	c.b = c.b[n:]
	return s
}

// decodeOpPayload parses and validates one frame payload against the
// index's task semantics (clean-clean source discipline, ID range).
func decodeOpPayload(payload []byte, clean bool) (op, error) {
	c := opCursor{b: payload}
	var o op
	o.seq = int64(c.uvarint())
	o.tstamp = c.varint()
	o.typ = c.byte()
	if c.err == nil && o.typ != opUpsert {
		return o, fmt.Errorf("unknown op type %d", o.typ)
	}
	id := c.uvarint()
	if c.err == nil && id > math.MaxInt32 {
		return o, fmt.Errorf("op profile ID %d out of range", id)
	}
	src := c.byte()
	if c.err == nil && (src > 1 || (!clean && src != 0)) {
		return o, fmt.Errorf("op source %d invalid for this task", src)
	}
	o.p = profile.Profile{ID: profile.ID(id), OriginalID: c.string(), SourceID: int(src)}
	nAttrs := c.uvarint()
	if c.err == nil && nAttrs > maxSnapshotItems {
		return o, fmt.Errorf("op attribute count %d out of range", nAttrs)
	}
	if c.err == nil && nAttrs > 0 {
		o.p.Attributes = make([]profile.KeyValue, 0, capped(nAttrs))
		for i := uint64(0); i < nAttrs && c.err == nil; i++ {
			k := c.string()
			v := c.string()
			o.p.Attributes = append(o.p.Attributes, profile.KeyValue{Key: k, Value: v})
		}
	}
	if c.err != nil {
		return o, fmt.Errorf("op payload: %w", c.err)
	}
	if len(c.b) != 0 {
		return o, fmt.Errorf("op payload: %d trailing bytes", len(c.b))
	}
	return o, nil
}

// applyOpLocked replays one decoded op, mirroring Upsert exactly:
// replace-by-identity, posting updates, counters, sequence advance and
// op-log retention (so a replica can chain its own followers and a
// restarted leader keeps serving the tail it reloaded). The caller holds
// writeMu (or owns the index exclusively, as Decode does). The read-only
// guard deliberately does not apply: replication is how a read-only
// replica's state advances.
func (x *Index) applyOpLocked(o op, payload []byte) error {
	if want := x.seq.Load() + 1; o.seq != want {
		return fmt.Errorf("op seq %d does not follow %d", o.seq, want-1)
	}
	oldID, replacing := x.lookupOrig(origKey(&o.p))
	if replacing {
		if oldID != o.p.ID {
			return fmt.Errorf("op replaces profile %d, replica holds it as %d", o.p.ID, oldID)
		}
	} else if o.p.ID != x.nextID {
		return fmt.Errorf("op assigns ID %d, replica would assign %d", o.p.ID, x.nextID)
	}
	// Write-ahead, as in Upsert: the frame is durable before anything
	// mutates (recovery replays with x.wal unset, so frames being read
	// back from disk are not re-appended).
	var frame []byte
	if x.wal != nil || x.oplog != nil {
		frame = frameOf(payload)
	}
	if x.wal != nil {
		if err := x.wal.append(o.seq, frame); err != nil {
			return err
		}
	}
	if replacing {
		x.removeLocked(oldID)
	}
	x.putLocked(o.p)
	if o.p.ID >= x.nextID {
		x.nextID = o.p.ID + 1
	}
	x.upserts.Add(1)
	x.seq.Store(o.seq)
	if x.oplog != nil {
		x.oplog.append(opRec{seq: o.seq, tstamp: o.tstamp, frame: frame})
	}
	return nil
}

// ApplyOps replays a stream of op frames — the follower half of
// replication: the bytes a leader's GET /deltas returns (or a delta
// file's tail) applied in order. It works on a read-only replica; that
// guard rejects out-of-band writes, not replication. Frames are applied
// one at a time under the writer lock, so queries interleave freely.
// Any framing, checksum, or sequence error stops the stream and is
// returned with the count applied so far; a sequence mismatch means the
// follower must resynchronise from a full snapshot (see ErrOpLogGap on
// the serving side). lastStamp is the leader timestamp of the final
// applied op, the replication-lag input.
func (x *Index) ApplyOps(r io.Reader) (applied int, lastStamp int64, err error) {
	br := bufio.NewReaderSize(r, 1<<16)
	for {
		payload, err := readOpFrame(br)
		if err == io.EOF {
			return applied, lastStamp, nil
		}
		if err != nil {
			return applied, lastStamp, fmt.Errorf("index: apply ops: %w", err)
		}
		o, err := decodeOpPayload(payload, x.clean)
		if err != nil {
			return applied, lastStamp, fmt.Errorf("index: apply ops: %w", err)
		}
		x.writeMu.Lock()
		err = x.applyOpLocked(o, payload)
		x.writeMu.Unlock()
		if err != nil {
			return applied, lastStamp, fmt.Errorf("index: apply ops: %w", err)
		}
		applied++
		lastStamp = o.tstamp
	}
}

// nextOpFrame encodes the op record for the upsert the caller is about
// to apply: caller holds writeMu and has assigned p.ID but not yet
// mutated anything, so a bounds rejection here leaves the index
// untouched. The caller advances seq and appends the record only after
// the write lands.
func (x *Index) nextOpFrame(p *profile.Profile) (opRec, error) {
	if err := checkOpBounds(p); err != nil {
		return opRec{}, err
	}
	seq := x.seq.Load() + 1
	now := time.Now().UnixNano()
	return opRec{seq: seq, tstamp: now, frame: encodeOpFrame(seq, now, p)}, nil
}
