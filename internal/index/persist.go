package index

// Durable snapshots: the index serializes to a single versioned,
// length-prefixed binary file and restores to a fully queryable index,
// so sparker-serve restarts (and read-only replicas) skip re-tokenizing
// and re-indexing the whole collection.
//
// File layout (integers are varints, strings are uvarint length + bytes):
//
//	magic   "SPKRIDX1" (8 bytes)
//	uvarint format version (currently 3; version-1/-2 files still load)
//	header  clean flag, shard count, save timestamp, nextID,
//	        queries/upserts counters, (v3+) base sequence number,
//	        profile count, posting count
//	LSH     (v2+) presence byte; when set: signature length, MinHash
//	        seed, banding threshold bits, probe counters
//	profiles section: per profile ID, source, original ID, attributes,
//	        blocking keys (with clusters), optional cached token bag,
//	        and (v2+, LSH present) an optional MinHash signature
//	per-shard sections: posting count, then per posting key, cluster,
//	        and the source-A / source-B ID lists in live order
//	trailer CRC-32 (IEEE) of every preceding byte
//	deltas  (v3+, optional) appended op frames — see oplog.go. SaveDelta
//	        appends the ops applied since the file's last save instead
//	        of rewriting the image, so save cost is O(ops), not O(index
//	        size); a full Save compacts them back into the image. Each
//	        frame carries its own CRC, and recovery replays the tail in
//	        sequence order, dropping a torn or corrupt suffix (a crash
//	        mid-append loses at most the unsynced frames, never the
//	        base image).
//
// LSH bucket postings are not serialized: band keys are a pure function
// of (signature, banding layout), so Decode re-derives the buckets from
// the stored signatures — the snapshot stays smaller and a crafted file
// cannot describe buckets inconsistent with the signatures.
//
// Encoding is deterministic (profiles by ID, postings by key within each
// shard, ID lists verbatim): save → load → save reproduces the exact
// bytes apart from the save-timestamp varint and the CRC that covers it.
// Decoding validates every length and cross-reference before allocating
// proportionally, so corrupt input fails with an error rather than a
// panic or an unbounded allocation.

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"time"

	"sparker/internal/blocking"
	"sparker/internal/obs"
	"sparker/internal/profile"
)

const (
	snapshotMagic = "SPKRIDX1"
	// snapshotVersion is the format this build writes; snapshotVersionV1
	// (no LSH section, no sequence number or delta tail) and
	// snapshotVersionV2 (no sequence number or delta tail) are still
	// accepted by Decode.
	snapshotVersion   = 3
	snapshotVersionV1 = 1
	snapshotVersionV2 = 2

	// maxSnapshotString bounds any single length-prefixed string
	// (attribute values, blocking keys) a snapshot may carry. Enforced
	// symmetrically: encode rejects longer strings, so a successful Save
	// is always loadable. Decode reads strings incrementally, so a
	// corrupt length prefix can only cost allocation proportional to the
	// input actually supplied, never to the claimed length.
	maxSnapshotString = 1 << 30
	// maxSnapshotItems bounds per-profile attribute/key/bag counts, also
	// enforced on both sides.
	maxSnapshotItems = 1 << 26
	// maxSnapshotShards bounds the decoded shard count.
	maxSnapshotShards = 1 << 12
	// maxSnapshotCluster bounds decoded attribute-cluster IDs.
	maxSnapshotCluster = 1 << 30
	// maxSnapshotSigLen bounds the decoded MinHash signature length.
	maxSnapshotSigLen = 1 << 12
	// maxSignatureValue is one past the largest value a MinHash position
	// can hold: lsh's Mersenne prime 2^61-1. Signatures are only stored
	// for non-empty token bags, so every position is a real hash minimum.
	maxSignatureValue = (1 << 61) - 1
)

var (
	// ErrReadOnly is returned by Upsert on a read-only replica.
	ErrReadOnly = errors.New("index: read-only replica rejects writes")
	// ErrSnapshotVersion marks a snapshot written by an incompatible
	// format version; callers typically fall back to a fresh build.
	ErrSnapshotVersion = errors.New("index: unsupported snapshot version")
)

// PersistState describes the index's durable-snapshot state: the most
// recent successful Save, or the file the index was restored from.
type PersistState struct {
	// Restored reports that the index was loaded from a snapshot rather
	// than built from a collection.
	Restored bool `json:"restored"`
	// Path is the snapshot file of the last Save (or Load).
	Path string `json:"path,omitempty"`
	// Bytes is the encoded snapshot size.
	Bytes int64 `json:"bytes,omitempty"`
	// SavedAt is when the snapshot was written (for a restored index,
	// when the restored file was originally saved). Delta saves append
	// to that file and do not move it.
	SavedAt time.Time `json:"saved_at,omitempty"`
	// BaseSeq is the sequence number compacted into the file's full
	// image (the last full Save, or the restored file's header).
	BaseSeq int64 `json:"base_seq,omitempty"`
	// Seq is the last sequence number the file covers: BaseSeq plus any
	// delta frames appended by SaveDelta (or replayed at restore).
	Seq int64 `json:"seq,omitempty"`
	// DeltaOps and DeltaBytes count the op frames currently appended
	// after the base image — what the next full Save will compact.
	DeltaOps   int64 `json:"delta_ops,omitempty"`
	DeltaBytes int64 `json:"delta_bytes,omitempty"`
}

// PersistState returns the durable-snapshot state, or ok=false when the
// index has never been saved or restored.
func (x *Index) PersistState() (PersistState, bool) {
	x.persistMu.Lock()
	defer x.persistMu.Unlock()
	return x.persist, x.persist != PersistState{}
}

// ReadOnly reports whether the index rejects writes (replica mode).
func (x *Index) ReadOnly() bool { return x.readOnly.Load() }

// Restored reports that the index was built by Load/Decode rather than
// from a collection — the readiness signal for a replica: a read-only
// index that never restored (and never applied a delta) is an empty
// shell a load balancer should not route to.
func (x *Index) Restored() bool { return x.restored }

// SetReadOnly toggles replica mode: a read-only index rejects Upsert
// with ErrReadOnly while queries keep working.
func (x *Index) SetReadOnly(v bool) { x.readOnly.Store(v) }

// Save writes a durable snapshot to path atomically: the encoding goes
// to path+".tmp" and is fsynced (file and directory) before a rename,
// so a crash mid-save never leaves a partial file at path — only a
// stale temp file a later Save overwrites. Saves on one index are
// serialized end to end (sparker-serve aims its interval timer, HTTP
// endpoint and shutdown hook at the same path); the writer lock is held
// only during the encode (no upsert is half applied in the snapshot)
// and queries proceed concurrently throughout.
func (x *Index) Save(path string) (PersistState, error) {
	// A read-only replica consumes snapshots, it never produces them:
	// a stale replica saving to the shared path would clobber the
	// primary's newer snapshot. Enforced here so every caller — not
	// just the HTTP handler and sparker-serve — gets the invariant.
	if x.readOnly.Load() {
		return PersistState{}, fmt.Errorf("index: save: %w", ErrReadOnly)
	}
	var saveStart int64
	if x.metrics != nil {
		saveStart = obs.Now()
	}
	x.saveMu.Lock()
	defer x.saveMu.Unlock()
	st, err := x.saveFullLocked(path)
	if err != nil {
		return st, err
	}
	if m := x.metrics; m != nil {
		m.Save.Observe(obs.Now() - saveStart)
		m.SnapshotBytes.Store(st.Bytes)
	}
	return st, nil
}

// saveFullLocked writes the complete image (compacting any delta tail
// the previous file carried, since the rename replaces it wholesale).
// Caller holds saveMu.
func (x *Index) saveFullLocked(path string) (PersistState, error) {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return PersistState{}, fmt.Errorf("index: save: %w", err)
	}
	now := time.Now()
	bw := bufio.NewWriterSize(f, 1<<20)

	x.writeMu.Lock()
	n, err := x.encodeLocked(bw, now)
	// The image compacts exactly the writes applied so far: capture the
	// sequence under the same writer-lock hold as the encode.
	seq := x.seq.Load()
	x.writeMu.Unlock()

	if err == nil {
		err = bw.Flush()
	}
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return PersistState{}, fmt.Errorf("index: save %s: %w", path, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return PersistState{}, fmt.Errorf("index: save %s: %w", path, err)
	}
	// The rename is not durable until the directory entry is synced; a
	// power cut could otherwise roll a reported-successful save back to
	// the previous snapshot. Best effort: not every platform/filesystem
	// supports fsync on a directory fd.
	if dir, err := os.Open(filepath.Dir(path)); err == nil {
		_ = dir.Sync()
		dir.Close()
	}
	st := PersistState{
		Restored: x.restored, Path: path, Bytes: n, SavedAt: now,
		BaseSeq: seq, Seq: seq,
	}
	x.persistMu.Lock()
	x.persist = st
	x.persistMu.Unlock()
	// The snapshot now covers everything up to seq; WAL segments whose
	// frames are all at or below it are no longer needed for recovery.
	if w := x.walRef(); w != nil {
		w.prune(seq)
	}
	return st, nil
}

// walRef reads the attached WAL under the writer lock (OpenWAL/CloseWAL
// swap it there).
func (x *Index) walRef() *wal {
	x.writeMu.Lock()
	w := x.wal
	x.writeMu.Unlock()
	return w
}

// SaveDelta appends the op frames applied since the file's last save to
// the snapshot at path, making persistence cost O(ops since last save)
// instead of O(index size). It degrades to a full Save whenever a delta
// append cannot be proven safe: the op log is disabled, path is not the
// file the last save wrote, the file on disk no longer matches the
// recorded size (truncated, replaced, or torn by an earlier failure),
// or the needed ops have been evicted from the retention window.
// Callers alternate it with periodic full Saves, which compact the
// accumulated tail (sparker-serve's -delta-interval / -compact-ops).
func (x *Index) SaveDelta(path string) (PersistState, error) {
	if x.readOnly.Load() {
		return PersistState{}, fmt.Errorf("index: save delta: %w", ErrReadOnly)
	}
	var saveStart int64
	if x.metrics != nil {
		saveStart = obs.Now()
	}
	x.saveMu.Lock()
	defer x.saveMu.Unlock()

	x.persistMu.Lock()
	st := x.persist
	x.persistMu.Unlock()

	full := func() (PersistState, error) {
		st, err := x.saveFullLocked(path)
		if err != nil {
			return st, err
		}
		if m := x.metrics; m != nil {
			m.Save.Observe(obs.Now() - saveStart)
			m.SnapshotBytes.Store(st.Bytes)
		}
		return st, nil
	}
	if x.oplog == nil || st.Path != path || st == (PersistState{}) {
		return full()
	}
	if fi, err := os.Stat(path); err != nil || fi.Size() != st.Bytes {
		return full()
	}
	frames, last, gap := x.oplog.framesAfter(st.Seq, math.MaxInt)
	if gap {
		return full()
	}
	if len(frames) == 0 {
		// Nothing new since the last save; the file already covers seq.
		if m := x.metrics; m != nil {
			m.SaveDelta.Observe(obs.Now() - saveStart)
		}
		return st, nil
	}

	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return full()
	}
	_, err = f.Write(frames)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		// The append may be torn mid-frame; recovery drops the bad tail,
		// and the size check above forces the next save to go full.
		return PersistState{}, fmt.Errorf("index: save delta %s: %w", path, err)
	}

	// Sequence numbers are consecutive, so the op count is the span.
	st.DeltaOps += last - st.Seq
	st.Seq = last
	st.Bytes += int64(len(frames))
	st.DeltaBytes += int64(len(frames))
	x.persistMu.Lock()
	x.persist = st
	x.persistMu.Unlock()
	// The snapshot file (base image + delta tail) now covers st.Seq, so
	// retention can release WAL segments at or below it.
	if w := x.walRef(); w != nil {
		w.prune(st.Seq)
	}
	if m := x.metrics; m != nil {
		m.SaveDelta.Observe(obs.Now() - saveStart)
		m.SnapshotBytes.Store(st.Bytes)
	}
	return st, nil
}

// Encode streams a snapshot to w without the file handling of Save. The
// writer lock is held for the duration, like Save.
func (x *Index) Encode(w io.Writer) (int64, error) {
	x.writeMu.Lock()
	defer x.writeMu.Unlock()
	return x.encodeLocked(w, time.Now())
}

// Load restores an index from a snapshot file. The tokenizer, clustering,
// entropy and measure of cfg must match the configuration the snapshot
// was saved under (they are code, not data, and are not serialized); the
// shard count is restored from the file and overrides cfg.Shards. A
// missing file surfaces as fs.ErrNotExist and an incompatible format as
// ErrSnapshotVersion, both via errors.Is.
func Load(path string, cfg Config) (*Index, error) {
	start := obs.Now()
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("index: load: %w", err)
	}
	defer f.Close()
	x, err := Decode(f, cfg)
	if err != nil {
		return nil, fmt.Errorf("index: load %s: %w", path, err)
	}
	x.persistMu.Lock()
	x.persist.Path = path
	x.persistMu.Unlock()
	if m := x.metrics; m != nil {
		m.Load.Observe(obs.Now() - start)
		m.SnapshotBytes.Store(x.persist.Bytes)
	}
	return x, nil
}

// Decode restores an index from a snapshot stream. See Load.
func Decode(r io.Reader, cfg Config) (*Index, error) {
	cr := &crcReader{r: bufio.NewReaderSize(r, 1<<16)}

	var magic [len(snapshotMagic)]byte
	if _, err := io.ReadFull(cr, magic[:]); err != nil {
		return nil, fmt.Errorf("snapshot magic: %w", err)
	}
	if string(magic[:]) != snapshotMagic {
		return nil, fmt.Errorf("not an index snapshot (bad magic %q)", magic[:])
	}
	version, err := cr.uvarint()
	if err != nil {
		return nil, fmt.Errorf("snapshot version: %w", err)
	}
	if version < snapshotVersionV1 || version > snapshotVersion {
		return nil, fmt.Errorf("%w: file has version %d, this build reads %d through %d",
			ErrSnapshotVersion, version, snapshotVersionV1, snapshotVersion)
	}

	cleanByte, err := cr.byte()
	if err != nil || cleanByte > 1 {
		return nil, fmt.Errorf("snapshot clean flag: %w", orBad(err, cleanByte))
	}
	clean := cleanByte == 1
	shards, err := cr.uvarint()
	if err != nil || shards < 1 || shards > maxSnapshotShards {
		return nil, fmt.Errorf("snapshot shard count %d: %w", shards, orBad(err, 0))
	}
	savedAtNanos, err := cr.varint()
	if err != nil {
		return nil, fmt.Errorf("snapshot timestamp: %w", err)
	}
	nextID, err := cr.uvarint()
	if err != nil || nextID > math.MaxInt32 {
		return nil, fmt.Errorf("snapshot nextID %d: %w", nextID, orBad(err, 0))
	}
	queries, err := cr.uvarint()
	if err != nil || queries > math.MaxInt64 {
		return nil, fmt.Errorf("snapshot query counter: %w", orBad(err, 0))
	}
	upserts, err := cr.uvarint()
	if err != nil || upserts > math.MaxInt64 {
		return nil, fmt.Errorf("snapshot upsert counter: %w", orBad(err, 0))
	}
	// v3 records the base sequence number the image compacts; earlier
	// formats predate the op log, where seq simply tracked the upsert
	// counter (every applied write advances both by one).
	baseSeq := upserts
	if version >= 3 {
		baseSeq, err = cr.uvarint()
		if err != nil || baseSeq > math.MaxInt64 {
			return nil, fmt.Errorf("snapshot sequence number: %w", orBad(err, 0))
		}
	}
	numProfiles, err := cr.uvarint()
	// The index never deletes a profile outright (removals only happen
	// inside a replace), so every assigned ID is live: the ID bound must
	// equal the profile count exactly. This also caps the dense query
	// scratch (sized to nextID) by the profiles actually present — a
	// tiny snapshot cannot claim a huge ID space and OOM the first Query.
	if err != nil || numProfiles != nextID {
		return nil, fmt.Errorf("snapshot profile count %d does not match ID bound %d: %w",
			numProfiles, nextID, orBad(err, 0))
	}
	numBlocks, err := cr.uvarint()
	if err != nil {
		return nil, fmt.Errorf("snapshot posting count: %w", err)
	}

	// LSH section header (v2+): the MinHash parameters are data — two
	// indexes only agree on signatures when length, seed and banding
	// threshold match — so, like the shard count, the file's values
	// override cfg's when the snapshot carries signatures. The probe
	// policy, floor and weighting stay query-time configuration.
	fileLSH := false
	var (
		fileSigLen              uint64
		fileSeed                int64
		fileThreshold           float64
		fileProbes, fileLSHOnly uint64
	)
	if version >= 2 {
		lshByte, err := cr.byte()
		if err != nil || lshByte > 1 {
			return nil, fmt.Errorf("snapshot LSH flag: %w", orBad(err, lshByte))
		}
		fileLSH = lshByte == 1
		if fileLSH {
			fileSigLen, err = cr.uvarint()
			if err != nil || fileSigLen < 1 || fileSigLen > maxSnapshotSigLen {
				return nil, fmt.Errorf("snapshot signature length %d: %w", fileSigLen, orBad(err, 0))
			}
			if fileSeed, err = cr.varint(); err != nil {
				return nil, fmt.Errorf("snapshot LSH seed: %w", err)
			}
			bits, err := cr.uvarint()
			fileThreshold = math.Float64frombits(bits)
			// NaN fails the comparison chain too: the threshold must be a
			// real similarity in (0, 1].
			if err != nil || !(fileThreshold > 0 && fileThreshold <= 1) {
				return nil, fmt.Errorf("snapshot LSH threshold %v: %w", fileThreshold, orBad(err, 0))
			}
			fileProbes, err = cr.uvarint()
			if err != nil || fileProbes > math.MaxInt64 {
				return nil, fmt.Errorf("snapshot LSH probe counter: %w", orBad(err, 0))
			}
			fileLSHOnly, err = cr.uvarint()
			if err != nil || fileLSHOnly > math.MaxInt64 {
				return nil, fmt.Errorf("snapshot LSH candidate counter: %w", orBad(err, 0))
			}
		}
	}

	cfg.Shards = int(shards)
	if cfg.LSH.Policy != ProbeOff && fileLSH {
		cfg.LSH.SignatureLen = int(fileSigLen)
		cfg.LSH.Seed = fileSeed
		cfg.LSH.Threshold = fileThreshold
	}
	x := New(clean, cfg)

	// Profiles section. Every record consumes at least a few bytes, so a
	// lying count fails on EOF long before allocation grows past the
	// input size.
	for i := uint64(0); i < numProfiles; i++ {
		sp, err := decodeProfile(cr, x, nextID, fileLSH, int(fileSigLen))
		if err != nil {
			return nil, fmt.Errorf("snapshot profile %d/%d: %w", i, numProfiles, err)
		}
		id := sp.p.ID
		if _, dup := x.byID[id]; dup {
			return nil, fmt.Errorf("snapshot profile %d/%d: duplicate ID %d", i, numProfiles, id)
		}
		key := origKey(&sp.p)
		if _, dup := x.byOrig[key]; dup {
			return nil, fmt.Errorf("snapshot profile %d/%d: duplicate identity %s", i, numProfiles, key)
		}
		// Bucket postings are a pure function of (signature, banding):
		// re-derive them instead of trusting serialized lists. A file
		// without signatures (v1, or saved with LSH off) gets them
		// computed from the token bags, exactly as a fresh build would.
		if x.lshOn() {
			if sp.sig == nil && !fileLSH {
				sp.sig = x.signatureOf(sp)
			}
			x.addLSHLocked(sp)
		} else {
			sp.sig = nil
		}
		x.byID[id] = sp
		x.byOrig[key] = id
	}

	// Per-shard posting sections. Postings are re-distributed through
	// shardFor, so the section boundaries only structure the file.
	var totalPostings uint64
	for s := uint64(0); s < shards; s++ {
		n, err := cr.uvarint()
		if err != nil {
			return nil, fmt.Errorf("snapshot shard %d: %w", s, err)
		}
		for i := uint64(0); i < n; i++ {
			if err := decodePosting(cr, x); err != nil {
				return nil, fmt.Errorf("snapshot shard %d posting %d: %w", s, i, err)
			}
		}
		totalPostings += n
	}
	if totalPostings != numBlocks {
		return nil, fmt.Errorf("snapshot holds %d postings, header says %d", totalPostings, numBlocks)
	}

	// Trailer: CRC of everything read so far.
	sum := cr.sum
	var trailer [4]byte
	if _, err := io.ReadFull(cr.r, trailer[:]); err != nil {
		return nil, fmt.Errorf("snapshot checksum: %w", err)
	}
	if got := binary.LittleEndian.Uint32(trailer[:]); got != sum {
		return nil, fmt.Errorf("snapshot checksum mismatch: file %08x, computed %08x", got, sum)
	}

	x.nextID = profile.ID(nextID)
	x.idBound.Store(int64(nextID))
	x.numProfiles.Store(int64(numProfiles))
	x.numBlocks.Store(int64(totalPostings))
	x.queries.Store(int64(queries))
	x.upserts.Store(int64(upserts))
	x.seq.Store(int64(baseSeq))
	if x.lshOn() && fileLSH {
		x.lshProbes.Store(int64(fileProbes))
		x.lshOnly.Store(int64(fileLSHOnly))
	}
	x.restored = true

	// After the trailer: v1/v2 require clean EOF; a v3 file may carry a
	// delta tail of op frames SaveDelta appended after the base image.
	// Replay it in sequence order, applying each frame exactly as a
	// follower would. The tail is lenient where the image is strict: a
	// torn, bit-flipped, or otherwise invalid frame ends recovery there
	// and the valid prefix stands — that is the crash-safety contract
	// of an append-only tail (a crash mid-append loses at most the
	// frames past the last valid one). Each frame carries its own CRC,
	// so silent corruption cannot be replayed.
	deltaOps, deltaBytes := int64(0), int64(0)
	if version >= 3 {
		for {
			payload, err := readOpFrame(cr.r)
			if err != nil {
				break // clean EOF or a torn/corrupt frame: drop the rest
			}
			o, err := decodeOpPayload(payload, x.clean)
			if err != nil {
				break
			}
			if err := x.applyOpLocked(o, payload); err != nil {
				break
			}
			deltaOps++
			deltaBytes += int64(opFrameOverhead + len(payload))
		}
	} else if _, err := cr.r.ReadByte(); err != io.EOF {
		return nil, fmt.Errorf("trailing data after snapshot checksum")
	}

	x.persist = PersistState{
		Restored:   true,
		Bytes:      cr.n + int64(len(trailer)) + deltaBytes,
		SavedAt:    time.Unix(0, savedAtNanos),
		BaseSeq:    int64(baseSeq),
		Seq:        x.seq.Load(),
		DeltaOps:   deltaOps,
		DeltaBytes: deltaBytes,
	}
	return x, nil
}

// encodeLocked streams the snapshot; caller holds writeMu, so no writer
// can interleave and the byID/shard reads need no further locking.
func (x *Index) encodeLocked(w io.Writer, savedAt time.Time) (int64, error) {
	return x.encodeVersionLocked(w, savedAt, snapshotVersion)
}

// encodeVersionLocked writes the requested format version: Save and
// Encode always pass snapshotVersion; the backward-compatibility tests
// pass snapshotVersionV1 or snapshotVersionV2 to produce genuine old
// byte streams (v1 has no LSH section, so an LSH-enabled index writes
// its signatures only at v2+; the sequence-number header field and the
// right to carry a delta tail arrive at v3).
func (x *Index) encodeVersionLocked(w io.Writer, savedAt time.Time, version uint64) (int64, error) {
	cw := &crcWriter{w: w}
	cw.bytes([]byte(snapshotMagic))
	cw.uvarint(version)
	if x.clean {
		cw.byte(1)
	} else {
		cw.byte(0)
	}
	cw.uvarint(uint64(len(x.shards)))
	cw.varint(savedAt.UnixNano())
	cw.uvarint(uint64(x.nextID))
	cw.uvarint(uint64(x.queries.Load()))
	cw.uvarint(uint64(x.upserts.Load()))
	if version >= 3 {
		cw.uvarint(uint64(x.seq.Load()))
	}
	cw.uvarint(uint64(len(x.byID)))
	cw.uvarint(uint64(x.numBlocks.Load()))

	withLSH := version >= 2 && x.lshOn()
	if version >= 2 {
		if withLSH {
			cw.byte(1)
			cw.uvarint(uint64(x.cfg.LSH.SignatureLen))
			cw.varint(x.cfg.LSH.Seed)
			cw.uvarint(math.Float64bits(x.cfg.LSH.Threshold))
			cw.uvarint(uint64(x.lshProbes.Load()))
			cw.uvarint(uint64(x.lshOnly.Load()))
		} else {
			cw.byte(0)
		}
	}

	ids := make([]profile.ID, 0, len(x.byID))
	for id := range x.byID {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		sp := x.byID[id]
		// Mirror the decoder's count bounds so Save fails loudly instead
		// of writing a file Load would reject at restart.
		if len(sp.p.Attributes) > maxSnapshotItems || len(sp.keys) > maxSnapshotItems ||
			len(sp.bag) > maxSnapshotItems {
			cw.err = fmt.Errorf("profile %d exceeds snapshot item limits", sp.p.ID)
			break
		}
		cw.uvarint(uint64(sp.p.ID))
		cw.byte(byte(sp.p.SourceID))
		cw.string(sp.p.OriginalID)
		cw.uvarint(uint64(len(sp.p.Attributes)))
		for _, kv := range sp.p.Attributes {
			cw.string(kv.Key)
			cw.string(kv.Value)
		}
		cw.uvarint(uint64(len(sp.keys)))
		for _, kt := range sp.keys {
			cw.string(kt.Key)
			cw.varint(int64(kt.Cluster))
		}
		if sp.bag != nil {
			cw.byte(1)
			cw.uvarint(uint64(len(sp.bag)))
			for _, t := range sp.bag {
				cw.string(t)
			}
		} else {
			cw.byte(0)
		}
		if withLSH {
			if sp.sig != nil {
				cw.byte(1)
				for _, v := range sp.sig {
					cw.uvarint(v)
				}
			} else {
				cw.byte(0)
			}
		}
	}

	keys := make([]string, 0, 64)
	for _, sh := range x.shards {
		sh.mu.RLock()
		keys = keys[:0]
		for key := range sh.postings {
			keys = append(keys, key)
		}
		sort.Strings(keys)
		cw.uvarint(uint64(len(keys)))
		for _, key := range keys {
			pl := sh.postings[key]
			cw.string(key)
			cw.varint(int64(pl.cluster))
			cw.uvarint(uint64(len(pl.a)))
			for _, id := range pl.a {
				cw.uvarint(uint64(id))
			}
			cw.uvarint(uint64(len(pl.b)))
			for _, id := range pl.b {
				cw.uvarint(uint64(id))
			}
		}
		sh.mu.RUnlock()
	}

	var trailer [4]byte
	binary.LittleEndian.PutUint32(trailer[:], cw.sum)
	if cw.err == nil {
		if _, err := w.Write(trailer[:]); err != nil {
			cw.err = err
		} else {
			cw.n += int64(len(trailer))
		}
	}
	return cw.n, cw.err
}

// decodeProfile reads one profiles-section record. When the file carries
// an LSH section (readSig), each record ends with an optional signature
// of exactly sigLen values; it is consumed even when the decoding config
// has LSH off, and discarded by the caller in that case.
func decodeProfile(cr *crcReader, x *Index, idBound uint64, readSig bool, sigLen int) (*storedProfile, error) {
	id, err := cr.uvarint()
	if err != nil {
		return nil, err
	}
	if id >= idBound {
		return nil, fmt.Errorf("ID %d beyond bound %d", id, idBound)
	}
	src, err := cr.byte()
	if err != nil {
		return nil, err
	}
	if src > 1 || (!x.clean && src != 0) {
		return nil, fmt.Errorf("bad source %d", src)
	}
	orig, err := cr.string()
	if err != nil {
		return nil, err
	}
	p := profile.Profile{ID: profile.ID(id), OriginalID: orig, SourceID: int(src)}

	nAttrs, err := cr.uvarint()
	if err != nil || nAttrs > maxSnapshotItems {
		return nil, fmt.Errorf("attribute count %d: %w", nAttrs, orBad(err, 0))
	}
	if nAttrs > 0 {
		p.Attributes = make([]profile.KeyValue, 0, capped(nAttrs))
		for i := uint64(0); i < nAttrs; i++ {
			key, err := cr.string()
			if err != nil {
				return nil, err
			}
			value, err := cr.string()
			if err != nil {
				return nil, err
			}
			p.Attributes = append(p.Attributes, profile.KeyValue{Key: key, Value: value})
		}
	}

	nKeys, err := cr.uvarint()
	if err != nil || nKeys > maxSnapshotItems {
		return nil, fmt.Errorf("key count %d: %w", nKeys, orBad(err, 0))
	}
	sp := &storedProfile{p: p}
	if nKeys > 0 {
		sp.keys = make([]blocking.KeyedToken, 0, capped(nKeys))
		for i := uint64(0); i < nKeys; i++ {
			key, err := cr.string()
			if err != nil {
				return nil, err
			}
			cluster, err := cr.varint()
			if err != nil || cluster < -1 || cluster > maxSnapshotCluster {
				return nil, fmt.Errorf("cluster %d: %w", cluster, orBad(err, 0))
			}
			sp.keys = append(sp.keys, blocking.KeyedToken{Key: key, Cluster: int(cluster)})
		}
	}

	hasBag, err := cr.byte()
	if err != nil || hasBag > 1 {
		return nil, fmt.Errorf("bag flag: %w", orBad(err, hasBag))
	}
	var bag []string
	if hasBag == 1 {
		nBag, err := cr.uvarint()
		if err != nil || nBag > maxSnapshotItems {
			return nil, fmt.Errorf("bag size %d: %w", nBag, orBad(err, 0))
		}
		bag = make([]string, 0, capped(nBag))
		for i := uint64(0); i < nBag; i++ {
			t, err := cr.string()
			if err != nil {
				return nil, err
			}
			bag = append(bag, t)
		}
	}
	if x.cfg.defaultJaccard {
		// The cached-bag scorer needs a bag; snapshots written under a
		// custom measure carry none, so recompute it.
		if bag == nil {
			bag = distinctBag(&sp.p, x.cfg)
		}
		sp.bag = bag
	}

	if readSig {
		hasSig, err := cr.byte()
		if err != nil || hasSig > 1 {
			return nil, fmt.Errorf("signature flag: %w", orBad(err, hasSig))
		}
		if hasSig == 1 {
			// sigLen is header-validated (≤ maxSnapshotSigLen) and every
			// value costs at least one input byte, so a truncated file
			// errors after at most one bounded allocation.
			sig := make([]uint64, 0, sigLen)
			for i := 0; i < sigLen; i++ {
				v, err := cr.uvarint()
				if err != nil {
					return nil, fmt.Errorf("signature value %d/%d: %w", i, sigLen, err)
				}
				if v >= maxSignatureValue {
					return nil, fmt.Errorf("signature value %d out of range", v)
				}
				sig = append(sig, v)
			}
			sp.sig = sig
		}
	}
	return sp, nil
}

// decodePosting reads one posting record and installs it on its shard.
func decodePosting(cr *crcReader, x *Index) error {
	key, err := cr.string()
	if err != nil {
		return err
	}
	if key == "" {
		return fmt.Errorf("empty posting key")
	}
	cluster, err := cr.varint()
	if err != nil || cluster < -1 || cluster > maxSnapshotCluster {
		return fmt.Errorf("cluster %d: %w", cluster, orBad(err, 0))
	}
	pl := &posting{cluster: int(cluster)}
	if pl.a, err = decodeIDList(cr, x, 0); err != nil {
		return fmt.Errorf("posting %q: %w", key, err)
	}
	if pl.b, err = decodeIDList(cr, x, 1); err != nil {
		return fmt.Errorf("posting %q: %w", key, err)
	}
	if !x.clean && len(pl.b) > 0 {
		return fmt.Errorf("posting %q: source-B entries in a dirty snapshot", key)
	}
	if pl.size() == 0 {
		return fmt.Errorf("posting %q: empty", key)
	}
	sh := x.shardFor(key)
	if _, dup := sh.postings[key]; dup {
		return fmt.Errorf("posting %q: duplicate key", key)
	}
	sh.postings[key] = pl
	return nil
}

// decodeIDList reads one posting side, validating every entry against
// the already-decoded profiles (existence and source side).
func decodeIDList(cr *crcReader, x *Index, wantSource int) ([]profile.ID, error) {
	n, err := cr.uvarint()
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	if n > uint64(len(x.byID)) {
		return nil, fmt.Errorf("posting side of %d entries exceeds %d profiles", n, len(x.byID))
	}
	ids := make([]profile.ID, 0, capped(n))
	for i := uint64(0); i < n; i++ {
		raw, err := cr.uvarint()
		if err != nil {
			return nil, err
		}
		if raw > math.MaxInt32 {
			return nil, fmt.Errorf("posting entry %d out of range", raw)
		}
		id := profile.ID(raw)
		sp, ok := x.byID[id]
		if !ok {
			return nil, fmt.Errorf("posting references unknown profile %d", id)
		}
		if x.clean && sp.p.SourceID != wantSource {
			return nil, fmt.Errorf("profile %d (source %d) on the source-%d side",
				id, sp.p.SourceID, wantSource)
		}
		ids = append(ids, id)
	}
	return ids, nil
}

// capped bounds up-front slice capacity for decoded counts: growth past
// it is paid for by input actually read, so a lying header cannot force
// a large allocation.
func capped(n uint64) int {
	if n > 4096 {
		return 4096
	}
	return int(n)
}

// orBad folds (err, bad value) checks into one %w operand: the read
// error when there was one, otherwise a value error.
func orBad(err error, v byte) error {
	if err != nil {
		return err
	}
	return fmt.Errorf("bad value %d", v)
}

// crcWriter counts and checksums everything written; the first error
// sticks and later writes become no-ops, so encode paths stay linear.
type crcWriter struct {
	w   io.Writer
	sum uint32
	n   int64
	err error
	buf [binary.MaxVarintLen64]byte
	// str stages string payloads so writing them allocates nothing.
	str [4096]byte
}

func (c *crcWriter) bytes(p []byte) {
	if c.err != nil {
		return
	}
	if _, err := c.w.Write(p); err != nil {
		c.err = err
		return
	}
	c.sum = crc32.Update(c.sum, crc32.IEEETable, p)
	c.n += int64(len(p))
}

func (c *crcWriter) byte(b byte)      { c.buf[0] = b; c.bytes(c.buf[:1]) }
func (c *crcWriter) uvarint(v uint64) { c.bytes(c.buf[:binary.PutUvarint(c.buf[:], v)]) }
func (c *crcWriter) varint(v int64)   { c.bytes(c.buf[:binary.PutVarint(c.buf[:], v)]) }

// string enforces the same length bound the decoder checks, so a
// snapshot that saves successfully always loads. The payload is staged
// through a reusable scratch buffer: a []byte(s) conversion per string
// would allocate roughly the snapshot's size in per-token garbage on
// every save.
func (c *crcWriter) string(s string) {
	if c.err == nil && len(s) > maxSnapshotString {
		c.err = fmt.Errorf("string of %d bytes exceeds snapshot limit", len(s))
		return
	}
	c.uvarint(uint64(len(s)))
	for off := 0; off < len(s) && c.err == nil; off += len(c.str) {
		n := copy(c.str[:], s[off:])
		c.bytes(c.str[:n])
	}
}

// crcReader checksums everything read through it (the trailer is read
// from the underlying reader directly, bypassing the hash).
type crcReader struct {
	r   *bufio.Reader
	sum uint32
	n   int64
	one [1]byte
}

func (c *crcReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	if n > 0 {
		c.sum = crc32.Update(c.sum, crc32.IEEETable, p[:n])
		c.n += int64(n)
	}
	return n, err
}

// ReadByte lets binary.ReadUvarint consume one byte at a time.
func (c *crcReader) ReadByte() (byte, error) {
	b, err := c.r.ReadByte()
	if err != nil {
		return 0, err
	}
	c.one[0] = b
	c.sum = crc32.Update(c.sum, crc32.IEEETable, c.one[:])
	c.n++
	return b, nil
}

func (c *crcReader) byte() (byte, error) { return c.ReadByte() }

func (c *crcReader) uvarint() (uint64, error) { return binary.ReadUvarint(c) }

func (c *crcReader) varint() (int64, error) { return binary.ReadVarint(c) }

func (c *crcReader) string() (string, error) {
	n, err := c.uvarint()
	if err != nil {
		return "", err
	}
	if n > maxSnapshotString {
		return "", fmt.Errorf("string of %d bytes exceeds limit", n)
	}
	// Read in bounded chunks: a lying length prefix on truncated input
	// errors after allocating at most one chunk beyond the actual data.
	const chunk = 64 << 10
	if n <= chunk {
		buf := make([]byte, n)
		if _, err := io.ReadFull(c, buf); err != nil {
			return "", err
		}
		return string(buf), nil
	}
	buf := make([]byte, 0, chunk)
	for remaining := n; remaining > 0; {
		step := remaining
		if step > chunk {
			step = chunk
		}
		start := len(buf)
		buf = append(buf, make([]byte, step)...)
		if _, err := io.ReadFull(c, buf[start:]); err != nil {
			return "", err
		}
		remaining -= step
	}
	return string(buf), nil
}
