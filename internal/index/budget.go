package index

// Per-request resolution budgets: the serving-path analogue of
// progressive meta-blocking (internal/metablocking/progressive.go).
// Candidates are already ranked best-first by weigh, so bounding the
// work of one resolution — by wall-clock deadline, by comparison count,
// or both — yields the best-first *prefix* of the full answer instead
// of an all-or-nothing answer under unbounded latency. A loaded server
// tightens budgets and keeps answering; an unlimited budget is the
// exact pre-budget behaviour, bitwise-identical results and identical
// allocations (every budget check is gated on a non-zero field).

import (
	"time"

	"sparker/internal/obs"
)

// Budget bounds the work one resolution may spend. The zero value is
// unlimited and leaves the query path exactly as without budgets.
type Budget struct {
	// MaxComparisons caps the candidates Resolve scores (0 = unlimited).
	// Candidates are scored in rank order, so a cap keeps the
	// highest-weighted ones — the best-first prefix.
	MaxComparisons int
	// Deadline is a monotonic obs.Now() timestamp (nanoseconds) after
	// which the resolution stops early at the next stage or comparison
	// boundary (0 = no deadline). Build it with DeadlineIn; it is
	// process-local and must not be persisted or sent over the wire.
	Deadline int64
}

// DeadlineIn returns a Budget deadline d from now on the monotonic
// clock the query path checks against. Non-positive durations produce
// an already-expired deadline (every stage truncates immediately).
func DeadlineIn(d time.Duration) int64 { return obs.Now() + int64(d) }

// expired reports whether the deadline has passed. Free when no
// deadline is set: the clock is only read behind the non-zero check.
func (b Budget) expired() bool { return b.Deadline != 0 && obs.Now() >= b.Deadline }

// ResolveOptions carries the per-request overrides of one resolution:
// the LSH probe knobs QueryWith/ResolveWith always had, plus the work
// budget. The zero value means "the index's configured defaults,
// unlimited work".
type ResolveOptions struct {
	// Probe overrides the LSH probe behaviour (see ProbeOptions).
	Probe ProbeOptions
	// Budget bounds this resolution's work (see Budget).
	Budget Budget
}

// truncate records a budget trip. The first trip wins: TruncatedStage
// names the stage that was running when the budget first ran out.
func (r *QueryResult) truncate(s Stage) {
	if !r.Truncated {
		r.Truncated = true
		r.TruncatedStage = s.String()
	}
}

// weighCheckInterval is how many candidates the weigh loop ranks
// between deadline checks: coarse enough that the clock reads vanish
// against the ranking work, fine enough that weigh overshoots a
// deadline by microseconds, not milliseconds.
const weighCheckInterval = 64
