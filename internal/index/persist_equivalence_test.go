package index

import (
	"fmt"
	"math"
	"path/filepath"
	"testing"

	"sparker/internal/matching"
	"sparker/internal/metablocking"
)

// This file proves a restored snapshot is an exact stand-in for the live
// index: after save → load, Query candidate sets (IDs, shared-key counts
// and weight bits) and Resolve matches (IDs and score bits) must be
// identical for every weight scheme × pruning rule × clean/dirty task ×
// entropy setting — the same grid the flat-kernel equivalence harness
// pins against the map reference.

func TestPersistedQueryEquivalence(t *testing.T) {
	for _, clean := range []bool{false, true} {
		sources := 1
		if clean {
			sources = 2
		}
		for _, useEntropy := range []bool{false, true} {
			for _, scheme := range []metablocking.Scheme{metablocking.CBS, metablocking.ECBS, metablocking.JS, metablocking.ARCS} {
				for _, rule := range []PruneRule{PruneTopK, PruneMean, PruneNone} {
					cfg := DefaultConfig()
					cfg.Scheme = scheme
					cfg.Prune = rule
					cfg.MatchThreshold = -1 // keep every scored candidate
					if useEntropy {
						// Clustering and entropy are code, not data: the
						// load-side cfg must carry the same implementations.
						cfg.Clustering = lenClustering{}
						cfg.Entropy = rampEntropy{}
					}
					label := fmt.Sprintf("clean=%v entropy=%v %v/%v", clean, useEntropy, scheme, rule)

					x := New(clean, cfg)
					for _, p := range synthQueryProfiles(60, sources, 5) {
						if _, _, err := x.Upsert(p); err != nil {
							t.Fatal(err)
						}
					}
					y := saveLoad(t, x, cfg)

					for _, p := range synthQueryProfiles(60, sources, 5) {
						p := p
						want := x.Query(&p).Candidates
						got := y.Query(&p).Candidates
						if len(want) != len(got) {
							t.Fatalf("%s query %s: %d candidates, live index %d",
								label, p.OriginalID, len(got), len(want))
						}
						for i := range want {
							if want[i].ID != got[i].ID || want[i].SharedKeys != got[i].SharedKeys ||
								math.Float64bits(want[i].Weight) != math.Float64bits(got[i].Weight) {
								t.Fatalf("%s query %s candidate %d: %+v vs live %+v",
									label, p.OriginalID, i, got[i], want[i])
							}
						}

						wr := x.Resolve(&p)
						gr := y.Resolve(&p)
						if wr.Comparisons != gr.Comparisons || len(wr.Matches) != len(gr.Matches) {
							t.Fatalf("%s resolve %s: loaded %d matches/%d comparisons, live %d/%d",
								label, p.OriginalID, len(gr.Matches), gr.Comparisons,
								len(wr.Matches), wr.Comparisons)
						}
						for i := range wr.Matches {
							if wr.Matches[i].B != gr.Matches[i].B ||
								math.Float64bits(wr.Matches[i].Score) != math.Float64bits(gr.Matches[i].Score) {
								t.Fatalf("%s resolve %s match %d: %+v vs live %+v",
									label, p.OriginalID, i, gr.Matches[i], wr.Matches[i])
							}
						}
					}
				}
			}
		}
	}
}

// TestPersistedEquivalenceAfterChurn replays upsert churn (replacements
// that tombstone postings and inserts that extend the ID space) before
// the save, so the snapshot captures posting lists in their live,
// churned order — and queries still agree bit for bit.
func TestPersistedEquivalenceAfterChurn(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Prune = PruneNone
	cfg.MatchThreshold = -1
	x := New(false, cfg)
	batch := synthQueryProfiles(80, 1, 9)
	for _, p := range batch {
		if _, _, err := x.Upsert(p); err != nil {
			t.Fatal(err)
		}
	}
	// Replace every third profile with shuffled token content, twice.
	for round := 0; round < 2; round++ {
		alt := synthQueryProfiles(80, 1, uint64(21+round))
		for i := 0; i < len(batch); i += 3 {
			p := alt[i]
			p.OriginalID = batch[i].OriginalID
			if _, created, err := x.Upsert(p); err != nil || created {
				t.Fatalf("churn replace %d: created=%v err=%v", i, created, err)
			}
		}
	}
	y := saveLoad(t, x, cfg)
	for _, p := range synthQueryProfiles(80, 1, 9) {
		p := p
		want := x.Query(&p).Candidates
		got := y.Query(&p).Candidates
		if len(want) != len(got) {
			t.Fatalf("query %s: %d candidates, live %d", p.OriginalID, len(got), len(want))
		}
		for i := range want {
			if want[i].ID != got[i].ID ||
				math.Float64bits(want[i].Weight) != math.Float64bits(got[i].Weight) {
				t.Fatalf("query %s candidate %d: %+v vs live %+v", p.OriginalID, i, got[i], want[i])
			}
		}
	}
}

// TestPersistedCustomMeasure round-trips an index configured with a
// custom (non-default) measure: no bags are serialized, and the loaded
// index scores through the same measure implementation.
func TestPersistedCustomMeasure(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Measure = matching.DiceMeasure(cfg.Tokenizer)
	cfg.MatchThreshold = -1
	x := New(false, cfg)
	for _, p := range synthQueryProfiles(40, 1, 17) {
		if _, _, err := x.Upsert(p); err != nil {
			t.Fatal(err)
		}
	}
	y := saveLoad(t, x, cfg)
	for _, p := range synthQueryProfiles(40, 1, 17) {
		p := p
		wr, gr := x.Resolve(&p), y.Resolve(&p)
		if len(wr.Matches) != len(gr.Matches) {
			t.Fatalf("resolve %s: %d matches, live %d", p.OriginalID, len(gr.Matches), len(wr.Matches))
		}
		for i := range wr.Matches {
			if wr.Matches[i].B != gr.Matches[i].B ||
				math.Float64bits(wr.Matches[i].Score) != math.Float64bits(gr.Matches[i].Score) {
				t.Fatalf("resolve %s match %d diverged", p.OriginalID, i)
			}
		}
	}
}

// TestPersistedBagFallback saves under a custom measure (no bags in the
// file) and loads under the default config: the loaded index must
// recompute the cached bags and agree with a directly built default
// index bit for bit.
func TestPersistedBagFallback(t *testing.T) {
	saveCfg := DefaultConfig()
	saveCfg.Measure = matching.DiceMeasure(saveCfg.Tokenizer)
	saveCfg.MatchThreshold = -1
	x := New(false, saveCfg)
	defCfg := DefaultConfig()
	defCfg.MatchThreshold = -1
	ref := New(false, defCfg)
	for _, p := range synthQueryProfiles(40, 1, 19) {
		if _, _, err := x.Upsert(p); err != nil {
			t.Fatal(err)
		}
		if _, _, err := ref.Upsert(p); err != nil {
			t.Fatal(err)
		}
	}
	path := filepath.Join(t.TempDir(), "bagless.snap")
	if _, err := x.Save(path); err != nil {
		t.Fatal(err)
	}
	y, err := Load(path, defCfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range synthQueryProfiles(40, 1, 19) {
		p := p
		wr, gr := ref.Resolve(&p), y.Resolve(&p)
		if len(wr.Matches) != len(gr.Matches) {
			t.Fatalf("resolve %s: %d matches, reference %d", p.OriginalID, len(gr.Matches), len(wr.Matches))
		}
		for i := range wr.Matches {
			if wr.Matches[i].B != gr.Matches[i].B ||
				math.Float64bits(wr.Matches[i].Score) != math.Float64bits(gr.Matches[i].Score) {
				t.Fatalf("resolve %s match %d diverged from recomputed-bag reference", p.OriginalID, i)
			}
		}
	}
}
