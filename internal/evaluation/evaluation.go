// Package evaluation computes the quality measures the SparkER debug
// workflow displays after every step: recall (pair completeness) and
// precision (pair quality) of a candidate-pair set against a ground
// truth, reduction ratio against exhaustive comparison, and the lost-pair
// (false-negative) drill-down of Figure 6(d).
package evaluation

import (
	"fmt"
	"sort"

	"sparker/internal/blocking"
	"sparker/internal/matching"
	"sparker/internal/profile"
)

// GroundTruth is the set of true matching pairs, keyed canonically.
type GroundTruth struct {
	pairs map[blocking.Pair]bool
}

// NewGroundTruth builds a ground truth from canonical pairs.
func NewGroundTruth(pairs []blocking.Pair) *GroundTruth {
	gt := &GroundTruth{pairs: make(map[blocking.Pair]bool, len(pairs))}
	for _, p := range pairs {
		gt.pairs[p.Canonical()] = true
	}
	return gt
}

// FromOriginalIDs builds a ground truth from (originalID, originalID)
// pairs, resolving them to internal IDs through the collection. Unknown
// original IDs are reported as an error since a silently shrunken ground
// truth corrupts every metric downstream.
func FromOriginalIDs(c *profile.Collection, idPairs [][2]string) (*GroundTruth, error) {
	lookup := map[string]profile.ID{}
	for i := range c.Profiles {
		p := &c.Profiles[i]
		lookup[originalKey(p.SourceID, p.OriginalID)] = p.ID
	}
	var pairs []blocking.Pair
	for _, ip := range idPairs {
		a, okA := lookup[originalKey(0, ip[0])]
		b, okB := lookup[originalKey(1, ip[1])]
		if !c.IsClean() {
			// Dirty task: both IDs resolve within the single source.
			b, okB = lookup[originalKey(0, ip[1])]
		}
		if !okA || !okB {
			return nil, fmt.Errorf("evaluation: ground truth references unknown profile (%q, %q)", ip[0], ip[1])
		}
		pairs = append(pairs, blocking.Pair{A: a, B: b})
	}
	return NewGroundTruth(pairs), nil
}

func originalKey(source int, id string) string { return fmt.Sprintf("%d|%s", source, id) }

// Size returns the number of true pairs.
func (gt *GroundTruth) Size() int { return len(gt.pairs) }

// Contains reports whether the canonical form of p is a true match.
func (gt *GroundTruth) Contains(p blocking.Pair) bool { return gt.pairs[p.Canonical()] }

// Pairs returns the true pairs in deterministic order.
func (gt *GroundTruth) Pairs() []blocking.Pair {
	out := make([]blocking.Pair, 0, len(gt.pairs))
	for p := range gt.pairs {
		out = append(out, p)
	}
	sortPairs(out)
	return out
}

func sortPairs(ps []blocking.Pair) {
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].A != ps[j].A {
			return ps[i].A < ps[j].A
		}
		return ps[i].B < ps[j].B
	})
}

// Metrics are the per-step quality numbers of the debug display.
type Metrics struct {
	TruePositives  int
	FalsePositives int
	FalseNegatives int
	// Recall is pair completeness PC: found true pairs / all true pairs.
	Recall float64
	// Precision is pair quality PQ: found true pairs / candidate pairs.
	Precision float64
	F1        float64
	// ReductionRatio is 1 - candidates/exhaustive comparisons (0 when the
	// exhaustive count was not supplied).
	ReductionRatio float64
	Candidates     int
}

// String renders the metrics like the demo GUI's status line.
func (m Metrics) String() string {
	return fmt.Sprintf("candidates=%d recall=%.4f precision=%.4f f1=%.4f rr=%.4f",
		m.Candidates, m.Recall, m.Precision, m.F1, m.ReductionRatio)
}

// EvaluatePairs scores a candidate-pair set against the ground truth.
// maxComparisons is the exhaustive comparison count used for the reduction
// ratio; pass 0 to skip it.
func EvaluatePairs(candidates []blocking.Pair, gt *GroundTruth, maxComparisons int64) Metrics {
	m := Metrics{Candidates: len(candidates)}
	seen := map[blocking.Pair]bool{}
	for _, p := range candidates {
		cp := p.Canonical()
		if seen[cp] {
			continue
		}
		seen[cp] = true
		if gt.Contains(cp) {
			m.TruePositives++
		} else {
			m.FalsePositives++
		}
	}
	m.FalseNegatives = gt.Size() - m.TruePositives
	if gt.Size() > 0 {
		m.Recall = float64(m.TruePositives) / float64(gt.Size())
	}
	if len(seen) > 0 {
		m.Precision = float64(m.TruePositives) / float64(len(seen))
	}
	if m.Precision+m.Recall > 0 {
		m.F1 = 2 * m.Precision * m.Recall / (m.Precision + m.Recall)
	}
	if maxComparisons > 0 {
		m.ReductionRatio = 1 - float64(len(seen))/float64(maxComparisons)
	}
	return m
}

// EvaluateMatches scores matcher output (or clustering co-reference
// pairs).
func EvaluateMatches(matches []matching.Match, gt *GroundTruth, maxComparisons int64) Metrics {
	pairs := make([]blocking.Pair, len(matches))
	for i, m := range matches {
		pairs[i] = blocking.Pair{A: m.A, B: m.B}
	}
	return EvaluatePairs(pairs, gt, maxComparisons)
}

// LostPairs returns the ground-truth pairs missing from the candidate set
// — the "false positives" panel of Figure 6(d), which lists the true
// matches lost by the blocking configuration.
func LostPairs(candidates []blocking.Pair, gt *GroundTruth) []blocking.Pair {
	found := map[blocking.Pair]bool{}
	for _, p := range candidates {
		found[p.Canonical()] = true
	}
	var out []blocking.Pair
	for p := range gt.pairs {
		if !found[p] {
			out = append(out, p)
		}
	}
	sortPairs(out)
	return out
}

// SharedKeys explains why two profiles could block together: the blocking
// keys they share under the given options. The Figure 6(d) drill-down
// shows these for each lost pair so the user can see which attribute
// partitioning decision severed them.
func SharedKeys(c *profile.Collection, opts blocking.Options, a, b profile.ID) []string {
	keysA := map[string]bool{}
	for _, kt := range profileKeys(&opts, c.Get(a)) {
		keysA[kt] = true
	}
	var out []string
	seen := map[string]bool{}
	for _, kt := range profileKeys(&opts, c.Get(b)) {
		if keysA[kt] && !seen[kt] {
			seen[kt] = true
			out = append(out, kt)
		}
	}
	sort.Strings(out)
	return out
}

func profileKeys(opts *blocking.Options, p *profile.Profile) []string {
	var out []string
	seen := map[string]bool{}
	for _, kv := range p.Attributes {
		for _, tok := range opts.Tokenizer.Tokens(kv.Value) {
			key, _ := opts.KeyFor(p.SourceID, kv.Key, tok)
			if !seen[key] {
				seen[key] = true
				out = append(out, key)
			}
		}
	}
	return out
}
