package evaluation

import (
	"math"
	"reflect"
	"testing"

	"sparker/internal/blocking"
	"sparker/internal/matching"
	"sparker/internal/profile"
)

func gt4() *GroundTruth {
	return NewGroundTruth([]blocking.Pair{{A: 0, B: 10}, {A: 1, B: 11}, {A: 2, B: 12}, {A: 3, B: 13}})
}

func TestEvaluatePairs(t *testing.T) {
	gt := gt4()
	candidates := []blocking.Pair{
		{A: 0, B: 10}, // TP
		{A: 1, B: 11}, // TP
		{A: 0, B: 11}, // FP
		{A: 0, B: 12}, // FP
	}
	m := EvaluatePairs(candidates, gt, 100)
	if m.TruePositives != 2 || m.FalsePositives != 2 || m.FalseNegatives != 2 {
		t.Fatalf("%+v", m)
	}
	if math.Abs(m.Recall-0.5) > 1e-9 || math.Abs(m.Precision-0.5) > 1e-9 {
		t.Fatalf("%+v", m)
	}
	if math.Abs(m.F1-0.5) > 1e-9 {
		t.Fatalf("f1=%f", m.F1)
	}
	if math.Abs(m.ReductionRatio-0.96) > 1e-9 {
		t.Fatalf("rr=%f", m.ReductionRatio)
	}
}

func TestEvaluatePairsDeduplicates(t *testing.T) {
	gt := gt4()
	candidates := []blocking.Pair{{A: 0, B: 10}, {A: 0, B: 10}, {B: 0, A: 10}}
	m := EvaluatePairs(candidates, gt, 0)
	if m.TruePositives != 1 || m.Precision != 1 {
		t.Fatalf("%+v", m)
	}
}

func TestEvaluatePairsCanonicalises(t *testing.T) {
	gt := NewGroundTruth([]blocking.Pair{{A: 10, B: 0}}) // reversed order
	m := EvaluatePairs([]blocking.Pair{{A: 0, B: 10}}, gt, 0)
	if m.TruePositives != 1 {
		t.Fatalf("%+v", m)
	}
}

func TestEvaluateEmpty(t *testing.T) {
	gt := gt4()
	m := EvaluatePairs(nil, gt, 0)
	if m.Recall != 0 || m.Precision != 0 || m.F1 != 0 {
		t.Fatalf("%+v", m)
	}
}

func TestEvaluateMatches(t *testing.T) {
	gt := gt4()
	matches := []matching.Match{{A: 0, B: 10, Score: 0.9}, {A: 5, B: 15, Score: 0.8}}
	m := EvaluateMatches(matches, gt, 0)
	if m.TruePositives != 1 || m.FalsePositives != 1 {
		t.Fatalf("%+v", m)
	}
}

func TestLostPairs(t *testing.T) {
	gt := gt4()
	candidates := []blocking.Pair{{A: 0, B: 10}, {A: 2, B: 12}}
	lost := LostPairs(candidates, gt)
	want := []blocking.Pair{{A: 1, B: 11}, {A: 3, B: 13}}
	if !reflect.DeepEqual(lost, want) {
		t.Fatalf("lost=%v want %v", lost, want)
	}
}

func TestFromOriginalIDs(t *testing.T) {
	a := []profile.Profile{{OriginalID: "a1"}, {OriginalID: "a2"}}
	b := []profile.Profile{{OriginalID: "b1"}}
	c := profile.NewCleanClean(a, b)
	gt, err := FromOriginalIDs(c, [][2]string{{"a1", "b1"}})
	if err != nil {
		t.Fatal(err)
	}
	if gt.Size() != 1 || !gt.Contains(blocking.Pair{A: 0, B: 2}) {
		t.Fatalf("gt=%v", gt.Pairs())
	}
}

func TestFromOriginalIDsUnknownErrors(t *testing.T) {
	c := profile.NewCleanClean([]profile.Profile{{OriginalID: "a1"}}, []profile.Profile{{OriginalID: "b1"}})
	if _, err := FromOriginalIDs(c, [][2]string{{"a1", "nope"}}); err == nil {
		t.Fatal("want error for unknown original ID")
	}
}

func TestFromOriginalIDsDirty(t *testing.T) {
	c := profile.NewDirty([]profile.Profile{{OriginalID: "x"}, {OriginalID: "y"}})
	gt, err := FromOriginalIDs(c, [][2]string{{"x", "y"}})
	if err != nil {
		t.Fatal(err)
	}
	if !gt.Contains(blocking.Pair{A: 0, B: 1}) {
		t.Fatal("dirty pair not resolved")
	}
}

func TestSharedKeys(t *testing.T) {
	mk := func(id string, kvs ...[2]string) profile.Profile {
		p := profile.Profile{OriginalID: id}
		for _, kv := range kvs {
			p.Add(kv[0], kv[1])
		}
		return p
	}
	c := profile.NewCleanClean(
		[]profile.Profile{mk("a", [2]string{"name", "acme widget"})},
		[]profile.Profile{mk("b", [2]string{"title", "widget deluxe"})},
	)
	keys := SharedKeys(c, blocking.Options{}, 0, 1)
	if !reflect.DeepEqual(keys, []string{"widget"}) {
		t.Fatalf("keys=%v", keys)
	}
}

func TestSharedKeysWithClustering(t *testing.T) {
	mk := func(id string, kvs ...[2]string) profile.Profile {
		p := profile.Profile{OriginalID: id}
		for _, kv := range kvs {
			p.Add(kv[0], kv[1])
		}
		return p
	}
	c := profile.NewCleanClean(
		[]profile.Profile{mk("a", [2]string{"name", "widget"})},
		[]profile.Profile{mk("b", [2]string{"descr", "widget"})},
	)
	// name in cluster 1, descr in cluster 2: the token no longer collides.
	clustering := splitClustering{}
	keys := SharedKeys(c, blocking.Options{Clustering: clustering}, 0, 1)
	if len(keys) != 0 {
		t.Fatalf("split attributes still share keys: %v", keys)
	}
}

type splitClustering struct{}

func (splitClustering) ClusterOf(_ int, attribute string) int {
	if attribute == "name" {
		return 1
	}
	return 2
}

func TestMetricsString(t *testing.T) {
	m := Metrics{Candidates: 5, Recall: 0.5, Precision: 0.25}
	if m.String() == "" {
		t.Fatal("empty string")
	}
}

func TestGroundTruthPairsSorted(t *testing.T) {
	gt := NewGroundTruth([]blocking.Pair{{A: 5, B: 6}, {A: 1, B: 2}})
	pairs := gt.Pairs()
	if !reflect.DeepEqual(pairs, []blocking.Pair{{A: 1, B: 2}, {A: 5, B: 6}}) {
		t.Fatalf("pairs=%v", pairs)
	}
}
