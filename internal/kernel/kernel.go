// Package kernel provides the flat-array scratch primitive behind the
// allocation-free hot paths: dense accumulator slots indexed by profile
// ID (the paper's IDs are dense int32s), an epoch stamp per slot so
// clearing costs O(touched) instead of O(maxID), and a touched-list that
// replaces map iteration. Meta-blocking instantiates it with its edge
// accumulator and the online index with its candidate accumulator, so
// the slot protocol (and the epoch-wrap hard-clear) lives in one place.
package kernel

import (
	"slices"

	"sparker/internal/profile"
)

// Scratch is one worker's flat accumulator array. The zero value is
// usable and grows on demand; NewScratch pre-sizes it.
type Scratch[A any] struct {
	acc     []A
	stamp   []uint32
	epoch   uint32
	touched []profile.ID
}

// NewScratch sizes a scratch for profile IDs in [0, n).
func NewScratch[A any](n int) *Scratch[A] {
	return &Scratch[A]{acc: make([]A, n), stamp: make([]uint32, n)}
}

// Begin opens a new accumulation round: bumping the epoch invalidates
// every slot without writing to it.
func (s *Scratch[A]) Begin() {
	s.touched = s.touched[:0]
	s.epoch++
	if s.epoch == 0 { // uint32 wrap: hard-clear once every 2^32 rounds
		for i := range s.stamp {
			s.stamp[i] = 0
		}
		s.epoch = 1
	}
}

// Ensure grows the scratch to cover profile IDs in [0, n). Slots live in
// the current round survive growth: accumulators and stamps are copied.
func (s *Scratch[A]) Ensure(n int) {
	if n <= len(s.acc) {
		return
	}
	if c := 2 * len(s.acc); n < c {
		n = c
	}
	acc := make([]A, n)
	copy(acc, s.acc)
	stamp := make([]uint32, n)
	copy(stamp, s.stamp)
	s.acc, s.stamp = acc, stamp
}

// Slot returns the accumulator of id, zeroing it on first touch of the
// current round. IDs beyond the scratch's size grow it — the online
// index can see fresh profiles appear mid-scan.
func (s *Scratch[A]) Slot(id profile.ID) *A {
	if int(id) >= len(s.acc) {
		s.Ensure(int(id) + 1)
	}
	a := &s.acc[id]
	if s.stamp[id] != s.epoch {
		s.stamp[id] = s.epoch
		var zero A
		*a = zero
		s.touched = append(s.touched, id)
	}
	return a
}

// At returns the accumulator of an ID already touched this round, without
// stamp bookkeeping; use it when iterating Touched.
func (s *Scratch[A]) At(id profile.ID) *A { return &s.acc[id] }

// Mark stamps id in the current round without touching its accumulator
// value beyond zeroing it, reporting whether this was the id's first
// touch. It is the set-membership primitive of the dedup passes (block
// filtering's keep bitset, distinct-pair enumeration): Mark instead of a
// map insert, Has instead of a map lookup, Begin instead of a map clear.
func (s *Scratch[A]) Mark(id profile.ID) bool {
	if int(id) >= len(s.acc) {
		s.Ensure(int(id) + 1)
	}
	if s.stamp[id] == s.epoch {
		return false
	}
	s.stamp[id] = s.epoch
	var zero A
	s.acc[id] = zero
	s.touched = append(s.touched, id)
	return true
}

// Has reports whether id was touched (via Slot or Mark) this round.
func (s *Scratch[A]) Has(id profile.ID) bool {
	return int(id) < len(s.acc) && s.stamp[id] == s.epoch
}

// Lookup returns the accumulator of id if it was touched this round, or
// nil.
func (s *Scratch[A]) Lookup(id profile.ID) *A {
	if int(id) >= len(s.acc) || s.stamp[id] != s.epoch {
		return nil
	}
	return &s.acc[id]
}

// Touched lists the IDs accumulated this round, in first-touch order
// (or ascending after SortTouched).
func (s *Scratch[A]) Touched() []profile.ID { return s.touched }

// SortTouched orders the touched list by profile ID, for consumers that
// need a deterministic summation order (float addition is not
// associative, and sequential and distributed runs must agree bitwise).
// slices.Sort, not sort.Slice: the reflection-based comparator would
// allocate once per round, and SortTouched runs once per profile on the
// batch and query hot paths.
func (s *Scratch[A]) SortTouched() {
	slices.Sort(s.touched)
}
