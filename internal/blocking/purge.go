package blocking

import "sort"

// PurgeBySize removes blocks whose size exceeds maxFraction of the profile
// universe. The paper uses maxFraction = 0.5: "Block Purging discards all
// the blocks that contain more than half of the profiles in the
// collection", which eliminates highly frequent blocking keys such as
// stop-words.
func PurgeBySize(c *Collection, maxFraction float64) *Collection {
	if maxFraction <= 0 {
		maxFraction = 0.5
	}
	limit := maxFraction * float64(c.NumProfiles)
	out := &Collection{CleanClean: c.CleanClean, NumProfiles: c.NumProfiles}
	survivors := 0
	for i := range c.Blocks {
		if float64(c.Blocks[i].Size()) <= limit {
			survivors++
		}
	}
	out.Blocks = make([]Block, 0, survivors)
	for i := range c.Blocks {
		if float64(c.Blocks[i].Size()) <= limit {
			out.Blocks = append(out.Blocks, c.Blocks[i])
		}
	}
	return out
}

// PurgeByComparisonLevel is the comparison-based block purging of the
// meta-blocking literature [10]: it finds the largest per-block comparison
// cardinality T such that admitting the next larger blocks would raise the
// ratio of total comparisons to total block assignments by more than
// smoothFactor, and discards every block whose own cardinality exceeds T.
// smoothFactor defaults to 1.025 (the value used by JedAI / SparkER).
func PurgeByComparisonLevel(c *Collection, smoothFactor float64) *Collection {
	if smoothFactor <= 1 {
		smoothFactor = 1.025
	}
	if len(c.Blocks) == 0 {
		return &Collection{CleanClean: c.CleanClean, NumProfiles: c.NumProfiles}
	}

	// Aggregate comparisons and assignments per distinct cardinality
	// level: one flat entry per block sorted by cardinality, with equal-
	// cardinality runs merged in place — no per-level map or pointer
	// allocation.
	type level struct {
		cardinality int64
		comparisons int64
		assignments int64
	}
	levels := make([]level, len(c.Blocks))
	for i := range c.Blocks {
		card := c.Blocks[i].Comparisons()
		levels[i] = level{cardinality: card, comparisons: card, assignments: int64(c.Blocks[i].Size())}
	}
	sort.Slice(levels, func(i, j int) bool { return levels[i].cardinality < levels[j].cardinality })
	merged := levels[:1]
	for _, lv := range levels[1:] {
		if last := &merged[len(merged)-1]; last.cardinality == lv.cardinality {
			last.comparisons += lv.comparisons
			last.assignments += lv.assignments
		} else {
			merged = append(merged, lv)
		}
	}
	levels = merged

	// Cumulative CC/BC ratio from the smallest level up; stop raising the
	// threshold once the ratio jump exceeds the smoothing factor.
	threshold := levels[len(levels)-1].cardinality
	var cc, bc int64
	prevRatio := 0.0
	for _, lv := range levels {
		cc += lv.comparisons
		bc += lv.assignments
		ratio := float64(cc) / float64(bc)
		if prevRatio > 0 && ratio > smoothFactor*prevRatio {
			threshold = lv.cardinality - 1
			break
		}
		prevRatio = ratio
	}

	out := &Collection{CleanClean: c.CleanClean, NumProfiles: c.NumProfiles}
	for i := range c.Blocks {
		if c.Blocks[i].Comparisons() <= threshold {
			out.Blocks = append(out.Blocks, c.Blocks[i])
		}
	}
	return out
}
