// Package blocking implements the block-construction half of the SparkER
// blocker (Figure 4 of the paper): schema-agnostic token blocking,
// loose-schema token blocking (tokens qualified by attribute-cluster IDs),
// block purging, and block filtering — each in a sequential form and a
// distributed form on the dataflow engine.
package blocking

import (
	"fmt"
	"sort"

	"sparker/internal/profile"
)

// NoCluster marks blocks produced without loose-schema information.
const NoCluster = -1

// Block is one blocking-key bucket. For clean-clean tasks A holds profiles
// of the first source and B of the second; for dirty tasks all profiles
// are in A and CleanClean is false.
type Block struct {
	Key        string
	ClusterID  int // attribute-cluster that generated the key, or NoCluster
	CleanClean bool
	A          []profile.ID
	B          []profile.ID
}

// Comparisons returns the number of profile comparisons the block entails.
func (b *Block) Comparisons() int64 {
	if b.CleanClean {
		return int64(len(b.A)) * int64(len(b.B))
	}
	n := int64(len(b.A))
	return n * (n - 1) / 2
}

// Size returns the number of profiles in the block.
func (b *Block) Size() int { return len(b.A) + len(b.B) }

// Collection is an ordered set of blocks plus task metadata.
type Collection struct {
	Blocks     []Block
	CleanClean bool
	// NumProfiles is the profile-universe size the blocks were built from,
	// needed by purging and by weight schemes.
	NumProfiles int
}

// NumBlocks returns the number of blocks.
func (c *Collection) NumBlocks() int { return len(c.Blocks) }

// TotalComparisons sums the comparison cardinality of every block
// (duplicate pairs across blocks counted repeatedly, as in the
// meta-blocking literature's "aggregate cardinality").
func (c *Collection) TotalComparisons() int64 {
	var total int64
	for i := range c.Blocks {
		total += c.Blocks[i].Comparisons()
	}
	return total
}

// TotalAssignments sums block sizes (the number of profile-to-block
// placements), the "BC" quantity of the meta-blocking literature.
func (c *Collection) TotalAssignments() int64 {
	var total int64
	for i := range c.Blocks {
		total += int64(c.Blocks[i].Size())
	}
	return total
}

// Pair is an unordered candidate comparison (A < B by convention for dirty
// tasks; A from source 0 and B from source 1 for clean-clean tasks).
type Pair struct {
	A, B profile.ID
}

// Canonical orders a dirty-task pair so that A < B.
func (p Pair) Canonical() Pair {
	if p.B < p.A {
		return Pair{A: p.B, B: p.A}
	}
	return p
}

// DistinctPairs enumerates the de-duplicated candidate pairs implied by
// the blocks, in ascending (A, B) order. This is the candidate set whose
// recall/precision the demo GUI reports after the blocking step.
//
// Deduplication runs through the flat epoch-stamped kernel scratch
// instead of a map[Pair]bool: a throwaway CSR index carves each profile's
// block list, then parallel workers enumerate each profile's distinct
// neighbourhood in one stamped round per profile (dirty pairs from their
// smaller endpoint, clean pairs from their A-side endpoint) and emit it
// sorted. Worker ranges are contiguous, so concatenating worker outputs
// yields the globally sorted pair list deterministically.
func (c *Collection) DistinctPairs() []Pair {
	idx := BuildIndex(c)
	ids := idx.ProfileIDs()
	if len(ids) == 0 {
		return nil
	}
	bound := int(idx.MaxProfileID()) + 1
	workers := maxWorkers(len(ids))
	parts := make([][]Pair, workers)
	parallelFor(len(ids), workers, func(w, lo, hi int) {
		marks := getMarkSet(bound)
		defer putMarkSet(marks)
		var out []Pair
		for _, id := range ids[lo:hi] {
			marks.Begin()
			for _, ref := range idx.BlocksOf(id) {
				b := &c.Blocks[ref.Ordinal()]
				if c.CleanClean {
					if ref.SideB() {
						continue
					}
					for _, o := range b.B {
						marks.Mark(o)
					}
				} else {
					for _, o := range b.A {
						if o > id {
							marks.Mark(o)
						}
					}
				}
			}
			marks.SortTouched()
			for _, o := range marks.Touched() {
				out = append(out, Pair{A: id, B: o})
			}
		}
		parts[w] = out
	})
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	out := make([]Pair, 0, total)
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}

// Stats summarises a block collection for debug displays.
type Stats struct {
	NumBlocks        int
	TotalComparisons int64
	TotalAssignments int64
	MaxBlockSize     int
	AvgBlockSize     float64
}

// ComputeStats derives summary statistics.
func (c *Collection) ComputeStats() Stats {
	s := Stats{NumBlocks: len(c.Blocks)}
	for i := range c.Blocks {
		b := &c.Blocks[i]
		s.TotalComparisons += b.Comparisons()
		s.TotalAssignments += int64(b.Size())
		if b.Size() > s.MaxBlockSize {
			s.MaxBlockSize = b.Size()
		}
	}
	if len(c.Blocks) > 0 {
		s.AvgBlockSize = float64(s.TotalAssignments) / float64(len(c.Blocks))
	}
	return s
}

func (s Stats) String() string {
	return fmt.Sprintf("blocks=%d comparisons=%d assignments=%d maxSize=%d avgSize=%.1f",
		s.NumBlocks, s.TotalComparisons, s.TotalAssignments, s.MaxBlockSize, s.AvgBlockSize)
}

// sortBlocks orders blocks by key for deterministic output.
func sortBlocks(blocks []Block) {
	sort.Slice(blocks, func(i, j int) bool {
		if blocks[i].ClusterID != blocks[j].ClusterID {
			return blocks[i].ClusterID < blocks[j].ClusterID
		}
		return blocks[i].Key < blocks[j].Key
	})
}
