package blocking

import (
	"runtime"
	"sync"

	"sparker/internal/kernel"
	"sparker/internal/profile"
)

// This file holds the shared scaffolding of the parallel batch pipeline:
// contiguous-range fan-out (so per-profile and per-shard outputs can be
// concatenated back in deterministic order), the pooled epoch-stamped
// mark sets the dedup passes lease, and the shard hash of the parallel
// token blocker.

// maxWorkers caps fan-out at the scheduler's parallelism.
func maxWorkers(n int) int {
	w := runtime.GOMAXPROCS(0)
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// parallelFor splits [0, n) into one contiguous range per worker and runs
// fn on each concurrently. Ranges are contiguous and ascending so that
// per-worker outputs concatenated in worker order preserve the sequential
// iteration order — the property every bitwise-equivalence guarantee in
// this package leans on.
func parallelFor(n, workers int, fn func(worker, lo, hi int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		if n > 0 {
			fn(0, 0, n)
		}
		return
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := w*n/workers, (w+1)*n/workers
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			fn(w, lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
}

// markSet is a dense, epoch-stamped profile-ID membership set — the
// flat-kernel replacement of the historical map[profile.ID]bool keep sets
// and map[Pair]bool dedup maps. Clearing is Begin (O(touched)), insertion
// is Mark, lookup is Has.
type markSet = kernel.Scratch[struct{}]

// markSetPool recycles mark sets across Filter and DistinctPairs calls;
// sync.Pool is per-P sharded, so parallel workers never contend.
var markSetPool = sync.Pool{New: func() any { return new(markSet) }}

func getMarkSet(n int) *markSet {
	m := markSetPool.Get().(*markSet)
	m.Ensure(n)
	return m
}

func putMarkSet(m *markSet) { markSetPool.Put(m) }

// shardHash is FNV-1a over the blocking key: deterministic (unlike
// maphash) so a run under -race and a plain run shard identically, and
// inlinable with zero allocation.
func shardHash(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h = (h ^ uint32(s[i])) * 16777619
	}
	return h
}

// shardCount picks a power-of-two shard count for the given worker count:
// enough shards that the merge phase keeps every worker busy, few enough
// that per-shard grouping state stays cache-resident.
func shardCount(workers int) int {
	s := 1
	for s < 2*workers {
		s <<= 1
	}
	return s
}

// maxProfileID scans a block list for the largest profile ID (-1 when
// there are no assignments) — the bound the dense ID-indexed passes size
// their flat arrays to.
func maxProfileID(blocks []Block) profile.ID {
	max := profile.ID(-1)
	for i := range blocks {
		for _, id := range blocks[i].A {
			if id > max {
				max = id
			}
		}
		for _, id := range blocks[i].B {
			if id > max {
				max = id
			}
		}
	}
	return max
}
