package blocking

import (
	"fmt"
	"math"
	"reflect"
	"sort"
	"testing"

	"sparker/internal/dataflow"
	"sparker/internal/profile"
)

// This file retains the pre-flat-kernel batch blocking pipeline as
// map-based reference implementations and proves, property-style, that
// the parallel sharded TokenBlocking, the CSR Filter, the flat BuildIndex
// and the kernel DistinctPairs are exact drop-ins: block collections,
// indexes and pair sets must be identical across clean/dirty ×
// loose-schema × filter-ratio × min-block-size, for every worker count.
// The references deliberately keep the old shapes — a global key map with
// per-key *bucket allocations, map[profile.ID][]assignment plus
// []map[profile.ID]bool keep sets, a map-backed index, map[Pair]bool
// dedup — so the two code paths share as little as possible.

// refTokenBlocking is the historical sequential map build.
func refTokenBlocking(c *profile.Collection, opts Options) *Collection {
	minSize := opts.MinBlockSize
	if minSize < 2 {
		minSize = 2
	}
	type bucket struct {
		cluster int
		a, b    []profile.ID
	}
	buckets := make(map[string]*bucket)
	for i := range c.Profiles {
		p := &c.Profiles[i]
		for _, kt := range opts.KeysOf(p) {
			bk := buckets[kt.Key]
			if bk == nil {
				bk = &bucket{cluster: kt.Cluster}
				buckets[kt.Key] = bk
			}
			if c.IsClean() && p.SourceID == 1 {
				bk.b = append(bk.b, p.ID)
			} else {
				bk.a = append(bk.a, p.ID)
			}
		}
	}
	out := &Collection{CleanClean: c.IsClean(), NumProfiles: c.Size()}
	for key, bk := range buckets {
		if len(bk.a)+len(bk.b) < minSize {
			continue
		}
		if c.IsClean() && (len(bk.a) == 0 || len(bk.b) == 0) {
			continue
		}
		out.Blocks = append(out.Blocks, Block{
			Key:        key,
			ClusterID:  bk.cluster,
			CleanClean: c.IsClean(),
			A:          bk.a,
			B:          bk.b,
		})
	}
	sortBlocks(out.Blocks)
	return out
}

// refFilter is the historical map-based block filtering.
func refFilter(c *Collection, ratio float64) *Collection {
	if ratio <= 0 || ratio > 1 {
		ratio = DefaultFilterRatio
	}
	type assignment struct {
		block int
		size  int64
	}
	perProfile := make(map[profile.ID][]assignment)
	for i := range c.Blocks {
		card := c.Blocks[i].Comparisons()
		for _, id := range c.Blocks[i].A {
			perProfile[id] = append(perProfile[id], assignment{block: i, size: card})
		}
		for _, id := range c.Blocks[i].B {
			perProfile[id] = append(perProfile[id], assignment{block: i, size: card})
		}
	}
	keep := make([]map[profile.ID]bool, len(c.Blocks))
	for i := range keep {
		keep[i] = make(map[profile.ID]bool)
	}
	for id, as := range perProfile {
		sort.Slice(as, func(i, j int) bool {
			if as[i].size != as[j].size {
				return as[i].size < as[j].size
			}
			return c.Blocks[as[i].block].Key < c.Blocks[as[j].block].Key
		})
		limit := int(math.Ceil(ratio * float64(len(as))))
		if limit < 1 {
			limit = 1
		}
		for _, a := range as[:limit] {
			keep[a.block][id] = true
		}
	}
	out := &Collection{CleanClean: c.CleanClean, NumProfiles: c.NumProfiles}
	for i := range c.Blocks {
		b := &c.Blocks[i]
		var a2, b2 []profile.ID
		for _, id := range b.A {
			if keep[i][id] {
				a2 = append(a2, id)
			}
		}
		for _, id := range b.B {
			if keep[i][id] {
				b2 = append(b2, id)
			}
		}
		if len(a2)+len(b2) < 2 {
			continue
		}
		if c.CleanClean && (len(a2) == 0 || len(b2) == 0) {
			continue
		}
		out.Blocks = append(out.Blocks, Block{
			Key: b.Key, ClusterID: b.ClusterID, CleanClean: b.CleanClean, A: a2, B: b2,
		})
	}
	return out
}

// refBuildIndex is the historical map-backed profile-to-blocks index.
func refBuildIndex(c *Collection) map[profile.ID][]BlockRef {
	out := make(map[profile.ID][]BlockRef)
	for i := range c.Blocks {
		b := &c.Blocks[i]
		for _, id := range b.A {
			out[id] = append(out[id], MakeBlockRef(int32(i), false))
		}
		for _, id := range b.B {
			out[id] = append(out[id], MakeBlockRef(int32(i), true))
		}
	}
	return out
}

// refDistinctPairs is the historical map[Pair]bool dedup enumeration, in
// first-seen block order.
func refDistinctPairs(c *Collection) []Pair {
	seen := make(map[Pair]bool)
	var out []Pair
	add := func(p Pair) {
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	for i := range c.Blocks {
		b := &c.Blocks[i]
		if c.CleanClean {
			for _, a := range b.A {
				for _, bb := range b.B {
					add(Pair{A: a, B: bb})
				}
			}
		} else {
			for x := 0; x < len(b.A); x++ {
				for y := x + 1; y < len(b.A); y++ {
					add(Pair{A: b.A[x], B: b.A[y]}.Canonical())
				}
			}
		}
	}
	return out
}

// --- fixtures ---

// matrixCollection builds a deterministic clean or dirty collection with
// multiple attributes, shared vocabulary across sources, and skewed token
// frequencies (so purge/filter have real work to do).
func matrixCollection(seed int64, clean bool, n int) *profile.Collection {
	next := uint64(seed)*2654435761 + 12345
	rnd := func(mod int) int {
		next = next*6364136223846793005 + 1442695040888963407
		return int((next >> 33) % uint64(mod))
	}
	words := []string{
		"alpha", "beta", "gamma", "delta", "widget", "gadget", "pro", "deluxe",
		"mini", "max", "red", "blue", "steel", "carbon", "x100", "x200", "v2",
	}
	attrs := [][2]string{{"name", "title"}, {"descr", "short_descr"}, {"price", "list_price"}}
	mk := func(i, src int) profile.Profile {
		p := profile.Profile{OriginalID: fmt.Sprintf("s%d-%d", src, i)}
		for a := 0; a < len(attrs); a++ {
			var val string
			k := 1 + rnd(4)
			for w := 0; w < k; w++ {
				val += words[rnd(len(words))] + " "
			}
			// Common stop-word-ish token in ~half the profiles.
			if rnd(2) == 0 {
				val += "common "
			}
			p.Add(attrs[a][src%2], val)
		}
		return p
	}
	if clean {
		var a, b []profile.Profile
		for i := 0; i < n/2; i++ {
			a = append(a, mk(i, 0))
		}
		for i := 0; i < n-n/2; i++ {
			b = append(b, mk(i, 1))
		}
		return profile.NewCleanClean(a, b)
	}
	var ps []profile.Profile
	for i := 0; i < n; i++ {
		ps = append(ps, mk(i, i%2))
	}
	return profile.NewDirty(ps)
}

// matrixClustering maps every attribute name to a small cluster space so
// the loose-schema arm of the matrix produces multi-cluster keys.
type matrixClustering struct{}

func (matrixClustering) ClusterOf(sourceID int, attribute string) int {
	switch attribute {
	case "name", "title":
		return 1
	case "descr", "short_descr":
		return 2
	}
	return 0
}

// --- comparison helpers ---

func requireSameCollection(t *testing.T, label string, want, got *Collection) {
	t.Helper()
	if want.CleanClean != got.CleanClean || want.NumProfiles != got.NumProfiles {
		t.Fatalf("%s: metadata (%v,%d) != reference (%v,%d)",
			label, got.CleanClean, got.NumProfiles, want.CleanClean, want.NumProfiles)
	}
	if len(want.Blocks) != len(got.Blocks) {
		t.Fatalf("%s: %d blocks, reference %d", label, len(got.Blocks), len(want.Blocks))
	}
	for i := range want.Blocks {
		if !reflect.DeepEqual(want.Blocks[i], got.Blocks[i]) {
			t.Fatalf("%s: block %d\n got %+v\nwant %+v", label, i, got.Blocks[i], want.Blocks[i])
		}
	}
}

func requireSameIndex(t *testing.T, label string, want map[profile.ID][]BlockRef, got *Index) {
	t.Helper()
	if len(want) != got.NumProfiles() {
		t.Fatalf("%s: %d profiles indexed, reference %d", label, got.NumProfiles(), len(want))
	}
	bound := got.MaxProfileID() + 4
	for id := profile.ID(-1); id <= bound; id++ {
		w := want[id]
		g := got.BlocksOf(id)
		if len(w) != len(g) {
			t.Fatalf("%s: id %d has %d refs, reference %d", label, id, len(g), len(w))
		}
		for j := range w {
			if w[j] != g[j] {
				t.Fatalf("%s: id %d ref %d is %v, reference %v", label, id, j, g[j], w[j])
			}
		}
		if got.NumBlocksOf(id) != len(w) {
			t.Fatalf("%s: NumBlocksOf(%d)=%d, reference %d", label, id, got.NumBlocksOf(id), len(w))
		}
	}
	ids := got.ProfileIDs()
	if !sort.SliceIsSorted(ids, func(i, j int) bool { return ids[i] < ids[j] }) {
		t.Fatalf("%s: ProfileIDs not sorted", label)
	}
	for _, id := range ids {
		if len(want[id]) == 0 {
			t.Fatalf("%s: ProfileIDs lists %d, which the reference does not index", label, id)
		}
	}
}

func sortPairs(ps []Pair) {
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].A != ps[j].A {
			return ps[i].A < ps[j].A
		}
		return ps[i].B < ps[j].B
	})
}

func requireSamePairs(t *testing.T, label string, want, got []Pair) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d pairs, reference %d", label, len(got), len(want))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("%s: pair %d is %v, reference %v", label, i, got[i], want[i])
		}
	}
}

// TestBatchPipelineMatchesMapReference is the equivalence property of the
// rebuilt batch pipeline: across clean/dirty × schema-agnostic/loose-
// schema × filter ratios × min block sizes × seeds, every stage must
// reproduce its retained map-based reference exactly — TokenBlocking for
// several worker counts, Filter, BuildIndex and DistinctPairs end to end.
func TestBatchPipelineMatchesMapReference(t *testing.T) {
	for _, clean := range []bool{false, true} {
		for _, loose := range []bool{false, true} {
			for _, seed := range []int64{1, 42} {
				opts := Options{}
				if loose {
					opts.Clustering = matrixClustering{}
				}
				c := matrixCollection(seed, clean, 60)
				for _, minSize := range []int{0, 3} {
					opts.MinBlockSize = minSize
					label := fmt.Sprintf("clean=%v/loose=%v/seed=%d/min=%d", clean, loose, seed, minSize)

					refOpts := opts
					refOpts.Workers = 1 // KeysOf path is shared; workers only affect the new build
					want := refTokenBlocking(c, refOpts)
					for _, workers := range []int{1, 2, 3, 8} {
						opts.Workers = workers
						got := TokenBlocking(c, opts)
						requireSameCollection(t, fmt.Sprintf("%s/workers=%d", label, workers), want, got)
					}

					for _, ratio := range []float64{0.3, 0.8, 1.0} {
						fl := fmt.Sprintf("%s/ratio=%g", label, ratio)
						wantF := refFilter(want, ratio)
						gotF := Filter(want, ratio)
						requireSameCollection(t, fl+"/filter", wantF, gotF)

						requireSameIndex(t, fl+"/index", refBuildIndex(wantF), BuildIndex(wantF))

						wantP := refDistinctPairs(wantF)
						sortPairs(wantP)
						requireSamePairs(t, fl+"/pairs", wantP, wantF.DistinctPairs())
					}
				}
			}
		}
	}
}

// TestDistributedMatchesMapReference pins the distributed blocker to the
// same reference: the index-mapped MapPartitions build must emit exactly
// the sequential reference blocks, including within-block ID order.
func TestDistributedMatchesMapReference(t *testing.T) {
	ctx := dataflow.NewContext(dataflow.WithParallelism(3))
	defer ctx.Close()
	for _, clean := range []bool{false, true} {
		for _, loose := range []bool{false, true} {
			opts := Options{}
			if loose {
				opts.Clustering = matrixClustering{}
			}
			c := matrixCollection(7, clean, 50)
			want := refTokenBlocking(c, opts)
			for _, parts := range []int{1, 4, 7} {
				got, err := DistributedTokenBlocking(ctx, c, opts, parts)
				if err != nil {
					t.Fatal(err)
				}
				label := fmt.Sprintf("clean=%v/loose=%v/parts=%d", clean, loose, parts)
				requireSameCollection(t, label, want, got)
			}
		}
	}
}

// TestBatchScratchReuse runs two different collections through the pooled
// worker buffers and mark sets back to back, guarding against cross-run
// contamination of the recycled state.
func TestBatchScratchReuse(t *testing.T) {
	a := matrixCollection(3, false, 40)
	b := matrixCollection(9, true, 40)
	for i := 0; i < 3; i++ {
		for _, c := range []*profile.Collection{a, b} {
			blocks := TokenBlocking(c, Options{})
			requireSameCollection(t, "reuse/blocks", refTokenBlocking(c, Options{}), blocks)
			filtered := Filter(blocks, 0.6)
			requireSameCollection(t, "reuse/filter", refFilter(blocks, 0.6), filtered)
			want := refDistinctPairs(filtered)
			sortPairs(want)
			requireSamePairs(t, "reuse/pairs", want, filtered.DistinctPairs())
		}
	}
}

// TestFilterEmptyAndDegenerate pins the CSR pass's edge cases: empty
// collections, an all-filtered collection, and out-of-range lookups on
// the flat index.
func TestFilterEmptyAndDegenerate(t *testing.T) {
	empty := &Collection{CleanClean: true, NumProfiles: 10}
	if got := Filter(empty, 0.8); got.NumBlocks() != 0 {
		t.Fatalf("filter of empty collection: %d blocks", got.NumBlocks())
	}
	if got := empty.DistinctPairs(); len(got) != 0 {
		t.Fatalf("pairs of empty collection: %d", len(got))
	}
	idx := BuildIndex(empty)
	if idx.MaxProfileID() != -1 || idx.NumProfiles() != 0 || len(idx.ProfileIDs()) != 0 {
		t.Fatalf("empty index: max=%d n=%d", idx.MaxProfileID(), idx.NumProfiles())
	}
	if refs := idx.BlocksOf(0); refs != nil {
		t.Fatalf("BlocksOf on empty index: %v", refs)
	}
	one := &Collection{Blocks: []Block{{Key: "k", A: []profile.ID{7}}}, NumProfiles: 8}
	if got := Filter(one, 0.8); got.NumBlocks() != 0 {
		t.Fatalf("singleton block survived: %d", got.NumBlocks())
	}
	oneIdx := BuildIndex(one)
	if oneIdx.BlocksOf(-1) != nil || oneIdx.BlocksOf(1000) != nil {
		t.Fatal("out-of-range BlocksOf not nil")
	}
	if oneIdx.NumBlocksOf(7) != 1 || oneIdx.MaxProfileID() != 7 {
		t.Fatalf("singleton index: n=%d max=%d", oneIdx.NumBlocksOf(7), oneIdx.MaxProfileID())
	}
}

// TestTokenBlockingWorkersRace exercises the sharded build's fan-out with
// more workers than profiles and under concurrent calls — the target of
// the CI -race run for this package.
func TestTokenBlockingWorkersRace(t *testing.T) {
	c := matrixCollection(11, true, 30)
	want := refTokenBlocking(c, Options{})
	done := make(chan *Collection, 4)
	for i := 0; i < 4; i++ {
		go func(w int) {
			done <- TokenBlocking(c, Options{Workers: w})
		}(1 + i*3)
	}
	for i := 0; i < 4; i++ {
		requireSameCollection(t, "race", want, <-done)
	}
}
