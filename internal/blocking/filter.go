package blocking

import (
	"math"
	"sort"

	"sparker/internal/profile"
)

// DefaultFilterRatio keeps each profile in the smallest 80% of its blocks,
// i.e. removes it from the largest 20%, the setting the paper quotes.
const DefaultFilterRatio = 0.8

// Filter applies Block Filtering [10]: each profile is retained only in
// the ceil(ratio * k) smallest of the k blocks it appears in (ties broken
// by key for determinism). Blocks that lose too many profiles to keep
// producing comparisons are dropped. This raises precision with a
// negligible effect on recall because a profile's largest blocks are its
// least distinctive ones.
func Filter(c *Collection, ratio float64) *Collection {
	if ratio <= 0 || ratio > 1 {
		ratio = DefaultFilterRatio
	}

	// Per-profile list of blocks, to rank by block cardinality.
	type assignment struct {
		block int
		size  int64
	}
	perProfile := make(map[profile.ID][]assignment)
	for i := range c.Blocks {
		card := c.Blocks[i].Comparisons()
		for _, id := range c.Blocks[i].A {
			perProfile[id] = append(perProfile[id], assignment{block: i, size: card})
		}
		for _, id := range c.Blocks[i].B {
			perProfile[id] = append(perProfile[id], assignment{block: i, size: card})
		}
	}

	// keep[b][id] true when profile id stays in block b.
	keep := make([]map[profile.ID]bool, len(c.Blocks))
	for i := range keep {
		keep[i] = make(map[profile.ID]bool)
	}
	for id, as := range perProfile {
		sort.Slice(as, func(i, j int) bool {
			if as[i].size != as[j].size {
				return as[i].size < as[j].size
			}
			return c.Blocks[as[i].block].Key < c.Blocks[as[j].block].Key
		})
		limit := int(math.Ceil(ratio * float64(len(as))))
		if limit < 1 {
			limit = 1
		}
		for _, a := range as[:limit] {
			keep[a.block][id] = true
		}
	}

	out := &Collection{CleanClean: c.CleanClean, NumProfiles: c.NumProfiles}
	for i := range c.Blocks {
		b := &c.Blocks[i]
		var a2, b2 []profile.ID
		for _, id := range b.A {
			if keep[i][id] {
				a2 = append(a2, id)
			}
		}
		for _, id := range b.B {
			if keep[i][id] {
				b2 = append(b2, id)
			}
		}
		if len(a2)+len(b2) < 2 {
			continue
		}
		if c.CleanClean && (len(a2) == 0 || len(b2) == 0) {
			continue
		}
		out.Blocks = append(out.Blocks, Block{
			Key: b.Key, ClusterID: b.ClusterID, CleanClean: b.CleanClean, A: a2, B: b2,
		})
	}
	return out
}

// BlockRef is one entry of Index.BlocksOf: a block ordinal packed with the
// side of the block the profile sits on (ordinal<<1 | side, side 1 meaning
// the B slice of a clean-clean block). Carrying the side bit lets the
// meta-blocking kernel pick the opposite side of every block directly
// instead of linearly scanning the block's A slice per visit.
type BlockRef int32

// MakeBlockRef packs a block ordinal and a side into a BlockRef.
func MakeBlockRef(ordinal int32, sideB bool) BlockRef {
	r := BlockRef(ordinal << 1)
	if sideB {
		r |= 1
	}
	return r
}

// Ordinal returns the block ordinal into the collection's Blocks slice.
func (r BlockRef) Ordinal() int32 { return int32(r) >> 1 }

// SideB reports whether the profile sits in the block's B slice.
func (r BlockRef) SideB() bool { return r&1 == 1 }

// Index maps every profile to the blocks it appears in after
// purging/filtering; it is the data structure the meta-blocking graph is
// materialised from (and what the parallel algorithm broadcasts).
type Index struct {
	// BlocksOf[id] lists the profile's blocks as BlockRefs, ascending by
	// block ordinal.
	BlocksOf map[profile.ID][]BlockRef
	// Blocks is the underlying collection the ordinals refer to.
	Blocks *Collection
}

// BuildIndex constructs the profile-to-blocks index.
func BuildIndex(c *Collection) *Index {
	idx := &Index{BlocksOf: make(map[profile.ID][]BlockRef), Blocks: c}
	for i := range c.Blocks {
		b := &c.Blocks[i]
		for _, id := range b.A {
			idx.BlocksOf[id] = append(idx.BlocksOf[id], MakeBlockRef(int32(i), false))
		}
		for _, id := range b.B {
			idx.BlocksOf[id] = append(idx.BlocksOf[id], MakeBlockRef(int32(i), true))
		}
	}
	return idx
}

// NumBlocksOf returns |B_p|, the number of blocks containing the profile.
func (idx *Index) NumBlocksOf(id profile.ID) int { return len(idx.BlocksOf[id]) }

// MaxProfileID returns the largest profile ID in the index, or -1 when the
// index is empty — the bound flat, ID-indexed kernels size their scratch
// arrays to.
func (idx *Index) MaxProfileID() profile.ID {
	max := profile.ID(-1)
	for id := range idx.BlocksOf {
		if id > max {
			max = id
		}
	}
	return max
}

// ProfileIDs lists every profile that survived into the index, sorted.
func (idx *Index) ProfileIDs() []profile.ID {
	out := make([]profile.ID, 0, len(idx.BlocksOf))
	for id := range idx.BlocksOf {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
