package blocking

import (
	"cmp"
	"math"
	"slices"

	"sparker/internal/profile"
)

// DefaultFilterRatio keeps each profile in the smallest 80% of its blocks,
// i.e. removes it from the largest 20%, the setting the paper quotes.
const DefaultFilterRatio = 0.8

// Filter applies Block Filtering [10]: each profile is retained only in
// the ceil(ratio * k) smallest of the k blocks it appears in (ties broken
// by key for determinism). Blocks that lose too many profiles to keep
// producing comparisons are dropped. This raises precision with a
// negligible effect on recall because a profile's largest blocks are its
// least distinctive ones.
//
// The pass runs on dense profile IDs end to end: a counting pass lays the
// per-profile block assignments out in a CSR layout (per-profile offsets
// into one flat BlockRef array), the per-profile smallest-k selection
// runs in parallel over profiles, and the surviving memberships are
// replayed through pooled epoch-stamped keep bitsets — no
// map[profile.ID][]assignment, no []map[profile.ID]bool. Output is
// bitwise-identical to the retained map reference in reference_test.go.
func Filter(c *Collection, ratio float64) *Collection {
	if ratio <= 0 || ratio > 1 {
		ratio = DefaultFilterRatio
	}
	out := &Collection{CleanClean: c.CleanClean, NumProfiles: c.NumProfiles}
	nb := len(c.Blocks)
	if nb == 0 {
		return out
	}

	// Per-block cardinality (the ranking key), computed once.
	card := make([]int64, nb)
	total := 0
	for i := range c.Blocks {
		card[i] = c.Blocks[i].Comparisons()
		total += c.Blocks[i].Size()
	}
	maxID := maxProfileID(c.Blocks)
	if maxID < 0 {
		return out
	}
	numIDs := int(maxID) + 1
	offsets, entries := buildAssignmentCSR(c.Blocks, numIDs, total)

	// Keep pass, parallel over profiles: rank each profile's assignments
	// by (cardinality, key) through a per-worker permutation buffer and
	// mark the smallest ceil(ratio*k) as kept. kept is indexed by CSR
	// position, so workers write disjoint ranges.
	kept := make([]bool, total)
	workers := maxWorkers(numIDs)
	blocks := c.Blocks
	parallelFor(numIDs, workers, func(_, lo, hi int) {
		var perm []int32
		for id := lo; id < hi; id++ {
			start, end := offsets[id], offsets[id+1]
			k := int(end - start)
			if k == 0 {
				continue
			}
			perm = perm[:0]
			for j := 0; j < k; j++ {
				perm = append(perm, start+int32(j))
			}
			// slices.SortFunc, not sort.Slice: the reflection-based
			// comparator would allocate once per profile.
			slices.SortFunc(perm, func(x, y int32) int {
				ox := entries[x].Ordinal()
				oy := entries[y].Ordinal()
				if card[ox] != card[oy] {
					return cmp.Compare(card[ox], card[oy])
				}
				if blocks[ox].Key != blocks[oy].Key {
					return cmp.Compare(blocks[ox].Key, blocks[oy].Key)
				}
				return cmp.Compare(ox, oy)
			})
			limit := int(math.Ceil(ratio * float64(k)))
			if limit < 1 {
				limit = 1
			}
			for j := 0; j < limit; j++ {
				kept[perm[j]] = true
			}
		}
	})

	// Regroup the kept memberships by block (a second small CSR), so the
	// emit pass can stamp each block's keep bitset in O(kept).
	blkOff := make([]int32, nb+1)
	for j := range entries {
		if kept[j] {
			blkOff[entries[j].Ordinal()+1]++
		}
	}
	for i := 1; i <= nb; i++ {
		blkOff[i] += blkOff[i-1]
	}
	keptIDs := make([]profile.ID, blkOff[nb])
	blkCur := make([]int32, nb)
	copy(blkCur, blkOff[:nb])
	for id := 0; id < numIDs; id++ {
		for j := offsets[id]; j < offsets[id+1]; j++ {
			if kept[j] {
				ord := entries[j].Ordinal()
				keptIDs[blkCur[ord]] = profile.ID(id)
				blkCur[ord]++
			}
		}
	}

	// Emit pass, parallel over blocks: stamp the block's kept IDs into a
	// pooled epoch-stamped bitset, then walk the original member lists so
	// survivor order matches the input exactly. Each worker stages its
	// survivors into one growing buffer and carves the final [A | B]
	// member slices out of a single exact-size backing array — one
	// allocation per worker instead of one per surviving block.
	outBlocks := make([]Block, nb)
	alive := make([]bool, nb)
	parallelFor(nb, workers, func(_, lo, hi int) {
		marks := getMarkSet(numIDs)
		defer putMarkSet(marks)
		type outSeg struct {
			block, start, na, nb int32
		}
		var segs []outSeg
		var membuf []profile.ID
		for i := lo; i < hi; i++ {
			seg := keptIDs[blkOff[i]:blkOff[i+1]]
			if len(seg) < 2 {
				continue
			}
			marks.Begin()
			for _, id := range seg {
				marks.Mark(id)
			}
			b := &blocks[i]
			start := len(membuf)
			na, nb2 := 0, 0
			for _, id := range b.A {
				if marks.Has(id) {
					membuf = append(membuf, id)
					na++
				}
			}
			for _, id := range b.B {
				if marks.Has(id) {
					membuf = append(membuf, id)
					nb2++
				}
			}
			if na+nb2 < 2 || (c.CleanClean && (na == 0 || nb2 == 0)) {
				membuf = membuf[:start]
				continue
			}
			segs = append(segs, outSeg{block: int32(i), start: int32(start), na: int32(na), nb: int32(nb2)})
		}
		backing := make([]profile.ID, len(membuf))
		copy(backing, membuf)
		for _, sg := range segs {
			b := &blocks[sg.block]
			var a2, b2 []profile.ID
			if sg.na > 0 {
				a2 = backing[sg.start : sg.start+sg.na : sg.start+sg.na]
			}
			if sg.nb > 0 {
				b2 = backing[sg.start+sg.na : sg.start+sg.na+sg.nb : sg.start+sg.na+sg.nb]
			}
			outBlocks[sg.block] = Block{
				Key: b.Key, ClusterID: b.ClusterID, CleanClean: b.CleanClean, A: a2, B: b2,
			}
			alive[sg.block] = true
		}
	})

	survivors := 0
	for i := range alive {
		if alive[i] {
			survivors++
		}
	}
	out.Blocks = make([]Block, 0, survivors)
	for i := range alive {
		if alive[i] {
			out.Blocks = append(out.Blocks, outBlocks[i])
		}
	}
	return out
}

// BlockRef is one entry of Index.BlocksOf: a block ordinal packed with the
// side of the block the profile sits on (ordinal<<1 | side, side 1 meaning
// the B slice of a clean-clean block). Carrying the side bit lets the
// meta-blocking kernel pick the opposite side of every block directly
// instead of linearly scanning the block's A slice per visit.
type BlockRef int32

// MakeBlockRef packs a block ordinal and a side into a BlockRef.
func MakeBlockRef(ordinal int32, sideB bool) BlockRef {
	r := BlockRef(ordinal << 1)
	if sideB {
		r |= 1
	}
	return r
}

// Ordinal returns the block ordinal into the collection's Blocks slice.
func (r BlockRef) Ordinal() int32 { return int32(r) >> 1 }

// SideB reports whether the profile sits in the block's B slice.
func (r BlockRef) SideB() bool { return r&1 == 1 }

// Index maps every profile to the blocks it appears in after
// purging/filtering; it is the data structure the meta-blocking graph is
// materialised from (and what the parallel algorithm broadcasts). The
// layout is a CSR over dense profile IDs: one flat BlockRef backing array
// with per-profile offsets, built by a counting pass — no per-profile map
// entries or slice growth.
type Index struct {
	// Blocks is the underlying collection the ordinals refer to.
	Blocks *Collection
	// start[id] .. start[id+1] bound profile id's run in refs; IDs at or
	// beyond len(start)-1 have no blocks.
	start []int32
	// refs is the flat backing array, each profile's run ascending by
	// block ordinal.
	refs []BlockRef
	// ids lists the profiles with at least one block, ascending.
	ids []profile.ID
}

// buildAssignmentCSR lays the profile-to-block assignments of a block
// list out in CSR form: offsets[id] .. offsets[id+1] bound profile id's
// run in the flat entries array. A counting pass sizes every run, a
// prefix sum carves the backing array, and a fill pass in block order
// leaves every run ascending by block ordinal. numIDs must be
// maxProfileID+1 and total the summed block sizes (callers have both in
// hand already).
func buildAssignmentCSR(blocks []Block, numIDs, total int) (offsets []int32, entries []BlockRef) {
	if total > math.MaxInt32 {
		// The int32 offsets (like BlockRef's int32 ordinals) cap a single
		// collection at 2^31-1 assignments; wrapping would silently
		// scatter entries. Past that scale the collection must be split
		// across the dataflow engine anyway.
		panic("blocking: collection exceeds 2^31-1 block assignments")
	}
	offsets = make([]int32, numIDs+1)
	for i := range blocks {
		for _, id := range blocks[i].A {
			offsets[id+1]++
		}
		for _, id := range blocks[i].B {
			offsets[id+1]++
		}
	}
	for i := 1; i <= numIDs; i++ {
		offsets[i] += offsets[i-1]
	}
	entries = make([]BlockRef, total)
	cur := make([]int32, numIDs)
	copy(cur, offsets[:numIDs])
	for i := range blocks {
		for _, id := range blocks[i].A {
			entries[cur[id]] = MakeBlockRef(int32(i), false)
			cur[id]++
		}
		for _, id := range blocks[i].B {
			entries[cur[id]] = MakeBlockRef(int32(i), true)
			cur[id]++
		}
	}
	return offsets, entries
}

// BuildIndex constructs the profile-to-blocks index from the shared CSR
// builder.
func BuildIndex(c *Collection) *Index {
	idx := &Index{Blocks: c}
	maxID := maxProfileID(c.Blocks)
	numIDs := int(maxID) + 1
	if numIDs == 0 {
		idx.start = make([]int32, 1)
		return idx
	}
	total := 0
	for i := range c.Blocks {
		total += c.Blocks[i].Size()
	}
	idx.start, idx.refs = buildAssignmentCSR(c.Blocks, numIDs, total)
	present := 0
	for id := 0; id < numIDs; id++ {
		if idx.start[id+1] > idx.start[id] {
			present++
		}
	}
	idx.ids = make([]profile.ID, 0, present)
	for id := 0; id < numIDs; id++ {
		if idx.start[id+1] > idx.start[id] {
			idx.ids = append(idx.ids, profile.ID(id))
		}
	}
	return idx
}

// BlocksOf lists the profile's blocks as BlockRefs, ascending by block
// ordinal. The returned slice aliases the index's flat backing array and
// must be treated as read-only.
func (idx *Index) BlocksOf(id profile.ID) []BlockRef {
	if id < 0 || int(id) >= len(idx.start)-1 {
		return nil
	}
	return idx.refs[idx.start[id]:idx.start[id+1]]
}

// NumBlocksOf returns |B_p|, the number of blocks containing the profile.
func (idx *Index) NumBlocksOf(id profile.ID) int {
	if id < 0 || int(id) >= len(idx.start)-1 {
		return 0
	}
	return int(idx.start[id+1] - idx.start[id])
}

// NumProfiles returns the number of profiles that survived into the
// index (those appearing in at least one block).
func (idx *Index) NumProfiles() int { return len(idx.ids) }

// MaxProfileID returns the largest profile ID in the index, or -1 when the
// index is empty — the bound flat, ID-indexed kernels size their scratch
// arrays to.
func (idx *Index) MaxProfileID() profile.ID {
	if len(idx.ids) == 0 {
		return -1
	}
	return idx.ids[len(idx.ids)-1]
}

// ProfileIDs lists every profile that survived into the index, ascending.
// The slice is shared across calls and must be treated as read-only.
func (idx *Index) ProfileIDs() []profile.ID { return idx.ids }
