package blocking

import (
	"sync"
	"testing"

	"sparker/internal/datagen"
	"sparker/internal/profile"
)

// Batch blocking pipeline benchmarks, flat/parallel vs the retained map
// references of reference_test.go, on the same ~10k-profile synthetic
// collection the serving benchmarks use. These feed the CI hot-path
// artifact (BENCH_hotpath.json); the "reference" sub-benchmarks keep the
// before numbers honest across commits.

var (
	batchOnce sync.Once
	batchCol  *profile.Collection
)

func batchBenchCollection(b *testing.B) *profile.Collection {
	b.Helper()
	batchOnce.Do(func() {
		cfg := datagen.AbtBuy()
		cfg.CoreEntities = 4500
		cfg.AOnly = 400
		cfg.BDup = 400
		batchCol = datagen.Generate(cfg).Collection
	})
	return batchCol
}

func BenchmarkTokenBlocking(b *testing.B) {
	c := batchBenchCollection(b)
	b.Run("flat", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			TokenBlocking(c, Options{})
		}
	})
	b.Run("flat-1worker", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			TokenBlocking(c, Options{Workers: 1})
		}
	})
	b.Run("reference", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			refTokenBlocking(c, Options{})
		}
	})
}

func BenchmarkBlockFilter(b *testing.B) {
	c := batchBenchCollection(b)
	purged := PurgeBySize(TokenBlocking(c, Options{}), 0.5)
	b.Run("flat", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			Filter(purged, 0.8)
		}
	})
	b.Run("reference", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			refFilter(purged, 0.8)
		}
	})
}

func BenchmarkBuildIndex(b *testing.B) {
	c := batchBenchCollection(b)
	filtered := Filter(PurgeBySize(TokenBlocking(c, Options{}), 0.5), 0.8)
	b.Run("flat", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			BuildIndex(filtered)
		}
	})
	b.Run("reference", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			refBuildIndex(filtered)
		}
	})
}

func BenchmarkDistinctPairs(b *testing.B) {
	c := batchBenchCollection(b)
	filtered := Filter(PurgeBySize(TokenBlocking(c, Options{}), 0.5), 0.8)
	b.Run("flat", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			filtered.DistinctPairs()
		}
	})
	b.Run("reference", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			refDistinctPairs(filtered)
		}
	})
}

// BenchmarkBatchBlocking times the whole batch build end to end
// (TokenBlocking → Purge → Filter → BuildIndex → DistinctPairs), the
// pipeline a Session or sparker-serve boot reruns from scratch.
func BenchmarkBatchBlocking(b *testing.B) {
	c := batchBenchCollection(b)
	b.Run("flat", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			filtered := Filter(PurgeBySize(TokenBlocking(c, Options{}), 0.5), 0.8)
			BuildIndex(filtered)
			filtered.DistinctPairs()
		}
	})
	b.Run("reference", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			filtered := refFilter(PurgeBySize(refTokenBlocking(c, Options{}), 0.5), 0.8)
			refBuildIndex(filtered)
			refDistinctPairs(filtered)
		}
	})
}
