package blocking

import (
	"fmt"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"sparker/internal/dataflow"
	"sparker/internal/profile"
)

func mkProfile(id string, kvs ...[2]string) profile.Profile {
	p := profile.Profile{OriginalID: id}
	for _, kv := range kvs {
		p.Add(kv[0], kv[1])
	}
	return p
}

func smallClean() *profile.Collection {
	a := []profile.Profile{
		mkProfile("a1", [2]string{"name", "alpha widget"}),
		mkProfile("a2", [2]string{"name", "beta gadget"}),
		mkProfile("a3", [2]string{"name", "gamma tool"}),
	}
	b := []profile.Profile{
		mkProfile("b1", [2]string{"title", "alpha widget deluxe"}),
		mkProfile("b2", [2]string{"title", "beta gadget pro"}),
	}
	return profile.NewCleanClean(a, b)
}

func TestTokenBlockingCleanRequiresBothSides(t *testing.T) {
	c := smallClean()
	blocks := TokenBlocking(c, Options{})
	for i := range blocks.Blocks {
		b := &blocks.Blocks[i]
		if len(b.A) == 0 || len(b.B) == 0 {
			t.Fatalf("block %q has an empty side", b.Key)
		}
	}
	keys := map[string]bool{}
	for i := range blocks.Blocks {
		keys[blocks.Blocks[i].Key] = true
	}
	for _, want := range []string{"alpha", "widget", "beta", "gadget"} {
		if !keys[want] {
			t.Fatalf("missing block %q (have %v)", want, keys)
		}
	}
	// "gamma"/"tool"/"deluxe"/"pro" appear on one side only.
	for _, absent := range []string{"gamma", "tool", "deluxe", "pro"} {
		if keys[absent] {
			t.Fatalf("unexpected block %q", absent)
		}
	}
}

func TestTokenBlockingDirtyNeedsTwoProfiles(t *testing.T) {
	c := profile.NewDirty([]profile.Profile{
		mkProfile("x", [2]string{"v", "shared unique1"}),
		mkProfile("y", [2]string{"v", "shared unique2"}),
	})
	blocks := TokenBlocking(c, Options{})
	if blocks.NumBlocks() != 1 || blocks.Blocks[0].Key != "shared" {
		t.Fatalf("blocks: %+v", blocks.Blocks)
	}
	if got := blocks.Blocks[0].Comparisons(); got != 1 {
		t.Fatalf("comparisons=%d", got)
	}
}

func TestBlockComparisons(t *testing.T) {
	clean := Block{CleanClean: true, A: []profile.ID{1, 2, 3}, B: []profile.ID{4, 5}}
	if clean.Comparisons() != 6 {
		t.Fatalf("clean: %d", clean.Comparisons())
	}
	dirty := Block{A: []profile.ID{1, 2, 3, 4}}
	if dirty.Comparisons() != 6 {
		t.Fatalf("dirty: %d", dirty.Comparisons())
	}
}

func TestDistinctPairsDeduplicated(t *testing.T) {
	c := smallClean()
	blocks := TokenBlocking(c, Options{})
	pairs := blocks.DistinctPairs()
	seen := map[Pair]bool{}
	for _, p := range pairs {
		if seen[p] {
			t.Fatalf("duplicate pair %v", p)
		}
		seen[p] = true
	}
	// a1-b1 co-occur in blocks alpha and widget but must appear once.
	if !seen[Pair{A: 0, B: 3}] {
		t.Fatal("missing pair a1-b1")
	}
}

func TestPurgeBySizeDropsStopWordBlocks(t *testing.T) {
	// "common" appears in every profile: its block holds 100% of profiles
	// and must be purged at the 0.5 default.
	var a, b []profile.Profile
	for i := 0; i < 4; i++ {
		a = append(a, mkProfile(fmt.Sprintf("a%d", i), [2]string{"v", fmt.Sprintf("common worda%d", i)}))
		b = append(b, mkProfile(fmt.Sprintf("b%d", i), [2]string{"v", fmt.Sprintf("common worda%d", i)}))
	}
	c := profile.NewCleanClean(a, b)
	blocks := TokenBlocking(c, Options{})
	purged := PurgeBySize(blocks, 0.5)
	for i := range purged.Blocks {
		if purged.Blocks[i].Key == "common" {
			t.Fatal("giant block survived purging")
		}
	}
	if purged.NumBlocks() != blocks.NumBlocks()-1 {
		t.Fatalf("purged %d blocks, want exactly 1", blocks.NumBlocks()-purged.NumBlocks())
	}
}

func TestPurgeByComparisonLevelKeepsSmallBlocks(t *testing.T) {
	// Many small blocks plus one huge block: the huge one must go.
	var blocks []Block
	for i := 0; i < 50; i++ {
		blocks = append(blocks, Block{
			Key: fmt.Sprintf("k%d", i), CleanClean: true,
			A: []profile.ID{profile.ID(i)}, B: []profile.ID{profile.ID(1000 + i)},
		})
	}
	var bigA, bigB []profile.ID
	for i := 0; i < 100; i++ {
		bigA = append(bigA, profile.ID(i))
		bigB = append(bigB, profile.ID(1000+i))
	}
	blocks = append(blocks, Block{Key: "huge", CleanClean: true, A: bigA, B: bigB})
	col := &Collection{Blocks: blocks, CleanClean: true, NumProfiles: 2000}
	purged := PurgeByComparisonLevel(col, 0)
	for i := range purged.Blocks {
		if purged.Blocks[i].Key == "huge" {
			t.Fatal("huge block survived comparison-level purging")
		}
	}
	if purged.NumBlocks() != 50 {
		t.Fatalf("kept %d blocks, want 50", purged.NumBlocks())
	}
}

func TestPurgeByComparisonLevelEmpty(t *testing.T) {
	purged := PurgeByComparisonLevel(&Collection{}, 0)
	if purged.NumBlocks() != 0 {
		t.Fatal("expected empty result")
	}
}

func TestFilterRemovesLargestBlocksPerProfile(t *testing.T) {
	// Profile 0 appears in 5 blocks of growing size; ratio 0.8 keeps the 4
	// smallest.
	var blocks []Block
	for i := 0; i < 5; i++ {
		a := []profile.ID{0}
		b := []profile.ID{10}
		for j := 0; j < i; j++ {
			b = append(b, profile.ID(11+j))
		}
		blocks = append(blocks, Block{Key: fmt.Sprintf("k%d", i), CleanClean: true, A: a, B: b})
	}
	col := &Collection{Blocks: blocks, CleanClean: true, NumProfiles: 20}
	filtered := Filter(col, 0.8)
	for i := range filtered.Blocks {
		if filtered.Blocks[i].Key == "k4" {
			for _, id := range filtered.Blocks[i].A {
				if id == 0 {
					t.Fatal("profile 0 still in its largest block")
				}
			}
		}
	}
}

func TestFilterDropsDegenerateBlocks(t *testing.T) {
	c := smallClean()
	blocks := TokenBlocking(c, Options{})
	filtered := Filter(blocks, 0.5)
	for i := range filtered.Blocks {
		b := &filtered.Blocks[i]
		if b.Size() < 2 || (filtered.CleanClean && (len(b.A) == 0 || len(b.B) == 0)) {
			t.Fatalf("degenerate block survived: %+v", b)
		}
	}
}

func TestFilterRecallPreserved(t *testing.T) {
	// The known match a1-b1 shares two distinctive tokens; filtering at the
	// default ratio must not sever it.
	c := smallClean()
	blocks := TokenBlocking(c, Options{})
	filtered := Filter(blocks, DefaultFilterRatio)
	found := false
	for _, p := range filtered.DistinctPairs() {
		if p.A == 0 && p.B == 3 {
			found = true
		}
	}
	if !found {
		t.Fatal("filtering severed the distinctive match")
	}
}

func TestBuildIndex(t *testing.T) {
	c := smallClean()
	blocks := TokenBlocking(c, Options{})
	idx := BuildIndex(blocks)
	if got := idx.NumBlocksOf(0); got != 2 { // alpha, widget
		t.Fatalf("a1 in %d blocks, want 2", got)
	}
	ids := idx.ProfileIDs()
	if !sort.SliceIsSorted(ids, func(i, j int) bool { return ids[i] < ids[j] }) {
		t.Fatal("ProfileIDs not sorted")
	}
	// gamma/tool profile never blocks.
	for _, id := range ids {
		if id == 2 {
			t.Fatal("profile without cross-source tokens must not be indexed")
		}
	}
}

func TestStatsString(t *testing.T) {
	c := smallClean()
	blocks := TokenBlocking(c, Options{})
	s := blocks.ComputeStats()
	if s.NumBlocks != blocks.NumBlocks() || s.TotalComparisons != blocks.TotalComparisons() {
		t.Fatalf("stats mismatch: %+v", s)
	}
	if s.String() == "" {
		t.Fatal("empty stats string")
	}
}

func TestPairCanonical(t *testing.T) {
	p := Pair{A: 5, B: 2}.Canonical()
	if p.A != 2 || p.B != 5 {
		t.Fatalf("got %v", p)
	}
}

// TestDistributedMatchesSequential verifies the core substitution claim:
// the dataflow implementation produces exactly the sequential blocks.
func TestDistributedMatchesSequential(t *testing.T) {
	for _, workers := range []int{1, 2, 4} {
		ctx := dataflow.NewContext(dataflow.WithParallelism(workers))
		c := smallClean()
		seq := TokenBlocking(c, Options{})
		dist, err := DistributedTokenBlocking(ctx, c, Options{}, workers*2)
		ctx.Close()
		if err != nil {
			t.Fatal(err)
		}
		if !sameBlocks(seq, dist) {
			t.Fatalf("workers=%d: distributed blocks differ from sequential", workers)
		}
	}
}

func sameBlocks(x, y *Collection) bool {
	if x.NumBlocks() != y.NumBlocks() {
		return false
	}
	norm := func(c *Collection) map[string][]profile.ID {
		out := map[string][]profile.ID{}
		for i := range c.Blocks {
			b := c.Blocks[i]
			ids := append(append([]profile.ID{}, b.A...), b.B...)
			sort.Slice(ids, func(p, q int) bool { return ids[p] < ids[q] })
			out[b.Key] = ids
		}
		return out
	}
	return reflect.DeepEqual(norm(x), norm(y))
}

func TestQuickDistributedEqualsSequential(t *testing.T) {
	ctx := dataflow.NewContext(dataflow.WithParallelism(4))
	defer ctx.Close()
	f := func(seed int64) bool {
		c := randomCollection(seed)
		seq := TokenBlocking(c, Options{})
		dist, err := DistributedTokenBlocking(ctx, c, Options{}, 3)
		if err != nil {
			return false
		}
		return sameBlocks(seq, dist)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// randomCollection builds a small deterministic collection from a seed.
func randomCollection(seed int64) *profile.Collection {
	words := []string{"red", "green", "blue", "fast", "slow", "big", "small", "x1", "x2", "x3"}
	next := uint64(seed)
	rnd := func(n int) int {
		next = next*6364136223846793005 + 1442695040888963407
		return int((next >> 33) % uint64(n))
	}
	var a, b []profile.Profile
	for i := 0; i < 8; i++ {
		var val string
		for w := 0; w < 3; w++ {
			val += words[rnd(len(words))] + " "
		}
		p := mkProfile(fmt.Sprintf("p%d", i), [2]string{"v", val})
		if rnd(2) == 0 {
			a = append(a, p)
		} else {
			b = append(b, p)
		}
	}
	if len(a) == 0 {
		a = append(a, mkProfile("pad", [2]string{"v", "red"}))
	}
	if len(b) == 0 {
		b = append(b, mkProfile("pad2", [2]string{"v", "red"}))
	}
	return profile.NewCleanClean(a, b)
}

func TestQuickPurgeNeverIncreasesComparisons(t *testing.T) {
	f := func(seed int64) bool {
		c := randomCollection(seed)
		blocks := TokenBlocking(c, Options{})
		purged := PurgeBySize(blocks, 0.5)
		filtered := Filter(purged, 0.8)
		return purged.TotalComparisons() <= blocks.TotalComparisons() &&
			filtered.TotalComparisons() <= purged.TotalComparisons()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestLooseSchemaKeys(t *testing.T) {
	clustering := stubClustering{"name": 1, "price": 2}
	c := profile.NewCleanClean(
		[]profile.Profile{mkProfile("a", [2]string{"name", "widget"}, [2]string{"price", "99"})},
		[]profile.Profile{mkProfile("b", [2]string{"name", "widget"}, [2]string{"price", "99"})},
	)
	blocks := TokenBlocking(c, Options{Clustering: clustering})
	got := map[string]bool{}
	for i := range blocks.Blocks {
		got[blocks.Blocks[i].Key] = true
	}
	if !got["widget_1"] || !got["99_2"] {
		t.Fatalf("loose keys missing: %v", got)
	}
}

type stubClustering map[string]int

func (s stubClustering) ClusterOf(_ int, attribute string) int { return s[attribute] }
