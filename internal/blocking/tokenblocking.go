package blocking

import (
	"fmt"
	"strconv"
	"sync"

	"sparker/internal/dataflow"
	"sparker/internal/profile"
	"sparker/internal/tokenize"
)

// AttributeClustering supplies loose-schema information to key generation:
// the cluster ID of a source-qualified attribute. Implementations come
// from the looseschema package; a nil clustering means schema-agnostic
// blocking (every token is a key, regardless of attribute).
//
// ClusterOf must be safe for concurrent use: the sharded batch blocker
// and the distributed blocker's tasks call it from multiple goroutines.
// (looseschema's Partitioning is a read-only lookup and qualifies.)
type AttributeClustering interface {
	// ClusterOf returns the cluster ID for an attribute of a source.
	// Unknown attributes fall into the blob cluster (ID 0 by convention).
	ClusterOf(sourceID int, attribute string) int
}

// Options configures token blocking.
type Options struct {
	// Tokenizer used on attribute values; zero value uses defaults.
	Tokenizer tokenize.Options
	// Clustering enables loose-schema keys "token_clusterID". Nil keys
	// blocks on raw tokens (schema-agnostic [10]).
	Clustering AttributeClustering
	// MinBlockSize drops blocks with fewer profiles (default 2: a block
	// with one profile yields no comparisons).
	MinBlockSize int
	// Workers bounds the tokenize/merge parallelism of the sharded batch
	// build (default: GOMAXPROCS). The output is identical for every
	// worker count. Any Workers value above 1 (including the default)
	// calls Clustering.ClusterOf from multiple goroutines concurrently.
	Workers int
}

// KeyFor derives the blocking key of a token appearing in an attribute.
func (o *Options) KeyFor(sourceID int, attribute, token string) (string, int) {
	if o.Clustering == nil {
		return token, NoCluster
	}
	cluster := o.Clustering.ClusterOf(sourceID, attribute)
	return token + "_" + strconv.Itoa(cluster), cluster
}

// KeyedToken is one blocking key of a profile together with the
// attribute cluster that generated it (NoCluster when schema-agnostic).
type KeyedToken struct {
	Key     string
	Cluster int
}

// keyScratch bundles the reusable state of key derivation: the per-call
// dedup set, the tokenizer's normalise-and-intern scratch, and the token
// buffer. Key derivation runs once per profile on both the batch blocking
// and index upsert/query hot paths; pooling this state (clearing the set
// compiles to a cheap map reset) makes steady-state key derivation
// allocation-free — tokens and keys alloc only on first sight, through
// the scratch's intern table.
type keyScratch struct {
	seen map[string]struct{}
	tok  tokenize.Scratch
	toks []string
}

var keyScratchPool = sync.Pool{
	New: func() any { return &keyScratch{seen: make(map[string]struct{}, 64)} },
}

// AppendKeysOf appends the distinct blocking keys of one profile to dst
// (in first-occurrence order) and returns the extended slice. Hot-path
// callers — the sharded batch blocker, the distributed blocker's tasks,
// the online index's query path — pass a reused buffer so key derivation
// allocates nothing per profile in the steady state.
func (o *Options) AppendKeysOf(dst []KeyedToken, p *profile.Profile) []KeyedToken {
	ks := keyScratchPool.Get().(*keyScratch)
	for _, kv := range p.Attributes {
		ks.toks = o.Tokenizer.AppendTokens(ks.toks[:0], kv.Value, &ks.tok)
		for _, tok := range ks.toks {
			key, cluster := o.KeyFor(p.SourceID, kv.Key, tok)
			if _, dup := ks.seen[key]; !dup {
				ks.seen[key] = struct{}{}
				dst = append(dst, KeyedToken{Key: key, Cluster: cluster})
			}
		}
	}
	clear(ks.seen)
	keyScratchPool.Put(ks)
	return dst
}

// KeysOf enumerates the distinct blocking keys of one profile, in first-
// occurrence order, in a freshly allocated slice the caller may retain.
// It is the unit of work of token blocking, exposed so that online
// consumers (the incremental entity index) derive keys exactly as the
// batch blocker does. Transient callers should prefer AppendKeysOf with a
// reused buffer.
func (o *Options) KeysOf(p *profile.Profile) []KeyedToken {
	return o.AppendKeysOf(nil, p)
}

// tbAssign is one (key → profile) block assignment emitted by the
// tokenize phase of the sharded build.
type tbAssign struct {
	key     string
	id      profile.ID
	cluster int32
	sideB   bool
}

// tbWorker holds one tokenize worker's per-shard assignment buffers plus
// its reusable key-derivation buffer; workers are pooled across
// TokenBlocking calls so repeated builds (the Session debugging loop,
// sparker-serve boots) reuse the grown buffers.
type tbWorker struct {
	shards [][]tbAssign
	keyBuf []KeyedToken
}

var tbWorkerPool sync.Pool

func getTBWorker(numShards int) *tbWorker {
	w, _ := tbWorkerPool.Get().(*tbWorker)
	if w == nil {
		w = &tbWorker{}
	}
	if cap(w.shards) < numShards {
		w.shards = make([][]tbAssign, numShards)
	} else {
		w.shards = w.shards[:numShards]
	}
	for i := range w.shards {
		w.shards[i] = w.shards[i][:0]
	}
	return w
}

// TokenBlocking builds the block collection with a parallel sharded
// build: workers tokenize contiguous profile ranges and hash every key to
// a shard, then per-shard merge workers group the assignments into blocks
// through flat counting-and-carving state — no global lock, no per-key
// bucket allocation. The result is deterministic and identical to the
// historical sequential map build for every worker count (the retained
// reference in reference_test.go pins this bitwise). For clean-clean
// tasks, blocks that do not contain profiles from both sources are
// dropped, since they yield no comparisons.
func TokenBlocking(c *profile.Collection, opts Options) *Collection {
	minSize := opts.MinBlockSize
	if minSize < 2 {
		minSize = 2
	}
	clean := c.IsClean()
	n := len(c.Profiles)
	out := &Collection{CleanClean: clean, NumProfiles: c.Size()}
	if n == 0 {
		return out
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = maxWorkers(n)
	}
	if workers > n {
		workers = n
	}
	numShards := shardCount(workers)
	mask := uint32(numShards - 1)

	// Phase 1 — tokenize: each worker scans a contiguous profile range in
	// ID order, so concatenating the workers' per-shard buffers in worker
	// order visits assignments in ascending profile ID — exactly the
	// sequential scan order.
	ws := make([]*tbWorker, workers)
	for w := range ws {
		ws[w] = getTBWorker(numShards)
	}
	parallelFor(n, workers, func(w, lo, hi int) {
		tw := ws[w]
		for i := lo; i < hi; i++ {
			p := &c.Profiles[i]
			tw.keyBuf = opts.AppendKeysOf(tw.keyBuf[:0], p)
			sideB := clean && p.SourceID == 1
			for _, kt := range tw.keyBuf {
				s := shardHash(kt.Key) & mask
				tw.shards[s] = append(tw.shards[s], tbAssign{
					key: kt.Key, id: p.ID, cluster: int32(kt.Cluster), sideB: sideB,
				})
			}
		}
	})

	// Phase 2 — merge: each shard owns a disjoint key range, so shards
	// group independently in parallel.
	shardBlocks := make([][]Block, numShards)
	parallelFor(numShards, workers, func(_, lo, hi int) {
		for s := lo; s < hi; s++ {
			shardBlocks[s] = mergeShard(s, ws, minSize, clean)
		}
	})
	for _, w := range ws {
		tbWorkerPool.Put(w)
	}

	total := 0
	for _, bs := range shardBlocks {
		total += len(bs)
	}
	out.Blocks = make([]Block, 0, total)
	for _, bs := range shardBlocks {
		out.Blocks = append(out.Blocks, bs...)
	}
	sortBlocks(out.Blocks)
	return out
}

// mergeShard groups one shard's assignments into blocks. A counting pass
// assigns every distinct key a slot and tallies its per-side sizes, the
// member lists are then carved out of a single flat backing array, and a
// fill pass scatters the IDs — two linear scans, one map, and exactly one
// ID allocation per shard in place of the historical per-key *bucket and
// its two growing slices.
func mergeShard(s int, ws []*tbWorker, minSize int, clean bool) []Block {
	total := 0
	for _, w := range ws {
		total += len(w.shards[s])
	}
	if total == 0 {
		return nil
	}
	type slot struct {
		key            string
		cluster        int32
		aCount, bCount int32
	}
	slotOf := make(map[string]int32, total/2+1)
	slots := make([]slot, 0, total/2+1)
	for _, w := range ws {
		for _, as := range w.shards[s] {
			si, ok := slotOf[as.key]
			if !ok {
				si = int32(len(slots))
				slotOf[as.key] = si
				slots = append(slots, slot{key: as.key, cluster: as.cluster})
			}
			if as.sideB {
				slots[si].bCount++
			} else {
				slots[si].aCount++
			}
		}
	}

	// Carve per-slot [A | B] segments out of one flat backing array.
	ids := make([]profile.ID, total)
	starts := make([]int32, len(slots))
	curA := make([]int32, len(slots))
	curB := make([]int32, len(slots))
	off := int32(0)
	for i := range slots {
		starts[i] = off
		curA[i] = off
		curB[i] = off + slots[i].aCount
		off += slots[i].aCount + slots[i].bCount
	}
	for _, w := range ws {
		for _, as := range w.shards[s] {
			si := slotOf[as.key]
			if as.sideB {
				ids[curB[si]] = as.id
				curB[si]++
			} else {
				ids[curA[si]] = as.id
				curA[si]++
			}
		}
	}

	blocks := make([]Block, 0, len(slots))
	for i := range slots {
		na, nb := slots[i].aCount, slots[i].bCount
		if int(na+nb) < minSize {
			continue
		}
		if clean && (na == 0 || nb == 0) {
			continue
		}
		var a, b []profile.ID
		if na > 0 {
			a = ids[starts[i] : starts[i]+na : starts[i]+na]
		}
		if nb > 0 {
			b = ids[starts[i]+na : starts[i]+na+nb : starts[i]+na+nb]
		}
		blocks = append(blocks, Block{
			Key:        slots[i].key,
			ClusterID:  int(slots[i].cluster),
			CleanClean: clean,
			A:          a,
			B:          b,
		})
	}
	return blocks
}

// DistributedTokenBlocking builds the same block collection on the
// dataflow engine: profiles are distributed, each task emits
// (key, profileID) pairs, and a groupByKey shuffle assembles the blocks —
// the algorithm SparkER runs on Spark. Tasks map over profile indexes
// into the shared collection (not profile values, whose attribute slices
// would be copied per element) and derive keys through one reused buffer
// per partition.
func DistributedTokenBlocking(ctx *dataflow.Context, c *profile.Collection, opts Options, numPartitions int) (*Collection, error) {
	minSize := opts.MinBlockSize
	if minSize < 2 {
		minSize = 2
	}
	clean := c.IsClean()

	indexes := make([]int32, len(c.Profiles))
	for i := range indexes {
		indexes[i] = int32(i)
	}
	profiles := dataflow.Parallelize(ctx, indexes, numPartitions)
	type assign struct {
		Cluster int
		ID      profile.ID
		Src     int
	}
	keyed := dataflow.MapPartitions(profiles, func(in []int32) ([]dataflow.KV[string, assign], error) {
		out := make([]dataflow.KV[string, assign], 0, 8*len(in))
		var keyBuf []KeyedToken
		for _, i := range in {
			p := &c.Profiles[i]
			keyBuf = opts.AppendKeysOf(keyBuf[:0], p)
			for _, kt := range keyBuf {
				out = append(out, dataflow.KV[string, assign]{
					Key:   kt.Key,
					Value: assign{Cluster: kt.Cluster, ID: p.ID, Src: p.SourceID},
				})
			}
		}
		return out, nil
	})
	grouped := dataflow.GroupByKey(keyed, numPartitions)
	blocks := dataflow.FlatMap(grouped, func(kv dataflow.KV[string, []assign]) []Block {
		var a, b []profile.ID
		cluster := NoCluster
		for _, as := range kv.Value {
			cluster = as.Cluster
			if clean && as.Src == 1 {
				b = append(b, as.ID)
			} else {
				a = append(a, as.ID)
			}
		}
		if len(a)+len(b) < minSize {
			return nil
		}
		if clean && (len(a) == 0 || len(b) == 0) {
			return nil
		}
		return []Block{{Key: kv.Key, ClusterID: cluster, CleanClean: clean, A: a, B: b}}
	})
	collected, err := blocks.Collect()
	if err != nil {
		return nil, fmt.Errorf("blocking: distributed token blocking: %w", err)
	}
	out := &Collection{Blocks: collected, CleanClean: clean, NumProfiles: c.Size()}
	sortBlocks(out.Blocks)
	return out, nil
}
