package blocking

import (
	"fmt"
	"strconv"
	"sync"

	"sparker/internal/dataflow"
	"sparker/internal/profile"
	"sparker/internal/tokenize"
)

// AttributeClustering supplies loose-schema information to key generation:
// the cluster ID of a source-qualified attribute. Implementations come
// from the looseschema package; a nil clustering means schema-agnostic
// blocking (every token is a key, regardless of attribute).
type AttributeClustering interface {
	// ClusterOf returns the cluster ID for an attribute of a source.
	// Unknown attributes fall into the blob cluster (ID 0 by convention).
	ClusterOf(sourceID int, attribute string) int
}

// Options configures token blocking.
type Options struct {
	// Tokenizer used on attribute values; zero value uses defaults.
	Tokenizer tokenize.Options
	// Clustering enables loose-schema keys "token_clusterID". Nil keys
	// blocks on raw tokens (schema-agnostic [10]).
	Clustering AttributeClustering
	// MinBlockSize drops blocks with fewer profiles (default 2: a block
	// with one profile yields no comparisons).
	MinBlockSize int
}

// KeyFor derives the blocking key of a token appearing in an attribute.
func (o *Options) KeyFor(sourceID int, attribute, token string) (string, int) {
	if o.Clustering == nil {
		return token, NoCluster
	}
	cluster := o.Clustering.ClusterOf(sourceID, attribute)
	return token + "_" + strconv.Itoa(cluster), cluster
}

// KeyedToken is one blocking key of a profile together with the
// attribute cluster that generated it (NoCluster when schema-agnostic).
type KeyedToken struct {
	Key     string
	Cluster int
}

// keysSeenPool recycles the per-call dedup sets of KeysOf. KeysOf runs
// once per profile on both the batch blocking and index upsert/query hot
// paths; pooling the set (and clearing it, which Go compiles to a cheap
// map reset) removes the dominant allocation of key derivation.
var keysSeenPool = sync.Pool{
	New: func() any { return make(map[string]struct{}, 64) },
}

// KeysOf enumerates the distinct blocking keys of one profile, in first-
// occurrence order. It is the unit of work of token blocking, exposed so
// that online consumers (the incremental entity index) derive keys exactly
// as the batch blocker does.
func (o *Options) KeysOf(p *profile.Profile) []KeyedToken {
	seen := keysSeenPool.Get().(map[string]struct{})
	var out []KeyedToken
	for _, kv := range p.Attributes {
		for _, tok := range o.Tokenizer.Tokens(kv.Value) {
			key, cluster := o.KeyFor(p.SourceID, kv.Key, tok)
			if _, dup := seen[key]; !dup {
				seen[key] = struct{}{}
				out = append(out, KeyedToken{Key: key, Cluster: cluster})
			}
		}
	}
	clear(seen)
	keysSeenPool.Put(seen)
	return out
}

// TokenBlocking builds the block collection sequentially. For clean-clean
// tasks, blocks that do not contain profiles from both sources are
// dropped, since they yield no comparisons.
func TokenBlocking(c *profile.Collection, opts Options) *Collection {
	minSize := opts.MinBlockSize
	if minSize < 2 {
		minSize = 2
	}
	type bucket struct {
		cluster int
		a, b    []profile.ID
	}
	buckets := make(map[string]*bucket)
	for i := range c.Profiles {
		p := &c.Profiles[i]
		for _, kt := range opts.KeysOf(p) {
			bk := buckets[kt.Key]
			if bk == nil {
				bk = &bucket{cluster: kt.Cluster}
				buckets[kt.Key] = bk
			}
			if c.IsClean() && p.SourceID == 1 {
				bk.b = append(bk.b, p.ID)
			} else {
				bk.a = append(bk.a, p.ID)
			}
		}
	}
	out := &Collection{CleanClean: c.IsClean(), NumProfiles: c.Size()}
	for key, bk := range buckets {
		if len(bk.a)+len(bk.b) < minSize {
			continue
		}
		if c.IsClean() && (len(bk.a) == 0 || len(bk.b) == 0) {
			continue
		}
		out.Blocks = append(out.Blocks, Block{
			Key:        key,
			ClusterID:  bk.cluster,
			CleanClean: c.IsClean(),
			A:          bk.a,
			B:          bk.b,
		})
	}
	sortBlocks(out.Blocks)
	return out
}

// DistributedTokenBlocking builds the same block collection on the
// dataflow engine: profiles are distributed, each task emits
// (key, profileID) pairs, and a groupByKey shuffle assembles the blocks —
// the algorithm SparkER runs on Spark.
func DistributedTokenBlocking(ctx *dataflow.Context, c *profile.Collection, opts Options, numPartitions int) (*Collection, error) {
	minSize := opts.MinBlockSize
	if minSize < 2 {
		minSize = 2
	}
	clean := c.IsClean()

	profiles := dataflow.Parallelize(ctx, c.Profiles, numPartitions)
	type assign struct {
		Cluster int
		ID      profile.ID
		Src     int
	}
	keyed := dataflow.FlatMap(profiles, func(p profile.Profile) []dataflow.KV[string, assign] {
		kts := opts.KeysOf(&p)
		out := make([]dataflow.KV[string, assign], 0, len(kts))
		for _, kt := range kts {
			out = append(out, dataflow.KV[string, assign]{
				Key:   kt.Key,
				Value: assign{Cluster: kt.Cluster, ID: p.ID, Src: p.SourceID},
			})
		}
		return out
	})
	grouped := dataflow.GroupByKey(keyed, numPartitions)
	blocks := dataflow.FlatMap(grouped, func(kv dataflow.KV[string, []assign]) []Block {
		var a, b []profile.ID
		cluster := NoCluster
		for _, as := range kv.Value {
			cluster = as.Cluster
			if clean && as.Src == 1 {
				b = append(b, as.ID)
			} else {
				a = append(a, as.ID)
			}
		}
		if len(a)+len(b) < minSize {
			return nil
		}
		if clean && (len(a) == 0 || len(b) == 0) {
			return nil
		}
		return []Block{{Key: kv.Key, ClusterID: cluster, CleanClean: clean, A: a, B: b}}
	})
	collected, err := blocks.Collect()
	if err != nil {
		return nil, fmt.Errorf("blocking: distributed token blocking: %w", err)
	}
	out := &Collection{Blocks: collected, CleanClean: clean, NumProfiles: c.Size()}
	sortBlocks(out.Blocks)
	return out, nil
}
