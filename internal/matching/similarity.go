// Package matching implements SparkER's entity matcher: it scores the
// candidate pairs that survive meta-blocking with a pluggable similarity
// measure and labels them match / non-match with a threshold (unsupervised
// mode) or a threshold tuned on labelled examples (supervised mode). The
// paper plugs Magellan in here and lists Jaccard, edit distance and CSA as
// example scores; this package provides those measures (TF-IDF cosine
// standing in for CSA) over profile bags-of-words.
package matching

import (
	"math"
	"sort"
	"strconv"
	"strings"

	"sparker/internal/profile"
	"sparker/internal/tokenize"
)

// JaccardTokens computes |A∩B|/|A∪B| over two token multisets (duplicates
// ignored).
func JaccardTokens(a, b []string) float64 {
	as := toSet(a)
	bs := toSet(b)
	if len(as) == 0 && len(bs) == 0 {
		return 0
	}
	inter := 0
	for t := range as {
		if bs[t] {
			inter++
		}
	}
	union := len(as) + len(bs) - inter
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

// DiceTokens computes 2|A∩B|/(|A|+|B|).
func DiceTokens(a, b []string) float64 {
	as := toSet(a)
	bs := toSet(b)
	if len(as)+len(bs) == 0 {
		return 0
	}
	inter := 0
	for t := range as {
		if bs[t] {
			inter++
		}
	}
	return 2 * float64(inter) / float64(len(as)+len(bs))
}

// OverlapTokens computes |A∩B|/min(|A|,|B|).
func OverlapTokens(a, b []string) float64 {
	as := toSet(a)
	bs := toSet(b)
	minLen := len(as)
	if len(bs) < minLen {
		minLen = len(bs)
	}
	if minLen == 0 {
		return 0
	}
	inter := 0
	for t := range as {
		if bs[t] {
			inter++
		}
	}
	return float64(inter) / float64(minLen)
}

func toSet(tokens []string) map[string]bool {
	s := make(map[string]bool, len(tokens))
	for _, t := range tokens {
		s[t] = true
	}
	return s
}

// Levenshtein computes the edit distance between two strings.
func Levenshtein(a, b string) int {
	ra, rb := []rune(a), []rune(b)
	if len(ra) == 0 {
		return len(rb)
	}
	if len(rb) == 0 {
		return len(ra)
	}
	prev := make([]int, len(rb)+1)
	cur := make([]int, len(rb)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(ra); i++ {
		cur[0] = i
		for j := 1; j <= len(rb); j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			cur[j] = min3(cur[j-1]+1, prev[j]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(rb)]
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}

// LevenshteinSimilarity normalises edit distance into [0,1].
func LevenshteinSimilarity(a, b string) float64 {
	if a == "" && b == "" {
		return 0
	}
	maxLen := len([]rune(a))
	if l := len([]rune(b)); l > maxLen {
		maxLen = l
	}
	return 1 - float64(Levenshtein(a, b))/float64(maxLen)
}

// Jaro computes the Jaro similarity of two strings.
func Jaro(a, b string) float64 {
	ra, rb := []rune(a), []rune(b)
	la, lb := len(ra), len(rb)
	if la == 0 && lb == 0 {
		return 1
	}
	if la == 0 || lb == 0 {
		return 0
	}
	window := la
	if lb > window {
		window = lb
	}
	window = window/2 - 1
	if window < 0 {
		window = 0
	}
	matchA := make([]bool, la)
	matchB := make([]bool, lb)
	matches := 0
	for i := 0; i < la; i++ {
		lo := i - window
		if lo < 0 {
			lo = 0
		}
		hi := i + window + 1
		if hi > lb {
			hi = lb
		}
		for j := lo; j < hi; j++ {
			if matchB[j] || ra[i] != rb[j] {
				continue
			}
			matchA[i] = true
			matchB[j] = true
			matches++
			break
		}
	}
	if matches == 0 {
		return 0
	}
	transpositions := 0
	j := 0
	for i := 0; i < la; i++ {
		if !matchA[i] {
			continue
		}
		for !matchB[j] {
			j++
		}
		if ra[i] != rb[j] {
			transpositions++
		}
		j++
	}
	m := float64(matches)
	t := float64(transpositions) / 2
	return (m/float64(la) + m/float64(lb) + (m-t)/m) / 3
}

// JaroWinkler boosts Jaro similarity for strings sharing a prefix (up to 4
// runes, standard scaling 0.1).
func JaroWinkler(a, b string) float64 {
	j := Jaro(a, b)
	prefix := 0
	ra, rb := []rune(a), []rune(b)
	for prefix < len(ra) && prefix < len(rb) && ra[prefix] == rb[prefix] && prefix < 4 {
		prefix++
	}
	return j + float64(prefix)*0.1*(1-j)
}

// NumericSimilarity compares two numeric strings as 1-|x-y|/max(|x|,|y|),
// or 0 when either fails to parse. It is the natural measure for the price
// attributes of the demo dataset.
func NumericSimilarity(a, b string) float64 {
	x, errX := strconv.ParseFloat(strings.TrimSpace(a), 64)
	y, errY := strconv.ParseFloat(strings.TrimSpace(b), 64)
	if errX != nil || errY != nil {
		return 0
	}
	if x == y {
		return 1
	}
	den := math.Max(math.Abs(x), math.Abs(y))
	if den == 0 {
		return 1
	}
	s := 1 - math.Abs(x-y)/den
	if s < 0 {
		return 0
	}
	return s
}

// MongeElkan computes the asymmetric Monge-Elkan similarity: for every
// token of a, the best inner similarity against b's tokens, averaged.
// It tolerates token-level typos that set-based measures score as zero.
func MongeElkan(a, b []string, inner func(x, y string) float64) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	total := 0.0
	for _, x := range a {
		best := 0.0
		for _, y := range b {
			if s := inner(x, y); s > best {
				best = s
			}
		}
		total += best
	}
	return total / float64(len(a))
}

// TrigramJaccard compares strings by the Jaccard similarity of their
// character 3-gram sets, robust to word-order changes and small typos.
func TrigramJaccard(a, b string) float64 {
	ga := tokenize.NGrams(a, 3)
	gb := tokenize.NGrams(b, 3)
	if len(ga) == 0 || len(gb) == 0 {
		return 0
	}
	return JaccardTokens(ga, gb)
}

// ProfileBag returns the concatenated token bag of every attribute value
// of a profile.
func ProfileBag(p *profile.Profile, tok tokenize.Options) []string {
	var out []string
	for _, kv := range p.Attributes {
		out = append(out, tok.Tokens(kv.Value)...)
	}
	return out
}

// TFIDF is a corpus model for cosine similarity over profile bags; it
// stands in for the CSA document-similarity measure cited by the paper.
type TFIDF struct {
	idf  map[string]float64
	tok  tokenize.Options
	docs int
}

// NewTFIDF builds the model from every profile in the collection.
func NewTFIDF(c *profile.Collection, tok tokenize.Options) *TFIDF {
	df := map[string]int{}
	for i := range c.Profiles {
		seen := map[string]bool{}
		for _, t := range ProfileBag(&c.Profiles[i], tok) {
			if !seen[t] {
				seen[t] = true
				df[t]++
			}
		}
	}
	m := &TFIDF{idf: make(map[string]float64, len(df)), tok: tok, docs: c.Size()}
	for t, n := range df {
		m.idf[t] = math.Log(float64(m.docs+1) / float64(n+1))
	}
	return m
}

// vector builds the TF-IDF vector of a profile bag.
func (m *TFIDF) vector(tokens []string) map[string]float64 {
	tf := map[string]float64{}
	for _, t := range tokens {
		tf[t]++
	}
	for t := range tf {
		idf, ok := m.idf[t]
		if !ok {
			idf = math.Log(float64(m.docs + 1))
		}
		tf[t] *= idf
	}
	return tf
}

// Cosine computes cosine similarity of two profiles' TF-IDF vectors.
// Terms are accumulated in sorted order so scores are bit-identical
// across runs (map iteration order is randomised in Go).
func (m *TFIDF) Cosine(a, b *profile.Profile) float64 {
	va := m.vector(ProfileBag(a, m.tok))
	vb := m.vector(ProfileBag(b, m.tok))
	var dot, na, nb float64
	for _, t := range sortedTerms(va) {
		x := va[t]
		na += x * x
		if y, ok := vb[t]; ok {
			dot += x * y
		}
	}
	for _, t := range sortedTerms(vb) {
		y := vb[t]
		nb += y * y
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / (math.Sqrt(na) * math.Sqrt(nb))
}

func sortedTerms(v map[string]float64) []string {
	terms := make([]string, 0, len(v))
	for t := range v {
		terms = append(terms, t)
	}
	sort.Strings(terms)
	return terms
}
