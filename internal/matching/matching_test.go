package matching

import (
	"math"
	"reflect"
	"testing"
	"testing/quick"

	"sparker/internal/blocking"
	"sparker/internal/dataflow"
	"sparker/internal/profile"
	"sparker/internal/tokenize"
)

func almostEqual(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestJaccardTokens(t *testing.T) {
	cases := []struct {
		a, b []string
		want float64
	}{
		{[]string{"a", "b"}, []string{"b", "c"}, 1.0 / 3},
		{[]string{"a"}, []string{"a"}, 1},
		{[]string{"a"}, []string{"b"}, 0},
		{nil, nil, 0},
		{[]string{"a", "a", "b"}, []string{"a", "b"}, 1},
	}
	for _, c := range cases {
		if got := JaccardTokens(c.a, c.b); !almostEqual(got, c.want) {
			t.Errorf("Jaccard(%v,%v)=%f want %f", c.a, c.b, got, c.want)
		}
	}
}

func TestDiceOverlap(t *testing.T) {
	if got := DiceTokens([]string{"a", "b"}, []string{"b", "c"}); !almostEqual(got, 0.5) {
		t.Fatalf("dice=%f", got)
	}
	if got := OverlapTokens([]string{"a", "b"}, []string{"b"}); !almostEqual(got, 1) {
		t.Fatalf("overlap=%f", got)
	}
	if got := OverlapTokens(nil, []string{"b"}); got != 0 {
		t.Fatalf("overlap empty=%f", got)
	}
}

func TestLevenshtein(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"kitten", "sitting", 3},
		{"", "abc", 3},
		{"abc", "", 3},
		{"same", "same", 0},
		{"flaw", "lawn", 2},
	}
	for _, c := range cases {
		if got := Levenshtein(c.a, c.b); got != c.want {
			t.Errorf("lev(%q,%q)=%d want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestLevenshteinSimilarityRange(t *testing.T) {
	if got := LevenshteinSimilarity("abc", "abc"); got != 1 {
		t.Fatalf("identical: %f", got)
	}
	if got := LevenshteinSimilarity("abc", "xyz"); got != 0 {
		t.Fatalf("disjoint: %f", got)
	}
}

func TestJaroWinklerKnownValues(t *testing.T) {
	// Classic reference values (rounded).
	if got := Jaro("martha", "marhta"); math.Abs(got-0.9444) > 1e-3 {
		t.Fatalf("jaro martha/marhta=%f", got)
	}
	if got := JaroWinkler("martha", "marhta"); math.Abs(got-0.9611) > 1e-3 {
		t.Fatalf("jw martha/marhta=%f", got)
	}
	if got := Jaro("", ""); got != 1 {
		t.Fatalf("jaro empty=%f", got)
	}
	if got := Jaro("a", ""); got != 0 {
		t.Fatalf("jaro half-empty=%f", got)
	}
}

func TestNumericSimilarity(t *testing.T) {
	if got := NumericSimilarity("100", "100"); got != 1 {
		t.Fatalf("equal: %f", got)
	}
	if got := NumericSimilarity("100", "90"); !almostEqual(got, 0.9) {
		t.Fatalf("90/100: %f", got)
	}
	if got := NumericSimilarity("abc", "100"); got != 0 {
		t.Fatalf("unparsable: %f", got)
	}
	if got := NumericSimilarity("0", "0"); got != 1 {
		t.Fatalf("zeros: %f", got)
	}
}

func TestQuickSimilaritiesBounded(t *testing.T) {
	f := func(a, b []string) bool {
		for _, v := range []float64{JaccardTokens(a, b), DiceTokens(a, b), OverlapTokens(a, b)} {
			if v < 0 || v > 1 || math.IsNaN(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickJaccardSymmetric(t *testing.T) {
	f := func(a, b []string) bool {
		return almostEqual(JaccardTokens(a, b), JaccardTokens(b, a))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickLevenshteinTriangle(t *testing.T) {
	f := func(a, b, c string) bool {
		if len(a) > 20 || len(b) > 20 || len(c) > 20 {
			return true
		}
		return Levenshtein(a, c) <= Levenshtein(a, b)+Levenshtein(b, c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func mkCollection() *profile.Collection {
	mk := func(id, name string) profile.Profile {
		p := profile.Profile{OriginalID: id}
		p.Add("name", name)
		return p
	}
	a := []profile.Profile{
		mk("a1", "acme turbo widget deluxe"),
		mk("a2", "zenix compact gadget"),
	}
	b := []profile.Profile{
		mk("b1", "acme turbo widget"),
		mk("b2", "other thing entirely"),
	}
	return profile.NewCleanClean(a, b)
}

func TestTFIDFCosine(t *testing.T) {
	c := mkCollection()
	m := NewTFIDF(c, tokenize.Options{})
	same := m.Cosine(c.Get(0), c.Get(2))
	diff := m.Cosine(c.Get(0), c.Get(3))
	if same <= diff {
		t.Fatalf("cosine same=%f diff=%f", same, diff)
	}
	if same <= 0 || same > 1+1e-9 {
		t.Fatalf("cosine out of range: %f", same)
	}
}

func TestMatchPairsThreshold(t *testing.T) {
	c := mkCollection()
	pairs := []blocking.Pair{{A: 0, B: 2}, {A: 0, B: 3}, {A: 1, B: 3}}
	got := MatchPairs(c, pairs, JaccardMeasure(tokenize.Options{}), 0.5)
	if len(got) != 1 || got[0].A != 0 || got[0].B != 2 {
		t.Fatalf("matches: %v", got)
	}
	if got[0].Score < 0.5 {
		t.Fatalf("score below threshold: %v", got[0])
	}
}

func TestScorePairsKeepsAll(t *testing.T) {
	c := mkCollection()
	pairs := []blocking.Pair{{A: 0, B: 2}, {A: 0, B: 3}}
	got := ScorePairs(c, pairs, JaccardMeasure(tokenize.Options{}))
	if len(got) != 2 {
		t.Fatalf("scored: %v", got)
	}
}

func TestMatchPairsDistributedMatchesSequential(t *testing.T) {
	c := mkCollection()
	pairs := []blocking.Pair{{A: 0, B: 2}, {A: 0, B: 3}, {A: 1, B: 2}, {A: 1, B: 3}}
	measure := JaccardMeasure(tokenize.Options{})
	seq := MatchPairs(c, pairs, measure, 0.2)
	ctx := dataflow.NewContext(dataflow.WithParallelism(3))
	defer ctx.Close()
	dist, err := MatchPairsDistributed(ctx, c, pairs, measure, 0.2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, dist) {
		t.Fatalf("seq %v dist %v", seq, dist)
	}
}

func TestEnsemble(t *testing.T) {
	c := mkCollection()
	m1 := func(a, b *profile.Profile) float64 { return 1 }
	m2 := func(a, b *profile.Profile) float64 { return 0 }
	e := Ensemble([]Measure{m1, m2}, nil)
	if got := e(c.Get(0), c.Get(2)); !almostEqual(got, 0.5) {
		t.Fatalf("uniform ensemble=%f", got)
	}
	w := Ensemble([]Measure{m1, m2}, []float64{3, 1})
	if got := w(c.Get(0), c.Get(2)); !almostEqual(got, 0.75) {
		t.Fatalf("weighted ensemble=%f", got)
	}
}

func TestAttributeMeasure(t *testing.T) {
	c := mkCollection()
	m := AttributeMeasure("name", "name", LevenshteinSimilarity)
	if got := m(c.Get(0), c.Get(2)); got <= 0.5 {
		t.Fatalf("attribute measure=%f", got)
	}
}

func TestTuneThresholdSeparable(t *testing.T) {
	// Perfectly separable scores: the tuner must find a threshold with F1=1.
	c := mkCollection()
	labeled := []LabeledPair{
		{Pair: blocking.Pair{A: 0, B: 2}, IsMatch: true},  // high similarity
		{Pair: blocking.Pair{A: 0, B: 3}, IsMatch: false}, // zero similarity
		{Pair: blocking.Pair{A: 1, B: 3}, IsMatch: false},
	}
	th, f1 := TuneThreshold(c, labeled, JaccardMeasure(tokenize.Options{}))
	if f1 != 1 {
		t.Fatalf("f1=%f th=%f", f1, th)
	}
	matches := MatchPairs(c, []blocking.Pair{{A: 0, B: 2}, {A: 0, B: 3}}, JaccardMeasure(tokenize.Options{}), th)
	if len(matches) != 1 {
		t.Fatalf("tuned threshold misclassifies: %v", matches)
	}
}

func TestTuneThresholdNoPositives(t *testing.T) {
	c := mkCollection()
	th, f1 := TuneThreshold(c, []LabeledPair{{Pair: blocking.Pair{A: 0, B: 3}}}, JaccardMeasure(tokenize.Options{}))
	if f1 != 0 || th != 0.5 {
		t.Fatalf("degenerate tuning: th=%f f1=%f", th, f1)
	}
}

func TestMongeElkanToleratesTypos(t *testing.T) {
	a := []string{"acme", "turbo", "widget"}
	b := []string{"acem", "turbo", "widgte"} // two typo'd tokens
	jac := JaccardTokens(a, b)
	me := MongeElkan(a, b, LevenshteinSimilarity)
	if me <= jac {
		t.Fatalf("MongeElkan %f must beat Jaccard %f on typos", me, jac)
	}
	if me < 0.7 {
		t.Fatalf("MongeElkan %f too low for near-identical bags", me)
	}
	if MongeElkan(nil, b, LevenshteinSimilarity) != 0 {
		t.Fatal("empty side must score 0")
	}
}

func TestMongeElkanAsymmetric(t *testing.T) {
	short := []string{"acme"}
	long := []string{"acme", "x", "y", "z"}
	fwd := MongeElkan(short, long, LevenshteinSimilarity)
	back := MongeElkan(long, short, LevenshteinSimilarity)
	if fwd != 1 {
		t.Fatalf("subset side must score 1, got %f", fwd)
	}
	if back >= fwd {
		t.Fatalf("asymmetry lost: %f vs %f", back, fwd)
	}
}

func TestTrigramJaccard(t *testing.T) {
	if got := TrigramJaccard("acme widget", "acme widget"); got != 1 {
		t.Fatalf("identical: %f", got)
	}
	reordered := TrigramJaccard("widget acme", "acme widget")
	if reordered < 0.5 {
		t.Fatalf("reordered words score %f; 3-grams should mostly survive", reordered)
	}
	if got := TrigramJaccard("ab", "ab"); got != 0 {
		t.Fatalf("too-short strings must score 0, got %f", got)
	}
}

func TestProfileBag(t *testing.T) {
	p := profile.Profile{}
	p.Add("x", "alpha beta")
	p.Add("y", "beta gamma")
	bag := ProfileBag(&p, tokenize.Options{})
	want := []string{"alpha", "beta", "beta", "gamma"}
	if !reflect.DeepEqual(bag, want) {
		t.Fatalf("bag=%v", bag)
	}
}
