package matching

import (
	"fmt"
	"sort"

	"sparker/internal/blocking"
	"sparker/internal/dataflow"
	"sparker/internal/profile"
	"sparker/internal/tokenize"
)

// Match is a candidate pair labelled as a match, with its similarity
// score. The set of matches forms the similarity graph the entity
// clusterer consumes.
type Match struct {
	A, B  profile.ID
	Score float64
}

// Measure scores the similarity of two profiles in [0, 1].
type Measure func(a, b *profile.Profile) float64

// JaccardMeasure scores profiles by the Jaccard similarity of their
// whole-profile token bags, the unsupervised default.
func JaccardMeasure(tok tokenize.Options) Measure {
	return func(a, b *profile.Profile) float64 {
		return JaccardTokens(ProfileBag(a, tok), ProfileBag(b, tok))
	}
}

// DiceMeasure scores profiles with the Dice coefficient of their bags.
func DiceMeasure(tok tokenize.Options) Measure {
	return func(a, b *profile.Profile) float64 {
		return DiceTokens(ProfileBag(a, tok), ProfileBag(b, tok))
	}
}

// CosineMeasure scores profiles with TF-IDF cosine similarity (the CSA
// stand-in).
func CosineMeasure(m *TFIDF) Measure {
	return func(a, b *profile.Profile) float64 { return m.Cosine(a, b) }
}

// AttributeMeasure compares one attribute of each profile with a string
// similarity; useful for schema-aware supervised configurations.
func AttributeMeasure(attrA, attrB string, sim func(a, b string) float64) Measure {
	return func(a, b *profile.Profile) float64 {
		return sim(a.Value(attrA), b.Value(attrB))
	}
}

// Ensemble averages several measures with weights. Weights are normalised;
// a nil weight slice averages uniformly.
func Ensemble(measures []Measure, weights []float64) Measure {
	if len(weights) == 0 {
		weights = make([]float64, len(measures))
		for i := range weights {
			weights[i] = 1
		}
	}
	var total float64
	for _, w := range weights {
		total += w
	}
	return func(a, b *profile.Profile) float64 {
		var s float64
		for i, m := range measures {
			s += weights[i] * m(a, b)
		}
		if total == 0 {
			return 0
		}
		return s / total
	}
}

// ScorePairs scores every candidate pair without thresholding; used by the
// debug workflow and the supervised tuner.
func ScorePairs(c *profile.Collection, pairs []blocking.Pair, measure Measure) []Match {
	out := make([]Match, 0, len(pairs))
	for _, p := range pairs {
		out = append(out, Match{A: p.A, B: p.B, Score: measure(c.Get(p.A), c.Get(p.B))})
	}
	return out
}

// MatchPairs scores candidate pairs and keeps those at or above the
// threshold, sorted by (A, B).
func MatchPairs(c *profile.Collection, pairs []blocking.Pair, measure Measure, threshold float64) []Match {
	var out []Match
	for _, p := range pairs {
		score := measure(c.Get(p.A), c.Get(p.B))
		if score >= threshold {
			out = append(out, Match{A: p.A, B: p.B, Score: score})
		}
	}
	sortMatches(out)
	return out
}

// MatchPairsDistributed is MatchPairs on the dataflow engine: the profile
// store is broadcast and candidate pairs are scored partition-parallel,
// mirroring how SparkER invokes a matcher over the blocker's output.
func MatchPairsDistributed(ctx *dataflow.Context, c *profile.Collection, pairs []blocking.Pair,
	measure Measure, threshold float64, numPartitions int) ([]Match, error) {
	bprofiles := dataflow.NewBroadcast(ctx, c)
	rdd := dataflow.Parallelize(ctx, pairs, numPartitions)
	scored := dataflow.FlatMap(rdd, func(p blocking.Pair) []Match {
		col := bprofiles.Value()
		score := measure(col.Get(p.A), col.Get(p.B))
		if score < threshold {
			return nil
		}
		return []Match{{A: p.A, B: p.B, Score: score}}
	})
	out, err := scored.Collect()
	if err != nil {
		return nil, fmt.Errorf("matching: distributed matching: %w", err)
	}
	sortMatches(out)
	return out, nil
}

func sortMatches(ms []Match) {
	sort.Slice(ms, func(i, j int) bool {
		if ms[i].A != ms[j].A {
			return ms[i].A < ms[j].A
		}
		return ms[i].B < ms[j].B
	})
}

// LabeledPair is a training example for the supervised threshold tuner.
type LabeledPair struct {
	Pair    blocking.Pair
	IsMatch bool
}

// TuneThreshold sweeps every distinct score of the labelled candidate
// pairs and returns the threshold maximising F1 — the supervised mode of
// the paper, where the user injects ground-truth knowledge instead of
// accepting the default threshold.
func TuneThreshold(c *profile.Collection, labeled []LabeledPair, measure Measure) (threshold, f1 float64) {
	type scored struct {
		score   float64
		isMatch bool
	}
	items := make([]scored, 0, len(labeled))
	positives := 0
	for _, lp := range labeled {
		s := measure(c.Get(lp.Pair.A), c.Get(lp.Pair.B))
		items = append(items, scored{score: s, isMatch: lp.IsMatch})
		if lp.IsMatch {
			positives++
		}
	}
	if positives == 0 || len(items) == 0 {
		return 0.5, 0
	}
	sort.Slice(items, func(i, j int) bool { return items[i].score > items[j].score })

	// Descending sweep: at threshold = items[i].score everything up to i is
	// predicted positive.
	bestF1, bestTh := 0.0, items[0].score
	tp := 0
	for i, it := range items {
		if it.isMatch {
			tp++
		}
		if i+1 < len(items) && items[i+1].score == it.score {
			continue // evaluate only at distinct score boundaries
		}
		predicted := i + 1
		precision := float64(tp) / float64(predicted)
		recall := float64(tp) / float64(positives)
		if precision+recall == 0 {
			continue
		}
		f := 2 * precision * recall / (precision + recall)
		if f > bestF1 {
			bestF1, bestTh = f, it.score
		}
	}
	return bestTh, bestF1
}
