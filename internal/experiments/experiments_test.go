package experiments

import (
	"math"
	"testing"

	"sparker/internal/datagen"
	"sparker/internal/metablocking"
)

// smallCfg keeps experiment tests fast.
func smallCfg() datagen.Config {
	cfg := datagen.AbtBuy()
	cfg.CoreEntities = 150
	cfg.AOnly = 12
	cfg.BDup = 10
	return cfg
}

func loadSmall(t *testing.T) *Dataset {
	t.Helper()
	d, err := LoadSynthAbtBuy(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestFigure1ToyMatchesPaper(t *testing.T) {
	edges := Figure1Toy()
	if len(edges) != 6 {
		t.Fatalf("edges: %d", len(edges))
	}
	want := map[string]struct {
		w        float64
		retained bool
	}{
		"p1-p2": {2, true}, "p1-p3": {3, true}, "p1-p4": {1, false},
		"p2-p3": {2, true}, "p2-p4": {2, true}, "p3-p4": {1, false},
	}
	for _, e := range edges {
		key := e.A + "-" + e.B
		w, ok := want[key]
		if !ok {
			t.Fatalf("unexpected edge %s", key)
		}
		if math.Abs(e.Weight-w.w) > 1e-9 || e.Retained != w.retained {
			t.Fatalf("edge %s: got (%f,%v) want (%f,%v)", key, e.Weight, e.Retained, w.w, w.retained)
		}
	}
}

func TestFigure2ToyMatchesPaper(t *testing.T) {
	edges := Figure2Toy()
	retained := map[string]float64{}
	for _, e := range edges {
		if e.Retained {
			retained[e.A+"-"+e.B] = e.Weight
		}
	}
	if len(retained) != 2 {
		t.Fatalf("retained: %v", retained)
	}
	if math.Abs(retained["p1-p3"]-1.6) > 1e-9 || math.Abs(retained["p2-p4"]-1.2) > 1e-9 {
		t.Fatalf("weights: %v", retained)
	}
}

func TestThresholdSweepShape(t *testing.T) {
	d := loadSmall(t)
	rows := ThresholdSweep(d, []float64{1.0, 0.3})
	if rows[0].Clusters != 0 || rows[0].BlobSize == 0 {
		t.Fatalf("threshold 1.0 must be all blob: %+v", rows[0])
	}
	if rows[1].Clusters != 2 {
		t.Fatalf("threshold 0.3 must give 2 clusters: %+v", rows[1])
	}
	if rows[1].Comparisons >= rows[0].Comparisons {
		t.Fatalf("candidates must drop from 6(a) to 6(b): %d vs %d",
			rows[1].Comparisons, rows[0].Comparisons)
	}
	if rows[1].Precision < rows[0].Precision {
		t.Fatalf("precision must not drop: %f vs %f", rows[1].Precision, rows[0].Precision)
	}
	if rows[1].Recall < rows[0].Recall-1e-9 {
		t.Fatalf("recall must hold: %f vs %f", rows[1].Recall, rows[0].Recall)
	}
}

func TestManualEditLosesPairs(t *testing.T) {
	d := loadSmall(t)
	res, err := ManualEdit(d)
	if err != nil {
		t.Fatal(err)
	}
	if res.Edited.LostPairs <= res.Auto.LostPairs {
		t.Fatalf("split must lose pairs: %d vs %d", res.Edited.LostPairs, res.Auto.LostPairs)
	}
	if len(res.NewlyLost) == 0 {
		t.Fatal("no explanations")
	}
	for _, lp := range res.NewlyLost {
		if len(lp.SharedKeysBefore) == 0 {
			t.Fatalf("pair %s-%s has no shared-key explanation", lp.AOriginal, lp.BOriginal)
		}
	}
}

func TestEntropyMetaBlockingShape(t *testing.T) {
	d := loadSmall(t)
	rows := EntropyMetaBlocking(d)
	if len(rows) != 3 {
		t.Fatalf("rows: %d", len(rows))
	}
	blockingOnly, meta, entropy := rows[0], rows[1], rows[2]
	if meta.Candidates*5 > blockingOnly.Candidates {
		t.Fatalf("meta-blocking must cut candidates by far more: %d vs %d",
			meta.Candidates, blockingOnly.Candidates)
	}
	if entropy.Candidates > meta.Candidates {
		t.Fatalf("entropy must not increase candidates: %d vs %d",
			entropy.Candidates, meta.Candidates)
	}
	if entropy.Recall < meta.Recall-0.02 {
		t.Fatalf("entropy hurt recall: %f vs %f", entropy.Recall, meta.Recall)
	}
}

func TestScalabilityRows(t *testing.T) {
	rows, err := Scalability(smallCfg(), []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows: %d", len(rows))
	}
	if rows[0].Speedup != 1.0 {
		t.Fatalf("base speedup: %f", rows[0].Speedup)
	}
	if rows[1].Tasks <= rows[0].Tasks {
		t.Fatalf("more executors must launch more tasks: %d vs %d", rows[1].Tasks, rows[0].Tasks)
	}
}

func TestBroadcastVsNaiveAgreeAndDiffer(t *testing.T) {
	d := loadSmall(t)
	rows, err := BroadcastVsNaive(d, 2)
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].Edges != rows[1].Edges {
		t.Fatalf("plans disagree: %d vs %d", rows[0].Edges, rows[1].Edges)
	}
	if rows[0].ShuffleRecords >= rows[1].ShuffleRecords {
		t.Fatalf("broadcast must shuffle less: %d vs %d",
			rows[0].ShuffleRecords, rows[1].ShuffleRecords)
	}
}

func TestEndToEndReports(t *testing.T) {
	d := loadSmall(t)
	reports, err := EndToEnd(d, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 3 {
		t.Fatalf("reports: %v", reports)
	}
	if reports[1].Metrics.Precision < reports[0].Metrics.Precision {
		t.Fatal("matching must raise precision over blocking")
	}
}

func TestEndToEndDistributed(t *testing.T) {
	d := loadSmall(t)
	seq, err := EndToEnd(d, false)
	if err != nil {
		t.Fatal(err)
	}
	dist, err := EndToEnd(d, true)
	if err != nil {
		t.Fatal(err)
	}
	for i := range seq {
		if seq[i].Metrics.Candidates != dist[i].Metrics.Candidates {
			t.Fatalf("step %s differs: %d vs %d", seq[i].Step,
				seq[i].Metrics.Candidates, dist[i].Metrics.Candidates)
		}
	}
}

func TestSamplingExperimentGrows(t *testing.T) {
	d := loadSmall(t)
	rows := SamplingExperiment(d, []int{5, 20}, 8)
	if rows[0].SampleSize >= rows[1].SampleSize {
		t.Fatalf("K=5 sample %d >= K=20 sample %d", rows[0].SampleSize, rows[1].SampleSize)
	}
	if rows[1].MatchingPairs == 0 {
		t.Fatal("large sample holds no matches")
	}
}

func TestSchemePruningAblationComplete(t *testing.T) {
	d := loadSmall(t)
	rows := SchemePruningAblation(d,
		[]metablocking.Scheme{metablocking.CBS, metablocking.JS},
		[]metablocking.Pruning{metablocking.WEP, metablocking.BlastPruning})
	if len(rows) != 4 {
		t.Fatalf("rows: %d", len(rows))
	}
	for _, r := range rows {
		if r.Candidates == 0 || r.Recall == 0 {
			t.Fatalf("degenerate ablation row: %+v", r)
		}
	}
}

func TestProgressiveRecallShape(t *testing.T) {
	d := loadSmall(t)
	rows := ProgressiveRecall(d, []int{5, 100})
	byStrategy := map[string]map[int]float64{}
	for _, r := range rows {
		if byStrategy[r.Strategy] == nil {
			byStrategy[r.Strategy] = map[int]float64{}
		}
		byStrategy[r.Strategy][r.BudgetPercent] = r.Recall
	}
	// All strategies converge at 100%.
	for s, m := range byStrategy {
		if m[100] < 0.999 {
			t.Fatalf("%s: full budget recall %f", s, m[100])
		}
	}
	// Progressive schedulers crush the random baseline at a 5% budget.
	if byStrategy["profile-scheduling"][5] < 5*byStrategy["random"][5] {
		t.Fatalf("PPS@5%% = %f vs random %f: not progressive",
			byStrategy["profile-scheduling"][5], byStrategy["random"][5])
	}
	if byStrategy["global-top"][5] < 5*byStrategy["random"][5] {
		t.Fatalf("global-top@5%% = %f vs random %f",
			byStrategy["global-top"][5], byStrategy["random"][5])
	}
}

func TestClustererAblation(t *testing.T) {
	d := loadSmall(t)
	rows, err := ClustererAblation(d)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows: %v", rows)
	}
}
