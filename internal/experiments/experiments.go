// Package experiments regenerates every table and figure of the paper's
// evaluation (the Figure 6 demo walkthrough, the Figure 1/2 toys, and the
// scalability claims delegated to the technical report). Each experiment
// returns structured rows; cmd/sparker-bench renders them as the tables
// recorded in EXPERIMENTS.md, and bench_test.go wraps them as testing.B
// benchmarks. See DESIGN.md for the experiment index (E1–E9).
package experiments

import (
	"fmt"
	"time"

	"sparker/internal/blocking"
	"sparker/internal/clustering"
	"sparker/internal/core"
	"sparker/internal/dataflow"
	"sparker/internal/datagen"
	"sparker/internal/evaluation"
	"sparker/internal/looseschema"
	"sparker/internal/matching"
	"sparker/internal/metablocking"
	"sparker/internal/profile"
	"sparker/internal/sampling"
	"sparker/internal/tokenize"
)

// Dataset bundles a generated benchmark with its resolved ground truth.
type Dataset struct {
	Name       string
	Collection *profile.Collection
	GT         *evaluation.GroundTruth
}

// LoadSynthAbtBuy generates the default benchmark and resolves its ground
// truth.
func LoadSynthAbtBuy(cfg datagen.Config) (*Dataset, error) {
	ds := datagen.Generate(cfg)
	gt, err := evaluation.FromOriginalIDs(ds.Collection, ds.GroundTruth)
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	return &Dataset{Name: "SynthAbtBuy", Collection: ds.Collection, GT: gt}, nil
}

// LoadBibliographic generates the bibliographic benchmark (the "different
// datasets" of the demo) and resolves its ground truth.
func LoadBibliographic(cfg datagen.BibConfig) (*Dataset, error) {
	ds := datagen.GenerateBibliographic(cfg)
	gt, err := evaluation.FromOriginalIDs(ds.Collection, ds.GroundTruth)
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	return &Dataset{Name: "SynthDblpScholar", Collection: ds.Collection, GT: gt}, nil
}

// ---------------------------------------------------------------------------
// E1 / E2 — Figure 1 and Figure 2 toys.

// ToyEdge is one weighted edge of the toy meta-blocking graphs.
type ToyEdge struct {
	A, B     string // original profile IDs (p1..p4)
	Weight   float64
	Retained bool
}

// figureProfiles builds the four bibliographic profiles of Figure 1(a).
func figureProfiles() *profile.Collection {
	mk := func(id string, kvs ...[2]string) profile.Profile {
		p := profile.Profile{OriginalID: id}
		for _, kv := range kvs {
			p.Add(kv[0], kv[1])
		}
		return p
	}
	return profile.NewDirty([]profile.Profile{
		mk("p1", [2]string{"name", "Blast"}, [2]string{"authors", "G. Simonini"},
			[2]string{"abstract", "how to improve meta-blocking"}),
		mk("p2", [2]string{"name", "SparkER"}, [2]string{"authors", "L. Gagliardelli"},
			[2]string{"abstract", "Simonini et al proposed blocking"}),
		mk("p3", [2]string{"title", "Blast: loosely schema blocking"},
			[2]string{"author", "Giovanni Simonini"}, [2]string{"year", "2016"}),
		mk("p4", [2]string{"title", "SparkER: parallel Blast"},
			[2]string{"author", "Luca Gagliardelli"}, [2]string{"year", "2017"}),
	})
}

// figure2Clustering is the loose schema of Figure 2(a) with the entropies
// printed in the figure.
type figure2Clustering struct{}

func (figure2Clustering) ClusterOf(_ int, attribute string) int {
	switch attribute {
	case "name", "title", "abstract":
		return 1
	case "authors", "author":
		return 2
	}
	return 0
}

func (figure2Clustering) EntropyOf(cluster int) float64 {
	switch cluster {
	case 1:
		return 0.4
	case 2:
		return 0.8
	}
	return 0
}

// runToy executes the toy meta-blocking and labels every edge of the full
// graph with its retention decision.
func runToy(clustered bool) []ToyEdge {
	c := figureProfiles()
	opts := blocking.Options{}
	mbOpts := metablocking.Options{Scheme: metablocking.CBS, Pruning: metablocking.WEP}
	if clustered {
		opts.Clustering = figure2Clustering{}
		mbOpts.Entropy = figure2Clustering{}
	}
	blocks := blocking.TokenBlocking(c, opts)
	idx := blocking.BuildIndex(blocks)
	retained := map[blocking.Pair]bool{}
	for _, e := range metablocking.Run(idx, mbOpts) {
		retained[blocking.Pair{A: e.A, B: e.B}] = true
	}
	// Weights of the unpruned graph via CEP with an unbounded budget.
	all := metablocking.Run(idx, metablocking.Options{
		Scheme: mbOpts.Scheme, Pruning: metablocking.CEP, TopK: 1 << 30, Entropy: mbOpts.Entropy,
	})
	var out []ToyEdge
	for _, e := range all {
		out = append(out, ToyEdge{
			A:        c.Get(e.A).OriginalID,
			B:        c.Get(e.B).OriginalID,
			Weight:   e.Weight,
			Retained: retained[blocking.Pair{A: e.A, B: e.B}],
		})
	}
	return out
}

// Figure1Toy regenerates Figure 1(c): CBS weights and average pruning.
func Figure1Toy() []ToyEdge { return runToy(false) }

// Figure2Toy regenerates Figure 2(c): entropy-weighted meta-blocking.
func Figure2Toy() []ToyEdge { return runToy(true) }

// ---------------------------------------------------------------------------
// E3 — Figure 6(a,b): the LSH threshold sweep.

// SweepRow is one line of the Figure 6 blocking panel: the partition
// layout and the post-purging block statistics the demo GUI displays.
type SweepRow struct {
	Threshold   float64
	Clusters    int // excluding the blob when it is empty
	BlobSize    int // attributes left in the blob
	Blocks      int
	Comparisons int64 // ||B||: candidate pairs in the blocks
	Recall      float64
	Precision   float64
	LostPairs   int
}

// sweepAt evaluates one partitioning against the dataset.
func sweepAt(d *Dataset, part *looseschema.Partitioning, threshold float64) SweepRow {
	opts := blocking.Options{Clustering: part}
	purged := blocking.PurgeBySize(blocking.TokenBlocking(d.Collection, opts), 0.5)
	pairs := purged.DistinctPairs()
	m := evaluation.EvaluatePairs(pairs, d.GT, d.Collection.MaxComparisons())
	clusters := 0
	for k, attrs := range part.Clusters {
		if k != looseschema.BlobCluster && len(attrs) > 0 {
			clusters++
		}
	}
	return SweepRow{
		Threshold:   threshold,
		Clusters:    clusters,
		BlobSize:    len(part.Clusters[looseschema.BlobCluster]),
		Blocks:      purged.NumBlocks(),
		Comparisons: purged.TotalComparisons(),
		Recall:      m.Recall,
		Precision:   m.Precision,
		LostPairs:   m.FalseNegatives,
	}
}

// ThresholdSweep regenerates the Figure 6(a,b) walkthrough: the attribute
// partitioning and blocking quality at each LSH threshold.
func ThresholdSweep(d *Dataset, thresholds []float64) []SweepRow {
	out := make([]SweepRow, 0, len(thresholds))
	for _, th := range thresholds {
		part := looseschema.Partition(d.Collection, looseschema.Options{Threshold: th})
		out = append(out, sweepAt(d, part, th))
	}
	return out
}

// ---------------------------------------------------------------------------
// E4 — Figure 6(c,d): manual partition edit and lost-pair drill-down.

// LostPairExplanation is one row of the Figure 6(d) debug panel.
type LostPairExplanation struct {
	AOriginal, BOriginal string
	// SharedKeysBefore are the blocking keys the pair shared under the
	// automatic partitioning (what the manual edit severed).
	SharedKeysBefore []string
}

// ManualEditResult compares the automatic threshold-0.3 partitioning with
// the user's split of names from descriptions.
type ManualEditResult struct {
	Auto, Edited SweepRow
	NewlyLost    []LostPairExplanation
}

// ManualEdit regenerates Figure 6(c,d).
func ManualEdit(d *Dataset) (*ManualEditResult, error) {
	auto := looseschema.Partition(d.Collection, looseschema.Options{Threshold: 0.3})
	autoRow := sweepAt(d, auto, 0.3)

	edited := auto.Clone()
	nc := edited.NewCluster()
	for _, attr := range []string{"0:description", "1:short_descr"} {
		if err := edited.MoveAttribute(attr, nc); err != nil {
			return nil, fmt.Errorf("experiments: manual edit: %w", err)
		}
	}
	aps := looseschema.ExtractAttributeProfiles(d.Collection, tokenize.Options{})
	looseschema.ComputeEntropies(edited, aps)
	editedRow := sweepAt(d, edited, 0.3)

	// Lost pairs under the edit that the automatic partitioning kept,
	// explained by the keys they shared before the split.
	autoPairs := blocking.PurgeBySize(blocking.TokenBlocking(d.Collection, blocking.Options{Clustering: auto}), 0.5).DistinctPairs()
	editedPairs := blocking.PurgeBySize(blocking.TokenBlocking(d.Collection, blocking.Options{Clustering: edited}), 0.5).DistinctPairs()
	lostAuto := map[blocking.Pair]bool{}
	for _, p := range evaluation.LostPairs(autoPairs, d.GT) {
		lostAuto[p] = true
	}
	res := &ManualEditResult{Auto: autoRow, Edited: editedRow}
	for _, p := range evaluation.LostPairs(editedPairs, d.GT) {
		if lostAuto[p] {
			continue
		}
		res.NewlyLost = append(res.NewlyLost, LostPairExplanation{
			AOriginal:        d.Collection.Get(p.A).OriginalID,
			BOriginal:        d.Collection.Get(p.B).OriginalID,
			SharedKeysBefore: evaluation.SharedKeys(d.Collection, blocking.Options{Clustering: auto}, p.A, p.B),
		})
	}
	return res, nil
}

// ---------------------------------------------------------------------------
// E5 — Figure 6(e): meta-blocking with entropy.

// MetaRow is one line of the meta-blocking comparison table.
type MetaRow struct {
	Name       string
	Candidates int
	Recall     float64
	Precision  float64
}

// EntropyMetaBlocking regenerates Figure 6(e): candidate counts and
// quality for blocking only, meta-blocking, and entropy meta-blocking on
// the threshold-0.3 partitioning.
func EntropyMetaBlocking(d *Dataset) []MetaRow {
	part := looseschema.Partition(d.Collection, looseschema.Options{Threshold: 0.3})
	opts := blocking.Options{Clustering: part}
	purged := blocking.PurgeBySize(blocking.TokenBlocking(d.Collection, opts), 0.5)
	filtered := blocking.Filter(purged, blocking.DefaultFilterRatio)
	idx := blocking.BuildIndex(filtered)

	rows := []MetaRow{evalPairs("blocking only (Fig 6b)", purged.DistinctPairs(), d)}
	for _, useEntropy := range []bool{false, true} {
		mo := metablocking.Options{Scheme: metablocking.CBS, Pruning: metablocking.BlastPruning}
		name := "meta-blocking"
		if useEntropy {
			mo.Entropy = part
			name = "meta-blocking + entropy (Fig 6e)"
		}
		edges := metablocking.Run(idx, mo)
		pairs := make([]blocking.Pair, len(edges))
		for i, e := range edges {
			pairs[i] = blocking.Pair{A: e.A, B: e.B}
		}
		rows = append(rows, evalPairs(name, pairs, d))
	}
	return rows
}

func evalPairs(name string, pairs []blocking.Pair, d *Dataset) MetaRow {
	m := evaluation.EvaluatePairs(pairs, d.GT, d.Collection.MaxComparisons())
	return MetaRow{Name: name, Candidates: m.Candidates, Recall: m.Recall, Precision: m.Precision}
}

// ---------------------------------------------------------------------------
// E6 — scalability: executor sweep over the distributed blocker.

// ScaleRow is one line of the scalability table.
type ScaleRow struct {
	Executors      int
	Profiles       int
	BlockingMS     int64
	MetaBlockMS    int64
	TotalMS        int64
	Speedup        float64 // vs the 1-executor row of the same dataset
	ShuffleRecords int64
	Tasks          int64
}

// Scalability sweeps executor counts over distributed token blocking +
// broadcast meta-blocking, reporting wall time and engine counters.
func Scalability(cfg datagen.Config, executors []int) ([]ScaleRow, error) {
	d, err := LoadSynthAbtBuy(cfg)
	if err != nil {
		return nil, err
	}
	var rows []ScaleRow
	var base float64
	for _, ex := range executors {
		ctx := dataflow.NewContext(dataflow.WithParallelism(ex))
		parts := 2 * ex

		start := time.Now()
		raw, err := blocking.DistributedTokenBlocking(ctx, d.Collection, blocking.Options{}, parts)
		if err != nil {
			ctx.Close()
			return nil, err
		}
		blockingMS := time.Since(start).Milliseconds()

		filtered := blocking.Filter(blocking.PurgeBySize(raw, 0.5), blocking.DefaultFilterRatio)
		idx := blocking.BuildIndex(filtered)

		start = time.Now()
		_, err = metablocking.RunDistributed(ctx, idx, metablocking.Options{
			Scheme: metablocking.CBS, Pruning: metablocking.BlastPruning,
		}, parts)
		if err != nil {
			ctx.Close()
			return nil, err
		}
		metaMS := time.Since(start).Milliseconds()

		m := ctx.Metrics()
		ctx.Close()
		total := blockingMS + metaMS
		row := ScaleRow{
			Executors:      ex,
			Profiles:       d.Collection.Size(),
			BlockingMS:     blockingMS,
			MetaBlockMS:    metaMS,
			TotalMS:        total,
			ShuffleRecords: m.ShuffleRecords,
			Tasks:          m.TasksLaunched,
		}
		if base == 0 {
			base = float64(total)
		}
		if total > 0 {
			row.Speedup = base / float64(total)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// ---------------------------------------------------------------------------
// E7 — broadcast-join meta-blocking vs naive edge materialisation.

// BaselineRow compares the two distributed meta-blocking plans.
type BaselineRow struct {
	Algorithm      string
	Millis         int64
	ShuffleRecords int64
	Edges          int
}

// BroadcastVsNaive runs both plans on the same filtered blocks and
// reports time and shuffled records; the outputs are verified identical.
func BroadcastVsNaive(d *Dataset, executors int) ([]BaselineRow, error) {
	part := looseschema.Partition(d.Collection, looseschema.Options{Threshold: 0.3})
	opts := blocking.Options{Clustering: part}
	filtered := blocking.Filter(blocking.PurgeBySize(blocking.TokenBlocking(d.Collection, opts), 0.5), blocking.DefaultFilterRatio)
	idx := blocking.BuildIndex(filtered)
	mo := metablocking.Options{Scheme: metablocking.CBS, Pruning: metablocking.WEP}

	run := func(name string, f func(ctx *dataflow.Context) ([]metablocking.Edge, error)) (BaselineRow, []metablocking.Edge, error) {
		ctx := dataflow.NewContext(dataflow.WithParallelism(executors))
		defer ctx.Close()
		start := time.Now()
		edges, err := f(ctx)
		if err != nil {
			return BaselineRow{}, nil, err
		}
		return BaselineRow{
			Algorithm:      name,
			Millis:         time.Since(start).Milliseconds(),
			ShuffleRecords: ctx.Metrics().ShuffleRecords,
			Edges:          len(edges),
		}, edges, nil
	}

	bRow, bEdges, err := run("broadcast-join (SparkER)", func(ctx *dataflow.Context) ([]metablocking.Edge, error) {
		return metablocking.RunDistributed(ctx, idx, mo, 2*executors)
	})
	if err != nil {
		return nil, err
	}
	nRow, nEdges, err := run("naive edge materialisation", func(ctx *dataflow.Context) ([]metablocking.Edge, error) {
		return metablocking.RunNaiveDistributed(ctx, idx, mo, 2*executors)
	})
	if err != nil {
		return nil, err
	}
	if len(bEdges) != len(nEdges) {
		return nil, fmt.Errorf("experiments: plans disagree: %d vs %d edges", len(bEdges), len(nEdges))
	}
	return []BaselineRow{bRow, nRow}, nil
}

// ---------------------------------------------------------------------------
// E8 — end-to-end pipeline (Figures 3 and 5).

// EndToEnd runs the full default pipeline and evaluates every stage.
func EndToEnd(d *Dataset, distributed bool) ([]core.StepReport, error) {
	var ctx *dataflow.Context
	if distributed {
		ctx = dataflow.NewContext()
		defer ctx.Close()
	}
	res, err := core.NewPipeline(core.DefaultConfig(), ctx).Resolve(d.Collection)
	if err != nil {
		return nil, err
	}
	return res.Evaluate(d.Collection, d.GT), nil
}

// ---------------------------------------------------------------------------
// E9 — debug-sample representativeness (Section 3).

// SampleRow summarises one debug-sample configuration.
type SampleRow struct {
	K, PerSeed    int
	SampleSize    int
	MatchingPairs int // ground-truth pairs fully inside the sample
}

// SamplingExperiment sweeps the K / k parameters of the Magellan-style
// debug sampler and counts how many true matches each sample retains.
func SamplingExperiment(d *Dataset, ks []int, perSeed int) []SampleRow {
	var rows []SampleRow
	for _, k := range ks {
		s := sampling.Build(d.Collection, sampling.Options{K: k, PerSeed: perSeed, Seed: 99})
		matches := 0
		for _, p := range d.GT.Pairs() {
			if _, okA := s.SampleID[p.A]; !okA {
				continue
			}
			if _, okB := s.SampleID[p.B]; !okB {
				continue
			}
			matches++
		}
		rows = append(rows, SampleRow{
			K: k, PerSeed: perSeed,
			SampleSize:    s.Collection.Size(),
			MatchingPairs: matches,
		})
	}
	return rows
}

// ---------------------------------------------------------------------------
// E10 — progressive meta-blocking (reference [6] of the paper).

// ProgressiveRow is recall at one comparison budget for one scheduler.
type ProgressiveRow struct {
	Strategy string
	// BudgetPercent of the graph's distinct comparisons.
	BudgetPercent int
	Comparisons   int
	Recall        float64
}

// ProgressiveRecall regenerates the recall-vs-budget curves of
// progressive ER: comparisons are emitted best-first (global-top or
// profile scheduling) or at random, and recall is measured at each
// budget. Progressive schedulers must reach high recall at a small
// fraction of the comparisons; the random baseline grows linearly.
func ProgressiveRecall(d *Dataset, budgets []int) []ProgressiveRow {
	part := looseschema.Partition(d.Collection, looseschema.Options{Threshold: 0.3})
	opts := blocking.Options{Clustering: part}
	filtered := blocking.Filter(blocking.PurgeBySize(blocking.TokenBlocking(d.Collection, opts), 0.5), blocking.DefaultFilterRatio)
	idx := blocking.BuildIndex(filtered)
	mo := metablocking.Options{Scheme: metablocking.ARCS, Entropy: part}

	var rows []ProgressiveRow
	for _, strategy := range []metablocking.ScheduleStrategy{
		metablocking.GlobalTop, metablocking.ProfileScheduling, metablocking.RandomOrder,
	} {
		full := metablocking.Schedule(idx, mo, strategy, 0)
		for _, pct := range budgets {
			budget := len(full) * pct / 100
			found := 0
			for _, e := range full[:budget] {
				if d.GT.Contains(blocking.Pair{A: e.A, B: e.B}) {
					found++
				}
			}
			recall := 0.0
			if d.GT.Size() > 0 {
				recall = float64(found) / float64(d.GT.Size())
			}
			rows = append(rows, ProgressiveRow{
				Strategy:      strategy.String(),
				BudgetPercent: pct,
				Comparisons:   budget,
				Recall:        recall,
			})
		}
	}
	return rows
}

// ---------------------------------------------------------------------------
// Ablations — weight schemes and pruning rules (DESIGN.md section 5).

// AblationRow is one (scheme, pruning) quality/cost point.
type AblationRow struct {
	Scheme     string
	Pruning    string
	Candidates int
	Recall     float64
	Precision  float64
	F1         float64
}

// SchemePruningAblation sweeps weight schemes × pruning rules on the
// loose-schema blocks.
func SchemePruningAblation(d *Dataset, schemes []metablocking.Scheme, prunings []metablocking.Pruning) []AblationRow {
	part := looseschema.Partition(d.Collection, looseschema.Options{Threshold: 0.3})
	opts := blocking.Options{Clustering: part}
	filtered := blocking.Filter(blocking.PurgeBySize(blocking.TokenBlocking(d.Collection, opts), 0.5), blocking.DefaultFilterRatio)
	idx := blocking.BuildIndex(filtered)

	var rows []AblationRow
	for _, s := range schemes {
		for _, pr := range prunings {
			edges := metablocking.Run(idx, metablocking.Options{Scheme: s, Pruning: pr, Entropy: part})
			pairs := make([]blocking.Pair, len(edges))
			for i, e := range edges {
				pairs[i] = blocking.Pair{A: e.A, B: e.B}
			}
			m := evaluation.EvaluatePairs(pairs, d.GT, d.Collection.MaxComparisons())
			rows = append(rows, AblationRow{
				Scheme: s.String(), Pruning: pr.String(),
				Candidates: m.Candidates, Recall: m.Recall, Precision: m.Precision, F1: m.F1,
			})
		}
	}
	return rows
}

// ClustererAblation compares the three entity-clustering algorithms on
// the default pipeline's matches.
func ClustererAblation(d *Dataset) ([]MetaRow, error) {
	pipeline := core.NewPipeline(core.DefaultConfig(), nil)
	blocker, err := pipeline.RunBlocker(d.Collection)
	if err != nil {
		return nil, err
	}
	matches, err := pipeline.RunMatcher(d.Collection, blocker.Candidates)
	if err != nil {
		return nil, err
	}
	algos := []struct {
		name string
		run  func([]matching.Match) []clustering.Entity
	}{
		{"connected-components", clustering.ConnectedComponents},
		{"center", clustering.CenterClustering},
		{"merge-center", clustering.MergeCenterClustering},
		{"unique-mapping", clustering.UniqueMappingClustering},
	}
	var rows []MetaRow
	for _, algo := range algos {
		entities := algo.run(matches)
		m := evaluation.EvaluateMatches(clustering.PairsOf(entities), d.GT, d.Collection.MaxComparisons())
		rows = append(rows, MetaRow{Name: algo.name, Candidates: m.Candidates, Recall: m.Recall, Precision: m.Precision})
	}
	return rows, nil
}
