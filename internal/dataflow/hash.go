package dataflow

import (
	"fmt"
	"hash/maphash"
)

var hashSeed = maphash.MakeSeed()

// hashKey maps an arbitrary comparable key to a bucket in [0, buckets).
// Common key types are hashed directly; everything else goes through its
// fmt representation, which is slow but correct.
func hashKey(key any, buckets int) int {
	if buckets <= 1 {
		return 0
	}
	var h uint64
	switch k := key.(type) {
	case string:
		h = maphash.String(hashSeed, k)
	case int:
		h = mixUint64(uint64(k))
	case int32:
		h = mixUint64(uint64(uint32(k)))
	case int64:
		h = mixUint64(uint64(k))
	case uint32:
		h = mixUint64(uint64(k))
	case uint64:
		h = mixUint64(k)
	case [2]int32:
		h = mixUint64(uint64(uint32(k[0]))<<32 | uint64(uint32(k[1])))
	default:
		h = maphash.String(hashSeed, fmt.Sprintf("%v", key))
	}
	return int(h % uint64(buckets))
}

// mixUint64 is the SplitMix64 finaliser: a cheap, well-distributed integer
// hash so that sequential IDs spread across partitions.
func mixUint64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
