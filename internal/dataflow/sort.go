package dataflow

import (
	"cmp"
	"sort"
	"sync"
)

// SortBy globally sorts an RDD by a derived key using range partitioning:
// the driver samples keys to pick partition boundaries, records are
// scattered into key ranges, and each partition sorts locally in parallel.
// The result has numPartitions partitions in ascending key order.
func SortBy[T any, O cmp.Ordered](r *RDD[T], key func(T) O, numPartitions int) *RDD[T] {
	if numPartitions < 1 {
		numPartitions = r.ctx.DefaultPartitions()
	}
	type state struct {
		once    sync.Once
		runFn   func()
		buckets [][]T
		err     error
	}
	st := &state{}
	st.runFn = func() {
		parts, err := collectPartitions(r)
		if err != nil {
			st.err = err
			return
		}
		var all []T
		for _, p := range parts {
			all = append(all, p...)
		}
		if len(all) == 0 {
			st.buckets = make([][]T, 1)
			return
		}
		// Sample up to 1024 keys for boundaries.
		sampleStride := len(all)/1024 + 1
		var sample []O
		for i := 0; i < len(all); i += sampleStride {
			sample = append(sample, key(all[i]))
		}
		sort.Slice(sample, func(i, j int) bool { return sample[i] < sample[j] })
		nb := numPartitions
		if nb > len(sample) {
			nb = len(sample)
		}
		bounds := make([]O, 0, nb-1)
		for i := 1; i < nb; i++ {
			bounds = append(bounds, sample[i*len(sample)/nb])
		}
		buckets := make([][]T, len(bounds)+1)
		for _, v := range all {
			k := key(v)
			b := sort.Search(len(bounds), func(i int) bool { return k < bounds[i] })
			buckets[b] = append(buckets[b], v)
		}
		r.ctx.metrics.ShuffleRecords.Add(int64(len(all)))
		st.buckets = buckets
	}
	materialise := func() error {
		st.once.Do(st.runFn)
		return st.err
	}
	prepare := func() error {
		if err := r.prepare(); err != nil {
			return err
		}
		return materialise()
	}
	// Partition count is only known after materialisation; we fix it to the
	// requested count and map empty tails to empty slices.
	return newRDD(r.ctx, r.name+".sortBy", numPartitions, prepare, func(p int, _ *TaskContext) ([]T, error) {
		if err := materialise(); err != nil {
			return nil, err
		}
		if p >= len(st.buckets) {
			return nil, nil
		}
		out := make([]T, len(st.buckets[p]))
		copy(out, st.buckets[p])
		sort.Slice(out, func(i, j int) bool { return key(out[i]) < key(out[j]) })
		return out, nil
	})
}

// Top returns the n largest elements by key, descending.
func Top[T any, O cmp.Ordered](r *RDD[T], n int, key func(T) O) ([]T, error) {
	partials, err := collectPartitions(Map(r, func(v T) T { return v }))
	if err != nil {
		return nil, err
	}
	var all []T
	for _, p := range partials {
		all = append(all, p...)
	}
	sort.Slice(all, func(i, j int) bool { return key(all[i]) > key(all[j]) })
	if len(all) > n {
		all = all[:n]
	}
	return all, nil
}
