// Package dataflow is a from-scratch, in-process reimplementation of the
// subset of Apache Spark that SparkER relies on: lazy, partitioned,
// generic RDDs with lineage; narrow transformations that pipeline inside a
// task; wide (shuffle) transformations with a stage barrier; broadcast
// variables; accumulators; and a scheduler that executes the tasks of each
// stage on a fixed pool of simulated executors.
//
// The engine exists so that the distributed algorithms of the paper
// (distributed token blocking, broadcast-join meta-blocking, iterative
// connected components) can be expressed with the same primitives the
// authors used on Spark, and so that scalability experiments can sweep the
// executor count. Executors are goroutines and the shuffle is an in-memory
// hash exchange, but all algorithmic structure is real: stages run to
// completion before their dependents, shuffled records are counted, tasks
// are retried on failure, and fault injection can kill task attempts to
// exercise the recovery path.
//
// Because Go methods cannot introduce new type parameters, transformations
// that change the element type are package-level functions:
//
//	ctx := dataflow.NewContext(dataflow.WithParallelism(4))
//	defer ctx.Close()
//	nums := dataflow.Parallelize(ctx, []int{1, 2, 3, 4}, 4)
//	sq := dataflow.Map(nums, func(x int) int { return x * x })
//	total, err := dataflow.Reduce(sq, func(a, b int) int { return a + b })
//
// Keyed operations work on RDDs of KV pairs:
//
//	pairs := dataflow.Map(words, func(w string) dataflow.KV[string, int] {
//		return dataflow.KV[string, int]{Key: w, Value: 1}
//	})
//	counts := dataflow.ReduceByKey(pairs, func(a, b int) int { return a + b })
package dataflow
