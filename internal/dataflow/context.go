package dataflow

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
)

// Config controls the simulated cluster.
type Config struct {
	// Parallelism is the number of executor goroutines. It plays the role
	// of the total executor-core count of a Spark cluster.
	Parallelism int
	// DefaultPartitions is the partition count used when a caller passes
	// a non-positive value to Parallelize or to a shuffle operation.
	DefaultPartitions int
	// MaxTaskAttempts bounds retries for a failing task (>=1).
	MaxTaskAttempts int
	// FaultRate is the probability that a task attempt is killed by the
	// fault injector before it runs. Zero disables injection.
	FaultRate float64
	// FaultSeed seeds the fault injector for deterministic tests.
	FaultSeed int64
	// MaxInjectedFaults caps the total number of injected failures so a
	// high FaultRate cannot make a job unwinnable.
	MaxInjectedFaults int
}

// Option mutates a Config.
type Option func(*Config)

// WithParallelism sets the executor count.
func WithParallelism(n int) Option { return func(c *Config) { c.Parallelism = n } }

// WithDefaultPartitions sets the default partition count.
func WithDefaultPartitions(n int) Option { return func(c *Config) { c.DefaultPartitions = n } }

// WithMaxTaskAttempts sets the per-task attempt budget.
func WithMaxTaskAttempts(n int) Option { return func(c *Config) { c.MaxTaskAttempts = n } }

// WithFaultInjection enables the fault injector: each task attempt fails
// with probability rate, up to maxFaults total injected failures.
func WithFaultInjection(rate float64, seed int64, maxFaults int) Option {
	return func(c *Config) {
		c.FaultRate = rate
		c.FaultSeed = seed
		c.MaxInjectedFaults = maxFaults
	}
}

// Metrics aggregates counters across all jobs run on a Context. All fields
// are updated atomically; read a consistent view with Context.Metrics.
type Metrics struct {
	JobsRun          atomic.Int64
	StagesRun        atomic.Int64
	TasksLaunched    atomic.Int64
	TasksFailed      atomic.Int64
	TasksRetried     atomic.Int64
	ShuffleRecords   atomic.Int64
	BroadcastsBuilt  atomic.Int64
	RecordsProcessed atomic.Int64
}

// MetricsSnapshot is a plain-value copy of Metrics.
type MetricsSnapshot struct {
	JobsRun          int64
	StagesRun        int64
	TasksLaunched    int64
	TasksFailed      int64
	TasksRetried     int64
	ShuffleRecords   int64
	BroadcastsBuilt  int64
	RecordsProcessed int64
}

func (m *Metrics) snapshot() MetricsSnapshot {
	return MetricsSnapshot{
		JobsRun:          m.JobsRun.Load(),
		StagesRun:        m.StagesRun.Load(),
		TasksLaunched:    m.TasksLaunched.Load(),
		TasksFailed:      m.TasksFailed.Load(),
		TasksRetried:     m.TasksRetried.Load(),
		ShuffleRecords:   m.ShuffleRecords.Load(),
		BroadcastsBuilt:  m.BroadcastsBuilt.Load(),
		RecordsProcessed: m.RecordsProcessed.Load(),
	}
}

// Context is the driver for a simulated cluster. It owns the executor pool
// and must be closed when no more jobs will run.
type Context struct {
	cfg     Config
	tasks   chan func()
	wg      sync.WaitGroup
	metrics Metrics
	faults  *faultInjector
	stageID atomic.Int64
	closed  atomic.Bool
}

// NewContext starts a simulated cluster. With no options it uses one
// executor per CPU core.
func NewContext(opts ...Option) *Context {
	cfg := Config{
		Parallelism:     runtime.NumCPU(),
		MaxTaskAttempts: 3,
	}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.Parallelism < 1 {
		cfg.Parallelism = 1
	}
	if cfg.DefaultPartitions < 1 {
		cfg.DefaultPartitions = cfg.Parallelism
	}
	if cfg.MaxTaskAttempts < 1 {
		cfg.MaxTaskAttempts = 1
	}
	c := &Context{
		cfg:   cfg,
		tasks: make(chan func(), 4*cfg.Parallelism),
	}
	if cfg.FaultRate > 0 {
		c.faults = newFaultInjector(cfg.FaultRate, cfg.FaultSeed, cfg.MaxInjectedFaults)
	}
	for i := 0; i < cfg.Parallelism; i++ {
		c.wg.Add(1)
		go c.executor()
	}
	return c
}

func (c *Context) executor() {
	defer c.wg.Done()
	for task := range c.tasks {
		task()
	}
}

// Close shuts the executor pool down. Jobs submitted after Close fail.
func (c *Context) Close() {
	if c.closed.CompareAndSwap(false, true) {
		close(c.tasks)
		c.wg.Wait()
	}
}

// Parallelism reports the executor count.
func (c *Context) Parallelism() int { return c.cfg.Parallelism }

// DefaultPartitions reports the default partition count.
func (c *Context) DefaultPartitions() int { return c.cfg.DefaultPartitions }

// Metrics returns a snapshot of the cluster counters.
func (c *Context) Metrics() MetricsSnapshot { return c.metrics.snapshot() }

// ResetMetrics zeroes all counters (useful between benchmark phases).
func (c *Context) ResetMetrics() {
	c.metrics = Metrics{}
}

// TaskContext is passed to every task attempt.
type TaskContext struct {
	Partition int
	Attempt   int
	StageID   int64
}

// taskError wraps a failure with its partition for diagnostics.
type taskError struct {
	partition int
	attempt   int
	err       error
}

func (e *taskError) Error() string {
	return fmt.Sprintf("dataflow: task for partition %d failed (attempt %d): %v", e.partition, e.attempt, e.err)
}

func (e *taskError) Unwrap() error { return e.err }

// runStage executes fn once per partition on the executor pool, retrying
// failed attempts up to MaxTaskAttempts. It returns the first unrecovered
// error, if any.
func (c *Context) runStage(partitions int, fn func(tc *TaskContext) error) error {
	if c.closed.Load() {
		return fmt.Errorf("dataflow: context is closed")
	}
	stage := c.stageID.Add(1)
	c.metrics.StagesRun.Add(1)

	errs := make([]error, partitions)
	var wg sync.WaitGroup
	wg.Add(partitions)
	for p := 0; p < partitions; p++ {
		p := p
		c.tasks <- func() {
			defer wg.Done()
			errs[p] = c.runTaskWithRetry(stage, p, fn)
		}
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

func (c *Context) runTaskWithRetry(stage int64, partition int, fn func(tc *TaskContext) error) error {
	var lastErr error
	for attempt := 1; attempt <= c.cfg.MaxTaskAttempts; attempt++ {
		c.metrics.TasksLaunched.Add(1)
		if attempt > 1 {
			c.metrics.TasksRetried.Add(1)
		}
		err := c.runTaskAttempt(stage, partition, attempt, fn)
		if err == nil {
			return nil
		}
		c.metrics.TasksFailed.Add(1)
		lastErr = &taskError{partition: partition, attempt: attempt, err: err}
	}
	return lastErr
}

func (c *Context) runTaskAttempt(stage int64, partition, attempt int, fn func(tc *TaskContext) error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("dataflow: task panic: %v", r)
		}
	}()
	if c.faults != nil && c.faults.shouldFail() {
		return fmt.Errorf("dataflow: injected fault (stage %d partition %d attempt %d)", stage, partition, attempt)
	}
	return fn(&TaskContext{Partition: partition, Attempt: attempt, StageID: stage})
}

// faultInjector kills task attempts with a fixed probability, up to a cap.
type faultInjector struct {
	mu       sync.Mutex
	rng      *rand.Rand
	rate     float64
	injected int
	max      int
}

func newFaultInjector(rate float64, seed int64, max int) *faultInjector {
	if max <= 0 {
		max = 1 << 30
	}
	return &faultInjector{rng: rand.New(rand.NewSource(seed)), rate: rate, max: max}
}

func (f *faultInjector) shouldFail() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.injected >= f.max {
		return false
	}
	if f.rng.Float64() < f.rate {
		f.injected++
		return true
	}
	return false
}

// Accumulator is a write-only counter usable from any task, mirroring
// Spark accumulators. Reads on the driver see the running total.
type Accumulator struct {
	v atomic.Int64
}

// NewAccumulator creates an accumulator registered on the context. The
// context handle is unused today but keeps the call shape of Spark.
func NewAccumulator(_ *Context) *Accumulator { return &Accumulator{} }

// Add increments the accumulator.
func (a *Accumulator) Add(delta int64) { a.v.Add(delta) }

// Value reads the running total.
func (a *Accumulator) Value() int64 { return a.v.Load() }
