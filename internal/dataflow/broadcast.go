package dataflow

// Broadcast is a read-only variable shipped to every executor once, like
// Spark broadcast variables. In this in-process engine the "shipping" is a
// shared pointer, but algorithms must treat the value as immutable, exactly
// as they would on a cluster; the paper's meta-blocking relies on
// broadcasting the block index to materialise node neighbourhoods locally.
type Broadcast[T any] struct {
	value T
}

// NewBroadcast registers a broadcast variable on the context.
func NewBroadcast[T any](ctx *Context, value T) *Broadcast[T] {
	ctx.metrics.BroadcastsBuilt.Add(1)
	return &Broadcast[T]{value: value}
}

// Value returns the broadcast payload. Callers must not mutate it.
func (b *Broadcast[T]) Value() T { return b.value }
