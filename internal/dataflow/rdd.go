package dataflow

import (
	"fmt"
	"math/rand"
	"sync"
)

// RDD is a lazy, partitioned dataset. Transformations build lineage;
// nothing executes until an action runs. An RDD is safe for concurrent
// actions once constructed.
type RDD[T any] struct {
	ctx   *Context
	name  string
	parts int
	// compute produces partition p. Narrow transformations call their
	// parent's compute in the same task (pipelining); shuffle RDDs return
	// pre-materialised buckets.
	compute func(p int, tc *TaskContext) ([]T, error)
	// prepare runs on the driver before any task of a dependent stage and
	// materialises upstream shuffle outputs (the stage barrier).
	prepare func() error

	cacheMu   sync.Mutex
	cacheOn   bool
	cache     [][]T
	cacheOnce []sync.Once
	cacheErr  []error
}

// Context returns the cluster context the RDD is bound to.
func (r *RDD[T]) Context() *Context { return r.ctx }

// NumPartitions reports the partition count.
func (r *RDD[T]) NumPartitions() int { return r.parts }

// Name returns the debug name of the RDD.
func (r *RDD[T]) Name() string { return r.name }

// Persist enables caching: each partition is computed at most once and
// reused by later jobs, like Spark's MEMORY_ONLY persistence.
func (r *RDD[T]) Persist() *RDD[T] {
	r.cacheMu.Lock()
	defer r.cacheMu.Unlock()
	if !r.cacheOn {
		r.cacheOn = true
		r.cache = make([][]T, r.parts)
		r.cacheOnce = make([]sync.Once, r.parts)
		r.cacheErr = make([]error, r.parts)
	}
	return r
}

// partition evaluates partition p honouring the cache.
func (r *RDD[T]) partition(p int, tc *TaskContext) ([]T, error) {
	r.cacheMu.Lock()
	cacheOn := r.cacheOn
	r.cacheMu.Unlock()
	if !cacheOn {
		return r.compute(p, tc)
	}
	r.cacheOnce[p].Do(func() {
		r.cache[p], r.cacheErr[p] = r.compute(p, tc)
	})
	return r.cache[p], r.cacheErr[p]
}

func newRDD[T any](ctx *Context, name string, parts int, prepare func() error,
	compute func(p int, tc *TaskContext) ([]T, error)) *RDD[T] {
	if prepare == nil {
		prepare = func() error { return nil }
	}
	return &RDD[T]{ctx: ctx, name: name, parts: parts, prepare: prepare, compute: compute}
}

// Parallelize distributes data across numPartitions partitions. A
// non-positive numPartitions uses the context default. Elements keep their
// order within and across partitions.
func Parallelize[T any](ctx *Context, data []T, numPartitions int) *RDD[T] {
	if numPartitions < 1 {
		numPartitions = ctx.DefaultPartitions()
	}
	n := len(data)
	if numPartitions > n && n > 0 {
		numPartitions = n
	}
	if n == 0 {
		numPartitions = 1
	}
	return newRDD(ctx, "parallelize", numPartitions, nil, func(p int, _ *TaskContext) ([]T, error) {
		lo := p * n / numPartitions
		hi := (p + 1) * n / numPartitions
		return data[lo:hi], nil
	})
}

// Empty returns an RDD with no elements and a single empty partition.
func Empty[T any](ctx *Context) *RDD[T] {
	return newRDD(ctx, "empty", 1, nil, func(int, *TaskContext) ([]T, error) { return nil, nil })
}

// Map applies f to every element.
func Map[T, U any](r *RDD[T], f func(T) U) *RDD[U] {
	return newRDD(r.ctx, r.name+".map", r.parts, r.prepare, func(p int, tc *TaskContext) ([]U, error) {
		in, err := r.partition(p, tc)
		if err != nil {
			return nil, err
		}
		out := make([]U, len(in))
		for i, v := range in {
			out[i] = f(v)
		}
		r.ctx.metrics.RecordsProcessed.Add(int64(len(in)))
		return out, nil
	})
}

// FlatMap applies f to every element and concatenates the results.
func FlatMap[T, U any](r *RDD[T], f func(T) []U) *RDD[U] {
	return newRDD(r.ctx, r.name+".flatMap", r.parts, r.prepare, func(p int, tc *TaskContext) ([]U, error) {
		in, err := r.partition(p, tc)
		if err != nil {
			return nil, err
		}
		var out []U
		for _, v := range in {
			out = append(out, f(v)...)
		}
		r.ctx.metrics.RecordsProcessed.Add(int64(len(in)))
		return out, nil
	})
}

// Filter keeps the elements for which pred returns true.
func Filter[T any](r *RDD[T], pred func(T) bool) *RDD[T] {
	return newRDD(r.ctx, r.name+".filter", r.parts, r.prepare, func(p int, tc *TaskContext) ([]T, error) {
		in, err := r.partition(p, tc)
		if err != nil {
			return nil, err
		}
		out := make([]T, 0, len(in))
		for _, v := range in {
			if pred(v) {
				out = append(out, v)
			}
		}
		r.ctx.metrics.RecordsProcessed.Add(int64(len(in)))
		return out, nil
	})
}

// MapPartitions applies f to each whole partition. The input slice must be
// treated as read-only.
func MapPartitions[T, U any](r *RDD[T], f func([]T) ([]U, error)) *RDD[U] {
	return MapPartitionsWithIndex(r, func(_ int, in []T) ([]U, error) { return f(in) })
}

// MapPartitionsWithIndex applies f to each whole partition along with its
// partition index.
func MapPartitionsWithIndex[T, U any](r *RDD[T], f func(int, []T) ([]U, error)) *RDD[U] {
	return newRDD(r.ctx, r.name+".mapPartitions", r.parts, r.prepare, func(p int, tc *TaskContext) ([]U, error) {
		in, err := r.partition(p, tc)
		if err != nil {
			return nil, err
		}
		r.ctx.metrics.RecordsProcessed.Add(int64(len(in)))
		return f(p, in)
	})
}

// Union concatenates two RDDs (no deduplication), preserving partitioning.
func Union[T any](a, b *RDD[T]) *RDD[T] {
	if a.ctx != b.ctx {
		panic("dataflow: Union across different contexts")
	}
	prepare := func() error {
		if err := a.prepare(); err != nil {
			return err
		}
		return b.prepare()
	}
	parts := a.parts + b.parts
	return newRDD(a.ctx, "union", parts, prepare, func(p int, tc *TaskContext) ([]T, error) {
		if p < a.parts {
			return a.partition(p, tc)
		}
		return b.partition(p-a.parts, tc)
	})
}

// Sample keeps each element independently with probability fraction, using
// a deterministic per-partition stream derived from seed.
func Sample[T any](r *RDD[T], fraction float64, seed int64) *RDD[T] {
	return newRDD(r.ctx, r.name+".sample", r.parts, r.prepare, func(p int, tc *TaskContext) ([]T, error) {
		in, err := r.partition(p, tc)
		if err != nil {
			return nil, err
		}
		rng := rand.New(rand.NewSource(seed + int64(p)*1_000_003))
		var out []T
		for _, v := range in {
			if rng.Float64() < fraction {
				out = append(out, v)
			}
		}
		return out, nil
	})
}

// collectPartitions materialises every partition of r, running one task per
// partition on the executor pool. It is the engine behind actions and
// shuffle stages.
func collectPartitions[T any](r *RDD[T]) ([][]T, error) {
	if err := r.prepare(); err != nil {
		return nil, err
	}
	out := make([][]T, r.parts)
	err := r.ctx.runStage(r.parts, func(tc *TaskContext) error {
		data, err := r.partition(tc.Partition, tc)
		if err != nil {
			return err
		}
		out[tc.Partition] = data
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Collect gathers all elements on the driver in partition order.
func (r *RDD[T]) Collect() ([]T, error) {
	r.ctx.metrics.JobsRun.Add(1)
	parts, err := collectPartitions(r)
	if err != nil {
		return nil, err
	}
	var n int
	for _, p := range parts {
		n += len(p)
	}
	out := make([]T, 0, n)
	for _, p := range parts {
		out = append(out, p...)
	}
	return out, nil
}

// Count returns the number of elements.
func (r *RDD[T]) Count() (int64, error) {
	r.ctx.metrics.JobsRun.Add(1)
	if err := r.prepare(); err != nil {
		return 0, err
	}
	counts := make([]int64, r.parts)
	err := r.ctx.runStage(r.parts, func(tc *TaskContext) error {
		data, err := r.partition(tc.Partition, tc)
		if err != nil {
			return err
		}
		counts[tc.Partition] = int64(len(data))
		return nil
	})
	if err != nil {
		return 0, err
	}
	var total int64
	for _, c := range counts {
		total += c
	}
	return total, nil
}

// Take returns up to n elements from the first partitions. Partitions are
// scanned incrementally — one stage over a geometrically growing batch of
// partitions, stopping as soon as n elements are gathered — so a Take
// over a wide RDD does not materialise every partition the way Collect
// does (the same ramp-up Spark's take action uses).
func (r *RDD[T]) Take(n int) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	r.ctx.metrics.JobsRun.Add(1)
	if err := r.prepare(); err != nil {
		return nil, err
	}
	out := make([]T, 0, n)
	for scanned, batch := 0, 1; scanned < r.parts && len(out) < n; batch *= 4 {
		base := scanned
		end := base + batch
		if end > r.parts {
			end = r.parts
		}
		parts := make([][]T, end-base)
		err := r.ctx.runStage(end-base, func(tc *TaskContext) error {
			data, err := r.partition(base+tc.Partition, tc)
			if err != nil {
				return err
			}
			parts[tc.Partition] = data
			return nil
		})
		if err != nil {
			return nil, err
		}
		for _, p := range parts {
			out = append(out, p...)
		}
		scanned = end
	}
	if len(out) > n {
		out = out[:n]
	}
	return out, nil
}

// First returns the first element or an error if the RDD is empty.
func (r *RDD[T]) First() (T, error) {
	var zero T
	got, err := r.Take(1)
	if err != nil {
		return zero, err
	}
	if len(got) == 0 {
		return zero, fmt.Errorf("dataflow: First on empty RDD")
	}
	return got[0], nil
}

// ForEach applies f to every element on the driver, in partition order.
func (r *RDD[T]) ForEach(f func(T)) error {
	all, err := r.Collect()
	if err != nil {
		return err
	}
	for _, v := range all {
		f(v)
	}
	return nil
}

// Reduce combines all elements with an associative, commutative f.
func Reduce[T any](r *RDD[T], f func(T, T) T) (T, error) {
	var zero T
	r.ctx.metrics.JobsRun.Add(1)
	if err := r.prepare(); err != nil {
		return zero, err
	}
	partial := make([]T, r.parts)
	nonEmpty := make([]bool, r.parts)
	err := r.ctx.runStage(r.parts, func(tc *TaskContext) error {
		data, err := r.partition(tc.Partition, tc)
		if err != nil {
			return err
		}
		if len(data) == 0 {
			return nil
		}
		acc := data[0]
		for _, v := range data[1:] {
			acc = f(acc, v)
		}
		partial[tc.Partition] = acc
		nonEmpty[tc.Partition] = true
		return nil
	})
	if err != nil {
		return zero, err
	}
	var acc T
	seeded := false
	for p, ok := range nonEmpty {
		if !ok {
			continue
		}
		if !seeded {
			acc, seeded = partial[p], true
		} else {
			acc = f(acc, partial[p])
		}
	}
	if !seeded {
		return zero, fmt.Errorf("dataflow: Reduce on empty RDD")
	}
	return acc, nil
}

// Aggregate folds every element into a per-partition accumulator with seq
// and merges the partials with comb.
func Aggregate[T, A any](r *RDD[T], zero func() A, seq func(A, T) A, comb func(A, A) A) (A, error) {
	var zeroA A
	r.ctx.metrics.JobsRun.Add(1)
	if err := r.prepare(); err != nil {
		return zeroA, err
	}
	partial := make([]A, r.parts)
	err := r.ctx.runStage(r.parts, func(tc *TaskContext) error {
		data, err := r.partition(tc.Partition, tc)
		if err != nil {
			return err
		}
		acc := zero()
		for _, v := range data {
			acc = seq(acc, v)
		}
		partial[tc.Partition] = acc
		return nil
	})
	if err != nil {
		return zeroA, err
	}
	acc := zero()
	for _, p := range partial {
		acc = comb(acc, p)
	}
	return acc, nil
}

// Coalesce reduces the partition count without a shuffle by concatenating
// adjacent partitions.
func Coalesce[T any](r *RDD[T], numPartitions int) *RDD[T] {
	if numPartitions < 1 {
		numPartitions = 1
	}
	if numPartitions >= r.parts {
		return r
	}
	old := r.parts
	return newRDD(r.ctx, r.name+".coalesce", numPartitions, r.prepare, func(p int, tc *TaskContext) ([]T, error) {
		lo := p * old / numPartitions
		hi := (p + 1) * old / numPartitions
		var out []T
		for q := lo; q < hi; q++ {
			data, err := r.partition(q, tc)
			if err != nil {
				return nil, err
			}
			out = append(out, data...)
		}
		return out, nil
	})
}
