package dataflow

import (
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func sortKVs[V any](kvs []KV[string, V]) {
	sort.Slice(kvs, func(i, j int) bool { return kvs[i].Key < kvs[j].Key })
}

func TestReduceByKeyWordCount(t *testing.T) {
	ctx := newTestContext(t, 4)
	words := []string{"a", "b", "a", "c", "b", "a"}
	r := Parallelize(ctx, words, 3)
	pairs := Map(r, func(w string) KV[string, int] { return KV[string, int]{Key: w, Value: 1} })
	counts := ReduceByKey(pairs, func(a, b int) int { return a + b }, 4)
	got, err := counts.Collect()
	if err != nil {
		t.Fatal(err)
	}
	sortKVs(got)
	want := []KV[string, int]{{"a", 3}, {"b", 2}, {"c", 1}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
}

func TestGroupByKeyGroupsAllValues(t *testing.T) {
	ctx := newTestContext(t, 4)
	pairs := []KV[string, int]{{"x", 1}, {"y", 2}, {"x", 3}, {"x", 5}}
	r := Parallelize(ctx, pairs, 2)
	grouped, err := GroupByKey(r, 3).Collect()
	if err != nil {
		t.Fatal(err)
	}
	m := map[string][]int{}
	for _, kv := range grouped {
		vs := append([]int(nil), kv.Value...)
		sort.Ints(vs)
		m[kv.Key] = vs
	}
	want := map[string][]int{"x": {1, 3, 5}, "y": {2}}
	if !reflect.DeepEqual(m, want) {
		t.Fatalf("got %v", m)
	}
}

func TestGroupByKeyEachKeyInOnePartition(t *testing.T) {
	ctx := newTestContext(t, 4)
	var pairs []KV[int, int]
	for i := 0; i < 200; i++ {
		pairs = append(pairs, KV[int, int]{Key: i % 10, Value: i})
	}
	r := Parallelize(ctx, pairs, 8)
	grouped := GroupByKey(r, 4)
	perPart, err := collectPartitions(grouped)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]int{}
	for p, part := range perPart {
		for _, kv := range part {
			if prev, ok := seen[kv.Key]; ok && prev != p {
				t.Fatalf("key %d appears in partitions %d and %d", kv.Key, prev, p)
			}
			seen[kv.Key] = p
			if len(kv.Value) != 20 {
				t.Fatalf("key %d has %d values, want 20", kv.Key, len(kv.Value))
			}
		}
	}
	if len(seen) != 10 {
		t.Fatalf("saw %d keys", len(seen))
	}
}

func TestAggregateByKey(t *testing.T) {
	ctx := newTestContext(t, 4)
	pairs := []KV[string, int]{{"a", 1}, {"a", 2}, {"b", 10}}
	r := Parallelize(ctx, pairs, 2)
	type acc struct{ n, sum int }
	agg := AggregateByKey(r,
		func() acc { return acc{} },
		func(a acc, v int) acc { return acc{a.n + 1, a.sum + v} },
		func(a, b acc) acc { return acc{a.n + b.n, a.sum + b.sum} }, 2)
	got, err := CollectAsMap(agg)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]acc{"a": {2, 3}, "b": {1, 10}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v", got)
	}
}

func TestJoin(t *testing.T) {
	ctx := newTestContext(t, 4)
	left := Parallelize(ctx, []KV[int, string]{{1, "a"}, {2, "b"}, {2, "bb"}, {3, "c"}}, 2)
	right := Parallelize(ctx, []KV[int, float64]{{2, 0.5}, {3, 1.5}, {4, 9.9}}, 2)
	joined, err := Join(left, right, 3).Collect()
	if err != nil {
		t.Fatal(err)
	}
	type row struct {
		k int
		v string
		w float64
	}
	var rows []row
	for _, kv := range joined {
		rows = append(rows, row{kv.Key, kv.Value.A, kv.Value.B})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].k != rows[j].k {
			return rows[i].k < rows[j].k
		}
		return rows[i].v < rows[j].v
	})
	want := []row{{2, "b", 0.5}, {2, "bb", 0.5}, {3, "c", 1.5}}
	if !reflect.DeepEqual(rows, want) {
		t.Fatalf("got %v", rows)
	}
}

func TestCoGroupKeysFromBothSides(t *testing.T) {
	ctx := newTestContext(t, 2)
	left := Parallelize(ctx, []KV[string, int]{{"only-left", 1}}, 1)
	right := Parallelize(ctx, []KV[string, int]{{"only-right", 2}}, 1)
	got, err := CoGroup(left, right, 2).Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("got %d keys, want 2", len(got))
	}
}

func TestDistinct(t *testing.T) {
	ctx := newTestContext(t, 4)
	r := Parallelize(ctx, []int{1, 2, 2, 3, 3, 3, 1}, 3)
	got, err := Distinct(r, 2).Collect()
	if err != nil {
		t.Fatal(err)
	}
	sort.Ints(got)
	if !reflect.DeepEqual(got, []int{1, 2, 3}) {
		t.Fatalf("got %v", got)
	}
}

func TestCountByKey(t *testing.T) {
	ctx := newTestContext(t, 2)
	r := Parallelize(ctx, []KV[string, int]{{"a", 0}, {"a", 0}, {"b", 0}}, 2)
	got, err := CountByKey(r)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]int64{"a": 2, "b": 1}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v", got)
	}
}

func TestKeysValuesMapValues(t *testing.T) {
	ctx := newTestContext(t, 2)
	r := Parallelize(ctx, []KV[string, int]{{"a", 1}, {"b", 2}}, 1)
	keys, err := Keys(r).Collect()
	if err != nil || !reflect.DeepEqual(keys, []string{"a", "b"}) {
		t.Fatalf("keys=%v err=%v", keys, err)
	}
	vals, err := Values(r).Collect()
	if err != nil || !reflect.DeepEqual(vals, []int{1, 2}) {
		t.Fatalf("vals=%v err=%v", vals, err)
	}
	doubled, err := Values(MapValues(r, func(v int) int { return v * 2 })).Collect()
	if err != nil || !reflect.DeepEqual(doubled, []int{2, 4}) {
		t.Fatalf("doubled=%v err=%v", doubled, err)
	}
}

func TestKeyBy(t *testing.T) {
	ctx := newTestContext(t, 2)
	r := Parallelize(ctx, []string{"apple", "fig"}, 1)
	got, err := KeyBy(r, func(s string) int { return len(s) }).Collect()
	if err != nil {
		t.Fatal(err)
	}
	want := []KV[int, string]{{5, "apple"}, {3, "fig"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v", got)
	}
}

func TestPartitionByPlacesEqualKeysTogether(t *testing.T) {
	ctx := newTestContext(t, 4)
	var pairs []KV[string, int]
	for i := 0; i < 100; i++ {
		pairs = append(pairs, KV[string, int]{Key: string(rune('a' + i%5)), Value: i})
	}
	r := PartitionBy(Parallelize(ctx, pairs, 7), 3)
	perPart, err := collectPartitions(r)
	if err != nil {
		t.Fatal(err)
	}
	where := map[string]int{}
	total := 0
	for p, part := range perPart {
		total += len(part)
		for _, kv := range part {
			if prev, ok := where[kv.Key]; ok && prev != p {
				t.Fatalf("key %q split across partitions", kv.Key)
			}
			where[kv.Key] = p
		}
	}
	if total != 100 {
		t.Fatalf("records lost in shuffle: %d", total)
	}
}

func TestShuffleMetricsRecorded(t *testing.T) {
	ctx := newTestContext(t, 2)
	r := Parallelize(ctx, []KV[string, int]{{"a", 1}, {"b", 2}, {"a", 3}}, 2)
	if _, err := GroupByKey(r, 2).Collect(); err != nil {
		t.Fatal(err)
	}
	if ctx.Metrics().ShuffleRecords == 0 {
		t.Fatal("shuffle records not counted")
	}
}

func TestReduceByKeyMapSideCombineShufflesFewerRecords(t *testing.T) {
	// 1000 records with 4 keys in 2 partitions: map-side combine must shuffle
	// at most 8 records, while GroupByKey shuffles all 1000.
	var pairs []KV[int, int]
	for i := 0; i < 1000; i++ {
		pairs = append(pairs, KV[int, int]{Key: i % 4, Value: 1})
	}

	ctx1 := NewContext(WithParallelism(2))
	r1 := Parallelize(ctx1, pairs, 2)
	if _, err := ReduceByKey(r1, func(a, b int) int { return a + b }, 2).Collect(); err != nil {
		t.Fatal(err)
	}
	reduceShuffle := ctx1.Metrics().ShuffleRecords
	ctx1.Close()

	ctx2 := NewContext(WithParallelism(2))
	r2 := Parallelize(ctx2, pairs, 2)
	if _, err := GroupByKey(r2, 2).Collect(); err != nil {
		t.Fatal(err)
	}
	groupShuffle := ctx2.Metrics().ShuffleRecords
	ctx2.Close()

	if reduceShuffle > 8 {
		t.Fatalf("reduceByKey shuffled %d records, want <=8", reduceShuffle)
	}
	if groupShuffle != 1000 {
		t.Fatalf("groupByKey shuffled %d records, want 1000", groupShuffle)
	}
}

func TestQuickReduceByKeyMatchesSequential(t *testing.T) {
	ctx := newTestContext(t, 4)
	f := func(keys []uint8, vals []int8) bool {
		n := len(keys)
		if len(vals) < n {
			n = len(vals)
		}
		pairs := make([]KV[uint8, int64], n)
		want := map[uint8]int64{}
		for i := 0; i < n; i++ {
			pairs[i] = KV[uint8, int64]{Key: keys[i], Value: int64(vals[i])}
			want[keys[i]] += int64(vals[i])
		}
		r := Parallelize(ctx, pairs, 4)
		got, err := CollectAsMap(ReduceByKey(r, func(a, b int64) int64 { return a + b }, 3))
		if err != nil {
			return false
		}
		if len(got) != len(want) {
			return false
		}
		for k, v := range want {
			if got[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDistinctMatchesSet(t *testing.T) {
	ctx := newTestContext(t, 4)
	f := func(data []uint8) bool {
		r := Parallelize(ctx, data, 3)
		got, err := Distinct(r, 2).Collect()
		if err != nil {
			return false
		}
		want := map[uint8]bool{}
		for _, v := range data {
			want[v] = true
		}
		if len(got) != len(want) {
			return false
		}
		for _, v := range got {
			if !want[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestBroadcastVisibleInTasks(t *testing.T) {
	ctx := newTestContext(t, 4)
	lookup := NewBroadcast(ctx, map[int]string{1: "one", 2: "two"})
	r := Parallelize(ctx, []int{1, 2, 1}, 2)
	named, err := Map(r, func(x int) string { return lookup.Value()[x] }).Collect()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(named, []string{"one", "two", "one"}) {
		t.Fatalf("got %v", named)
	}
	if ctx.Metrics().BroadcastsBuilt != 1 {
		t.Fatal("broadcast not counted")
	}
}

func TestAccumulator(t *testing.T) {
	ctx := newTestContext(t, 4)
	acc := NewAccumulator(ctx)
	r := Parallelize(ctx, intsUpTo(100), 8)
	if err := Map(r, func(x int) int { acc.Add(1); return x }).ForEach(func(int) {}); err != nil {
		t.Fatal(err)
	}
	if acc.Value() != 100 {
		t.Fatalf("acc=%d", acc.Value())
	}
}
