package dataflow

import (
	"fmt"
	"math"
	"reflect"
	"sort"
	"testing"
)

func TestLeftOuterJoin(t *testing.T) {
	ctx := newTestContext(t, 2)
	left := Parallelize(ctx, []KV[int, string]{{1, "a"}, {2, "b"}, {3, "c"}}, 2)
	right := Parallelize(ctx, []KV[int, int]{{2, 20}, {2, 21}}, 1)
	joined, err := LeftOuterJoin(left, right, 2).Collect()
	if err != nil {
		t.Fatal(err)
	}
	type row struct {
		k       int
		v       string
		present bool
		w       int
	}
	var rows []row
	for _, kv := range joined {
		rows = append(rows, row{kv.Key, kv.Value.A, kv.Value.B.Present, kv.Value.B.Value})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].k != rows[j].k {
			return rows[i].k < rows[j].k
		}
		return rows[i].w < rows[j].w
	})
	want := []row{
		{1, "a", false, 0},
		{2, "b", true, 20},
		{2, "b", true, 21},
		{3, "c", false, 0},
	}
	if !reflect.DeepEqual(rows, want) {
		t.Fatalf("got %v", rows)
	}
}

func TestCartesian(t *testing.T) {
	ctx := newTestContext(t, 2)
	a := Parallelize(ctx, []int{1, 2}, 1)
	b := Parallelize(ctx, []string{"x", "y", "z"}, 2)
	cross, err := Cartesian(a, b)
	if err != nil {
		t.Fatal(err)
	}
	got, err := cross.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 6 {
		t.Fatalf("pairs: %d", len(got))
	}
	seen := map[string]bool{}
	for _, p := range got {
		seen[fmt.Sprintf("%d%s", p.A, p.B)] = true
	}
	for _, want := range []string{"1x", "1y", "1z", "2x", "2y", "2z"} {
		if !seen[want] {
			t.Fatalf("missing %s", want)
		}
	}
}

func TestZipWithIndex(t *testing.T) {
	ctx := newTestContext(t, 3)
	r := Parallelize(ctx, []string{"a", "b", "c", "d", "e"}, 3)
	got, err := ZipWithIndex(r).Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Fatalf("elements: %d", len(got))
	}
	for i, kv := range got {
		if kv.Key != int64(i) {
			t.Fatalf("index %d has ordinal %d", i, kv.Key)
		}
	}
	if got[0].Value != "a" || got[4].Value != "e" {
		t.Fatalf("values reordered: %v", got)
	}
}

func TestZipWithIndexEmpty(t *testing.T) {
	ctx := newTestContext(t, 2)
	got, err := ZipWithIndex(Empty[int](ctx)).Collect()
	if err != nil || len(got) != 0 {
		t.Fatalf("got %v err %v", got, err)
	}
}

func TestFold(t *testing.T) {
	ctx := newTestContext(t, 4)
	r := Parallelize(ctx, intsUpTo(10), 3)
	sum, err := Fold(r, 0, func(a, b int) int { return a + b })
	if err != nil || sum != 45 {
		t.Fatalf("sum=%d err=%v", sum, err)
	}
	// Spark semantics: the zero value is applied per partition plus once
	// at the merge, so a non-identity zero inflates the result — Empty has
	// one partition, hence 7 (partition) + 7 (merge) = 14.
	empty, err := Fold(Empty[int](ctx), 7, func(a, b int) int { return a + b })
	if err != nil || empty != 14 {
		t.Fatalf("empty fold=%d err=%v", empty, err)
	}
}

func TestMaxBy(t *testing.T) {
	ctx := newTestContext(t, 2)
	r := Parallelize(ctx, []int{3, 9, 1, 7}, 2)
	got, err := MaxBy(r, func(a, b int) bool { return a < b })
	if err != nil || got != 9 {
		t.Fatalf("max=%d err=%v", got, err)
	}
}

func TestCountApproxDistinct(t *testing.T) {
	ctx := newTestContext(t, 4)
	var data []string
	for i := 0; i < 5000; i++ {
		data = append(data, fmt.Sprintf("tok-%d", i%500)) // 500 distinct
	}
	r := Parallelize(ctx, data, 8)
	est, err := CountApproxDistinct(r, 1<<14)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(est)-500) > 50 {
		t.Fatalf("estimate %d for 500 distinct", est)
	}
	exact, err := Distinct(r, 4).Count()
	if err != nil || exact != 500 {
		t.Fatalf("exact=%d err=%v", exact, err)
	}
}

func TestCountApproxDistinctSaturated(t *testing.T) {
	// More distinct values than registers must not panic or return junk
	// below the register count's floor.
	ctx := newTestContext(t, 2)
	var data []int
	for i := 0; i < 5000; i++ {
		data = append(data, i)
	}
	r := Parallelize(ctx, data, 4)
	est, err := CountApproxDistinct(r, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if est < 1024 {
		t.Fatalf("saturated estimate %d below register count", est)
	}
}
