package dataflow

import "sync"

// KV is a key-value pair, the element type of keyed RDDs.
type KV[K comparable, V any] struct {
	Key   K
	Value V
}

// Pair holds the two sides of a join.
type Pair[A, B any] struct {
	A A
	B B
}

// CoGrouped holds, for one key, all values from each side of a cogroup.
type CoGrouped[V, W any] struct {
	Left  []V
	Right []W
}

// KeyBy turns an RDD into a keyed RDD using f to derive the key.
func KeyBy[T any, K comparable](r *RDD[T], f func(T) K) *RDD[KV[K, T]] {
	return Map(r, func(v T) KV[K, T] { return KV[K, T]{Key: f(v), Value: v} })
}

// Keys projects the keys of a keyed RDD.
func Keys[K comparable, V any](r *RDD[KV[K, V]]) *RDD[K] {
	return Map(r, func(kv KV[K, V]) K { return kv.Key })
}

// Values projects the values of a keyed RDD.
func Values[K comparable, V any](r *RDD[KV[K, V]]) *RDD[V] {
	return Map(r, func(kv KV[K, V]) V { return kv.Value })
}

// MapValues transforms the values of a keyed RDD, keeping keys (and thus
// any partitioning) intact.
func MapValues[K comparable, V, W any](r *RDD[KV[K, V]], f func(V) W) *RDD[KV[K, W]] {
	return Map(r, func(kv KV[K, V]) KV[K, W] { return KV[K, W]{Key: kv.Key, Value: f(kv.Value)} })
}

// shuffleState materialises the hash-exchange output of a wide dependency
// exactly once. prepare() runs it on the driver, giving the stage barrier.
type shuffleState[T any] struct {
	once    sync.Once
	runFn   func()
	buckets [][]T
	err     error
}

func (s *shuffleState[T]) materialise() error {
	s.once.Do(s.runFn)
	return s.err
}

// exchange hash-partitions every record of r into numPartitions buckets by
// key. It is the moral equivalent of writing and reading shuffle files.
func exchange[K comparable, V any](r *RDD[KV[K, V]], numPartitions int) *shuffleState[KV[K, V]] {
	st := &shuffleState[KV[K, V]]{}
	st.runFn = func() {
		parts, err := collectPartitions(r)
		if err != nil {
			st.err = err
			return
		}
		buckets := make([][]KV[K, V], numPartitions)
		var n int64
		for _, part := range parts {
			for _, kv := range part {
				b := hashKey(kv.Key, numPartitions)
				buckets[b] = append(buckets[b], kv)
				n++
			}
		}
		r.ctx.metrics.ShuffleRecords.Add(n)
		st.buckets = buckets
	}
	return st
}

// PartitionBy redistributes a keyed RDD across numPartitions partitions by
// key hash. A non-positive numPartitions uses the context default.
func PartitionBy[K comparable, V any](r *RDD[KV[K, V]], numPartitions int) *RDD[KV[K, V]] {
	if numPartitions < 1 {
		numPartitions = r.ctx.DefaultPartitions()
	}
	st := exchange(r, numPartitions)
	prepare := func() error {
		if err := r.prepare(); err != nil {
			return err
		}
		return st.materialise()
	}
	return newRDD(r.ctx, r.name+".partitionBy", numPartitions, prepare, func(p int, _ *TaskContext) ([]KV[K, V], error) {
		if err := st.materialise(); err != nil {
			return nil, err
		}
		return st.buckets[p], nil
	})
}

// GroupByKey shuffles the RDD and groups all values sharing a key.
func GroupByKey[K comparable, V any](r *RDD[KV[K, V]], numPartitions int) *RDD[KV[K, []V]] {
	part := PartitionBy(r, numPartitions)
	return MapPartitions(part, func(in []KV[K, V]) ([]KV[K, []V], error) {
		groups := make(map[K][]V)
		var order []K
		for _, kv := range in {
			if _, seen := groups[kv.Key]; !seen {
				order = append(order, kv.Key)
			}
			groups[kv.Key] = append(groups[kv.Key], kv.Value)
		}
		out := make([]KV[K, []V], 0, len(order))
		for _, k := range order {
			out = append(out, KV[K, []V]{Key: k, Value: groups[k]})
		}
		return out, nil
	})
}

// ReduceByKey combines values per key with an associative, commutative
// function. Values are pre-combined map-side before the shuffle, exactly as
// Spark does, which the shuffle-record metric reflects.
func ReduceByKey[K comparable, V any](r *RDD[KV[K, V]], combine func(V, V) V, numPartitions int) *RDD[KV[K, V]] {
	combined := MapPartitions(r, func(in []KV[K, V]) ([]KV[K, V], error) {
		acc := make(map[K]V)
		var order []K
		for _, kv := range in {
			if prev, seen := acc[kv.Key]; seen {
				acc[kv.Key] = combine(prev, kv.Value)
			} else {
				acc[kv.Key] = kv.Value
				order = append(order, kv.Key)
			}
		}
		out := make([]KV[K, V], 0, len(order))
		for _, k := range order {
			out = append(out, KV[K, V]{Key: k, Value: acc[k]})
		}
		return out, nil
	})
	grouped := GroupByKey(combined, numPartitions)
	return MapValues(grouped, func(vs []V) V {
		acc := vs[0]
		for _, v := range vs[1:] {
			acc = combine(acc, v)
		}
		return acc
	})
}

// AggregateByKey folds values per key into an accumulator type.
func AggregateByKey[K comparable, V, A any](r *RDD[KV[K, V]], zero func() A,
	seq func(A, V) A, comb func(A, A) A, numPartitions int) *RDD[KV[K, A]] {
	partial := MapPartitions(r, func(in []KV[K, V]) ([]KV[K, A], error) {
		acc := make(map[K]A)
		var order []K
		for _, kv := range in {
			a, seen := acc[kv.Key]
			if !seen {
				a = zero()
				order = append(order, kv.Key)
			}
			acc[kv.Key] = seq(a, kv.Value)
		}
		out := make([]KV[K, A], 0, len(order))
		for _, k := range order {
			out = append(out, KV[K, A]{Key: k, Value: acc[k]})
		}
		return out, nil
	})
	grouped := GroupByKey(partial, numPartitions)
	return MapValues(grouped, func(as []A) A {
		acc := as[0]
		for _, a := range as[1:] {
			acc = comb(acc, a)
		}
		return acc
	})
}

// CoGroup shuffles both RDDs to the same partitioning and groups the
// values of each side per key.
func CoGroup[K comparable, V, W any](a *RDD[KV[K, V]], b *RDD[KV[K, W]], numPartitions int) *RDD[KV[K, CoGrouped[V, W]]] {
	if numPartitions < 1 {
		numPartitions = a.ctx.DefaultPartitions()
	}
	left := PartitionBy(a, numPartitions)
	right := PartitionBy(b, numPartitions)
	prepare := func() error {
		if err := left.prepare(); err != nil {
			return err
		}
		return right.prepare()
	}
	return newRDD(a.ctx, "cogroup", numPartitions, prepare, func(p int, tc *TaskContext) ([]KV[K, CoGrouped[V, W]], error) {
		lvs, err := left.partition(p, tc)
		if err != nil {
			return nil, err
		}
		rvs, err := right.partition(p, tc)
		if err != nil {
			return nil, err
		}
		groups := make(map[K]*CoGrouped[V, W])
		var order []K
		for _, kv := range lvs {
			g, seen := groups[kv.Key]
			if !seen {
				g = &CoGrouped[V, W]{}
				groups[kv.Key] = g
				order = append(order, kv.Key)
			}
			g.Left = append(g.Left, kv.Value)
		}
		for _, kv := range rvs {
			g, seen := groups[kv.Key]
			if !seen {
				g = &CoGrouped[V, W]{}
				groups[kv.Key] = g
				order = append(order, kv.Key)
			}
			g.Right = append(g.Right, kv.Value)
		}
		out := make([]KV[K, CoGrouped[V, W]], 0, len(order))
		for _, k := range order {
			out = append(out, KV[K, CoGrouped[V, W]]{Key: k, Value: *groups[k]})
		}
		return out, nil
	})
}

// Join computes the inner join of two keyed RDDs.
func Join[K comparable, V, W any](a *RDD[KV[K, V]], b *RDD[KV[K, W]], numPartitions int) *RDD[KV[K, Pair[V, W]]] {
	cg := CoGroup(a, b, numPartitions)
	return FlatMap(cg, func(kv KV[K, CoGrouped[V, W]]) []KV[K, Pair[V, W]] {
		var out []KV[K, Pair[V, W]]
		for _, v := range kv.Value.Left {
			for _, w := range kv.Value.Right {
				out = append(out, KV[K, Pair[V, W]]{Key: kv.Key, Value: Pair[V, W]{A: v, B: w}})
			}
		}
		return out
	})
}

// Distinct removes duplicate elements (requires comparable elements).
func Distinct[T comparable](r *RDD[T], numPartitions int) *RDD[T] {
	keyed := Map(r, func(v T) KV[T, struct{}] { return KV[T, struct{}]{Key: v} })
	grouped := GroupByKey(keyed, numPartitions)
	return Map(grouped, func(kv KV[T, []struct{}]) T { return kv.Key })
}

// CountByKey returns a map from key to occurrence count, computed on the
// driver after a map-side combine.
func CountByKey[K comparable, V any](r *RDD[KV[K, V]]) (map[K]int64, error) {
	ones := MapValues(r, func(V) int64 { return 1 })
	counted := ReduceByKey(ones, func(a, b int64) int64 { return a + b }, 0)
	kvs, err := counted.Collect()
	if err != nil {
		return nil, err
	}
	out := make(map[K]int64, len(kvs))
	for _, kv := range kvs {
		out[kv.Key] = kv.Value
	}
	return out, nil
}

// CollectAsMap collects a keyed RDD into a map (later duplicates win).
func CollectAsMap[K comparable, V any](r *RDD[KV[K, V]]) (map[K]V, error) {
	kvs, err := r.Collect()
	if err != nil {
		return nil, err
	}
	out := make(map[K]V, len(kvs))
	for _, kv := range kvs {
		out[kv.Key] = kv.Value
	}
	return out, nil
}
