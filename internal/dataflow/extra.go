package dataflow

import "math"

// Additional Spark-surface operations used by ER workloads beyond the
// core set in rdd.go / pair.go.

// LeftOuterJoin joins two keyed RDDs keeping every left record; the right
// side of the pair reports presence explicitly.
type Optional[T any] struct {
	Present bool
	Value   T
}

// LeftOuterJoin computes the left outer join of two keyed RDDs.
func LeftOuterJoin[K comparable, V, W any](a *RDD[KV[K, V]], b *RDD[KV[K, W]], numPartitions int) *RDD[KV[K, Pair[V, Optional[W]]]] {
	cg := CoGroup(a, b, numPartitions)
	return FlatMap(cg, func(kv KV[K, CoGrouped[V, W]]) []KV[K, Pair[V, Optional[W]]] {
		var out []KV[K, Pair[V, Optional[W]]]
		for _, v := range kv.Value.Left {
			if len(kv.Value.Right) == 0 {
				out = append(out, KV[K, Pair[V, Optional[W]]]{
					Key: kv.Key, Value: Pair[V, Optional[W]]{A: v},
				})
				continue
			}
			for _, w := range kv.Value.Right {
				out = append(out, KV[K, Pair[V, Optional[W]]]{
					Key: kv.Key, Value: Pair[V, Optional[W]]{A: v, B: Optional[W]{Present: true, Value: w}},
				})
			}
		}
		return out
	})
}

// Cartesian computes the cross product of two RDDs. The left operand is
// materialised and broadcast, so keep it the smaller side — exactly the
// discipline Spark programmers apply.
func Cartesian[A, B any](a *RDD[A], b *RDD[B]) (*RDD[Pair[A, B]], error) {
	left, err := a.Collect()
	if err != nil {
		return nil, err
	}
	bl := NewBroadcast(a.ctx, left)
	return FlatMap(b, func(x B) []Pair[A, B] {
		ls := bl.Value()
		out := make([]Pair[A, B], len(ls))
		for i, l := range ls {
			out[i] = Pair[A, B]{A: l, B: x}
		}
		return out
	}), nil
}

// ZipWithIndex pairs every element with its global ordinal (partition
// order), like Spark's zipWithIndex. It materialises partition sizes
// first, which costs one extra pass.
func ZipWithIndex[T any](r *RDD[T]) *RDD[KV[int64, T]] {
	// Partition sizes are computed lazily at prepare time so lineage stays
	// intact.
	type state struct {
		offsets []int64
		err     error
		done    bool
	}
	st := &state{}
	prepare := func() error {
		if err := r.prepare(); err != nil {
			return err
		}
		if st.done {
			return st.err
		}
		st.done = true
		sizes := make([]int64, r.parts)
		err := r.ctx.runStage(r.parts, func(tc *TaskContext) error {
			data, err := r.partition(tc.Partition, tc)
			if err != nil {
				return err
			}
			sizes[tc.Partition] = int64(len(data))
			return nil
		})
		if err != nil {
			st.err = err
			return err
		}
		st.offsets = make([]int64, r.parts)
		var total int64
		for i, n := range sizes {
			st.offsets[i] = total
			total += n
		}
		return nil
	}
	return newRDD(r.ctx, r.name+".zipWithIndex", r.parts, prepare, func(p int, tc *TaskContext) ([]KV[int64, T], error) {
		if st.err != nil {
			return nil, st.err
		}
		data, err := r.partition(p, tc)
		if err != nil {
			return nil, err
		}
		out := make([]KV[int64, T], len(data))
		for i, v := range data {
			out[i] = KV[int64, T]{Key: st.offsets[p] + int64(i), Value: v}
		}
		return out, nil
	})
}

// Fold aggregates with a zero value and a single combining function.
// Exactly like Spark's fold, the zero value is applied once per partition
// and once more when merging the partials, so it must be the identity of
// combine (0 for addition, 1 for multiplication) or the result is
// inflated.
func Fold[T any](r *RDD[T], zero T, combine func(T, T) T) (T, error) {
	return Aggregate(r,
		func() T { return zero },
		combine,
		combine)
}

// MaxBy returns the element maximising key; errors on an empty RDD.
func MaxBy[T any](r *RDD[T], less func(a, b T) bool) (T, error) {
	return Reduce(r, func(a, b T) T {
		if less(a, b) {
			return b
		}
		return a
	})
}

// CountApproxDistinct estimates the number of distinct elements with a
// simple fixed-width linear counting over hashed values. It exists so
// profile-scale statistics (distinct token counts) do not need a full
// shuffle; the estimate is within a few percent for cardinalities well
// below the register count.
func CountApproxDistinct[T comparable](r *RDD[T], registers int) (int64, error) {
	if registers < 1024 {
		registers = 1024
	}
	type bitmapT = []uint64
	words := (registers + 63) / 64
	agg, err := Aggregate(r,
		func() bitmapT { return make(bitmapT, words) },
		func(bm bitmapT, v T) bitmapT {
			h := hashKey(v, registers)
			bm[h/64] |= 1 << (h % 64)
			return bm
		},
		func(a, b bitmapT) bitmapT {
			for i := range a {
				a[i] |= b[i]
			}
			return a
		})
	if err != nil {
		return 0, err
	}
	ones := 0
	for _, w := range agg {
		for ; w != 0; w &= w - 1 {
			ones++
		}
	}
	if ones >= registers {
		ones = registers - 1
	}
	// Linear counting estimator: n ≈ -m * ln(1 - ones/m).
	m := float64(registers)
	frac := 1 - float64(ones)/m
	est := -m * ln(frac)
	return int64(est + 0.5), nil
}

// ln guards math.Log against the all-registers-set edge case.
func ln(x float64) float64 {
	if x <= 0 {
		return -1e308
	}
	return math.Log(x)
}
