package dataflow

import (
	"errors"
	"fmt"
	"reflect"
	"sort"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func newTestContext(t testing.TB, workers int) *Context {
	t.Helper()
	ctx := NewContext(WithParallelism(workers))
	t.Cleanup(ctx.Close)
	return ctx
}

func intsUpTo(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func TestParallelizeCollectRoundTrip(t *testing.T) {
	ctx := newTestContext(t, 4)
	for _, n := range []int{0, 1, 2, 7, 100, 1000} {
		data := intsUpTo(n)
		rdd := Parallelize(ctx, data, 8)
		got, err := rdd.Collect()
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if len(got) != n {
			t.Fatalf("n=%d: got %d elements", n, len(got))
		}
		if n > 0 && !reflect.DeepEqual(got, data) {
			t.Fatalf("n=%d: round trip mismatch", n)
		}
	}
}

func TestParallelizePartitionCountClamped(t *testing.T) {
	ctx := newTestContext(t, 4)
	r := Parallelize(ctx, []int{1, 2, 3}, 100)
	if r.NumPartitions() > 3 {
		t.Fatalf("partitions=%d, want <=3", r.NumPartitions())
	}
	empty := Parallelize[int](ctx, nil, 5)
	if empty.NumPartitions() != 1 {
		t.Fatalf("empty partitions=%d, want 1", empty.NumPartitions())
	}
}

func TestMapFilterPipeline(t *testing.T) {
	ctx := newTestContext(t, 4)
	r := Parallelize(ctx, intsUpTo(100), 7)
	sq := Map(r, func(x int) int { return x * x })
	even := Filter(sq, func(x int) bool { return x%2 == 0 })
	got, err := even.Collect()
	if err != nil {
		t.Fatal(err)
	}
	var want []int
	for i := 0; i < 100; i++ {
		if (i*i)%2 == 0 {
			want = append(want, i*i)
		}
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v want %v", got[:5], want[:5])
	}
}

func TestFlatMap(t *testing.T) {
	ctx := newTestContext(t, 2)
	r := Parallelize(ctx, []string{"a b", "c", ""}, 2)
	words := FlatMap(r, func(s string) []string {
		if s == "" {
			return nil
		}
		var out []string
		start := 0
		for i := 0; i <= len(s); i++ {
			if i == len(s) || s[i] == ' ' {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
		return out
	})
	got, err := words.Collect()
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"a", "b", "c"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
}

func TestMapPartitionsWithIndexCoversAllPartitions(t *testing.T) {
	ctx := newTestContext(t, 4)
	r := Parallelize(ctx, intsUpTo(40), 5)
	idx := MapPartitionsWithIndex(r, func(p int, in []int) ([]int, error) {
		return []int{p, len(in)}, nil
	})
	got, err := idx.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 {
		t.Fatalf("got %v", got)
	}
	total := 0
	for i := 1; i < len(got); i += 2 {
		total += got[i]
	}
	if total != 40 {
		t.Fatalf("partition sizes sum to %d, want 40", total)
	}
}

func TestCountAndReduce(t *testing.T) {
	ctx := newTestContext(t, 4)
	r := Parallelize(ctx, intsUpTo(101), 6)
	n, err := r.Count()
	if err != nil || n != 101 {
		t.Fatalf("count=%d err=%v", n, err)
	}
	sum, err := Reduce(r, func(a, b int) int { return a + b })
	if err != nil {
		t.Fatal(err)
	}
	if sum != 5050 {
		t.Fatalf("sum=%d want 5050", sum)
	}
}

func TestReduceEmptyErrors(t *testing.T) {
	ctx := newTestContext(t, 2)
	r := Empty[int](ctx)
	if _, err := Reduce(r, func(a, b int) int { return a + b }); err == nil {
		t.Fatal("want error on empty reduce")
	}
}

func TestAggregate(t *testing.T) {
	ctx := newTestContext(t, 4)
	r := Parallelize(ctx, intsUpTo(50), 5)
	type stats struct {
		n   int
		sum int
	}
	got, err := Aggregate(r,
		func() stats { return stats{} },
		func(a stats, v int) stats { return stats{a.n + 1, a.sum + v} },
		func(a, b stats) stats { return stats{a.n + b.n, a.sum + b.sum} })
	if err != nil {
		t.Fatal(err)
	}
	if got.n != 50 || got.sum != 1225 {
		t.Fatalf("got %+v", got)
	}
}

func TestUnion(t *testing.T) {
	ctx := newTestContext(t, 2)
	a := Parallelize(ctx, []int{1, 2}, 2)
	b := Parallelize(ctx, []int{3, 4, 5}, 2)
	got, err := Union(a, b).Collect()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []int{1, 2, 3, 4, 5}) {
		t.Fatalf("got %v", got)
	}
}

func TestTakeFirst(t *testing.T) {
	ctx := newTestContext(t, 2)
	r := Parallelize(ctx, intsUpTo(10), 3)
	got, err := r.Take(3)
	if err != nil || !reflect.DeepEqual(got, []int{0, 1, 2}) {
		t.Fatalf("take got %v err %v", got, err)
	}
	first, err := r.First()
	if err != nil || first != 0 {
		t.Fatalf("first got %v err %v", first, err)
	}
	if _, err := Empty[int](ctx).First(); err == nil {
		t.Fatal("want error on First of empty RDD")
	}
}

func TestTakeScansIncrementally(t *testing.T) {
	ctx := newTestContext(t, 4)
	// 100 elements over 10 partitions: Take(5) must be satisfied by the
	// first partition alone, so the Map below should never see the rest.
	var processed atomic.Int64
	r := Map(Parallelize(ctx, intsUpTo(100), 10), func(v int) int {
		processed.Add(1)
		return v
	})
	got, err := r.Take(5)
	if err != nil || !reflect.DeepEqual(got, []int{0, 1, 2, 3, 4}) {
		t.Fatalf("take got %v err %v", got, err)
	}
	if n := processed.Load(); n >= 100 {
		t.Fatalf("Take materialised all %d elements; want an incremental scan", n)
	}
	// Larger n spans several ramp-up rounds but still stops early.
	processed.Store(0)
	got, err = r.Take(35)
	if err != nil || len(got) != 35 {
		t.Fatalf("take(35) got %d elements err %v", len(got), err)
	}
	if n := processed.Load(); n >= 100 {
		t.Fatalf("Take(35) materialised all %d elements", n)
	}
	// Oversized and non-positive n degrade gracefully.
	if got, err := r.Take(1000); err != nil || len(got) != 100 {
		t.Fatalf("take(1000) got %d err %v", len(got), err)
	}
	if got, err := r.Take(0); err != nil || len(got) != 0 {
		t.Fatalf("take(0) got %v err %v", got, err)
	}
}

func TestCoalesce(t *testing.T) {
	ctx := newTestContext(t, 4)
	r := Parallelize(ctx, intsUpTo(20), 8)
	c := Coalesce(r, 3)
	if c.NumPartitions() != 3 {
		t.Fatalf("partitions=%d", c.NumPartitions())
	}
	got, err := c.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, intsUpTo(20)) {
		t.Fatalf("coalesce reordered data: %v", got)
	}
}

func TestSampleDeterministic(t *testing.T) {
	ctx := newTestContext(t, 4)
	r := Parallelize(ctx, intsUpTo(1000), 4)
	s1, err := Sample(r, 0.1, 42).Collect()
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Sample(r, 0.1, 42).Collect()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s1, s2) {
		t.Fatal("same seed produced different samples")
	}
	if len(s1) < 50 || len(s1) > 200 {
		t.Fatalf("sample size %d implausible for 10%% of 1000", len(s1))
	}
}

func TestPersistComputesOnce(t *testing.T) {
	ctx := newTestContext(t, 4)
	var calls atomic.Int64
	r := Parallelize(ctx, intsUpTo(10), 2)
	counted := Map(r, func(x int) int {
		calls.Add(1)
		return x
	}).Persist()
	if _, err := counted.Collect(); err != nil {
		t.Fatal(err)
	}
	if _, err := counted.Count(); err != nil {
		t.Fatal(err)
	}
	if got := calls.Load(); got != 10 {
		t.Fatalf("map ran %d times, want 10 (cached)", got)
	}
}

func TestErrorPropagatesFromTask(t *testing.T) {
	ctx := newTestContext(t, 2)
	r := Parallelize(ctx, intsUpTo(10), 2)
	boom := errors.New("boom")
	bad := MapPartitions(r, func(in []int) ([]int, error) {
		if len(in) > 0 && in[0] == 0 {
			return nil, boom
		}
		return in, nil
	})
	_, err := bad.Collect()
	if err == nil || !errors.Is(err, boom) {
		t.Fatalf("err=%v, want wrapped boom", err)
	}
}

func TestPanicInTaskBecomesError(t *testing.T) {
	ctx := newTestContext(t, 2)
	r := Parallelize(ctx, intsUpTo(4), 2)
	bad := Map(r, func(x int) int {
		if x == 2 {
			panic("kaboom")
		}
		return x
	})
	if _, err := bad.Collect(); err == nil {
		t.Fatal("want panic converted to error")
	}
}

func TestResultsIdenticalAcrossWorkerCounts(t *testing.T) {
	var reference []int
	for _, workers := range []int{1, 2, 4, 8} {
		ctx := NewContext(WithParallelism(workers))
		r := Parallelize(ctx, intsUpTo(500), workers*2)
		sq := Map(r, func(x int) int { return x * 3 })
		odd := Filter(sq, func(x int) bool { return x%2 == 1 })
		got, err := odd.Collect()
		ctx.Close()
		if err != nil {
			t.Fatal(err)
		}
		if reference == nil {
			reference = got
			continue
		}
		if !reflect.DeepEqual(got, reference) {
			t.Fatalf("workers=%d produced different output", workers)
		}
	}
}

func TestQuickMapIdentityPreservesData(t *testing.T) {
	ctx := newTestContext(t, 4)
	f := func(data []int32, parts uint8) bool {
		np := int(parts%7) + 1
		r := Parallelize(ctx, data, np)
		got, err := Map(r, func(x int32) int32 { return x }).Collect()
		if err != nil {
			return false
		}
		if len(data) == 0 {
			return len(got) == 0
		}
		return reflect.DeepEqual(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickCountMatchesLen(t *testing.T) {
	ctx := newTestContext(t, 3)
	f := func(data []string) bool {
		r := Parallelize(ctx, data, 4)
		n, err := r.Count()
		return err == nil && n == int64(len(data))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickReduceSumMatchesSequential(t *testing.T) {
	ctx := newTestContext(t, 4)
	f := func(data []int16) bool {
		if len(data) == 0 {
			return true
		}
		var want int64
		ints := make([]int64, len(data))
		for i, v := range data {
			ints[i] = int64(v)
			want += int64(v)
		}
		r := Parallelize(ctx, ints, 5)
		got, err := Reduce(r, func(a, b int64) int64 { return a + b })
		return err == nil && got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestSortBy(t *testing.T) {
	ctx := newTestContext(t, 4)
	data := make([]int, 0, 500)
	for i := 0; i < 500; i++ {
		data = append(data, (i*7919)%500)
	}
	r := Parallelize(ctx, data, 8)
	sorted, err := SortBy(r, func(x int) int { return x }, 4).Collect()
	if err != nil {
		t.Fatal(err)
	}
	if !sort.IntsAreSorted(sorted) {
		t.Fatal("output not sorted")
	}
	if len(sorted) != 500 {
		t.Fatalf("lost records: %d", len(sorted))
	}
}

func TestSortByEmpty(t *testing.T) {
	ctx := newTestContext(t, 2)
	got, err := SortBy(Empty[int](ctx), func(x int) int { return x }, 4).Collect()
	if err != nil || len(got) != 0 {
		t.Fatalf("got %v err %v", got, err)
	}
}

func TestTop(t *testing.T) {
	ctx := newTestContext(t, 4)
	r := Parallelize(ctx, intsUpTo(100), 8)
	top, err := Top(r, 3, func(x int) int { return x })
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(top, []int{99, 98, 97}) {
		t.Fatalf("got %v", top)
	}
}

func TestContextClosedRejectsJobs(t *testing.T) {
	ctx := NewContext(WithParallelism(2))
	r := Parallelize(ctx, intsUpTo(4), 2)
	ctx.Close()
	if _, err := r.Collect(); err == nil {
		t.Fatal("want error after Close")
	}
}

func TestMetricsCountTasks(t *testing.T) {
	ctx := newTestContext(t, 2)
	r := Parallelize(ctx, intsUpTo(16), 4)
	if _, err := Map(r, func(x int) int { return x }).Collect(); err != nil {
		t.Fatal(err)
	}
	m := ctx.Metrics()
	if m.TasksLaunched != 4 {
		t.Fatalf("tasks=%d want 4", m.TasksLaunched)
	}
	if m.JobsRun != 1 || m.StagesRun != 1 {
		t.Fatalf("jobs=%d stages=%d", m.JobsRun, m.StagesRun)
	}
	ctx.ResetMetrics()
	if ctx.Metrics().TasksLaunched != 0 {
		t.Fatal("reset failed")
	}
}

func ExampleMap() {
	ctx := NewContext(WithParallelism(2))
	defer ctx.Close()
	r := Parallelize(ctx, []int{1, 2, 3}, 2)
	doubled, _ := Map(r, func(x int) int { return 2 * x }).Collect()
	fmt.Println(doubled)
	// Output: [2 4 6]
}
