package dataflow

import (
	"strings"
	"testing"
)

func TestFaultInjectionRecovers(t *testing.T) {
	// A 30% attempt-failure rate with 3 attempts per task makes every task
	// overwhelmingly likely to finish; the cap makes it certain eventually.
	ctx := NewContext(
		WithParallelism(4),
		WithMaxTaskAttempts(5),
		WithFaultInjection(0.3, 7, 20),
	)
	defer ctx.Close()

	r := Parallelize(ctx, intsUpTo(1000), 16)
	sum, err := Reduce(Map(r, func(x int) int { return x }), func(a, b int) int { return a + b })
	if err != nil {
		t.Fatalf("job failed despite retries: %v", err)
	}
	if sum != 999*1000/2 {
		t.Fatalf("sum=%d: retried tasks must produce identical results", sum)
	}
	m := ctx.Metrics()
	if m.TasksFailed == 0 {
		t.Fatal("fault injector never fired; test is vacuous")
	}
	if m.TasksRetried == 0 {
		t.Fatal("no retries recorded")
	}
}

func TestFaultInjectionExhaustsAttempts(t *testing.T) {
	// 100% failure rate with no cap: the job must fail with a task error.
	ctx := NewContext(
		WithParallelism(2),
		WithMaxTaskAttempts(2),
		WithFaultInjection(1.0, 1, 0),
	)
	defer ctx.Close()

	r := Parallelize(ctx, intsUpTo(10), 2)
	_, err := r.Collect()
	if err == nil {
		t.Fatal("want failure when every attempt is killed")
	}
	if !strings.Contains(err.Error(), "injected fault") {
		t.Fatalf("unexpected error: %v", err)
	}
	if got := ctx.Metrics().TasksFailed; got < 2 {
		t.Fatalf("failed tasks=%d", got)
	}
}

func TestFaultCapLimitsInjection(t *testing.T) {
	ctx := NewContext(
		WithParallelism(2),
		WithMaxTaskAttempts(10),
		WithFaultInjection(1.0, 3, 4), // fail only the first 4 attempts overall
	)
	defer ctx.Close()

	r := Parallelize(ctx, intsUpTo(100), 8)
	n, err := r.Count()
	if err != nil {
		t.Fatalf("job should succeed once cap is reached: %v", err)
	}
	if n != 100 {
		t.Fatalf("count=%d", n)
	}
	if got := ctx.Metrics().TasksFailed; got != 4 {
		t.Fatalf("injected failures=%d, want exactly 4", got)
	}
}

func TestShuffleSurvivesFaults(t *testing.T) {
	ctx := NewContext(
		WithParallelism(4),
		WithMaxTaskAttempts(6),
		WithFaultInjection(0.25, 11, 30),
	)
	defer ctx.Close()

	var pairs []KV[int, int]
	for i := 0; i < 500; i++ {
		pairs = append(pairs, KV[int, int]{Key: i % 13, Value: 1})
	}
	r := Parallelize(ctx, pairs, 8)
	counts, err := CollectAsMap(ReduceByKey(r, func(a, b int) int { return a + b }, 4))
	if err != nil {
		t.Fatalf("shuffle job failed: %v", err)
	}
	total := 0
	for _, v := range counts {
		total += v
	}
	if total != 500 {
		t.Fatalf("records lost or duplicated under faults: total=%d", total)
	}
}
