package metablocking

import (
	"fmt"
	"math"
	"reflect"
	"testing"
	"testing/quick"

	"sparker/internal/blocking"
	"sparker/internal/dataflow"
	"sparker/internal/profile"
)

// testIndex builds a deterministic block index over n dirty profiles with
// pseudo-random token blocks, for cross-implementation comparisons.
func testIndex(n int, seed int64) *blocking.Index {
	next := uint64(seed)*2654435761 + 1
	rnd := func(mod int) int {
		next = next*6364136223846793005 + 1442695040888963407
		return int((next >> 33) % uint64(mod))
	}
	numTokens := n/2 + 3
	members := make(map[int][]profile.ID)
	for id := 0; id < n; id++ {
		k := 2 + rnd(4)
		seen := map[int]bool{}
		for j := 0; j < k; j++ {
			tok := rnd(numTokens)
			if !seen[tok] {
				seen[tok] = true
				members[tok] = append(members[tok], profile.ID(id))
			}
		}
	}
	col := &blocking.Collection{NumProfiles: n}
	for tok := 0; tok < numTokens; tok++ {
		ids := members[tok]
		if len(ids) < 2 {
			continue
		}
		col.Blocks = append(col.Blocks, blocking.Block{Key: fmt.Sprintf("t%d", tok), ClusterID: blocking.NoCluster, A: ids})
	}
	return blocking.BuildIndex(col)
}

func allSchemes() []Scheme { return []Scheme{CBS, ECBS, JS, EJS, ARCS} }

func allPrunings() []Pruning {
	return []Pruning{WEP, CEP, WNP, ReciprocalWNP, CNP, ReciprocalCNP, BlastPruning}
}

func TestSchemeAndPruningNames(t *testing.T) {
	for _, s := range allSchemes() {
		if s.String() == "unknown" {
			t.Fatalf("scheme %d unnamed", s)
		}
	}
	for _, p := range allPrunings() {
		if p.String() == "unknown" {
			t.Fatalf("pruning %d unnamed", p)
		}
	}
	if Scheme(99).String() != "unknown" || Pruning(99).String() != "unknown" {
		t.Fatal("out-of-range names")
	}
}

func TestRunProducesCanonicalEdges(t *testing.T) {
	idx := testIndex(30, 1)
	for _, s := range allSchemes() {
		for _, p := range allPrunings() {
			edges := Run(idx, Options{Scheme: s, Pruning: p})
			seen := map[[2]profile.ID]bool{}
			for _, e := range edges {
				if e.A >= e.B {
					t.Fatalf("%v/%v: non-canonical edge %+v", s, p, e)
				}
				key := [2]profile.ID{e.A, e.B}
				if seen[key] {
					t.Fatalf("%v/%v: duplicate edge %+v", s, p, e)
				}
				seen[key] = true
				if e.Weight <= 0 {
					t.Fatalf("%v/%v: non-positive weight %+v", s, p, e)
				}
			}
		}
	}
}

func TestPruningReducesEdges(t *testing.T) {
	idx := testIndex(40, 2)
	g := newGraphContext(idx, Options{Scheme: CBS})
	total := 0
	forEachEdge(g, idx.ProfileIDs(), func(_, _ profile.ID, _ float64) { total++ })
	for _, p := range allPrunings() {
		// Use the continuous JS weights: CBS weights on this dense toy
		// graph are small integers whose ties make threshold rules
		// (legitimately) keep everything.
		opts := Options{Scheme: JS, Pruning: p}
		if p == CEP {
			// CEP's literature default K is BC/2, which here exceeds the
			// edge count; give it a real budget.
			opts.TopK = total / 2
		}
		edges := Run(idx, opts)
		if len(edges) == 0 {
			t.Fatalf("%v retained nothing", p)
		}
		if len(edges) >= total {
			t.Fatalf("%v retained all %d edges", p, total)
		}
	}
}

func TestReciprocalStricter(t *testing.T) {
	idx := testIndex(40, 3)
	wnp := Run(idx, Options{Scheme: JS, Pruning: WNP})
	rwnp := Run(idx, Options{Scheme: JS, Pruning: ReciprocalWNP})
	if len(rwnp) > len(wnp) {
		t.Fatalf("reciprocal WNP kept %d > WNP %d", len(rwnp), len(wnp))
	}
	asSet := func(es []Edge) map[[2]profile.ID]bool {
		m := map[[2]profile.ID]bool{}
		for _, e := range es {
			m[[2]profile.ID{e.A, e.B}] = true
		}
		return m
	}
	w := asSet(wnp)
	for k := range asSet(rwnp) {
		if !w[k] {
			t.Fatalf("reciprocal edge %v not kept by plain WNP", k)
		}
	}
}

func TestCEPRespectsTopK(t *testing.T) {
	idx := testIndex(40, 4)
	edges := Run(idx, Options{Scheme: CBS, Pruning: CEP, TopK: 5})
	// Ties at the k-th weight may exceed K slightly, never by more than the
	// tie class size; sanity-bound it.
	if len(edges) < 5 {
		t.Fatalf("CEP kept %d < K", len(edges))
	}
	minKept := math.Inf(1)
	for _, e := range edges {
		if e.Weight < minKept {
			minKept = e.Weight
		}
	}
	// Every non-kept edge must weigh strictly less than the threshold.
	g := newGraphContext(idx, Options{Scheme: CBS})
	forEachEdge(g, idx.ProfileIDs(), func(a, b profile.ID, w float64) {
		if w > minKept {
			found := false
			for _, e := range edges {
				if e.A == a && e.B == b {
					found = true
				}
			}
			if !found {
				t.Fatalf("edge (%d,%d) w=%f above threshold %f but dropped", a, b, w, minKept)
			}
		}
	})
}

func TestCleanCleanSkipsSameSourceEdges(t *testing.T) {
	col := &blocking.Collection{CleanClean: true, NumProfiles: 4}
	col.Blocks = append(col.Blocks, blocking.Block{
		Key: "t", CleanClean: true,
		A: []profile.ID{0, 1}, B: []profile.ID{2, 3},
	})
	idx := blocking.BuildIndex(col)
	edges := Run(idx, Options{Scheme: CBS, Pruning: WEP})
	for _, e := range edges {
		if (e.A < 2) == (e.B < 2) {
			t.Fatalf("same-source edge retained: %+v", e)
		}
	}
	if len(edges) != 4 {
		t.Fatalf("got %d edges, want 4 cross-source", len(edges))
	}
}

func TestEntropyWeightingChangesWeights(t *testing.T) {
	idx := testIndex(30, 5)
	flat := Run(idx, Options{Scheme: CBS, Pruning: WEP})
	ent := Run(idx, Options{Scheme: CBS, Pruning: WEP, Entropy: constEntropy(2.5)})
	if len(flat) != len(ent) {
		// Constant entropy scales all weights uniformly: pruning decisions
		// must be identical.
		t.Fatalf("uniform entropy changed pruning: %d vs %d", len(flat), len(ent))
	}
	for i := range flat {
		if math.Abs(ent[i].Weight-2.5*flat[i].Weight) > 1e-9 {
			t.Fatalf("edge %d: %f != 2.5*%f", i, ent[i].Weight, flat[i].Weight)
		}
	}
}

type constEntropy float64

func (c constEntropy) EntropyOf(int) float64 { return float64(c) }

func TestEJSUsesDegrees(t *testing.T) {
	idx := testIndex(30, 6)
	js := Run(idx, Options{Scheme: JS, Pruning: WEP})
	ejs := Run(idx, Options{Scheme: EJS, Pruning: WEP})
	if reflect.DeepEqual(js, ejs) {
		t.Fatal("EJS identical to JS; degree factor not applied")
	}
}

func TestARCSFavoursSmallBlocks(t *testing.T) {
	// Two blocks: tiny {0,1} and huge {0,2,...,11}. ARCS must weigh the
	// tiny co-occurrence higher.
	col := &blocking.Collection{NumProfiles: 12}
	big := make([]profile.ID, 0, 11)
	big = append(big, 0)
	for i := 2; i < 12; i++ {
		big = append(big, profile.ID(i))
	}
	col.Blocks = []blocking.Block{
		{Key: "tiny", A: []profile.ID{0, 1}},
		{Key: "huge", A: big},
	}
	idx := blocking.BuildIndex(col)
	g := newGraphContext(idx, Options{Scheme: ARCS})
	weights := map[[2]profile.ID]float64{}
	forEachEdge(g, idx.ProfileIDs(), func(a, b profile.ID, w float64) {
		weights[[2]profile.ID{a, b}] = w
	})
	if weights[[2]profile.ID{0, 1}] <= weights[[2]profile.ID{0, 2}] {
		t.Fatalf("tiny-block edge %f not above huge-block edge %f",
			weights[[2]profile.ID{0, 1}], weights[[2]profile.ID{0, 2}])
	}
}

// TestDistributedMatchesSequential is the central equivalence claim of
// the parallel algorithm: identical output to the reference for every
// scheme and pruning rule, at several executor counts.
func TestDistributedMatchesSequential(t *testing.T) {
	idx := testIndex(50, 7)
	for _, workers := range []int{1, 3} {
		ctx := dataflow.NewContext(dataflow.WithParallelism(workers))
		for _, s := range allSchemes() {
			for _, p := range allPrunings() {
				seq := Run(idx, Options{Scheme: s, Pruning: p})
				dist, err := RunDistributed(ctx, idx, Options{Scheme: s, Pruning: p}, workers*2)
				if err != nil {
					t.Fatalf("%v/%v: %v", s, p, err)
				}
				if !edgesEqual(seq, dist) {
					t.Fatalf("workers=%d %v/%v: distributed diverges from sequential\nseq  %v\ndist %v",
						workers, s, p, seq, dist)
				}
			}
		}
		ctx.Close()
	}
}

func edgesEqual(a, b []Edge) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].A != b[i].A || a[i].B != b[i].B || math.Abs(a[i].Weight-b[i].Weight) > 1e-9 {
			return false
		}
	}
	return true
}

func TestNaiveBaselineMatchesBroadcast(t *testing.T) {
	idx := testIndex(40, 8)
	ctx := dataflow.NewContext(dataflow.WithParallelism(2))
	defer ctx.Close()
	for _, s := range []Scheme{CBS, ARCS} {
		seq := Run(idx, Options{Scheme: s, Pruning: WEP})
		naive, err := RunNaiveDistributed(ctx, idx, Options{Scheme: s, Pruning: WEP}, 4)
		if err != nil {
			t.Fatal(err)
		}
		if !edgesEqual(seq, naive) {
			t.Fatalf("%v: naive baseline diverges", s)
		}
	}
}

func TestNaiveBaselineRejectsUnsupported(t *testing.T) {
	idx := testIndex(10, 9)
	ctx := dataflow.NewContext(dataflow.WithParallelism(1))
	defer ctx.Close()
	if _, err := RunNaiveDistributed(ctx, idx, Options{Scheme: JS, Pruning: WEP}, 2); err == nil {
		t.Fatal("want error for JS")
	}
	if _, err := RunNaiveDistributed(ctx, idx, Options{Scheme: CBS, Pruning: CNP}, 2); err == nil {
		t.Fatal("want error for CNP")
	}
}

func TestNaiveShufflesMoreThanBroadcast(t *testing.T) {
	// The design claim of the broadcast-join algorithm: the naive plan
	// pushes the materialised comparisons through the shuffle, the
	// broadcast plan does not.
	idx := testIndex(60, 10)

	ctx1 := dataflow.NewContext(dataflow.WithParallelism(2))
	if _, err := RunDistributed(ctx1, idx, Options{Scheme: CBS, Pruning: WEP}, 4); err != nil {
		t.Fatal(err)
	}
	broadcastShuffle := ctx1.Metrics().ShuffleRecords
	ctx1.Close()

	ctx2 := dataflow.NewContext(dataflow.WithParallelism(2))
	if _, err := RunNaiveDistributed(ctx2, idx, Options{Scheme: CBS, Pruning: WEP}, 4); err != nil {
		t.Fatal(err)
	}
	naiveShuffle := ctx2.Metrics().ShuffleRecords
	ctx2.Close()

	if naiveShuffle <= broadcastShuffle {
		t.Fatalf("naive shuffled %d records, broadcast %d; expected naive >> broadcast",
			naiveShuffle, broadcastShuffle)
	}
}

func TestQuickDistributedEqualsSequentialWEP(t *testing.T) {
	ctx := dataflow.NewContext(dataflow.WithParallelism(3))
	defer ctx.Close()
	f := func(seed int64, sizeByte uint8) bool {
		n := 10 + int(sizeByte%30)
		idx := testIndex(n, seed)
		seq := Run(idx, Options{Scheme: JS, Pruning: WNP})
		dist, err := RunDistributed(ctx, idx, Options{Scheme: JS, Pruning: WNP}, 3)
		if err != nil {
			return false
		}
		return edgesEqual(seq, dist)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyIndex(t *testing.T) {
	idx := blocking.BuildIndex(&blocking.Collection{})
	for _, p := range allPrunings() {
		if got := Run(idx, Options{Scheme: CBS, Pruning: p}); len(got) != 0 {
			t.Fatalf("%v on empty index returned %v", p, got)
		}
	}
}

func TestDefaultTopK(t *testing.T) {
	idx := testIndex(30, 11)
	if k := defaultTopK(idx, CEP); k < 1 {
		t.Fatalf("CEP k=%d", k)
	}
	if k := defaultTopK(idx, CNP); k < 1 {
		t.Fatalf("CNP k=%d", k)
	}
}
