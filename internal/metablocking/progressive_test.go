package metablocking

import (
	"sort"
	"testing"

	"sparker/internal/profile"
)

func TestScheduleStrategiesCoverSameEdgeSet(t *testing.T) {
	idx := testIndex(40, 21)
	var sets [][]Edge
	for _, s := range []ScheduleStrategy{GlobalTop, ProfileScheduling, RandomOrder} {
		edges := Schedule(idx, Options{Scheme: CBS}, s, 0)
		sets = append(sets, edges)
	}
	norm := func(edges []Edge) [][2]profile.ID {
		out := make([][2]profile.ID, len(edges))
		for i, e := range edges {
			out[i] = [2]profile.ID{e.A, e.B}
		}
		sort.Slice(out, func(i, j int) bool {
			if out[i][0] != out[j][0] {
				return out[i][0] < out[j][0]
			}
			return out[i][1] < out[j][1]
		})
		return out
	}
	base := norm(sets[0])
	for i := 1; i < len(sets); i++ {
		got := norm(sets[i])
		if len(got) != len(base) {
			t.Fatalf("strategy %d edge count %d vs %d", i, len(got), len(base))
		}
		for j := range got {
			if got[j] != base[j] {
				t.Fatalf("strategy %d differs at %d", i, j)
			}
		}
	}
}

func TestGlobalTopIsSortedDescending(t *testing.T) {
	idx := testIndex(40, 22)
	edges := Schedule(idx, Options{Scheme: JS}, GlobalTop, 0)
	for i := 1; i < len(edges); i++ {
		if edges[i].Weight > edges[i-1].Weight {
			t.Fatalf("not descending at %d: %f > %f", i, edges[i].Weight, edges[i-1].Weight)
		}
	}
}

func TestScheduleBudget(t *testing.T) {
	idx := testIndex(30, 23)
	full := Schedule(idx, Options{Scheme: CBS}, GlobalTop, 0)
	capped := Schedule(idx, Options{Scheme: CBS}, GlobalTop, 5)
	if len(capped) != 5 {
		t.Fatalf("budget ignored: %d", len(capped))
	}
	for i := range capped {
		if capped[i] != full[i] {
			t.Fatal("budget changed the prefix")
		}
	}
}

func TestProfileSchedulingNoDuplicates(t *testing.T) {
	idx := testIndex(50, 24)
	edges := Schedule(idx, Options{Scheme: CBS}, ProfileScheduling, 0)
	seen := map[[2]profile.ID]bool{}
	for _, e := range edges {
		if e.A >= e.B {
			t.Fatalf("non-canonical edge %+v", e)
		}
		k := [2]profile.ID{e.A, e.B}
		if seen[k] {
			t.Fatalf("duplicate %v", k)
		}
		seen[k] = true
	}
}

func TestScheduleDeterministic(t *testing.T) {
	idx := testIndex(40, 25)
	for _, s := range []ScheduleStrategy{GlobalTop, ProfileScheduling, RandomOrder} {
		a := Schedule(idx, Options{Scheme: CBS}, s, 0)
		b := Schedule(idx, Options{Scheme: CBS}, s, 0)
		if len(a) != len(b) {
			t.Fatalf("%v: non-deterministic length", s)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%v: non-deterministic at %d", s, i)
			}
		}
	}
}

func TestStrategyNames(t *testing.T) {
	for _, s := range []ScheduleStrategy{GlobalTop, ProfileScheduling, RandomOrder} {
		if s.String() == "unknown" {
			t.Fatalf("strategy %d unnamed", s)
		}
	}
	if ScheduleStrategy(99).String() != "unknown" {
		t.Fatal("out-of-range name")
	}
}
