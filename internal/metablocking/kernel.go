package metablocking

import (
	"sort"
	"sync"

	"sparker/internal/kernel"
)

// neighbourScratch is the flat-array neighbourhood kernel: the
// allocation-free replacement of the historical
// map[profile.ID]*edgeAccumulator, instantiated from the shared
// kernel.Scratch primitive (dense ID-indexed slots, epoch-stamped
// O(touched) clears). One scratch serves one worker at a time: the
// sequential Run reuses a single one, RunDistributed leases one per
// dataflow task from the graphContext's sync.Pool.
type neighbourScratch struct {
	kernel.Scratch[edgeAccumulator]
	// nws is the reusable buffer weightedNeighbours returns; callers must
	// consume it before the next weightedNeighbours call on this scratch.
	nws []neighbourWeight
	// wbuf is the reusable weight buffer of kthLargestWeight.
	wbuf []float64
}

// newNeighbourScratch sizes a scratch for profile IDs in [0, n).
func newNeighbourScratch(n int) *neighbourScratch {
	return &neighbourScratch{Scratch: *kernel.NewScratch[edgeAccumulator](n)}
}

// kthLargestWeight returns the k-th largest weight of a neighbourhood
// (clamped to its size), the top-k membership threshold of CNP, using the
// scratch's reusable weight buffer.
func (s *neighbourScratch) kthLargestWeight(nws []neighbourWeight, k int) float64 {
	weights := s.wbuf[:0]
	for _, nw := range nws {
		weights = append(weights, nw.w)
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(weights)))
	s.wbuf = weights
	if k > len(weights) {
		k = len(weights)
	}
	return weights[k-1]
}

// scratchPool hands out neighbourScratches sized for one graphContext.
type scratchPool struct {
	n    int
	pool sync.Pool
}

func (p *scratchPool) get() *neighbourScratch {
	if s, ok := p.pool.Get().(*neighbourScratch); ok {
		return s
	}
	return newNeighbourScratch(p.n)
}

func (p *scratchPool) put(s *neighbourScratch) { p.pool.Put(s) }
