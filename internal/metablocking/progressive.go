package metablocking

import (
	"math/rand"
	"sort"

	"sparker/internal/blocking"
	"sparker/internal/profile"
)

// Progressive meta-blocking, from "Schema-Agnostic Progressive Entity
// Resolution" [6] (cited by the paper): instead of pruning the blocking
// graph once, comparisons are *scheduled* in decreasing likelihood order
// so that a budget-bound run resolves as many entities as early as
// possible. Two schedulers are provided plus a random baseline:
//
//   - GlobalTop materialises every weighted edge and sorts it globally —
//     the quality ceiling, at O(|E|) memory;
//   - ProfileScheduling is the paper's PPS: profiles are ordered by their
//     duplication likelihood (their best edge weight) and each profile
//     emits its neighbourhood best-first, interleaved via the profile
//     order — near-ceiling quality at node-local memory;
//   - RandomOrder is the baseline progressive methods are measured
//     against.

// ScheduleStrategy selects the progressive comparison scheduler.
type ScheduleStrategy int

const (
	// GlobalTop emits all edges in strictly decreasing weight order.
	GlobalTop ScheduleStrategy = iota
	// ProfileScheduling is PPS [6]: profile-major, best-first.
	ProfileScheduling
	// RandomOrder emits the comparisons in seeded random order.
	RandomOrder
)

// String names the strategy for reports.
func (s ScheduleStrategy) String() string {
	switch s {
	case GlobalTop:
		return "global-top"
	case ProfileScheduling:
		return "profile-scheduling"
	case RandomOrder:
		return "random"
	}
	return "unknown"
}

// Schedule returns the comparisons of the blocking graph ordered by the
// chosen strategy, deduplicated (each undirected pair appears once).
// Budget bounds the result length; a non-positive budget returns the
// full schedule.
func Schedule(idx *blocking.Index, opts Options, strategy ScheduleStrategy, budget int) []Edge {
	ids := idx.ProfileIDs()
	g := newGraphContext(idx, opts)
	if needsDegrees(opts.Scheme) {
		g.computeDegrees(ids)
	}
	var out []Edge
	switch strategy {
	case GlobalTop:
		out = scheduleGlobalTop(g, ids)
	case ProfileScheduling:
		out = scheduleProfiles(g, ids)
	case RandomOrder:
		out = scheduleRandom(g, ids)
	}
	if budget > 0 && len(out) > budget {
		out = out[:budget]
	}
	return out
}

func scheduleGlobalTop(g *graphContext, ids []profile.ID) []Edge {
	var edges []Edge
	forEachEdge(g, ids, func(a, b profile.ID, w float64) {
		edges = append(edges, Edge{A: a, B: b, Weight: w})
	})
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].Weight != edges[j].Weight {
			return edges[i].Weight > edges[j].Weight
		}
		if edges[i].A != edges[j].A {
			return edges[i].A < edges[j].A
		}
		return edges[i].B < edges[j].B
	})
	return edges
}

// scheduleProfiles is PPS: profiles are ordered by duplication likelihood
// (their best edge weight) and comparisons are emitted in rounds — round
// r yields every profile's r-th best un-emitted comparison. The first
// round therefore covers each profile's most promising comparison, which
// is where nearly all duplicates live; whole low-value neighbourhoods are
// deferred instead of being drained eagerly.
func scheduleProfiles(g *graphContext, ids []profile.ID) []Edge {
	type nodeSchedule struct {
		id    profile.ID
		best  float64
		edges []Edge
		next  int
	}
	s := g.scratch.get()
	defer g.scratch.put(s)
	nodes := make([]*nodeSchedule, 0, len(ids))
	for _, id := range ids {
		nws := g.weightedNeighbours(id, s)
		if len(nws) == 0 {
			continue
		}
		ns := &nodeSchedule{id: id}
		for _, nw := range nws {
			ns.edges = append(ns.edges, Edge{A: id, B: nw.id, Weight: nw.w})
			if nw.w > ns.best {
				ns.best = nw.w
			}
		}
		sort.Slice(ns.edges, func(i, j int) bool {
			if ns.edges[i].Weight != ns.edges[j].Weight {
				return ns.edges[i].Weight > ns.edges[j].Weight
			}
			return ns.edges[i].B < ns.edges[j].B
		})
		nodes = append(nodes, ns)
	}
	sort.Slice(nodes, func(i, j int) bool {
		if nodes[i].best != nodes[j].best {
			return nodes[i].best > nodes[j].best
		}
		return nodes[i].id < nodes[j].id
	})

	seen := map[[2]profile.ID]bool{}
	var out []Edge
	for remaining := len(nodes); remaining > 0; {
		remaining = 0
		for _, ns := range nodes {
			// Emit this node's next not-yet-seen comparison, if any.
			for ns.next < len(ns.edges) {
				e := ns.edges[ns.next]
				ns.next++
				a, b := e.A, e.B
				if b < a {
					a, b = b, a
				}
				key := [2]profile.ID{a, b}
				if seen[key] {
					continue
				}
				seen[key] = true
				out = append(out, Edge{A: a, B: b, Weight: e.Weight})
				break
			}
			if ns.next < len(ns.edges) {
				remaining++
			}
		}
	}
	return out
}

func scheduleRandom(g *graphContext, ids []profile.ID) []Edge {
	var edges []Edge
	forEachEdge(g, ids, func(a, b profile.ID, w float64) {
		edges = append(edges, Edge{A: a, B: b, Weight: w})
	})
	rng := rand.New(rand.NewSource(20190326)) // EDBT 2019 opening day
	rng.Shuffle(len(edges), func(i, j int) { edges[i], edges[j] = edges[j], edges[i] })
	return edges
}
