// Package metablocking restructures a block collection by pruning the
// least promising comparisons, the core of SparkER's blocker. Profiles are
// nodes of an implicit blocking graph; two nodes are connected when they
// co-occur in at least one block; edges are weighted by co-occurrence
// statistics (optionally scaled by attribute-cluster entropy, the Blast
// [13] contribution); and a pruning rule drops edges below a global or
// node-local threshold. The surviving edges are the candidate pairs handed
// to the entity matcher.
//
// Three implementations share the same semantics: a sequential
// node-centric one, a distributed broadcast-join one (the paper's parallel
// algorithm: partition the nodes, broadcast the block index, materialise
// one node neighbourhood at a time), and a naive distributed baseline that
// materialises every edge through the shuffle, used to quantify what the
// broadcast-join design saves.
package metablocking

import (
	"math"

	"sparker/internal/blocking"
	"sparker/internal/profile"
)

// Scheme selects the edge-weighting function [10].
type Scheme int

const (
	// CBS (Common Blocks Scheme) counts the blocks two profiles share.
	CBS Scheme = iota
	// ECBS scales CBS by the rarity of each profile's block set.
	ECBS
	// JS is the Jaccard similarity of the two profiles' block sets.
	JS
	// EJS scales JS by the rarity of each profile's neighbourhood degree.
	EJS
	// ARCS sums the reciprocal comparison cardinality of shared blocks, so
	// small (distinctive) blocks contribute more.
	ARCS
)

// String names the scheme for reports.
func (s Scheme) String() string {
	switch s {
	case CBS:
		return "CBS"
	case ECBS:
		return "ECBS"
	case JS:
		return "JS"
	case EJS:
		return "EJS"
	case ARCS:
		return "ARCS"
	}
	return "unknown"
}

// Pruning selects the edge-pruning rule.
type Pruning int

const (
	// WEP (Weighted Edge Pruning) keeps edges at or above the global mean
	// weight; this is the rule Figure 1(c) illustrates.
	WEP Pruning = iota
	// CEP (Cardinality Edge Pruning) keeps the globally top-K edges.
	CEP
	// WNP (Weighted Node Pruning) keeps an edge if it reaches the local
	// mean weight of either endpoint.
	WNP
	// ReciprocalWNP requires the edge to reach both endpoints' means.
	ReciprocalWNP
	// CNP (Cardinality Node Pruning) keeps an edge in the top-k of either
	// endpoint.
	CNP
	// ReciprocalCNP requires the edge in the top-k of both endpoints.
	ReciprocalCNP
	// BlastPruning uses Blast's node threshold: half the maximum edge
	// weight of the endpoint, kept if reached at either endpoint.
	BlastPruning
)

// String names the pruning rule for reports.
func (p Pruning) String() string {
	switch p {
	case WEP:
		return "WEP"
	case CEP:
		return "CEP"
	case WNP:
		return "WNP"
	case ReciprocalWNP:
		return "WNP-reciprocal"
	case CNP:
		return "CNP"
	case ReciprocalCNP:
		return "CNP-reciprocal"
	case BlastPruning:
		return "Blast"
	}
	return "unknown"
}

// EntropyProvider supplies the entropy of the attribute cluster a block's
// key belongs to. looseschema.Partitioning implements it.
type EntropyProvider interface {
	EntropyOf(cluster int) float64
}

// Options configures a meta-blocking run.
type Options struct {
	Scheme  Scheme
	Pruning Pruning
	// Entropy enables Blast's entropy re-weighting: every shared block
	// contributes proportionally to its attribute-cluster entropy instead
	// of uniformly. Nil disables it.
	Entropy EntropyProvider
	// TopK is the K of CEP or the per-node k of CNP; 0 derives the
	// literature defaults (BC/2 for CEP, BC/|P| for CNP).
	TopK int
}

// Edge is a retained comparison with its final weight.
type Edge struct {
	A, B   profile.ID // A < B
	Weight float64
}

// edgeAccumulator gathers the per-pair statistics a weight scheme needs.
type edgeAccumulator struct {
	cbs        int32   // number of shared blocks
	arcs       float64 // Σ 1/||b|| over shared blocks
	entropySum float64 // Σ entropy(cluster(b)) over shared blocks
	entArcs    float64 // Σ entropy/||b||
}

// graphContext caches everything the weighting functions need.
type graphContext struct {
	idx        *blocking.Index
	numBlocks  float64
	comparison []float64 // per block: comparison cardinality
	entropy    []float64 // per block: cluster entropy (1 when disabled)
	useEntropy bool
	scheme     Scheme
	// scratch leases flat neighbourhood kernels sized maxID+1; the pool is
	// shared by every dataflow task when the context is broadcast.
	scratch scratchPool
	// EJS support, filled lazily: degrees is dense, indexed by profile ID.
	degrees    []int32
	totalEdges float64
}

func newGraphContext(idx *blocking.Index, opts Options) *graphContext {
	blocks := idx.Blocks.Blocks
	g := &graphContext{
		idx:        idx,
		numBlocks:  float64(len(blocks)),
		comparison: make([]float64, len(blocks)),
		entropy:    make([]float64, len(blocks)),
		useEntropy: opts.Entropy != nil,
		scheme:     opts.Scheme,
	}
	g.scratch.n = int(idx.MaxProfileID()) + 1
	for i := range blocks {
		c := blocks[i].Comparisons()
		if c < 1 {
			c = 1
		}
		g.comparison[i] = float64(c)
		if g.useEntropy {
			g.entropy[i] = opts.Entropy.EntropyOf(blocks[i].ClusterID)
		} else {
			g.entropy[i] = 1
		}
	}
	return g
}

// neighbourhood materialises the weighted neighbourhood of node id into
// the flat scratch (cleared first via its epoch). Pairs within the same
// source of a clean-clean task are skipped: each BlockRef carries the
// profile's side, so the kernel reads the opposite side of every block
// directly instead of scanning for the profile's membership.
func (g *graphContext) neighbourhood(id profile.ID, s *neighbourScratch) {
	s.Begin()
	col := g.idx.Blocks
	for _, ref := range g.idx.BlocksOf(id) {
		bi := ref.Ordinal()
		b := &col.Blocks[bi]
		others := b.A
		if col.CleanClean && !ref.SideB() {
			others = b.B
		}
		arcs := 1 / g.comparison[bi]
		ent := g.entropy[bi]
		entArcs := ent / g.comparison[bi]
		for _, other := range others {
			if other == id {
				continue
			}
			a := s.Slot(other)
			a.cbs++
			a.arcs += arcs
			a.entropySum += ent
			a.entArcs += entArcs
		}
	}
}

// neighbourWeight is one weighted edge endpoint, used wherever weights
// must be summed in a deterministic order: float addition is not
// associative, and the sequential and distributed implementations must
// produce bitwise-identical thresholds.
type neighbourWeight struct {
	id profile.ID
	w  float64
}

// weightedNeighbours materialises the neighbourhood of id and returns its
// weighted edges sorted by neighbour ID. The returned slice aliases the
// scratch's reusable buffer: consume it before the next call on the same
// scratch.
func (g *graphContext) weightedNeighbours(id profile.ID, s *neighbourScratch) []neighbourWeight {
	g.neighbourhood(id, s)
	s.SortTouched()
	out := s.nws[:0]
	for _, other := range s.Touched() {
		out = append(out, neighbourWeight{id: other, w: g.weight(id, other, s.At(other))})
	}
	s.nws = out
	return out
}

// weight computes the scheme weight of the edge (a, b) from its
// accumulator. With entropy enabled, counting schemes replace each shared
// block's unit contribution with the block's cluster entropy, and ratio
// schemes are scaled by the mean entropy of the shared blocks — this is
// the re-weighting Figure 2(c) shows.
func (g *graphContext) weight(a, b profile.ID, acc *edgeAccumulator) float64 {
	cbs := float64(acc.cbs)
	if cbs == 0 {
		return 0
	}
	meanEntropy := acc.entropySum / cbs
	switch g.scheme {
	case CBS:
		if g.useEntropy {
			return acc.entropySum
		}
		return cbs
	case ECBS:
		w := cbs * LogRatio(g.numBlocks, float64(g.idx.NumBlocksOf(a))) *
			LogRatio(g.numBlocks, float64(g.idx.NumBlocksOf(b)))
		if g.useEntropy {
			w *= meanEntropy
		}
		return w
	case JS:
		union := float64(g.idx.NumBlocksOf(a)) + float64(g.idx.NumBlocksOf(b)) - cbs
		if union <= 0 {
			return 0
		}
		w := cbs / union
		if g.useEntropy {
			w *= meanEntropy
		}
		return w
	case EJS:
		union := float64(g.idx.NumBlocksOf(a)) + float64(g.idx.NumBlocksOf(b)) - cbs
		if union <= 0 {
			return 0
		}
		w := cbs / union
		da, db := float64(g.degrees[a]), float64(g.degrees[b])
		w *= LogRatio(g.totalEdges, da) * LogRatio(g.totalEdges, db)
		if g.useEntropy {
			w *= meanEntropy
		}
		return w
	case ARCS:
		if g.useEntropy {
			return acc.entArcs
		}
		return acc.arcs
	}
	return 0
}

// LogRatio is the clamped log10(total/part) factor of the ECBS and EJS
// schemes, shared with the online index so both sides keep the same
// clamping semantics.
func LogRatio(total, part float64) float64 {
	if part <= 0 || total <= 0 {
		return 0
	}
	v := math.Log10(total / part)
	if v < 0 {
		return 0
	}
	return v
}

// needsDegrees reports whether the scheme requires the EJS degree pass.
func needsDegrees(s Scheme) bool { return s == EJS }

// computeDegrees fills g.degrees and g.totalEdges with the node degrees of
// the full (unpruned) blocking graph. With the flat kernel a degree is
// just the touched-list length, so the EJS pre-pass allocates nothing
// beyond the dense degree array itself.
func (g *graphContext) computeDegrees(ids []profile.ID) {
	g.degrees = make([]int32, g.scratch.n)
	s := g.scratch.get()
	defer g.scratch.put(s)
	var total float64
	for _, id := range ids {
		g.neighbourhood(id, s)
		g.degrees[id] = int32(len(s.Touched()))
		total += float64(len(s.Touched()))
	}
	g.totalEdges = total / 2
	if g.totalEdges < 1 {
		g.totalEdges = 1
	}
}

// defaultTopK derives the literature defaults for the cardinality rules.
func defaultTopK(idx *blocking.Index, p Pruning) int {
	assignments := idx.Blocks.TotalAssignments()
	switch p {
	case CEP:
		k := int(assignments / 2)
		if k < 1 {
			k = 1
		}
		return k
	case CNP, ReciprocalCNP:
		n := idx.NumProfiles()
		if n == 0 {
			return 1
		}
		k := int(assignments) / n
		if k < 1 {
			k = 1
		}
		return k
	}
	return 1
}
