package metablocking

import (
	"math"
	"testing"

	"sparker/internal/blocking"
	"sparker/internal/profile"
)

// TestExplainFigure2 reconstructs the Figure 2(c) decisions pair by pair.
func TestExplainFigure2(t *testing.T) {
	c := figureProfiles()
	blocks := blocking.TokenBlocking(c, blocking.Options{Clustering: figure2Partitioning{}})
	idx := blocking.BuildIndex(blocks)
	opts := Options{Scheme: CBS, Pruning: WEP, Entropy: figure2Partitioning{}}

	// p1-p3 share blast_1, blocking_1, simonini_2 → weight 1.6.
	ex := Explain(idx, opts, 0, 2)
	if len(ex.CommonBlocks) != 3 {
		t.Fatalf("common blocks: %+v", ex.CommonBlocks)
	}
	if math.Abs(ex.Weight-1.6) > 1e-9 {
		t.Fatalf("weight %f", ex.Weight)
	}
	keys := map[string]float64{}
	for _, cb := range ex.CommonBlocks {
		keys[cb.Key] = cb.Entropy
	}
	if keys["blast_1"] != 0.4 || keys["simonini_2"] != 0.8 || keys["blocking_1"] != 0.4 {
		t.Fatalf("entropies: %v", keys)
	}

	// p1-p4 share only blast_1 → weight 0.4.
	ex14 := Explain(idx, opts, 0, 3)
	if len(ex14.CommonBlocks) != 1 || math.Abs(ex14.Weight-0.4) > 1e-9 {
		t.Fatalf("p1-p4: %+v", ex14)
	}
}

// TestExplainBlastDecision checks the node thresholds and retention flag
// against the actual Run output.
func TestExplainBlastDecision(t *testing.T) {
	idx := testIndex(40, 31)
	opts := Options{Scheme: JS, Pruning: BlastPruning}
	retained := map[[2]profile.ID]bool{}
	for _, e := range Run(idx, opts) {
		retained[[2]profile.ID{e.A, e.B}] = true
	}
	g := newGraphContext(idx, opts)
	checked := 0
	forEachEdge(g, idx.ProfileIDs(), func(a, b profile.ID, _ float64) {
		if checked >= 50 {
			return
		}
		checked++
		ex := Explain(idx, opts, a, b)
		if ex.Retained != retained[[2]profile.ID{a, b}] {
			t.Fatalf("pair (%d,%d): explanation says %v, Run says %v",
				a, b, ex.Retained, retained[[2]profile.ID{a, b}])
		}
		if ex.Retained && ex.Weight < ex.ThresholdA && ex.Weight < ex.ThresholdB {
			t.Fatalf("pair (%d,%d) retained below both thresholds: %+v", a, b, ex)
		}
	})
	if checked == 0 {
		t.Fatal("no edges checked")
	}
}

func TestExplainUnrelatedPair(t *testing.T) {
	idx := testIndex(20, 32)
	// Find two profiles with no shared block.
	ids := idx.ProfileIDs()
	g := newGraphContext(idx, Options{Scheme: CBS})
	s := g.scratch.get()
	defer g.scratch.put(s)
	for _, a := range ids {
		g.neighbourhood(a, s)
		for _, b := range ids {
			if b <= a {
				continue
			}
			if s.Lookup(b) == nil {
				ex := Explain(idx, Options{Scheme: CBS, Pruning: WNP}, a, b)
				if len(ex.CommonBlocks) != 0 || ex.Weight != 0 || ex.Retained {
					t.Fatalf("unrelated pair explained as related: %+v", ex)
				}
				return
			}
		}
	}
	t.Skip("graph is complete; no unrelated pair to test")
}

func TestExplainCanonicalisesOrder(t *testing.T) {
	idx := testIndex(20, 33)
	opts := Options{Scheme: CBS, Pruning: WNP}
	ids := idx.ProfileIDs()
	ex1 := Explain(idx, opts, ids[0], ids[1])
	ex2 := Explain(idx, opts, ids[1], ids[0])
	if ex1.A != ex2.A || ex1.B != ex2.B || ex1.Weight != ex2.Weight {
		t.Fatalf("order changed the explanation: %+v vs %+v", ex1, ex2)
	}
}
