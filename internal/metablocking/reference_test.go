package metablocking

import (
	"math"
	"sort"
	"testing"

	"sparker/internal/blocking"
	"sparker/internal/dataflow"
	"sparker/internal/profile"
)

// This file retains the pre-flat-kernel map-based meta-blocker as a
// reference implementation and proves, property-style, that the flat
// neighbourhood kernel is an exact drop-in: pruned edge sets AND weights
// must be bitwise-identical across every scheme × pruning rule ×
// clean-clean/dirty × entropy-on/off combination. The reference
// deliberately keeps the old shapes — map accumulators, a containsID
// linear scan instead of the BlockRef side bit, map degrees and map
// thresholds — so the two code paths share as little as possible.

// refGraph mirrors the historical graphContext.
type refGraph struct {
	idx        *blocking.Index
	numBlocks  float64
	comparison []float64
	entropy    []float64
	useEntropy bool
	scheme     Scheme
	degrees    map[profile.ID]int
	totalEdges float64
}

func newRefGraph(idx *blocking.Index, opts Options) *refGraph {
	blocks := idx.Blocks.Blocks
	g := &refGraph{
		idx:        idx,
		numBlocks:  float64(len(blocks)),
		comparison: make([]float64, len(blocks)),
		entropy:    make([]float64, len(blocks)),
		useEntropy: opts.Entropy != nil,
		scheme:     opts.Scheme,
	}
	for i := range blocks {
		c := blocks[i].Comparisons()
		if c < 1 {
			c = 1
		}
		g.comparison[i] = float64(c)
		if g.useEntropy {
			g.entropy[i] = opts.Entropy.EntropyOf(blocks[i].ClusterID)
		} else {
			g.entropy[i] = 1
		}
	}
	return g
}

func refContainsID(ids []profile.ID, id profile.ID) bool {
	for _, x := range ids {
		if x == id {
			return true
		}
	}
	return false
}

func (g *refGraph) neighbourhood(id profile.ID, acc map[profile.ID]*edgeAccumulator) {
	for k := range acc {
		delete(acc, k)
	}
	col := g.idx.Blocks
	for _, ref := range g.idx.BlocksOf(id) {
		bi := ref.Ordinal()
		b := &col.Blocks[bi]
		visit := func(other profile.ID) {
			if other == id {
				return
			}
			a := acc[other]
			if a == nil {
				a = &edgeAccumulator{}
				acc[other] = a
			}
			a.cbs++
			a.arcs += 1 / g.comparison[bi]
			a.entropySum += g.entropy[bi]
			a.entArcs += g.entropy[bi] / g.comparison[bi]
		}
		if col.CleanClean {
			if refContainsID(b.A, id) {
				for _, o := range b.B {
					visit(o)
				}
			} else {
				for _, o := range b.A {
					visit(o)
				}
			}
		} else {
			for _, o := range b.A {
				visit(o)
			}
		}
	}
}

func (g *refGraph) weight(a, b profile.ID, acc *edgeAccumulator) float64 {
	cbs := float64(acc.cbs)
	if cbs == 0 {
		return 0
	}
	meanEntropy := acc.entropySum / cbs
	switch g.scheme {
	case CBS:
		if g.useEntropy {
			return acc.entropySum
		}
		return cbs
	case ECBS:
		w := cbs * LogRatio(g.numBlocks, float64(g.idx.NumBlocksOf(a))) *
			LogRatio(g.numBlocks, float64(g.idx.NumBlocksOf(b)))
		if g.useEntropy {
			w *= meanEntropy
		}
		return w
	case JS:
		union := float64(g.idx.NumBlocksOf(a)) + float64(g.idx.NumBlocksOf(b)) - cbs
		if union <= 0 {
			return 0
		}
		w := cbs / union
		if g.useEntropy {
			w *= meanEntropy
		}
		return w
	case EJS:
		union := float64(g.idx.NumBlocksOf(a)) + float64(g.idx.NumBlocksOf(b)) - cbs
		if union <= 0 {
			return 0
		}
		w := cbs / union
		da, db := float64(g.degrees[a]), float64(g.degrees[b])
		w *= LogRatio(g.totalEdges, da) * LogRatio(g.totalEdges, db)
		if g.useEntropy {
			w *= meanEntropy
		}
		return w
	case ARCS:
		if g.useEntropy {
			return acc.entArcs
		}
		return acc.arcs
	}
	return 0
}

func (g *refGraph) weightedNeighbours(id profile.ID, acc map[profile.ID]*edgeAccumulator) []neighbourWeight {
	g.neighbourhood(id, acc)
	out := make([]neighbourWeight, 0, len(acc))
	for other, ea := range acc {
		out = append(out, neighbourWeight{id: other, w: g.weight(id, other, ea)})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

func (g *refGraph) computeDegrees(ids []profile.ID) {
	g.degrees = make(map[profile.ID]int, len(ids))
	acc := map[profile.ID]*edgeAccumulator{}
	var total float64
	for _, id := range ids {
		g.neighbourhood(id, acc)
		g.degrees[id] = len(acc)
		total += float64(len(acc))
	}
	g.totalEdges = total / 2
	if g.totalEdges < 1 {
		g.totalEdges = 1
	}
}

func (g *refGraph) forEachEdge(ids []profile.ID, fn func(a, b profile.ID, w float64)) {
	acc := map[profile.ID]*edgeAccumulator{}
	for _, id := range ids {
		for _, nw := range g.weightedNeighbours(id, acc) {
			if nw.id < id {
				continue
			}
			fn(id, nw.id, nw.w)
		}
	}
}

func refKthLargestWeight(nws []neighbourWeight, k int) float64 {
	weights := make([]float64, len(nws))
	for i, nw := range nws {
		weights[i] = nw.w
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(weights)))
	if k > len(weights) {
		k = len(weights)
	}
	return weights[k-1]
}

// refRun is the pre-refactor sequential Run, on the map path end to end.
func refRun(idx *blocking.Index, opts Options) []Edge {
	ids := idx.ProfileIDs()
	g := newRefGraph(idx, opts)
	if needsDegrees(opts.Scheme) {
		g.computeDegrees(ids)
	}
	acc := map[profile.ID]*edgeAccumulator{}

	emit := func(keep func(a, b profile.ID, w float64) bool) []Edge {
		var out []Edge
		g.forEachEdge(ids, func(a, b profile.ID, w float64) {
			if keep(a, b, w) {
				out = append(out, Edge{A: a, B: b, Weight: w})
			}
		})
		sortEdges(out)
		return out
	}

	switch opts.Pruning {
	case WEP:
		var sum float64
		var count int64
		for _, id := range ids {
			s, n := nodePartialSum(g.weightedNeighbours(id, acc), id)
			sum += s
			count += n
		}
		if count == 0 {
			return nil
		}
		threshold := sum / float64(count)
		return emit(func(_, _ profile.ID, w float64) bool { return w >= threshold })
	case CEP:
		k := opts.TopK
		if k <= 0 {
			k = defaultTopK(idx, CEP)
		}
		var weights []float64
		g.forEachEdge(ids, func(_, _ profile.ID, w float64) { weights = append(weights, w) })
		if len(weights) == 0 {
			return nil
		}
		sort.Sort(sort.Reverse(sort.Float64Slice(weights)))
		if k > len(weights) {
			k = len(weights)
		}
		threshold := weights[k-1]
		return emit(func(_, _ profile.ID, w float64) bool { return w >= threshold })
	case WNP, ReciprocalWNP, BlastPruning:
		blast := opts.Pruning == BlastPruning
		thresholds := map[profile.ID]float64{}
		for _, id := range ids {
			nws := g.weightedNeighbours(id, acc)
			if len(nws) == 0 {
				continue
			}
			thresholds[id] = nodeThreshold(nws, blast)
		}
		reciprocal := opts.Pruning == ReciprocalWNP
		return emit(func(a, b profile.ID, w float64) bool {
			okA := w >= thresholds[a]
			okB := w >= thresholds[b]
			if reciprocal {
				return okA && okB
			}
			return okA || okB
		})
	case CNP, ReciprocalCNP:
		k := opts.TopK
		if k <= 0 {
			k = defaultTopK(idx, CNP)
		}
		kth := map[profile.ID]float64{}
		for _, id := range ids {
			nws := g.weightedNeighbours(id, acc)
			if len(nws) == 0 {
				continue
			}
			kth[id] = refKthLargestWeight(nws, k)
		}
		reciprocal := opts.Pruning == ReciprocalCNP
		return emit(func(a, b profile.ID, w float64) bool {
			okA := w >= kth[a]
			okB := w >= kth[b]
			if reciprocal {
				return okA && okB
			}
			return okA || okB
		})
	}
	return nil
}

// --- test fixtures ---

// clusteredTestIndex builds a deterministic dirty or clean-clean block
// index whose blocks carry varied cluster IDs, so the entropy-weighted
// path sees non-uniform entropies.
func clusteredTestIndex(n int, seed int64, clean bool) *blocking.Index {
	next := uint64(seed)*2654435761 + 1
	rnd := func(mod int) int {
		next = next*6364136223846793005 + 1442695040888963407
		return int((next >> 33) % uint64(mod))
	}
	numTokens := n/2 + 3
	type sides struct{ a, b []profile.ID }
	members := make([]sides, numTokens)
	half := n / 2
	for id := 0; id < n; id++ {
		k := 2 + rnd(4)
		seen := map[int]bool{}
		for j := 0; j < k; j++ {
			tok := rnd(numTokens)
			if seen[tok] {
				continue
			}
			seen[tok] = true
			if clean && id >= half {
				members[tok].b = append(members[tok].b, profile.ID(id))
			} else {
				members[tok].a = append(members[tok].a, profile.ID(id))
			}
		}
	}
	col := &blocking.Collection{NumProfiles: n, CleanClean: clean}
	for tok := 0; tok < numTokens; tok++ {
		m := members[tok]
		if len(m.a)+len(m.b) < 2 {
			continue
		}
		if clean && (len(m.a) == 0 || len(m.b) == 0) {
			continue
		}
		col.Blocks = append(col.Blocks, blocking.Block{
			Key:        "t" + string(rune('a'+tok%26)) + string(rune('0'+tok/26%10)),
			ClusterID:  tok % 5,
			CleanClean: clean,
			A:          m.a,
			B:          m.b,
		})
	}
	return blocking.BuildIndex(col)
}

// rampEntropy gives every attribute cluster a distinct entropy.
type rampEntropy struct{}

func (rampEntropy) EntropyOf(cluster int) float64 { return 0.25 + 0.4*float64(cluster+1) }

func requireBitwiseEqual(t *testing.T, label string, want, got []Edge) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: edge count %d != reference %d", label, len(got), len(want))
	}
	for i := range want {
		if want[i].A != got[i].A || want[i].B != got[i].B {
			t.Fatalf("%s: edge %d is (%d,%d), reference (%d,%d)",
				label, i, got[i].A, got[i].B, want[i].A, want[i].B)
		}
		if math.Float64bits(want[i].Weight) != math.Float64bits(got[i].Weight) {
			t.Fatalf("%s: edge %d (%d,%d) weight %x differs from reference %x (%g vs %g)",
				label, i, want[i].A, want[i].B,
				math.Float64bits(got[i].Weight), math.Float64bits(want[i].Weight),
				got[i].Weight, want[i].Weight)
		}
	}
}

// TestFlatKernelMatchesMapReference is the equivalence property of the
// flat-array kernel: for every scheme × pruning rule × task type ×
// entropy setting, Run and RunDistributed return bitwise-identical edges
// to the retained map-based reference.
func TestFlatKernelMatchesMapReference(t *testing.T) {
	ctx := dataflow.NewContext(dataflow.WithParallelism(3))
	defer ctx.Close()
	for _, clean := range []bool{false, true} {
		for _, useEntropy := range []bool{false, true} {
			idx := clusteredTestIndex(48, 11, clean)
			for _, s := range allSchemes() {
				for _, p := range allPrunings() {
					opts := Options{Scheme: s, Pruning: p}
					if useEntropy {
						opts.Entropy = rampEntropy{}
					}
					label := map[bool]string{false: "dirty", true: "clean"}[clean] +
						"/" + map[bool]string{false: "flat", true: "entropy"}[useEntropy] +
						"/" + s.String() + "/" + p.String()
					want := refRun(idx, opts)
					requireBitwiseEqual(t, label+"/sequential", want, Run(idx, opts))
					dist, err := RunDistributed(ctx, idx, opts, 4)
					if err != nil {
						t.Fatalf("%s: distributed: %v", label, err)
					}
					requireBitwiseEqual(t, label+"/distributed", want, dist)
				}
			}
		}
	}
}

// TestFlatKernelNeighbourhoodsMatchReference pins the kernel itself: per
// node, the flat scratch must reproduce the map accumulator's sorted
// weighted neighbourhood bitwise, including the EJS degree pass.
func TestFlatKernelNeighbourhoodsMatchReference(t *testing.T) {
	for _, clean := range []bool{false, true} {
		idx := clusteredTestIndex(40, 23, clean)
		ids := idx.ProfileIDs()
		for _, s := range allSchemes() {
			opts := Options{Scheme: s, Entropy: rampEntropy{}}
			g := newGraphContext(idx, opts)
			rg := newRefGraph(idx, opts)
			if needsDegrees(s) {
				g.computeDegrees(ids)
				rg.computeDegrees(ids)
			}
			sc := g.scratch.get()
			acc := map[profile.ID]*edgeAccumulator{}
			for _, id := range ids {
				want := rg.weightedNeighbours(id, acc)
				got := g.weightedNeighbours(id, sc)
				if len(want) != len(got) {
					t.Fatalf("%v node %d: %d neighbours, reference %d", s, id, len(got), len(want))
				}
				for i := range want {
					if want[i].id != got[i].id || math.Float64bits(want[i].w) != math.Float64bits(got[i].w) {
						t.Fatalf("%v node %d neighbour %d: (%d, %g) vs reference (%d, %g)",
							s, id, i, got[i].id, got[i].w, want[i].id, want[i].w)
					}
				}
			}
			g.scratch.put(sc)
		}
	}
}

// TestFlatKernelScratchReuse runs two different graphs through one pooled
// scratch path back to back, guarding against cross-run contamination of
// the epoch-stamped slots.
func TestFlatKernelScratchReuse(t *testing.T) {
	a := clusteredTestIndex(30, 3, false)
	b := clusteredTestIndex(30, 7, false)
	for i := 0; i < 3; i++ {
		requireBitwiseEqual(t, "reuse-a", refRun(a, Options{Scheme: JS, Pruning: WNP}),
			Run(a, Options{Scheme: JS, Pruning: WNP}))
		requireBitwiseEqual(t, "reuse-b", refRun(b, Options{Scheme: ECBS, Pruning: ReciprocalCNP}),
			Run(b, Options{Scheme: ECBS, Pruning: ReciprocalCNP}))
	}
}
