package metablocking

import (
	"sort"

	"sparker/internal/blocking"
	"sparker/internal/profile"
)

// PairExplanation is the meta-blocking debug view for one comparison: the
// blocks the two profiles share, the resulting edge weight, and the
// per-endpoint thresholds that decide its fate — what the GUI shows when
// the user asks why a pair was kept or pruned (Figure 6(e) debugging).
type PairExplanation struct {
	A, B profile.ID
	// CommonBlocks lists the shared blocks' keys with the entropy each
	// contributed to the weight.
	CommonBlocks []CommonBlock
	// Weight under the explanation's options.
	Weight float64
	// ThresholdA and ThresholdB are the endpoints' pruning thresholds
	// (meaningful for node-centric rules; zero for cardinality rules).
	ThresholdA, ThresholdB float64
	// Retained reports the pruning decision under the options' rule.
	Retained bool
}

// CommonBlock is one block shared by the explained pair.
type CommonBlock struct {
	Key       string
	ClusterID int
	Entropy   float64 // 1 when entropy weighting is off
	Size      int
}

// Explain reconstructs the meta-blocking decision for one pair. It
// supports the node-threshold rules (WNP, reciprocal WNP, Blast) — the
// rules the pipeline defaults to; for other rules the thresholds are
// reported as zero and Retained reflects weight > 0 only.
func Explain(idx *blocking.Index, opts Options, a, b profile.ID) PairExplanation {
	ids := idx.ProfileIDs()
	g := newGraphContext(idx, opts)
	if needsDegrees(opts.Scheme) {
		g.computeDegrees(ids)
	}
	if b < a {
		a, b = b, a
	}
	out := PairExplanation{A: a, B: b}

	// Shared blocks.
	inA := map[int32]bool{}
	for _, ref := range idx.BlocksOf(a) {
		inA[ref.Ordinal()] = true
	}
	for _, ref := range idx.BlocksOf(b) {
		bi := ref.Ordinal()
		if !inA[bi] {
			continue
		}
		blk := &idx.Blocks.Blocks[bi]
		out.CommonBlocks = append(out.CommonBlocks, CommonBlock{
			Key:       blk.Key,
			ClusterID: blk.ClusterID,
			Entropy:   g.entropy[bi],
			Size:      blk.Size(),
		})
	}
	sort.Slice(out.CommonBlocks, func(i, j int) bool {
		return out.CommonBlocks[i].Key < out.CommonBlocks[j].Key
	})
	if len(out.CommonBlocks) == 0 {
		return out
	}

	// Weight via the edge accumulator of a's neighbourhood.
	s := g.scratch.get()
	defer g.scratch.put(s)
	g.neighbourhood(a, s)
	ea := s.Lookup(b)
	if ea == nil {
		return out
	}
	out.Weight = g.weight(a, b, ea)

	switch opts.Pruning {
	case WNP, ReciprocalWNP, BlastPruning:
		blast := opts.Pruning == BlastPruning
		nwsA := g.weightedNeighbours(a, s)
		out.ThresholdA = nodeThreshold(nwsA, blast)
		nwsB := g.weightedNeighbours(b, s)
		out.ThresholdB = nodeThreshold(nwsB, blast)
		okA := out.Weight >= out.ThresholdA
		okB := out.Weight >= out.ThresholdB
		if opts.Pruning == ReciprocalWNP {
			out.Retained = okA && okB
		} else {
			out.Retained = okA || okB
		}
	default:
		out.Retained = out.Weight > 0
	}
	return out
}
