package metablocking

import (
	"fmt"
	"sort"

	"sparker/internal/blocking"
	"sparker/internal/dataflow"
	"sparker/internal/profile"
)

// RunDistributed executes meta-blocking on the dataflow engine using the
// paper's broadcast-join-inspired algorithm: the compact block index is
// broadcast to every executor, graph nodes are partitioned, and each task
// materialises the neighbourhood of one node at a time, so the full edge
// set never crosses the shuffle. Threshold computation adds one extra
// lightweight stage:
//
//   - WEP aggregates a global (sum, count) pair per partition;
//   - node-centric rules (WNP/Blast/CNP) compute the per-node thresholds
//     in a first pass and broadcast them for the pruning pass;
//   - CEP samples the global weight distribution via a collect of weights.
//
// Results are identical to Run (the sequential reference).
func RunDistributed(ctx *dataflow.Context, idx *blocking.Index, opts Options, numPartitions int) ([]Edge, error) {
	ids := idx.ProfileIDs()
	g := newGraphContext(idx, opts)
	if needsDegrees(opts.Scheme) {
		g.computeDegrees(ids)
	}
	if numPartitions < 1 {
		numPartitions = ctx.DefaultPartitions()
	}

	// The broadcast payload: the graph context wraps the block index,
	// per-block entropies and comparison cardinalities — exactly the
	// structures the Spark implementation ships to each executor.
	bg := dataflow.NewBroadcast(ctx, g)
	nodes := dataflow.Parallelize(ctx, ids, numPartitions)

	switch opts.Pruning {
	case WEP:
		return distWEP(ctx, bg, nodes)
	case CEP:
		k := opts.TopK
		if k <= 0 {
			k = defaultTopK(idx, CEP)
		}
		return distCEP(ctx, bg, nodes, k)
	case WNP, ReciprocalWNP, BlastPruning:
		return distNodeThreshold(ctx, bg, nodes, opts.Pruning)
	case CNP, ReciprocalCNP:
		k := opts.TopK
		if k <= 0 {
			k = defaultTopK(idx, CNP)
		}
		return distCNP(ctx, bg, nodes, k, opts.Pruning == ReciprocalCNP)
	}
	return nil, fmt.Errorf("metablocking: unsupported pruning rule %v", opts.Pruning)
}

// emitEdges materialises neighbourhoods partition-locally and emits each
// undirected edge once, applying keep. Each dataflow task leases one flat
// scratch from the broadcast context's pool for its whole partition.
func emitEdges(bg *dataflow.Broadcast[*graphContext], nodes *dataflow.RDD[profile.ID],
	keep func(a, b profile.ID, w float64) bool) *dataflow.RDD[Edge] {
	return dataflow.MapPartitions(nodes, func(part []profile.ID) ([]Edge, error) {
		g := bg.Value()
		s := g.scratch.get()
		defer g.scratch.put(s)
		var out []Edge
		for _, id := range part {
			g.neighbourhood(id, s)
			for _, other := range s.Touched() {
				if other < id {
					continue
				}
				if w := g.weight(id, other, s.At(other)); keep(id, other, w) {
					out = append(out, Edge{A: id, B: other, Weight: w})
				}
			}
		}
		return out, nil
	})
}

func collectSorted(edges *dataflow.RDD[Edge]) ([]Edge, error) {
	out, err := edges.Collect()
	if err != nil {
		return nil, err
	}
	sortEdges(out)
	return out, nil
}

type sumCount struct {
	Sum   float64
	Count int64
}

func distWEP(ctx *dataflow.Context, bg *dataflow.Broadcast[*graphContext], nodes *dataflow.RDD[profile.ID]) ([]Edge, error) {
	// Stage 1: per-node partial sums of forward-edge weights, reduced on
	// the driver in ascending node order — the same grouping the
	// sequential implementation uses, so thresholds match bitwise.
	partials, err := dataflow.MapPartitions(nodes, func(part []profile.ID) ([]dataflow.KV[profile.ID, sumCount], error) {
		g := bg.Value()
		sc := g.scratch.get()
		defer g.scratch.put(sc)
		var out []dataflow.KV[profile.ID, sumCount]
		for _, id := range part {
			s, n := nodePartialSum(g.weightedNeighbours(id, sc), id)
			if n > 0 {
				out = append(out, dataflow.KV[profile.ID, sumCount]{Key: id, Value: sumCount{Sum: s, Count: n}})
			}
		}
		return out, nil
	}).Collect()
	if err != nil {
		return nil, err
	}
	sort.Slice(partials, func(i, j int) bool { return partials[i].Key < partials[j].Key })
	var sum float64
	var count int64
	for _, kv := range partials {
		sum += kv.Value.Sum
		count += kv.Value.Count
	}
	if count == 0 {
		return nil, nil
	}
	threshold := sum / float64(count)
	// Stage 2: prune.
	return collectSorted(emitEdges(bg, nodes, func(_, _ profile.ID, w float64) bool {
		return w >= threshold
	}))
}

func distCEP(ctx *dataflow.Context, bg *dataflow.Broadcast[*graphContext], nodes *dataflow.RDD[profile.ID], k int) ([]Edge, error) {
	// Stage 1: collect the weight distribution (weights only, not edges).
	weights, err := dataflow.MapPartitions(nodes, func(part []profile.ID) ([]float64, error) {
		g := bg.Value()
		s := g.scratch.get()
		defer g.scratch.put(s)
		var out []float64
		for _, id := range part {
			g.neighbourhood(id, s)
			for _, other := range s.Touched() {
				if other < id {
					continue
				}
				out = append(out, g.weight(id, other, s.At(other)))
			}
		}
		return out, nil
	}).Collect()
	if err != nil {
		return nil, err
	}
	if len(weights) == 0 {
		return nil, nil
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(weights)))
	if k > len(weights) {
		k = len(weights)
	}
	threshold := weights[k-1]
	return collectSorted(emitEdges(bg, nodes, func(_, _ profile.ID, w float64) bool {
		return w >= threshold
	}))
}

func distNodeThreshold(ctx *dataflow.Context, bg *dataflow.Broadcast[*graphContext], nodes *dataflow.RDD[profile.ID], rule Pruning) ([]Edge, error) {
	blast := rule == BlastPruning
	// Stage 1: per-node thresholds, computed where the node lives.
	thresholdKVs, err := dataflow.MapPartitions(nodes, func(part []profile.ID) ([]dataflow.KV[profile.ID, float64], error) {
		g := bg.Value()
		s := g.scratch.get()
		defer g.scratch.put(s)
		var out []dataflow.KV[profile.ID, float64]
		for _, id := range part {
			nws := g.weightedNeighbours(id, s)
			if len(nws) == 0 {
				continue
			}
			out = append(out, dataflow.KV[profile.ID, float64]{Key: id, Value: nodeThreshold(nws, blast)})
		}
		return out, nil
	}).Collect()
	if err != nil {
		return nil, err
	}
	// Dense by profile ID: the pruning pass reads two thresholds per edge,
	// and an array load beats a hash lookup on the hottest loop.
	thresholds := make([]float64, bg.Value().scratch.n)
	for _, kv := range thresholdKVs {
		thresholds[kv.Key] = kv.Value
	}
	bth := dataflow.NewBroadcast(ctx, thresholds)
	reciprocal := rule == ReciprocalWNP
	// Stage 2: prune with both endpoints' thresholds available locally.
	return collectSorted(emitEdges(bg, nodes, func(a, b profile.ID, w float64) bool {
		t := bth.Value()
		okA := w >= t[a]
		okB := w >= t[b]
		if reciprocal {
			return okA && okB
		}
		return okA || okB
	}))
}

func distCNP(ctx *dataflow.Context, bg *dataflow.Broadcast[*graphContext], nodes *dataflow.RDD[profile.ID], k int, reciprocal bool) ([]Edge, error) {
	// Stage 1: per-node k-th largest weight.
	kthKVs, err := dataflow.MapPartitions(nodes, func(part []profile.ID) ([]dataflow.KV[profile.ID, float64], error) {
		g := bg.Value()
		s := g.scratch.get()
		defer g.scratch.put(s)
		var out []dataflow.KV[profile.ID, float64]
		for _, id := range part {
			nws := g.weightedNeighbours(id, s)
			if len(nws) == 0 {
				continue
			}
			out = append(out, dataflow.KV[profile.ID, float64]{Key: id, Value: s.kthLargestWeight(nws, k)})
		}
		return out, nil
	}).Collect()
	if err != nil {
		return nil, err
	}
	kth := make([]float64, bg.Value().scratch.n)
	for _, kv := range kthKVs {
		kth[kv.Key] = kv.Value
	}
	bkth := dataflow.NewBroadcast(ctx, kth)
	return collectSorted(emitEdges(bg, nodes, func(a, b profile.ID, w float64) bool {
		t := bkth.Value()
		okA := w >= t[a]
		okB := w >= t[b]
		if reciprocal {
			return okA && okB
		}
		return okA || okB
	}))
}

// RunNaiveDistributed is the baseline the broadcast-join design is
// measured against: it materialises one record per block-level comparison
// through the shuffle (flatMap blocks → (pair, stats), reduceByKey), then
// prunes with the global WEP threshold. Only CBS/ARCS weighting and WEP
// pruning are supported — enough for a fair time/shuffle comparison; the
// point of the experiment is the shuffled-record count, visible in the
// context metrics.
func RunNaiveDistributed(ctx *dataflow.Context, idx *blocking.Index, opts Options, numPartitions int) ([]Edge, error) {
	if opts.Pruning != WEP {
		return nil, fmt.Errorf("metablocking: naive baseline supports WEP only, got %v", opts.Pruning)
	}
	if opts.Scheme != CBS && opts.Scheme != ARCS {
		return nil, fmt.Errorf("metablocking: naive baseline supports CBS or ARCS, got %v", opts.Scheme)
	}
	g := newGraphContext(idx, opts)
	if numPartitions < 1 {
		numPartitions = ctx.DefaultPartitions()
	}
	col := idx.Blocks

	blocks := dataflow.Parallelize(ctx, makeOrdinals(len(col.Blocks)), numPartitions)
	bcol := dataflow.NewBroadcast(ctx, g)

	// Materialise every comparison of every block: the full aggregate
	// cardinality flows through the shuffle.
	pairs := dataflow.FlatMap(blocks, func(bi int32) []dataflow.KV[[2]int32, float64] {
		gg := bcol.Value()
		b := &gg.idx.Blocks.Blocks[bi]
		contribution := gg.entropy[bi] // 1 when entropy is disabled
		if gg.scheme == ARCS {
			contribution = gg.entropy[bi] / gg.comparison[bi]
		}
		var out []dataflow.KV[[2]int32, float64]
		emit := func(x, y profile.ID) {
			if y < x {
				x, y = y, x
			}
			out = append(out, dataflow.KV[[2]int32, float64]{Key: [2]int32{int32(x), int32(y)}, Value: contribution})
		}
		if b.CleanClean {
			for _, a := range b.A {
				for _, bb := range b.B {
					emit(a, bb)
				}
			}
		} else {
			for i := 0; i < len(b.A); i++ {
				for j := i + 1; j < len(b.A); j++ {
					emit(b.A[i], b.A[j])
				}
			}
		}
		return out
	})
	weighted := dataflow.ReduceByKey(pairs, func(a, b float64) float64 { return a + b }, numPartitions).Persist()

	agg, err := dataflow.Aggregate(weighted,
		func() sumCount { return sumCount{} },
		func(acc sumCount, kv dataflow.KV[[2]int32, float64]) sumCount {
			acc.Sum += kv.Value
			acc.Count++
			return acc
		},
		func(a, b sumCount) sumCount { return sumCount{a.Sum + b.Sum, a.Count + b.Count} })
	if err != nil {
		return nil, err
	}
	if agg.Count == 0 {
		return nil, nil
	}
	threshold := agg.Sum / float64(agg.Count)

	kept := dataflow.Filter(weighted, func(kv dataflow.KV[[2]int32, float64]) bool {
		return kv.Value >= threshold
	})
	edges := dataflow.Map(kept, func(kv dataflow.KV[[2]int32, float64]) Edge {
		return Edge{A: profile.ID(kv.Key[0]), B: profile.ID(kv.Key[1]), Weight: kv.Value}
	})
	return collectSorted(edges)
}

func makeOrdinals(n int) []int32 {
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(i)
	}
	return out
}
