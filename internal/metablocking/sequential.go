package metablocking

import (
	"sort"

	"sparker/internal/blocking"
	"sparker/internal/profile"
)

// Run executes meta-blocking sequentially and returns the retained edges
// sorted by (A, B). It is the reference implementation the distributed
// variants are tested against.
func Run(idx *blocking.Index, opts Options) []Edge {
	ids := idx.ProfileIDs()
	g := newGraphContext(idx, opts)
	if needsDegrees(opts.Scheme) {
		g.computeDegrees(ids)
	}

	switch opts.Pruning {
	case WEP:
		return runWEP(g, ids)
	case CEP:
		k := opts.TopK
		if k <= 0 {
			k = defaultTopK(idx, CEP)
		}
		return runCEP(g, ids, k)
	case WNP, ReciprocalWNP, BlastPruning:
		return runNodeThreshold(g, ids, opts.Pruning)
	case CNP, ReciprocalCNP:
		k := opts.TopK
		if k <= 0 {
			k = defaultTopK(idx, CNP)
		}
		return runCNP(g, ids, k, opts.Pruning == ReciprocalCNP)
	}
	return nil
}

// forEachEdge materialises every node's neighbourhood and calls fn once
// per undirected edge (a < b), in deterministic (a, b) order.
func forEachEdge(g *graphContext, ids []profile.ID, fn func(a, b profile.ID, w float64)) {
	s := g.scratch.get()
	defer g.scratch.put(s)
	for _, id := range ids {
		for _, nw := range g.weightedNeighbours(id, s) {
			if nw.id < id {
				continue // count each undirected edge once
			}
			fn(id, nw.id, nw.w)
		}
	}
}

func sortEdges(edges []Edge) {
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].A != edges[j].A {
			return edges[i].A < edges[j].A
		}
		return edges[i].B < edges[j].B
	})
}

// nodePartialSum sums the weights of a node's forward edges (neighbour ID
// greater than the node's). Grouping the global WEP sum into per-node
// partials, accumulated in ascending node order, gives the sequential and
// distributed implementations bitwise-identical thresholds.
func nodePartialSum(nws []neighbourWeight, id profile.ID) (float64, int64) {
	var sum float64
	var count int64
	for _, nw := range nws {
		if nw.id > id {
			sum += nw.w
			count++
		}
	}
	return sum, count
}

// runWEP prunes below the global mean edge weight.
func runWEP(g *graphContext, ids []profile.ID) []Edge {
	var sum float64
	var count int64
	sc := g.scratch.get()
	for _, id := range ids {
		s, n := nodePartialSum(g.weightedNeighbours(id, sc), id)
		sum += s
		count += n
	}
	g.scratch.put(sc)
	if count == 0 {
		return nil
	}
	threshold := sum / float64(count)
	var out []Edge
	forEachEdge(g, ids, func(a, b profile.ID, w float64) {
		if w >= threshold {
			out = append(out, Edge{A: a, B: b, Weight: w})
		}
	})
	sortEdges(out)
	return out
}

// runCEP keeps the globally top-K edges (ties at the K-th weight are all
// kept, so the result can slightly exceed K).
func runCEP(g *graphContext, ids []profile.ID, k int) []Edge {
	var weights []float64
	forEachEdge(g, ids, func(_, _ profile.ID, w float64) {
		weights = append(weights, w)
	})
	if len(weights) == 0 {
		return nil
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(weights)))
	if k > len(weights) {
		k = len(weights)
	}
	threshold := weights[k-1]
	var out []Edge
	forEachEdge(g, ids, func(a, b profile.ID, w float64) {
		if w >= threshold {
			out = append(out, Edge{A: a, B: b, Weight: w})
		}
	})
	sortEdges(out)
	return out
}

// nodeThreshold computes one node's pruning threshold from its sorted
// weighted neighbourhood: the mean edge weight for WNP, or half the
// maximum for Blast. Summation order is fixed (ascending neighbour ID) so
// that sequential and distributed runs agree bitwise.
func nodeThreshold(nws []neighbourWeight, blast bool) float64 {
	if blast {
		maxW := 0.0
		for _, nw := range nws {
			if nw.w > maxW {
				maxW = nw.w
			}
		}
		return maxW / 2
	}
	sum := 0.0
	for _, nw := range nws {
		sum += nw.w
	}
	return sum / float64(len(nws))
}

// nodeThresholds computes the per-node pruning thresholds, dense by
// profile ID (untouched nodes keep the zero threshold, matching the old
// map's zero value for absent keys).
func nodeThresholds(g *graphContext, ids []profile.ID, blast bool) []float64 {
	out := make([]float64, g.scratch.n)
	s := g.scratch.get()
	defer g.scratch.put(s)
	for _, id := range ids {
		nws := g.weightedNeighbours(id, s)
		if len(nws) == 0 {
			continue
		}
		out[id] = nodeThreshold(nws, blast)
	}
	return out
}

// runNodeThreshold implements WNP, reciprocal WNP, and Blast pruning.
func runNodeThreshold(g *graphContext, ids []profile.ID, rule Pruning) []Edge {
	thresholds := nodeThresholds(g, ids, rule == BlastPruning)
	reciprocal := rule == ReciprocalWNP
	var out []Edge
	forEachEdge(g, ids, func(a, b profile.ID, w float64) {
		okA := w >= thresholds[a]
		okB := w >= thresholds[b]
		keep := okA || okB
		if reciprocal {
			keep = okA && okB
		}
		if keep {
			out = append(out, Edge{A: a, B: b, Weight: w})
		}
	})
	sortEdges(out)
	return out
}

// runCNP keeps edges in the top-k neighbourhood of either endpoint (both
// for the reciprocal variant).
func runCNP(g *graphContext, ids []profile.ID, k int, reciprocal bool) []Edge {
	// kth[id] is the k-th largest edge weight of the node; an edge is in a
	// node's top-k iff w >= kth.
	kth := make([]float64, g.scratch.n)
	s := g.scratch.get()
	for _, id := range ids {
		nws := g.weightedNeighbours(id, s)
		if len(nws) == 0 {
			continue
		}
		kth[id] = s.kthLargestWeight(nws, k)
	}
	g.scratch.put(s)
	var out []Edge
	forEachEdge(g, ids, func(a, b profile.ID, w float64) {
		okA := w >= kth[a]
		okB := w >= kth[b]
		keep := okA || okB
		if reciprocal {
			keep = okA && okB
		}
		if keep {
			out = append(out, Edge{A: a, B: b, Weight: w})
		}
	})
	sortEdges(out)
	return out
}
