package metablocking

// Golden tests reproducing the paper's toy examples exactly: Figure 1
// (schema-agnostic meta-blocking) and Figure 2 (loose-schema meta-blocking
// with entropy). The four bibliographic profiles, the blocks they
// generate, every edge weight, and the pruned edge sets are all taken
// from the figures.

import (
	"math"
	"reflect"
	"sort"
	"testing"

	"sparker/internal/blocking"
	"sparker/internal/profile"
)

// figureProfiles builds p1..p4 of Figure 1(a) as a dirty collection
// (the figure connects same-source profiles, so the toy is dirty ER).
func figureProfiles() *profile.Collection {
	mk := func(id string, kvs ...[2]string) profile.Profile {
		p := profile.Profile{OriginalID: id}
		for _, kv := range kvs {
			p.Add(kv[0], kv[1])
		}
		return p
	}
	p1 := mk("p1",
		[2]string{"name", "Blast"},
		[2]string{"authors", "G. Simonini"},
		[2]string{"abstract", "how to improve meta-blocking"})
	p2 := mk("p2",
		[2]string{"name", "SparkER"},
		[2]string{"authors", "L. Gagliardelli"},
		[2]string{"abstract", "Simonini et al proposed blocking"})
	p3 := mk("p3",
		[2]string{"title", "Blast: loosely schema blocking"},
		[2]string{"author", "Giovanni Simonini"},
		[2]string{"year", "2016"})
	p4 := mk("p4",
		[2]string{"title", "SparkER: parallel Blast"},
		[2]string{"author", "Luca Gagliardelli"},
		[2]string{"year", "2017"})
	return profile.NewDirty([]profile.Profile{p1, p2, p3, p4})
}

func blockKeys(c *blocking.Collection) map[string][]profile.ID {
	out := map[string][]profile.ID{}
	for i := range c.Blocks {
		b := c.Blocks[i]
		ids := append(append([]profile.ID{}, b.A...), b.B...)
		sort.Slice(ids, func(x, y int) bool { return ids[x] < ids[y] })
		out[b.Key] = ids
	}
	return out
}

// TestFigure1Blocks checks the schema-agnostic token blocking of Figure
// 1(b): exactly the five blocks shown, with the profiles shown.
func TestFigure1Blocks(t *testing.T) {
	c := figureProfiles()
	blocks := blocking.TokenBlocking(c, blocking.Options{})
	got := blockKeys(blocks)
	want := map[string][]profile.ID{
		"blast":        {0, 2, 3},
		"simonini":     {0, 1, 2},
		"blocking":     {0, 1, 2},
		"sparker":      {1, 3},
		"gagliardelli": {1, 3},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("blocks mismatch:\ngot  %v\nwant %v", got, want)
	}
}

// TestFigure1MetaBlocking checks Figure 1(c): CBS edge weights
// (3,2,2,2,1,1) and average-threshold pruning that removes exactly the
// dashed edges p1-p4 and p3-p4.
func TestFigure1MetaBlocking(t *testing.T) {
	c := figureProfiles()
	blocks := blocking.TokenBlocking(c, blocking.Options{})
	idx := blocking.BuildIndex(blocks)
	edges := Run(idx, Options{Scheme: CBS, Pruning: WEP})

	want := []Edge{
		{A: 0, B: 1, Weight: 2}, // p1-p2
		{A: 0, B: 2, Weight: 3}, // p1-p3
		{A: 1, B: 2, Weight: 2}, // p2-p3
		{A: 1, B: 3, Weight: 2}, // p2-p4
	}
	if !reflect.DeepEqual(edges, want) {
		t.Fatalf("retained edges mismatch:\ngot  %v\nwant %v", edges, want)
	}
}

// figure2Partitioning is the loose schema of Figure 2(a): cluster 1 =
// {Name, Title, Abstract} with entropy 0.4, cluster 2 = {Authors, Author}
// with entropy 0.8 (year stays in the blob).
type figure2Partitioning struct{}

func (figure2Partitioning) ClusterOf(_ int, attribute string) int {
	switch attribute {
	case "name", "title", "abstract":
		return 1
	case "authors", "author":
		return 2
	}
	return 0
}

func (figure2Partitioning) EntropyOf(cluster int) float64 {
	switch cluster {
	case 1:
		return 0.4
	case 2:
		return 0.8
	}
	return 0
}

// TestFigure2LooseBlocks checks Figure 2(b): the token "simonini" splits
// into simonini_author {p1, p3} and simonini_text {p2}; the latter
// produces no block.
func TestFigure2LooseBlocks(t *testing.T) {
	c := figureProfiles()
	blocks := blocking.TokenBlocking(c, blocking.Options{Clustering: figure2Partitioning{}})
	got := blockKeys(blocks)
	want := map[string][]profile.ID{
		"blast_1":        {0, 2, 3},
		"blocking_1":     {0, 1, 2},
		"sparker_1":      {1, 3},
		"simonini_2":     {0, 2},
		"gagliardelli_2": {1, 3},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("loose blocks mismatch:\ngot  %v\nwant %v", got, want)
	}
}

// TestFigure2EntropyMetaBlocking checks Figure 2(c): entropy-weighted
// edges (p1-p3 = 1.6, p2-p4 = 1.2, all others 0.4) and pruning that keeps
// only the two correct matches, removing the red edges Figure 1(c)
// retained.
func TestFigure2EntropyMetaBlocking(t *testing.T) {
	c := figureProfiles()
	blocks := blocking.TokenBlocking(c, blocking.Options{Clustering: figure2Partitioning{}})
	idx := blocking.BuildIndex(blocks)

	edges := Run(idx, Options{Scheme: CBS, Pruning: WEP, Entropy: figure2Partitioning{}})
	if len(edges) != 2 {
		t.Fatalf("retained %d edges, want 2: %v", len(edges), edges)
	}
	if edges[0].A != 0 || edges[0].B != 2 || math.Abs(edges[0].Weight-1.6) > 1e-9 {
		t.Fatalf("edge p1-p3 wrong: %+v", edges[0])
	}
	if edges[1].A != 1 || edges[1].B != 3 || math.Abs(edges[1].Weight-1.2) > 1e-9 {
		t.Fatalf("edge p2-p4 wrong: %+v", edges[1])
	}
}

// TestFigure2AllEdgeWeights verifies every weight of the Figure 2(c)
// graph before pruning.
func TestFigure2AllEdgeWeights(t *testing.T) {
	c := figureProfiles()
	blocks := blocking.TokenBlocking(c, blocking.Options{Clustering: figure2Partitioning{}})
	idx := blocking.BuildIndex(blocks)
	g := newGraphContext(idx, Options{Scheme: CBS, Entropy: figure2Partitioning{}})

	want := map[[2]profile.ID]float64{
		{0, 1}: 0.4, {0, 2}: 1.6, {0, 3}: 0.4,
		{1, 2}: 0.4, {1, 3}: 1.2, {2, 3}: 0.4,
	}
	got := map[[2]profile.ID]float64{}
	forEachEdge(g, idx.ProfileIDs(), func(a, b profile.ID, w float64) {
		got[[2]profile.ID{a, b}] = w
	})
	if len(got) != len(want) {
		t.Fatalf("edge count: got %v want %v", got, want)
	}
	for k, w := range want {
		if math.Abs(got[k]-w) > 1e-9 {
			t.Errorf("edge %v: weight %.3f, want %.3f", k, got[k], w)
		}
	}
}
