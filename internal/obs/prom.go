package obs

import (
	"bufio"
	"io"
	"math"
	"strconv"
)

// Label is one Prometheus label pair.
type Label struct {
	Name, Value string
}

// Expo writes the Prometheus text exposition format (version 0.0.4):
// `# HELP` / `# TYPE` headers once per metric family, then one sample
// line per value. Families must be emitted contiguously — interleaving
// two families re-emits headers, which scrapers reject — so callers
// group all label variants of one name together, which the serving
// layer's fixed route list does naturally. Expo is a scrape-path
// convenience, not a hot-path primitive: it buffers and allocates
// freely.
type Expo struct {
	w    *bufio.Writer
	last string // family whose HELP/TYPE headers were last written
	err  error
}

// NewExpo wraps w for exposition writing; call Flush when done.
func NewExpo(w io.Writer) *Expo {
	return &Expo{w: bufio.NewWriter(w)}
}

// Flush drains the buffer and returns the first write error.
func (e *Expo) Flush() error {
	if e.err == nil {
		e.err = e.w.Flush()
	}
	return e.err
}

// Counter emits one counter sample (headers once per family).
func (e *Expo) Counter(name, help string, v float64, labels ...Label) {
	e.header(name, help, "counter")
	e.sample(name, "", labels, "", v)
}

// Gauge emits one gauge sample (headers once per family).
func (e *Expo) Gauge(name, help string, v float64, labels ...Label) {
	e.header(name, help, "gauge")
	e.sample(name, "", labels, "", v)
}

// Histogram emits one histogram series: cumulative `_bucket` lines up to
// the last non-empty bucket plus `+Inf`, then `_sum` and `_count`.
// scale converts observed values into the exposition unit (1e-9 turns
// nanoseconds into the conventional seconds; 1 leaves plain counts).
func (e *Expo) Histogram(name, help string, s HistogramSnapshot, scale float64, labels ...Label) {
	e.header(name, help, "histogram")
	top := 0
	for i, b := range s.Buckets {
		if b > 0 {
			top = i
		}
	}
	var cum uint64
	for i := 0; i <= top && i < NumBuckets-1; i++ {
		cum += s.Buckets[i]
		e.sample(name+"_bucket", "le", labels, formatFloat(BucketUpper(i)*scale), float64(cum))
	}
	e.sample(name+"_bucket", "le", labels, "+Inf", float64(s.Count))
	e.sample(name+"_sum", "", labels, "", float64(s.Sum)*scale)
	e.sample(name+"_count", "", labels, "", float64(s.Count))
}

// header writes the HELP and TYPE lines, once per contiguous family.
func (e *Expo) header(name, help, typ string) {
	if e.err != nil || name == e.last {
		return
	}
	e.last = name
	e.writeString("# HELP " + name + " " + escapeHelp(help) + "\n")
	e.writeString("# TYPE " + name + " " + typ + "\n")
}

// sample writes one `name{labels} value` line, appending the extra
// label (Histogram's `le`) after the caller's labels when set.
func (e *Expo) sample(name, extraName string, labels []Label, extraValue string, v float64) {
	if e.err != nil {
		return
	}
	e.writeString(name)
	if len(labels) > 0 || extraName != "" {
		e.writeString("{")
		for i, l := range labels {
			if i > 0 {
				e.writeString(",")
			}
			e.writeString(l.Name + "=\"" + escapeLabel(l.Value) + "\"")
		}
		if extraName != "" {
			if len(labels) > 0 {
				e.writeString(",")
			}
			e.writeString(extraName + "=\"" + extraValue + "\"")
		}
		e.writeString("}")
	}
	e.writeString(" " + formatFloat(v) + "\n")
}

func (e *Expo) writeString(s string) {
	if e.err == nil {
		_, e.err = e.w.WriteString(s)
	}
}

// formatFloat renders a sample value: integral floats as integers (the
// common case for counts), the rest in compact scientific/decimal form,
// infinities as the +Inf/-Inf tokens the format defines.
func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	if math.IsInf(v, -1) {
		return "-Inf"
	}
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(s string) string {
	return replaceAll(s, func(r byte) string {
		switch r {
		case '\\':
			return `\\`
		case '"':
			return `\"`
		case '\n':
			return `\n`
		}
		return ""
	})
}

// escapeHelp escapes a HELP text per the exposition format.
func escapeHelp(s string) string {
	return replaceAll(s, func(r byte) string {
		switch r {
		case '\\':
			return `\\`
		case '\n':
			return `\n`
		}
		return ""
	})
}

// replaceAll applies a byte-level escaper, returning s unchanged (no
// copy) when nothing needs escaping.
func replaceAll(s string, esc func(byte) string) string {
	for i := 0; i < len(s); i++ {
		if esc(s[i]) != "" {
			out := make([]byte, 0, len(s)+4)
			out = append(out, s[:i]...)
			for ; i < len(s); i++ {
				if e := esc(s[i]); e != "" {
					out = append(out, e...)
				} else {
					out = append(out, s[i])
				}
			}
			return string(out)
		}
	}
	return s
}
