// Package obstest validates Prometheus text expositions in tests: the
// obs.Expo unit tests and the serve-level /metrics scrape test share
// one line-grammar checker.
package obstest

import (
	"regexp"
	"strings"
	"testing"
)

var (
	helpTypeRe = regexp.MustCompile(`^# (HELP [a-zA-Z_:][a-zA-Z0-9_:]* .*|TYPE [a-zA-Z_:][a-zA-Z0-9_:]* (counter|gauge|histogram))$`)
	sampleRe   = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")*\})? (\+Inf|-Inf|NaN|[-+0-9.eE]+)$`)
)

// ValidateExposition checks every line of a Prometheus text exposition
// against the 0.0.4 grammar: headers are well-formed HELP/TYPE lines,
// samples are `name{labels} value`, and every sample's family carries a
// TYPE declaration before its first sample.
func ValidateExposition(t *testing.T, body string) {
	t.Helper()
	lines := strings.Split(strings.TrimRight(body, "\n"), "\n")
	if len(lines) == 0 || lines[0] == "" {
		t.Fatal("empty exposition")
	}
	typed := map[string]bool{}
	for _, line := range lines {
		if strings.HasPrefix(line, "#") {
			if !helpTypeRe.MatchString(line) {
				t.Errorf("bad header line: %q", line)
				continue
			}
			if strings.HasPrefix(line, "# TYPE ") {
				typed[strings.Fields(line)[2]] = true
			}
			continue
		}
		m := sampleRe.FindStringSubmatch(line)
		if m == nil {
			t.Errorf("bad sample line: %q", line)
			continue
		}
		name := m[1]
		family := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if base := strings.TrimSuffix(name, suffix); base != name && typed[base] {
				family = base
				break
			}
		}
		if !typed[family] {
			t.Errorf("sample %q has no preceding TYPE for family %q", line, family)
		}
	}
}
