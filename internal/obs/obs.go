// Package obs is the dependency-free, allocation-free metrics core of
// the serving path: atomic counters and gauges, fixed-bucket log2
// latency histograms (bucket index via bits.Len64 — one shift-free
// instruction, no float math), and a stage clock that slices one
// request into contiguous per-stage durations with a single monotonic
// read per boundary. Nothing here allocates after construction, takes a
// lock, or imports anything heavier than sync/atomic, so the query hot
// path can record into it without moving its allocs/op — the same
// discipline as the flat neighbourhood kernel, applied to telemetry.
package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Gauge is an atomic instantaneous value (last snapshot size, queue
// depth, ...).
type Gauge struct{ v atomic.Int64 }

// Store sets the value.
func (g *Gauge) Store(n int64) { g.v.Store(n) }

// Add adjusts the value by n.
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// NumBuckets is the fixed bucket count of Histogram: bucket 0 holds
// exact zeros, bucket i holds values in [2^(i-1), 2^i), and the last
// bucket absorbs everything at or above 2^(NumBuckets-2) — about 2.4
// hours when the unit is nanoseconds, far past any duration the serving
// path can produce.
const NumBuckets = 44

// bucketOf maps a value onto its log2 bucket. Negative values (a clock
// stepping backwards) clamp to bucket 0 rather than corrupting the
// index.
func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	idx := bits.Len64(uint64(v))
	if idx >= NumBuckets {
		idx = NumBuckets - 1
	}
	return idx
}

// Histogram is a fixed-bucket log2 histogram: concurrent Observe calls
// are three atomic adds, no locks, no allocation. The zero value is
// ready to use. Log2 buckets trade fine resolution for a universally
// safe layout — every positive int64 lands somewhere, and latency
// analysis cares about orders of magnitude, not microsecond edges.
type Histogram struct {
	buckets [NumBuckets]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Int64
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	h.buckets[bucketOf(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Snapshot reads the histogram's current state. Concurrent writers may
// land between the bucket reads, so the snapshot is only approximately
// consistent — exact once writers quiesce, which is what tests and
// scrapes rely on.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	return s
}

// HistogramSnapshot is a point-in-time copy of a Histogram.
type HistogramSnapshot struct {
	Buckets [NumBuckets]uint64
	Count   uint64
	Sum     int64
}

// BucketUpper returns the inclusive upper bound of bucket i (the
// Prometheus `le` value): 0 for bucket 0, 2^i - 1 for the rest, +Inf
// for the final overflow bucket.
func BucketUpper(i int) float64 {
	if i <= 0 {
		return 0
	}
	if i >= NumBuckets-1 {
		return math.Inf(1)
	}
	return float64(uint64(1)<<uint(i) - 1)
}

// Quantile estimates the q-quantile (q in [0, 1]) as the upper bound of
// the bucket holding the q·Count-th observation — an overestimate by at
// most 2x, the log2 resolution. Returns 0 on an empty histogram.
func (s *HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	target := uint64(q * float64(s.Count))
	if target < 1 {
		target = 1
	}
	var cum uint64
	for i, b := range s.Buckets {
		cum += b
		if cum >= target {
			if i >= NumBuckets-1 {
				// The overflow bucket has no finite upper bound; the mean of
				// what landed there is the least-wrong single number.
				return float64(s.Sum) / float64(s.Count)
			}
			return BucketUpper(i)
		}
	}
	return BucketUpper(NumBuckets - 1)
}

// epoch anchors Now: time.Since on a monotonic base compiles down to one
// nanotime read and never allocates.
var epoch = time.Now()

// Now returns monotonic nanoseconds since process start — the timestamp
// currency of every duration in this package.
func Now() int64 { return int64(time.Since(epoch)) }

// StageClock slices one request into contiguous per-stage durations:
// Start opens the window and each Tick charges the time since the
// previous boundary to one stage slot, so N stages cost N+1 monotonic
// reads total. A clock that was never started ticks as a no-op — the
// hot path carries one branch, not a nil check per call site, when
// metrics are disabled. StageClock is a plain value (stack-allocated at
// the call site), the per-query analogue of the kernel's pooled
// epoch-stamped scratch: reused storage, zero steady-state allocation.
type StageClock struct {
	last    int64
	running bool
}

// Start opens the timing window.
func (c *StageClock) Start() {
	c.running = true
	c.last = Now()
}

// Tick adds the time since the previous boundary to nanos[stage] and
// advances the boundary. No-op on a clock that was never started.
func (c *StageClock) Tick(nanos []int64, stage int) {
	if !c.running {
		return
	}
	now := Now()
	nanos[stage] += now - c.last
	c.last = now
}
