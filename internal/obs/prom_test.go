package obs

import (
	"strconv"
	"strings"
	"testing"

	"sparker/internal/obs/obstest"
)

// TestExpoCounterGauge pins header emission (once per contiguous
// family) and label rendering.
func TestExpoCounterGauge(t *testing.T) {
	var sb strings.Builder
	e := NewExpo(&sb)
	e.Counter("app_requests_total", "Requests served.", 3, Label{"route", "/query"})
	e.Counter("app_requests_total", "Requests served.", 4, Label{"route", "/stats"})
	e.Gauge("app_profiles", "Indexed profiles.", 42)
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	obstest.ValidateExposition(t, out)
	if c := strings.Count(out, "# TYPE app_requests_total counter"); c != 1 {
		t.Errorf("TYPE header written %d times, want 1\n%s", c, out)
	}
	for _, want := range []string{
		`app_requests_total{route="/query"} 3`,
		`app_requests_total{route="/stats"} 4`,
		"app_profiles 42",
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("missing line %q in:\n%s", want, out)
		}
	}
}

// TestExpoHistogram checks the cumulative bucket series: increasing le
// bounds, cumulative counts ending at the +Inf line, sum and count
// trailers, and unit scaling.
func TestExpoHistogram(t *testing.T) {
	var h Histogram
	for _, v := range []int64{1, 2, 3, 1000, 2_000_000} {
		h.Observe(v)
	}
	var sb strings.Builder
	e := NewExpo(&sb)
	e.Histogram("app_latency_seconds", "Latency.", h.Snapshot(), 1e-9, Label{"stage", "score"})
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	obstest.ValidateExposition(t, out)

	var lastCum, infCount, count float64 = -1, -1, -1
	var sum float64
	prevLe := -1.0
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		switch {
		case strings.HasPrefix(line, "app_latency_seconds_bucket"):
			val, _ := strconv.ParseFloat(line[strings.LastIndex(line, " ")+1:], 64)
			if strings.Contains(line, `le="+Inf"`) {
				infCount = val
				continue
			}
			leStr := line[strings.Index(line, `le="`)+4:]
			leStr = leStr[:strings.Index(leStr, `"`)]
			le, err := strconv.ParseFloat(leStr, 64)
			if err != nil {
				t.Fatalf("bad le in %q: %v", line, err)
			}
			if le <= prevLe {
				t.Errorf("le bounds not increasing: %g after %g", le, prevLe)
			}
			prevLe = le
			if val < lastCum {
				t.Errorf("bucket counts not cumulative: %g after %g", val, lastCum)
			}
			lastCum = val
		case strings.HasPrefix(line, "app_latency_seconds_sum"):
			sum, _ = strconv.ParseFloat(line[strings.LastIndex(line, " ")+1:], 64)
		case strings.HasPrefix(line, "app_latency_seconds_count"):
			count, _ = strconv.ParseFloat(line[strings.LastIndex(line, " ")+1:], 64)
		}
	}
	if infCount != 5 || count != 5 {
		t.Errorf("+Inf bucket %g / count %g, want 5 / 5", infCount, count)
	}
	if lastCum > infCount {
		t.Errorf("last finite bucket %g exceeds +Inf %g", lastCum, infCount)
	}
	wantSum := float64(1+2+3+1000+2_000_000) * 1e-9
	if diff := sum - wantSum; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("sum = %g, want %g", sum, wantSum)
	}
}

// TestEscaping pins label and help escaping.
func TestEscaping(t *testing.T) {
	var sb strings.Builder
	e := NewExpo(&sb)
	e.Gauge("g", "line one\nline \\two", 1, Label{"p", `a"b\c` + "\nd"})
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	obstest.ValidateExposition(t, out)
	if !strings.Contains(out, `p="a\"b\\c\nd"`) {
		t.Errorf("label not escaped: %s", out)
	}
	if !strings.Contains(out, `# HELP g line one\nline \\two`) {
		t.Errorf("help not escaped: %s", out)
	}
}
