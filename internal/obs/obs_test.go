package obs

import (
	"math"
	"sync"
	"testing"
	"time"
)

// TestHistogramBuckets pins the bucket layout: zeros in bucket 0, each
// power-of-two range in its own bucket, the overflow clamp at the top.
func TestHistogramBuckets(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{
		{-5, 0}, {0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4},
		{1 << 42, NumBuckets - 1}, {math.MaxInt64, NumBuckets - 1},
	}
	for _, c := range cases {
		if got := bucketOf(c.v); got != c.want {
			t.Errorf("bucketOf(%d) = %d, want %d", c.v, got, c.want)
		}
	}
	// Bucket upper bounds bracket their contents.
	for _, v := range []int64{1, 3, 100, 12345, 1 << 30} {
		b := bucketOf(v)
		if up := BucketUpper(b); float64(v) > up {
			t.Errorf("value %d above its bucket %d upper bound %g", v, b, up)
		}
		if b > 1 {
			if lo := BucketUpper(b - 1); float64(v) <= lo {
				t.Errorf("value %d at or below previous bucket bound %g", v, lo)
			}
		}
	}
	if !math.IsInf(BucketUpper(NumBuckets-1), 1) {
		t.Errorf("overflow bucket bound = %g, want +Inf", BucketUpper(NumBuckets-1))
	}
}

// TestHistogramConcurrent is the -race battery: concurrent writers on
// one histogram, then the final-sum invariant — count equals writers ×
// observations, the bucket totals equal the count, and the sum equals
// the arithmetic total of everything observed.
func TestHistogramConcurrent(t *testing.T) {
	const writers, perWriter = 8, 10_000
	var h Histogram
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				h.Observe(int64(w*perWriter + i))
			}
		}(w)
	}
	wg.Wait()

	s := h.Snapshot()
	const n = writers * perWriter
	if s.Count != n {
		t.Fatalf("count = %d, want %d", s.Count, n)
	}
	var bucketTotal uint64
	for _, b := range s.Buckets {
		bucketTotal += b
	}
	if bucketTotal != n {
		t.Fatalf("bucket total = %d, want %d", bucketTotal, n)
	}
	if want := int64(n) * (n - 1) / 2; s.Sum != want {
		t.Fatalf("sum = %d, want %d", s.Sum, want)
	}
}

// TestCounterGaugeConcurrent hammers counters and gauges from many
// goroutines and checks the final values.
func TestCounterGaugeConcurrent(t *testing.T) {
	const writers, perWriter = 8, 10_000
	var c Counter
	var g Gauge
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				c.Inc()
				g.Add(2)
			}
		}()
	}
	wg.Wait()
	if got := c.Load(); got != writers*perWriter {
		t.Fatalf("counter = %d, want %d", got, writers*perWriter)
	}
	if got := g.Load(); got != 2*writers*perWriter {
		t.Fatalf("gauge = %d, want %d", got, 2*writers*perWriter)
	}
	g.Store(7)
	if got := g.Load(); got != 7 {
		t.Fatalf("gauge after store = %d, want 7", got)
	}
}

// TestQuantile checks the estimate against known distributions: always
// an upper bound, never more than one bucket (2x) above the true value.
func TestQuantile(t *testing.T) {
	var h Histogram
	for v := int64(1); v <= 1000; v++ {
		h.Observe(v)
	}
	s := h.Snapshot()
	for _, c := range []struct {
		q    float64
		true float64
	}{{0.5, 500}, {0.9, 900}, {0.99, 990}, {1.0, 1000}} {
		got := s.Quantile(c.q)
		if got < c.true {
			t.Errorf("q%.2f = %g below true value %g", c.q, got, c.true)
		}
		if got > 2*c.true {
			t.Errorf("q%.2f = %g beyond the 2x log2 resolution of %g", c.q, got, c.true)
		}
	}
	var empty Histogram
	es := empty.Snapshot()
	if got := es.Quantile(0.5); got != 0 {
		t.Errorf("empty quantile = %g, want 0", got)
	}
	// Overflow-bucket quantiles fall back to the mean rather than +Inf.
	var over Histogram
	over.Observe(1 << 50)
	os := over.Snapshot()
	if got := os.Quantile(0.5); math.IsInf(got, 1) || got <= 0 {
		t.Errorf("overflow quantile = %g, want finite positive", got)
	}
}

// TestStageClock checks stage slicing: ticks are contiguous, charge the
// right slots, and a never-started clock records nothing.
func TestStageClock(t *testing.T) {
	var nanos [3]int64
	var clk StageClock
	clk.Tick(nanos[:], 0) // not started: no-op
	if nanos[0] != 0 {
		t.Fatalf("unstarted clock recorded %d", nanos[0])
	}
	clk.Start()
	time.Sleep(time.Millisecond)
	clk.Tick(nanos[:], 0)
	time.Sleep(time.Millisecond)
	clk.Tick(nanos[:], 2)
	if nanos[0] < int64(time.Millisecond/2) {
		t.Errorf("stage 0 = %dns, want >= ~1ms", nanos[0])
	}
	if nanos[2] < int64(time.Millisecond/2) {
		t.Errorf("stage 2 = %dns, want >= ~1ms", nanos[2])
	}
	if nanos[1] != 0 {
		t.Errorf("stage 1 = %dns, want 0", nanos[1])
	}
}

// TestNowMonotonic pins the monotonic guarantee Tick depends on.
func TestNowMonotonic(t *testing.T) {
	a := Now()
	b := Now()
	if b < a {
		t.Fatalf("Now went backwards: %d then %d", a, b)
	}
}
