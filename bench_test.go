package sparker_test

// One benchmark per table/figure of the paper (see the DESIGN.md
// experiment index E1–E9), plus the design-choice ablations and
// micro-benchmarks of the hot paths. Regenerate the EXPERIMENTS.md tables
// with cmd/sparker-bench; these benchmarks time the same code paths under
// testing.B so that
//
//	go test -bench=. -benchmem
//
// tracks the cost of every experiment.

import (
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"

	"sparker"
	"sparker/internal/blocking"
	"sparker/internal/clustering"
	"sparker/internal/dataflow"
	"sparker/internal/datagen"
	"sparker/internal/experiments"
	"sparker/internal/index"
	"sparker/internal/looseschema"
	"sparker/internal/matching"
	"sparker/internal/metablocking"
	"sparker/internal/obs"
	"sparker/internal/profile"
	"sparker/internal/tokenize"
)

var (
	benchOnce sync.Once
	benchData *experiments.Dataset
)

// benchDataset memoises the default SynthAbtBuy benchmark across benches.
func benchDataset(b *testing.B) *experiments.Dataset {
	b.Helper()
	benchOnce.Do(func() {
		d, err := experiments.LoadSynthAbtBuy(datagen.AbtBuy())
		if err != nil {
			b.Fatal(err)
		}
		benchData = d
	})
	return benchData
}

// BenchmarkE1Figure1Toy regenerates Figure 1(c).
func BenchmarkE1Figure1Toy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		edges := experiments.Figure1Toy()
		if len(edges) != 6 {
			b.Fatalf("edges: %d", len(edges))
		}
	}
}

// BenchmarkE2Figure2Toy regenerates Figure 2(c).
func BenchmarkE2Figure2Toy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		edges := experiments.Figure2Toy()
		retained := 0
		for _, e := range edges {
			if e.Retained {
				retained++
			}
		}
		if retained != 2 {
			b.Fatalf("retained: %d", retained)
		}
	}
}

// BenchmarkE3ThresholdSweep regenerates the Figure 6(a,b) sweep.
func BenchmarkE3ThresholdSweep(b *testing.B) {
	d := benchDataset(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := experiments.ThresholdSweep(d, []float64{1.0, 0.3})
		if rows[1].Comparisons >= rows[0].Comparisons {
			b.Fatal("loose schema did not reduce comparisons")
		}
	}
}

// BenchmarkE4ManualEdit regenerates the Figure 6(c,d) edit.
func BenchmarkE4ManualEdit(b *testing.B) {
	d := benchDataset(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := experiments.ManualEdit(d)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.NewlyLost) == 0 {
			b.Fatal("split lost nothing")
		}
	}
}

// BenchmarkE5EntropyMetaBlocking regenerates Figure 6(e).
func BenchmarkE5EntropyMetaBlocking(b *testing.B) {
	d := benchDataset(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := experiments.EntropyMetaBlocking(d)
		if rows[2].Candidates >= rows[0].Candidates {
			b.Fatal("meta-blocking did not reduce candidates")
		}
	}
}

// BenchmarkE6Scalability sweeps executor counts over the distributed
// blocker + broadcast meta-blocker.
func BenchmarkE6Scalability(b *testing.B) {
	d := benchDataset(b)
	part := looseschema.Partition(d.Collection, looseschema.Options{Threshold: 0.3})
	opts := blocking.Options{Clustering: part}
	for _, executors := range []int{1, 2, 4, 8} {
		b.Run(benchName("executors", executors), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ctx := dataflow.NewContext(dataflow.WithParallelism(executors))
				raw, err := blocking.DistributedTokenBlocking(ctx, d.Collection, opts, 2*executors)
				if err != nil {
					b.Fatal(err)
				}
				filtered := blocking.Filter(blocking.PurgeBySize(raw, 0.5), 0.8)
				idx := blocking.BuildIndex(filtered)
				if _, err := metablocking.RunDistributed(ctx, idx, metablocking.Options{
					Scheme: metablocking.CBS, Pruning: metablocking.BlastPruning, Entropy: part,
				}, 2*executors); err != nil {
					b.Fatal(err)
				}
				ctx.Close()
			}
		})
	}
}

// BenchmarkE7BroadcastVsNaive compares the two distributed meta-blocking
// plans.
func BenchmarkE7BroadcastVsNaive(b *testing.B) {
	d := benchDataset(b)
	part := looseschema.Partition(d.Collection, looseschema.Options{Threshold: 0.3})
	opts := blocking.Options{Clustering: part}
	filtered := blocking.Filter(blocking.PurgeBySize(blocking.TokenBlocking(d.Collection, opts), 0.5), 0.8)
	idx := blocking.BuildIndex(filtered)
	mo := metablocking.Options{Scheme: metablocking.CBS, Pruning: metablocking.WEP}

	b.Run("broadcast-join", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ctx := dataflow.NewContext(dataflow.WithParallelism(4))
			if _, err := metablocking.RunDistributed(ctx, idx, mo, 8); err != nil {
				b.Fatal(err)
			}
			ctx.Close()
		}
	})
	b.Run("naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ctx := dataflow.NewContext(dataflow.WithParallelism(4))
			if _, err := metablocking.RunNaiveDistributed(ctx, idx, mo, 8); err != nil {
				b.Fatal(err)
			}
			ctx.Close()
		}
	})
}

// BenchmarkE8EndToEnd times the full default pipeline.
func BenchmarkE8EndToEnd(b *testing.B) {
	d := benchDataset(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.EndToEnd(d, false); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE9Sampling times the debug-sample construction.
func BenchmarkE9Sampling(b *testing.B) {
	d := benchDataset(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := experiments.SamplingExperiment(d, []int{20}, 10)
		if rows[0].MatchingPairs == 0 {
			b.Fatal("sample lost all matches")
		}
	}
}

// BenchmarkE10Progressive times the progressive schedulers (full
// schedule construction).
func BenchmarkE10Progressive(b *testing.B) {
	d := benchDataset(b)
	part := looseschema.Partition(d.Collection, looseschema.Options{Threshold: 0.3})
	filtered := blocking.Filter(blocking.PurgeBySize(
		blocking.TokenBlocking(d.Collection, blocking.Options{Clustering: part}), 0.5), 0.8)
	idx := blocking.BuildIndex(filtered)
	mo := metablocking.Options{Scheme: metablocking.ARCS, Entropy: part}
	for _, s := range []metablocking.ScheduleStrategy{metablocking.GlobalTop, metablocking.ProfileScheduling} {
		b.Run(s.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				metablocking.Schedule(idx, mo, s, 0)
			}
		})
	}
}

// BenchmarkE11Bibliographic times the end-to-end pipeline on the second
// benchmark family.
func BenchmarkE11Bibliographic(b *testing.B) {
	bib, err := experiments.LoadBibliographic(datagen.BibDefault())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.EndToEnd(bib, false); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationSchemes times meta-blocking per weight scheme
// (Blast pruning, entropy on), the DESIGN.md section-5 ablation.
func BenchmarkAblationSchemes(b *testing.B) {
	d := benchDataset(b)
	part := looseschema.Partition(d.Collection, looseschema.Options{Threshold: 0.3})
	filtered := blocking.Filter(blocking.PurgeBySize(
		blocking.TokenBlocking(d.Collection, blocking.Options{Clustering: part}), 0.5), 0.8)
	idx := blocking.BuildIndex(filtered)
	for _, s := range []metablocking.Scheme{metablocking.CBS, metablocking.ECBS, metablocking.JS, metablocking.EJS, metablocking.ARCS} {
		b.Run(s.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				metablocking.Run(idx, metablocking.Options{Scheme: s, Pruning: metablocking.BlastPruning, Entropy: part})
			}
		})
	}
}

// BenchmarkAblationPruning times meta-blocking per pruning rule.
func BenchmarkAblationPruning(b *testing.B) {
	d := benchDataset(b)
	part := looseschema.Partition(d.Collection, looseschema.Options{Threshold: 0.3})
	filtered := blocking.Filter(blocking.PurgeBySize(
		blocking.TokenBlocking(d.Collection, blocking.Options{Clustering: part}), 0.5), 0.8)
	idx := blocking.BuildIndex(filtered)
	for _, p := range []metablocking.Pruning{metablocking.WEP, metablocking.WNP, metablocking.CNP, metablocking.BlastPruning} {
		b.Run(p.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				metablocking.Run(idx, metablocking.Options{Scheme: metablocking.CBS, Pruning: p, Entropy: part})
			}
		})
	}
}

// --- micro-benchmarks of the hot paths ---

// BenchmarkMetablockingSequential times the sequential flat-kernel
// meta-blocker per weight scheme (Blast pruning, entropy on). Together
// with BenchmarkIndexQuery it feeds the CI hot-path artifact
// (BENCH_hotpath.json); allocs/op is the number the flat neighbourhood
// kernel is accountable for.
func BenchmarkMetablockingSequential(b *testing.B) {
	d := benchDataset(b)
	part := looseschema.Partition(d.Collection, looseschema.Options{Threshold: 0.3})
	filtered := blocking.Filter(blocking.PurgeBySize(
		blocking.TokenBlocking(d.Collection, blocking.Options{Clustering: part}), 0.5), 0.8)
	idx := blocking.BuildIndex(filtered)
	for _, s := range []metablocking.Scheme{metablocking.CBS, metablocking.JS, metablocking.EJS} {
		b.Run(s.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				metablocking.Run(idx, metablocking.Options{Scheme: s, Pruning: metablocking.BlastPruning, Entropy: part})
			}
		})
	}
}

// BenchmarkMetablockingDistributed times the broadcast-join meta-blocker
// with the per-task pooled scratches.
func BenchmarkMetablockingDistributed(b *testing.B) {
	d := benchDataset(b)
	part := looseschema.Partition(d.Collection, looseschema.Options{Threshold: 0.3})
	filtered := blocking.Filter(blocking.PurgeBySize(
		blocking.TokenBlocking(d.Collection, blocking.Options{Clustering: part}), 0.5), 0.8)
	idx := blocking.BuildIndex(filtered)
	ctx := dataflow.NewContext(dataflow.WithParallelism(4))
	defer ctx.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := metablocking.RunDistributed(ctx, idx, metablocking.Options{
			Scheme: metablocking.CBS, Pruning: metablocking.WNP, Entropy: part,
		}, 8); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTokenBlocking times the parallel sharded block construction.
// The flat-vs-reference comparison lives in internal/blocking's
// BenchmarkTokenBlocking/BenchmarkBatchBlocking (same CI artifact).
func BenchmarkTokenBlocking(b *testing.B) {
	d := benchDataset(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		blocking.TokenBlocking(d.Collection, blocking.Options{})
	}
}

// BenchmarkBlockPurgeFilter times purging + CSR filtering.
func BenchmarkBlockPurgeFilter(b *testing.B) {
	d := benchDataset(b)
	raw := blocking.TokenBlocking(d.Collection, blocking.Options{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		blocking.Filter(blocking.PurgeBySize(raw, 0.5), 0.8)
	}
}

// BenchmarkAttributePartitioning times the LSH loose-schema generator.
func BenchmarkAttributePartitioning(b *testing.B) {
	d := benchDataset(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		looseschema.Partition(d.Collection, looseschema.Options{Threshold: 0.3})
	}
}

// BenchmarkMatching times candidate scoring with Jaccard.
func BenchmarkMatching(b *testing.B) {
	d := benchDataset(b)
	cfg := sparker.DefaultConfig()
	res, err := sparker.NewPipeline(cfg, nil).RunBlocker(d.Collection)
	if err != nil {
		b.Fatal(err)
	}
	measure := matching.JaccardMeasure(tokenize.Options{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		matching.MatchPairs(d.Collection, res.Candidates, measure, 0.3)
	}
}

// BenchmarkConnectedComponents times the sequential clusterer.
func BenchmarkConnectedComponents(b *testing.B) {
	d := benchDataset(b)
	cfg := sparker.DefaultConfig()
	pipeline := sparker.NewPipeline(cfg, nil)
	res, err := pipeline.RunBlocker(d.Collection)
	if err != nil {
		b.Fatal(err)
	}
	matches, err := pipeline.RunMatcher(d.Collection, res.Candidates)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clustering.ConnectedComponents(matches)
	}
}

// --- online index benchmarks (the serving workload) ---

var (
	idxBenchOnce sync.Once
	idxBenchCol  *profile.Collection
)

// indexBenchCollection memoises a ~10k-profile synthetic collection for
// the serving benchmarks.
func indexBenchCollection(b *testing.B) *profile.Collection {
	b.Helper()
	idxBenchOnce.Do(func() {
		cfg := datagen.AbtBuy()
		cfg.CoreEntities = 4500
		cfg.AOnly = 400
		cfg.BDup = 400
		idxBenchCol = datagen.Generate(cfg).Collection
	})
	return idxBenchCol
}

// BenchmarkIndexQuery times concurrent point lookups against the online
// index per shard count. The reported comparisons/op and postings/op
// metrics show the per-query work staying bounded by the candidate
// blocks, orders of magnitude below the collection size.
func BenchmarkIndexQuery(b *testing.B) {
	c := indexBenchCollection(b)
	for _, shards := range []int{1, 4, 16} {
		cfg := index.DefaultConfig()
		cfg.Shards = shards
		idx, err := index.NewFromCollection(c, cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(benchName("shards", shards), func(b *testing.B) {
			var comparisons, postings, next atomic.Int64
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					i := int(next.Add(1)) % c.Size()
					r := idx.Resolve(c.Get(profile.ID(i)))
					comparisons.Add(int64(r.Comparisons))
					postings.Add(int64(r.Query.PostingsScanned))
				}
			})
			b.ReportMetric(float64(comparisons.Load())/float64(b.N), "comparisons/op")
			b.ReportMetric(float64(postings.Load())/float64(b.N), "postings/op")
		})
	}
}

// BenchmarkIndexQueryBare is BenchmarkIndexQuery at 16 shards with the
// metrics layer disabled (Config.DisableMetrics). The delta against
// BenchmarkIndexQuery/shards-16 is the full cost of per-stage
// instrumentation — it should be nanoseconds of monotonic reads and
// atomic adds per query, and exactly zero extra allocs/op.
func BenchmarkIndexQueryBare(b *testing.B) {
	c := indexBenchCollection(b)
	cfg := index.DefaultConfig()
	cfg.Shards = 16
	cfg.DisableMetrics = true
	idx, err := index.NewFromCollection(c, cfg)
	if err != nil {
		b.Fatal(err)
	}
	var next atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			i := int(next.Add(1)) % c.Size()
			idx.Resolve(c.Get(profile.ID(i)))
		}
	})
}

// BenchmarkIndexQueryBudget times budgeted resolution against the
// budget=∞ baseline at 16 shards. The "unlimited" case runs the exact
// pre-budget path (zero-value Budget adds only dead branches — ns/op
// and allocs/op must match BenchmarkIndexQuery/shards-16); the capped
// cases show resolution cost dropping with MaxComparisons, the lever
// the serving tier's degradation ladder pulls under load.
func BenchmarkIndexQueryBudget(b *testing.B) {
	c := indexBenchCollection(b)
	cfg := index.DefaultConfig()
	cfg.Shards = 16
	idx, err := index.NewFromCollection(c, cfg)
	if err != nil {
		b.Fatal(err)
	}
	for _, bc := range []struct {
		name string
		opts index.ResolveOptions
	}{
		{"unlimited", index.ResolveOptions{}},
		{"cap-4", index.ResolveOptions{Budget: index.Budget{MaxComparisons: 4}}},
		{"cap-1", index.ResolveOptions{Budget: index.Budget{MaxComparisons: 1}}},
	} {
		b.Run(bc.name, func(b *testing.B) {
			var comparisons, next atomic.Int64
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					i := int(next.Add(1)) % c.Size()
					r := idx.ResolveWithOptions(c.Get(profile.ID(i)), bc.opts)
					comparisons.Add(int64(r.Comparisons))
				}
			})
			b.ReportMetric(float64(comparisons.Load())/float64(b.N), "comparisons/op")
		})
	}
}

// BenchmarkObsHistogram times the hot-path cost of one histogram
// observation under full contention — every goroutine hammering the
// same histogram, the worst case for the atomic bucket counters. The
// bar is single-digit nanoseconds and zero allocs.
func BenchmarkObsHistogram(b *testing.B) {
	var h obs.Histogram
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		v := int64(1)
		for pb.Next() {
			h.Observe(v)
			v = (v * 2654435761) % (1 << 30) // cycle across buckets
		}
	})
	if h.Snapshot().Count == 0 {
		b.Fatal("no observations recorded")
	}
}

// BenchmarkIndexUpsert times incremental replacement upserts (constant
// index size) per shard count.
func BenchmarkIndexUpsert(b *testing.B) {
	c := indexBenchCollection(b)
	for _, shards := range []int{1, 4, 16} {
		b.Run(benchName("shards", shards), func(b *testing.B) {
			cfg := index.DefaultConfig()
			cfg.Shards = shards
			idx, err := index.NewFromCollection(c, cfg)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// Same (source, original ID): exercises the replace path,
				// keeping the index size constant across iterations.
				if _, _, err := idx.Upsert(c.Profiles[i%c.Size()]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkIndexQueryLSH times concurrent point lookups with the LSH
// probe subsystem enabled, per probe policy. fallback shows the
// common-case cost (most queries are served by token postings and never
// probe); union pays a signature + bucket walk on every query and bounds
// the worst case. Probe candidates flow into the same pooled dense
// kernel scratch as token candidates, so allocs/op stays flat.
func BenchmarkIndexQueryLSH(b *testing.B) {
	c := indexBenchCollection(b)
	for _, pol := range []index.ProbePolicy{index.ProbeFallback, index.ProbeUnion} {
		cfg := index.DefaultConfig()
		cfg.LSH.Policy = pol
		idx, err := index.NewFromCollection(c, cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.Run("policy-"+pol.String(), func(b *testing.B) {
			var comparisons, probes, next atomic.Int64
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					i := int(next.Add(1)) % c.Size()
					r := idx.Resolve(c.Get(profile.ID(i)))
					comparisons.Add(int64(r.Comparisons))
					if r.Query.LSHProbed {
						probes.Add(1)
					}
				}
			})
			b.ReportMetric(float64(comparisons.Load())/float64(b.N), "comparisons/op")
			b.ReportMetric(float64(probes.Load())/float64(b.N), "probes/op")
		})
	}
}

// BenchmarkIndexUpsertLSH times incremental replacement upserts with
// signature and bucket maintenance on (compare BenchmarkIndexUpsert for
// the token-postings-only baseline).
func BenchmarkIndexUpsertLSH(b *testing.B) {
	c := indexBenchCollection(b)
	cfg := index.DefaultConfig()
	cfg.LSH.Policy = index.ProbeFallback
	idx, err := index.NewFromCollection(c, cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := idx.Upsert(c.Profiles[i%c.Size()]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIndexSave times writing a durable snapshot of the ~10k
// profile serving index (encode + fsync + atomic rename); together with
// BenchmarkIndexLoad it puts the cost of a warm restart into the CI
// hot-path artifact (BENCH_hotpath.json).
func BenchmarkIndexSave(b *testing.B) {
	c := indexBenchCollection(b)
	idx, err := index.NewFromCollection(c, index.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	path := filepath.Join(b.TempDir(), "bench.snap")
	b.ReportAllocs()
	b.ResetTimer()
	var st index.PersistState
	for i := 0; i < b.N; i++ {
		if st, err = idx.Save(path); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(st.Bytes), "snapshot_bytes")
}

// BenchmarkIndexSaveDelta times appending a delta snapshot — 100
// upserts' op frames plus one fsync — against the same ~10k profile
// index BenchmarkIndexSave writes in full. This ratio is the point of
// the op log: the delta cost tracks the write rate between saves, not
// the index size.
func BenchmarkIndexSaveDelta(b *testing.B) {
	c := indexBenchCollection(b)
	cfg := index.DefaultConfig()
	cfg.OpLog.Enabled = true
	idx, err := index.NewFromCollection(c, cfg)
	if err != nil {
		b.Fatal(err)
	}
	path := filepath.Join(b.TempDir(), "bench.snap")
	if _, err := idx.Save(path); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var st index.PersistState
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		// Replacement upserts: constant index size, 100 fresh ops per
		// delta save.
		for j := 0; j < 100; j++ {
			if _, _, err := idx.Upsert(c.Profiles[(100*i+j)%c.Size()]); err != nil {
				b.Fatal(err)
			}
		}
		b.StartTimer()
		if st, err = idx.SaveDelta(path); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(st.DeltaBytes)/float64(b.N), "delta_bytes/op")
}

// BenchmarkIndexLoad times restoring a fully queryable index from the
// snapshot — the work a sparker-serve restart pays instead of
// re-tokenizing and re-indexing the whole collection.
func BenchmarkIndexLoad(b *testing.B) {
	c := indexBenchCollection(b)
	cfg := index.DefaultConfig()
	idx, err := index.NewFromCollection(c, cfg)
	if err != nil {
		b.Fatal(err)
	}
	path := filepath.Join(b.TempDir(), "bench.snap")
	if _, err := idx.Save(path); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x, err := index.Load(path, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if x.Size() != c.Size() {
			b.Fatalf("loaded %d profiles, want %d", x.Size(), c.Size())
		}
	}
}

// BenchmarkWALAppend times the durable-upsert path — tokenize, frame,
// append to the on-disk op log, apply — under each fsync policy. The
// spread between never/interval and always is the price of zero data
// loss on power failure: one disk sync per acknowledged write.
func BenchmarkWALAppend(b *testing.B) {
	c := indexBenchCollection(b)
	for _, bench := range []struct {
		name string
		sync index.WALSyncPolicy
	}{
		{"never", index.WALSyncNever},
		{"interval", index.WALSyncInterval},
		{"always", index.WALSyncAlways},
	} {
		b.Run(bench.name, func(b *testing.B) {
			cfg := index.DefaultConfig()
			cfg.OpLog.Enabled = true
			idx, err := index.NewFromCollection(c, cfg)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := idx.OpenWAL(index.WALConfig{Dir: b.TempDir(), Sync: bench.sync}); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// Replacement upserts: constant index size, one WAL
				// frame per iteration.
				if _, _, err := idx.Upsert(c.Profiles[i%c.Size()]); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if err := idx.CloseWAL(); err != nil {
				b.Fatal(err)
			}
		})
	}
}

func benchName(prefix string, n int) string {
	digits := ""
	if n == 0 {
		digits = "0"
	}
	for n > 0 {
		digits = string(rune('0'+n%10)) + digits
		n /= 10
	}
	return prefix + "-" + digits
}
