// Command sparker-serve exposes an online entity index over HTTP: build
// the index once from CSV sources (or the generated benchmark), then
// answer point queries and incremental upserts without re-running the
// batch pipeline.
//
// Two clean-clean CSV sources:
//
//	sparker-serve -a abt.csv -b buy.csv -id id -addr :8080
//
// A single dirty source:
//
//	sparker-serve -dirty products.csv -id id
//
// No inputs: serve the generated SynthAbtBuy benchmark:
//
//	sparker-serve -generate
//
// Endpoints (versioned under /v1/, with the historical unversioned
// paths kept as aliases): POST /v1/query, POST /v1/upsert, POST
// /v1/bulk (JSON-lines bodies, "id" field plus attributes; ?source=1
// targets the second clean source), POST /v1/snapshot/save, GET
// /v1/stats. Every 4xx/5xx answers the typed JSON error envelope
// {"error": {"code", "message"}}.
//
// With -lsh fallback (or union) the index also maintains MinHash/LSH
// bucket postings beside the token postings: queries whose tokens are
// all purged as too common — invisible to token blocking — fall back to
// an LSH probe that recovers high-overlap matches. /query accepts
// per-request ?probe= and ?probe_floor= overrides, and /stats reports
// bucket and probe counters.
//
// Durable snapshots make restarts warm: with -snapshot the server
// restores the index from the file at boot (falling back to a fresh
// build from the input flags when the file is absent or written by an
// incompatible format version), saves it on SIGTERM/SIGINT and on POST
// /snapshot/save, and with -snapshot-interval also on a timer. With
// -delta-interval the timer writes delta snapshots instead: only the
// ops applied since the last save are appended to the file, so the
// persistence cost tracks the write rate, not the index size. Once the
// accumulated delta tail exceeds -compact-ops operations the next
// timed save compacts back to a full snapshot. With -read-only the
// index rejects upserts (HTTP 403) — the replica serving mode: point
// several read-only processes at one snapshot file. A replica only
// ever reads that file: automatic saves are disabled and
// /snapshot/save answers 403, so a stale replica can never clobber the
// primary's newer snapshot.
//
//	sparker-serve -generate -snapshot /var/lib/sparker/idx.snap
//	# ... kill it, restart with the same flags: no re-indexing.
//
// Replication: every sparker-serve keeps an in-memory op log (bounded
// by -oplog-retain) and serves it on GET /deltas, with GET /snapshot
// streaming a full bootstrap image. A replica started with -follow
// bootstraps from its leader over HTTP, serves read-only at its last
// applied sequence number, and tails the leader's delta feed; /stats
// and /metrics report the replication lag. A follower that falls off
// the leader's retention window re-bootstraps automatically.
//
//	sparker-serve -generate -addr :8080                  # leader
//	sparker-serve -follow http://localhost:8080 -addr :8081
//
// Cluster mode: -shards (a comma-separated list of shard base URLs)
// turns the process into a scatter-gather coordinator instead of an
// index server. Upserts route to one shard by hash of the profile's
// original ID, queries fan out to every shard with a split budget and
// merge deterministically, and a dead shard degrades answers (the
// surviving shards' merged results, marked "degraded") rather than
// failing them. Shard health is probed via /readyz; the coordinator's
// own /readyz drains only when no shard is left. -index-shards (the
// per-process index shard count) is unrelated to cluster mode.
//
//	sparker-serve -addr :8081 &                 # shard 0
//	sparker-serve -addr :8082 &                 # shard 1
//	sparker-serve -shards http://localhost:8081,http://localhost:8082 -addr :8080
//
// Durability: with -oplog-dir every op is appended to a CRC-framed,
// rotating on-disk segment file *before* it mutates the index
// (-oplog-fsync picks the always/interval/never fsync policy,
// -oplog-segment-bytes the rotation size). After a crash — kill -9
// included — the next boot restores the newest snapshot, replays the
// log tail past it, truncates a torn or bit-flipped tail at the last
// good frame, and repopulates the in-memory delta window, so followers
// catch up over /deltas without a re-bootstrap. Full snapshots prune
// segments the snapshot already covers.
//
//	sparker-serve -generate -snapshot idx.snap -oplog-dir ./oplog -oplog-fsync always
//
// Overload behavior: with -max-inflight the resolution routes sit
// behind an admission gate — beyond the cap a request waits at most
// -shed-wait for a slot and is then shed with 429/503 + Retry-After,
// and admitted queries degrade under pressure (tightened budgets,
// cheaper probe policies) instead of queueing. -default-budget-ms
// bounds every query's wall clock; clients can tighten (or lift) it
// per request with ?budget_ms= / ?max_comparisons=, and budget-bound
// answers come back marked "truncated" with the stage that tripped.
// GET /healthz (liveness) and /readyz (readiness: 503 while shedding
// hard) let a load balancer drain replicas cleanly; request bodies are
// capped by -max-body (413 beyond), and header/read/write/idle
// timeouts close the slowloris hole:
//
//	sparker-serve -generate -max-inflight 64 -shed-wait 50ms -default-budget-ms 20ms
//
// Observability: GET /metrics serves the Prometheus text exposition
// (disable with -metrics=false), /query?debug=1 returns a per-stage
// timing breakdown inline, -slow-query logs any query slower than the
// given duration with its full stage breakdown, and -pprof starts
// net/http/pprof on a separate address so profiling traffic never
// shares the serving listener:
//
//	sparker-serve -generate -slow-query 50ms -pprof localhost:6060
//
// All logging is structured (log/slog, text format on stderr).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io/fs"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"sparker/internal/datagen"
	"sparker/internal/index"
	"sparker/internal/loader"
	"sparker/internal/matching"
	"sparker/internal/metablocking"
	"sparker/internal/profile"
	"sparker/serve"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "sparker-serve:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		fileA    = flag.String("a", "", "CSV file of the first clean source")
		fileB    = flag.String("b", "", "CSV file of the second clean source")
		dirty    = flag.String("dirty", "", "CSV file of a single dirty source")
		idCol    = flag.String("id", "id", "identifier column name")
		generate = flag.Bool("generate", false, "serve the generated SynthAbtBuy benchmark")

		snapshot         = flag.String("snapshot", "", "snapshot file: restore at boot, save on SIGTERM and POST /snapshot/save")
		snapshotInterval = flag.Duration("snapshot-interval", 0, "also save a full snapshot periodically (0 disables)")
		deltaInterval    = flag.Duration("delta-interval", 0, "append a delta snapshot (ops since the last save) periodically (0 disables)")
		compactOps       = flag.Int("compact-ops", 10000, "compact to a full snapshot once the delta tail holds this many ops (0: never compact on the delta timer)")
		readOnly         = flag.Bool("read-only", false, "replica mode: reject upserts (HTTP 403)")

		follow      = flag.String("follow", "", "replicate from this leader URL: bootstrap via GET /snapshot, tail GET /deltas, serve read-only")
		oplogRetain = flag.Int("oplog-retain", 0, "op frames retained in memory for /deltas and delta saves (0: default window)")

		oplogDir      = flag.String("oplog-dir", "", "durable op-log directory: append every op to rotating segment files before applying it, replay the tail at boot (crash-safe restart)")
		oplogFsync    = flag.String("oplog-fsync", "interval", "op-log fsync policy: always (fsync per append), interval (background flush), never (OS page cache only)")
		oplogSegBytes = flag.Int64("oplog-segment-bytes", 0, "rotate op-log segments at this size (0: default 16 MiB)")

		metrics   = flag.Bool("metrics", true, "serve the Prometheus text exposition on GET /metrics")
		pprofAddr = flag.String("pprof", "", "also serve net/http/pprof on this address (empty disables)")
		slowQuery = flag.Duration("slow-query", 0, "log queries slower than this with a per-stage breakdown (0 disables)")

		maxInFlight   = flag.Int("max-inflight", 0, "admission gate: max concurrently served /query+/upsert+/bulk requests; beyond it requests shed with 429/503 instead of queueing (0 disables)")
		shedWait      = flag.Duration("shed-wait", 0, "how long an over-limit request may wait for an admission slot before a 503 (0: shed immediately with 429)")
		defaultBudget = flag.Duration("default-budget-ms", 0, "per-query wall-clock budget applied when the request carries no ?budget_ms= (0 = unlimited); accepts any duration, e.g. 50ms")
		maxBody       = flag.Int64("max-body", serve.DefaultMaxBodyBytes, "max request body bytes on /query, /upsert and /bulk (413 beyond it)")

		shardURLs   = flag.String("shards", "", "coordinator mode: comma-separated shard base URLs (e.g. http://s0:8081,http://s1:8082); scatter-gathers queries and hash-routes writes instead of serving an index")
		probeEvery  = flag.Duration("probe-interval", 500*time.Millisecond, "coordinator mode: shard /readyz health-probe cadence")
		indexShards = flag.Int("index-shards", 16, "index shard count (a restored snapshot keeps its saved count)")
		scheme      = flag.String("scheme", "CBS", "candidate weight scheme (CBS, ECBS, JS, ARCS)")
		prune       = flag.String("prune", "top-k", "candidate pruning rule (mean, top-k, none)")
		topK        = flag.Int("k", 10, "candidates kept by top-k pruning")
		measure     = flag.String("measure", "jaccard", "match measure (jaccard, dice)")
		threshold   = flag.Float64("threshold", 0.3, "match threshold (negative keeps every scored candidate)")

		filterRatio  = flag.Float64("filter-ratio", 0, "block filtering: keep this fraction of a query's smallest hit postings (0: package default; 1 disables — required for shard-count-independent answers)")
		maxBlockFrac = flag.Float64("max-block-fraction", 0, "block purging: skip postings holding more than this fraction of profiles (0: package default; 1 disables — required for shard-count-independent answers)")

		lshPolicy    = flag.String("lsh", "off", "LSH probe policy (off, fallback, union); non-off maintains MinHash signatures beside the token postings")
		lshSignature = flag.Int("lsh-signature", 128, "MinHash signature length (a restored snapshot keeps its saved parameters)")
		lshThreshold = flag.Float64("lsh-threshold", 0.5, "LSH banding target Jaccard similarity in (0, 1]")
		lshFloor     = flag.Int("lsh-floor", 1, "fallback probes when token blocking found fewer than this many candidates")
		lshWeight    = flag.String("lsh-weight", "est-jaccard", "probe-only candidate weighting (est-jaccard, buckets)")
	)
	flag.Parse()

	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))

	// Coordinator mode is a different program: no index, no persistence,
	// just the scatter-gather front end over the listed shards. Flags
	// that configure a local index are a misconfiguration here, not a
	// silent no-op.
	if *shardURLs != "" {
		indexOnly := map[string]bool{
			"a": true, "b": true, "dirty": true, "id": true, "generate": true,
			"snapshot": true, "snapshot-interval": true, "delta-interval": true,
			"compact-ops": true, "read-only": true, "follow": true,
			"oplog-retain": true, "oplog-dir": true, "oplog-fsync": true,
			"oplog-segment-bytes": true, "index-shards": true, "scheme": true,
			"prune": true, "k": true, "measure": true, "threshold": true,
			"lsh": true, "lsh-signature": true, "lsh-threshold": true,
			"lsh-floor": true, "lsh-weight": true, "slow-query": true,
			"filter-ratio": true, "max-block-fraction": true,
		}
		var bad []string
		flag.Visit(func(f *flag.Flag) {
			if indexOnly[f.Name] {
				bad = append(bad, "-"+f.Name)
			}
		})
		if len(bad) > 0 {
			return fmt.Errorf("coordinator mode (-shards) serves no local index; drop %s", strings.Join(bad, ", "))
		}
		return runCoordinator(coordinatorConfig{
			addr:          *addr,
			shards:        *shardURLs,
			logger:        logger,
			maxInFlight:   *maxInFlight,
			shedWait:      *shedWait,
			defaultBudget: *defaultBudget,
			maxBody:       *maxBody,
			probeInterval: *probeEvery,
			metrics:       *metrics,
		})
	}

	// Validate at the flag layer: Config treats zero as "unset", so an
	// explicit 0 here would be silently replaced by a default.
	if *indexShards <= 0 {
		return fmt.Errorf("-index-shards must be positive, got %d", *indexShards)
	}
	if *topK <= 0 {
		return fmt.Errorf("-k must be positive, got %d", *topK)
	}
	if *follow != "" {
		if err := serve.ValidateLeaderURL(*follow); err != nil {
			return err
		}
		if *fileA != "" || *fileB != "" || *dirty != "" || *generate {
			return fmt.Errorf("-follow bootstraps from the leader; drop -a/-b/-dirty/-generate")
		}
		// A follower swaps its whole index on re-bootstrap, which would
		// orphan an attached WAL mid-flight; its durability is the
		// leader's job.
		if *oplogDir != "" {
			return fmt.Errorf("-oplog-dir is a leader-side durability flag; a -follow replica replays the leader's log instead")
		}
	}
	var walCfg index.WALConfig
	if *oplogDir != "" {
		syncPolicy, err := index.ParseWALSyncPolicy(*oplogFsync)
		if err != nil {
			return err
		}
		if *oplogSegBytes < 0 {
			return fmt.Errorf("-oplog-segment-bytes must be non-negative, got %d", *oplogSegBytes)
		}
		walCfg = index.WALConfig{Dir: *oplogDir, Sync: syncPolicy, SegmentBytes: *oplogSegBytes}
	}
	// A follower never writes; -read-only covers the shared-snapshot
	// replica mode.
	isReadOnly := *readOnly || *follow != ""

	cfg := index.DefaultConfig()
	cfg.Shards = *indexShards
	// Every serving process keeps an op log: it is what /deltas serves
	// and what delta saves append, and its memory is bounded by the
	// retention window regardless of index size.
	cfg.OpLog.Enabled = true
	if *oplogRetain > 0 {
		cfg.OpLog.MaxOps = *oplogRetain
	}
	cfg.MaxCandidates = *topK
	if *filterRatio < 0 || *filterRatio > 1 {
		return fmt.Errorf("-filter-ratio must be in [0, 1], got %g", *filterRatio)
	}
	if *filterRatio > 0 {
		cfg.FilterRatio = *filterRatio
	}
	if *maxBlockFrac < 0 || *maxBlockFrac > 1 {
		return fmt.Errorf("-max-block-fraction must be in [0, 1], got %g", *maxBlockFrac)
	}
	if *maxBlockFrac > 0 {
		cfg.MaxBlockFraction = *maxBlockFrac
	}
	cfg.MatchThreshold = *threshold
	if *threshold == 0 {
		cfg.MatchThreshold = -1 // keep everything scoring >= 0, as asked
	}
	switch *scheme {
	case "CBS":
		cfg.Scheme = metablocking.CBS
	case "ECBS":
		cfg.Scheme = metablocking.ECBS
	case "JS":
		cfg.Scheme = metablocking.JS
	case "ARCS":
		cfg.Scheme = metablocking.ARCS
	default:
		return fmt.Errorf("unknown scheme %q", *scheme)
	}
	switch *prune {
	case "mean":
		cfg.Prune = index.PruneMean
	case "top-k":
		cfg.Prune = index.PruneTopK
	case "none":
		cfg.Prune = index.PruneNone
	default:
		return fmt.Errorf("unknown pruning rule %q", *prune)
	}
	switch *measure {
	case "jaccard":
		// Leave Measure nil: the index installs whole-profile Jaccard
		// itself and unlocks its cached-token-bag scoring fast path.
	case "dice":
		cfg.Measure = matching.DiceMeasure(cfg.Tokenizer)
	default:
		return fmt.Errorf("unknown measure %q", *measure)
	}
	probePolicy, err := index.ParseProbePolicy(*lshPolicy)
	if err != nil {
		return err
	}
	if probePolicy != index.ProbeOff {
		if *lshSignature <= 0 {
			return fmt.Errorf("-lsh-signature must be positive, got %d", *lshSignature)
		}
		if !(*lshThreshold > 0 && *lshThreshold <= 1) {
			return fmt.Errorf("-lsh-threshold must be in (0, 1], got %v", *lshThreshold)
		}
		if *lshFloor < 1 {
			return fmt.Errorf("-lsh-floor must be at least 1, got %d", *lshFloor)
		}
		cfg.LSH = index.LSHConfig{
			Policy:        probePolicy,
			SignatureLen:  *lshSignature,
			Threshold:     *lshThreshold,
			FallbackFloor: *lshFloor,
		}
		switch *lshWeight {
		case "est-jaccard":
			cfg.LSH.Weight = index.LSHWeightJaccard
		case "buckets":
			cfg.LSH.Weight = index.LSHWeightBuckets
		default:
			return fmt.Errorf("unknown LSH weighting %q", *lshWeight)
		}
	}

	// Restore at boot: a follower bootstraps from its leader over HTTP;
	// otherwise a present, version-compatible snapshot skips loading and
	// re-indexing the input files entirely.
	var idx *index.Index
	var follower *serve.Follower
	if *follow != "" {
		follower = serve.NewFollower(*follow, cfg, serve.FollowerOptions{Logger: logger})
		bctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		x, err := follower.Bootstrap(bctx)
		cancel()
		if err != nil {
			return err
		}
		idx = x
		logger.Info("bootstrapped from leader",
			"leader", *follow,
			"profiles", x.Size(),
			"seq", x.Seq())
	} else if *snapshot != "" {
		x, err := index.Load(*snapshot, cfg)
		switch {
		case err == nil:
			idx = x
			st, _ := x.PersistState()
			logger.Info("restored snapshot",
				"path", *snapshot,
				"profiles", x.Size(),
				"bytes", st.Bytes,
				"saved_at", st.SavedAt.Format(time.RFC3339))
		case errors.Is(err, fs.ErrNotExist), errors.Is(err, index.ErrSnapshotVersion):
			logger.Warn("snapshot unavailable, building fresh index", "path", *snapshot, "err", err)
		default:
			return err
		}
	}
	if idx == nil {
		c, err := loadCollection(*fileA, *fileB, *dirty, *idCol, *generate)
		if err != nil {
			return err
		}
		if idx, err = index.NewFromCollection(c, cfg); err != nil {
			return err
		}
		snap := idx.Snapshot()
		logger.Info("indexed collection",
			"profiles", snap.Profiles,
			"blocks", snap.Blocks,
			"shards", snap.Shards,
			"max_block_size", snap.MaxBlockSize)
	}
	if *readOnly {
		idx.SetReadOnly(true)
		logger.Info("read-only replica mode: upserts rejected")
	}

	// Attach the durable op log after the snapshot restore: recovery
	// replays only the segment tail past the restored sequence number,
	// repopulating the in-memory window so followers resume from
	// /deltas without a re-bootstrap. From here every op hits disk
	// before it mutates the index.
	if *oplogDir != "" {
		rec, err := idx.OpenWAL(walCfg)
		if err != nil {
			return fmt.Errorf("op-log recovery: %w", err)
		}
		logger.Info("op log attached",
			"dir", *oplogDir,
			"fsync", walCfg.Sync.String(),
			"segments", rec.Segments,
			"replayed_ops", rec.Replayed,
			"skipped_ops", rec.SkippedOps,
			"truncated_bytes", rec.TruncatedBytes,
			"dropped_segments", rec.DroppedSegments,
			"seq", idx.Seq())
	}

	// A read-only replica consumes the snapshot file, never produces it:
	// auto-saving would overwrite a newer primary snapshot with this
	// replica's stale copy.
	save := func(reason string) {
		if *snapshot == "" || isReadOnly {
			return
		}
		start := time.Now()
		st, err := idx.Save(*snapshot)
		if err != nil {
			logger.Error("snapshot save failed", "reason", reason, "path", *snapshot, "err", err)
			return
		}
		logger.Info("saved snapshot",
			"path", st.Path,
			"bytes", st.Bytes,
			"elapsed", time.Since(start).Round(time.Millisecond),
			"reason", reason)
	}
	saveDelta := func(reason string) {
		if *snapshot == "" || isReadOnly {
			return
		}
		start := time.Now()
		st, err := idx.SaveDelta(*snapshot)
		if err != nil {
			logger.Error("delta save failed", "reason", reason, "path", *snapshot, "err", err)
			return
		}
		logger.Info("saved delta",
			"path", st.Path,
			"seq", st.Seq,
			"delta_ops", st.DeltaOps,
			"delta_bytes", st.DeltaBytes,
			"elapsed", time.Since(start).Round(time.Millisecond),
			"reason", reason)
	}
	// One goroutine owns both save timers so shutdown can stop it and
	// wait: the final save-on-SIGTERM never races an in-flight interval
	// save, and the goroutine never outlives the graceful exit.
	var saveLoop sync.WaitGroup
	stopSaves := make(chan struct{})
	if (*snapshotInterval > 0 || *deltaInterval > 0) && *snapshot != "" && !isReadOnly {
		saveLoop.Add(1)
		go func() {
			defer saveLoop.Done()
			var fullC, deltaC <-chan time.Time
			if *snapshotInterval > 0 {
				t := time.NewTicker(*snapshotInterval)
				defer t.Stop()
				fullC = t.C
			}
			if *deltaInterval > 0 {
				t := time.NewTicker(*deltaInterval)
				defer t.Stop()
				deltaC = t.C
			}
			for {
				select {
				case <-fullC:
					save("interval")
				case <-deltaC:
					// Compaction: once the delta tail holds enough ops,
					// pay for one full save and start a fresh tail —
					// replay cost at restore stays bounded.
					if st, ok := idx.PersistState(); ok && *compactOps > 0 && st.DeltaOps >= int64(*compactOps) {
						save("compact")
					} else {
						saveDelta("interval")
					}
				case <-stopSaves:
					return
				}
			}
		}()
	}

	// The pprof handlers live on their own mux and address so profiling
	// traffic (and its unauthenticated endpoints) never shares the
	// serving listener.
	if *pprofAddr != "" {
		pm := http.NewServeMux()
		pm.HandleFunc("/debug/pprof/", pprof.Index)
		pm.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pm.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pm.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pm.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			if err := http.ListenAndServe(*pprofAddr, pm); err != nil {
				logger.Error("pprof listener failed", "addr", *pprofAddr, "err", err)
			}
		}()
		logger.Info("pprof listening", "addr", *pprofAddr)
	}

	// The handler itself refuses /snapshot/save on a read-only index
	// (403), so the path can be passed through unconditionally. The
	// server-level timeouts close the slowloris hole: a client that
	// trickles headers or never reads its response is cut off instead
	// of holding a connection (and, with admission on, a slot) forever.
	handler := serve.NewHandlerOptions(idx, serve.Options{
		SnapshotPath:  *snapshot,
		Logger:        logger,
		SlowQuery:     *slowQuery,
		NoMetrics:     !*metrics,
		MaxInFlight:   *maxInFlight,
		ShedWait:      *shedWait,
		DefaultBudget: *defaultBudget,
		MaxBodyBytes:  *maxBody,
		Follower:      follower,
	})
	srv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       time.Minute,
		WriteTimeout:      2 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
	if *maxInFlight > 0 {
		logger.Info("admission control on",
			"max_inflight", *maxInFlight,
			"shed_wait", shedWait.String(),
			"default_budget", defaultBudget.String())
	}
	runCtx, cancelRun := context.WithCancel(context.Background())
	defer cancelRun()
	if follower != nil {
		go func() { _ = follower.Run(runCtx, handler) }()
		logger.Info("following leader", "leader", *follow)
	}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	logger.Info("listening", "addr", *addr)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		return err
	case sig := <-stop:
		logger.Info("shutting down", "signal", sig.String())
		cancelRun()
		// Stop the timed saves first and wait the loop out: the final
		// save below must not race an in-flight interval save.
		close(stopSaves)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			logger.Error("shutdown failed", "err", err)
		}
		saveLoop.Wait()
		save("shutdown")
		// After the final save so a full snapshot prunes now-covered
		// segments; close syncs whatever the flush policy left pending.
		if idx.WALEnabled() {
			if err := idx.CloseWAL(); err != nil {
				logger.Error("op log close failed", "err", err)
			}
		}
		return nil
	}
}

// coordinatorConfig is the flag subset coordinator mode consumes.
type coordinatorConfig struct {
	addr          string
	shards        string
	logger        *slog.Logger
	maxInFlight   int
	shedWait      time.Duration
	defaultBudget time.Duration
	maxBody       int64
	probeInterval time.Duration
	metrics       bool
}

// runCoordinator serves the scatter-gather front end: /v1 queries fan
// out to every shard and merge, writes hash-route to one shard, and a
// dead shard degrades answers instead of failing them.
func runCoordinator(cc coordinatorConfig) error {
	var urls []string
	for _, u := range strings.Split(cc.shards, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, u)
		}
	}
	cluster, err := serve.NewCluster(urls, serve.ClusterOptions{
		Logger:        cc.logger,
		MaxInFlight:   cc.maxInFlight,
		ShedWait:      cc.shedWait,
		DefaultBudget: cc.defaultBudget,
		MaxBodyBytes:  cc.maxBody,
		ProbeInterval: cc.probeInterval,
		NoMetrics:     !cc.metrics,
	})
	if err != nil {
		return err
	}
	defer cluster.Close()
	srv := &http.Server{
		Addr:              cc.addr,
		Handler:           cluster,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       time.Minute,
		WriteTimeout:      2 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	cc.logger.Info("coordinator listening", "addr", cc.addr, "shards", len(urls))

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		return err
	case sig := <-stop:
		cc.logger.Info("shutting down", "signal", sig.String())
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			cc.logger.Error("shutdown failed", "err", err)
		}
		return nil
	}
}

// loadCollection assembles the startup collection from the flags; with no
// inputs it serves an empty clean-clean index ready for /bulk loads.
func loadCollection(fileA, fileB, dirty, idCol string, generate bool) (*profile.Collection, error) {
	switch {
	case generate:
		return datagen.Generate(datagen.AbtBuy()).Collection, nil
	case dirty != "":
		ps, err := loader.ReadProfilesCSVFile(dirty, idCol)
		if err != nil {
			return nil, err
		}
		return profile.NewDirty(ps), nil
	case fileA != "" && fileB != "":
		a, err := loader.ReadProfilesCSVFile(fileA, idCol)
		if err != nil {
			return nil, err
		}
		b, err := loader.ReadProfilesCSVFile(fileB, idCol)
		if err != nil {
			return nil, err
		}
		return profile.NewCleanClean(a, b), nil
	case fileA == "" && fileB == "":
		return profile.NewCleanClean(nil, nil), nil
	}
	return nil, fmt.Errorf("need both -a and -b (or -dirty, or -generate)")
}
