// Command sparker-serve exposes an online entity index over HTTP: build
// the index once from CSV sources (or the generated benchmark), then
// answer point queries and incremental upserts without re-running the
// batch pipeline.
//
// Two clean-clean CSV sources:
//
//	sparker-serve -a abt.csv -b buy.csv -id id -addr :8080
//
// A single dirty source:
//
//	sparker-serve -dirty products.csv -id id
//
// No inputs: serve the generated SynthAbtBuy benchmark:
//
//	sparker-serve -generate
//
// Endpoints: POST /query, POST /upsert, POST /bulk (JSON-lines bodies,
// "id" field plus attributes; ?source=1 targets the second clean source),
// GET /stats.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"

	"sparker/internal/datagen"
	"sparker/internal/index"
	"sparker/internal/loader"
	"sparker/internal/matching"
	"sparker/internal/metablocking"
	"sparker/internal/profile"
	"sparker/serve"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "sparker-serve:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		fileA    = flag.String("a", "", "CSV file of the first clean source")
		fileB    = flag.String("b", "", "CSV file of the second clean source")
		dirty    = flag.String("dirty", "", "CSV file of a single dirty source")
		idCol    = flag.String("id", "id", "identifier column name")
		generate = flag.Bool("generate", false, "serve the generated SynthAbtBuy benchmark")

		shards    = flag.Int("shards", 16, "index shard count")
		scheme    = flag.String("scheme", "CBS", "candidate weight scheme (CBS, ECBS, JS, ARCS)")
		prune     = flag.String("prune", "top-k", "candidate pruning rule (mean, top-k, none)")
		topK      = flag.Int("k", 10, "candidates kept by top-k pruning")
		measure   = flag.String("measure", "jaccard", "match measure (jaccard, dice)")
		threshold = flag.Float64("threshold", 0.3, "match threshold (negative keeps every scored candidate)")
	)
	flag.Parse()

	// Validate at the flag layer: Config treats zero as "unset", so an
	// explicit 0 here would be silently replaced by a default.
	if *shards <= 0 {
		return fmt.Errorf("-shards must be positive, got %d", *shards)
	}
	if *topK <= 0 {
		return fmt.Errorf("-k must be positive, got %d", *topK)
	}

	cfg := index.DefaultConfig()
	cfg.Shards = *shards
	cfg.MaxCandidates = *topK
	cfg.MatchThreshold = *threshold
	if *threshold == 0 {
		cfg.MatchThreshold = -1 // keep everything scoring >= 0, as asked
	}
	switch *scheme {
	case "CBS":
		cfg.Scheme = metablocking.CBS
	case "ECBS":
		cfg.Scheme = metablocking.ECBS
	case "JS":
		cfg.Scheme = metablocking.JS
	case "ARCS":
		cfg.Scheme = metablocking.ARCS
	default:
		return fmt.Errorf("unknown scheme %q", *scheme)
	}
	switch *prune {
	case "mean":
		cfg.Prune = index.PruneMean
	case "top-k":
		cfg.Prune = index.PruneTopK
	case "none":
		cfg.Prune = index.PruneNone
	default:
		return fmt.Errorf("unknown pruning rule %q", *prune)
	}
	switch *measure {
	case "jaccard":
		// Leave Measure nil: the index installs whole-profile Jaccard
		// itself and unlocks its cached-token-bag scoring fast path.
	case "dice":
		cfg.Measure = matching.DiceMeasure(cfg.Tokenizer)
	default:
		return fmt.Errorf("unknown measure %q", *measure)
	}

	c, err := loadCollection(*fileA, *fileB, *dirty, *idCol, *generate)
	if err != nil {
		return err
	}

	idx, err := index.NewFromCollection(c, cfg)
	if err != nil {
		return err
	}
	snap := idx.Snapshot()
	log.Printf("indexed %d profiles into %d blocks across %d shards (max block %d)",
		snap.Profiles, snap.Blocks, snap.Shards, snap.MaxBlockSize)
	log.Printf("listening on %s", *addr)
	return http.ListenAndServe(*addr, serve.NewHandler(idx))
}

// loadCollection assembles the startup collection from the flags; with no
// inputs it serves an empty clean-clean index ready for /bulk loads.
func loadCollection(fileA, fileB, dirty, idCol string, generate bool) (*profile.Collection, error) {
	switch {
	case generate:
		return datagen.Generate(datagen.AbtBuy()).Collection, nil
	case dirty != "":
		ps, err := loader.ReadProfilesCSVFile(dirty, idCol)
		if err != nil {
			return nil, err
		}
		return profile.NewDirty(ps), nil
	case fileA != "" && fileB != "":
		a, err := loader.ReadProfilesCSVFile(fileA, idCol)
		if err != nil {
			return nil, err
		}
		b, err := loader.ReadProfilesCSVFile(fileB, idCol)
		if err != nil {
			return nil, err
		}
		return profile.NewCleanClean(a, b), nil
	case fileA == "" && fileB == "":
		return profile.NewCleanClean(nil, nil), nil
	}
	return nil, fmt.Errorf("need both -a and -b (or -dirty, or -generate)")
}
