// Command sparker-debug is the process-debugging workflow of the paper's
// Section 3 and Figure 6, as a CLI instead of a GUI. Each subcommand
// renders one panel of the demo walkthrough on the SynthAbtBuy benchmark:
//
//	sparker-debug sweep                # Fig 6(a,b): LSH threshold sweep
//	sparker-debug edit                 # Fig 6(c,d): manual split + lost-pair drill-down
//	sparker-debug meta                 # Fig 6(e):   meta-blocking with entropy
//	sparker-debug sample               # Section 3:  debug-sample representativeness
//	sparker-debug tune                 # Section 3:  supervised threshold tuning
//	sparker-debug explain <idA> <idB>  # per-pair decision: shared blocks, weight, thresholds
//	sparker-debug all                  # every panel above in order
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"sparker/internal/blocking"
	"sparker/internal/core"
	"sparker/internal/datagen"
	"sparker/internal/evaluation"
	"sparker/internal/experiments"
	"sparker/internal/looseschema"
	"sparker/internal/matching"
	"sparker/internal/metablocking"
	"sparker/internal/profile"
	"sparker/internal/sampling"
	"sparker/internal/tokenize"
)

func main() {
	var (
		scale = flag.Int("scale", 1, "dataset scale factor")
		seed  = flag.Int64("seed", 1234, "benchmark generator seed")
	)
	flag.Parse()
	cmd := flag.Arg(0)
	if cmd == "" {
		cmd = "all"
	}

	cfg := datagen.AbtBuy().Scaled(*scale)
	cfg.Seed = *seed
	d, err := experiments.LoadSynthAbtBuy(cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("dataset: %s (%d profiles, %d true matches)\n\n",
		d.Name, d.Collection.Size(), d.GT.Size())

	if cmd == "explain" {
		if err := explain(d, flag.Arg(1), flag.Arg(2)); err != nil {
			fatal(err)
		}
		return
	}

	steps := map[string]func(*experiments.Dataset) error{
		"sweep":  sweep,
		"edit":   edit,
		"meta":   meta,
		"sample": sample,
		"tune":   tune,
	}
	if cmd == "all" {
		for _, name := range []string{"sweep", "edit", "meta", "sample", "tune"} {
			if err := steps[name](d); err != nil {
				fatal(err)
			}
		}
		return
	}
	step, ok := steps[cmd]
	if !ok {
		fatal(fmt.Errorf("unknown subcommand %q (sweep|edit|meta|sample|tune|explain|all)", cmd))
	}
	if err := step(d); err != nil {
		fatal(err)
	}
}

// explain reconstructs the blocking and meta-blocking decision for one
// pair of original IDs (the per-pair debug view of the GUI):
//
//	sparker-debug explain abt-0005 buy-0005
func explain(d *experiments.Dataset, idA, idB string) error {
	if idA == "" || idB == "" {
		return fmt.Errorf("usage: sparker-debug explain <originalID-A> <originalID-B>")
	}
	var a, b profile.ID = -1, -1
	for i := range d.Collection.Profiles {
		p := &d.Collection.Profiles[i]
		if p.OriginalID == idA {
			a = p.ID
		}
		if p.OriginalID == idB {
			b = p.ID
		}
	}
	if a < 0 || b < 0 {
		return fmt.Errorf("unknown original ID (%q resolved=%v, %q resolved=%v)", idA, a >= 0, idB, b >= 0)
	}

	part := looseschema.Partition(d.Collection, looseschema.Options{Threshold: 0.3})
	opts := blocking.Options{Clustering: part}
	filtered := blocking.Filter(blocking.PurgeBySize(blocking.TokenBlocking(d.Collection, opts), 0.5), blocking.DefaultFilterRatio)
	idx := blocking.BuildIndex(filtered)
	mo := metablocking.Options{Scheme: metablocking.CBS, Pruning: metablocking.BlastPruning, Entropy: part}
	ex := metablocking.Explain(idx, mo, a, b)

	fmt.Printf("pair %s <-> %s (internal %d, %d)\n", idA, idB, ex.A, ex.B)
	fmt.Printf("ground truth: match=%v\n", d.GT.Contains(blocking.Pair{A: a, B: b}))
	if len(ex.CommonBlocks) == 0 {
		fmt.Println("no shared blocks after purging/filtering: the pair cannot be compared")
		keys := evaluation.SharedKeys(d.Collection, opts, a, b)
		fmt.Printf("raw shared keys before purging/filtering: %v\n", keys)
		return nil
	}
	w := table()
	fmt.Fprintln(w, "shared block\tcluster\tentropy\tsize")
	for _, cb := range ex.CommonBlocks {
		fmt.Fprintf(w, "%s\tC%d\t%.3f\t%d\n", cb.Key, cb.ClusterID, cb.Entropy, cb.Size)
	}
	w.Flush()
	fmt.Printf("edge weight: %.3f  thresholds: %.3f (A) / %.3f (B)\n", ex.Weight, ex.ThresholdA, ex.ThresholdB)
	if ex.Retained {
		fmt.Println("decision: RETAINED as a candidate pair")
	} else {
		fmt.Println("decision: PRUNED by meta-blocking")
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sparker-debug:", err)
	os.Exit(1)
}

func table() *tabwriter.Writer {
	return tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
}

// sweep renders Figure 6(a,b): attribute partitions and blocking quality
// across LSH thresholds.
func sweep(d *experiments.Dataset) error {
	fmt.Println("== Figure 6(a,b): attribute-partitioning threshold sweep ==")
	rows := experiments.ThresholdSweep(d, []float64{1.0, 0.8, 0.5, 0.3, 0.15})
	w := table()
	fmt.Fprintln(w, "threshold\tclusters\tblob\tblocks\tcandidates-in-blocks\trecall\tprecision\tlost")
	for _, r := range rows {
		fmt.Fprintf(w, "%.2f\t%d\t%d\t%d\t%d\t%.4f\t%.6f\t%d\n",
			r.Threshold, r.Clusters, r.BlobSize, r.Blocks, r.Comparisons, r.Recall, r.Precision, r.LostPairs)
	}
	w.Flush()
	fmt.Println()
	return nil
}

// edit renders Figure 6(c,d): the manual name/description split and the
// lost-pair explanations.
func edit(d *experiments.Dataset) error {
	fmt.Println("== Figure 6(c,d): manual partition edit + lost-pair debug ==")
	res, err := experiments.ManualEdit(d)
	if err != nil {
		return err
	}
	w := table()
	fmt.Fprintln(w, "partitioning\tclusters\tblocks\tcandidates-in-blocks\trecall\tlost")
	fmt.Fprintf(w, "automatic (th=0.3)\t%d\t%d\t%d\t%.4f\t%d\n",
		res.Auto.Clusters, res.Auto.Blocks, res.Auto.Comparisons, res.Auto.Recall, res.Auto.LostPairs)
	fmt.Fprintf(w, "manual split\t%d\t%d\t%d\t%.4f\t%d\n",
		res.Edited.Clusters, res.Edited.Blocks, res.Edited.Comparisons, res.Edited.Recall, res.Edited.LostPairs)
	w.Flush()
	fmt.Printf("\npairs newly lost by the split: %d\n", len(res.NewlyLost))
	limit := len(res.NewlyLost)
	if limit > 5 {
		limit = 5
	}
	for _, lp := range res.NewlyLost[:limit] {
		fmt.Printf("  %s <-> %s  shared keys before the split: %v\n",
			lp.AOriginal, lp.BOriginal, lp.SharedKeysBefore)
	}
	fmt.Println("  (the shared keys come from name/description tokens: the split severed them)")
	fmt.Println()
	return nil
}

// meta renders Figure 6(e): the entropy meta-blocking comparison.
func meta(d *experiments.Dataset) error {
	fmt.Println("== Figure 6(e): meta-blocking with entropy ==")
	w := table()
	fmt.Fprintln(w, "configuration\tcandidates\trecall\tprecision")
	for _, r := range experiments.EntropyMetaBlocking(d) {
		fmt.Fprintf(w, "%s\t%d\t%.4f\t%.6f\n", r.Name, r.Candidates, r.Recall, r.Precision)
	}
	w.Flush()
	fmt.Println()
	return nil
}

// sample renders the Section 3 sampling experiment.
func sample(d *experiments.Dataset) error {
	fmt.Println("== Section 3: debug-sample representativeness ==")
	w := table()
	fmt.Fprintln(w, "K\tk\tsample size\tmatching pairs inside")
	for _, r := range experiments.SamplingExperiment(d, []int{10, 20, 50}, 10) {
		fmt.Fprintf(w, "%d\t%d\t%d\t%d\n", r.K, r.PerSeed, r.SampleSize, r.MatchingPairs)
	}
	w.Flush()
	fmt.Println()
	return nil
}

// tune runs the supervised mode on a debug sample: label the sample pairs
// with the ground truth, tune the matcher threshold, and compare with the
// unsupervised default.
func tune(d *experiments.Dataset) error {
	fmt.Println("== Section 3: supervised threshold tuning on a debug sample ==")
	s := sampling.Build(d.Collection, sampling.Options{K: 30, PerSeed: 10, Seed: 7})

	// Candidates on the sample via the default blocker.
	pipeline := core.NewPipeline(core.DefaultConfig(), nil)
	blocker, err := pipeline.RunBlocker(s.Collection)
	if err != nil {
		return err
	}
	// Label sample candidates using the full ground truth.
	var labeled []matching.LabeledPair
	for _, p := range blocker.Candidates {
		origA := s.OriginalID[p.A]
		origB := s.OriginalID[p.B]
		labeled = append(labeled, matching.LabeledPair{
			Pair:    p,
			IsMatch: d.GT.Contains(blocking.Pair{A: origA, B: origB}),
		})
	}
	measure := matching.JaccardMeasure(tokenize.Options{})
	th, f1 := matching.TuneThreshold(s.Collection, labeled, measure)
	fmt.Printf("sample: %d profiles, %d labelled candidate pairs\n", s.Collection.Size(), len(labeled))
	fmt.Printf("tuned threshold: %.3f (sample F1 %.3f; unsupervised default 0.3)\n\n", th, f1)
	return nil
}
