// Command benchjson converts `go test -bench -benchmem` output on stdin
// into a JSON array on stdout, one object per benchmark result, so CI can
// publish hot-path numbers (ns/op, allocs/op, custom metrics) as a
// machine-readable artifact and the performance trajectory stays diffable
// across commits:
//
//	go test -bench 'Metablocking|IndexQuery' -benchmem -run '^$' . \
//	  | go run ./cmd/benchjson > BENCH_hotpath.json
//
// With -compare it additionally gates on a committed baseline: any
// benchmark present in both runs whose ns/op or allocs/op regressed by
// more than -max-regress (default 0.25, i.e. 25%) fails the run with
// exit status 1 after printing the offending rows to stderr — the CI
// bench-regression gate:
//
//	... | go run ./cmd/benchjson -compare BENCH_baseline.json > BENCH_hotpath.json
//
// Benchmarks only present on one side are reported to stderr but never
// fail the gate (new benchmarks land together with their baseline row on
// the next refresh; renamed ones would otherwise block unrelated PRs).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Name    string  `json:"name"`
	Runs    int64   `json:"runs"`
	NsPerOp float64 `json:"ns_per_op"`
	// BytesPerOp and AllocsPerOp are present with -benchmem.
	BytesPerOp  *float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
	// Metrics holds custom b.ReportMetric units (e.g. "comparisons/op").
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// normalizeName strips the `-<procs>` suffix the testing package appends
// to benchmark names when GOMAXPROCS > 1 (at GOMAXPROCS=1 none is
// emitted). Without this, a baseline recorded on an N-core machine never
// matches a run on an M-core machine and -compare gates nothing: every
// benchmark would be a "not in baseline" note. Stripping exactly one
// trailing -procs group is safe against sub-benchmark names that happen
// to end in digits (e.g. shards-16 on a 16-proc machine is emitted as
// shards-16-16 and normalizes back to shards-16).
func normalizeName(name string, procs int) string {
	if procs > 1 {
		name = strings.TrimSuffix(name, fmt.Sprintf("-%d", procs))
	}
	return name
}

// parseLine parses one `BenchmarkX-8   123   456 ns/op   ...` line; ok is
// false for non-benchmark lines (headers, PASS, ok).
func parseLine(line string) (Result, bool) {
	if !strings.HasPrefix(line, "Benchmark") {
		return Result{}, false
	}
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Result{}, false
	}
	runs, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	// benchjson runs in the same step, on the same machine, as the
	// `go test -bench` that produced its stdin, so its own GOMAXPROCS
	// matches the suffix of the names it is parsing.
	r := Result{Name: normalizeName(fields[0], runtime.GOMAXPROCS(0)), Runs: runs}
	// The remainder alternates value, unit.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			r.NsPerOp = v
		case "B/op":
			r.BytesPerOp = &v
		case "allocs/op":
			r.AllocsPerOp = &v
		default:
			if r.Metrics == nil {
				r.Metrics = map[string]float64{}
			}
			r.Metrics[unit] = v
		}
	}
	return r, true
}

// regression describes one gate violation.
type regression struct {
	name     string
	metric   string
	baseline float64
	current  float64
}

// compareResults checks every benchmark present in both runs against the
// allowed regression ratio; missing counterparts are reported via notes.
func compareResults(baseline, current []Result, maxRegress float64) (regs []regression, notes []string) {
	base := make(map[string]Result, len(baseline))
	for _, r := range baseline {
		base[r.Name] = r
	}
	seen := make(map[string]bool, len(current))
	for _, cur := range current {
		seen[cur.Name] = true
		b, ok := base[cur.Name]
		if !ok {
			notes = append(notes, fmt.Sprintf("%s: not in baseline (refresh BENCH_baseline.json to start gating it)", cur.Name))
			continue
		}
		if b.NsPerOp > 0 && cur.NsPerOp > b.NsPerOp*(1+maxRegress) {
			regs = append(regs, regression{name: cur.Name, metric: "ns/op", baseline: b.NsPerOp, current: cur.NsPerOp})
		}
		if b.AllocsPerOp != nil && cur.AllocsPerOp != nil &&
			*cur.AllocsPerOp > *b.AllocsPerOp*(1+maxRegress) {
			regs = append(regs, regression{name: cur.Name, metric: "allocs/op", baseline: *b.AllocsPerOp, current: *cur.AllocsPerOp})
		}
	}
	for _, r := range baseline {
		if !seen[r.Name] {
			notes = append(notes, fmt.Sprintf("%s: in baseline but not in this run", r.Name))
		}
	}
	return regs, notes
}

func main() {
	comparePath := flag.String("compare", "", "baseline JSON (as previously emitted by benchjson); exit 1 on regression beyond -max-regress")
	maxRegress := flag.Float64("max-regress", 0.25, "allowed fractional regression of ns/op and allocs/op vs the baseline")
	flag.Parse()

	results := []Result{}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		if r, ok := parseLine(strings.TrimSpace(sc.Text())); ok {
			results = append(results, r)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if *comparePath == "" {
		return
	}

	raw, err := os.ReadFile(*comparePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	var baseline []Result
	if err := json.Unmarshal(raw, &baseline); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %s: %v\n", *comparePath, err)
		os.Exit(1)
	}
	regs, notes := compareResults(baseline, results, *maxRegress)
	for _, n := range notes {
		fmt.Fprintln(os.Stderr, "benchjson: note:", n)
	}
	if len(regs) == 0 {
		fmt.Fprintf(os.Stderr, "benchjson: no regression beyond %.0f%% across %d benchmarks\n",
			*maxRegress*100, len(results))
		return
	}
	for _, r := range regs {
		fmt.Fprintf(os.Stderr, "benchjson: REGRESSION %s %s: %.6g -> %.6g (+%.1f%%, allowed %.0f%%)\n",
			r.name, r.metric, r.baseline, r.current, (r.current/r.baseline-1)*100, *maxRegress*100)
	}
	os.Exit(1)
}
