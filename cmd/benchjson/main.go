// Command benchjson converts `go test -bench -benchmem` output on stdin
// into a JSON array on stdout, one object per benchmark result, so CI can
// publish hot-path numbers (ns/op, allocs/op, custom metrics) as a
// machine-readable artifact and the performance trajectory stays diffable
// across commits:
//
//	go test -bench 'Metablocking|IndexQuery' -benchmem -run '^$' . \
//	  | go run ./cmd/benchjson > BENCH_hotpath.json
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Name    string  `json:"name"`
	Runs    int64   `json:"runs"`
	NsPerOp float64 `json:"ns_per_op"`
	// BytesPerOp and AllocsPerOp are present with -benchmem.
	BytesPerOp  *float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
	// Metrics holds custom b.ReportMetric units (e.g. "comparisons/op").
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// parseLine parses one `BenchmarkX-8   123   456 ns/op   ...` line; ok is
// false for non-benchmark lines (headers, PASS, ok).
func parseLine(line string) (Result, bool) {
	if !strings.HasPrefix(line, "Benchmark") {
		return Result{}, false
	}
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Result{}, false
	}
	runs, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: fields[0], Runs: runs}
	// The remainder alternates value, unit.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			r.NsPerOp = v
		case "B/op":
			r.BytesPerOp = &v
		case "allocs/op":
			r.AllocsPerOp = &v
		default:
			if r.Metrics == nil {
				r.Metrics = map[string]float64{}
			}
			r.Metrics[unit] = v
		}
	}
	return r, true
}

func main() {
	results := []Result{}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		if r, ok := parseLine(strings.TrimSpace(sc.Text())); ok {
			results = append(results, r)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
