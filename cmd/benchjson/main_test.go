package main

import "testing"

func fp(v float64) *float64 { return &v }

func TestParseLine(t *testing.T) {
	r, ok := parseLine("BenchmarkIndexQueryLSH/policy-union   1234   456.7 ns/op   10.0 comparisons/op   528 B/op   65 allocs/op")
	if !ok {
		t.Fatal("benchmark line rejected")
	}
	if r.Name != "BenchmarkIndexQueryLSH/policy-union" || r.Runs != 1234 || r.NsPerOp != 456.7 {
		t.Fatalf("parsed %+v", r)
	}
	if r.AllocsPerOp == nil || *r.AllocsPerOp != 65 || r.Metrics["comparisons/op"] != 10 {
		t.Fatalf("parsed %+v", r)
	}
	if _, ok := parseLine("ok  	sparker	1.589s"); ok {
		t.Fatal("non-benchmark line accepted")
	}
}

// TestNormalizeName pins the cross-machine name matching the -compare
// gate depends on: the GOMAXPROCS suffix goes, real sub-benchmark names
// survive, and GOMAXPROCS=1 output (no suffix) is left alone.
func TestNormalizeName(t *testing.T) {
	cases := []struct {
		name  string
		procs int
		want  string
	}{
		{"BenchmarkIndexQuery/shards-4-4", 4, "BenchmarkIndexQuery/shards-4"},
		{"BenchmarkIndexQuery/shards-16-16", 16, "BenchmarkIndexQuery/shards-16"},
		{"BenchmarkIndexQuery/shards-16", 1, "BenchmarkIndexQuery/shards-16"},
		{"BenchmarkIndexUpsertLSH-8", 8, "BenchmarkIndexUpsertLSH"},
		{"BenchmarkIndexUpsertLSH", 1, "BenchmarkIndexUpsertLSH"},
		{"BenchmarkIndexQueryLSH/policy-union-2", 2, "BenchmarkIndexQueryLSH/policy-union"},
	}
	for _, c := range cases {
		if got := normalizeName(c.name, c.procs); got != c.want {
			t.Fatalf("normalizeName(%q, %d) = %q, want %q", c.name, c.procs, got, c.want)
		}
	}
}

func TestCompareResults(t *testing.T) {
	baseline := []Result{
		{Name: "BenchmarkA-8", NsPerOp: 100, AllocsPerOp: fp(10)},
		{Name: "BenchmarkB-8", NsPerOp: 100, AllocsPerOp: fp(0)},
		{Name: "BenchmarkGone-8", NsPerOp: 50},
	}
	current := []Result{
		{Name: "BenchmarkA-8", NsPerOp: 124, AllocsPerOp: fp(12)}, // within 25%
		{Name: "BenchmarkB-8", NsPerOp: 126, AllocsPerOp: fp(0)},  // ns/op regressed
		{Name: "BenchmarkNew-8", NsPerOp: 1},                      // no baseline: note only
	}
	regs, notes := compareResults(baseline, current, 0.25)
	if len(regs) != 1 || regs[0].name != "BenchmarkB-8" || regs[0].metric != "ns/op" {
		t.Fatalf("regressions = %+v", regs)
	}
	if len(notes) != 2 {
		t.Fatalf("notes = %v", notes)
	}

	// Alloc regressions gate too, including the 0 -> n case.
	current[0].AllocsPerOp = fp(13) // 10 -> 13 = +30%
	current[1] = Result{Name: "BenchmarkB-8", NsPerOp: 100, AllocsPerOp: fp(1)}
	regs, _ = compareResults(baseline, current, 0.25)
	if len(regs) != 2 {
		t.Fatalf("regressions = %+v", regs)
	}
	for _, r := range regs {
		if r.metric != "allocs/op" {
			t.Fatalf("unexpected regression %+v", r)
		}
	}
}
