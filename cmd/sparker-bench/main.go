// Command sparker-bench regenerates every experiment of DESIGN.md's index
// (E1–E9 plus the ablations) in one run and prints the tables recorded in
// EXPERIMENTS.md. Use -markdown to emit GitHub tables.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"text/tabwriter"

	"sparker/internal/datagen"
	"sparker/internal/experiments"
	"sparker/internal/metablocking"
)

var markdown = flag.Bool("markdown", false, "emit Markdown tables")

func main() {
	var (
		scale     = flag.Int("scale", 1, "dataset scale factor")
		executors = flag.String("executors", "1,2,4,8", "comma-separated executor counts for E6")
	)
	flag.Parse()

	cfg := datagen.AbtBuy().Scaled(*scale)
	d, err := experiments.LoadSynthAbtBuy(cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("dataset: %s — %d profiles (|A|=%d, |B|=%d), %d true matches, %d exhaustive comparisons\n\n",
		d.Name, d.Collection.Size(), d.Collection.Separator,
		d.Collection.Size()-int(d.Collection.Separator), d.GT.Size(), d.Collection.MaxComparisons())

	runE1E2()
	runE3(d)
	runE4(d)
	runE5(d)
	runE6(cfg, parseInts(*executors))
	runE7(d)
	runE8(d)
	runE9(d)
	runE10(d)
	runE11()
	runAblations(d)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sparker-bench:", err)
	os.Exit(1)
}

// emit prints a table either as tab-aligned text or Markdown.
func emit(header []string, rows [][]string) {
	if *markdown {
		fmt.Println("| " + strings.Join(header, " | ") + " |")
		seps := make([]string, len(header))
		for i := range seps {
			seps[i] = "---"
		}
		fmt.Println("| " + strings.Join(seps, " | ") + " |")
		for _, r := range rows {
			fmt.Println("| " + strings.Join(r, " | ") + " |")
		}
	} else {
		w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(w, strings.Join(header, "\t"))
		for _, r := range rows {
			fmt.Fprintln(w, strings.Join(r, "\t"))
		}
		w.Flush()
	}
	fmt.Println()
}

func runE1E2() {
	fmt.Println("## E1 — Figure 1(c): schema-agnostic meta-blocking toy")
	toyTable(experiments.Figure1Toy())
	fmt.Println("## E2 — Figure 2(c): loose-schema meta-blocking toy (entropy-weighted)")
	toyTable(experiments.Figure2Toy())
}

func toyTable(edges []experiments.ToyEdge) {
	var rows [][]string
	for _, e := range edges {
		kept := "removed"
		if e.Retained {
			kept = "retained"
		}
		rows = append(rows, []string{e.A + "-" + e.B, fmt.Sprintf("%.1f", e.Weight), kept})
	}
	emit([]string{"edge", "weight", "pruning"}, rows)
}

func runE3(d *experiments.Dataset) {
	fmt.Println("## E3 — Figure 6(a,b): LSH threshold sweep")
	var rows [][]string
	for _, r := range experiments.ThresholdSweep(d, []float64{1.0, 0.5, 0.3}) {
		rows = append(rows, []string{
			fmt.Sprintf("%.2f", r.Threshold),
			fmt.Sprintf("%d", r.Clusters),
			fmt.Sprintf("%d", r.BlobSize),
			fmt.Sprintf("%d", r.Blocks),
			fmt.Sprintf("%d", r.Comparisons),
			fmt.Sprintf("%.4f", r.Recall),
			fmt.Sprintf("%.6f", r.Precision),
			fmt.Sprintf("%d", r.LostPairs),
		})
	}
	emit([]string{"threshold", "clusters", "blob attrs", "blocks", "candidates in blocks", "recall", "precision", "lost pairs"}, rows)
}

func runE4(d *experiments.Dataset) {
	fmt.Println("## E4 — Figure 6(c,d): manual partition edit")
	res, err := experiments.ManualEdit(d)
	if err != nil {
		fatal(err)
	}
	emit([]string{"partitioning", "clusters", "candidates in blocks", "recall", "lost pairs"}, [][]string{
		{"automatic (th=0.3)", fmt.Sprintf("%d", res.Auto.Clusters), fmt.Sprintf("%d", res.Auto.Comparisons), fmt.Sprintf("%.4f", res.Auto.Recall), fmt.Sprintf("%d", res.Auto.LostPairs)},
		{"manual name/description split", fmt.Sprintf("%d", res.Edited.Clusters), fmt.Sprintf("%d", res.Edited.Comparisons), fmt.Sprintf("%.4f", res.Edited.Recall), fmt.Sprintf("%d", res.Edited.LostPairs)},
	})
	fmt.Printf("pairs newly lost by the split: %d (each shared only name/description keys before)\n\n", len(res.NewlyLost))
}

func runE5(d *experiments.Dataset) {
	fmt.Println("## E5 — Figure 6(e): meta-blocking with entropy")
	var rows [][]string
	for _, r := range experiments.EntropyMetaBlocking(d) {
		rows = append(rows, []string{r.Name, fmt.Sprintf("%d", r.Candidates), fmt.Sprintf("%.4f", r.Recall), fmt.Sprintf("%.6f", r.Precision)})
	}
	emit([]string{"configuration", "candidates", "recall", "precision"}, rows)
}

func runE6(cfg datagen.Config, executors []int) {
	fmt.Println("## E6 — scalability: executor sweep (distributed blocking + broadcast meta-blocking)")
	rows, err := experiments.Scalability(cfg, executors)
	if err != nil {
		fatal(err)
	}
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			fmt.Sprintf("%d", r.Executors),
			fmt.Sprintf("%d", r.Profiles),
			fmt.Sprintf("%d", r.BlockingMS),
			fmt.Sprintf("%d", r.MetaBlockMS),
			fmt.Sprintf("%d", r.TotalMS),
			fmt.Sprintf("%.2fx", r.Speedup),
			fmt.Sprintf("%d", r.ShuffleRecords),
			fmt.Sprintf("%d", r.Tasks),
		})
	}
	emit([]string{"executors", "profiles", "blocking ms", "meta-blocking ms", "total ms", "speedup", "shuffle records", "tasks"}, out)
}

func runE7(d *experiments.Dataset) {
	fmt.Println("## E7 — broadcast-join meta-blocking vs naive edge materialisation")
	rows, err := experiments.BroadcastVsNaive(d, 4)
	if err != nil {
		fatal(err)
	}
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{r.Algorithm, fmt.Sprintf("%d", r.Millis), fmt.Sprintf("%d", r.ShuffleRecords), fmt.Sprintf("%d", r.Edges)})
	}
	emit([]string{"plan", "ms", "shuffle records", "retained edges"}, out)
}

func runE8(d *experiments.Dataset) {
	fmt.Println("## E8 — end-to-end pipeline (Figures 3 and 5)")
	reports, err := experiments.EndToEnd(d, false)
	if err != nil {
		fatal(err)
	}
	var rows [][]string
	for _, r := range reports {
		rows = append(rows, []string{
			r.Step,
			fmt.Sprintf("%d", r.Metrics.Candidates),
			fmt.Sprintf("%.4f", r.Metrics.Recall),
			fmt.Sprintf("%.4f", r.Metrics.Precision),
			fmt.Sprintf("%.4f", r.Metrics.F1),
			fmt.Sprintf("%.4f", r.Metrics.ReductionRatio),
		})
	}
	emit([]string{"step", "candidates", "recall", "precision", "F1", "reduction ratio"}, rows)
}

func runE9(d *experiments.Dataset) {
	fmt.Println("## E9 — Section 3: debug-sample representativeness")
	var rows [][]string
	for _, r := range experiments.SamplingExperiment(d, []int{10, 20, 50}, 10) {
		rows = append(rows, []string{
			fmt.Sprintf("%d", r.K), fmt.Sprintf("%d", r.PerSeed),
			fmt.Sprintf("%d", r.SampleSize), fmt.Sprintf("%d", r.MatchingPairs),
		})
	}
	emit([]string{"K", "k", "sample size", "matching pairs inside"}, rows)
}

func runE10(d *experiments.Dataset) {
	fmt.Println("## E10 — progressive meta-blocking: recall vs comparison budget")
	var rows [][]string
	for _, r := range experiments.ProgressiveRecall(d, []int{1, 5, 10, 25, 50, 100}) {
		rows = append(rows, []string{
			r.Strategy,
			fmt.Sprintf("%d%%", r.BudgetPercent),
			fmt.Sprintf("%d", r.Comparisons),
			fmt.Sprintf("%.4f", r.Recall),
		})
	}
	emit([]string{"scheduler", "budget", "comparisons", "recall"}, rows)
}

func runE11() {
	fmt.Println("## E11 — cross-dataset check: bibliographic benchmark (\"different datasets can be used\")")
	bib, err := experiments.LoadBibliographic(datagen.BibDefault())
	if err != nil {
		fatal(err)
	}
	fmt.Printf("dataset: %s — %d profiles, %d true matches\n\n", bib.Name, bib.Collection.Size(), bib.GT.Size())
	reports, err := experiments.EndToEnd(bib, false)
	if err != nil {
		fatal(err)
	}
	var rows [][]string
	for _, r := range reports {
		rows = append(rows, []string{
			r.Step,
			fmt.Sprintf("%d", r.Metrics.Candidates),
			fmt.Sprintf("%.4f", r.Metrics.Recall),
			fmt.Sprintf("%.4f", r.Metrics.Precision),
			fmt.Sprintf("%.4f", r.Metrics.F1),
		})
	}
	emit([]string{"step", "candidates", "recall", "precision", "F1"}, rows)
}

func runAblations(d *experiments.Dataset) {
	fmt.Println("## Ablation — weight scheme × pruning rule (entropy on)")
	var rows [][]string
	for _, r := range experiments.SchemePruningAblation(d,
		[]metablocking.Scheme{metablocking.CBS, metablocking.JS, metablocking.ARCS},
		[]metablocking.Pruning{metablocking.WEP, metablocking.WNP, metablocking.CNP, metablocking.BlastPruning}) {
		rows = append(rows, []string{
			r.Scheme, r.Pruning,
			fmt.Sprintf("%d", r.Candidates),
			fmt.Sprintf("%.4f", r.Recall),
			fmt.Sprintf("%.6f", r.Precision),
			fmt.Sprintf("%.4f", r.F1),
		})
	}
	emit([]string{"scheme", "pruning", "candidates", "recall", "precision", "F1"}, rows)

	fmt.Println("## Ablation — entity-clustering algorithm")
	cl, err := experiments.ClustererAblation(d)
	if err != nil {
		fatal(err)
	}
	var crows [][]string
	for _, r := range cl {
		crows = append(crows, []string{r.Name, fmt.Sprintf("%d", r.Candidates), fmt.Sprintf("%.4f", r.Recall), fmt.Sprintf("%.6f", r.Precision)})
	}
	emit([]string{"clusterer", "co-reference pairs", "recall", "precision"}, crows)
}

func parseInts(s string) []int {
	var out []int
	for _, part := range strings.Split(s, ",") {
		var v int
		if _, err := fmt.Sscanf(strings.TrimSpace(part), "%d", &v); err == nil && v > 0 {
			out = append(out, v)
		}
	}
	if len(out) == 0 {
		out = []int{1, 2, 4}
	}
	return out
}
