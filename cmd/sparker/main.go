// Command sparker runs the full entity-resolution pipeline (Figure 3 of
// the paper) in batch mode: load profiles, block, match, cluster, and
// optionally evaluate against a ground truth and write the entities out.
//
// Two clean-clean CSV sources:
//
//	sparker -a abt.csv -b buy.csv -id id -gt matches.csv -out entities.csv
//
// A single dirty source:
//
//	sparker -dirty products.csv -id id
//
// No inputs: run on the generated SynthAbtBuy benchmark:
//
//	sparker -generate -executors 8
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"sparker/internal/core"
	"sparker/internal/dataflow"
	"sparker/internal/datagen"
	"sparker/internal/evaluation"
	"sparker/internal/loader"
	"sparker/internal/matching"
	"sparker/internal/profile"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "sparker:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		fileA    = flag.String("a", "", "CSV file of the first clean source")
		fileB    = flag.String("b", "", "CSV file of the second clean source")
		dirty    = flag.String("dirty", "", "CSV file of a single dirty source")
		idCol    = flag.String("id", "id", "identifier column name")
		gtFile   = flag.String("gt", "", "ground-truth CSV (two original-ID columns)")
		outFile  = flag.String("out", "", "write resolved entities to this CSV")
		generate = flag.Bool("generate", false, "run on the generated SynthAbtBuy benchmark")

		executors = flag.Int("executors", 0, "simulated executors (0 = sequential)")

		loose     = flag.Bool("loose-schema", true, "enable Blast attribute partitioning")
		threshold = flag.Float64("schema-threshold", 0.3, "LSH attribute-similarity threshold")
		entropy   = flag.Bool("entropy", true, "scale meta-blocking weights by cluster entropy")
		scheme    = flag.String("scheme", "cbs", "weight scheme: cbs|ecbs|js|ejs|arcs")
		pruning   = flag.String("pruning", "blast", "pruning: wep|cep|wnp|rwnp|cnp|rcnp|blast")
		measure   = flag.String("measure", "jaccard", "matcher measure: jaccard|dice|cosine-tfidf")
		matchTh   = flag.Float64("match-threshold", 0.3, "matcher similarity threshold")
		clusterer = flag.String("clusterer", "connected-components", "clusterer: connected-components|center|merge-center")

		configFile = flag.String("config", "", "load a stored pipeline configuration (overrides flags)")
		saveConfig = flag.String("save-config", "", "write the effective configuration to this file")

		candidatesOut = flag.String("candidates-out", "", "export the blocker's candidate pairs to this CSV (for an external matcher)")
		matchesIn     = flag.String("matches-in", "", "import externally matched pairs (id_a,id_b[,score]) instead of running the matcher")
	)
	flag.Parse()

	collection, gtPairs, err := loadInput(*fileA, *fileB, *dirty, *idCol, *gtFile, *generate)
	if err != nil {
		return err
	}

	cfg := core.DefaultConfig()
	cfg.LooseSchema = *loose
	cfg.SchemaThreshold = *threshold
	cfg.UseEntropy = *entropy && *loose
	cfg.MatchThreshold = *matchTh
	cfg.Measure = core.MeasureKind(*measure)
	cfg.Clusterer = core.ClusterAlgorithm(*clusterer)
	if cfg.Scheme, err = core.ParseScheme(*scheme); err != nil {
		return err
	}
	if cfg.Pruning, err = core.ParsePruning(*pruning); err != nil {
		return err
	}
	if *configFile != "" {
		// A stored configuration (the paper's "batch mode" artifact)
		// overrides the individual flags.
		if cfg, err = core.LoadConfigFile(*configFile); err != nil {
			return err
		}
	}
	if *saveConfig != "" {
		if err := core.SaveConfigFile(*saveConfig, cfg); err != nil {
			return err
		}
		fmt.Printf("configuration written to %s\n", *saveConfig)
	}

	var cluster *dataflow.Context
	if *executors > 0 {
		cluster = dataflow.NewContext(dataflow.WithParallelism(*executors))
		defer cluster.Close()
	}

	pipeline := core.NewPipeline(cfg, cluster)
	result, err := resolve(pipeline, collection, *candidatesOut, *matchesIn)
	if err != nil {
		return err
	}

	fmt.Printf("profiles: %d  (max comparisons: %d)\n", collection.Size(), collection.MaxComparisons())
	fmt.Printf("blocks: raw=%d purged=%d filtered=%d\n",
		result.Blocker.Raw.NumBlocks(), result.Blocker.Purged.NumBlocks(), result.Blocker.Filtered.NumBlocks())
	fmt.Printf("candidates: %d   matches: %d   entities: %d\n",
		len(result.Blocker.Candidates), len(result.Matches), len(result.Entities))
	if result.Blocker.Partitioning != nil {
		fmt.Printf("attribute partitions:\n%s", result.Blocker.Partitioning)
	}
	if cluster != nil {
		m := cluster.Metrics()
		fmt.Printf("cluster: executors=%d tasks=%d shuffleRecords=%d broadcasts=%d\n",
			*executors, m.TasksLaunched, m.ShuffleRecords, m.BroadcastsBuilt)
	}

	if len(gtPairs) > 0 {
		gt, err := evaluation.FromOriginalIDs(collection, gtPairs)
		if err != nil {
			return err
		}
		w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(w, "step\tcandidates\trecall\tprecision\tF1")
		for _, r := range result.Evaluate(collection, gt) {
			fmt.Fprintf(w, "%s\t%d\t%.4f\t%.4f\t%.4f\n",
				r.Step, r.Metrics.Candidates, r.Metrics.Recall, r.Metrics.Precision, r.Metrics.F1)
		}
		w.Flush()
	}

	if *outFile != "" {
		f, err := os.Create(*outFile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := loader.WriteEntitiesCSV(f, collection, result.Entities); err != nil {
			return err
		}
		fmt.Printf("entities written to %s\n", *outFile)
	}
	return nil
}

// resolve runs the pipeline, optionally exporting candidates for an
// external matcher and importing its results (the "any existing tool can
// be used" hand-off of the paper).
func resolve(pipeline *core.Pipeline, collection *profile.Collection, candidatesOut, matchesIn string) (*core.Result, error) {
	if candidatesOut == "" && matchesIn == "" {
		return pipeline.Resolve(collection)
	}
	blocker, err := pipeline.RunBlocker(collection)
	if err != nil {
		return nil, err
	}
	if candidatesOut != "" {
		f, err := os.Create(candidatesOut)
		if err != nil {
			return nil, err
		}
		if err := loader.WriteCandidatePairsCSV(f, collection, blocker.Candidates); err != nil {
			f.Close()
			return nil, err
		}
		if err := f.Close(); err != nil {
			return nil, err
		}
		fmt.Printf("candidate pairs written to %s\n", candidatesOut)
	}
	var matches []matching.Match
	if matchesIn != "" {
		f, err := os.Open(matchesIn)
		if err != nil {
			return nil, err
		}
		matches, err = loader.ReadMatchesCSV(f, collection)
		f.Close()
		if err != nil {
			return nil, err
		}
	} else {
		matches, err = pipeline.RunMatcher(collection, blocker.Candidates)
		if err != nil {
			return nil, err
		}
	}
	entities, err := pipeline.RunClusterer(matches)
	if err != nil {
		return nil, err
	}
	return &core.Result{Blocker: blocker, Matches: matches, Entities: entities}, nil
}

func loadInput(fileA, fileB, dirty, idCol, gtFile string, generate bool) (*profile.Collection, [][2]string, error) {
	switch {
	case generate:
		ds := datagen.Generate(datagen.AbtBuy())
		return ds.Collection, ds.GroundTruth, nil
	case dirty != "":
		ps, err := loader.ReadProfilesCSVFile(dirty, idCol)
		if err != nil {
			return nil, nil, err
		}
		gt, err := maybeGroundTruth(gtFile)
		return profile.NewDirty(ps), gt, err
	case fileA != "" && fileB != "":
		a, err := loader.ReadProfilesCSVFile(fileA, idCol)
		if err != nil {
			return nil, nil, err
		}
		b, err := loader.ReadProfilesCSVFile(fileB, idCol)
		if err != nil {
			return nil, nil, err
		}
		gt, err := maybeGroundTruth(gtFile)
		return profile.NewCleanClean(a, b), gt, err
	}
	return nil, nil, fmt.Errorf("provide -a/-b, -dirty, or -generate (see -h)")
}

func maybeGroundTruth(path string) ([][2]string, error) {
	if path == "" {
		return nil, nil
	}
	return loader.ReadGroundTruthCSVFile(path)
}
