package serve_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"sparker"
	"sparker/internal/datagen"
	"sparker/serve"
)

// TestRestartFromSnapshotAnswersIdentically is the sparker-serve restart
// scenario end to end: a ~10k-profile index is built once, snapshotted
// through POST /snapshot/save, torn down, and a second process restores
// it from disk without re-indexing (the restored flag in /stats proves
// the path taken). The restarted process must answer a fixed query set
// byte-for-byte identically to the pre-restart process.
func TestRestartFromSnapshotAnswersIdentically(t *testing.T) {
	gen := datagen.AbtBuy()
	gen.CoreEntities = 4600
	gen.AOnly = 400
	gen.BOnly = 400
	gen.Seed = 77
	c := datagen.Generate(gen).Collection
	if c.Size() < 10000 {
		t.Fatalf("benchmark collection has %d profiles, want >= 10000", c.Size())
	}

	cfg := sparker.DefaultIndexConfig()
	idx, err := sparker.NewIndex(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	snapPath := filepath.Join(t.TempDir(), "serve.snap")

	// --- process one: serve, answer the fixed query set, snapshot, die.
	srv1 := httptest.NewServer(serve.NewHandlerOptions(idx, serve.Options{SnapshotPath: snapPath}))
	queries := fixedQuerySet(t, c)
	before := runQuerySet(t, srv1.URL, queries)

	saveResp, err := http.Post(srv1.URL+"/snapshot/save", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var saved struct {
		Path  string `json:"path"`
		Bytes int64  `json:"bytes"`
	}
	if err := json.NewDecoder(saveResp.Body).Decode(&saved); err != nil {
		t.Fatal(err)
	}
	saveResp.Body.Close()
	if saveResp.StatusCode != http.StatusOK || saved.Bytes == 0 || saved.Path != snapPath {
		t.Fatalf("snapshot save: status %d, %+v", saveResp.StatusCode, saved)
	}
	stats1 := getStats(t, srv1.URL)
	srv1.Close()

	// --- process two: restore from disk; no collection, no re-indexing.
	idx2, err := sparker.LoadIndex(snapPath, cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv2 := httptest.NewServer(serve.NewHandlerOptions(idx2, serve.Options{SnapshotPath: snapPath}))
	defer srv2.Close()

	stats2 := getStats(t, srv2.URL)
	if stats2.Persist == nil || !stats2.Persist.Restored {
		t.Fatalf("restarted process did not restore from snapshot: %+v", stats2.Persist)
	}
	if stats2.Profiles != stats1.Profiles || stats2.Blocks != stats1.Blocks ||
		stats2.Assignments != stats1.Assignments || stats2.Upserts != stats1.Upserts ||
		stats2.Queries != stats1.Queries {
		t.Fatalf("restored stats diverged: %+v vs %+v", stats2, stats1)
	}

	after := runQuerySet(t, srv2.URL, queries)
	for i := range queries {
		if !bytes.Equal(before[i], after[i]) {
			t.Fatalf("query %d answered differently after restart:\npre:  %s\npost: %s",
				i, before[i], after[i])
		}
	}
}

// TestSnapshotSaveEndpointDisabled: without a configured path the
// endpoint refuses rather than writing somewhere surprising.
func TestSnapshotSaveEndpointDisabled(t *testing.T) {
	srv := newTestServer(t) // plain NewHandler, no snapshot path
	resp, err := http.Post(srv.URL+"/snapshot/save", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d, want 404", resp.StatusCode)
	}
}

// TestReadOnlyReplicaOverHTTP: upserts against a read-only replica fail
// with 403 and leave the index untouched; queries keep serving.
func TestReadOnlyReplicaOverHTTP(t *testing.T) {
	mk := func(id, key, value string) sparker.Profile {
		p := sparker.Profile{OriginalID: id}
		p.Add(key, value)
		return p
	}
	idx, err := sparker.NewIndex(sparker.NewCleanClean(
		[]sparker.Profile{mk("a1", "name", "acme turboblend blender")},
		[]sparker.Profile{mk("b1", "title", "turboblend blender by acme")},
	), sparker.DefaultIndexConfig())
	if err != nil {
		t.Fatal(err)
	}
	idx.SetReadOnly(true)
	srv := httptest.NewServer(serve.NewHandler(idx))
	defer srv.Close()

	resp, err := http.Post(srv.URL+"/upsert", "application/json",
		bytes.NewBufferString(`{"id": "a9", "name": "new thing"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("read-only upsert status = %d, want 403", resp.StatusCode)
	}
	resp, err = http.Post(srv.URL+"/bulk", "application/json",
		bytes.NewBufferString(`{"id": "a9", "name": "new thing"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("read-only bulk status = %d, want 403", resp.StatusCode)
	}

	q, err := http.Post(srv.URL+"/query", "application/json",
		bytes.NewBufferString(`{"id": "probe", "name": "acme turboblend"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer q.Body.Close()
	if q.StatusCode != http.StatusOK {
		t.Fatalf("read-only query status = %d", q.StatusCode)
	}
	stats := getStats(t, srv.URL)
	if !stats.ReadOnly {
		t.Fatal("/stats does not report read-only mode")
	}
	if stats.Profiles != 2 || stats.Upserts != 0 {
		t.Fatalf("read-only index mutated: %+v", stats)
	}

	// Even with a snapshot path configured, a read-only replica must not
	// write the shared snapshot file: the handler enforces the invariant
	// for embedders, not just sparker-serve's flag wiring.
	snapPath := filepath.Join(t.TempDir(), "replica.snap")
	srvSnap := httptest.NewServer(serve.NewHandlerOptions(idx, serve.Options{SnapshotPath: snapPath}))
	defer srvSnap.Close()
	resp, err = http.Post(srvSnap.URL+"/snapshot/save", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("read-only snapshot save status = %d, want 403", resp.StatusCode)
	}
	if _, err := os.Stat(snapPath); !os.IsNotExist(err) {
		t.Fatalf("read-only replica wrote the snapshot file: %v", err)
	}
}

// fixedQuerySet builds deterministic wire-format query bodies from a
// spread of indexed profiles plus a few ad-hoc probes.
func fixedQuerySet(t *testing.T, c *sparker.Collection) []string {
	t.Helper()
	var out []string
	for i := 0; i < 40; i++ {
		p := c.Get(sparker.ProfileID((i * 997) % c.Size()))
		body := map[string]string{"id": fmt.Sprintf("probe-%d", i)}
		for _, kv := range p.Attributes {
			if _, dup := body[kv.Key]; !dup {
				body[kv.Key] = kv.Value
			}
		}
		raw, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, string(raw))
	}
	out = append(out,
		`{"id": "adhoc-1", "name": "turbo blender deluxe edition"}`,
		`{"id": "adhoc-2", "name": "zzz token with no posting"}`,
	)
	return out
}

// runQuerySet posts every query body and returns the raw responses.
func runQuerySet(t *testing.T, baseURL string, queries []string) [][]byte {
	t.Helper()
	out := make([][]byte, 0, len(queries))
	for i, q := range queries {
		resp, err := http.Post(baseURL+"/query", "application/json", bytes.NewBufferString(q))
		if err != nil {
			t.Fatal(err)
		}
		raw, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("query %d: status %d: %s", i, resp.StatusCode, raw)
		}
		out = append(out, raw)
	}
	return out
}

// getStats decodes GET /stats.
func getStats(t *testing.T, baseURL string) sparker.IndexSnapshot {
	t.Helper()
	resp, err := http.Get(baseURL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap sparker.IndexSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	return snap
}
