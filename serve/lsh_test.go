package serve_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"sparker"
	"sparker/serve"
)

// newLSHTestServer serves a dirty index in token blocking's blind spot:
// every filler profile draws from a tiny common vocabulary, so the
// common-token postings exceed the purge bound, and one target profile
// shares only those common tokens with the probe query below.
func newLSHTestServer(t *testing.T, policy sparker.IndexProbeOptions) (*httptest.Server, *sparker.Index) {
	t.Helper()
	cfg := sparker.DefaultIndexConfig()
	cfg.LSH.Policy = policy.Policy
	cfg.MaxBlockFraction = 0.2
	idx := sparker.NewEmptyIndex(false, cfg)
	common := []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta", "theta"}
	for i := 0; i < 120; i++ {
		p := sparker.Profile{OriginalID: fmt.Sprintf("f%d", i)}
		toks := make([]string, 0, 5)
		for j := 0; j < 4; j++ {
			toks = append(toks, common[(i+j*2)%len(common)])
		}
		toks = append(toks, fmt.Sprintf("unique%d", i))
		p.Add("name", strings.Join(toks, " "))
		if _, _, err := idx.Upsert(p); err != nil {
			t.Fatal(err)
		}
	}
	target := sparker.Profile{OriginalID: "target"}
	target.Add("name", strings.Join(common[:6], " ")+" targetonly")
	if _, _, err := idx.Upsert(target); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(serve.NewHandler(idx))
	t.Cleanup(srv.Close)
	return srv, idx
}

// lshProbeBody is the query whose tokens are all purged as too common.
const lshProbeBody = `{"id": "probe", "name": "alpha beta gamma delta epsilon zeta"}`

func postQuery(t *testing.T, url, body string) (map[string]any, int) {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewBufferString(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out, resp.StatusCode
}

// TestQueryProbeKnobOverHTTP drives the per-request probe override: the
// default policy (off) misses the purged-common-token match, ?probe=
// fallback recovers it, and the response carries the probe accounting.
func TestQueryProbeKnobOverHTTP(t *testing.T) {
	// Built with fallback so signatures are maintained; requests then
	// override the policy per query.
	srv2, _ := newLSHTestServer(t, sparker.IndexProbeOptions{Policy: sparker.ProbeFallback})

	off, code := postQuery(t, srv2.URL+"/query?probe=off", lshProbeBody)
	if code != http.StatusOK {
		t.Fatalf("probe=off status %d: %v", code, off)
	}
	if n := len(off["candidates"].([]any)); n != 0 {
		t.Fatalf("probe=off found %d candidates; the scenario should purge every posting", n)
	}
	if off["lsh_probed"] == true {
		t.Fatal("probe=off ran a probe")
	}

	fb, code := postQuery(t, srv2.URL+"/query?probe=fallback&probe_floor=2", lshProbeBody)
	if code != http.StatusOK {
		t.Fatalf("probe=fallback status %d: %v", code, fb)
	}
	if fb["lsh_probed"] != true {
		t.Fatalf("fallback did not probe: %v", fb)
	}
	cands := fb["candidates"].([]any)
	if len(cands) == 0 {
		t.Fatal("fallback found no candidates")
	}
	foundTarget := false
	for _, c := range cands {
		cm := c.(map[string]any)
		if cm["original_id"] == "target" {
			foundTarget = true
			if cm["shared_buckets"].(float64) == 0 {
				t.Fatalf("target candidate without shared buckets: %v", cm)
			}
		}
	}
	if !foundTarget {
		t.Fatalf("fallback did not recover the target: %v", cands)
	}
	if fb["buckets_probed"].(float64) == 0 {
		t.Fatalf("no buckets probed: %v", fb)
	}
}

// TestProbeKnobRejectedWithoutLSH pins the 400 on explicit probes
// against an index that maintains no signatures.
func TestProbeKnobRejectedWithoutLSH(t *testing.T) {
	srv, _ := newLSHTestServer(t, sparker.IndexProbeOptions{Policy: sparker.ProbeOff})
	for _, q := range []string{"?probe=fallback", "?probe=union", "?probe_floor=3"} {
		if _, code := postQuery(t, srv.URL+"/query"+q, lshProbeBody); code != http.StatusBadRequest {
			t.Fatalf("%s on a non-LSH index: status %d, want 400", q, code)
		}
	}
	// probe=off is always acceptable, as are unknown-free plain queries.
	if _, code := postQuery(t, srv.URL+"/query?probe=off", lshProbeBody); code != http.StatusOK {
		t.Fatalf("probe=off rejected: %d", code)
	}
	if _, code := postQuery(t, srv.URL+"/query?probe=sideways", lshProbeBody); code != http.StatusBadRequest {
		t.Fatal("unknown probe policy accepted")
	}
	if _, code := postQuery(t, srv.URL+"/query?probe_floor=-1", lshProbeBody); code != http.StatusBadRequest {
		t.Fatal("negative probe_floor accepted")
	}
}

// TestStatsReportLSHCounters checks /stats surfaces the probe counters.
func TestStatsReportLSHCounters(t *testing.T) {
	srv, _ := newLSHTestServer(t, sparker.IndexProbeOptions{Policy: sparker.ProbeFallback})
	if _, code := postQuery(t, srv.URL+"/query", lshProbeBody); code != http.StatusOK {
		t.Fatalf("query status %d", code)
	}
	resp, err := http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	lsh, ok := stats["lsh"].(map[string]any)
	if !ok {
		t.Fatalf("no lsh section in stats: %v", stats)
	}
	if lsh["policy"] != "fallback" {
		t.Fatalf("policy = %v", lsh["policy"])
	}
	if lsh["probes"].(float64) < 1 {
		t.Fatalf("probe counter did not move: %v", lsh)
	}
	if lsh["buckets"].(float64) == 0 {
		t.Fatalf("no live buckets reported: %v", lsh)
	}
}
