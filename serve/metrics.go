package serve

// Route instrumentation and the Prometheus /metrics endpoint. Every
// handler is wrapped by handle(): request, 4xx and 5xx counters plus a
// latency histogram per route, recorded with the allocation-free
// internal/obs primitives. /metrics renders those counters together
// with the index's per-stage query histograms in the text exposition
// format, so one scrape answers both "is the HTTP surface healthy" and
// "where do queries spend their time".

import (
	"net/http"

	"sparker/internal/index"
	"sparker/internal/obs"
)

// routeMetrics is the instrumentation of one route.
type routeMetrics struct {
	route     string
	requests  obs.Counter
	errors4xx obs.Counter
	errors5xx obs.Counter
	latency   obs.Histogram // nanos
}

// statusWriter captures the response status for the error counters.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// router is the instrumented route table shared by the single-node
// Handler and the cluster Coordinator: one mux, one routeMetrics row
// per canonical route. Aliases (the legacy unversioned paths) dispatch
// to the same handler and count into the same row, labelled by the
// canonical /v1 path — an operator's dashboards see one route however
// clients spell it.
type router struct {
	mux    *http.ServeMux
	routes []*routeMetrics
}

func (rt *router) init() { rt.mux = http.NewServeMux() }

// ServeHTTP dispatches to the instrumented routes.
func (rt *router) ServeHTTP(w http.ResponseWriter, r *http.Request) { rt.mux.ServeHTTP(w, r) }

// handle registers an instrumented route on the mux, plus any aliases.
func (rt *router) handle(route string, fn http.HandlerFunc, aliases ...string) {
	rm := &routeMetrics{route: route}
	rt.routes = append(rt.routes, rm)
	instrumented := func(w http.ResponseWriter, r *http.Request) {
		start := obs.Now()
		sw := statusWriter{ResponseWriter: w}
		fn(&sw, r)
		code := sw.code
		if code == 0 {
			code = http.StatusOK
		}
		rm.requests.Inc()
		switch {
		case code >= 500:
			rm.errors5xx.Inc()
		case code >= 400:
			rm.errors4xx.Inc()
		}
		rm.latency.Observe(obs.Now() - start)
	}
	rt.mux.HandleFunc(route, instrumented)
	for _, alias := range aliases {
		rt.mux.HandleFunc(alias, instrumented)
	}
}

// routeStatsJSON is one route's counters on the /stats surface — the
// JSON digest of what /metrics exposes as Prometheus families.
type routeStatsJSON struct {
	Route     string  `json:"route"`
	Requests  int64   `json:"requests"`
	Errors4xx int64   `json:"errors_4xx"`
	Errors5xx int64   `json:"errors_5xx"`
	P50Ms     float64 `json:"p50_ms"`
	P99Ms     float64 `json:"p99_ms"`
}

func (rt *router) routeStats() []routeStatsJSON {
	out := make([]routeStatsJSON, 0, len(rt.routes))
	for _, rm := range rt.routes {
		s := rm.latency.Snapshot()
		out = append(out, routeStatsJSON{
			Route:     rm.route,
			Requests:  rm.requests.Load(),
			Errors4xx: rm.errors4xx.Load(),
			Errors5xx: rm.errors5xx.Load(),
			P50Ms:     s.Quantile(0.5) / 1e6,
			P99Ms:     s.Quantile(0.99) / 1e6,
		})
	}
	return out
}

// admissionStatsJSON is the /stats digest of the admission gate and
// the budget/degradation counters — what an operator reads to tell
// "loaded but coping" (degraded/truncated climbing) from "refusing
// work" (shed counters climbing).
type admissionStatsJSON struct {
	// MaxInFlight is the configured gate capacity (0 = admission off).
	MaxInFlight int `json:"max_inflight"`
	InFlight    int `json:"in_flight"`
	Waiting     int `json:"waiting"`
	// ShedFull counts requests shed immediately (429, no wait
	// configured); ShedTimeout counts requests shed after the bounded
	// wait expired or the client gave up (503).
	ShedFull    int64 `json:"shed_full"`
	ShedTimeout int64 `json:"shed_timeout"`
	// Degraded counts queries served at a non-zero ladder level and
	// Truncated responses whose budget tripped mid-resolution.
	Degraded  int64 `json:"degraded_queries"`
	Truncated int64 `json:"truncated_queries"`
}

func (h *Handler) admissionStats() admissionStatsJSON {
	s := admissionStatsJSON{
		MaxInFlight: h.gate.capacity(),
		InFlight:    h.gate.inFlight(),
		Degraded:    h.degraded.Load(),
		Truncated:   h.truncated.Load(),
	}
	if h.gate != nil {
		s.Waiting = int(h.gate.waiting.Load())
		s.ShedFull = h.gate.shedFull.Load()
		s.ShedTimeout = h.gate.shedTimeout.Load()
	}
	return s
}

// writeHTTPMetrics renders the per-route HTTP families. Families must
// be contiguous in the exposition: each family is emitted across all
// routes before moving to the next.
func (rt *router) writeHTTPMetrics(e *obs.Expo) {
	for _, rm := range rt.routes {
		e.Counter("sparker_http_requests_total", "HTTP requests served.", float64(rm.requests.Load()),
			obs.Label{Name: "route", Value: rm.route})
	}
	for _, rm := range rt.routes {
		e.Counter("sparker_http_errors_total", "HTTP error responses.", float64(rm.errors4xx.Load()),
			obs.Label{Name: "route", Value: rm.route}, obs.Label{Name: "class", Value: "4xx"})
		e.Counter("sparker_http_errors_total", "HTTP error responses.", float64(rm.errors5xx.Load()),
			obs.Label{Name: "route", Value: rm.route}, obs.Label{Name: "class", Value: "5xx"})
	}
	for _, rm := range rt.routes {
		e.Histogram("sparker_http_request_seconds", "HTTP request latency.", rm.latency.Snapshot(), 1e-9,
			obs.Label{Name: "route", Value: rm.route})
	}
}

// metrics serves GET /metrics: the Prometheus text exposition of the
// index and HTTP telemetry.
func (h *Handler) metrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		methodError(w, http.MethodGet)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	e := obs.NewExpo(w)

	x := h.Index()
	snap := x.Snapshot()
	e.Gauge("sparker_index_profiles", "Indexed profiles.", float64(snap.Profiles))
	e.Gauge("sparker_index_blocks", "Live postings (distinct blocking keys).", float64(snap.Blocks))
	e.Gauge("sparker_index_assignments", "Profile-to-posting placements.", float64(snap.Assignments))
	e.Gauge("sparker_index_max_block_size", "Largest posting.", float64(snap.MaxBlockSize))
	e.Gauge("sparker_index_read_only", "1 when the index is a read-only replica.", boolGauge(snap.ReadOnly))
	e.Counter("sparker_index_queries_total", "Queries served since construction.", float64(snap.Queries))
	e.Counter("sparker_index_upserts_total", "Upserts applied since construction.", float64(snap.Upserts))
	e.Gauge("sparker_index_seq", "Highest applied op sequence number.", float64(snap.Seq))

	if snap.OpLog != nil {
		e.Gauge("sparker_oplog_ops", "Op frames retained in the in-memory op log.", float64(snap.OpLog.Ops))
		e.Gauge("sparker_oplog_bytes", "Bytes retained in the in-memory op log.", float64(snap.OpLog.Bytes))
		e.Gauge("sparker_oplog_floor_seq", "Oldest sequence number still served by /deltas.", float64(snap.OpLog.FloorSeq))
		e.Counter("sparker_oplog_appended_total", "Op frames appended to the op log since construction.", float64(snap.OpLog.Appended))
	}

	if snap.WAL != nil {
		e.Gauge("sparker_wal_segments", "On-disk WAL segment files (active included).", float64(snap.WAL.Segments))
		e.Gauge("sparker_wal_bytes", "Bytes across all WAL segments.", float64(snap.WAL.Bytes))
		e.Gauge("sparker_wal_first_seq", "Oldest sequence number retained in the WAL.", float64(snap.WAL.FirstSeq))
		e.Gauge("sparker_wal_last_seq", "Newest sequence number appended to the WAL.", float64(snap.WAL.LastSeq))
		e.Counter("sparker_wal_appends_total", "Op frames appended to the WAL since open.", float64(snap.WAL.Appended))
		e.Counter("sparker_wal_syncs_total", "fsyncs issued by the WAL (policy, rotation and close).", float64(snap.WAL.Syncs))
		e.Counter("sparker_wal_rotations_total", "WAL segment rotations.", float64(snap.WAL.Rotations))
		e.Counter("sparker_wal_pruned_segments_total", "WAL segments deleted by snapshot-bounded retention.", float64(snap.WAL.PrunedSegments))
	}

	if snap.LSH != nil {
		e.Gauge("sparker_lsh_buckets", "Live LSH bucket postings.", float64(snap.LSH.Buckets))
		e.Counter("sparker_lsh_probes_total", "Queries that ran an LSH probe.", float64(snap.LSH.Probes))
		e.Counter("sparker_lsh_probe_only_candidates_total", "Candidates surfaced by the probe alone.", float64(snap.LSH.ProbeOnlyCandidates))
		e.Gauge("sparker_lsh_fallback_rate", "Fraction of queries that triggered a probe.", snap.LSH.FallbackRate)
	}

	if m := x.Metrics(); m != nil {
		for s := 0; s < index.NumStages; s++ {
			e.Histogram("sparker_query_stage_seconds", "Per-stage query latency.",
				m.Stages[s].Snapshot(), 1e-9, obs.Label{Name: "stage", Value: index.Stage(s).String()})
		}
		e.Histogram("sparker_query_seconds", "Candidate-generation latency (all stages before scoring).", m.Query.Snapshot(), 1e-9)
		e.Histogram("sparker_resolve_seconds", "Full resolution latency (query plus scoring).", m.Resolve.Snapshot(), 1e-9)
		e.Histogram("sparker_upsert_seconds", "Upsert latency.", m.Upsert.Snapshot(), 1e-9)
		e.Histogram("sparker_query_candidates", "Ranked candidates returned per query.", m.Candidates.Snapshot(), 1)
		e.Histogram("sparker_resolve_comparisons", "Candidates scored per resolve.", m.Comparisons.Snapshot(), 1)
		e.Histogram("sparker_snapshot_save_seconds", "Durable snapshot save latency.", m.Save.Snapshot(), 1e-9)
		e.Histogram("sparker_snapshot_save_delta_seconds", "Delta snapshot append latency.", m.SaveDelta.Snapshot(), 1e-9)
		e.Histogram("sparker_snapshot_load_seconds", "Durable snapshot restore latency.", m.Load.Snapshot(), 1e-9)
		e.Histogram("sparker_wal_append_seconds", "Durable op-log append latency (including fsync under the always policy).", m.WALAppend.Snapshot(), 1e-9)
		e.Gauge("sparker_snapshot_bytes", "Encoded size of the last snapshot.", float64(m.SnapshotBytes.Load()))
	}

	// Replication telemetry, present only on a following replica: lag is
	// the first thing an operator checks before trusting this replica's
	// answers, applied/resync counters tell whether the feed is healthy
	// or thrashing through full re-bootstraps.
	if h.follower != nil {
		rs := h.follower.Stats()
		e.Gauge("sparker_replication_ready", "1 once the follower has bootstrapped from its leader.", boolGauge(rs.Ready))
		e.Gauge("sparker_replication_lag_seconds", "Seconds between the newest applied op's leader timestamp and now.", rs.LagSeconds)
		e.Gauge("sparker_replication_applied_seq", "Highest op sequence number applied locally.", float64(rs.AppliedSeq))
		e.Gauge("sparker_replication_leader_seq", "Highest op sequence number reported by the leader.", float64(rs.LeaderSeq))
		e.Counter("sparker_replication_applied_ops_total", "Op frames applied from the delta feed.", float64(rs.AppliedOps))
		e.Counter("sparker_replication_resyncs_total", "Full re-bootstraps after falling off the leader's op-log window.", float64(rs.Resyncs))
		e.Counter("sparker_replication_errors_total", "Failed delta polls (network, decode or apply errors).", float64(rs.Errors))
	}

	// Admission gate and budget/degradation telemetry: the overload
	// dashboards alert on shed and degraded rates long before latency
	// histograms drift.
	adm := h.admissionStats()
	e.Gauge("sparker_admission_max_in_flight", "Configured admission gate capacity (0 = admission off).", float64(adm.MaxInFlight))
	e.Gauge("sparker_admission_in_flight", "Requests currently admitted through the gate.", float64(adm.InFlight))
	e.Gauge("sparker_admission_waiting", "Requests waiting for an admission slot.", float64(adm.Waiting))
	e.Counter("sparker_admission_shed_total", "Requests shed by the admission gate.", float64(adm.ShedFull),
		obs.Label{Name: "reason", Value: "full"})
	e.Counter("sparker_admission_shed_total", "Requests shed by the admission gate.", float64(adm.ShedTimeout),
		obs.Label{Name: "reason", Value: "timeout"})
	e.Counter("sparker_queries_degraded_total", "Queries served at a non-zero degradation level.", float64(adm.Degraded))
	e.Counter("sparker_queries_truncated_total", "Query responses truncated by a per-request budget.", float64(adm.Truncated))
	e.Histogram("sparker_query_budget_spent_comparisons", "Comparisons spent per budgeted query.", h.budgetSpent.Snapshot(), 1)

	h.writeHTTPMetrics(e)
	_ = e.Flush()
}

func boolGauge(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
