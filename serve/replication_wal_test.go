package serve

// Replication robustness added with the durable op log: error backoff
// (exponential, jittered, capped, reset on success), last_error
// clearing on recovery, chained replication at depth 2, and the
// crash-restart contract — a leader that dies mid-traffic and comes
// back from snapshot + WAL serves its followers with zero resyncs.

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"sparker/internal/index"
	"sparker/internal/profile"
)

func TestNextBackoff(t *testing.T) {
	base, cap := 100*time.Millisecond, time.Second
	var got []time.Duration
	cur := time.Duration(0)
	for i := 0; i < 6; i++ {
		cur = nextBackoff(cur, base, cap)
		got = append(got, cur)
	}
	want := []time.Duration{
		100 * time.Millisecond, 200 * time.Millisecond, 400 * time.Millisecond,
		800 * time.Millisecond, time.Second, time.Second,
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("step %d = %v, want %v (all: %v)", i, got[i], want[i], got)
		}
	}
	// Reset-on-success restarts the ladder at the floor.
	if b := nextBackoff(0, base, cap); b != base {
		t.Fatalf("after reset = %v, want %v", b, base)
	}
	// Overflow saturates at the cap instead of going negative.
	if b := nextBackoff(1<<62, base, cap); b != cap {
		t.Fatalf("overflow step = %v, want %v", b, cap)
	}
}

func TestJitteredBackoff(t *testing.T) {
	d := 400 * time.Millisecond
	for i := 0; i < 200; i++ {
		j := jitteredBackoff(d)
		if j < d/2 || j >= d {
			t.Fatalf("jitteredBackoff(%v) = %v, want in [%v, %v)", d, j, d/2, d)
		}
	}
	if j := jitteredBackoff(0); j != 0 {
		t.Fatalf("jitteredBackoff(0) = %v", j)
	}
}

// flakyLeader wraps a real leader handler behind an on/off switch: while
// down, every request fails with 502 — the HTTP shape of a dead leader
// with a live load balancer — and the inner handler can be swapped, the
// restart seam the crash test uses.
type flakyLeader struct {
	inner atomic.Pointer[Handler]
	down  atomic.Bool
}

func (fl *flakyLeader) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if fl.down.Load() {
		http.Error(w, "leader down", http.StatusBadGateway)
		return
	}
	fl.inner.Load().ServeHTTP(w, r)
}

// TestBackoffAndLastErrorLifecycle pins the consumer-side hardening:
// while the leader is down, errors accumulate and the backoff climbs
// past the floor; once the leader returns, the follower catches up,
// last_error clears (the stale-/stats bug) and the backoff resets.
func TestBackoffAndLastErrorLifecycle(t *testing.T) {
	leaderIdx := oplogIndex(t, oplogConfig(), 8)
	fl := &flakyLeader{}
	fl.inner.Store(NewHandlerOptions(leaderIdx, Options{}))
	srv := httptest.NewServer(fl)
	defer srv.Close()

	f := NewFollower(srv.URL, oplogConfig(), FollowerOptions{
		PollWait:   50 * time.Millisecond,
		Interval:   5 * time.Millisecond,
		MaxBackoff: 40 * time.Millisecond,
		Logger:     quietLogger(),
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	fx, err := f.Bootstrap(ctx)
	if err != nil {
		t.Fatal(err)
	}
	fh := NewHandlerOptions(fx, Options{Follower: f})
	go func() { _ = f.Run(ctx, fh) }()

	fl.down.Store(true)
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := f.Stats()
		if st.Errors >= 4 && st.LastError != "" && st.BackoffSeconds > f.interval.Seconds() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("backoff never climbed: %+v", f.Stats())
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Leader returns with new writes; the follower must recover fully.
	p := profile.Profile{OriginalID: "revived"}
	p.Add("name", "tok1 back from the dead")
	if _, _, err := leaderIdx.Upsert(p); err != nil {
		t.Fatal(err)
	}
	fl.down.Store(false)
	for {
		st := f.Stats()
		if st.AppliedSeq == leaderIdx.Seq() && st.LastError == "" && st.BackoffSeconds == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower never recovered cleanly: %+v", f.Stats())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestChainedReplicationDepthTwo pins leader → follower → follower: the
// depth-2 replica converges byte-identical to the leader, and both lag
// measurements drain through the chain.
func TestChainedReplicationDepthTwo(t *testing.T) {
	leaderIdx := oplogIndex(t, oplogConfig(), 16)
	leader := httptest.NewServer(NewHandlerOptions(leaderIdx, Options{}))
	defer leader.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// f1 keeps its own op log (oplogConfig), which is what lets it feed
	// the next hop.
	mid := NewFollower(leader.URL, oplogConfig(), FollowerOptions{
		PollWait: 200 * time.Millisecond,
		Interval: 10 * time.Millisecond,
		Logger:   quietLogger(),
	})
	midIdx, err := mid.Bootstrap(ctx)
	if err != nil {
		t.Fatal(err)
	}
	midH := NewHandlerOptions(midIdx, Options{Follower: mid})
	midSrv := httptest.NewServer(midH)
	defer midSrv.Close()
	go func() { _ = mid.Run(ctx, midH) }()

	tail := NewFollower(midSrv.URL, oplogConfig(), FollowerOptions{
		PollWait: 200 * time.Millisecond,
		Interval: 10 * time.Millisecond,
		Logger:   quietLogger(),
	})
	tailIdx, err := tail.Bootstrap(ctx)
	if err != nil {
		t.Fatalf("depth-2 bootstrap (from a follower): %v", err)
	}
	tailH := NewHandlerOptions(tailIdx, Options{Follower: tail})
	tailSrv := httptest.NewServer(tailH)
	defer tailSrv.Close()
	go func() { _ = tail.Run(ctx, tailH) }()

	// Write through the leader; the ops must propagate two hops.
	for i := 0; i < 5; i++ {
		p := profile.Profile{OriginalID: fmt.Sprintf("chain%d", i)}
		p.Add("name", fmt.Sprintf("chained tok%d shared%d", i%12, i%4))
		if _, _, err := leaderIdx.Upsert(p); err != nil {
			t.Fatal(err)
		}
	}
	waitForSeq(t, midSrv.Client(), midSrv.URL, leaderIdx.Seq())
	waitForSeq(t, tailSrv.Client(), tailSrv.URL, leaderIdx.Seq())

	// Lag propagated through the chain: each hop tracked its upstream's
	// head and drained to it.
	midSt, tailSt := mid.Stats(), tail.Stats()
	if midSt.LeaderSeq != leaderIdx.Seq() || midSt.AppliedSeq != leaderIdx.Seq() {
		t.Fatalf("mid stats %+v, want applied=leader=%d", midSt, leaderIdx.Seq())
	}
	if tailSt.LeaderSeq != midH.Index().Seq() || tailSt.AppliedSeq != leaderIdx.Seq() {
		t.Fatalf("tail stats %+v, want applied=%d tracking mid", tailSt, leaderIdx.Seq())
	}
	if tailSt.Resyncs != 0 || midSt.Resyncs != 0 {
		t.Fatalf("chain resynced: mid %d, tail %d", midSt.Resyncs, tailSt.Resyncs)
	}

	// The depth-2 replica answers byte-identically to the leader.
	want := queryAnswer(t, leader.Client(), leader.URL)
	viaMid := queryAnswer(t, midSrv.Client(), midSrv.URL)
	viaTail := queryAnswer(t, tailSrv.Client(), tailSrv.URL)
	if !bytes.Equal(want, viaMid) {
		t.Fatalf("depth-1 answer diverged:\nleader: %s\nmid:    %s", want, viaMid)
	}
	if !bytes.Equal(want, viaTail) {
		t.Fatalf("depth-2 answer diverged:\nleader: %s\ntail:   %s", want, viaTail)
	}
}

// TestLeaderCrashRestartNoResync is the serve-level acceptance pin: a
// leader with a durable op log dies mid-traffic (no clean shutdown, no
// final save), restarts from snapshot + WAL, and its follower catches
// up over the same /deltas feed — zero resyncs, byte-identical answers.
func TestLeaderCrashRestartNoResync(t *testing.T) {
	walDir := t.TempDir()
	snap := filepath.Join(t.TempDir(), "leader.snap")

	leaderIdx := oplogIndex(t, oplogConfig(), 12)
	if _, err := leaderIdx.OpenWAL(index.WALConfig{Dir: walDir, Sync: index.WALSyncNever}); err != nil {
		t.Fatal(err)
	}
	// A snapshot exists from before the crash window (the serving tier's
	// periodic save); everything after it lives only in the WAL.
	if _, err := leaderIdx.Save(snap); err != nil {
		t.Fatal(err)
	}

	fl := &flakyLeader{}
	fl.inner.Store(NewHandlerOptions(leaderIdx, Options{}))
	srv := httptest.NewServer(fl)
	defer srv.Close()

	f := NewFollower(srv.URL, oplogConfig(), FollowerOptions{
		PollWait:   100 * time.Millisecond,
		Interval:   5 * time.Millisecond,
		MaxBackoff: 50 * time.Millisecond,
		Logger:     quietLogger(),
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	fx, err := f.Bootstrap(ctx)
	if err != nil {
		t.Fatal(err)
	}
	fh := NewHandlerOptions(fx, Options{Follower: f})
	fsrv := httptest.NewServer(fh)
	defer fsrv.Close()
	go func() { _ = f.Run(ctx, fh) }()

	// Traffic after the snapshot: these ops exist only in WAL + memory.
	for i := 0; i < 6; i++ {
		p := profile.Profile{OriginalID: fmt.Sprintf("crash%d", i)}
		p.Add("name", fmt.Sprintf("mid traffic tok%d shared%d", i%12, i%4))
		if _, _, err := leaderIdx.Upsert(p); err != nil {
			t.Fatal(err)
		}
	}
	waitForSeq(t, fsrv.Client(), fsrv.URL, leaderIdx.Seq())
	deadSeq := leaderIdx.Seq()

	// kill -9: the leader vanishes with no CloseWAL, no final save. Its
	// in-memory op window dies with it; only snapshot + WAL remain.
	fl.down.Store(true)

	// Restart: snapshot restore, then WAL replay through the strict
	// apply path. The replay must rebuild the in-memory window too.
	restarted, err := index.Load(snap, oplogConfig())
	if err != nil {
		t.Fatal(err)
	}
	rec, err := restarted.OpenWAL(index.WALConfig{Dir: walDir, Sync: index.WALSyncNever})
	if err != nil {
		t.Fatalf("WAL recovery: %v", err)
	}
	if restarted.Seq() != deadSeq {
		t.Fatalf("restarted at seq %d, want %d (recovery %+v)", restarted.Seq(), deadSeq, rec)
	}
	fl.inner.Store(NewHandlerOptions(restarted, Options{}))
	fl.down.Store(false)

	// More traffic through the restarted leader; the follower must tail
	// straight through the restart.
	for i := 0; i < 4; i++ {
		p := profile.Profile{OriginalID: fmt.Sprintf("post%d", i)}
		p.Add("name", fmt.Sprintf("post restart tok%d shared%d", i%12, i%4))
		if _, _, err := restarted.Upsert(p); err != nil {
			t.Fatal(err)
		}
	}
	waitForSeq(t, fsrv.Client(), fsrv.URL, restarted.Seq())

	st := f.Stats()
	if st.Resyncs != 0 {
		t.Fatalf("follower resynced %d times across the restart, want 0 (stats %+v)", st.Resyncs, st)
	}
	if st.LastError != "" {
		t.Fatalf("stale last_error after recovery: %q", st.LastError)
	}
	want := queryAnswer(t, srv.Client(), srv.URL)
	got := queryAnswer(t, fsrv.Client(), fsrv.URL)
	if !bytes.Equal(want, got) {
		t.Fatalf("follower diverged across leader crash:\nleader:   %s\nfollower: %s", want, got)
	}
}
