package serve

// Fault-injection and overload tests for the admission gate and the
// degradation ladder. The index Config.ScoreHook is the injection
// point: a hook that blocks (or sleeps) per comparison turns any query
// into a slow query on demand, so the tests can hold the gate open,
// saturate it, and watch the server shed, degrade and recover —
// deterministically, without relying on real load.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sparker/internal/index"
	"sparker/internal/profile"
)

// overloadIndex builds a dirty index with enough token overlap that
// every query below yields candidates to score — each comparison runs
// the injected hook.
func overloadIndex(t *testing.T, hook func()) *index.Index {
	t.Helper()
	cfg := index.DefaultConfig()
	cfg.ScoreHook = hook
	x := index.New(false, cfg)
	for i := 0; i < 48; i++ {
		p := profile.Profile{OriginalID: fmt.Sprintf("p%d", i)}
		p.Add("name", fmt.Sprintf("tok%d tok%d shared%d", i%12, (i/2)%12, i%4))
		p.Add("desc", fmt.Sprintf("word%d common", i%8))
		if _, _, err := x.Upsert(p); err != nil {
			t.Fatalf("upsert: %v", err)
		}
	}
	return x
}

// queryBody is the wire form of the probe query: overlaps several
// token groups in overloadIndex, so candidates always exist.
const queryBody = `{"id":"q","name":"tok0 tok1 shared0","desc":"word0 common"}`

func postQuery(t *testing.T, client *http.Client, url string) *http.Response {
	t.Helper()
	resp, err := client.Post(url, "application/json", strings.NewReader(queryBody))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	return resp
}

func decodeQuery(t *testing.T, resp *http.Response) queryResponse {
	t.Helper()
	defer resp.Body.Close()
	var qr queryResponse
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		t.Fatalf("decode query response: %v", err)
	}
	return qr
}

func getStats(t *testing.T, client *http.Client, base string) statsResponse {
	t.Helper()
	resp, err := client.Get(base + "/stats")
	if err != nil {
		t.Fatalf("GET /stats: %v", err)
	}
	defer resp.Body.Close()
	var st statsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decode stats: %v", err)
	}
	return st
}

// blockFirstComparison returns a hook that parks the first comparison
// it sees until release is closed, signalling entered once parked.
// Later comparisons (same or other queries) pass straight through, so
// exactly one query holds its admission slot.
func blockFirstComparison(entered chan<- struct{}, release <-chan struct{}) func() {
	var first atomic.Bool
	return func() {
		if first.CompareAndSwap(false, true) {
			close(entered)
			<-release
		}
	}
}

// TestAdmissionShedImmediate: with MaxInFlight=1 and no shed wait, a
// second request sheds instantly with 429 + Retry-After while the
// first holds the gate — and /readyz reports the saturation so a load
// balancer can drain the replica. After release everything recovers.
func TestAdmissionShedImmediate(t *testing.T) {
	entered := make(chan struct{})
	release := make(chan struct{})
	x := overloadIndex(t, blockFirstComparison(entered, release))
	srv := httptest.NewServer(NewHandlerOptions(x, Options{MaxInFlight: 1}))
	defer srv.Close()
	client := srv.Client()

	firstDone := make(chan int, 1)
	go func() {
		resp := postQuery(t, client, srv.URL+"/query")
		resp.Body.Close()
		firstDone <- resp.StatusCode
	}()
	<-entered // the first query is parked inside scoring, slot held

	resp := postQuery(t, client, srv.URL+"/query")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second query status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatalf("shed response missing Retry-After header")
	}
	var body APIError
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil || body.Err.Code != ErrCodeOverloaded {
		t.Fatalf("shed response body = %+v (err %v), want %q envelope", body, err, ErrCodeOverloaded)
	}
	if body.Err.RetryAfterSeconds < 1 {
		t.Fatalf("shed envelope retry_after_seconds = %d, want >= 1", body.Err.RetryAfterSeconds)
	}
	resp.Body.Close()

	ready, err := client.Get(srv.URL + "/readyz")
	if err != nil {
		t.Fatalf("GET /readyz: %v", err)
	}
	ready.Body.Close()
	if ready.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("saturated /readyz status = %d, want 503", ready.StatusCode)
	}

	close(release)
	if code := <-firstDone; code != http.StatusOK {
		t.Fatalf("blocked query finished with %d, want 200", code)
	}

	ready, err = client.Get(srv.URL + "/readyz")
	if err != nil {
		t.Fatalf("GET /readyz after release: %v", err)
	}
	ready.Body.Close()
	if ready.StatusCode != http.StatusOK {
		t.Fatalf("recovered /readyz status = %d, want 200", ready.StatusCode)
	}

	st := getStats(t, client, srv.URL)
	if st.Admission.ShedFull != 1 {
		t.Fatalf("shed_full = %d, want 1", st.Admission.ShedFull)
	}
	if st.Admission.InFlight != 0 {
		t.Fatalf("in_flight after drain = %d, want 0", st.Admission.InFlight)
	}
}

// TestAdmissionBoundedWaitShed: with a shed wait configured, the
// over-limit request waits, times out, and sheds with 503.
func TestAdmissionBoundedWaitShed(t *testing.T) {
	entered := make(chan struct{})
	release := make(chan struct{})
	x := overloadIndex(t, blockFirstComparison(entered, release))
	srv := httptest.NewServer(NewHandlerOptions(x, Options{MaxInFlight: 1, ShedWait: 20 * time.Millisecond}))
	defer srv.Close()
	client := srv.Client()

	firstDone := make(chan struct{})
	go func() {
		resp := postQuery(t, client, srv.URL+"/query")
		resp.Body.Close()
		close(firstDone)
	}()
	<-entered

	start := time.Now()
	resp := postQuery(t, client, srv.URL+"/query")
	waited := time.Since(start)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("waited query status = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatalf("503 shed response missing Retry-After header")
	}
	if waited < 20*time.Millisecond {
		t.Fatalf("shed after %v, want at least the 20ms bounded wait", waited)
	}

	close(release)
	<-firstDone
	if st := getStats(t, client, srv.URL); st.Admission.ShedTimeout != 1 {
		t.Fatalf("shed_timeout = %d, want 1", st.Admission.ShedTimeout)
	}
}

// TestDegradedQueryMarker: a query admitted while the gate is half
// occupied is served at ladder level 1 and says so in its response and
// in the admission counters.
func TestDegradedQueryMarker(t *testing.T) {
	entered := make(chan struct{})
	release := make(chan struct{})
	x := overloadIndex(t, blockFirstComparison(entered, release))
	srv := httptest.NewServer(NewHandlerOptions(x, Options{MaxInFlight: 2}))
	defer srv.Close()
	client := srv.Client()

	firstDone := make(chan struct{})
	go func() {
		resp := postQuery(t, client, srv.URL+"/query")
		resp.Body.Close()
		close(firstDone)
	}()
	<-entered // one of two slots held: the next arrival finds occupancy 1/2

	resp := postQuery(t, client, srv.URL+"/query")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("degraded query status = %d, want 200", resp.StatusCode)
	}
	qr := decodeQuery(t, resp)
	if qr.Degraded != 1 {
		t.Fatalf("degraded level = %d, want 1", qr.Degraded)
	}

	close(release)
	<-firstDone
	if st := getStats(t, client, srv.URL); st.Admission.Degraded < 1 {
		t.Fatalf("degraded_queries = %d, want >= 1", st.Admission.Degraded)
	}
}

// TestOverloadBoundedNoLeak is the synthetic overload driver: a storm
// of concurrent queries against a small gate with a sleeping scorer.
// The server must keep answering (200/429/503, nothing else), hold the
// number of concurrently scoring queries at or under the gate bound,
// and return to its goroutine baseline once the storm passes.
func TestOverloadBoundedNoLeak(t *testing.T) {
	var scoring, peak atomic.Int64
	hook := func() {
		n := scoring.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		time.Sleep(200 * time.Microsecond)
		scoring.Add(-1)
	}
	const gate = 4
	x := overloadIndex(t, hook)
	srv := httptest.NewServer(NewHandlerOptions(x, Options{
		MaxInFlight:   gate,
		ShedWait:      time.Millisecond,
		DefaultBudget: 5 * time.Millisecond,
	}))
	defer srv.Close()
	// Keep-alives off so no idle-connection goroutines linger between
	// the baseline measurement and the post-storm check.
	client := &http.Client{Transport: &http.Transport{DisableKeepAlives: true}}
	defer client.CloseIdleConnections()

	postQuery(t, client, srv.URL+"/query").Body.Close() // warm-up
	baseline := runtime.NumGoroutine()

	const drivers = 16
	const perDriver = 4
	statuses := make(chan int, drivers*perDriver)
	var wg sync.WaitGroup
	for i := 0; i < drivers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perDriver; j++ {
				resp, err := client.Post(srv.URL+"/query", "application/json", strings.NewReader(queryBody))
				if err != nil {
					statuses <- -1
					continue
				}
				resp.Body.Close()
				statuses <- resp.StatusCode
			}
		}()
	}
	wg.Wait()
	close(statuses)

	counts := map[int]int{}
	for code := range statuses {
		counts[code]++
		switch code {
		case http.StatusOK, http.StatusTooManyRequests, http.StatusServiceUnavailable:
		default:
			t.Fatalf("overload storm produced status %d, want only 200/429/503 (counts %v)", code, counts)
		}
	}
	if counts[http.StatusOK] == 0 {
		t.Fatalf("overload storm produced no successful answers: %v", counts)
	}
	if p := peak.Load(); p > gate {
		t.Fatalf("peak concurrent scoring queries = %d, want <= gate %d", p, gate)
	}

	// The gate must fully drain and the goroutine count return to its
	// baseline — bounded retries tolerate connection teardown in flight.
	deadline := time.Now().Add(2 * time.Second)
	for {
		st := getStats(t, client, srv.URL)
		n := runtime.NumGoroutine()
		if st.Admission.InFlight == 0 && st.Admission.Waiting == 0 && n <= baseline+4 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("post-storm state did not settle: in_flight=%d waiting=%d goroutines=%d (baseline %d)",
				st.Admission.InFlight, st.Admission.Waiting, n, baseline)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestBodyLimit413: request bodies beyond Options.MaxBodyBytes answer
// 413 with a JSON error naming the limit; small bodies still work.
func TestBodyLimit413(t *testing.T) {
	x := overloadIndex(t, nil)
	srv := httptest.NewServer(NewHandlerOptions(x, Options{MaxBodyBytes: 128}))
	defer srv.Close()
	client := srv.Client()

	big := fmt.Sprintf(`{"id":"huge","name":%q}`, strings.Repeat("x", 512))
	resp, err := client.Post(srv.URL+"/upsert", "application/json", strings.NewReader(big))
	if err != nil {
		t.Fatalf("POST /upsert: %v", err)
	}
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized upsert status = %d, want 413", resp.StatusCode)
	}
	var body APIError
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("decode 413 body: %v", err)
	}
	resp.Body.Close()
	if body.Err.Code != ErrCodePayloadTooLarge || !strings.Contains(body.Err.Message, "128 bytes") {
		t.Fatalf("413 error = %+v, want %q naming the configured limit", body.Err, ErrCodePayloadTooLarge)
	}

	resp, err = client.Post(srv.URL+"/upsert", "application/json",
		bytes.NewReader([]byte(`{"id":"ok","name":"tok0 small"}`)))
	if err != nil {
		t.Fatalf("POST small /upsert: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("small upsert status = %d, want 200", resp.StatusCode)
	}
}

// TestHealthzReadyzIdle: liveness and readiness both answer 200 on an
// idle server, and reject non-GET methods.
func TestHealthzReadyzIdle(t *testing.T) {
	x := overloadIndex(t, nil)
	srv := httptest.NewServer(NewHandlerOptions(x, Options{MaxInFlight: 2}))
	defer srv.Close()
	client := srv.Client()

	for _, route := range []string{"/healthz", "/readyz"} {
		resp, err := client.Get(srv.URL + route)
		if err != nil {
			t.Fatalf("GET %s: %v", route, err)
		}
		var body map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatalf("decode %s: %v", route, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || body["status"] != "ok" {
			t.Fatalf("%s = %d %v, want 200 ok", route, resp.StatusCode, body)
		}
		resp, err = client.Post(srv.URL+route, "application/json", nil)
		if err != nil {
			t.Fatalf("POST %s: %v", route, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("POST %s status = %d, want 405", route, resp.StatusCode)
		}
	}
}

// TestQueryBudgetKnobBadValues: malformed budget knobs are client
// errors, not silently ignored.
func TestQueryBudgetKnobBadValues(t *testing.T) {
	x := overloadIndex(t, nil)
	srv := httptest.NewServer(NewHandler(x))
	defer srv.Close()
	client := srv.Client()

	for _, q := range []string{
		"budget_ms=nope", "budget_ms=-1",
		"max_comparisons=x", "max_comparisons=-2",
	} {
		resp := postQuery(t, client, srv.URL+"/query?"+q)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("?%s status = %d, want 400", q, resp.StatusCode)
		}
	}
}

// TestQueryMaxComparisonsTruncates: ?max_comparisons=1 answers the
// best-first prefix with the truncation markers set; the same query
// unlimited scores more candidates and carries no markers.
func TestQueryMaxComparisonsTruncates(t *testing.T) {
	x := overloadIndex(t, nil)
	srv := httptest.NewServer(NewHandler(x))
	defer srv.Close()
	client := srv.Client()

	full := decodeQuery(t, postQuery(t, client, srv.URL+"/query"))
	if full.Truncated || full.TruncatedStage != "" {
		t.Fatalf("unlimited query marked truncated: %+v", full)
	}
	if full.Comparisons < 2 {
		t.Fatalf("unlimited query scored %d candidates, need >= 2 for the truncation test", full.Comparisons)
	}

	capped := decodeQuery(t, postQuery(t, client, srv.URL+"/query?max_comparisons=1"))
	if !capped.Truncated || capped.TruncatedStage != "score" {
		t.Fatalf("capped query truncated=%v stage=%q, want true/score", capped.Truncated, capped.TruncatedStage)
	}
	if capped.Comparisons != 1 {
		t.Fatalf("capped query scored %d, want exactly 1", capped.Comparisons)
	}
	if len(capped.Candidates) == 0 {
		t.Fatalf("capped query returned no candidates; want the ranked list intact")
	}
}
