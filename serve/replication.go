package serve

// HTTP replication: a leader streams its op log to read replicas.
//
// The leader side is two routes on the ordinary handler. GET /snapshot
// streams a full binary snapshot (the follower bootstrap and resync
// source); GET /deltas?since=<seq> returns the op frames applied after
// that sequence number, long-polling up to ?wait_ms= when the follower
// is caught up so a quiet leader costs one parked request instead of a
// poll storm. The frames on the wire are byte-identical to what
// SaveDelta appends to a snapshot file — one format, two transports.
//
// The follower side is the Follower loop: bootstrap from /snapshot,
// mark the index read-only, then poll /deltas forever, applying each
// batch through Index.ApplyOps. Falling off the leader's retention
// window (410 Gone) triggers a full re-bootstrap and an atomic index
// swap on the handler; in-flight requests drain on the old index.

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math/rand/v2"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"sparker/internal/index"
)

const (
	// deltaSeqHeader carries sequence numbers on the /deltas and
	// /snapshot responses: on 200 the last sequence number included in
	// the body, on 204 the leader's current head.
	deltaSeqHeader = "X-Sparker-Seq"
	// maxDeltaWait caps the ?wait_ms= long-poll, comfortably under any
	// sane server write timeout so a parked poll never trips it.
	maxDeltaWait = 30 * time.Second
	// maxDeltaResponseBytes bounds one /deltas response. A follower far
	// behind drains the backlog across several requests instead of one
	// unbounded body. OpsSince always returns at least one frame when
	// any are pending, so progress is guaranteed regardless of frame
	// size.
	maxDeltaResponseBytes = 1 << 20
)

// deltas serves GET /deltas?since=<seq>[&wait_ms=<ms>]: the op frames
// applied after seq, 204 when caught up after the bounded wait, 410
// when seq has fallen off the op-log retention window (re-bootstrap
// from /snapshot), 404 when the index keeps no op log at all.
func (h *Handler) deltas(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		methodError(w, http.MethodGet)
		return
	}
	x := h.Index()
	if !x.OpLogEnabled() {
		httpError(w, http.StatusNotFound, ErrCodeNotFound, fmt.Errorf("index keeps no op log (start sparker-serve with -oplog or -snapshot)"))
		return
	}
	params, err := ParseDeltaParams(r.URL.Query())
	if err != nil {
		httpError(w, http.StatusBadRequest, ErrCodeBadRequest, err)
		return
	}
	deadline := time.Now().Add(params.wait())
	for {
		// Fetch the notify channel BEFORE checking the log: an op that
		// lands between the check and the select closes this channel, so
		// the select below cannot miss it.
		notify := x.OpNotify()
		frames, seq, err := x.OpsSince(params.Since, maxDeltaResponseBytes)
		if err != nil {
			if errors.Is(err, index.ErrOpLogGap) {
				w.Header().Set(deltaSeqHeader, strconv.FormatInt(seq, 10))
				httpError(w, http.StatusGone, ErrCodeGone, err)
				return
			}
			httpError(w, http.StatusInternalServerError, ErrCodeInternal, err)
			return
		}
		if len(frames) > 0 {
			w.Header().Set("Content-Type", "application/octet-stream")
			w.Header().Set(deltaSeqHeader, strconv.FormatInt(seq, 10))
			_, _ = w.Write(frames)
			return
		}
		remain := time.Until(deadline)
		if remain <= 0 {
			w.Header().Set(deltaSeqHeader, strconv.FormatInt(seq, 10))
			w.WriteHeader(http.StatusNoContent)
			return
		}
		t := time.NewTimer(remain)
		select {
		case <-notify:
			t.Stop()
		case <-t.C:
			// Loop once more: the final check decides between frames that
			// raced the timer and a clean 204.
		case <-r.Context().Done():
			t.Stop()
			return
		}
	}
}

// snapshotStream serves GET /snapshot: a full binary snapshot of the
// index, streamed straight from the encoder. This is the follower
// bootstrap (and resync) source; the stream is identical to what Save
// writes to disk, so index.Decode consumes it unchanged.
func (h *Handler) snapshotStream(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		methodError(w, http.MethodGet)
		return
	}
	x := h.Index()
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set(deltaSeqHeader, strconv.FormatInt(x.Seq(), 10))
	if _, err := x.Encode(w); err != nil {
		// The status line is long gone; the truncated body fails the
		// follower's CRC check, which is the recovery path anyway.
		h.logger.Warn("snapshot stream aborted", slog.String("error", err.Error()))
	}
}

// FollowerOptions tunes the replication loop.
type FollowerOptions struct {
	// Client issues the HTTP requests. Nil uses a dedicated client with
	// no overall timeout (a long-poll must be allowed to park).
	Client *http.Client
	// PollWait is the long-poll wait advertised to the leader via
	// ?wait_ms=. Zero defaults to 25s (under the leader's cap).
	PollWait time.Duration
	// Interval is the error-backoff floor: the first sleep after a
	// failed poll. Consecutive failures double it (with jitter) up to
	// MaxBackoff; any success resets it. Zero defaults to 500ms.
	Interval time.Duration
	// MaxBackoff caps the exponential error backoff, so a long leader
	// outage settles into a slow steady probe instead of either
	// hammering a dead endpoint or backing off into uselessness. Zero
	// defaults to 15s.
	MaxBackoff time.Duration
	// Logger receives replication warnings. Nil uses slog.Default().
	Logger *slog.Logger
}

// Follower replicates a leader's index over HTTP: bootstrap from
// GET /snapshot, then apply the GET /deltas feed. Construct with
// NewFollower, call Bootstrap to obtain the initial index, hand both
// to the handler (Options.Follower) and run the loop with Run.
type Follower struct {
	leader     string
	cfg        index.Config
	client     *http.Client
	pollWait   time.Duration
	interval   time.Duration
	maxBackoff time.Duration
	logger     *slog.Logger

	ready      atomic.Bool
	appliedSeq atomic.Int64
	leaderSeq  atomic.Int64
	lastStamp  atomic.Int64 // leader-side UnixNano of the newest applied op
	appliedOps atomic.Int64
	resyncs    atomic.Int64
	errs       atomic.Int64
	lastErr    atomic.Value // string; cleared ("") by the next success
	// backoff is the current error-backoff target (0 when healthy) —
	// written by the Run loop, read by Stats.
	backoff atomic.Int64 // nanoseconds
}

// NewFollower prepares a replication loop against the leader's base
// URL (e.g. "http://leader:8080"). cfg configures the local index the
// snapshot is decoded into — enable its op log to let this replica
// feed further replicas in a chain.
func NewFollower(leaderURL string, cfg index.Config, opts FollowerOptions) *Follower {
	f := &Follower{
		leader:     strings.TrimRight(leaderURL, "/"),
		cfg:        cfg,
		client:     opts.Client,
		pollWait:   opts.PollWait,
		interval:   opts.Interval,
		maxBackoff: opts.MaxBackoff,
		logger:     opts.Logger,
	}
	if f.client == nil {
		f.client = &http.Client{}
	}
	if f.pollWait <= 0 {
		f.pollWait = 25 * time.Second
	}
	if f.interval <= 0 {
		f.interval = 500 * time.Millisecond
	}
	if f.maxBackoff <= 0 {
		f.maxBackoff = 15 * time.Second
	}
	if f.maxBackoff < f.interval {
		f.maxBackoff = f.interval
	}
	if f.logger == nil {
		f.logger = slog.Default()
	}
	return f
}

// ReplicationStats is the follower's telemetry, surfaced by /stats
// (replication section) and /metrics (sparker_replication_* families).
type ReplicationStats struct {
	Leader     string  `json:"leader"`
	Ready      bool    `json:"ready"`
	AppliedSeq int64   `json:"applied_seq"`
	LeaderSeq  int64   `json:"leader_seq"`
	LagSeconds float64 `json:"lag_seconds"`
	AppliedOps int64   `json:"applied_ops"`
	Resyncs    int64   `json:"resyncs"`
	Errors     int64   `json:"errors"`
	LastError  string  `json:"last_error,omitempty"`
	// BackoffSeconds is the current error-backoff target: zero on a
	// healthy replica, climbing toward MaxBackoff while the leader is
	// unreachable.
	BackoffSeconds float64 `json:"backoff_seconds,omitempty"`
}

// Ready reports whether the follower has completed a bootstrap — the
// /readyz gate for an otherwise empty replica.
func (f *Follower) Ready() bool { return f.ready.Load() }

// Stats returns the current replication telemetry. Lag is measured
// from the leader-side timestamp of the newest applied op, so it needs
// no clock agreement beyond what any lag metric needs; a caught-up
// follower reports zero regardless of wall-clock skew.
func (f *Follower) Stats() ReplicationStats {
	st := ReplicationStats{
		Leader:     f.leader,
		Ready:      f.ready.Load(),
		AppliedSeq: f.appliedSeq.Load(),
		LeaderSeq:  f.leaderSeq.Load(),
		AppliedOps: f.appliedOps.Load(),
		Resyncs:    f.resyncs.Load(),
		Errors:     f.errs.Load(),
	}
	if s, ok := f.lastErr.Load().(string); ok {
		st.LastError = s
	}
	st.BackoffSeconds = time.Duration(f.backoff.Load()).Seconds()
	if st.LeaderSeq > st.AppliedSeq {
		if stamp := f.lastStamp.Load(); stamp > 0 {
			st.LagSeconds = time.Since(time.Unix(0, stamp)).Seconds()
		}
	}
	return st
}

// Bootstrap fetches a full snapshot from the leader and decodes it
// into a fresh read-only index. The follower's applied sequence number
// starts at the snapshot's.
func (f *Follower) Bootstrap(ctx context.Context) (*index.Index, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, f.leader+"/v1/snapshot", nil)
	if err != nil {
		return nil, err
	}
	resp, err := f.client.Do(req)
	if err != nil {
		return nil, fmt.Errorf("bootstrap from %s: %w", f.leader, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("bootstrap from %s: %s", f.leader, httpStatusError(resp))
	}
	x, err := index.Decode(resp.Body, f.cfg)
	if err != nil {
		return nil, fmt.Errorf("bootstrap from %s: decode: %w", f.leader, err)
	}
	x.SetReadOnly(true)
	f.appliedSeq.Store(x.Seq())
	f.leaderSeq.Store(x.Seq())
	f.ready.Store(true)
	return x, nil
}

// errResync signals that the follower's position fell off the leader's
// op-log window: only a fresh bootstrap can continue.
var errResync = errors.New("position expired from leader op log")

// Run polls the leader's delta feed until ctx is cancelled, applying
// each batch to the handler's current index. A 410 from the leader
// triggers a full re-bootstrap and swaps the fresh index into the
// handler atomically. Errors pace the loop with capped exponential
// backoff plus jitter — a dead leader is not hammered, and a returning
// one sees its followers trickle back instead of stampeding — reset by
// the first success. Run returns ctx.Err() on cancellation.
func (f *Follower) Run(ctx context.Context, h *Handler) error {
	var backoff time.Duration
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		err := f.poll(ctx, h.Index())
		switch {
		case err == nil:
			// Progress or a clean long-poll expiry: poll again at once —
			// the leader's long-poll provides the pacing.
			f.markHealthy(&backoff)
			continue
		case errors.Is(err, errResync):
			f.resyncs.Add(1)
			f.logger.Warn("replication position expired; re-bootstrapping", slog.String("leader", f.leader))
			x, berr := f.Bootstrap(ctx)
			if berr != nil {
				f.recordError(berr)
			} else {
				h.SetIndex(x)
				f.markHealthy(&backoff)
				continue
			}
		case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
			return ctx.Err()
		default:
			f.recordError(err)
		}
		backoff = nextBackoff(backoff, f.interval, f.maxBackoff)
		f.backoff.Store(int64(backoff))
		select {
		case <-time.After(jitteredBackoff(backoff)):
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// markHealthy resets the error backoff and clears the stale last_error
// so /stats on a recovered replica stops reporting an old failure.
func (f *Follower) markHealthy(backoff *time.Duration) {
	*backoff = 0
	f.backoff.Store(0)
	f.lastErr.Store("")
}

// nextBackoff doubles the previous backoff, starting at base and
// saturating at max.
func nextBackoff(cur, base, max time.Duration) time.Duration {
	if cur <= 0 {
		return base
	}
	cur *= 2
	if cur > max || cur < 0 { // < 0: overflow
		return max
	}
	return cur
}

// jitteredBackoff spreads a sleep uniformly over [d/2, d) ("equal
// jitter"), decorrelating a fleet of followers that all lost the same
// leader at the same instant.
func jitteredBackoff(d time.Duration) time.Duration {
	if d <= 1 {
		return d
	}
	half := d / 2
	return half + time.Duration(rand.Int64N(int64(half)))
}

// poll issues one /deltas request from the index's current position
// and applies whatever comes back.
func (f *Follower) poll(ctx context.Context, x *index.Index) error {
	// The poll URL is built from the same typed DeltaParams the leader
	// decodes, so the two ends of the wire share one codec.
	params := DeltaParams{Since: x.Seq(), WaitMS: f.pollWait.Milliseconds()}
	u := f.leader + "/v1/deltas?" + params.Values().Encode()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return err
	}
	resp, err := f.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if seq, err := strconv.ParseInt(resp.Header.Get(deltaSeqHeader), 10, 64); err == nil {
		f.leaderSeq.Store(seq)
	}
	switch resp.StatusCode {
	case http.StatusOK:
		applied, lastStamp, err := x.ApplyOps(resp.Body)
		if applied > 0 {
			f.appliedOps.Add(int64(applied))
			f.appliedSeq.Store(x.Seq())
			f.lastStamp.Store(lastStamp)
		}
		if err != nil {
			// The index stopped cleanly at the last good frame; the next
			// poll resumes from there, so a torn response heals itself.
			return fmt.Errorf("apply deltas: %w", err)
		}
		return nil
	case http.StatusNoContent:
		return nil
	case http.StatusGone:
		return errResync
	default:
		return fmt.Errorf("poll %s: %s", f.leader, httpStatusError(resp))
	}
}

func (f *Follower) recordError(err error) {
	f.errs.Add(1)
	f.lastErr.Store(err.Error())
	f.logger.Warn("replication poll failed", slog.String("leader", f.leader), slog.String("error", err.Error()))
}

// httpStatusError summarises a non-2xx response, folding in the JSON
// error body when one is present (bounded read: an error body is
// short).
func httpStatusError(resp *http.Response) string {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
	if s := strings.TrimSpace(string(body)); s != "" {
		return fmt.Sprintf("%s: %s", resp.Status, s)
	}
	return resp.Status
}

// ValidateLeaderURL rejects obviously malformed -follow values before
// the serve loop starts, so a typo fails fast instead of as an
// endless poll-error stream.
func ValidateLeaderURL(s string) error {
	u, err := url.Parse(s)
	if err != nil {
		return fmt.Errorf("bad leader url %q: %w", s, err)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return fmt.Errorf("bad leader url %q: want http:// or https://", s)
	}
	if u.Host == "" {
		return fmt.Errorf("bad leader url %q: missing host", s)
	}
	return nil
}
