package serve

// The versioned /v1 API contract: one typed JSON error envelope for
// every 4xx/5xx response, and one typed codec for the per-request
// query knobs. Routes are registered under /v1/ with the historical
// unversioned paths kept as aliases, so existing clients keep working
// while new surfaces (the cluster coordinator above all) speak a
// stable, forwardable contract.
//
// The knob codec is the piece that makes scatter-gather trustworthy:
// the coordinator decodes a request's knobs once, adjusts them
// (per-shard budgets, the degradation ladder) and re-encodes them for
// the fan-out — decode(encode(p)) == p, and the canonical encoding is
// deterministic, so a shard sees exactly the knobs the coordinator
// decided on, never a lossy re-parse.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"sparker/internal/index"
)

// Error codes of the /v1 error envelope. Every 4xx/5xx response body
// is an APIError carrying exactly one of these.
const (
	ErrCodeBadRequest       = "bad_request"        // malformed body or knob (400)
	ErrCodeMethodNotAllowed = "method_not_allowed" // wrong HTTP method (405)
	ErrCodeNotFound         = "not_found"          // route or disabled surface (404)
	ErrCodeReadOnly         = "read_only"          // write against a replica (403)
	ErrCodePayloadTooLarge  = "payload_too_large"  // body over the cap (413)
	ErrCodeOverloaded       = "overloaded"         // shed by the admission gate (429/503)
	ErrCodeUnavailable      = "unavailable"        // no shard could answer (503)
	ErrCodeGone             = "gone"               // replication position expired (410)
	ErrCodeInternal         = "internal"           // unexpected server-side failure (500)
)

// APIError is the one error body every 4xx/5xx path writes:
//
//	{"error": {"code": "...", "message": "...", "retry_after_seconds": N}}
//
// Code is machine-matchable (the ErrCode* constants), Message is for
// humans, RetryAfterSeconds mirrors the Retry-After header on shed and
// not-ready responses.
type APIError struct {
	Err APIErrorDetail `json:"error"`
}

// APIErrorDetail is the payload of the error envelope.
type APIErrorDetail struct {
	Code              string `json:"code"`
	Message           string `json:"message"`
	RetryAfterSeconds int64  `json:"retry_after_seconds,omitempty"`
}

// Error makes the envelope usable as a Go error on the client side
// (the coordinator's shard client propagates shard errors through it).
func (e *APIError) Error() string {
	return fmt.Sprintf("%s: %s", e.Err.Code, e.Err.Message)
}

// httpError writes the typed error envelope.
func httpError(w http.ResponseWriter, status int, code string, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(APIError{Err: APIErrorDetail{Code: code, Message: err.Error()}})
}

// httpErrorRetry is httpError with a Retry-After header and the
// matching retry_after_seconds field — the shed/not-ready shape.
func httpErrorRetry(w http.ResponseWriter, status int, code string, retryAfterSecs int64, err error) {
	w.Header().Set("Retry-After", strconv.FormatInt(retryAfterSecs, 10))
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(APIError{Err: APIErrorDetail{
		Code: code, Message: err.Error(), RetryAfterSeconds: retryAfterSecs,
	}})
}

// methodError is the 405 every GET/POST-only route writes.
func methodError(w http.ResponseWriter, want string) {
	httpError(w, http.StatusMethodNotAllowed, ErrCodeMethodNotAllowed, fmt.Errorf("use %s", want))
}

// QueryParams is the typed form of the per-request knobs on /v1/query
// (and the source selector shared with /v1/upsert and /v1/bulk). The
// zero value means "no knob present"; the *Set flags distinguish an
// explicit zero (?budget_ms=0 lifts the server's default budget) from
// an absent knob (the default applies).
type QueryParams struct {
	// Probe overrides the index's LSH probe policy for this request
	// ("off", "fallback" or "union"; empty = index default).
	Probe string
	// ProbeFloor overrides the fallback floor (0 = index default).
	ProbeFloor int
	// BudgetMS bounds the query's wall clock in milliseconds when
	// BudgetSet; an explicit 0 means unlimited.
	BudgetMS  float64
	BudgetSet bool
	// MaxComparisons caps scored candidates when MaxComparisonsSet; an
	// explicit 0 means unlimited.
	MaxComparisons    int
	MaxComparisonsSet bool
	// Debug asks for the per-stage timing breakdown in the response.
	Debug bool
	// Source marks the profile as belonging to the second clean source
	// when SourceSet (upsert/bulk/query alike).
	Source    int
	SourceSet bool
}

// ParseQueryParams decodes the request knobs, validating syntax and
// ranges. Index-dependent validation (probe knobs need an LSH-enabled
// index) happens where an index is at hand — see resolveOptions — so a
// coordinator can parse and forward knobs for indexes it never sees.
// Unknown parameters are ignored for forward compatibility.
func ParseQueryParams(q url.Values) (QueryParams, error) {
	var p QueryParams
	if s := q.Get("probe"); s != "" {
		if _, err := index.ParseProbePolicy(s); err != nil {
			return p, err
		}
		p.Probe = s
	}
	if s := q.Get("probe_floor"); s != "" {
		floor, err := strconv.Atoi(s)
		if err != nil || floor < 1 {
			return p, fmt.Errorf("bad probe_floor %q", s)
		}
		p.ProbeFloor = floor
	}
	if s := q.Get("budget_ms"); s != "" {
		ms, err := strconv.ParseFloat(s, 64)
		if err != nil || ms < 0 {
			return p, fmt.Errorf("bad budget_ms %q (want non-negative milliseconds; 0 = unlimited)", s)
		}
		p.BudgetMS = ms
		p.BudgetSet = true
	}
	if s := q.Get("max_comparisons"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 0 {
			return p, fmt.Errorf("bad max_comparisons %q (want non-negative; 0 = unlimited)", s)
		}
		p.MaxComparisons = n
		p.MaxComparisonsSet = true
	}
	switch q.Get("debug") {
	case "1", "true":
		p.Debug = true
	}
	if s := q.Get("source"); s != "" {
		src, err := strconv.Atoi(s)
		if err != nil || src < 0 || src > 1 {
			return p, fmt.Errorf("bad source %q", s)
		}
		p.Source = src
		p.SourceSet = true
	}
	return p, nil
}

// Values renders the knobs back into query parameters. The encoding is
// canonical (numbers in their shortest form, keys sorted by Encode),
// and ParseQueryParams(p.Values()) == p — the round-trip the
// coordinator relies on to forward knobs faithfully.
func (p QueryParams) Values() url.Values {
	q := url.Values{}
	if p.Probe != "" {
		q.Set("probe", p.Probe)
	}
	if p.ProbeFloor > 0 {
		q.Set("probe_floor", strconv.Itoa(p.ProbeFloor))
	}
	if p.BudgetSet {
		q.Set("budget_ms", strconv.FormatFloat(p.BudgetMS, 'f', -1, 64))
	}
	if p.MaxComparisonsSet {
		q.Set("max_comparisons", strconv.Itoa(p.MaxComparisons))
	}
	if p.Debug {
		q.Set("debug", "1")
	}
	if p.SourceSet {
		q.Set("source", strconv.Itoa(p.Source))
	}
	return q
}

// Encode is Values().Encode(): the canonical query string.
func (p QueryParams) Encode() string { return p.Values().Encode() }

// resolveOptions turns the parsed knobs into the index call: the probe
// overrides (explicitly requesting a probe on an index without LSH is
// a client error, not a silent no-op) and the work budget. The
// wall-clock budget is returned as a duration — the deadline itself is
// stamped by the caller after the degradation ladder had its say.
func (p QueryParams) resolveOptions(x *index.Index, defaultBudget time.Duration) (index.ResolveOptions, time.Duration, error) {
	opts := index.ResolveOptions{Probe: index.ProbeOptions{Policy: x.ProbePolicy()}}
	budget := defaultBudget
	if p.Probe != "" {
		pol, err := index.ParseProbePolicy(p.Probe)
		if err != nil {
			return opts, 0, err
		}
		if pol != index.ProbeOff && !x.LSHEnabled() {
			return opts, 0, fmt.Errorf("probe=%s needs an LSH-enabled index (start sparker-serve with -lsh)", p.Probe)
		}
		opts.Probe.Policy = pol
	}
	if p.ProbeFloor > 0 {
		if !x.LSHEnabled() {
			return opts, 0, fmt.Errorf("probe_floor needs an LSH-enabled index (start sparker-serve with -lsh)")
		}
		opts.Probe.Floor = p.ProbeFloor
	}
	if p.BudgetSet {
		budget = time.Duration(p.BudgetMS * float64(time.Millisecond))
	}
	if p.MaxComparisonsSet {
		opts.Budget.MaxComparisons = p.MaxComparisons
	}
	return opts, budget, nil
}

// DeltaParams is the typed form of the /v1/deltas knobs, shared by the
// leader-side handler and the follower's poll-URL builder so the two
// ends of the replication wire can never drift.
type DeltaParams struct {
	// Since is the op sequence number the response should start after.
	Since int64
	// WaitMS is the long-poll bound in milliseconds when the feed is
	// caught up (capped server-side at maxDeltaWait).
	WaitMS int64
}

// ParseDeltaParams decodes and validates the /v1/deltas knobs.
func ParseDeltaParams(q url.Values) (DeltaParams, error) {
	var p DeltaParams
	if s := q.Get("since"); s != "" {
		n, err := strconv.ParseInt(s, 10, 64)
		if err != nil || n < 0 {
			return p, fmt.Errorf("bad since %q (want a non-negative sequence number)", s)
		}
		p.Since = n
	}
	if s := q.Get("wait_ms"); s != "" {
		ms, err := strconv.ParseInt(s, 10, 64)
		if err != nil || ms < 0 {
			return p, fmt.Errorf("bad wait_ms %q (want non-negative milliseconds)", s)
		}
		p.WaitMS = ms
	}
	return p, nil
}

// Values renders the delta knobs back into query parameters. Since is
// always present (a follower at sequence 0 still names its position).
func (p DeltaParams) Values() url.Values {
	q := url.Values{}
	q.Set("since", strconv.FormatInt(p.Since, 10))
	if p.WaitMS > 0 {
		q.Set("wait_ms", strconv.FormatInt(p.WaitMS, 10))
	}
	return q
}

// wait returns the bounded long-poll duration.
func (p DeltaParams) wait() time.Duration {
	w := time.Duration(p.WaitMS) * time.Millisecond
	if w > maxDeltaWait {
		w = maxDeltaWait
	}
	return w
}
